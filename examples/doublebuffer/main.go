// Doublebuffer: the paper's §5 rule "double buffering ... will always
// help performance", shown as a compute kernel. An SPE reads 16 KB blocks
// from main memory, spends compute cycles on each (here: a byte-wise
// transform, charged at 1 cycle per 16 bytes as a SIMD loop would be), and
// writes results back. The serial version waits for each DMA; the
// double-buffered version overlaps the next GET and the previous PUT with
// the current block's compute.
//
//	go run ./examples/doublebuffer
package main

import (
	"fmt"
	"log"

	"cellbe"
)

const (
	volume = 4 << 20
	chunk  = cellbe.MaxDMA
)

// transform is the "computation": add 1 to every byte. The SPU is charged
// one cycle per 16-byte quadword, the throughput of a simple SIMD loop.
func transform(ctx *cellbe.SPUContext, buf []byte) {
	for i := range buf {
		buf[i]++
	}
	ctx.Wait(cellbe.Time(len(buf) / 16))
}

func run(double bool) (cellbe.Time, int64, int64) {
	sys := cellbe.NewSystem(cellbe.DefaultConfig())
	src := sys.Alloc(volume, 128)
	dst := sys.Alloc(volume, 128)
	payload := make([]byte, volume)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	sys.Mem.RAM().Write(src, payload)

	var cycles cellbe.Time
	sp := sys.SPEs[0]
	sp.Run("worker", func(ctx *cellbe.SPUContext) {
		start := ctx.Decrementer()
		if !double {
			// Serial: get, compute, put, wait, repeat.
			for off := int64(0); off < volume; off += chunk {
				ctx.Get(0, src+off, chunk, 0)
				ctx.WaitTag(0)
				transform(ctx, sp.LS()[0:chunk])
				ctx.Put(0, dst+off, chunk, 0)
				ctx.WaitTag(0)
			}
		} else {
			// Double buffered: buffer b's GET is issued while buffer
			// 1-b computes; PUTs are waited only when the slot is
			// reused two blocks later. Tags: GET of slot b = b,
			// PUT of slot b = 2+b.
			blocks := int(volume / chunk)
			ctx.Get(0, src, chunk, 0)
			for blk := 0; blk < blocks; blk++ {
				b := blk % 2
				if blk+1 < blocks {
					nb := (blk + 1) % 2
					// Slot nb must be free of its previous PUT
					// before the next GET overwrites it.
					ctx.WaitTag(2 + nb)
					ctx.Get(nb*chunk, src+int64(blk+1)*chunk, chunk, nb)
				}
				ctx.WaitTag(b)
				transform(ctx, sp.LS()[b*chunk:(b+1)*chunk])
				ctx.Put(b*chunk, dst+int64(blk)*chunk, chunk, 2+b)
			}
			ctx.WaitTagMask(1<<2 | 1<<3)
		}
		cycles = ctx.Decrementer() - start
	})
	sys.Run()

	// Verify the transform landed in memory.
	got := make([]byte, volume)
	sys.Mem.RAM().Read(dst, got)
	for i := range got {
		if got[i] != payload[i]+1 {
			log.Fatalf("byte %d: got %d, want %d", i, got[i], payload[i]+1)
		}
	}
	return cycles, 2 * volume, int64(volume / 16)
}

func main() {
	serial, bytes, _ := run(false)
	overlapped, _, _ := run(true)
	fmt.Printf("processing %d MB through one SPE (16 KB blocks, SIMD-rate compute):\n", volume>>20)
	fmt.Printf("  serial (wait per DMA):   %8d cycles  %6.2f GB/s\n", serial, gbps(bytes, serial))
	fmt.Printf("  double buffered:         %8d cycles  %6.2f GB/s\n", overlapped, gbps(bytes, overlapped))
	fmt.Printf("  speedup: %.2fx — compute and the GET/PUT turnarounds are hidden;\n",
		float64(serial)/float64(overlapped))
	fmt.Println("  what remains is the single-SPE memory-bandwidth floor (~10 GB/s")
	fmt.Println("  for GET+PUT combined, Figure 8), which no buffering can beat")
	fmt.Println("results verified byte-exact in both modes")
}

func gbps(bytes int64, cycles cellbe.Time) float64 {
	return float64(bytes) * 2.1 / float64(cycles)
}
