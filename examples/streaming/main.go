// Streaming: the paper's headline guidance (§1, §5) demonstrated as a
// program. One data stream pipelined through all 8 SPEs is slower than two
// independent 4-SPE streams, because a single SPE reading main memory
// sustains only ~10 GB/s while two SPEs reach ~20 GB/s by hitting both
// banks concurrently.
//
//	go run ./examples/streaming
package main

import (
	"fmt"

	"cellbe"
)

func main() {
	const volumePerStream = 4 << 20

	run := func(streams int) float64 {
		sys := cellbe.NewSystem(cellbe.DefaultConfig())
		perStream := cellbe.NumSPEs / streams
		pipelines := make([]*cellbe.Pipeline, streams)
		for s := 0; s < streams; s++ {
			src := sys.Alloc(volumePerStream, 1<<16)
			dst := sys.Alloc(volumePerStream, 1<<16)
			pipelines[s] = cellbe.NewPipeline(sys, s*perStream, perStream, src, dst, volumePerStream)
			pipelines[s].Start()
		}
		sys.Run()
		var lastEnd cellbe.Time
		for _, pl := range pipelines {
			if pl.EndTime() > lastEnd {
				lastEnd = pl.EndTime()
			}
		}
		return sys.GBps(int64(streams)*volumePerStream, lastEnd)
	}

	fmt.Println("streaming the same 8 SPEs, split into parallel pipelines:")
	var oneStream float64
	for _, streams := range []int{1, 2, 4} {
		bw := run(streams)
		if streams == 1 {
			oneStream = bw
		}
		fmt.Printf("  %d stream(s) x %d SPEs: %6.2f GB/s end-to-end (%.2fx vs single stream)\n",
			streams, cellbe.NumSPEs/streams, bw, bw/oneStream)
	}
	fmt.Println("\ntwo 4-SPE streams beat one 8-SPE stream: memory is read by two")
	fmt.Println("SPEs in parallel, which Figure 8 shows is the efficient pattern.")
}
