// Taskfarm: a CellSs-style task runtime demo. A blur-like pipeline of
// dependent tasks is submitted against main-memory buffers; the runtime
// infers the dependency graph from operand overlap, farms ready tasks out
// to four SPE workers, and stages data by DMA. Running the same graph
// under both data-movement policies shows the paper's guidance at work:
// forwarding intermediates LS-to-LS (§4.2.3's 33.6 GB/s) beats bouncing
// them through main memory (~10 GB/s for a lone SPE).
//
// A shared atomic counter (MFC getllar/putllc) tallies processed tasks —
// the Cell's lock-line reservation protocol in action.
//
//	go run ./examples/taskfarm
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"cellbe"
)

const (
	chainLen = 16
	bufSize  = 64 << 10
)

func run(policy cellbe.TaskPolicy) (cellbe.TaskStats, byte) {
	sys := cellbe.NewSystem(cellbe.DefaultConfig())
	counter := sys.Alloc(128, 128)

	bufs := make([]int64, chainLen+1)
	for i := range bufs {
		bufs[i] = sys.Alloc(bufSize, 128)
	}
	seed := make([]byte, bufSize)
	for i := range seed {
		seed[i] = byte(i % 251)
	}
	sys.Mem.RAM().Write(bufs[0], seed)

	rt := cellbe.NewTaskRuntime(sys, []int{0, 1, 2, 3}, policy)
	for i := 0; i < chainLen; i++ {
		rt.Submit(&cellbe.Task{
			Name:          fmt.Sprintf("stage%d", i),
			Inputs:        []cellbe.TaskBuffer{{EA: bufs[i], Size: bufSize}},
			Outputs:       []cellbe.TaskBuffer{{EA: bufs[i+1], Size: bufSize}},
			ComputeCycles: bufSize / 16, // SIMD-rate pass over the block
			Compute: func(in, out [][]byte) {
				for j := range out[0] {
					out[0][j] = in[0][j] + 1
				}
			},
		})
	}
	st := rt.Run()

	// Tally with the atomic counter from a fresh kernel on each worker
	// (demonstrating getllar/putllc under contention).
	for w := 0; w < 4; w++ {
		n := uint32(st.PerWorker[w])
		sys.SPEs[w].Run("tally", func(ctx *cellbe.SPUContext) {
			if n > 0 {
				ctx.AtomicAdd32(counter, n)
			}
		})
	}
	sys.Run()

	cnt := make([]byte, 4)
	sys.Mem.RAM().Read(counter, cnt)
	if got := binary.LittleEndian.Uint32(cnt); got != chainLen {
		log.Fatalf("atomic tally %d, want %d", got, chainLen)
	}

	final := make([]byte, bufSize)
	sys.Mem.RAM().Read(bufs[chainLen], final)
	for i := range final {
		if final[i] != seed[i]+chainLen {
			log.Fatalf("byte %d: got %d want %d", i, final[i], seed[i]+chainLen)
		}
	}
	return st, final[0]
}

func main() {
	fmt.Printf("task chain: %d dependent stages over %d KB blocks, 4 SPE workers\n\n", chainLen, bufSize>>10)
	mem, _ := run(cellbe.ThroughMemory)
	fwd, _ := run(cellbe.Forwarding)
	us := func(c cellbe.Time) float64 { return float64(c) / 2.1e3 }
	fmt.Printf("  through-memory: %8d cycles (%.1f us), %d MB staged\n",
		mem.Cycles, us(mem.Cycles), mem.BytesStaged>>20)
	fmt.Printf("  forwarding:     %8d cycles (%.1f us), %d LS-to-LS + %d in-place of %d inputs\n",
		fwd.Cycles, us(fwd.Cycles), fwd.ForwardedLS, fwd.ReusedInLS, fwd.Tasks)
	fmt.Printf("  speedup: %.2fx from keeping intermediates on-chip\n",
		float64(mem.Cycles)/float64(fwd.Cycles))
	fmt.Println("\nresults verified byte-exact; atomic task tally verified via getllar/putllc")
}
