// Stencil: 1D Jacobi heat diffusion across all 8 SPEs — the classic HPC
// halo-exchange pattern on the Cell. The domain is split into per-SPE
// slices held in local stores; every iteration each SPE computes its
// slice, then exchanges one-cell halos with its neighbors by LS-to-LS DMA
// (the communication pattern whose bandwidth §4.2.3 of the paper
// measures), synchronizing with mailboxes. The result is verified against
// a host-side reference computation, bit for bit.
//
//	go run ./examples/stencil
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"cellbe"
)

const (
	nSPEs      = cellbe.NumSPEs
	perSPE     = 4096 // floats per SPE slice
	iterations = 64
)

func f32(b []byte, off int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[off : off+4]))
}

func putf32(b []byte, off int, v float32) {
	binary.LittleEndian.PutUint32(b[off:off+4], math.Float32bits(v))
}

// LS layout per SPE: two iteration buffers with halo cells at each end.
// [halo][ perSPE cells ][halo]  => perSPE+2 floats each.
const (
	bufFloats = perSPE + 2
	bufBytes  = bufFloats * 4
	curOff    = 0
	nextOff   = 16384 + 1024 // comfortably past buffer 0, 16-byte aligned
)

func main() {
	sys := cellbe.NewSystem(cellbe.DefaultConfig())

	// Initial condition in main memory: a hot spike in the middle.
	const n = nSPEs * perSPE
	domain := sys.Alloc(n*4, 128)
	init := make([]byte, n*4)
	for i := 0; i < n; i++ {
		v := float32(0)
		if i == n/2 {
			v = 1000
		}
		putf32(init, 4*i, v)
	}
	sys.Mem.RAM().Write(domain, init)

	// Per-link halo-arrival mailboxes: left[i] signals SPE i that its
	// left halo landed; right[i] likewise.
	left := make([]*cellbe.Mailbox, nSPEs)
	right := make([]*cellbe.Mailbox, nSPEs)
	for i := range left {
		left[i] = cellbe.NewMailbox(sys.Eng, 2)
		right[i] = cellbe.NewMailbox(sys.Eng, 2)
	}

	var cycles cellbe.Time
	for s := 0; s < nSPEs; s++ {
		s := s
		sys.SPEs[s].Run(fmt.Sprintf("stencil%d", s), func(ctx *cellbe.SPUContext) {
			ls := ctx.SPE().LS()
			// Load the slice (into cur, between the halo cells), plus
			// the initial halo cells from the neighboring slices.
			ctx.Get(curOff+16, domain+int64(s*perSPE*4), perSPE*4, 0)
			if s > 0 {
				ctx.Get(curOff+12, domain+int64(s*perSPE-1)*4, 4, 0)
			}
			if s < nSPEs-1 {
				ctx.Get(curOff+16+4*perSPE, domain+int64((s+1)*perSPE)*4, 4, 0)
			}
			ctx.WaitTag(0)
			// The LS buffer places cell k at offset 16+4k; halos at
			// offsets 12 (left) and 16+4*perSPE (right). Offset 16 keeps
			// DMA alignment easy; cell -1 sits at 12.
			cur, next := curOff, nextOff
			for it := 0; it < iterations; it++ {
				// Send boundary cells to the neighbors' halo slots of
				// the *current* buffer before computing: iteration 0's
				// halos are the initial zeros, already in place.
				if it > 0 {
					// Halos for this iteration arrived during the
					// previous one (see below); consume the signals.
					if s > 0 {
						left[s].Read(ctx.Process)
					}
					if s < nSPEs-1 {
						right[s].Read(ctx.Process)
					}
				}
				// Jacobi update: next[k] = 0.5*cur[k] + 0.25*(cur[k-1]+cur[k+1]).
				for k := 0; k < perSPE; k++ {
					c := f32(ls, cur+16+4*k)
					l := f32(ls, cur+12+4*k)
					r := f32(ls, cur+20+4*k)
					putf32(ls, next+16+4*k, 0.5*c+0.25*(l+r))
				}
				// Charge SIMD-rate compute: ~4 ops per 4-wide vector.
				ctx.Wait(cellbe.Time(perSPE / 4 * 4))

				// Push the new boundary cells into the neighbors' next
				// buffers, then signal them.
				nb := next
				if s > 0 {
					// My leftmost new cell becomes their right halo.
					ctx.Put(nb+16, sys.LSEA(s-1, nb+16+4*perSPE), 4, 1)
				}
				if s < nSPEs-1 {
					// My rightmost new cell becomes their left halo.
					ctx.Put(nb+16+4*(perSPE-1), sys.LSEA(s+1, nb+12), 4, 1)
				}
				ctx.WaitTag(1)
				if s > 0 {
					right[s-1].Write(ctx.Process, uint32(it))
				}
				if s < nSPEs-1 {
					left[s+1].Write(ctx.Process, uint32(it))
				}
				cur, next = next, cur
			}
			// Drain the final halo signals so mailboxes end empty.
			if s > 0 {
				left[s].Read(ctx.Process)
			}
			if s < nSPEs-1 {
				right[s].Read(ctx.Process)
			}
			// Write the final slice back.
			ctx.Put(cur+16, domain+int64(s*perSPE*4), perSPE*4, 2)
			ctx.WaitTag(2)
			if e := ctx.Decrementer(); e > cycles {
				cycles = e
			}
		})
	}
	sys.Run()

	// Host reference with identical float32 arithmetic.
	ref := make([]float32, n)
	ref[n/2] = 1000
	tmp := make([]float32, n)
	for it := 0; it < iterations; it++ {
		for k := 0; k < n; k++ {
			var l, r float32
			if k > 0 {
				l = ref[k-1]
			}
			if k < n-1 {
				r = ref[k+1]
			}
			tmp[k] = 0.5*ref[k] + 0.25*(l+r)
		}
		ref, tmp = tmp, ref
	}

	got := make([]byte, n*4)
	sys.Mem.RAM().Read(domain, got)
	var maxDiff float64
	var sum float64
	for k := 0; k < n; k++ {
		g := f32(got, 4*k)
		d := math.Abs(float64(g - ref[k]))
		if d > maxDiff {
			maxDiff = d
		}
		sum += float64(g)
	}
	if maxDiff != 0 {
		log.Fatalf("stencil diverged from host reference: max diff %g", maxDiff)
	}

	fmt.Printf("1D Jacobi, %d cells over %d SPEs, %d iterations with LS-to-LS halo exchange\n",
		n, nSPEs, iterations)
	fmt.Printf("  simulated time: %d cycles (%.1f us at 2.1 GHz)\n", cycles, float64(cycles)/2.1e3)
	fmt.Printf("  heat conserved: sum = %.1f (injected 1000.0)\n", sum)
	fmt.Println("  result matches the host float32 reference bit for bit")
}
