// Quickstart: build a Cell BE system, run an SPU program that DMAs a
// buffer from main memory into its local store and back, verify the
// payload round-trips, and print the measured bandwidth.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"cellbe"
)

func main() {
	sys := cellbe.NewSystem(cellbe.DefaultConfig())

	// Fill 1 MB of simulated RAM with a recognizable payload.
	const volume = 1 << 20
	src := sys.Alloc(volume, 128)
	dst := sys.Alloc(volume, 128)
	payload := make([]byte, volume)
	for i := range payload {
		payload[i] = byte(i*7 + i>>11)
	}
	sys.Mem.RAM().Write(src, payload)

	// An SPU program: stream the buffer through the local store in
	// 16 KB DMA chunks, with the paper's delayed-synchronization rule —
	// issue GET/PUT pairs chained by a fence per buffer slot and wait
	// for the tag groups only at the end.
	var cycles cellbe.Time
	sys.SPEs[0].Run("copy", func(ctx *cellbe.SPUContext) {
		start := ctx.Decrementer()
		const chunk = cellbe.MaxDMA
		slots := 8
		for off := int64(0); off < volume; off += chunk {
			slot := int(off/chunk) % slots
			tag := slot
			ctx.GetF(slot*chunk, src+off, chunk, tag)
			ctx.PutF(slot*chunk, dst+off, chunk, tag)
		}
		ctx.WaitTagMask(^uint32(0))
		cycles = ctx.Decrementer() - start
	})

	sys.Run()

	got := make([]byte, volume)
	sys.Mem.RAM().Read(dst, got)
	if !bytes.Equal(got, payload) {
		log.Fatal("payload mismatch after memory -> LS -> memory copy")
	}

	fmt.Printf("copied %d MB through SPE0's local store in %d cycles\n", volume>>20, cycles)
	fmt.Printf("memory copy bandwidth (read+write): %.2f GB/s\n", sys.GBps(2*volume, cycles))
	fmt.Println("payload verified: memory -> local store -> memory round trip is byte-exact")
}
