// Pingpong: an MPI-style message exchange between two SPEs, the
// communication pattern the paper motivates its SPE-to-SPE measurements
// with. SPE0 PUTs a message into SPE1's local store and signals via
// mailbox; SPE1 replies the same way. The example sweeps message sizes to
// show the latency/bandwidth split — the reason the paper recommends
// chunks of at least 1024 bytes (or DMA lists) for SPE communication.
//
//	go run ./examples/pingpong
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"cellbe"
)

const iters = 200

func main() {
	fmt.Println("SPE0 <-> SPE1 ping-pong over DMA + mailboxes:")
	fmt.Printf("%10s %14s %14s\n", "size", "round trip", "bandwidth")
	for _, size := range []int{128, 512, 1024, 4096, 16384} {
		cycles, checksum := pingpong(size)
		perRT := float64(cycles) / iters
		us := perRT / 2.1e3 // cycles at 2.1 GHz -> microseconds
		bw := float64(2*size*iters) * 2.1 / float64(cycles)
		fmt.Printf("%9dB %9.0f cyc %11.2f GB/s   (%.2f us/rt, checksum %d)\n",
			size, perRT, bw, us, checksum)
	}
}

func pingpong(size int) (cellbe.Time, uint32) {
	sys := cellbe.NewSystem(cellbe.DefaultConfig())
	a, b := sys.SPEs[0], sys.SPEs[1]

	// Message buffers at LS offset 0 on both sides; a sequence number is
	// embedded so each side can verify it got the other's latest data.
	var elapsed cellbe.Time
	var finalSeq uint32

	a.Run("ping", func(ctx *cellbe.SPUContext) {
		start := ctx.Decrementer()
		for i := 0; i < iters; i++ {
			binary.LittleEndian.PutUint32(a.LS()[0:4], uint32(2*i))
			// Push the message into SPE1's LS and signal.
			ctx.Put(0, sys.LSEA(1, 0), size, 0)
			ctx.WaitTag(0)
			b.Inbox.Write(ctx.Process, uint32(2*i))
			// Wait for the reply to land in our LS.
			seq := ctx.ReadMailbox()
			if got := binary.LittleEndian.Uint32(a.LS()[0:4]); got != seq {
				log.Fatalf("ping: reply payload %d does not match signal %d", got, seq)
			}
			finalSeq = seq
		}
		elapsed = ctx.Decrementer() - start
	})

	b.Run("pong", func(ctx *cellbe.SPUContext) {
		for i := 0; i < iters; i++ {
			seq := ctx.ReadMailbox()
			if got := binary.LittleEndian.Uint32(b.LS()[0:4]); got != seq {
				log.Fatalf("pong: payload %d does not match signal %d", got, seq)
			}
			// Reply: bump the sequence number and push back.
			binary.LittleEndian.PutUint32(b.LS()[0:4], seq+1)
			ctx.Put(0, sys.LSEA(0, 0), size, 0)
			ctx.WaitTag(0)
			a.Inbox.Write(ctx.Process, seq+1)
		}
	})

	sys.Run()
	return elapsed, finalSeq
}
