package cellbe

// The tracing subsystem is specified as zero-cost when off: attaching no
// tracer must leave the EIB/MFC hot path's allocation count exactly where
// the BENCH_eib.json baseline pinned it. This test enforces that in plain
// `go test` runs (and CI), so a regression cannot hide until the next
// manual benchmark pass.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"cellbe/internal/cell"
	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
)

func TestEIBSaturatedAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("full saturated run: skipped in -short mode")
	}
	data, err := os.ReadFile("BENCH_eib.json")
	if err != nil {
		t.Skipf("no baseline: %v (regenerate with go test -bench 'EIBSaturated|Sweep' -benchmem .)", err)
	}
	var all map[string]map[string]float64
	if err := json.Unmarshal(data, &all); err != nil {
		t.Fatalf("unparsable BENCH_eib.json: %v", err)
	}
	baseline, ok := all["EIBSaturated"]["allocs/op"]
	if !ok {
		t.Skip("baseline has no EIBSaturated allocs/op entry")
	}

	sc := saturatedScenario()
	perOp := testing.AllocsPerRun(1, func() {
		cfg := cell.DefaultConfig()
		cfg.Layout = cell.RandomLayout(3)
		sys := cell.New(cfg)
		if _, err := sc.Install(sys); err != nil {
			t.Fatal(err)
		}
		sys.Run()
	})
	// 2% + 16 allocs of slack absorbs runtime-version noise while still
	// catching any per-transfer or per-command regression (32768 transfers
	// per run: even +0.1 allocs/transfer would blow through this).
	limit := baseline*1.02 + 16
	if perOp > limit {
		t.Fatalf("untraced saturated run allocates %.0f allocs/op, baseline %.0f (limit %.0f): tracing hooks are no longer free when off",
			perOp, baseline, limit)
	}
}

// TestEIBSaturatedCounterGuard extends the zero-cost-when-off contract
// to the perf-counter subsystem: running the saturated benchmark
// scenario with a counter block attached must finish at the identical
// cycle with identical EIB statistics (counters observe arbitration,
// never participate in it), and the counters themselves must stay
// allocation-free — the counted run may allocate at most the one
// Counters block more than the bare run. The BENCH_eib.json baseline
// needs no update: with cycles and allocations unchanged, the recorded
// figures still describe the counters-off path exactly.
func TestEIBSaturatedCounterGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("full saturated run: skipped in -short mode")
	}
	sc := saturatedScenario()
	signature := func(counted bool) (string, float64) {
		var sig string
		perOp := testing.AllocsPerRun(1, func() {
			cfg := cell.DefaultConfig()
			cfg.Layout = cell.RandomLayout(3)
			sys := cell.New(cfg)
			if counted {
				sys.SetPerf(&perfctr.Counters{})
			}
			if _, err := sc.Install(sys); err != nil {
				t.Fatal(err)
			}
			sys.Run()
			st := sys.Bus.Stats()
			sig = fmt.Sprintf("now=%d transfers=%d local=%d bytes=%d cmds=%d busy=%v wait=%d",
				sys.Eng.Now(), st.Transfers, st.LocalTransfers, st.Bytes, st.Commands, st.BusyCycles, st.WaitCycles)
		})
		return sig, perOp
	}
	bare, bareAllocs := signature(false)
	counted, countedAllocs := signature(true)
	if bare != counted {
		t.Errorf("counters perturbed the simulation\n bare:    %s\n counted: %s", bare, counted)
	}
	// One Counters block plus generous runtime noise; any per-transfer
	// counter allocation would add tens of thousands (32768 transfers).
	if countedAllocs > bareAllocs+16 {
		t.Errorf("counted run allocates %.0f vs bare %.0f: counter hooks allocate on the hot path", countedAllocs, bareAllocs)
	}
}

// TestEngineAllocGuard pins the scheduler's own allocation budget: one
// warmed EventChurn op (BenchmarkEngine's workload) must stay at the
// handful of allocations the BENCH_eib.json baseline recorded — the
// process spawn plus rare wheel-bucket first touches. Wheel scheduling,
// same-cycle dispatch and process wakeups themselves must contribute
// nothing, so even a single new allocation on a per-event path trips this
// immediately (an op fires ~2k events).
func TestEngineAllocGuard(t *testing.T) {
	data, err := os.ReadFile("BENCH_eib.json")
	if err != nil {
		t.Skipf("no baseline: %v (regenerate with go test ./internal/sim -bench Engine)", err)
	}
	var all map[string]map[string]float64
	if err := json.Unmarshal(data, &all); err != nil {
		t.Fatalf("unparsable BENCH_eib.json: %v", err)
	}
	baseline, ok := all["Engine"]["allocs/op"]
	if !ok {
		t.Skip("baseline has no Engine allocs/op entry")
	}

	// Warm until the wheel reaches steady state. Bucket backings are
	// allocated on first touch and retained, and the churn's far events walk
	// a new higher-level bucket index every op, so it takes a full 64-index
	// lap (not one op) before scheduling stops faulting in fresh backings —
	// the benchmark baseline was likewise recorded after thousands of ops.
	e := sim.NewEngine()
	for i := 0; i < 64; i++ {
		sim.EventChurn(e, sim.ChurnRounds)
	}
	perOp := testing.AllocsPerRun(10, func() { sim.EventChurn(e, sim.ChurnRounds) })
	limit := baseline + 8
	if perOp > limit {
		t.Fatalf("engine churn allocates %.1f allocs/op, baseline %.0f (limit %.0f): a scheduler hot path started allocating",
			perOp, baseline, limit)
	}
}
