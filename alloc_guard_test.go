package cellbe

// The tracing subsystem is specified as zero-cost when off: attaching no
// tracer must leave the EIB/MFC hot path's allocation count exactly where
// the BENCH_eib.json baseline pinned it. This test enforces that in plain
// `go test` runs (and CI), so a regression cannot hide until the next
// manual benchmark pass.

import (
	"encoding/json"
	"os"
	"testing"

	"cellbe/internal/cell"
)

func TestEIBSaturatedAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("full saturated run: skipped in -short mode")
	}
	data, err := os.ReadFile("BENCH_eib.json")
	if err != nil {
		t.Skipf("no baseline: %v (regenerate with go test -bench 'EIBSaturated|Sweep' -benchmem .)", err)
	}
	var all map[string]map[string]float64
	if err := json.Unmarshal(data, &all); err != nil {
		t.Fatalf("unparsable BENCH_eib.json: %v", err)
	}
	baseline, ok := all["EIBSaturated"]["allocs/op"]
	if !ok {
		t.Skip("baseline has no EIBSaturated allocs/op entry")
	}

	sc := saturatedScenario()
	perOp := testing.AllocsPerRun(1, func() {
		cfg := cell.DefaultConfig()
		cfg.Layout = cell.RandomLayout(3)
		sys := cell.New(cfg)
		if _, err := sc.Install(sys); err != nil {
			t.Fatal(err)
		}
		sys.Run()
	})
	// 2% + 16 allocs of slack absorbs runtime-version noise while still
	// catching any per-transfer or per-command regression (32768 transfers
	// per run: even +0.1 allocs/transfer would blow through this).
	limit := baseline*1.02 + 16
	if perOp > limit {
		t.Fatalf("untraced saturated run allocates %.0f allocs/op, baseline %.0f (limit %.0f): tracing hooks are no longer free when off",
			perOp, baseline, limit)
	}
}
