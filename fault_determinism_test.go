package cellbe

// Fault injection must not cost the model its core property: determinism.
// A faulty run is driven by one seeded splitmix64 stream consumed in
// simulation-event order, so the same (scenario, layout seed, fault
// config, fault seed) must reproduce byte-identical statistics — including
// the injected-fault counters — on every run, on every platform. These
// goldens pin that contract the same way determinism_test.go pins the
// healthy scheduler.

import (
	"fmt"
	"testing"

	"cellbe/internal/cell"
	"cellbe/internal/fault"
)

// canonicalFaults is the mixed fault configuration of the goldens:
// every class enabled, at rates high enough to fire often but far from
// wedging the scenarios.
func canonicalFaults() fault.Config {
	return fault.Config{
		MFCRetryRate:  0.01,
		XDRStallRate:  0.05,
		EIBSlowRate:   0.02,
		EIBOutageRate: 0.02,
		DoneDelayRate: 0.02,
	}
}

// faultySignature runs a scenario under injected faults and folds the end
// time, EIB statistics and fault counters into a comparable string. The
// run goes through RunChecked, so it also proves faulty runs pass the
// watchdog and the byte-conservation teardown checks.
func faultySignature(t *testing.T, sc cell.Scenario, seed, faultSeed int64) string {
	t.Helper()
	cfg := cell.DefaultConfig()
	cfg.Layout = cell.RandomLayout(seed)
	cfg.Faults = canonicalFaults()
	cfg.FaultSeed = faultSeed
	sys := cell.New(cfg)
	if _, err := sc.Install(sys); err != nil {
		t.Fatalf("install %s: %v", sc.Kind, err)
	}
	if err := sys.RunChecked(0); err != nil {
		t.Fatalf("faulty %s run failed the watchdog: %v", sc.Kind, err)
	}
	st := sys.Bus.Stats()
	fs := sys.Faults().Stats()
	return fmt.Sprintf("now=%d transfers=%d bytes=%d cmds=%d wait=%d retries=%d stalls=%d slow=%d outages=%d late=%d",
		sys.Eng.Now(), st.Transfers, st.Bytes, st.Commands, st.WaitCycles,
		fs.MFCRetries, fs.XDRStalls, fs.EIBSlow, fs.EIBOutages, fs.DoneDelays)
}

func TestFaultInjectionDeterminism(t *testing.T) {
	const volume = 1 << 20
	cases := []struct {
		name   string
		sc     cell.Scenario
		golden string
	}{
		{
			name:   "pair",
			sc:     cell.Scenario{Kind: "pair", SPEs: 2, Chunk: 4096, Volume: volume},
			golden: "now=135181 transfers=16384 bytes=2097152 cmds=16384 wait=807180 retries=161 stalls=0 slow=310 outages=332 late=366",
		},
		{
			name:   "couples",
			sc:     cell.Scenario{Kind: "couples", SPEs: 8, Chunk: 4096, Volume: volume},
			golden: "now=181409 transfers=65536 bytes=8388608 cmds=65536 wait=1793316 retries=673 stalls=0 slow=1277 outages=1274 late=1301",
		},
		{
			name:   "cycle",
			sc:     cell.Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: volume},
			golden: "now=466242 transfers=131072 bytes=16777216 cmds=131072 wait=37972235 retries=1340 stalls=0 slow=2587 outages=2541 late=2570",
		},
		{
			name:   "mem",
			sc:     cell.Scenario{Kind: "mem", SPEs: 4, Chunk: 16384, Volume: volume, Op: "get"},
			golden: "now=582690 transfers=32768 bytes=4194304 cmds=32768 wait=1521214 retries=340 stalls=1623 slow=644 outages=614 late=679",
		},
		// Workload presets: the fault stream and the workloads' own seeded
		// address streams must not interfere — both stay reproducible.
		{
			name:   "gups",
			sc:     cell.Scenario{Kind: "gups", SPEs: 8, Chunk: 64, Volume: 128 << 10, Op: "both"},
			golden: "now=607958 transfers=32768 bytes=2097152 cmds=32768 wait=153871 retries=336 stalls=1601 slow=659 outages=656 late=628",
		},
		{
			name:   "qcd",
			sc:     cell.Scenario{Kind: "qcd", SPEs: 8, Chunk: 4096, Volume: volume},
			golden: "now=2495588 transfers=133120 bytes=17039360 cmds=133120 wait=2492123 retries=1370 stalls=6496 slow=2649 outages=2602 late=2672",
		},
		{
			name:   "md",
			sc:     cell.Scenario{Kind: "md", SPEs: 8, Chunk: 512, Volume: volume},
			golden: "now=1232019 transfers=65536 bytes=8388608 cmds=65536 wait=2421842 retries=627 stalls=3259 slow=1289 outages=1304 late=1333",
		},
		{
			name:   "stream",
			sc:     cell.Scenario{Kind: "stream", SPEs: 8, Chunk: 16384, Volume: volume, Op: "triad"},
			golden: "now=3664750 transfers=196608 bytes=25165824 cmds=196608 wait=2554504 retries=1983 stalls=9893 slow=3896 outages=3926 late=3952",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := faultySignature(t, tc.sc, 3, 7)
			if got != tc.golden {
				t.Errorf("faulty run diverged from golden\n got: %s\nwant: %s", got, tc.golden)
			}
		})
	}
}

// TestFaultInjectionRepeatable guards the in-process property directly:
// back-to-back faulty runs with the same seeds must agree, and a different
// fault seed must actually change the outcome (the stream is live).
func TestFaultInjectionRepeatable(t *testing.T) {
	sc := cell.Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: 1 << 18}
	a := faultySignature(t, sc, 7, 11)
	b := faultySignature(t, sc, 7, 11)
	if a != b {
		t.Fatalf("back-to-back faulty runs diverged:\n%s\n%s", a, b)
	}
	c := faultySignature(t, sc, 7, 12)
	if a == c {
		t.Fatal("different fault seeds produced identical runs; injector seed is dead")
	}
}
