//go:build !race

package cellbe

const raceEnabled = false
