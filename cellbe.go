// Package cellbe is a cycle-approximate simulator of the Cell Broadband
// Engine's communication architecture, built to reproduce "Performance
// Analysis of Cell Broadband Engine for High Memory Bandwidth
// Applications" (Jiménez-González, Martorell, Ramírez — ISPASS 2007).
//
// The model covers the parts of the machine that shape memory bandwidth:
// the Element Interconnect Bus (four 16-byte rings at half the CPU clock),
// the eight SPEs with their local stores and MFC DMA engines (element and
// list commands, tag groups, fences), the MIC-attached XDR memory plus the
// second blade processor's bank behind the IOIF, and the PPE with its
// write-through L1, L2, SMT threads, gathering store queue and stream
// prefetcher. DMA moves real bytes, so the simulator doubles as a
// functional library for writing Cell-style double-buffered and streaming
// programs in Go.
//
// This package re-exports the public surface:
//
//	sys := cellbe.NewSystem(cellbe.DefaultConfig())
//	buf := sys.Alloc(1<<20, 128)
//	sys.SPEs[0].Run("kernel", func(ctx *cellbe.SPUContext) {
//	    ctx.Get(0, buf, 16384, 0)
//	    ctx.WaitTag(0)
//	})
//	sys.Run()
//
// The experiment suite that reproduces every figure of the paper lives
// behind RunExperiment / Experiments; the cellbench command is a thin CLI
// over it.
package cellbe

import (
	"io"

	"cellbe/internal/cell"
	"cellbe/internal/core"
	"cellbe/internal/eib"
	"cellbe/internal/mfc"
	"cellbe/internal/ppe"
	"cellbe/internal/report"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
	"cellbe/internal/task"
)

// Re-exported machine model types.
type (
	// System is a fully wired Cell BE machine.
	System = cell.System
	// Config configures the machine (clock, EIB, memory, MFC, PPE, SPE
	// layout).
	Config = cell.Config
	// SPE is one Synergistic Processor Element.
	SPE = spe.SPE
	// SPUContext is the coroutine context handed to SPU programs.
	SPUContext = spe.Context
	// Mailbox is a bounded 32-bit message queue.
	Mailbox = spe.Mailbox
	// PPEThread is one PPU SMT hardware thread running a kernel.
	PPEThread = ppe.Thread
	// DMAList is a list-DMA element (effective address + size).
	DMAList = mfc.ListElem
	// RampID is a physical position on the EIB ring.
	RampID = eib.RampID
	// Time is simulated time in CPU cycles.
	Time = sim.Time
)

// Re-exported experiment suite types.
type (
	// Params controls experiment volume, repetition and layout seeds.
	Params = core.Params
	// Result is a reproduced figure (curves of bandwidth summaries).
	Result = core.Result
	// Experiment is a named, runnable figure reproduction.
	Experiment = core.Experiment
	// Pipeline is a multi-SPE streaming pipeline (the §1/§5 workload).
	Pipeline = core.Pipeline
)

// Re-exported task-runtime types (the CellSs-style offload runtime).
type (
	// Task is one unit of offloaded work with main-memory operands.
	Task = task.Task
	// TaskBuffer names a task operand (effective address + size).
	TaskBuffer = task.Buffer
	// TaskRuntime schedules tasks over SPE workers with inferred
	// dependencies.
	TaskRuntime = task.Runtime
	// TaskPolicy selects the runtime's data-movement strategy.
	TaskPolicy = task.Policy
	// TaskStats summarizes a runtime execution.
	TaskStats = task.Stats
)

// Task runtime data-movement policies.
const (
	// ThroughMemory stages every operand via main memory.
	ThroughMemory = task.ThroughMemory
	// Forwarding moves producer-consumer intermediates LS-to-LS.
	Forwarding = task.Forwarding
)

// NewTaskRuntime builds a task runtime over the given logical SPE workers.
func NewTaskRuntime(sys *System, workers []int, policy TaskPolicy) *TaskRuntime {
	return task.New(sys, workers, policy)
}

// NumSPEs is the number of SPEs on a CBE chip.
const NumSPEs = cell.NumSPEs

// LocalStoreBytes is the size of each SPE's local store.
const LocalStoreBytes = spe.LocalStoreBytes

// MaxDMA is the architectural maximum DMA element size (16 KB).
const MaxDMA = mfc.MaxTransfer

// NewSystem builds a machine from cfg.
func NewSystem(cfg Config) *System { return cell.New(cfg) }

// NewMailbox creates a bounded 32-bit message queue on the system's
// engine, for custom handshakes between kernels (beyond each SPE's
// built-in inbox/outbox).
func NewMailbox(eng *sim.Engine, capacity int) *Mailbox {
	return spe.NewMailbox(eng, capacity)
}

// DefaultConfig returns the calibrated configuration of the paper's blade:
// one 2.1 GHz Cell processor with both memory banks visible.
func DefaultConfig() Config { return cell.DefaultConfig() }

// RandomLayout samples a logical-to-physical SPE mapping from seed
// (seed 0 is the identity), standing in for the placement opacity of
// libspe 1.1.
func RandomLayout(seed int64) []int { return cell.RandomLayout(seed) }

// DefaultParams returns quick experiment parameters (2 MB per SPE, 10
// layout samples); PaperParams returns the full 32 MB per-SPE volume.
func DefaultParams() Params { return core.DefaultParams() }

// PaperParams returns the original paper's experiment volume.
func PaperParams() Params { return core.PaperParams() }

// Experiments lists every reproducible figure.
func Experiments() []Experiment { return core.Experiments() }

// RunExperiment runs the named experiment (see Experiments) with params.
func RunExperiment(name string, params Params) (*Result, error) {
	e, err := core.Lookup(name)
	if err != nil {
		return nil, err
	}
	return e.Run(params)
}

// NewPipeline builds a streaming pipeline over sys.SPEs[first:first+count]
// moving volume bytes from src to dst in main memory.
func NewPipeline(sys *System, first, count int, src, dst, volume int64) *Pipeline {
	return core.NewPipeline(sys, first, count, src, dst, volume)
}

// WriteTable renders a result as an aligned text table; full adds
// min/max/median columns.
func WriteTable(w io.Writer, r *Result, full bool) error { return report.Table(w, r, full) }

// WriteCSV renders a result as CSV.
func WriteCSV(w io.Writer, r *Result) error { return report.CSV(w, r) }

// WriteChart renders a result as an ASCII chart of the given width.
func WriteChart(w io.Writer, r *Result, width int) error { return report.Chart(w, r, width) }
