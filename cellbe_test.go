package cellbe

// Integration tests of the public API surface: everything a downstream
// user would touch, exercised end to end.

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	payload := []byte("public API round trip payload!!!") // 32 bytes
	src := sys.Alloc(128, 128)
	dst := sys.Alloc(128, 128)
	sys.Mem.RAM().Write(src, payload)

	sys.SPEs[0].Run("k", func(ctx *SPUContext) {
		ctx.Get(0, src, 128, 0)
		ctx.WaitTag(0)
		ctx.Put(0, dst, 128, 1)
		ctx.WaitTag(1)
	})
	sys.Run()

	got := make([]byte, len(payload))
	sys.Mem.RAM().Read(dst, got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip got %q", got)
	}
}

func TestPublicExperimentList(t *testing.T) {
	exps := Experiments()
	if len(exps) < 14 {
		t.Fatalf("%d experiments exported, want >= 14", len(exps))
	}
}

func TestPublicRunExperimentAndRender(t *testing.T) {
	p := DefaultParams()
	p.Runs = 1
	p.BytesPerSPE = 512 << 10
	res, err := RunExperiment("spe-ls", p)
	if err != nil {
		t.Fatal(err)
	}
	var table, csv, chart strings.Builder
	if err := WriteTable(&table, res, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteChart(&chart, res, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "33.60") {
		t.Errorf("LS table should include the 33.6 GB/s peak:\n%s", table.String())
	}
	if len(csv.String()) == 0 || len(chart.String()) == 0 {
		t.Error("renderers produced no output")
	}
}

func TestPublicRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("does-not-exist", DefaultParams()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestPublicDMAList(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	a := sys.Alloc(4096, 128)
	b := sys.Alloc(4096, 128)
	sys.Mem.RAM().Write(a, []byte("first"))
	sys.Mem.RAM().Write(b, []byte("second"))
	sys.SPEs[2].Run("k", func(ctx *SPUContext) {
		ctx.GetList(0, []DMAList{{EA: a, Size: 128}, {EA: b, Size: 128}}, 3)
		ctx.WaitTag(3)
	})
	sys.Run()
	ls := sys.SPEs[2].LS()
	if string(ls[:5]) != "first" || string(ls[128:134]) != "second" {
		t.Fatalf("list GET landed wrong: %q %q", ls[:5], ls[128:134])
	}
}

func TestPublicPPEThread(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	buf := sys.Alloc(1<<20, 128)
	var cycles Time
	sys.PPE.Spawn(0, "k", func(th *PPEThread) {
		start := th.Now()
		th.StreamLoad(buf, 1<<20, 8)
		cycles = th.Now() - start
	})
	sys.Run()
	if cycles <= 0 {
		t.Fatal("PPE kernel did not run")
	}
	bw := sys.GBps(1<<20, cycles)
	if bw < 1 || bw > 9 {
		t.Fatalf("PPE memory load %.2f GB/s out of plausible range", bw)
	}
}

func TestPublicPipeline(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	src := sys.Alloc(64<<10, 128)
	dst := sys.Alloc(64<<10, 128)
	sys.Mem.RAM().Write(src, []byte("pipe"))
	pl := NewPipeline(sys, 0, 3, src, dst, 64<<10)
	pl.Start()
	sys.Run()
	got := make([]byte, 4)
	sys.Mem.RAM().Read(dst, got)
	if string(got) != "pipe" {
		t.Fatalf("pipeline moved %q", got)
	}
}

func TestPublicRandomLayout(t *testing.T) {
	l := RandomLayout(42)
	seen := map[int]bool{}
	for _, p := range l {
		seen[p] = true
	}
	if len(seen) != NumSPEs {
		t.Fatalf("layout %v is not a permutation", l)
	}
	cfg := DefaultConfig()
	cfg.Layout = l
	sys := NewSystem(cfg)
	if len(sys.SPEs) != NumSPEs {
		t.Fatal("system must expose all SPEs")
	}
}

// Determinism: the same configuration and kernels produce the exact same
// simulated timing, run after run.
func TestPublicDeterminism(t *testing.T) {
	run := func() Time {
		cfg := DefaultConfig()
		cfg.Layout = RandomLayout(5)
		sys := NewSystem(cfg)
		base := sys.Alloc(1<<20, 1<<16)
		for i := 0; i < 4; i++ {
			i := i
			sys.SPEs[i].Run("k", func(ctx *SPUContext) {
				for off := int64(0); off < 1<<20; off += MaxDMA {
					ctx.Get(int(off)%(128<<10), base+off, MaxDMA, i%4)
				}
				ctx.WaitTagMask(0xf)
			})
		}
		sys.Run()
		return sys.Eng.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("simulation not deterministic: %d vs %d cycles", a, b)
	}
}
