module cellbe

go 1.22
