//go:build race

package cellbe

// raceEnabled reports whether the race detector is compiled in, so
// timed assertions can skip themselves (the sanitizer's ~10x slowdown
// would fail any honest throughput band).
const raceEnabled = true
