// Package xdr models the Cell blade's main memory system: the on-chip
// Memory Interface Controller (MIC) in front of the local XDR DRAM bank,
// and the second processor's bank reached through the IOIF0 interface.
//
// The experimental platform of the paper is a dual-Cell blade booted with
// maxcpus=2: only the first chip runs code, but Linux (NUMA enabled, 64 KB
// pages) spreads allocations across both 256 MB banks. The local bank is
// reachable at 16.8 GB/s through the MIC; the remote bank is behind the
// 7 GB/s IOIF link. Both caps, the DRAM service time per 128-byte line,
// refresh, and read/write turnaround are modeled; together with the MFC's
// bounded outstanding-transfer window they produce the paper's headline
// result that a single SPE sustains only ~10 GB/s while two or more SPEs
// reach ~20 GB/s by hitting both banks concurrently.
package xdr

import (
	"fmt"

	"cellbe/internal/eib"
	"cellbe/internal/fault"
	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
	"cellbe/internal/trace"
)

// LineBytes is the coherence/DMA granularity: requests never cross a
// 128-byte boundary.
const LineBytes = 128

// Config holds the memory system parameters, in CPU cycles at 2.1 GHz.
type Config struct {
	// TotalBytes is the size of the physical address space (512 MB).
	TotalBytes int64
	// PageBytes is the OS page size used for NUMA interleaving (64 KB).
	PageBytes int64
	// Interleave spreads page placement across the two banks (the
	// measured system's behaviour: the paper's multi-SPE results exceed
	// the single-bank 16.8 GB/s, proving both banks are hit). When
	// false, the lower half of the address space is bank 0 and the upper
	// half bank 1.
	Interleave bool
	// RemotePagesPer10 sets the interleave ratio: how many pages out of
	// every 10 land on the remote bank. The default 3 matches the
	// capacity ratio of the two paths (16.8 : 7 GB/s), which is the
	// split at which the paper's aggregate numbers (≈10 GB/s for one
	// SPE, ≈20 for two, ≈23 peak) are simultaneously achievable — a
	// Linux NUMA allocation that favours the local node.
	RemotePagesPer10 int

	// LocalServiceCycles is the local bank's occupancy per 128-byte line:
	// 16 cycles = 16.8 GB/s at 2.1 GHz.
	LocalServiceCycles sim.Time
	// LocalReadLatency is the extra pipelined latency from bank issue to
	// first data (row activation, XDR transfer, MIC queues).
	LocalReadLatency sim.Time
	// LocalWriteLatency is the corresponding posted-write drain latency.
	LocalWriteLatency sim.Time

	// RemoteServiceCycles is the IOIF link occupancy per 128-byte line:
	// ~38 cycles = 7 GB/s at 2.1 GHz. The remote bank itself is faster
	// than the link, so the link is the binding constraint.
	RemoteServiceCycles sim.Time
	// RemoteExtraLatency is added to every remote access (crossing the
	// IOIF and the second chip's EIB and MIC).
	RemoteExtraLatency sim.Time

	// TurnaroundCycles is the penalty when a bank switches between read
	// and write streams. The MIC gathers and reorders accesses, so the
	// per-switch cost visible at line granularity is small.
	TurnaroundCycles sim.Time
	// RefreshPeriod/RefreshCycles: every RefreshPeriod cycles the bank is
	// unavailable for RefreshCycles (a few percent of time, the paper's
	// "memory having to do other operations, like refreshing").
	RefreshPeriod sim.Time
	RefreshCycles sim.Time

	// NoisePeriod/NoiseCycles inject OS/runtime interference on the local
	// bank with the same priority mechanism as refresh. Zero (default)
	// disables it; the paper's warm-up discipline exists precisely to
	// exclude such effects, so this is a failure-injection knob.
	NoisePeriod sim.Time
	NoiseCycles sim.Time
}

// DefaultConfig returns parameters calibrated for the paper's blade.
func DefaultConfig() Config {
	return Config{
		TotalBytes:          512 << 20,
		PageBytes:           64 << 10,
		Interleave:          true,
		RemotePagesPer10:    3,
		LocalServiceCycles:  16,
		LocalReadLatency:    250,
		LocalWriteLatency:   220,
		RemoteServiceCycles: 38,
		RemoteExtraLatency:  250,
		TurnaroundCycles:    2,
		RefreshPeriod:       8400,
		RefreshCycles:       180,
	}
}

type opKind int

const (
	opRead opKind = iota
	opWrite
)

type bank struct {
	srv         *sim.Server
	lastOp      opKind
	cfg         *Config
	faults      *fault.Injector
	tracer      *trace.Tracer
	track       trace.Track
	service     sim.Time
	nextRefresh sim.Time
	nextNoise   sim.Time
	noisy       bool
	perf        *perfctr.BankCounters
	stats       BankStats
}

// BankStats counts per-bank activity.
type BankStats struct {
	ReadBytes  int64
	WriteBytes int64
	Requests   int64
	Refreshes  int64
	// FaultStalls counts injected busy/refresh-collision stalls (see
	// the fault package); zero unless fault injection is enabled.
	FaultStalls int64
}

// Memory is the two-bank memory system attached to the EIB.
type Memory struct {
	eng   *sim.Engine
	bus   *eib.EIB
	cfg   Config
	banks [2]*bank
	ram   *RAM
}

// SetFaults attaches a fault injector to both banks (nil disables
// injection). Wired by the cell package at system assembly.
func (m *Memory) SetFaults(inj *fault.Injector) {
	for _, b := range m.banks {
		b.faults = inj
	}
}

// SetTracer attaches an event tracer to both banks (nil disables tracing,
// the default). Wired by the cell package at system assembly, like
// SetFaults.
func (m *Memory) SetTracer(tr *trace.Tracer) {
	for i, b := range m.banks {
		b.tracer = tr
		b.track = trace.BankTrack(i)
	}
}

// SetPerf attaches per-bank perf counters (nil disables counting, the
// default). Wired by the cell package at system assembly, like SetFaults.
func (m *Memory) SetPerf(pc *perfctr.Counters) {
	for i, b := range m.banks {
		if pc == nil {
			b.perf = nil
		} else {
			b.perf = &pc.XDR[i]
		}
	}
}

// Reset returns the memory system to the state New(eng, bus, cfg) would
// build, keeping both banks' server records (with their queue capacity)
// and the RAM's page map. Attachments (faults, tracer, perf) are cleared
// as on a fresh Memory; the assembling layer rewires them. Part of the
// warm-system recycling path.
func (m *Memory) Reset(cfg Config) {
	if cfg.TotalBytes != m.cfg.TotalBytes || cfg.PageBytes != m.cfg.PageBytes {
		m.ram = NewRAM(cfg.TotalBytes, cfg.PageBytes)
	} else {
		m.ram.Reset()
	}
	m.cfg = cfg
	for i, b := range m.banks {
		b.srv.Reset()
		b.lastOp = 0
		b.faults = nil
		b.tracer = nil
		b.track = 0
		if i == 0 {
			b.service = cfg.LocalServiceCycles
		} else {
			b.service = cfg.RemoteServiceCycles
		}
		b.nextRefresh, b.nextNoise = 0, 0
		b.perf = nil
		b.stats = BankStats{}
	}
}

// New builds the memory system on the given bus.
func New(eng *sim.Engine, bus *eib.EIB, cfg Config) *Memory {
	m := &Memory{eng: eng, bus: bus, cfg: cfg, ram: NewRAM(cfg.TotalBytes, cfg.PageBytes)}
	for i := range m.banks {
		b := &bank{srv: sim.NewServer(eng), cfg: &m.cfg}
		if i == 0 {
			b.service = cfg.LocalServiceCycles
		} else {
			b.service = cfg.RemoteServiceCycles
		}
		m.banks[i] = b
	}
	// OS interference lands on the local bank: that is where the kernel
	// and daemons live on the measured blade.
	m.banks[0].noisy = true
	return m
}

// applyRefresh lazily charges refresh time: whenever the bank is used past
// its next refresh point, it loses RefreshCycles with priority over the
// queued accesses. Refreshes falling in idle periods delay nobody and are
// skipped, so the simulation needs no recurring events.
func (b *bank) applyRefresh(now sim.Time) {
	if b.cfg.RefreshPeriod <= 0 || b.cfg.RefreshCycles <= 0 {
		return
	}
	if now >= b.nextRefresh {
		b.stats.Refreshes++
		b.perf.Refresh()
		b.srv.Reserve(now, b.cfg.RefreshCycles)
		b.nextRefresh = now + b.cfg.RefreshPeriod
	}
}

// applyNoise injects configured OS interference the same lazy way.
func (b *bank) applyNoise(now sim.Time) {
	if !b.noisy || b.cfg.NoisePeriod <= 0 || b.cfg.NoiseCycles <= 0 {
		return
	}
	if now >= b.nextNoise {
		b.srv.Reserve(now, b.cfg.NoiseCycles)
		b.nextNoise = now + b.cfg.NoisePeriod
	}
}

// RAM returns the byte-addressable storage backing the memory system.
func (m *Memory) RAM() *RAM { return m.ram }

// Config returns the configuration in use.
func (m *Memory) Config() Config { return m.cfg }

// BankStats returns activity counters for bank 0 (local) or 1 (remote).
func (m *Memory) BankStats(i int) BankStats { return m.banks[i].stats }

// Bank returns which bank (0 local, 1 remote) owns addr. Interleaved
// placement scatters RemotePagesPer10 of every 10 pages onto the remote
// bank, evenly spread (the multiply-by-3 walk visits every residue).
func (m *Memory) Bank(addr int64) int {
	if m.cfg.Interleave {
		idx := addr / m.cfg.PageBytes
		if int((idx*3+3)%10) < m.cfg.RemotePagesPer10 {
			return 1
		}
		return 0
	}
	if addr < m.cfg.TotalBytes/2 {
		return 0
	}
	return 1
}

// Ramp returns the EIB ramp that sources/sinks data for addr's bank: the
// MIC for the local bank, IOIF0 for the remote one.
func (m *Memory) Ramp(addr int64) eib.RampID {
	if m.Bank(addr) == 0 {
		return eib.RampMIC
	}
	return eib.RampIOIF0
}

// RequestError is a typed rejection of a malformed line request: wrong
// size, out-of-range address, or a span crossing a line boundary. CLI
// layers print it as a clean message; inside the model it signals a
// broken invariant (the MFC validates commands before packetizing).
type RequestError struct {
	Addr   int64
	Bytes  int
	Reason string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("xdr: request %#x+%d: %s", e.Addr, e.Bytes, e.Reason)
}

// CheckSpan validates a line request against the address space, returning
// a *RequestError describing the first violated rule, or nil.
func (m *Memory) CheckSpan(addr int64, n int) error {
	if n <= 0 || n > LineBytes {
		return &RequestError{Addr: addr, Bytes: n, Reason: fmt.Sprintf("size must be 1..%d", LineBytes)}
	}
	if addr < 0 || addr+int64(n) > m.cfg.TotalBytes {
		return &RequestError{Addr: addr, Bytes: n, Reason: "address out of range"}
	}
	if addr/LineBytes != (addr+int64(n)-1)/LineBytes {
		return &RequestError{Addr: addr, Bytes: n, Reason: fmt.Sprintf("crosses a %d-byte line", LineBytes)}
	}
	return nil
}

// checkSpan enforces the line-request invariant on the internal Read and
// Write paths. The callers (the MFCs, the PPE cache) validate user input
// before packetizing, so a violation here is a model bug: panic with the
// typed error so drivers that recover process panics still surface a
// structured message.
func (m *Memory) checkSpan(addr int64, n int) {
	if err := m.CheckSpan(addr, n); err != nil {
		panic(err)
	}
}

func (b *bank) occupy(kind opKind, eng *sim.Engine, turn sim.Time, n int, done func(end sim.Time)) {
	b.applyRefresh(eng.Now())
	b.applyNoise(eng.Now())
	// Injected bank-busy stall: like a refresh collision, the bank is
	// stolen with priority over the queued accesses.
	if d := b.faults.XDRStall(); d > 0 {
		b.stats.FaultStalls++
		b.srv.Reserve(eng.Now(), d)
	}
	dur := b.service
	if b.lastOp != kind {
		dur += turn
		b.lastOp = kind
	}
	b.stats.Requests++
	b.srv.Request(dur, func(start sim.Time) {
		b.tracer.Emit(b.track, trace.KindBank, start, eng.Now(), int64(n), int64(kind), 0, 0)
		done(eng.Now())
	})
}

// Read performs a line read: command phase on the EIB, bank occupancy,
// then a data transfer from the bank's ramp to the requestor. dst receives
// the bytes when the transfer completes, at which point done fires. dst
// may be nil to model a timing-only access.
func (m *Memory) Read(requestor eib.RampID, addr int64, n int, earliest sim.Time, dst []byte, done func(end sim.Time)) {
	m.checkSpan(addr, n)
	bk := m.banks[m.Bank(addr)]
	bk.perf.Access(addr, n, false)
	ramp := m.Ramp(addr)
	lat := m.cfg.LocalReadLatency
	if m.Bank(addr) == 1 {
		lat += m.cfg.RemoteExtraLatency
	}
	ready := m.bus.Command(earliest)
	m.eng.At(ready, func() {
		bk.occupy(opRead, m.eng, m.cfg.TurnaroundCycles, n, func(svcEnd sim.Time) {
			bk.stats.ReadBytes += int64(n)
			m.bus.Transfer(ramp, requestor, n, svcEnd+lat, func(end sim.Time) {
				if dst != nil {
					m.ram.Read(addr, dst[:n])
				}
				done(end)
			})
		})
	})
}

// Write performs a line write: command phase, data transfer from the
// requestor to the bank's ramp, then bank occupancy. done fires when the
// bank has absorbed the write (the point at which the MFC retires the
// transfer for flow-control purposes). src may be nil for timing-only.
func (m *Memory) Write(requestor eib.RampID, addr int64, n int, earliest sim.Time, src []byte, done func(end sim.Time)) {
	m.checkSpan(addr, n)
	bk := m.banks[m.Bank(addr)]
	bk.perf.Access(addr, n, true)
	ramp := m.Ramp(addr)
	lat := m.cfg.LocalWriteLatency
	if m.Bank(addr) == 1 {
		lat += m.cfg.RemoteExtraLatency
	}
	ready := m.bus.Command(earliest)
	m.eng.At(ready, func() {
		m.bus.Transfer(requestor, ramp, n, m.eng.Now(), func(xferEnd sim.Time) {
			bk.occupy(opWrite, m.eng, m.cfg.TurnaroundCycles, n, func(svcEnd sim.Time) {
				if src != nil {
					m.ram.Write(addr, src[:n])
				}
				bk.stats.WriteBytes += int64(n)
				ack := svcEnd + lat
				m.eng.AtCall(ack, done, ack)
			})
		})
	})
}
