package xdr

import (
	"bytes"
	"testing"
	"testing/quick"

	"cellbe/internal/eib"
	"cellbe/internal/sim"
)

func newMem(interleave bool) (*sim.Engine, *Memory) {
	eng := sim.NewEngine()
	bus := eib.New(eng, eib.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Interleave = interleave
	cfg.RefreshPeriod = 0 // most tests want exact timing
	return eng, New(eng, bus, cfg)
}

func TestRAMReadWriteRoundTrip(t *testing.T) {
	r := NewRAM(1<<20, 64<<10)
	data := []byte("hello, cell broadband engine")
	r.Write(12345, data)
	got := make([]byte, len(data))
	r.Read(12345, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip got %q, want %q", got, data)
	}
}

func TestRAMCrossPage(t *testing.T) {
	r := NewRAM(1<<20, 64<<10)
	addr := int64(64<<10) - 5
	data := []byte("0123456789")
	r.Write(addr, data)
	got := make([]byte, len(data))
	r.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-page round trip got %q, want %q", got, data)
	}
	if r.TouchedPages() != 2 {
		t.Fatalf("touched %d pages, want 2", r.TouchedPages())
	}
}

func TestRAMUntouchedReadsZero(t *testing.T) {
	r := NewRAM(1<<20, 64<<10)
	got := make([]byte, 16)
	for i := range got {
		got[i] = 0xff
	}
	r.Read(999, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched memory must read as zero")
		}
	}
	if r.TouchedPages() != 0 {
		t.Fatal("reads must not materialize pages")
	}
}

func TestRAMOutOfRangePanics(t *testing.T) {
	r := NewRAM(1<<20, 64<<10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access should panic")
		}
	}()
	r.Write((1<<20)-4, make([]byte, 8))
}

// Property: writes then reads of arbitrary payloads at arbitrary offsets
// round-trip.
func TestRAMRoundTripProperty(t *testing.T) {
	r := NewRAM(1<<20, 4<<10)
	f := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		addr := int64(off) % (1<<20 - int64(len(payload)))
		r.Write(addr, payload)
		got := make([]byte, len(payload))
		r.Read(addr, got)
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBankInterleave(t *testing.T) {
	_, m := newMem(true)
	page := m.Config().PageBytes
	// The configured ratio must hold over any window of 10 pages, with
	// remote pages spread out rather than clustered.
	remote := 0
	maxRun := 0
	run := 0
	for i := int64(0); i < 10; i++ {
		if m.Bank(i*page) == 1 {
			remote++
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	want := m.Config().RemotePagesPer10
	if remote != want {
		t.Fatalf("%d of 10 pages remote, want %d", remote, want)
	}
	if maxRun > 1 {
		t.Fatalf("remote pages clustered (run of %d)", maxRun)
	}
	local := int64(0)
	if m.Bank(local) != 0 {
		// find a local page for the ramp check
		for m.Bank(local) != 0 {
			local += page
		}
	}
	remoteAddr := int64(0)
	for m.Bank(remoteAddr) != 1 {
		remoteAddr += page
	}
	if m.Ramp(local) != eib.RampMIC || m.Ramp(remoteAddr) != eib.RampIOIF0 {
		t.Fatal("bank ramps wrong")
	}
}

func TestBankContiguous(t *testing.T) {
	_, m := newMem(false)
	half := m.Config().TotalBytes / 2
	if m.Bank(0) != 0 || m.Bank(half-1) != 0 || m.Bank(half) != 1 {
		t.Fatal("contiguous bank split wrong")
	}
}

func TestReadDeliversData(t *testing.T) {
	eng, m := newMem(true)
	want := []byte("cell blade payload, 32 bytes ok!")
	m.RAM().Write(4096, want)
	got := make([]byte, len(want))
	doneAt := sim.Time(0)
	m.Read(eib.RampSPE0, 4096, len(want), 0, got, func(e sim.Time) { doneAt = e })
	eng.Run()
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
	if doneAt <= 0 {
		t.Fatal("done must fire with a positive end time")
	}
	st := m.BankStats(0)
	if st.ReadBytes != int64(len(want)) {
		t.Fatalf("bank read bytes %d, want %d", st.ReadBytes, len(want))
	}
}

func TestWriteDeliversData(t *testing.T) {
	eng, m := newMem(true)
	want := []byte("written through the MIC")
	done := false
	m.Write(eib.RampSPE0, 8192, len(want), 0, want, func(sim.Time) { done = true })
	eng.Run()
	if !done {
		t.Fatal("write did not complete")
	}
	got := make([]byte, len(want))
	m.RAM().Read(8192, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("memory holds %q, want %q", got, want)
	}
}

func TestReadLatencyLocalVsRemote(t *testing.T) {
	eng, m := newMem(true)
	page := m.Config().PageBytes
	remoteAddr := int64(0)
	for m.Bank(remoteAddr) != 1 {
		remoteAddr += page
	}
	var localEnd, remoteEnd sim.Time
	m.Read(eib.RampSPE0, 0, 128, 0, nil, func(e sim.Time) { localEnd = e })
	eng.Run()
	m.Read(eib.RampSPE0, remoteAddr, 128, eng.Now(), nil, func(e sim.Time) { remoteEnd = e })
	start := eng.Now()
	eng.Run()
	if remoteEnd-start <= localEnd {
		t.Fatalf("remote read (%d) must be slower than local (%d)", remoteEnd-start, localEnd)
	}
}

func TestLineCrossingPanics(t *testing.T) {
	_, m := newMem(true)
	defer func() {
		if recover() == nil {
			t.Fatal("line-crossing request should panic")
		}
	}()
	m.Read(eib.RampSPE0, 100, 64, 0, nil, func(sim.Time) {})
}

func TestOversizeRequestPanics(t *testing.T) {
	_, m := newMem(true)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize request should panic")
		}
	}()
	m.Read(eib.RampSPE0, 0, 256, 0, nil, func(sim.Time) {})
}

// Bank throughput: N back-to-back line reads from one bank cannot finish
// faster than N * service time.
func TestBankServiceRateLimits(t *testing.T) {
	eng, m := newMem(false) // contiguous: all in bank 0
	const n = 100
	var last sim.Time
	for i := 0; i < n; i++ {
		m.Read(eib.RampSPE0, int64(i)*128, 128, 0, nil, func(e sim.Time) { last = e })
	}
	eng.Run()
	min := sim.Time(n) * m.Config().LocalServiceCycles
	if last < min {
		t.Fatalf("%d reads finished at %d, faster than bank service floor %d", n, last, min)
	}
	// And not absurdly slower: latency is pipelined, so the total should
	// be service time plus one latency tail, within slack.
	max := min + m.Config().LocalReadLatency + 500
	if last > max {
		t.Fatalf("%d reads finished at %d, want <= %d (latency must pipeline)", n, last, max)
	}
}

// Remote bank is capped by the IOIF link at ~7 GB/s: service 38 cycles per
// line vs 16 locally.
func TestRemoteSlowerThanLocalThroughput(t *testing.T) {
	measure := func(addr0 int64) sim.Time {
		eng, m := newMem(false)
		var last sim.Time
		for i := 0; i < 50; i++ {
			m.Read(eib.RampSPE0, addr0+int64(i)*128, 128, 0, nil, func(e sim.Time) { last = e })
		}
		eng.Run()
		return last
	}
	local := measure(0)
	remote := measure(256 << 20)
	if remote <= local {
		t.Fatalf("remote stream (%d) must be slower than local (%d)", remote, local)
	}
}

func TestTurnaroundPenalty(t *testing.T) {
	// Use an exaggerated turnaround so the mechanism dominates the small
	// latency differences between the read and write completion paths.
	runPattern := func(alternate bool) sim.Time {
		eng := sim.NewEngine()
		bus := eib.New(eng, eib.DefaultConfig())
		cfg := DefaultConfig()
		cfg.Interleave = false
		cfg.RefreshPeriod = 0
		cfg.TurnaroundCycles = 50
		m := New(eng, bus, cfg)
		var last sim.Time
		buf := make([]byte, 128)
		for i := 0; i < 40; i++ {
			addr := int64(i) * 128
			if alternate && i%2 == 1 {
				m.Write(eib.RampSPE0, addr, 128, 0, buf, func(e sim.Time) { last = e })
			} else {
				m.Read(eib.RampSPE0, addr, 128, 0, nil, func(e sim.Time) { last = e })
			}
		}
		eng.Run()
		return last
	}
	pure := runPattern(false)
	mixed := runPattern(true)
	if mixed <= pure {
		t.Fatalf("alternating read/write (%d) must pay turnaround vs pure reads (%d)", mixed, pure)
	}
}

func TestRefreshStealsBandwidth(t *testing.T) {
	run := func(refresh bool) sim.Time {
		eng := sim.NewEngine()
		bus := eib.New(eng, eib.DefaultConfig())
		cfg := DefaultConfig()
		cfg.Interleave = false
		if !refresh {
			cfg.RefreshPeriod = 0
		}
		m := New(eng, bus, cfg)
		var last sim.Time
		for i := 0; i < 2000; i++ {
			m.Read(eib.RampSPE0, int64(i)*128, 128, 0, nil, func(e sim.Time) { last = e })
		}
		eng.Run()
		return last
	}
	with := run(true)
	without := run(false)
	if with <= without {
		t.Fatalf("refresh must slow a saturating stream: with=%d without=%d", with, without)
	}
}

// FuzzRAM round-trips random writes through the sparse page store.
func FuzzRAM(f *testing.F) {
	f.Add(int64(0), []byte("seed"))
	f.Add(int64(65530), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) // page crossing
	f.Fuzz(func(t *testing.T, addr int64, payload []byte) {
		if len(payload) == 0 || len(payload) > 1<<16 {
			return
		}
		r := NewRAM(1<<20, 64<<10)
		if addr < 0 {
			addr = -addr
		}
		addr %= 1<<20 - int64(len(payload))
		r.Write(addr, payload)
		got := make([]byte, len(payload))
		r.Read(addr, got)
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch at %#x", addr)
		}
	})
}
