package xdr

import "fmt"

// RAM is sparse byte-addressable storage: pages are allocated on first
// touch so a 512 MB address space costs only what the workload touches.
// It carries the *contents* of memory; all timing lives in Memory.
type RAM struct {
	total    int64
	pageSize int64
	pages    map[int64][]byte
}

// NewRAM returns storage for total bytes, paged at pageSize.
func NewRAM(total, pageSize int64) *RAM {
	if total <= 0 || pageSize <= 0 || total%pageSize != 0 {
		panic(fmt.Sprintf("xdr: bad RAM geometry total=%d page=%d", total, pageSize))
	}
	return &RAM{total: total, pageSize: pageSize, pages: make(map[int64][]byte)}
}

// Size returns the address-space size in bytes.
func (r *RAM) Size() int64 { return r.total }

// Reset drops every materialized page, so all memory reads as zero again.
// The map is retained (emptied) for reuse.
func (r *RAM) Reset() {
	clear(r.pages)
}

// TouchedPages returns how many pages have been materialized.
func (r *RAM) TouchedPages() int { return len(r.pages) }

func (r *RAM) page(idx int64, create bool) []byte {
	p, ok := r.pages[idx]
	if !ok && create {
		p = make([]byte, r.pageSize)
		r.pages[idx] = p
	}
	return p
}

func (r *RAM) check(addr int64, n int) {
	if addr < 0 || addr+int64(n) > r.total {
		panic(fmt.Sprintf("xdr: RAM access %#x+%d out of range", addr, n))
	}
}

// Read copies len(dst) bytes at addr into dst. Untouched memory reads as
// zero.
func (r *RAM) Read(addr int64, dst []byte) {
	r.check(addr, len(dst))
	for len(dst) > 0 {
		idx, off := addr/r.pageSize, addr%r.pageSize
		n := int(r.pageSize - off)
		if n > len(dst) {
			n = len(dst)
		}
		if p := r.page(idx, false); p != nil {
			copy(dst[:n], p[off:])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += int64(n)
	}
}

// Write copies src into memory at addr.
func (r *RAM) Write(addr int64, src []byte) {
	r.check(addr, len(src))
	for len(src) > 0 {
		idx, off := addr/r.pageSize, addr%r.pageSize
		n := int(r.pageSize - off)
		if n > len(src) {
			n = len(src)
		}
		copy(r.page(idx, true)[off:], src[:n])
		src = src[n:]
		addr += int64(n)
	}
}
