package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"cellbe/internal/sim"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(TrackPPE, KindFill, 0, 10, 1, 2, 3, 4)
	tr.Counter(TrackPPEMissQ, 5, 7)
	tr.SetClock(3.2)
	tr.SetTrackName(TrackPPE, "PPE")
	if tr.Enabled(KindFill) {
		t.Fatal("nil tracer reported Enabled")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer retained state")
	}
	var sb strings.Builder
	if err := tr.WritePerfetto(&sb); err != nil {
		t.Fatalf("nil WritePerfetto: %v", err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("nil tracer export is not valid JSON:\n%s", sb.String())
	}
}

func TestRingBufferKeepsMostRecent(t *testing.T) {
	tr := New(4, MaskAll)
	for i := 0; i < 10; i++ {
		tr.Emit(TrackPPE, KindFill, sim.Time(i), sim.Time(i+1), int64(i), 0, 0, 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.A != want {
			t.Fatalf("event %d has A=%d, want %d (oldest-first most-recent window)", i, ev.A, want)
		}
	}
}

func TestMaskFilters(t *testing.T) {
	m, err := ParseFilter("dma,seg")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(16, m)
	tr.Emit(MFCTrack(0), KindDMA, 0, 5, 128, 1, 0, 0)
	tr.Emit(RampTrack(3), KindTransfer, 0, 5, 128, 0, 4, 0)
	tr.Emit(SegTrack(1, 2), KindSegment, 0, 5, 128, 3, 4, 0)
	if tr.Len() != 2 {
		t.Fatalf("Len() = %d, want 2 (transfer filtered out)", tr.Len())
	}
	if !tr.Enabled(KindDMA) || tr.Enabled(KindTransfer) {
		t.Fatal("Enabled() disagrees with filter mask")
	}
	if _, err := ParseFilter("dma,bogus"); err == nil {
		t.Fatal("ParseFilter accepted unknown category")
	}
	if all, err := ParseFilter(""); err != nil || all != MaskAll {
		t.Fatalf("ParseFilter(\"\") = %v, %v; want MaskAll, nil", all, err)
	}
}

func TestTrackEncodingDistinct(t *testing.T) {
	seen := map[Track]string{}
	check := func(tr Track, name string) {
		if prev, ok := seen[tr]; ok {
			t.Fatalf("track collision: %s and %s encode to %d", prev, name, tr)
		}
		seen[tr] = name
	}
	check(TrackPPE, "ppe")
	check(TrackPPEMissQ, "missq")
	for i := 0; i < 8; i++ {
		check(MFCTrack(i), "mfc")
		check(TagTrack(i), "tag")
	}
	for r := 0; r < 12; r++ {
		check(RampTrack(r), "ramp")
	}
	for ring := 0; ring < 4; ring++ {
		for seg := 0; seg < 12; seg++ {
			check(SegTrack(ring, seg), "seg")
		}
	}
	check(BankTrack(0), "bank0")
	check(BankTrack(1), "bank1")
}

// TestPerfettoLaneAssignment checks that overlapping spans on one track
// are fanned out to distinct tids, non-overlapping spans reuse lane 0, and
// the output is valid JSON.
func TestPerfettoLaneAssignment(t *testing.T) {
	tr := New(16, MaskAll)
	tr.SetClock(3.2)
	// Two overlapping DMA spans, then one after both: expect 2 lanes.
	tr.Emit(MFCTrack(0), KindDMA, 0, 100, 1, 0, 0, 0)
	tr.Emit(MFCTrack(0), KindDMA, 50, 150, 2, 0, 0, 0)
	tr.Emit(MFCTrack(0), KindDMA, 200, 300, 3, 0, 0, 0)
	var sb strings.Builder
	if err := tr.WritePerfetto(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !json.Valid([]byte(out)) {
		t.Fatalf("invalid JSON:\n%s", out)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				Bytes int64 `json:"bytes"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	tidOf := map[int64]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			tidOf[ev.Args.Bytes] = ev.Tid
		}
	}
	if tidOf[1] == tidOf[2] {
		t.Fatalf("overlapping spans share tid %d", tidOf[1])
	}
	if tidOf[3] != tidOf[1] {
		t.Fatalf("non-overlapping span got tid %d, want reuse of lane-0 tid %d", tidOf[3], tidOf[1])
	}
}

func TestSamplerRatesAndGauges(t *testing.T) {
	eng := sim.NewEngine()
	var bytes int64
	depth := 0.0
	s := NewSampler(eng, 100)
	s.Rate("GBps", 3.2/100, func() float64 { return float64(bytes) })
	s.Gauge("depth", func() float64 { return depth })
	// Work: +1000 bytes at cycles 50, 150, 250; depth toggles.
	for i := 0; i < 3; i++ {
		at := sim.Time(50 + 100*i)
		eng.At(at, func() { bytes += 1000; depth = float64(at) })
	}
	s.Start()
	eng.Run()
	ts := s.Timeseries()
	if want := []string{"cycle", "GBps", "depth"}; len(ts.Columns) != 3 ||
		ts.Columns[0] != want[0] || ts.Columns[1] != want[1] || ts.Columns[2] != want[2] {
		t.Fatalf("Columns = %v, want %v", ts.Columns, want)
	}
	// Last real event at 250; samples at 100 and 200 fire, 300 does not.
	if len(ts.Rows) != 2 {
		t.Fatalf("got %d rows, want 2: %v", len(ts.Rows), ts.Rows)
	}
	for i, row := range ts.Rows {
		if row[0] != float64(100*(i+1)) {
			t.Fatalf("row %d sampled at cycle %v, want %d", i, row[0], 100*(i+1))
		}
		if want := 1000 * 3.2 / 100; row[1] != want {
			t.Fatalf("row %d rate = %v, want %v", i, row[1], want)
		}
	}
	if got := ts.Column("depth"); got[0] != 50 || got[1] != 150 {
		t.Fatalf("depth column = %v, want [50 150]", got)
	}
	if ts.Column("nope") != nil {
		t.Fatal("Column on missing name should return nil")
	}
}

// TestEmitSteadyStateAllocFree checks the ring buffer stops allocating
// once full — the property that lets the EIB hot path emit per-transfer
// events without disturbing its allocation budget more than the buffer's
// one-time cost.
func TestEmitSteadyStateAllocFree(t *testing.T) {
	tr := New(64, MaskAll)
	for i := 0; i < 64; i++ {
		tr.Emit(RampTrack(0), KindTransfer, sim.Time(i), sim.Time(i+1), 0, 0, 0, 0)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Emit(RampTrack(0), KindTransfer, 100, 200, 128, 1, 2, 3)
	})
	if allocs > 0 {
		t.Fatalf("full-buffer Emit allocates %.1f per call, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(100, func() {
		nilTr.Emit(RampTrack(0), KindTransfer, 100, 200, 128, 1, 2, 3)
	})
	if allocs > 0 {
		t.Fatalf("nil Emit allocates %.1f per call, want 0", allocs)
	}
}
