// Package trace is the simulator's cycle-resolved observability layer: a
// fixed-capacity ring buffer of typed span/instant events recorded by the
// hardware models (MFC DMA commands, EIB transfers and ring-segment
// reservations, XDR bank busy windows, PPE line fills and miss-queue
// occupancy), a Chrome-trace-event/Perfetto JSON exporter, and a periodic
// metrics sampler producing utilization timeseries.
//
// Tracing follows the fault package's nil-safe discipline: every model
// component holds a *Tracer that is nil unless the caller opted in via
// cell.System.SetTracer, and every Tracer method has a nil-receiver fast
// path. The allocation-free simulation hot paths are therefore untouched
// when tracing is off (guarded by the BenchmarkEIBSaturated allocs/op
// baseline in BENCH_eib.json).
//
// The package depends only on internal/sim, so every hardware model can
// import it without cycles.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"cellbe/internal/sim"
)

// Kind is the type of a recorded event.
type Kind uint8

// Event kinds. Spans carry [Start, End); counters are instants whose value
// rides in A.
const (
	// KindDMA is one MFC DMA command's lifetime: enqueue to completion.
	// A=payload bytes, B=tag group, C=mfc.Kind, D=cycle the first bus
	// packet was issued (the queued->active transition).
	KindDMA Kind = iota
	// KindTag is one tag group's busy lifetime on one MFC: from the first
	// command enqueued into an idle group until the group drains. A=tag.
	KindTag
	// KindTransfer is one EIB data transfer's source-port reservation.
	// A=bytes, B=granted ring, C=destination ramp, D=wait cycles beyond
	// the earliest eligible start.
	KindTransfer
	// KindSegment is one ring-segment reservation along a transfer's path.
	// A=bytes, B=source ramp, C=destination ramp.
	KindSegment
	// KindBank is one XDR bank (or IOIF link) busy window serving a line
	// request. A=bytes, B=0 for read, 1 for write.
	KindBank
	// KindFill is one PPE L2 line fill, from miss issue to data arrival.
	// A=line address, B=1 when fetched for store (RFO).
	KindFill
	// KindCounter is an instantaneous counter sample (Start==End); the
	// value is A. Used for the PPE miss-queue occupancy.
	KindCounter

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindDMA:
		return "dma"
	case KindTag:
		return "tag"
	case KindTransfer:
		return "transfer"
	case KindSegment:
		return "segment"
	case KindBank:
		return "bank"
	case KindFill:
		return "fill"
	case KindCounter:
		return "counter"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Mask selects which event kinds a Tracer records.
type Mask uint32

// MaskAll records every event kind.
const MaskAll Mask = 1<<numKinds - 1

// Has reports whether the mask includes kind k.
func (m Mask) Has(k Kind) bool { return m&(1<<k) != 0 }

// filterCategories maps -trace-filter names to kind sets. Categories
// follow the component boundary, not the kind boundary: "dma" covers both
// command spans and tag-group spans, "ppe" both fills and the miss-queue
// counter.
var filterCategories = map[string]Mask{
	"dma": 1<<KindDMA | 1<<KindTag,
	"eib": 1 << KindTransfer,
	"seg": 1 << KindSegment,
	"xdr": 1 << KindBank,
	"ppe": 1<<KindFill | 1<<KindCounter,
	"all": MaskAll,
}

// FilterNames returns the accepted -trace-filter category names.
func FilterNames() []string {
	names := make([]string, 0, len(filterCategories))
	for n := range filterCategories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseFilter turns a comma-separated category list ("dma,eib,seg") into a
// recording mask. An empty spec means everything.
func ParseFilter(spec string) (Mask, error) {
	if strings.TrimSpace(spec) == "" {
		return MaskAll, nil
	}
	var m Mask
	for _, f := range strings.Split(spec, ",") {
		cat, ok := filterCategories[strings.TrimSpace(f)]
		if !ok {
			return 0, fmt.Errorf("trace: unknown filter %q (want a comma list of %s)",
				strings.TrimSpace(f), strings.Join(FilterNames(), ", "))
		}
		m |= cat
	}
	return m, nil
}

// Track identifies the component lane an event belongs to. The encoding is
// class<<16 | a<<8 | b; use the constructors, not the raw value.
type Track int32

const (
	classPPE = iota
	classMFC
	classTags
	classRamp
	classSegment
	classBank
	classCounter
)

// TrackPPE is the PPE core track (line-fill spans).
const TrackPPE Track = classPPE << 16

// TrackPPEMissQ is the PPE L2 miss-queue occupancy counter.
const TrackPPEMissQ Track = classCounter << 16

// MFCTrack returns the DMA-command track of logical SPE i's MFC.
func MFCTrack(spe int) Track { return classMFC<<16 | Track(spe)<<8 }

// TagTrack returns the tag-group lifetime track of logical SPE i's MFC.
func TagTrack(spe int) Track { return classTags<<16 | Track(spe)<<8 }

// RampTrack returns the EIB data-out port track of ramp r.
func RampTrack(r int) Track { return classRamp<<16 | Track(r)<<8 }

// SegTrack returns the reservation track of ring ring's segment seg.
func SegTrack(ring, seg int) Track { return classSegment<<16 | Track(ring)<<8 | Track(seg) }

// BankTrack returns the busy track of XDR bank b (0 local, 1 remote).
func BankTrack(b int) Track { return classBank<<16 | Track(b)<<8 }

func (t Track) class() int { return int(t >> 16) }

// Event is one recorded span (Start <= End) or instant (Start == End).
// The meaning of A..D depends on Kind.
type Event struct {
	Start, End sim.Time
	Track      Track
	Kind       Kind
	A, B, C, D int64
}

// Tracer records events into a fixed-capacity ring buffer, keeping the
// most recent when full. The zero *Tracer (nil) is a valid, disabled
// tracer: every method no-ops, so models emit unconditionally through
// possibly-nil fields, exactly like fault.Injector.
type Tracer struct {
	mask     Mask
	buf      []Event
	next     int
	full     bool
	dropped  int64
	clockGHz float64
	names    map[Track]string
}

// New returns a tracer retaining up to capacity events of the kinds in
// mask. Panics on a non-positive capacity: a tracer that cannot hold
// anything is a configuration error, not a useful object.
func New(capacity int, mask Mask) *Tracer {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Tracer{
		mask:     mask,
		buf:      make([]Event, 0, capacity),
		clockGHz: 1,
		names:    make(map[Track]string),
	}
}

// Enabled reports whether events of kind k are being recorded. Callers on
// hot paths use it to skip argument preparation (e.g. the per-segment
// emission loop) when the kind is filtered out.
func (t *Tracer) Enabled(k Kind) bool { return t != nil && t.mask.Has(k) }

// Emit records one event. Nil-safe and allocation-free after the ring
// buffer reaches capacity (the backing array is preallocated by New).
func (t *Tracer) Emit(track Track, k Kind, start, end sim.Time, a, b, c, d int64) {
	if t == nil || !t.mask.Has(k) {
		return
	}
	ev := Event{Start: start, End: end, Track: track, Kind: k, A: a, B: b, C: c, D: d}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next = (t.next + 1) % cap(t.buf)
	t.full = true
	t.dropped++
}

// Counter records an instantaneous counter sample.
func (t *Tracer) Counter(track Track, at sim.Time, value int64) {
	t.Emit(track, KindCounter, at, at, value, 0, 0, 0)
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten because the ring buffer
// was full. The exporter surfaces it so a truncated trace is never
// mistaken for a complete one.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.full {
		return append([]Event(nil), t.buf...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// SetClock sets the CPU clock used to convert cycle timestamps to the
// microseconds of the Chrome trace format. Wired by cell.System.SetTracer.
func (t *Tracer) SetClock(ghz float64) {
	if t == nil || ghz <= 0 {
		return
	}
	t.clockGHz = ghz
}

// SetTrackName attaches a display name to a track for the exporter.
// Unnamed tracks fall back to a generic class/index label.
func (t *Tracer) SetTrackName(track Track, name string) {
	if t == nil {
		return
	}
	t.names[track] = name
}

// trackName returns the display name of a track.
func (t *Tracer) trackName(track Track) string {
	if n, ok := t.names[track]; ok {
		return n
	}
	switch track.class() {
	case classPPE:
		return "PPE"
	case classMFC:
		return fmt.Sprintf("SPE%d MFC", int(track>>8)&0xff)
	case classTags:
		return fmt.Sprintf("SPE%d tags", int(track>>8)&0xff)
	case classRamp:
		return fmt.Sprintf("ramp %d", int(track>>8)&0xff)
	case classSegment:
		return fmt.Sprintf("ring%d seg%d", int(track>>8)&0xff, int(track)&0xff)
	case classBank:
		return fmt.Sprintf("bank %d", int(track>>8)&0xff)
	case classCounter:
		return "PPE miss queue"
	}
	return fmt.Sprintf("track %d", int(track))
}
