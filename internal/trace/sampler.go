package trace

import (
	"cellbe/internal/sim"
)

// Timeseries is the sampler's output: one row per sampling tick, one
// column per registered metric, with the sample cycle as the first column.
type Timeseries struct {
	Columns []string // "cycle", then metric names in registration order
	Rows    [][]float64
}

// Column returns the values of the named column, or nil if absent.
func (ts *Timeseries) Column(name string) []float64 {
	col := -1
	for i, c := range ts.Columns {
		if c == name {
			col = i
			break
		}
	}
	if col < 0 {
		return nil
	}
	out := make([]float64, len(ts.Rows))
	for i, row := range ts.Rows {
		out[i] = row[col]
	}
	return out
}

// metric is one sampled column: a gauge samples fn directly; a rate
// samples (fn() - previous fn()) * scale, i.e. the per-interval delta of a
// monotonic counter rescaled to a rate (bytes -> GB/s, busy cycles ->
// utilization).
type metric struct {
	name  string
	fn    func() float64
	rate  bool
	scale float64
	prev  float64
}

// Sampler periodically samples registered metrics on the simulation
// engine. It schedules itself with daemon events, so an armed sampler
// never keeps a finished simulation alive or extends its final cycle
// count: once only daemon events remain, the run ends and the tail
// interval simply goes unsampled.
type Sampler struct {
	eng      *sim.Engine
	interval sim.Time
	metrics  []metric
	ts       Timeseries
}

// NewSampler returns a sampler ticking every interval cycles. Panics on a
// non-positive interval.
func NewSampler(eng *sim.Engine, interval sim.Time) *Sampler {
	if interval <= 0 {
		panic("trace: sampler interval must be positive")
	}
	return &Sampler{eng: eng, interval: interval}
}

// Interval returns the sampling period in cycles.
func (s *Sampler) Interval() sim.Time { return s.interval }

// Gauge registers an instantaneous metric column (queue depths, token
// levels): each row records fn() at the sample cycle.
func (s *Sampler) Gauge(name string, fn func() float64) {
	s.metrics = append(s.metrics, metric{name: name, fn: fn})
}

// Rate registers a delta metric column over a monotonic counter: each row
// records (fn() - fn() at the previous tick) * scale. With
// scale = clockGHz / interval, a byte counter becomes GB/s over the
// interval; with scale = 1 / interval, a busy-cycle counter becomes
// utilization in [0, 1].
func (s *Sampler) Rate(name string, scale float64, fn func() float64) {
	s.metrics = append(s.metrics, metric{name: name, fn: fn, rate: true, scale: scale})
}

// Start arms the sampler: the first sample fires one interval from now.
// Call after all columns are registered (the column set is frozen here).
func (s *Sampler) Start() {
	s.ts.Columns = make([]string, 0, len(s.metrics)+1)
	s.ts.Columns = append(s.ts.Columns, "cycle")
	for i := range s.metrics {
		s.ts.Columns = append(s.ts.Columns, s.metrics[i].name)
		s.metrics[i].prev = s.metrics[i].fn()
	}
	s.eng.EveryDaemon(s.interval, s.tick)
}

// tick records one row; EveryDaemon reschedules while real work remains.
func (s *Sampler) tick() {
	row := make([]float64, 0, len(s.metrics)+1)
	row = append(row, float64(s.eng.Now()))
	for i := range s.metrics {
		m := &s.metrics[i]
		v := m.fn()
		if m.rate {
			row = append(row, (v-m.prev)*m.scale)
			m.prev = v
		} else {
			row = append(row, v)
		}
	}
	s.ts.Rows = append(s.ts.Rows, row)
}

// Timeseries returns the rows collected so far.
func (s *Sampler) Timeseries() *Timeseries { return &s.ts }
