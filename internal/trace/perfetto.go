package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Process (pid) grouping in the exported trace: Perfetto renders one
// expandable group per pid, so the classes map to the machine's floorplan.
const (
	pidCores    = 1 // PPE, SPE MFCs, tag groups, miss-queue counter
	pidRamps    = 2 // the 12 EIB data ramps
	pidSegments = 3 // ring-segment reservations, one thread per segment
	pidBanks    = 4 // XDR banks / IOIF links
)

func (t Track) pid() int {
	switch t.class() {
	case classRamp:
		return pidRamps
	case classSegment:
		return pidSegments
	case classBank:
		return pidBanks
	}
	return pidCores
}

var processNames = map[int]string{
	pidCores:    "cores",
	pidRamps:    "EIB ramps",
	pidSegments: "EIB ring segments",
	pidBanks:    "XDR memory",
}

// usec converts a cycle timestamp to the trace format's microseconds,
// rendered with fixed precision so exports are byte-stable across
// platforms (no %g shortest-form variation).
func usec(c int64, ghz float64) string {
	return strconv.FormatFloat(float64(c)/(ghz*1e3), 'f', 4, 64)
}

// spanRef carries one event through per-track lane assignment.
type spanRef struct {
	idx  int // index into the exported event slice
	lane int
}

// WritePerfetto writes the tracer's events as Chrome trace-event JSON
// (the "JSON object format"), loadable directly in ui.perfetto.dev or
// chrome://tracing. Output is deterministic and byte-stable for a given
// event sequence: tracks get stable pid/tid assignments, overlapping spans
// on one track are fanned out to numbered lanes (threads) by a greedy
// first-fit in event order, and timestamps use fixed-precision formatting.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	events := t.Events()
	ghz := 1.0
	if t != nil && t.clockGHz > 0 {
		ghz = t.clockGHz
	}

	// Stable track enumeration: sort by (pid, raw track value). Within
	// pidCores the class encoding already orders PPE < MFCs < tag tracks <
	// miss-queue counter.
	byTrack := make(map[Track][]spanRef)
	for i, ev := range events {
		byTrack[ev.Track] = append(byTrack[ev.Track], spanRef{idx: i})
	}
	tracks := make([]Track, 0, len(byTrack))
	for tr := range byTrack {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid() != tracks[j].pid() {
			return tracks[i].pid() < tracks[j].pid()
		}
		return tracks[i] < tracks[j]
	})

	// Assign lanes: spans within one track that overlap in time cannot
	// share a Perfetto thread row, so each span takes the lowest lane
	// whose previous span has ended. Events() is ordered by emission,
	// which is almost-sorted by End; sort explicitly by (Start, End, idx)
	// for a deterministic greedy result.
	lanesByTrack := make(map[Track]int, len(byTrack))
	tidOf := make(map[Track]int, len(byTrack)) // tid of lane 0
	nextTid := map[int]int{}
	for _, tr := range tracks {
		refs := byTrack[tr]
		sort.Slice(refs, func(i, j int) bool {
			a, b := events[refs[i].idx], events[refs[j].idx]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			if a.End != b.End {
				return a.End < b.End
			}
			return refs[i].idx < refs[j].idx
		})
		var laneEnd []int64
		for k := range refs {
			ev := events[refs[k].idx]
			lane := -1
			for l, end := range laneEnd {
				if end <= int64(ev.Start) {
					lane = l
					break
				}
			}
			if lane < 0 {
				lane = len(laneEnd)
				laneEnd = append(laneEnd, 0)
			}
			laneEnd[lane] = int64(ev.End)
			refs[k].lane = lane
		}
		byTrack[tr] = refs
		lanesByTrack[tr] = len(laneEnd)
		if lanesByTrack[tr] == 0 {
			lanesByTrack[tr] = 1
		}
		pid := tr.pid()
		if _, ok := nextTid[pid]; !ok {
			nextTid[pid] = 1
		}
		tidOf[tr] = nextTid[pid]
		nextTid[pid] += lanesByTrack[tr]
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clockGHz\":%s,\"droppedEvents\":%d},\"traceEvents\":[\n",
		strconv.FormatFloat(ghz, 'f', 3, 64), t.Dropped())

	first := true
	emit := func(format string, args ...interface{}) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata: process names, then one thread name per track lane, in
	// track order so the file diff stays local when tracks change.
	for _, pid := range []int{pidCores, pidRamps, pidSegments, pidBanks} {
		used := false
		for _, tr := range tracks {
			if tr.pid() == pid {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pid, strconv.Quote(processNames[pid]))
	}
	for _, tr := range tracks {
		name := t.trackName(tr)
		for lane := 0; lane < lanesByTrack[tr]; lane++ {
			ln := name
			if lane > 0 {
				ln = fmt.Sprintf("%s +%d", name, lane)
			}
			emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				tr.pid(), tidOf[tr]+lane, strconv.Quote(ln))
			// sort_index keeps lanes in enumeration order; Perfetto
			// otherwise sorts threads by first event time.
			emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
				tr.pid(), tidOf[tr]+lane, tidOf[tr]+lane)
		}
	}

	for _, tr := range tracks {
		pid := tr.pid()
		for _, ref := range byTrack[tr] {
			ev := events[ref.idx]
			tid := tidOf[tr] + ref.lane
			ts := usec(int64(ev.Start), ghz)
			switch ev.Kind {
			case KindCounter:
				emit(`{"ph":"C","pid":%d,"name":%s,"ts":%s,"args":{"value":%d}}`,
					pid, strconv.Quote(t.trackName(tr)), ts, ev.A)
				continue
			}
			dur := usec(int64(ev.End-ev.Start), ghz)
			switch ev.Kind {
			case KindDMA:
				emit(`{"ph":"X","pid":%d,"tid":%d,"name":"dma %dB tag %d","cat":"dma","ts":%s,"dur":%s,"args":{"bytes":%d,"tag":%d,"cmd":%d,"first_packet_cycle":%d}}`,
					pid, tid, ev.A, ev.B, ts, dur, ev.A, ev.B, ev.C, ev.D)
			case KindTag:
				emit(`{"ph":"X","pid":%d,"tid":%d,"name":"tag %d","cat":"dma","ts":%s,"dur":%s,"args":{"tag":%d}}`,
					pid, tid, ev.A, ts, dur, ev.A)
			case KindTransfer:
				emit(`{"ph":"X","pid":%d,"tid":%d,"name":"%dB ring %d to ramp %d","cat":"eib","ts":%s,"dur":%s,"args":{"bytes":%d,"ring":%d,"dst":%d,"wait_cycles":%d}}`,
					pid, tid, ev.A, ev.B, ev.C, ts, dur, ev.A, ev.B, ev.C, ev.D)
			case KindSegment:
				emit(`{"ph":"X","pid":%d,"tid":%d,"name":"%dB %d to %d","cat":"seg","ts":%s,"dur":%s,"args":{"bytes":%d,"src":%d,"dst":%d}}`,
					pid, tid, ev.A, ev.B, ev.C, ts, dur, ev.A, ev.B, ev.C)
			case KindBank:
				op := "read"
				if ev.B != 0 {
					op = "write"
				}
				emit(`{"ph":"X","pid":%d,"tid":%d,"name":"%s %dB","cat":"xdr","ts":%s,"dur":%s,"args":{"bytes":%d,"write":%d}}`,
					pid, tid, op, ev.A, ts, dur, ev.A, ev.B)
			case KindFill:
				emit(`{"ph":"X","pid":%d,"tid":%d,"name":"fill 0x%x","cat":"ppe","ts":%s,"dur":%s,"args":{"line":%d,"store":%d}}`,
					pid, tid, ev.A, ts, dur, ev.A, ev.B)
			default:
				emit(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"ts":%s,"dur":%s,"args":{"a":%d,"b":%d,"c":%d,"d":%d}}`,
					pid, tid, strconv.Quote(ev.Kind.String()), ts, dur, ev.A, ev.B, ev.C, ev.D)
			}
		}
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}
