package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{3, 1, 4, 1, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary %+v", s)
	}
	if math.Abs(s.Mean-2.8) > 1e-9 {
		t.Fatalf("mean %v, want 2.8", s.Mean)
	}
	if s.Median != 3 {
		t.Fatalf("median %v, want 3", s.Median)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Median != 2.5 {
		t.Fatalf("median %v, want 2.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.Stddev != 0 {
		t.Fatalf("bad single-sample summary %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample set should panic")
		}
	}()
	Summarize(nil)
}

func TestSpread(t *testing.T) {
	if got := Summarize([]float64{2, 9, 4}).Spread(); got != 7 {
		t.Fatalf("spread %v, want 7", got)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("get", []int{128, 256})
	s.Add(128, 1.0)
	s.Add(128, 3.0)
	s.Add(256, 5.0)
	if got := s.At(128).Mean; got != 2.0 {
		t.Fatalf("mean at 128 = %v, want 2", got)
	}
	if got := s.At(256).Max; got != 5.0 {
		t.Fatalf("max at 256 = %v, want 5", got)
	}
	sums := s.Summaries()
	if len(sums) != 2 || sums[1].N != 1 {
		t.Fatalf("bad summaries %+v", sums)
	}
}

func TestSeriesUnknownXPanics(t *testing.T) {
	s := NewSeries("x", []int{1})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown x should panic")
		}
	}()
	s.Add(2, 1.0)
}

// Properties: min <= median <= max, min <= mean <= max, and summarizing a
// constant sample gives zero stddev.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileExtremes(t *testing.T) {
	xs := []float64{7, 1, 5, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want the minimum 1", got)
	}
	if got := Percentile(xs, 100); got != 7 {
		t.Errorf("P100 = %v, want the maximum 7", got)
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, p := range []float64{0, 33.3, 50, 100} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Errorf("P%v of a single sample = %v, want 42", p, got)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 25); got != 2.5 {
		t.Errorf("P25 of {0,10} = %v, want 2.5 (linear interpolation)", got)
	}
}

func TestPercentileMatchesMedian(t *testing.T) {
	for _, xs := range [][]float64{{3, 1, 2}, {4, 1, 3, 2}, {5}, {2, 2, 2, 9}} {
		med := Summarize(xs).Median
		if got := Percentile(xs, 50); got != med {
			t.Errorf("P50(%v) = %v, want median %v", xs, got, med)
		}
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile of an empty set did not panic")
		}
	}()
	Percentile(nil, 50)
}

func TestPercentileRangePanics(t *testing.T) {
	for _, p := range []float64{-1, 100.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(p=%v) did not panic", p)
				}
			}()
			Percentile([]float64{1, 2}, p)
		}()
	}
}
