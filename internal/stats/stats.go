// Package stats provides the small summary statistics the paper reports:
// minimum, maximum, median, and average bandwidth across repeated runs
// with different logical-to-physical SPE mappings.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the aggregate of a sample set.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Stddev float64
}

// Summarize computes a Summary of xs. It panics on an empty sample set:
// callers always control the run count.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample set")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(xs)))
	return s
}

// Spread returns Max - Min.
func (s Summary) Spread() float64 { return s.Max - s.Min }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs by linear
// interpolation between closest ranks, so Percentile(xs, 50) agrees with
// the median and p=0/p=100 return the extremes. It panics on an empty
// sample set or a p outside [0, 100]: callers always control both.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample set")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0, 100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if frac == 0 {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary in GB/s with the paper's fields.
func (s Summary) String() string {
	return fmt.Sprintf("min=%.2f max=%.2f med=%.2f avg=%.2f (n=%d)", s.Min, s.Max, s.Median, s.Mean, s.N)
}

// Series is a labeled X->samples mapping: one curve of a figure, with one
// sample per run at each X.
type Series struct {
	Label  string
	Xs     []int
	Values [][]float64 // Values[i] holds the samples at Xs[i]
}

// NewSeries returns an empty series over the given x points.
func NewSeries(label string, xs []int) *Series {
	return &Series{Label: label, Xs: xs, Values: make([][]float64, len(xs))}
}

// Add appends a sample at x. It panics if x is not a point of the series.
func (s *Series) Add(x int, v float64) {
	for i, xx := range s.Xs {
		if xx == x {
			s.Values[i] = append(s.Values[i], v)
			return
		}
	}
	panic(fmt.Sprintf("stats: x=%d not in series %q", x, s.Label))
}

// At summarizes the samples at x.
func (s *Series) At(x int) Summary {
	for i, xx := range s.Xs {
		if xx == x {
			return Summarize(s.Values[i])
		}
	}
	panic(fmt.Sprintf("stats: x=%d not in series %q", x, s.Label))
}

// Summaries returns one Summary per X point.
func (s *Series) Summaries() []Summary {
	out := make([]Summary, len(s.Xs))
	for i := range s.Xs {
		out[i] = Summarize(s.Values[i])
	}
	return out
}
