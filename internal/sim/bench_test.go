package sim

import (
	"encoding/json"
	"os"
	"testing"
)

// BenchmarkEngine measures raw scheduler throughput on the EventChurn
// traffic mix (same-cycle dispatch, near and far wheel schedules, process
// wakeups) and records events/s plus allocs/op as the "Engine" entry of
// the repository's BENCH_eib.json baseline. The allocation guard next to
// that file pins the recorded allocs/op.
func BenchmarkEngine(b *testing.B) {
	e := NewEngine()
	EventChurn(e, ChurnRounds) // warm the wheel: measure steady state
	b.ReportAllocs()
	b.ResetTimer()
	var fired int64
	for i := 0; i < b.N; i++ {
		fired += EventChurn(e, ChurnRounds)
	}
	b.StopTimer()
	perRun := float64(fired) / float64(b.N)
	b.ReportMetric(perRun, "events/op")
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(fired)/elapsed, "events/s")
	}
	allocs := testing.AllocsPerRun(1, func() { EventChurn(e, ChurnRounds) })
	recordEngineBaseline(b, map[string]float64{
		"events/op": perRun,
		"events/s":  float64(fired) / elapsed,
		"allocs/op": allocs,
	})
}

// recordEngineBaseline merges the Engine entry into the repository-root
// BENCH_eib.json (the same file the root-package benchmarks maintain; this
// package can't share their helper, so the merge is reimplemented).
func recordEngineBaseline(b *testing.B, metrics map[string]float64) {
	b.Helper()
	const path = "../../BENCH_eib.json"
	all := map[string]map[string]float64{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			b.Logf("ignoring unparsable %s: %v", path, err)
			all = map[string]map[string]float64{}
		}
	}
	all["Engine"] = metrics
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
