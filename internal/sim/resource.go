package sim

// Server models a resource that serves requests one at a time, each
// occupying the resource for a caller-specified number of cycles. Requests
// are granted in FIFO order. It is the building block for memory banks,
// link ports and similar rate-limited hardware.
type Server struct {
	eng       *Engine
	busyUntil Time
	queue     []serverReq
	inService bool
}

type serverReq struct {
	dur  Time
	done func(start Time)
}

// NewServer returns an idle server bound to eng.
func NewServer(eng *Engine) *Server { return &Server{eng: eng} }

// Reset returns the server to its idle NewServer state, keeping the queue
// slice's capacity. Part of the warm-system recycling path; the caller
// guarantees no service-completion event is still pending on the engine.
func (s *Server) Reset() {
	s.busyUntil = 0
	clear(s.queue)
	s.queue = s.queue[:0]
	s.inService = false
}

// BusyUntil returns the time the server becomes free given current
// reservations.
func (s *Server) BusyUntil() Time { return s.busyUntil }

// QueueLen returns the number of requests waiting (not yet started).
func (s *Server) QueueLen() int { return len(s.queue) }

// Request enqueues a request occupying the server for dur cycles. done is
// called when the occupation *ends*, with the time service started.
func (s *Server) Request(dur Time, done func(start Time)) {
	s.queue = append(s.queue, serverReq{dur: dur, done: done})
	if !s.inService {
		s.startNext()
	}
}

func (s *Server) startNext() {
	if len(s.queue) == 0 {
		s.inService = false
		return
	}
	s.inService = true
	req := s.queue[0]
	s.queue = s.queue[1:]
	start := s.eng.Now()
	if start < s.busyUntil {
		start = s.busyUntil
	}
	end := start + req.dur
	s.busyUntil = end
	s.eng.At(end, func() {
		req.done(start)
		s.startNext()
	})
}

// Reserve occupies the server for dur cycles starting no earlier than
// earliest, without queueing semantics: it finds the first gap at or after
// max(earliest, busyUntil) and returns the start time. Used by timetable
// schedulers (the EIB) where the caller plans ahead.
func (s *Server) Reserve(earliest Time, dur Time) (start Time) {
	start = earliest
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + dur
	return start
}

// TokenBucket rate-limits discrete operations: at most one token every
// interval cycles, with no burst beyond the single slot. Take returns the
// time the token is granted (>= now).
type TokenBucket struct {
	eng      *Engine
	interval Time
	nextFree Time
}

// NewTokenBucket returns a bucket granting one token per interval cycles.
func NewTokenBucket(eng *Engine, interval Time) *TokenBucket {
	return &TokenBucket{eng: eng, interval: interval}
}

// Reset re-arms the bucket as NewTokenBucket(eng, interval) would,
// for warm-system recycling.
func (b *TokenBucket) Reset(interval Time) {
	b.interval = interval
	b.nextFree = 0
}

// Take reserves the next token at or after earliest and returns its grant
// time.
func (b *TokenBucket) Take(earliest Time) Time {
	t := earliest
	if b.nextFree > t {
		t = b.nextFree
	}
	b.nextFree = t + b.interval
	return t
}
