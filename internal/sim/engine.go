// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is counted in CPU cycles of the simulated machine. All model
// components schedule callbacks on a shared Engine; events at the same
// timestamp fire in scheduling order, so a given model configuration always
// produces the same result.
//
// Besides plain events, the package offers coroutine Processes (used to
// write SPU and PPU "programs" as straight-line Go code that blocks on
// simulated time) and a few small building blocks (FIFO resources,
// completion signals) shared by the hardware models.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in CPU cycles.
type Time int64

// Forever is a time later than any event a simulation will ever schedule.
const Forever Time = 1<<62 - 1

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	nfired int64
}

// NewEngine returns an engine with time set to zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful for tracing
// and for asserting that a model stays within an event budget).
func (e *Engine) Fired() int64 { return e.nfired }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule arranges for fn to run after d cycles. A negative delay panics:
// models must not schedule into the past.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule %d cycles into the past", -d))
	}
	e.At(e.now+d, fn)
}

// At arranges for fn to run at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Step fires the next event, advancing time to it. It reports whether an
// event was fired (false when the queue is empty).
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.nfired++
	ev.fn()
	return true
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamp <= t, then advances time to t. It
// reports whether any events remain after t.
func (e *Engine) RunUntil(t Time) bool {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	return len(e.events) > 0
}
