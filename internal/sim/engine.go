// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is counted in CPU cycles of the simulated machine. All model
// components schedule callbacks on a shared Engine; events at the same
// timestamp fire in scheduling order, so a given model configuration always
// produces the same result.
//
// Besides plain events, the package offers coroutine Processes (used to
// write SPU and PPU "programs" as straight-line Go code that blocks on
// simulated time) and a few small building blocks (FIFO resources,
// completion signals) shared by the hardware models.
package sim

import "fmt"

// Time is a point in simulated time, in CPU cycles.
type Time int64

// Forever is a time later than any event a simulation will ever schedule.
const Forever Time = 1<<62 - 1

// event is one scheduled callback. Either fn or tfn is set; tfn carries a
// pre-bound Time argument so hot paths can schedule a completion callback
// without wrapping it in a fresh closure (see AtCall). daemon events (see
// AtDaemon) never keep the simulation alive on their own.
type event struct {
	at     Time
	seq    int64
	fn     func()
	tfn    func(Time)
	targ   Time
	daemon bool
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
//
// The pending-event queue is a hand-rolled binary min-heap over a plain
// event slice rather than container/heap: the interface{}-based heap boxes
// every pushed event onto the garbage-collected heap, which at millions of
// events per run made event scheduling the dominant allocation site. The
// inlined heap keeps one backing array that grows to the peak outstanding
// event count and is then reused for the remainder of the run, so steady-
// state scheduling is allocation-free. Ordering (timestamp, then
// scheduling sequence) is identical to the container/heap implementation,
// so simulation results are unchanged.
type Engine struct {
	now     Time
	seq     int64
	events  []event
	nfired  int64
	ndaemon int // pending daemon events (see AtDaemon)

	// Watchdog state (see watchdog.go): every spawned process, and the
	// component diagnostic hooks consulted when building a DeadlockError.
	procs []*Process
	diags []func() []string
}

// NewEngine returns an engine with time set to zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful for tracing
// and for asserting that a model stays within an event budget).
func (e *Engine) Fired() int64 { return e.nfired }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// PendingWork returns the number of pending non-daemon events: the events
// that keep the simulation running. Daemon observers (the trace metrics
// sampler) use it to decide whether to reschedule themselves.
func (e *Engine) PendingWork() int { return len(e.events) - e.ndaemon }

// before reports whether event a fires before event b: earlier timestamp,
// ties broken by scheduling order.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push adds ev to the min-heap, sifting it up to its position.
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.events = h
}

// pop removes and returns the earliest event, sifting the heap down.
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop callback references so they can be collected
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].before(&h[smallest]) {
			smallest = l
		}
		if r < n && h[r].before(&h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	e.events = h
	return root
}

// Schedule arranges for fn to run after d cycles. A negative delay panics:
// models must not schedule into the past.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule %d cycles into the past", -d))
	}
	e.At(e.now+d, fn)
}

// At arranges for fn to run at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// AtCall arranges for fn(arg) to run at absolute time t (>= Now). It is
// the allocation-free form of At(t, func() { fn(arg) }) for completion
// callbacks that take the completion time: the argument rides in the event
// record instead of a closure.
func (e *Engine) AtCall(t Time, fn func(Time), arg Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, tfn: fn, targ: arg})
}

// AtDaemon arranges for fn to run at absolute time t (>= Now) as a daemon
// event: it fires like any other event, but pending daemon events do not
// keep the simulation alive — Run and RunChecked stop once only daemons
// remain, without firing them. Periodic observers (the metrics sampler)
// use this so sampling never extends a run past its real last event.
func (e *Engine) AtDaemon(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.ndaemon++
	e.push(event{at: t, seq: e.seq, fn: fn, daemon: true})
}

// Step fires the next event, advancing time to it. It reports whether an
// event was fired (false when the queue is empty).
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	if ev.daemon {
		e.ndaemon--
	}
	e.now = ev.at
	e.nfired++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.tfn(ev.targ)
	}
	return true
}

// Run fires events until only daemon events (if any) remain.
func (e *Engine) Run() {
	for e.PendingWork() > 0 {
		e.Step()
	}
}

// RunUntil fires events with timestamp <= t, then advances time to t. It
// reports whether any non-daemon events remain after t.
func (e *Engine) RunUntil(t Time) bool {
	for len(e.events) > 0 && e.events[0].at <= t && e.PendingWork() > 0 {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	return e.PendingWork() > 0
}
