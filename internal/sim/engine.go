// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is counted in CPU cycles of the simulated machine. All model
// components schedule callbacks on a shared Engine; events at the same
// timestamp fire in scheduling order, so a given model configuration always
// produces the same result.
//
// Besides plain events, the package offers coroutine Processes (used to
// write SPU and PPU "programs" as straight-line Go code that blocks on
// simulated time) and a few small building blocks (FIFO resources,
// completion signals) shared by the hardware models.
package sim

import (
	"fmt"
	"math/bits"
	"sort"
)

// Time is a point in simulated time, in CPU cycles.
type Time int64

// Forever is a time later than any event a simulation will ever schedule.
const Forever Time = 1<<62 - 1

// event is one scheduled callback. Exactly one of fn, tfn, cb or proc is
// set: tfn carries a pre-bound Time argument so hot paths can schedule a
// completion callback without wrapping it in a fresh closure (see AtCall),
// cb is an interface target for pooled completion records (see AtCallee),
// and proc is a pre-bound process activation so a Process.Wait never
// materializes a method-value closure (see Spawn/Wait). daemon events (see
// AtDaemon) never keep the simulation alive on their own.
type event struct {
	at     Time
	seq    int64
	fn     func()
	tfn    func(Time)
	cb     Callee
	targ   Time
	proc   *Process
	daemon bool
}

// Callee is a prebound event target dispatched through an interface.
// Completion records that carry more context than AtCall's single Time
// argument (a DMA packet's copy parameters, say) implement it so hot
// paths can pool and reuse them: scheduling stores the two-word interface
// value in the event record, where a closure would allocate per event.
type Callee interface {
	Call(at Time)
}

// Timing-wheel geometry: wheelLevels levels of wheelSize buckets each.
// Level L buckets are 64^L cycles wide, so 11 levels of 64 cover the full
// 63-bit span of Time (6 bits * 11 = 66 >= 63), Forever included. Each
// level's occupancy is a single uint64 bitmap, so finding the next
// nonempty bucket is one TrailingZeros64.
const (
	wheelBits   = 6
	wheelSize   = 1 << wheelBits
	wheelMask   = wheelSize - 1
	wheelLevels = 11
)

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
//
// The pending-event queue is a hierarchical timing wheel rather than the
// binary min-heap it replaced (which was itself a replacement for the
// boxing container/heap). The heap paid O(log n) sift-up/sift-down per
// event with 56-byte element swaps; the wheel schedules with one append
// and dequeues with one TrailingZeros64, because events are bucketed by
// (at - cursor) and buckets at level 0 are one cycle wide. Two properties
// make it byte-identical to the heap:
//
//   - FIFO within a bucket. A level-0 bucket holds a single timestamp, and
//     every append to any bucket happens in increasing seq order (direct
//     schedules are globally seq-ordered; a cascade from level L moves a
//     seq-ordered bucket into lower levels before any direct insert can
//     target them, because direct inserts into a window are only possible
//     after the cursor has entered it — which is exactly when the cascade
//     runs). So draining buckets in time order yields (at, seq) order, the
//     heap's exact comparator.
//
//   - Level separation. An event's level is the highest bit position where
//     its timestamp differs from the cursor, so everything at level L+1
//     lies beyond the cursor's entire level-(L+1) window and therefore
//     after everything at level <= L. The earliest pending event is always
//     the earliest bucket of the lowest occupied level.
//
// On top of the wheel sits the same-cycle dispatch queue cur: the batch of
// events at the earliest pending timestamp, drained FIFO. The huge
// population of delay-0 events (signal fires, process activations, MFC
// completion callbacks — see Post) is appended straight to the live batch
// and never touches the wheel at all.
//
// Steady-state scheduling is allocation-free: buckets and the batch queue
// grow to their peak occupancy and are then reused for the rest of the run.
type Engine struct {
	now    Time
	seq    int64
	nfired int64

	npend   int // total pending events (cur tail + wheel)
	ndaemon int // pending daemon events (see AtDaemon)

	// cur is the staged batch: all pending events at timestamp curAt, in
	// seq order. cur[curHead:] is the undrained remainder; fired slots are
	// zeroed so callback references die promptly.
	cur     []event
	curHead int
	curAt   Time

	// cursor is the wheel reference time: every pending wheel event has
	// at >= cursor, and bucket indices are interpreted relative to the
	// cursor's window at each level. It trails at or ahead of now only
	// transiently (see stage).
	cursor  Time
	occ     [wheelLevels]uint64
	buckets [wheelLevels][wheelSize][]event

	// Watchdog state (see watchdog.go): every live spawned process (the
	// registry is compacted as processes finish, see reapProcess), and the
	// component diagnostic hooks consulted when building a DeadlockError.
	procs     []*Process
	procsDone int
	diags     []func() []string
	liveness  []func() []string

	// ffScratch is the reusable event buffer VisitPending and FFJump
	// collect the queue into (see ff.go); retained so steady-state
	// fast-forward anchors allocate nothing once warm.
	ffScratch []event
}

// NewEngine returns an engine with time set to zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to its NewEngine state while keeping every
// allocation it has grown — the wheel's per-bucket event slices, the
// staged batch, the fast-forward scratch buffer and the hook slices. It
// exists for warm-system recycling (cell.Snapshot): a reset engine must be
// observationally identical to a fresh one, including the sequence
// counter, so a rerun schedules the same events with the same (at, seq)
// keys and replays cycle-for-cycle.
func (e *Engine) Reset() {
	e.now, e.seq, e.nfired = 0, 0, 0
	e.npend, e.ndaemon = 0, 0
	clear(e.cur)
	e.cur = e.cur[:0]
	e.curHead, e.curAt = 0, 0
	e.cursor = 0
	for l := range e.buckets {
		for b := range e.buckets[l] {
			if bk := e.buckets[l][b]; len(bk) > 0 {
				clear(bk)
				e.buckets[l][b] = bk[:0]
			}
		}
		e.occ[l] = 0
	}
	clear(e.procs)
	e.procs = e.procs[:0]
	e.procsDone = 0
	e.diags = e.diags[:0]
	e.liveness = e.liveness[:0]
	clear(e.ffScratch)
	e.ffScratch = e.ffScratch[:0]
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful for tracing
// and for asserting that a model stays within an event budget).
func (e *Engine) Fired() int64 { return e.nfired }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return e.npend }

// PendingWork returns the number of pending non-daemon events: the events
// that keep the simulation running. Daemon observers (the trace metrics
// sampler) use it to decide whether to reschedule themselves.
func (e *Engine) PendingWork() int { return e.npend - e.ndaemon }

// staged reports whether cur holds an undrained batch.
func (e *Engine) staged() bool { return e.curHead < len(e.cur) }

// insert routes a new event to the staged batch (same timestamp), the
// same-cycle queue (at == now) or the wheel. The rare rewind path handles
// timestamps below the cursor, which only arise after a run was cut short
// between events (RunChecked budget exhaustion).
func (e *Engine) insert(ev event) {
	e.npend++
	if e.staged() {
		switch {
		case ev.at == e.curAt:
			e.cur = append(e.cur, ev)
		case ev.at > e.curAt:
			e.wheelInsert(ev)
		default:
			e.rewind()
			e.wheelInsert(ev)
		}
		return
	}
	if ev.at == e.now && e.cursor == e.now {
		// Same-cycle fast dispatch: join (or start) the batch at now.
		if e.curHead > 0 {
			e.cur = e.cur[:0]
			e.curHead = 0
		}
		e.curAt = ev.at
		e.cur = append(e.cur, ev)
		return
	}
	if ev.at < e.cursor {
		e.rewind()
	}
	e.wheelInsert(ev)
}

// wheelInsert files ev into the wheel. The level is the position of the
// highest bit where ev.at differs from the cursor; at that level the
// event is within the cursor's window and its bucket index is just the
// corresponding 6-bit digit of ev.at.
func (e *Engine) wheelInsert(ev event) {
	lvl := 0
	if d := uint64(ev.at ^ e.cursor); d != 0 {
		lvl = (bits.Len64(d) - 1) / wheelBits
	}
	i := int(ev.at>>(uint(lvl)*wheelBits)) & wheelMask
	b := e.buckets[lvl][i]
	if cap(b) == 0 {
		// First touch of this bucket: start at a useful capacity so the
		// warm-up doesn't crawl through the 1->2->4 growth steps (bucket
		// backings are retained across windows, so this is paid once).
		b = make([]event, 0, 8)
	}
	e.buckets[lvl][i] = append(b, ev)
	e.occ[lvl] |= 1 << uint(i)
}

// stage ensures cur holds the earliest pending batch, provided its
// timestamp is at or before limit. It reports whether such a batch is
// staged. Advancing cascades higher-level buckets down: the earliest
// bucket of the lowest occupied level is redistributed with the cursor
// moved to its window start, strictly descending in level, until the
// earliest events surface in a one-cycle level-0 bucket that is swapped
// into cur wholesale.
func (e *Engine) stage(limit Time) bool {
	if e.staged() {
		return e.curAt <= limit
	}
	if e.npend == 0 {
		return false
	}
	if len(e.cur) > 0 {
		e.cur = e.cur[:0]
		e.curHead = 0
	}
	for {
		if m := e.occ[0]; m != 0 {
			i := bits.TrailingZeros64(m)
			t := e.cursor&^wheelMask | Time(i)
			if t > limit {
				return false
			}
			e.occ[0] &^= 1 << uint(i)
			// Swap backings with cur rather than copying: the spent cur
			// backing (its entries were zeroed as they dispatched) becomes
			// the bucket's next backing. Capacities circulate between cur
			// and the hot buckets and converge on the workload's peak batch
			// size, so steady-state staging allocates and copies nothing.
			e.buckets[0][i], e.cur = e.cur[:0], e.buckets[0][i]
			e.curHead = 0
			e.curAt = t
			e.cursor = t
			return true
		}
		lvl := 1
		for lvl < wheelLevels && e.occ[lvl] == 0 {
			lvl++
		}
		if lvl == wheelLevels {
			return false
		}
		i := bits.TrailingZeros64(e.occ[lvl])
		shift := uint(lvl) * wheelBits
		width := Time(1) << (shift + wheelBits)
		t := e.cursor&^(width-1) | Time(i)<<shift
		if t > limit {
			return false
		}
		e.occ[lvl] &^= 1 << uint(i)
		b := e.buckets[lvl][i]
		e.cursor = t
		for k := range b {
			e.wheelInsert(b[k]) // strictly lower level: b itself is never a target
			b[k] = event{}
		}
		e.buckets[lvl][i] = b[:0]
	}
}

// rewind rebuilds the wheel from scratch with the cursor moved back to
// cover a timestamp below its current position. Every pending event is
// collected, restored to global seq order (which reproduces the exact
// per-bucket FIFO order of scheduling them fresh) and re-filed. This is
// the escape hatch for schedules below the cursor after an interrupted
// run; it never executes on the hot path.
func (e *Engine) rewind() {
	all := make([]event, 0, e.npend)
	minAt := e.now
	for _, ev := range e.cur[e.curHead:] {
		all = append(all, ev)
	}
	for i := e.curHead; i < len(e.cur); i++ {
		e.cur[i] = event{}
	}
	e.cur = e.cur[:0]
	e.curHead = 0
	for lvl := 0; lvl < wheelLevels; lvl++ {
		m := e.occ[lvl]
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &^= 1 << uint(i)
			b := e.buckets[lvl][i]
			all = append(all, b...)
			for k := range b {
				b[k] = event{}
			}
			e.buckets[lvl][i] = b[:0]
		}
		e.occ[lvl] = 0
	}
	sort.Slice(all, func(a, b int) bool { return all[a].seq < all[b].seq })
	for _, ev := range all {
		if ev.at < minAt {
			minAt = ev.at
		}
	}
	e.cursor = minAt
	for _, ev := range all {
		e.wheelInsert(ev)
	}
}

// Schedule arranges for fn to run after d cycles. A negative delay panics:
// models must not schedule into the past.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule %d cycles into the past", -d))
	}
	e.seq++
	e.insert(event{at: e.now + d, seq: e.seq, fn: fn})
}

// Post arranges for fn to run at the current simulated time, after every
// event already scheduled for it. It is the same-cycle dispatch path —
// equivalent to Schedule(0, fn) — used by wakeups and completion
// notifications (signal fires, mailbox and tag-group releases), which
// join the live batch directly and never touch the wheel.
func (e *Engine) Post(fn func()) {
	e.seq++
	e.insert(event{at: e.now, seq: e.seq, fn: fn})
}

// At arranges for fn to run at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.insert(event{at: t, seq: e.seq, fn: fn})
}

// AtCall arranges for fn(arg) to run at absolute time t (>= Now). It is
// the allocation-free form of At(t, func() { fn(arg) }) for completion
// callbacks that take the completion time: the argument rides in the event
// record instead of a closure.
func (e *Engine) AtCall(t Time, fn func(Time), arg Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.insert(event{at: t, seq: e.seq, tfn: fn, targ: arg})
}

// AtCallee arranges for cb.Call(arg) to run at absolute time t (>= Now).
// It is to AtCall what a prebound record is to a closure: cb is typically
// a pooled object carrying the context a per-event closure would have
// captured, so scheduling it allocates nothing.
func (e *Engine) AtCallee(t Time, cb Callee, arg Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.insert(event{at: t, seq: e.seq, cb: cb, targ: arg})
}

// PostCallee arranges for cb.Call(arg) to run at the current simulated
// time, after every event already scheduled for it. It is to Post what
// AtCallee is to At: the prebound-record form of the same-cycle dispatch
// path, used by completion notifications whose target is a reusable
// record rather than a closure.
func (e *Engine) PostCallee(cb Callee, arg Time) {
	e.seq++
	e.insert(event{at: e.now, seq: e.seq, cb: cb, targ: arg})
}

// AtDaemon arranges for fn to run at absolute time t (>= Now) as a daemon
// event: it fires like any other event, but pending daemon events do not
// keep the simulation alive — Run and RunChecked stop once only daemons
// remain, without firing them. Periodic observers (the metrics sampler)
// use this so sampling never extends a run past its real last event.
func (e *Engine) AtDaemon(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.ndaemon++
	e.insert(event{at: t, seq: e.seq, fn: fn, daemon: true})
}

// EveryDaemon arranges for fn to run every interval cycles as a daemon
// event, starting one interval from now. Each firing reschedules the next
// only while non-daemon work remains (PendingWork > 0), so a periodic
// observer never keeps a finished simulation alive or extends its final
// cycle count: the tail interval simply goes unsampled. Panics on a
// non-positive interval.
func (e *Engine) EveryDaemon(interval Time, fn func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: daemon interval %d must be positive", interval))
	}
	var tick func()
	tick = func() {
		fn()
		if e.PendingWork() > 0 {
			e.AtDaemon(e.now+interval, tick)
		}
	}
	e.AtDaemon(e.now+interval, tick)
}

// scheduleProc arranges for p to be activated after d cycles. It is the
// pre-bound form of Schedule(d, p.activate): the process pointer rides in
// the event record, so blocking a process never allocates a method-value
// closure.
func (e *Engine) scheduleProc(d Time, p *Process) {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule %d cycles into the past", -d))
	}
	e.seq++
	e.insert(event{at: e.now + d, seq: e.seq, proc: p})
}

// Step fires the next event, advancing time to it. It reports whether an
// event was fired (false when the queue is empty).
func (e *Engine) Step() bool {
	if !e.stage(Forever) {
		return false
	}
	ev := e.cur[e.curHead]
	e.cur[e.curHead] = event{} // drop callback references so they can be collected
	e.curHead++
	e.npend--
	if ev.daemon {
		e.ndaemon--
	}
	e.now = ev.at
	e.nfired++
	switch {
	case ev.fn != nil:
		ev.fn()
	case ev.tfn != nil:
		ev.tfn(ev.targ)
	case ev.cb != nil:
		ev.cb.Call(ev.targ)
	default:
		ev.proc.activate()
	}
	return true
}

// Run fires events until only daemon events (if any) remain.
func (e *Engine) Run() {
	for e.PendingWork() > 0 {
		e.Step()
	}
}

// RunUntil fires events with timestamp <= t, then advances time to t. It
// reports whether any non-daemon events remain after t.
func (e *Engine) RunUntil(t Time) bool {
	for e.PendingWork() > 0 && e.stage(t) {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	return e.PendingWork() > 0
}
