package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestRunCheckedClean(t *testing.T) {
	eng := NewEngine()
	ran := false
	Spawn(eng, "worker", func(p *Process) {
		p.Wait(10)
		ran = true
	})
	if err := eng.RunChecked(0); err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if !ran {
		t.Fatal("process body did not run")
	}
	if got := eng.StuckProcesses(); len(got) != 0 {
		t.Fatalf("no process should be stuck, got %v", got)
	}
}

func TestRunCheckedDetectsDeadlock(t *testing.T) {
	eng := NewEngine()
	sig := NewSignal(eng) // never fired
	Spawn(eng, "blocked-a", func(p *Process) { p.WaitSignal(sig) })
	Spawn(eng, "blocked-b", func(p *Process) { p.WaitSignal(sig) })
	Spawn(eng, "fine", func(p *Process) { p.Wait(5) })

	err := eng.RunChecked(0)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	if len(de.Stuck) != 2 || de.Stuck[0] != "blocked-a" || de.Stuck[1] != "blocked-b" {
		t.Fatalf("stuck processes = %v, want [blocked-a blocked-b]", de.Stuck)
	}
	if de.Pending != 0 {
		t.Fatalf("a true deadlock drains the queue, pending = %d", de.Pending)
	}
	if !strings.Contains(err.Error(), "blocked-a") {
		t.Fatalf("diagnostic must name stuck processes:\n%s", err)
	}
}

func TestRunCheckedCycleBudget(t *testing.T) {
	eng := NewEngine()
	Spawn(eng, "endless", func(p *Process) {
		for {
			p.Wait(100)
		}
	})
	err := eng.RunChecked(1000)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	if de.Cycle > 1000 {
		t.Fatalf("watchdog fired late, at cycle %d", de.Cycle)
	}
	if de.Pending == 0 {
		t.Fatal("budget overrun should report the still-pending event")
	}
	if !strings.Contains(de.Reason, "budget") {
		t.Fatalf("reason %q should mention the budget", de.Reason)
	}
}

func TestRunCheckedDiagnosticHooks(t *testing.T) {
	eng := NewEngine()
	eng.OnDiagnostic(func() []string { return []string{"component: 3 widgets outstanding"} })
	Spawn(eng, "stuck", func(p *Process) { p.WaitSignal(NewSignal(eng)) })
	err := eng.RunChecked(0)
	if err == nil || !strings.Contains(err.Error(), "3 widgets outstanding") {
		t.Fatalf("diagnostic hook output missing:\n%v", err)
	}
}

func TestProcessPanicIsTyped(t *testing.T) {
	eng := NewEngine()
	cause := errors.New("model invariant broken")
	Spawn(eng, "bad", func(p *Process) {
		p.Wait(1)
		panic(cause)
	})
	defer func() {
		r := recover()
		pp, ok := r.(*ProcessPanic)
		if !ok {
			t.Fatalf("want *ProcessPanic, got %v", r)
		}
		if pp.Name != "bad" {
			t.Fatalf("panic names process %q, want bad", pp.Name)
		}
		if !errors.Is(pp, cause) {
			t.Fatal("ProcessPanic must unwrap to the original error")
		}
	}()
	eng.RunChecked(0)
	t.Fatal("expected the process panic to propagate")
}
