package sim

import (
	"fmt"
	"math/bits"
	"sort"
)

// This file is the engine's half of the steady-state fast-forward
// contract (see internal/cell's ffController and DESIGN.md): read-only
// inspection of the pending-event queue in exact firing order, a census
// of live processes, and the two analytic state advances a committed
// jump performs — translating every pending event forward in time, and
// bumping the linear bookkeeping counters.

// PendingEvent is VisitPending's read-only view of one scheduled event.
// Exactly one of Proc or Cb is set for classifiable events; Opaque marks
// plain-closure events (fn/tfn targets), whose identity cannot be
// recovered by inspection.
type PendingEvent struct {
	At     Time
	Seq    int64
	Targ   Time // pre-bound Time argument (Cb events only)
	Proc   *Process
	Cb     Callee
	Daemon bool
	Opaque bool
}

// VisitPending calls visit for every pending event in firing order — the
// (at, seq) order Step dispatches them in — stopping early when visit
// returns false. It reports whether the walk ran to completion. The
// engine state is not modified; the walk is safe mid-Step (the event
// currently executing has already been dequeued and is not visited).
func (e *Engine) VisitPending(visit func(PendingEvent) bool) bool {
	all := e.collectPending()
	sort.Slice(all, func(a, b int) bool {
		if all[a].at != all[b].at {
			return all[a].at < all[b].at
		}
		return all[a].seq < all[b].seq
	})
	ok := true
	for i := range all {
		ev := &all[i]
		if !visit(PendingEvent{
			At:     ev.at,
			Seq:    ev.seq,
			Targ:   ev.targ,
			Proc:   ev.proc,
			Cb:     ev.cb,
			Daemon: ev.daemon,
			Opaque: ev.fn != nil || ev.tfn != nil,
		}) {
			ok = false
			break
		}
	}
	e.releaseScratch(all)
	return ok
}

// VisitLiveProcesses calls visit for every spawned process whose body has
// not returned, in spawn order, stopping early when visit returns false.
// It reports whether the walk ran to completion.
func (e *Engine) VisitLiveProcesses(visit func(*Process) bool) bool {
	for _, p := range e.procs {
		if p.done {
			continue
		}
		if !visit(p) {
			return false
		}
	}
	return true
}

// Scheduled returns the number of events scheduled so far (the engine's
// sequence counter). Together with Fired it is one of the linear counters
// a fast-forward commit advances analytically.
func (e *Engine) Scheduled() int64 { return e.seq }

// FFJump translates the engine d cycles forward: now advances by d and
// every pending event moves with it (timestamps and, for pre-bound Callee
// targets, the bound completion-time argument). The caller — the
// fast-forward controller — must have proven that the translated state is
// exactly the state cycle-accurate execution would reach; FFJump itself
// fires nothing and preserves relative event order bit-for-bit (events
// keep their sequence numbers, so same-timestamp ordering is unchanged).
// Safe mid-Step, like VisitPending.
func (e *Engine) FFJump(d Time) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: fast-forward by %d cycles", d))
	}
	all := e.collectPending()
	// Clear the staged batch and the wheel before re-filing: the events
	// are all in the scratch copy now.
	for i := e.curHead; i < len(e.cur); i++ {
		e.cur[i] = event{}
	}
	e.cur = e.cur[:0]
	e.curHead = 0
	for lvl := 0; lvl < wheelLevels; lvl++ {
		m := e.occ[lvl]
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &^= 1 << uint(i)
			b := e.buckets[lvl][i]
			for k := range b {
				b[k] = event{}
			}
			e.buckets[lvl][i] = b[:0]
		}
		e.occ[lvl] = 0
	}
	// Re-file in seq order, exactly like rewind: per-bucket FIFO order is
	// then identical to having scheduled the shifted events fresh.
	sort.Slice(all, func(a, b int) bool { return all[a].seq < all[b].seq })
	e.now += d
	e.cursor = e.now
	for _, ev := range all {
		ev.at += d
		if ev.tfn != nil || ev.cb != nil {
			ev.targ += d
		}
		e.wheelInsert(ev)
	}
	e.releaseScratch(all)
}

// FFAddCounters advances the engine's linear event counters by the given
// analytic deltas (scheduled and fired), as if the skipped repetitions
// had executed.
func (e *Engine) FFAddCounters(dScheduled, dFired int64) {
	if dScheduled < 0 || dFired < 0 {
		panic("sim: negative fast-forward counter delta")
	}
	e.seq += dScheduled
	e.nfired += dFired
}

// collectPending copies every pending event (staged batch remainder plus
// the wheel) into the reusable scratch slice, in no particular order.
func (e *Engine) collectPending() []event {
	all := e.ffScratch[:0]
	all = append(all, e.cur[e.curHead:]...)
	for lvl := 0; lvl < wheelLevels; lvl++ {
		m := e.occ[lvl]
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &^= 1 << uint(i)
			all = append(all, e.buckets[lvl][i]...)
		}
	}
	return all
}

// releaseScratch drops the callback references held by a collectPending
// copy and retains the backing array for the next walk.
func (e *Engine) releaseScratch(all []event) {
	for i := range all {
		all[i] = event{}
	}
	e.ffScratch = all[:0]
}
