package sim

import (
	"fmt"
	"strings"
)

// DeadlockError is the simulation watchdog's structured diagnostic. It
// replaces context-free "deadlock" panics with everything needed to see
// *what* wedged: the cycle the simulation reached, which processes are
// still blocked, how many events remain scheduled, and whatever detail
// lines the model components registered via Engine.OnDiagnostic (MFC tag
// groups, queue occupancy, ...).
type DeadlockError struct {
	// Reason distinguishes a drained-queue deadlock from an exceeded
	// cycle budget.
	Reason string
	// Cycle is the simulated time the watchdog fired at.
	Cycle Time
	// Pending is the number of events still scheduled (0 for a true
	// deadlock; positive when the cycle budget ran out mid-flight).
	Pending int
	// Fired is the number of events executed before the watchdog fired.
	Fired int64
	// Stuck names the processes that have not finished, in spawn order.
	Stuck []string
	// Detail carries component diagnostics (one line each).
	Detail []string
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s at cycle %d (%d events fired, %d pending)",
		e.Reason, e.Cycle, e.Fired, e.Pending)
	if len(e.Stuck) > 0 {
		fmt.Fprintf(&b, "\n  stuck processes: %s", strings.Join(e.Stuck, ", "))
	}
	for _, d := range e.Detail {
		fmt.Fprintf(&b, "\n  %s", d)
	}
	return b.String()
}

// ProcessPanic is the typed panic value the engine re-raises when a
// process body panics: callers that drive the simulation (cell.System,
// the CLIs) recover it and surface the underlying value — often a typed
// model error such as an invalid DMA command — as a clean error instead
// of a bare stack trace.
type ProcessPanic struct {
	// Name is the process whose body panicked.
	Name string
	// Value is the original panic value.
	Value interface{}
}

func (p *ProcessPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", p.Name, p.Value)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As.
func (p *ProcessPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// OnDiagnostic registers fn to contribute detail lines to watchdog
// diagnostics. Components register once at wiring time; fn runs only when
// a DeadlockError is being built.
func (e *Engine) OnDiagnostic(fn func() []string) {
	e.diags = append(e.diags, fn)
}

// OnLiveness registers fn to report still-blocked model actors that are
// not spawned processes — event-driven kernels (state machines) that the
// process registry cannot see. fn returns one name per unfinished actor;
// the watchdog treats them exactly like stuck processes: the run fails
// with a DeadlockError if the queue drains while any remain.
func (e *Engine) OnLiveness(fn func() []string) {
	e.liveness = append(e.liveness, fn)
}

// stuckActors returns every unfinished actor: blocked spawned processes
// plus whatever the registered liveness reporters contribute.
func (e *Engine) stuckActors() []string {
	stuck := e.StuckProcesses()
	for _, fn := range e.liveness {
		stuck = append(stuck, fn()...)
	}
	return stuck
}

// StuckProcesses returns the names of spawned processes whose bodies have
// not returned, in spawn order.
func (e *Engine) StuckProcesses() []string {
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			stuck = append(stuck, p.name)
		}
	}
	return stuck
}

// reapProcess notes that a spawned process completed. Once finished
// processes make up half the registry it is compacted in place (spawn
// order preserved), so Spawn-heavy scenarios — taskfarm workers, per-chunk
// streaming kernels — don't grow the watchdog scan list without bound.
// The threshold keeps small simulations from churning and makes the
// amortized cost of registration O(1) per process.
func (e *Engine) reapProcess() {
	e.procsDone++
	if e.procsDone < 32 || 2*e.procsDone < len(e.procs) {
		return
	}
	live := e.procs[:0]
	for _, p := range e.procs {
		if !p.done {
			live = append(live, p)
		}
	}
	for i := len(live); i < len(e.procs); i++ {
		e.procs[i] = nil
	}
	e.procs = live
	e.procsDone = 0
}

// deadlock builds the structured diagnostic for the current engine state.
func (e *Engine) deadlock(reason string) *DeadlockError {
	err := &DeadlockError{
		Reason:  reason,
		Cycle:   e.now,
		Pending: e.Pending(),
		Fired:   e.nfired,
		Stuck:   e.stuckActors(),
	}
	for _, fn := range e.diags {
		err.Detail = append(err.Detail, fn()...)
	}
	return err
}

// RunChecked fires events until the queue is empty, enforcing the
// watchdog: if maxCycles is positive and simulated time passes it, or if
// the queue drains while spawned processes are still blocked (a
// deadlock), it returns a *DeadlockError describing the wedged state.
func (e *Engine) RunChecked(maxCycles Time) error {
	for e.PendingWork() > 0 {
		if maxCycles > 0 && !e.stage(maxCycles) {
			return e.deadlock(fmt.Sprintf("cycle budget %d exceeded", maxCycles))
		}
		e.Step()
	}
	if len(e.stuckActors()) > 0 {
		return e.deadlock("deadlock: event queue drained with processes still blocked")
	}
	return nil
}
