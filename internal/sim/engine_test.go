package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same time: scheduling order
	e.Schedule(20, func() { got = append(got, 4) })
	e.Run()
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("final time %d, want 20", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if e.Now() < 50 {
			e.Schedule(10, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if len(ticks) != 6 {
		t.Fatalf("got %d ticks, want 6: %v", len(ticks), ticks)
	}
	for i, at := range ticks {
		if at != Time(i*10) {
			t.Fatalf("tick %d at %d, want %d", i, at, i*10)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(30, func() { fired++ })
	more := e.RunUntil(20)
	if !more {
		t.Fatal("RunUntil(20) should report remaining events")
	}
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("now %d, want 20", e.Now())
	}
	if e.RunUntil(100) {
		t.Fatal("no events should remain")
	}
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past should panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
	if e.Pending() != 0 {
		t.Fatal("empty queue should have no pending events")
	}
}

// Property: no matter the set of delays, events fire in nondecreasing time
// order and the engine ends at the max timestamp.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var max Time
		prev := Time(-1)
		ok := true
		for _, d := range delays {
			at := Time(d)
			if at > max {
				max = at
			}
			e.At(at, func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		e.Run()
		if len(delays) == 0 {
			return true
		}
		return ok && e.Now() == max && e.Fired() == int64(len(delays))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcessWait(t *testing.T) {
	e := NewEngine()
	var trace []Time
	Spawn(e, "a", func(p *Process) {
		trace = append(trace, p.Now())
		p.Wait(5)
		trace = append(trace, p.Now())
		p.Wait(0)
		trace = append(trace, p.Now())
		p.Wait(7)
		trace = append(trace, p.Now())
	})
	e.Run()
	want := []Time{0, 5, 5, 12}
	for i, w := range want {
		if trace[i] != w {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	Spawn(e, "a", func(p *Process) {
		for i := 0; i < 3; i++ {
			order = append(order, "a")
			p.Wait(10)
		}
	})
	Spawn(e, "b", func(p *Process) {
		p.Wait(5)
		for i := 0; i < 3; i++ {
			order = append(order, "b")
			p.Wait(10)
		}
	})
	e.Run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestProcessSignal(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var wokeAt Time = -1
	Spawn(e, "waiter", func(p *Process) {
		p.WaitSignal(s)
		wokeAt = p.Now()
	})
	e.Schedule(42, s.Fire)
	e.Run()
	if wokeAt != 42 {
		t.Fatalf("woke at %d, want 42", wokeAt)
	}
	// Waiting on an already-fired signal returns immediately.
	var at Time = -1
	Spawn(e, "late", func(p *Process) {
		p.WaitSignal(s)
		at = p.Now()
	})
	e.Run()
	if at != 42 {
		t.Fatalf("late waiter woke at %d, want 42", at)
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	s.Fire()
	defer func() {
		if recover() == nil {
			t.Fatal("double Fire should panic")
		}
	}()
	s.Fire()
}

func TestProcessWaitFunc(t *testing.T) {
	e := NewEngine()
	var wake func()
	var wokeAt Time = -1
	Spawn(e, "w", func(p *Process) {
		p.WaitFunc(func(w func()) { wake = w })
		wokeAt = p.Now()
	})
	e.Schedule(9, func() { wake() })
	e.Run()
	if wokeAt != 9 {
		t.Fatalf("woke at %d, want 9", wokeAt)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	e := NewEngine()
	Spawn(e, "boom", func(p *Process) {
		p.Wait(1)
		panic("kaboom")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("process panic should propagate to the engine")
		}
	}()
	e.Run()
}

func TestServerFIFO(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Request(10, func(start Time) { ends = append(ends, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
}

func TestServerLateArrival(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	var ends []Time
	s.Request(10, func(Time) { ends = append(ends, e.Now()) })
	e.Schedule(25, func() {
		s.Request(5, func(Time) { ends = append(ends, e.Now()) })
	})
	e.Run()
	if ends[0] != 10 || ends[1] != 30 {
		t.Fatalf("ends %v, want [10 30]", ends)
	}
}

func TestServerReserve(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	if got := s.Reserve(5, 10); got != 5 {
		t.Fatalf("first reserve start %d, want 5", got)
	}
	if got := s.Reserve(0, 10); got != 15 {
		t.Fatalf("second reserve start %d, want 15", got)
	}
	if got := s.Reserve(100, 10); got != 100 {
		t.Fatalf("third reserve start %d, want 100", got)
	}
}

func TestTokenBucket(t *testing.T) {
	e := NewEngine()
	b := NewTokenBucket(e, 4)
	if got := b.Take(0); got != 0 {
		t.Fatalf("token 0 at %d, want 0", got)
	}
	if got := b.Take(0); got != 4 {
		t.Fatalf("token 1 at %d, want 4", got)
	}
	if got := b.Take(100); got != 100 {
		t.Fatalf("token after idle at %d, want 100", got)
	}
	if got := b.Take(0); got != 104 {
		t.Fatalf("token at %d, want 104", got)
	}
}

// Property: a server serving n requests of duration d is busy exactly n*d
// cycles with no gaps when all requests arrive at time zero.
func TestServerThroughputProperty(t *testing.T) {
	f := func(n uint8, d uint8) bool {
		if n == 0 || d == 0 {
			return true
		}
		e := NewEngine()
		s := NewServer(e)
		var last Time
		for i := 0; i < int(n); i++ {
			s.Request(Time(d), func(Time) { last = e.Now() })
		}
		e.Run()
		return last == Time(n)*Time(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcessAccessors(t *testing.T) {
	e := NewEngine()
	var p *Process
	p = Spawn(e, "worker", func(proc *Process) {
		if proc.Name() != "worker" {
			t.Error("Name accessor wrong")
		}
		if proc.Engine() != e {
			t.Error("Engine accessor wrong")
		}
		proc.Wait(5)
	})
	if p.Done() {
		t.Fatal("process must not be done before running")
	}
	e.Run()
	if !p.Done() {
		t.Fatal("process must be done after the engine drains")
	}
}

func TestSignalOnFireAndFired(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	if s.Fired() {
		t.Fatal("new signal must not be fired")
	}
	calls := 0
	s.OnFire(func() { calls++ })
	e.Schedule(10, s.Fire)
	e.Run()
	if calls != 1 || !s.Fired() {
		t.Fatalf("OnFire calls=%d fired=%v", calls, s.Fired())
	}
	// Late subscription on a fired signal still runs.
	s.OnFire(func() { calls++ })
	e.Run()
	if calls != 2 {
		t.Fatalf("late OnFire not delivered: calls=%d", calls)
	}
}

func TestServerAccessors(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	s.Request(10, func(Time) {})
	s.Request(10, func(Time) {})
	if s.QueueLen() != 1 {
		t.Fatalf("queue len %d, want 1 (one in service, one queued)", s.QueueLen())
	}
	if s.BusyUntil() != 10 {
		t.Fatalf("busy until %d, want 10", s.BusyUntil())
	}
	e.Run()
	if s.QueueLen() != 0 {
		t.Fatal("queue must drain")
	}
}

func TestAtBeforeNowPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At before now should panic")
		}
	}()
	e.At(5, func() {})
}

func TestAtCallOrderAndArgument(t *testing.T) {
	e := NewEngine()
	var got []Time
	rec := func(at Time) { got = append(got, at) }
	// AtCall events interleave with At events in (time, seq) order, and
	// each receives the argument bound at scheduling time.
	e.AtCall(20, rec, 20)
	e.At(10, func() { got = append(got, 10) })
	e.AtCall(10, rec, -10) // same timestamp: fires after, in schedule order
	e.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != -10 || got[2] != 20 {
		t.Fatalf("fired %v, want [10 -10 20]", got)
	}
	if e.Now() != 20 {
		t.Fatalf("now %d, want 20", e.Now())
	}
}

func TestAtCallBeforeNowPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("AtCall before now should panic")
		}
	}()
	e.AtCall(5, func(Time) {}, 5)
}

// TestEngineSteadyStateAllocFree pins the tentpole property of the event
// queue: scheduling and firing events is allocation-free per event. A
// container/heap-based queue fails this immediately (every Push boxes the
// event into an interface). Two regimes are pinned separately:
//
//   - Same-cycle dispatch (events at the current time) joins the live
//     batch without touching the wheel and must allocate exactly nothing.
//   - Wheel traffic allocates only when a bucket grows past every
//     occupancy it has ever seen. Buckets are reused as time wraps their
//     level (64 cycles at level 0, 4096 at level 1), so after a warmup
//     pass the only residual is first-touch growth of a level-2+ bucket
//     when the cursor enters a 4096-cycle window the engine has never
//     visited — a handful of allocations per 4096 cycles, not per event.
//     A 256-event run must therefore average well under one allocation.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func(Time) {}
	churn := func() {
		base := e.Now()
		for i := 0; i < 256; i++ {
			e.AtCall(base+Time(i%16), fn, 0)
		}
		e.Run()
	}
	// Warm up past a full level-1 wrap (4096 cycles) so every level-0 and
	// level-1 bucket has grown to the pattern's peak occupancy.
	for e.Now() < 3*4096 {
		churn()
	}
	if allocs := testing.AllocsPerRun(100, churn); allocs >= 1 {
		t.Fatalf("steady-state wheel scheduling allocated %.2f times per 256-event run, want < 1", allocs)
	}
	samecycle := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			e.AtCall(e.Now(), fn, 0)
		}
		e.Run()
	})
	if samecycle > 0 {
		t.Fatalf("same-cycle dispatch allocated %.1f times per run, want 0", samecycle)
	}
}

// TestEngineHeapOrderTorture pushes interleaved batches with colliding
// timestamps and checks the pop order is exactly (time, seq): the
// hand-rolled heap must order identically to the container/heap it
// replaced, or simulations would diverge.
func TestEngineHeapOrderTorture(t *testing.T) {
	e := NewEngine()
	type stamp struct {
		at  Time
		seq int
	}
	var fired []stamp
	n := 0
	var add func(at Time)
	add = func(at Time) {
		seq := n
		n++
		e.At(at, func() { fired = append(fired, stamp{at: at, seq: seq}) })
	}
	// 97 and 31 are coprime: timestamps collide across batches in a
	// pattern that exercises both sift directions.
	for i := 0; i < 500; i++ {
		add(Time(i * 97 % 31))
	}
	e.Run()
	if len(fired) != 500 {
		t.Fatalf("fired %d events, want 500", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("event %d (at=%d seq=%d) fired before event %d (at=%d seq=%d)",
				i-1, a.at, a.seq, i, b.at, b.seq)
		}
	}
}

// TestDaemonEventsDontKeepSimulationAlive checks the AtDaemon contract: a
// self-rescheduling daemon (the metrics sampler's shape) must not extend a
// run past its last real event, and Run must terminate even though the
// daemon always has a future event pending.
func TestDaemonEventsDontKeepSimulationAlive(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if e.PendingWork() > 0 {
			e.AtDaemon(e.Now()+10, tick)
		}
	}
	done := Time(-1)
	e.At(35, func() { done = e.Now() })
	e.AtDaemon(10, tick)
	e.Run()
	if done != 35 {
		t.Fatalf("real event fired at %d, want 35", done)
	}
	if e.Now() != 35 {
		t.Fatalf("Now() = %d after Run, want 35 (daemons must not advance past last real event)", e.Now())
	}
	want := []Time{10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("daemon ticked at %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("daemon ticked at %v, want %v", ticks, want)
		}
	}
	if e.PendingWork() != 0 {
		t.Fatalf("PendingWork() = %d after Run, want 0", e.PendingWork())
	}
}

// TestRunUntilSkipsTrailingDaemons checks RunUntil stops firing once only
// daemons remain but still advances the clock to the requested time.
func TestRunUntilSkipsTrailingDaemons(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(5, func() { fired++ })
	e.AtDaemon(8, func() { fired++ })
	more := e.RunUntil(20)
	if more {
		t.Fatal("RunUntil reported pending work with only daemons left")
	}
	if fired != 1 {
		t.Fatalf("fired %d events, want 1 (the daemon at 8 must not fire)", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", e.Now())
	}
}
