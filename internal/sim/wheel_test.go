package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// TestWheelEventAtForever schedules the latest representable event and
// checks it cascades down through every wheel level and fires last. The
// wheel spans the full 63-bit Time range, so Forever must be a legal
// timestamp, not a sentinel the scheduler chokes on.
func TestWheelEventAtForever(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(Forever, func() { got = append(got, e.Now()) })
	e.At(3, func() { got = append(got, e.Now()) })
	e.Run()
	if len(got) != 2 || got[0] != 3 || got[1] != Forever {
		t.Fatalf("fired at %v, want [3 %d]", got, Forever)
	}
	if e.Now() != Forever {
		t.Fatalf("Now() = %d, want Forever", e.Now())
	}
}

// TestWheelScheduleAtNowDuringStep checks the same-cycle dispatch path: an
// event that schedules more work at the current instant (via At(Now) and
// via Post) must see it run in the same cycle, after itself, in scheduling
// order, and strictly before any later-cycle event.
func TestWheelScheduleAtNowDuringStep(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(10, func() {
		got = append(got, "a")
		e.At(10, func() { got = append(got, "b") })
		e.Post(func() {
			got = append(got, "c")
			e.At(e.Now(), func() { got = append(got, "d") })
		})
	})
	e.At(11, func() { got = append(got, "e") })
	e.Run()
	want := "abcde"
	if s := joinStrings(got); s != want {
		t.Fatalf("fired %q, want %q", s, want)
	}
}

func joinStrings(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s
	}
	return out
}

// TestWheelRunUntilInsideBucketBoundary stops a run at a limit that lands
// inside a level-1 wheel window (4096 is the first level-0 wrap): events
// before the limit fire, the one just past it must stay pending even
// though it lives in the same level-1 bucket the cursor stopped in.
func TestWheelRunUntilInsideBucketBoundary(t *testing.T) {
	e := NewEngine()
	var got []Time
	note := func() { got = append(got, e.Now()) }
	e.At(4095, note)
	e.At(4096, note)
	e.At(4097, note)
	if more := e.RunUntil(4096); !more {
		t.Fatal("RunUntil(4096) reported no pending work; the event at 4097 is pending")
	}
	if len(got) != 2 || got[0] != 4095 || got[1] != 4096 {
		t.Fatalf("RunUntil(4096) fired at %v, want [4095 4096]", got)
	}
	if e.Now() != 4096 {
		t.Fatalf("Now() = %d, want 4096", e.Now())
	}
	// The event a cycle past the limit still fires, and new work scheduled
	// at the paused instant slots in ahead of it.
	e.At(4096, note)
	e.Run()
	if len(got) != 4 || got[2] != 4096 || got[3] != 4097 {
		t.Fatalf("after resume fired at %v, want [... 4096 4097]", got)
	}
}

// TestWheelDaemonsInterleaveWithCascades runs a self-rescheduling daemon
// across several level-1 window boundaries alongside real events, checking
// daemons cascade like any event, interleave at the right instants, and
// still don't extend the run past the last real event.
func TestWheelDaemonsInterleaveWithCascades(t *testing.T) {
	e := NewEngine()
	var got []Time
	var tick func()
	tick = func() {
		got = append(got, e.Now())
		e.AtDaemon(e.Now()+1000, tick)
	}
	e.AtDaemon(500, tick)
	fired := Time(-1)
	e.At(9000, func() { fired = e.Now() })
	e.Run()
	if fired != 9000 {
		t.Fatalf("real event fired at %d, want 9000", fired)
	}
	want := []Time{500, 1500, 2500, 3500, 4500, 5500, 6500, 7500, 8500}
	if len(got) != len(want) {
		t.Fatalf("daemon ticks %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("daemon ticks %v, want %v", got, want)
		}
	}
	if e.Now() != 9000 {
		t.Fatalf("Now() = %d, want 9000 (daemon at 9500 must not advance the clock)", e.Now())
	}
}

// TestProcessRegistryPruned is the regression test for the process-registry
// leak: a long simulation spawning short-lived processes must not
// accumulate an entry per process forever. The registry may lag (reaping
// is amortized) but must stay bounded by the live process count, not the
// total ever spawned.
func TestProcessRegistryPruned(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10000; i++ {
		Spawn(e, "ephemeral", func(p *Process) { p.Wait(1) })
		e.Run()
	}
	if n := len(e.procs); n > 64 {
		t.Fatalf("process registry holds %d entries after 10000 completed processes, want <= 64", n)
	}
	if diag := e.StuckProcesses(); len(diag) != 0 {
		t.Fatalf("StuckProcesses() = %v after all processes completed, want none", diag)
	}
}

// TestSignalFireOrdering pins the observable contract of the batched
// Signal.Fire: subscribers (processes and callbacks, mixed) run in
// subscription order, in one go, and work they schedule runs after every
// subscriber has been released — identical to the old one-event-per-
// subscriber release.
func TestSignalFireOrdering(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var got []string
	for _, name := range []string{"p0", "p1"} {
		name := name
		Spawn(e, name, func(p *Process) {
			p.WaitSignal(s)
			got = append(got, name)
			e.Post(func() { got = append(got, name+"-follow") })
		})
	}
	s.OnFire(func() { got = append(got, "cb") })
	Spawn(e, "firer", func(p *Process) {
		p.Wait(5)
		s.Fire()
	})
	e.Run()
	// The callback subscribed at setup time; the processes only reach
	// WaitSignal once the engine first activates them, so they trail it.
	want := []string{"cb", "p0", "p1", "p0-follow", "p1-follow"}
	if len(got) != len(want) {
		t.Fatalf("order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// refHeap is a reference (time, seq) min-heap — the scheduler the timing
// wheel replaced — used to differentially test ordering.
type refHeap []refEvent

type refEvent struct {
	at  Time
	seq int
}

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	return h[i].at < h[j].at || (h[i].at == h[j].at && h[i].seq < h[j].seq)
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestWheelMatchesReferenceHeap drives the wheel and a reference min-heap
// with identical randomized workloads — bursts of duplicate timestamps,
// near/far horizons, work scheduled from inside events — and requires the
// exact same dispatch order. This is the ordering-identity contract that
// keeps determinism goldens valid across the scheduler swap.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ref := &refHeap{}
		var got []refEvent
		seq := 0
		schedule := func(d Time) {
			at := e.Now() + d
			ev := refEvent{at: at, seq: seq}
			seq++
			heap.Push(ref, ev)
			e.At(at, func() {
				got = append(got, refEvent{at: e.Now(), seq: ev.seq})
				// A third of events spawn follow-up work at mixed horizons.
				if ev.seq%3 == 0 {
					heap.Push(ref, refEvent{at: e.Now(), seq: seq})
					e.At(e.Now(), func() { got = append(got, refEvent{at: e.Now(), seq: -1}) })
					seq++
				}
			})
		}
		for i := 0; i < 400; i++ {
			switch rng.Intn(4) {
			case 0:
				schedule(0)
			case 1:
				schedule(Time(rng.Intn(8)))
			case 2:
				schedule(Time(rng.Intn(5000)))
			default:
				schedule(Time(rng.Intn(1 << 20)))
			}
		}
		e.Run()
		// Drain the reference heap into the expected (at, seq) order. The
		// follow-up events carry seq recorded as -1 on the wheel side, so
		// compare timestamps for those and exact seq for the rest.
		var want []refEvent
		for ref.Len() > 0 {
			want = append(want, heap.Pop(ref).(refEvent))
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i].at != want[i].at {
				t.Fatalf("seed %d: event %d fired at %d, reference at %d", seed, i, got[i].at, want[i].at)
			}
			if got[i].seq >= 0 && got[i].seq != want[i].seq {
				t.Fatalf("seed %d: event %d is seq %d, reference seq %d", seed, i, got[i].seq, want[i].seq)
			}
		}
	}
}
