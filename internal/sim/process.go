package sim

// Process is a coroutine driven by the simulation engine. It lets model
// code (an SPU program, a PPU thread) be written as straight-line Go that
// blocks on simulated time or on simulated events, while the engine runs
// exactly one process at a time, keeping the simulation deterministic.
//
// Implementation: the process body runs on its own goroutine, but control
// is handed back and forth over unbuffered channels so the engine and the
// process never run concurrently. Activations are scheduled as pre-bound
// process events (see Engine.scheduleProc), so blocking and waking a
// process allocates nothing.
type Process struct {
	eng    *Engine
	name   string
	resume chan struct{} // engine -> process
	yield  chan struct{} // process -> engine
	done   bool
	err    interface{} // panic value from the body, if any
	wake   *WakeRecord // lazily built reusable wake target (see WaitCallee)
	note   string      // current park-site label (see SetNote)
}

// Spawn starts fn as a process at the current simulated time. fn receives
// the Process to block on. The process begins running at the next event
// the engine fires for it (scheduled immediately).
func Spawn(eng *Engine, name string, fn func(p *Process)) *Process {
	p := &Process{
		eng:    eng,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	go func() {
		<-p.resume // wait for first activation
		defer func() {
			if r := recover(); r != nil {
				p.err = r
			}
			p.done = true
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	eng.procs = append(eng.procs, p)
	eng.scheduleProc(0, p)
	return p
}

// activate transfers control to the process until it blocks or finishes.
// Must only be called from an engine event.
func (p *Process) activate() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
	if p.done {
		p.eng.reapProcess()
		if p.err != nil {
			// Re-raise as a typed value so simulation drivers can recover it
			// and surface the underlying error cleanly (see ProcessPanic).
			panic(&ProcessPanic{Name: p.name, Value: p.err})
		}
	}
}

// park blocks the process until something calls activate again. Must only
// be called from the process goroutine.
func (p *Process) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the engine driving this process.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.eng.Now() }

// Done reports whether the process body has returned.
func (p *Process) Done() bool { return p.done }

// Wait blocks the process for d cycles of simulated time.
func (p *Process) Wait(d Time) {
	if d < 0 {
		panic("sim: Wait with negative duration")
	}
	if d == 0 {
		return
	}
	p.eng.scheduleProc(d, p)
	p.park()
}

// WaitSignal blocks the process until s fires. If s has already fired it
// returns immediately without yielding.
func (p *Process) WaitSignal(s *Signal) {
	if s.fired {
		return
	}
	s.subs = append(s.subs, waiter{proc: p})
	p.park()
}

// WaitFunc blocks the process until wake is invoked. It hands the caller a
// wake function that is safe to call exactly once from any engine event.
func (p *Process) WaitFunc(arm func(wake func())) {
	woken := false
	arm(func() {
		if woken {
			panic("sim: WaitFunc wake called twice")
		}
		woken = true
		p.eng.scheduleProc(0, p)
	})
	p.park()
}

// WakeRecord is a process's reusable one-shot wake target: the Callee
// counterpart of the closure WaitFunc hands out. Each process owns at most
// one record, re-armed on every WaitCallee, so blocking on a Callee-based
// subscription never allocates — and, unlike a closure, the record
// identifies its process, which lets state inspection (the fast-forward
// digest) classify a pending wake event instead of treating it as opaque.
type WakeRecord struct {
	p     *Process
	armed bool
}

// Process returns the process this record wakes.
func (w *WakeRecord) Process() *Process { return w.p }

// Call wakes the parked process. Firing an unarmed record panics, the
// WaitFunc double-wake discipline.
func (w *WakeRecord) Call(Time) {
	if !w.armed {
		panic("sim: WakeRecord fired while unarmed")
	}
	w.armed = false
	w.p.eng.scheduleProc(0, w.p)
}

// WaitCallee blocks the process until the handed Callee is called. It is
// WaitFunc with a reusable wake record instead of a fresh closure: arm
// registers the record with exactly one subscriber, which must Call it
// exactly once from an engine event.
func (p *Process) WaitCallee(arm func(cb Callee)) {
	if p.wake == nil {
		p.wake = &WakeRecord{p: p}
	}
	if p.wake.armed {
		panic("sim: WaitCallee while already armed")
	}
	p.wake.armed = true
	arm(p.wake)
	p.park()
}

// SetNote labels the process's current program position. Model code sets
// it before blocking so that inspection (watchdog diagnostics, the
// fast-forward digest) can tell park sites apart; the label persists until
// the next SetNote.
func (p *Process) SetNote(n string) { p.note = n }

// Note returns the label set by SetNote.
func (p *Process) Note() string { return p.note }

// waiter is one Signal subscriber: either a plain callback or a pre-bound
// process activation (which avoids materializing a method-value closure
// per blocked process).
type waiter struct {
	fn   func()
	proc *Process
}

// Signal is a one-shot broadcast: processes and callbacks wait on it, and
// Fire releases all of them at the current simulated time.
type Signal struct {
	eng   *Engine
	fired bool
	subs  []waiter
}

// NewSignal returns an unfired signal bound to eng.
func NewSignal(eng *Engine) *Signal { return &Signal{eng: eng} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all waiters. Firing twice panics: signals are one-shot.
//
// All subscribers are released through a single drained event rather than
// one delay-0 event each. The observable order is identical: subscribers
// run back to back in subscription order, and anything they schedule gets
// a later sequence number than the drain event, exactly as it would have
// trailed the last per-subscriber event.
func (s *Signal) Fire() {
	if s.fired {
		panic("sim: signal fired twice")
	}
	s.fired = true
	if len(s.subs) > 0 {
		s.eng.Post(s.drain)
	}
}

// drain releases every subscriber registered before Fire, in order.
func (s *Signal) drain() {
	subs := s.subs
	s.subs = nil
	for _, w := range subs {
		if w.proc != nil {
			w.proc.activate()
		} else {
			w.fn()
		}
	}
}

// OnFire registers fn to run when the signal fires (immediately scheduled
// if it already fired).
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		s.eng.Post(fn)
		return
	}
	s.subs = append(s.subs, waiter{fn: fn})
}
