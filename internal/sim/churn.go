package sim

// This file provides a deterministic scheduler stress workload, shared by
// BenchmarkEngine, the allocation guard in the repository root, and the CI
// benchmark smoke step. Keeping it in the library (not a _test file) lets
// all three drive the exact same traffic mix.

// ChurnRounds is the standard round count callers hand to EventChurn: one
// "op" of engine benchmarking. Chosen so an op crosses several level-0
// wheel windows and lands work in at least two higher wheel levels.
const ChurnRounds = 64

// EventChurn drives rounds of a fixed scheduler traffic mix on e and
// returns how many events fired. Each round, anchored at the current time,
// exercises every hot path of the engine:
//
//   - same-cycle completions (the staged fast path that bypasses the wheel)
//   - short-horizon events spread over the next 60 cycles (level-0 buckets)
//   - one event ~1k cycles out and one ~50k cycles out (level-1/level-2
//     buckets, which later rounds force back down through cascades)
//   - a spawned process sleeping in 25-cycle strides (pre-bound process
//     wakeups)
//
// The clock advances 100 cycles per round; trailing far events drain at
// the end. The workload is fully deterministic, so fired-event counts are
// comparable across runs and machines.
func EventChurn(e *Engine, rounds int) int64 {
	before := e.Fired()
	sink := func(Time) {}
	Spawn(e, "churn-worker", func(p *Process) {
		for i := 0; i < rounds*4; i++ {
			p.Wait(25)
		}
	})
	for r := 0; r < rounds; r++ {
		base := e.Now()
		for i := 0; i < 8; i++ {
			e.AtCall(base, sink, 0)
		}
		for i := 0; i < 16; i++ {
			e.AtCall(base+Time(1+(i*7)%60), sink, 0)
		}
		e.AtCall(base+900, sink, 0)
		e.AtCall(base+50000, sink, 0)
		e.RunUntil(base + 100)
	}
	e.Run()
	return e.Fired() - before
}
