// Package chaos is the deterministic chaos harness for the durable job
// pipeline: seeded adversarial schedules that crash a sweep mid-flight,
// rebuild a scheduler from the journal, inject transient and permanent
// point failures, poison points past the retry budget, and fail journal
// writes — then assert the crash-safety contract:
//
//   - no lost points: the resumed job delivers every grid point;
//   - no stale work: journaled successes are served from the warm cache
//     and never re-simulate;
//   - bounded work: re-simulation is exactly the journal's declared loss
//     window plus the schedule's declared retries — nothing more;
//   - byte-identical output: the resumed sweep, canonicalized, equals an
//     uninterrupted run of the same schedule byte for byte.
//
// Every schedule is a pure function of its seed (Derive), so a failing
// seed reproduces exactly — there is no wall-clock or math/rand input
// anywhere in the harness.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"cellbe/internal/cell"
	"cellbe/internal/core"
	"cellbe/internal/fault"
	"cellbe/internal/journal"
)

// MaxAttempts is the retry budget every chaos schedule runs under: a
// point with MaxAttempts injected failures is guaranteed to poison.
const MaxAttempts = 3

// Point identifies one grid point of the chaos sweep.
type Point struct {
	Chunk int
	Seed  int64
}

// Schedule is one adversarial scenario, derived deterministically from
// a seed. All fields are declarative — Run interprets them.
type Schedule struct {
	// Seed is the schedule's identity; Derive(Seed) reproduces it.
	Seed int64
	// SyncEvery is the journal's batched-fsync interval (1..3). The
	// declared loss window of a crash is SyncEvery-1 points.
	SyncEvery int
	// CrashAfter is how many grid points complete before the process
	// "crashes" (0..total-1, so the job is always left incomplete).
	CrashAfter int
	// FailCounts injects that many consecutive transient failures into a
	// point's attempts. A count >= MaxAttempts poisons the point.
	FailCounts map[Point]int
	// SlowPoints mark points whose attempts stall briefly before
	// running — adversarial timing for the race detector.
	SlowPoints map[Point]bool
	// JournalErrEvery, when > 0, fails every Nth physical journal write
	// once (the retry succeeds) — exercising the append retry path under
	// load. 0 disables injection.
	JournalErrEvery int
	// Faults additionally turns on real simulator fault injection, so
	// retries and fault-seed re-rolls run against genuine DMA weather,
	// not only injected hook failures.
	Faults bool
}

// Derive expands a seed into a schedule using a splitmix64 stream — the
// same schedule for the same seed, forever.
func Derive(seed int64) Schedule {
	x := uint64(seed)*0x9e3779b97f4a7c15 + 0x1234_5678
	next := func(n int) int {
		x = splitmix64(x)
		return int(x % uint64(n))
	}
	sch := Schedule{
		Seed:       seed,
		SyncEvery:  1 + next(3),
		FailCounts: map[Point]int{},
		SlowPoints: map[Point]bool{},
	}
	pts := gridPoints()
	sch.CrashAfter = next(len(pts))
	for _, pt := range pts {
		// ~half the points fail at least once; counts reach MaxAttempts+1
		// so some points poison even with a spare injected failure.
		if next(2) == 0 {
			sch.FailCounts[pt] = 1 + next(MaxAttempts+1)
		}
		if next(4) == 0 {
			sch.SlowPoints[pt] = true
		}
	}
	switch next(3) {
	case 0:
		sch.JournalErrEvery = 2 + next(3)
	case 1:
		sch.Faults = true
	}
	return sch
}

// Spec is the sweep every schedule runs: a small fixed grid, large
// enough for interesting crash points, small enough to run dozens of
// schedules under -race.
func (sch Schedule) Spec() core.SweepSpec {
	spec := core.SweepSpec{
		Scenario: "cycle",
		SPEs:     4,
		Chunks:   []int{1024, 4096},
		Seeds:    []int64{0, 1, 2},
		Volume:   64 << 10,
		Workers:  1,
	}
	if sch.Faults {
		// A mild real-fault profile: enough injection to exercise retry
		// against genuine DMA weather, mild enough that the sweep still
		// completes quickly.
		cfg := cell.DefaultConfig()
		cfg.Faults = fault.Config{
			MFCRetryRate: 0.02,
			EIBSlowRate:  0.02,
			XDRStallRate: 0.02,
		}
		spec.Base = &cfg
	}
	return spec
}

func gridPoints() []Point {
	spec := Schedule{}.Spec()
	var pts []Point
	for _, c := range spec.Chunks {
		for _, s := range spec.Seeds {
			pts = append(pts, Point{Chunk: c, Seed: s})
		}
	}
	return pts
}

// Report is the outcome of one schedule run. Violations is empty when
// every invariant held.
type Report struct {
	Schedule   Schedule
	Total      int   // grid points in the sweep
	Journaled  int   // point records that survived the crash
	Warmed     int   // journaled successes replayed into the cache
	Resimmed   int64 // real simulations in the resumed process
	Violations []string
}

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// callCounter counts FailPoint hook invocations per point — the proxy
// for "this point's simulation path ran" (cache hits bypass the hook).
type callCounter struct {
	mu    sync.Mutex
	calls map[Point]int
}

func (c *callCounter) inc(pt Point) {
	c.mu.Lock()
	c.calls[pt]++
	c.mu.Unlock()
}

func (c *callCounter) get(pt Point) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[pt]
}

// hook builds the schedule's FailPoint injector: the first FailCounts
// attempts of a marked point fail transiently, slow points stall, and
// every invocation is tallied in calls.
func (sch Schedule) hook(calls *callCounter) func(chunk int, seed int64, attempt int) error {
	return func(chunk int, seed int64, attempt int) error {
		pt := Point{Chunk: chunk, Seed: seed}
		calls.inc(pt)
		if sch.SlowPoints[pt] {
			time.Sleep(200 * time.Microsecond)
		}
		if attempt < sch.FailCounts[pt] {
			return &core.TransientError{Err: fmt.Errorf("chaos: injected failure %d of point chunk=%d seed=%d", attempt, chunk, seed)}
		}
		return nil
	}
}

// journalOptions builds the schedule's journal options, including the
// fail-once-every-Nth write injector. The injector is keyed on a shared
// counter: the retry of a failed write advances the counter and
// succeeds, so injected journal errors are always transient.
func (sch Schedule) journalOptions() journal.Options {
	opts := journal.Options{
		SyncEvery:     sch.SyncEvery,
		AppendRetries: 3,
		RetrySleep:    func(time.Duration) {},
	}
	if n := sch.JournalErrEvery; n > 0 {
		var mu sync.Mutex
		count := 0
		opts.WriteErr = func(op string) error {
			mu.Lock()
			defer mu.Unlock()
			count++
			if count%n == 0 {
				return fmt.Errorf("chaos: injected %s write error #%d", op, count)
			}
			return nil
		}
	}
	return opts
}

func (sch Schedule) retry() core.RetryPolicy {
	return core.RetryPolicy{
		MaxAttempts: MaxAttempts,
		BaseBackoff: time.Microsecond,
		Sleep:       func(time.Duration) {},
	}
}

// canonPoint is the canonical, comparison-stable form of a sweep result:
// sorted order, Cached normalized away, errors by string.
type canonPoint struct {
	Chunk      int
	Seed       int64
	Cycles     int64
	GBps       float64
	Transfers  int64
	WaitCycles int64
	Commands   int64
	FaultSeed  int64
	Attempts   int
	Err        string `json:",omitempty"`
	Code       string `json:",omitempty"`
}

// Canon canonicalizes sweep results for byte-comparison: sorted by
// (chunk, seed), the Cached flag and Log dropped (where a result came
// from is process history, not sweep output), errors flattened to
// string + classification code.
func Canon(results []core.PointResult) []byte {
	pts := make([]canonPoint, 0, len(results))
	for _, r := range results {
		cp := canonPoint{
			Chunk:      r.Chunk,
			Seed:       r.Seed,
			Cycles:     int64(r.Cycles),
			GBps:       r.GBps,
			Transfers:  r.Transfers,
			WaitCycles: int64(r.WaitCycles),
			Commands:   r.Commands,
			FaultSeed:  r.FaultSeed,
			Attempts:   r.Attempts,
		}
		if r.Err != nil {
			cp.Err = r.Err.Error()
			cp.Code = core.FailureCode(r.Err)
		}
		pts = append(pts, cp)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Chunk != pts[j].Chunk {
			return pts[i].Chunk < pts[j].Chunk
		}
		return pts[i].Seed < pts[j].Seed
	})
	b, err := json.MarshalIndent(pts, "", " ")
	if err != nil {
		panic(err) // plain data; cannot fail
	}
	return b
}

func drain(j *core.Job) []core.PointResult {
	var out []core.PointResult
	for r := range j.Results() {
		out = append(out, r)
	}
	return out
}

// Run executes one schedule end to end — reference run, crash run,
// resume run — and checks every invariant. It returns an error only for
// harness plumbing failures; contract breaches land in
// Report.Violations.
func Run(dir string, sch Schedule) (*Report, error) {
	spec := sch.Spec()
	total := len(spec.Chunks) * len(spec.Seeds)
	rep := &Report{Schedule: sch, Total: total}

	// Reference: the same schedule uninterrupted, no journal. Its
	// canonical output is what the crashed-and-resumed run must
	// reproduce byte for byte.
	refCalls := &callCounter{calls: map[Point]int{}}
	refSched := core.NewScheduler(core.SchedOptions{
		Workers:   2,
		Retry:     sch.retry(),
		FailPoint: sch.hook(refCalls),
	})
	refJob, err := refSched.Submit(context.Background(), spec)
	if err != nil {
		refSched.Close()
		return nil, fmt.Errorf("chaos: reference submit: %w", err)
	}
	ref := drain(refJob)
	refSched.Close()
	refCanon := Canon(ref)
	refAttempts := map[Point]int{}
	for _, r := range ref {
		refAttempts[Point{Chunk: r.Chunk, Seed: r.Seed}] = r.Attempts
	}

	// Process 1: run CrashAfter points, then crash. The journal drops
	// everything unsynced; the scheduler tears down without a done
	// record, exactly like a killed process.
	jr1, st0, err := journal.Open(dir, sch.journalOptions())
	if err != nil {
		return nil, fmt.Errorf("chaos: opening journal: %w", err)
	}
	if len(st0.Jobs) != 0 {
		return nil, fmt.Errorf("chaos: journal dir %s not fresh: %d jobs", dir, len(st0.Jobs))
	}
	calls1 := &callCounter{calls: map[Point]int{}}
	started := 0
	crashNow := make(chan struct{})
	crashed := make(chan struct{})
	s1 := core.NewScheduler(core.SchedOptions{
		Workers:   1,
		Journal:   jr1,
		Retry:     sch.retry(),
		FailPoint: sch.hook(calls1),
		BeforePoint: func(int, int64) {
			started++
			if started == sch.CrashAfter+1 {
				close(crashNow)
				<-crashed
			}
		},
	})
	job1, err := s1.Submit(context.Background(), spec)
	if err != nil {
		s1.Close()
		jr1.Crash()
		return nil, fmt.Errorf("chaos: crash-run submit: %w", err)
	}
	<-crashNow
	jr1.Crash()
	job1.Cancel()
	close(crashed)
	s1.Close()
	delivered1 := drain(job1)
	if len(delivered1) != sch.CrashAfter {
		rep.violate("crash run delivered %d points, want exactly CrashAfter=%d", len(delivered1), sch.CrashAfter)
	}

	// Process 2: reopen, warm, resume, drain.
	jr2, st, err := journal.Open(dir, sch.journalOptions())
	if err != nil {
		return nil, fmt.Errorf("chaos: reopening journal: %w", err)
	}
	defer jr2.Close()
	rep.Journaled = len(st.Points)

	// Declared loss window: a crash loses at most SyncEvery-1 point
	// records, and never invents any.
	if min := sch.CrashAfter - (sch.SyncEvery - 1); rep.Journaled < max(0, min) || rep.Journaled > sch.CrashAfter {
		rep.violate("journal kept %d of %d completed points; allowed window [%d, %d]",
			rep.Journaled, sch.CrashAfter, max(0, min), sch.CrashAfter)
	}
	if n := len(st.Incomplete()); n != 1 {
		rep.violate("journal replayed %d incomplete jobs, want 1", n)
		return rep, nil
	}

	calls2 := &callCounter{calls: map[Point]int{}}
	s2 := core.NewScheduler(core.SchedOptions{
		Workers:     2,
		CachePoints: 64,
		Journal:     jr2,
		Retry:       sch.retry(),
		FailPoint:   sch.hook(calls2),
	})
	defer s2.Close()
	rs := s2.Resume(context.Background(), st)
	rep.Warmed = rs.WarmedPoints
	if len(rs.Jobs) != 1 || rs.SkippedJobs != 0 {
		rep.violate("resume produced %d jobs (%d skipped), want 1 resumed job", len(rs.Jobs), rs.SkippedJobs)
		return rep, nil
	}
	resumed := drain(rs.Jobs[0])
	rep.Resimmed = s2.CacheStats().Simulations

	// Invariant: no lost points.
	if len(resumed) != total {
		rep.violate("resumed job delivered %d of %d points — points were lost", len(resumed), total)
	}

	// Invariant: resumed output is byte-identical to the uninterrupted
	// reference.
	if got := Canon(resumed); string(got) != string(refCanon) {
		rep.violate("resumed output diverged from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s", refCanon, got)
	}

	// Invariant: journaled successes are served warm, never re-simulated;
	// and no point exceeds its declared attempt budget.
	warmedOK := map[Point]bool{}
	for _, rec := range st.Points {
		if rec.Ok() {
			warmedOK[Point{Chunk: rec.Chunk, Seed: rec.Seed}] = true
		}
	}
	var wantSims int64
	for _, pt := range gridPoints() {
		got := calls2.get(pt)
		if warmedOK[pt] {
			if got != 0 {
				rep.violate("point %+v was journaled+warmed yet attempted %d times on resume", pt, got)
			}
			continue
		}
		// A re-simulated point replays the reference run's deterministic
		// attempt sequence (injected failures plus any real fault
		// retries) — one hook call per attempt, and not one more.
		if budget := refAttempts[pt]; got > budget {
			rep.violate("point %+v attempted %d times on resume, budget %d — double simulation", pt, got, budget)
		}
		// Real simulations per point: the reference attempts minus the
		// attempts consumed by the injected hook failures.
		if sims := refAttempts[pt] - min(sch.FailCounts[pt], refAttempts[pt]); sims > 0 {
			wantSims += int64(sims)
		}
	}
	if rep.Resimmed != wantSims {
		rep.violate("resume ran %d real simulations, want exactly %d (missing points only)", rep.Resimmed, wantSims)
	}

	// Invariant: the resumed job finished, so a third boot sees nothing
	// to resume — crash-exactly-once semantics.
	if err := jr2.Close(); err != nil {
		rep.violate("closing journal after resume: %v", err)
	}
	jr3, st3, err := journal.Open(dir, journal.Options{})
	if err != nil {
		return nil, fmt.Errorf("chaos: third open: %w", err)
	}
	defer jr3.Close()
	if n := len(st3.Incomplete()); n != 0 {
		rep.violate("after a clean finish, %d jobs still marked incomplete", n)
	}
	return rep, nil
}

// splitmix64 is the standard splitmix64 finalizer, duplicated here (the
// core copy is private) so schedule derivation has no dependencies.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
