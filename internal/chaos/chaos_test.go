package chaos

import (
	"fmt"
	"testing"
)

// TestDeriveDeterministic: a schedule is a pure function of its seed —
// the precondition for "re-run the failing seed" debugging.
func TestDeriveDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := Derive(seed), Derive(seed)
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("seed %d derived two different schedules:\n%+v\n%+v", seed, a, b)
		}
	}
	if fmt.Sprintf("%+v", Derive(1)) == fmt.Sprintf("%+v", Derive(2)) {
		t.Fatal("distinct seeds derived identical schedules — derivation is degenerate")
	}
}

// TestDeriveCoverage: across a modest seed range the generator must
// exercise every adversarial dimension — crashes at varied depths, all
// sync intervals, poisoned points, journal write errors and real-fault
// schedules. A generator that silently stopped producing one of these
// would hollow out the whole suite.
func TestDeriveCoverage(t *testing.T) {
	syncs := map[int]bool{}
	crashes := map[int]bool{}
	var poison, jerr, faults, slow int
	for seed := int64(0); seed < 32; seed++ {
		sch := Derive(seed)
		if sch.SyncEvery < 1 || sch.SyncEvery > 3 {
			t.Fatalf("seed %d: SyncEvery %d out of range", seed, sch.SyncEvery)
		}
		if sch.CrashAfter < 0 || sch.CrashAfter >= len(gridPoints()) {
			t.Fatalf("seed %d: CrashAfter %d out of range", seed, sch.CrashAfter)
		}
		syncs[sch.SyncEvery] = true
		crashes[sch.CrashAfter] = true
		for _, k := range sch.FailCounts {
			if k >= MaxAttempts {
				poison++
			}
		}
		if sch.JournalErrEvery > 0 {
			jerr++
		}
		if sch.Faults {
			faults++
		}
		slow += len(sch.SlowPoints)
	}
	if len(syncs) != 3 {
		t.Errorf("sync intervals seen: %v, want all of 1..3", syncs)
	}
	if len(crashes) < 4 {
		t.Errorf("only %d distinct crash depths over 32 seeds", len(crashes))
	}
	if poison == 0 || jerr == 0 || faults == 0 || slow == 0 {
		t.Errorf("dimension never generated: poison=%d journal-errors=%d faults=%d slow=%d",
			poison, jerr, faults, slow)
	}
}

// TestChaosSchedules is the harness proper: every seeded schedule must
// crash, resume and uphold the full crash-safety contract. Each seed is
// a subtest so a failure names its reproduction directly.
func TestChaosSchedules(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sch := Derive(seed)
			rep, err := Run(t.TempDir(), sch)
			if err != nil {
				t.Fatalf("harness error: %v\nschedule: %+v", err, sch)
			}
			for _, v := range rep.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if t.Failed() {
				t.Logf("schedule: %+v", sch)
				t.Logf("report: total=%d journaled=%d warmed=%d resimmed=%d",
					rep.Total, rep.Journaled, rep.Warmed, rep.Resimmed)
			}
		})
	}
}

// TestChaosHandPicked pins the corner schedules the seeded sweep may or
// may not hit: crash before any point completes, crash on the last
// point, maximum sync batching with write-error injection, and a
// poison-everything run.
func TestChaosHandPicked(t *testing.T) {
	pts := gridPoints()
	all := func(k int) map[Point]int {
		m := map[Point]int{}
		for _, p := range pts {
			m[p] = k
		}
		return m
	}
	cases := []struct {
		name string
		sch  Schedule
	}{
		{"crash-at-zero", Schedule{Seed: -1, SyncEvery: 1, CrashAfter: 0,
			FailCounts: map[Point]int{}, SlowPoints: map[Point]bool{}}},
		{"crash-at-last", Schedule{Seed: -2, SyncEvery: 2, CrashAfter: len(pts) - 1,
			FailCounts: map[Point]int{}, SlowPoints: map[Point]bool{}}},
		{"batched-with-write-errors", Schedule{Seed: -3, SyncEvery: 3, CrashAfter: 4,
			JournalErrEvery: 2, FailCounts: map[Point]int{}, SlowPoints: map[Point]bool{}}},
		{"poison-everything", Schedule{Seed: -4, SyncEvery: 1, CrashAfter: 3,
			FailCounts: all(MaxAttempts), SlowPoints: map[Point]bool{}}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(t.TempDir(), c.sch)
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("invariant violated: %s", v)
			}
		})
	}
}
