package mfc

import (
	"encoding/binary"

	"cellbe/internal/sim"
)

// This file is the MFC's half of the steady-state fast-forward contract
// (see internal/cell's ffController and DESIGN.md): a canonical relative
// encoding of the controller's live state for the periodicity digest,
// classification of pending completion Callees back to the command they
// belong to, and the shift/linear advances a committed jump applies.

// FFLinear is the MFC's linear-counter vector: the bookkeeping that grows
// by a fixed per-period delta in steady state, advanced analytically by
// K*(delta) on a committed jump.
type FFLinear struct {
	Seq          int64
	Stats        Stats
	TagRequested [NumTags]int64
	TagDelivered [NumTags]int64
}

// FFLinear snapshots the linear counters.
func (m *MFC) FFLinear() FFLinear {
	return FFLinear{
		Seq:          m.seq,
		Stats:        m.stats,
		TagRequested: m.tagRequested,
		TagDelivered: m.tagDelivered,
	}
}

// FFAddLinear advances the linear counters by k times the (cur - old)
// delta. cur must be the FFLinear snapshot taken immediately before the
// call; old is the snapshot from the matched earlier anchor.
func (m *MFC) FFAddLinear(cur, old FFLinear, k int64) {
	m.seq += k * (cur.Seq - old.Seq)
	m.stats.Commands += k * (cur.Stats.Commands - old.Stats.Commands)
	m.stats.Packets += k * (cur.Stats.Packets - old.Stats.Packets)
	m.stats.Bytes += k * (cur.Stats.Bytes - old.Stats.Bytes)
	m.stats.ListElements += k * (cur.Stats.ListElements - old.Stats.ListElements)
	m.stats.Atomics += k * (cur.Stats.Atomics - old.Stats.Atomics)
	for t := 0; t < NumTags; t++ {
		m.tagRequested[t] += k * (cur.TagRequested[t] - old.TagRequested[t])
		m.tagDelivered[t] += k * (cur.TagDelivered[t] - old.TagDelivered[t])
	}
}

// FFShift translates every absolute-time field by d, the time
// displacement of a committed jump.
func (m *MFC) FFShift(d sim.Time) {
	m.nextIssue += d
	for t := range m.tagStart {
		m.tagStart[t] += d
	}
	for _, st := range m.active {
		st.issued += d
		if st.started {
			st.firstPacket += d
		}
	}
}

// FFBegin starts a fresh wavefront-labeling epoch for one digest capture.
// The controller calls it on every MFC before walking the pending events.
func (m *MFC) FFBegin() {
	m.ffEpoch++
	m.ffOrd = m.ffOrd[:0]
}

// FFNoteEvent classifies a pending event target against this MFC: if cb
// is one of its active commands' completion records (or the fault path's
// delayed-retirement handle), the command is assigned a wavefront label —
// labels number commands in first-seen order along the pending-event
// walk. Wavefront labels are the digest's command identity: unlike the
// queue position or the absolute sequence number, they are invariant
// under the age-permutation that precesses freely in steady state (which
// command occupies which queue slot rotates with a period incommensurate
// with the streaming window, while the wavefront shape itself recurs).
func (m *MFC) FFNoteEvent(cb sim.Callee) (label int, delayed, ok bool) {
	var st *cmdState
	switch t := cb.(type) {
	case *cmdState:
		st = t
	case *retireHandle:
		st, delayed = t.st, true
	default:
		return 0, false, false
	}
	if st.m != m {
		return 0, false, false
	}
	if st.ffMark != m.ffEpoch {
		st.ffMark = m.ffEpoch
		st.ffLabel = int32(len(m.ffOrd))
		m.ffOrd = append(m.ffOrd, st)
	}
	return int(st.ffLabel), delayed, true
}

// FFEncode appends the MFC's canonical relative state to buf: everything
// that determines future behaviour, expressed relative to now so two
// equivalent instants encode identically. The caller must have called
// FFBegin and then FFNoteEvent for every pending completion event, in
// firing order, so the wavefront labeling is complete.
//
// Commands are listed in wavefront-label order, then the commands with no
// packet in flight (invisible to the event walk — they are waiting for
// the issue window) in queue order. The queue order of fully-issued
// commands is deliberately NOT encoded: nothing reads it. pickCommand
// skips issuedAll commands, retirement looks commands up by pointer, and
// tag accounting is positionless — so two states whose queues hold the
// same commands in different age orders behave identically, and encoding
// the order would (empirically: does, with a period incommensurate with
// the streaming window) keep provably-equivalent states from matching.
// What pickCommand does read — the relative queue order of commands that
// can still issue packets — is appended as a label sequence. Fence or
// barrier commands make the full queue order significant again, so any
// such command vetoes the anchor.
//
// wakeOrd resolves a registered waiter Callee (a process wake record) to
// a stable process ordinal. routeOf abstracts an effective-address span
// to a canonical route identity — timing depends on where a span routes
// (which ramp, the line-boundary split) but not on the absolute address,
// so commands that differ only in which slot of a streaming window they
// target encode identically. ok=false means the state is not provably
// encodable — a proxy command in flight, a completion callback, a waiter
// that is not a classifiable wake record, an ordering-fenced command, an
// unlabeled command with packets in flight, or a span routeOf cannot
// abstract — in which case the caller must not jump.
func (m *MFC) FFEncode(buf []byte, now sim.Time, wakeOrd func(sim.Callee) (int64, bool), routeOf func(ea int64, size int) (int64, bool)) ([]byte, bool) {
	if m.proxyQueue != 0 {
		return buf, false
	}
	buf = binary.AppendVarint(buf, int64(m.spuQueue))
	buf = binary.AppendVarint(buf, int64(m.outstanding))
	rel := m.nextIssue - now
	if rel < 0 {
		rel = 0 // an idle pacing cursor is behaviourally zero
	}
	buf = binary.AppendVarint(buf, int64(rel))
	for t := 0; t < NumTags; t++ {
		buf = binary.AppendVarint(buf, int64(m.tagCount[t]))
		buf = binary.AppendVarint(buf, m.tagRequested[t]-m.tagDelivered[t])
	}

	// Extend the wavefront labeling over the windowless commands so every
	// active command has a label, then emit contents in label order.
	ord := m.ffOrd
	for _, st := range m.active {
		if st.ffMark != m.ffEpoch {
			if st.inflight != 0 {
				// A command with packets in flight must have been labeled
				// by the event walk; an unlabeled one means a completion
				// is pending somewhere the digest cannot see.
				m.ffOrd = ord
				return buf, false
			}
			st.ffMark = m.ffEpoch
			st.ffLabel = int32(len(ord))
			ord = append(ord, st)
		}
	}
	m.ffOrd = ord
	if len(ord) != len(m.active) {
		// A labeled command that is no longer active: a foreign or stale
		// Callee matched this MFC. Not provable — bail.
		return buf, false
	}
	buf = binary.AppendVarint(buf, int64(len(ord)))
	for _, st := range ord {
		if st.done != nil || st.proxy || st.cmd.Fence || st.cmd.Barrier {
			return buf, false
		}
		c := &st.cmd
		buf = binary.AppendVarint(buf, int64(c.Kind))
		buf = binary.AppendVarint(buf, int64(c.Tag))
		buf = binary.AppendVarint(buf, int64(c.Size))
		buf = append(buf, boolByte(st.started)|boolByte(st.issuedAll)<<1)
		// The local-store side of a command has no timing effect (it only
		// addresses payload bytes, which are exempt from the exactness
		// contract), so LSAddr and the list's running LS offset are not
		// encoded. The EA side matters through its route and its position
		// within a 128-byte line — encode exactly that abstraction.
		if !c.Kind.IsList() {
			route, rok := routeOf(c.EA, c.Size)
			if !rok {
				return buf, false
			}
			buf = binary.AppendVarint(buf, route)
			buf = binary.AppendVarint(buf, c.EA%LineBytes)
		}
		buf = binary.AppendVarint(buf, int64(len(c.List)))
		for _, el := range c.List {
			route, rok := routeOf(el.EA, el.Size)
			if !rok {
				return buf, false
			}
			buf = binary.AppendVarint(buf, route)
			buf = binary.AppendVarint(buf, el.EA%LineBytes)
			buf = binary.AppendVarint(buf, int64(el.Size))
		}
		buf = binary.AppendVarint(buf, int64(st.offset))
		buf = binary.AppendVarint(buf, int64(st.listIdx))
		buf = binary.AppendVarint(buf, int64(st.listOff))
		buf = binary.AppendVarint(buf, int64(st.inflight))
	}
	// The issue-order tail: relative queue order of the commands
	// pickCommand still considers, as wavefront labels.
	for _, st := range m.active {
		if !st.issuedAll {
			buf = binary.AppendVarint(buf, int64(st.ffLabel))
		}
	}
	buf = binary.AppendVarint(buf, -1)
	buf = binary.AppendVarint(buf, int64(len(m.tagWaiters)))
	for _, w := range m.tagWaiters {
		ord, ok := wakeOrd(w.cb)
		if !ok {
			return buf, false
		}
		buf = binary.AppendVarint(buf, int64(w.mask))
		buf = append(buf, boolByte(w.fired))
		buf = binary.AppendVarint(buf, ord)
	}
	buf = binary.AppendVarint(buf, int64(len(m.spaceSubs)))
	for _, s := range m.spaceSubs {
		ord, ok := wakeOrd(s.cb)
		if !ok {
			return buf, false
		}
		buf = binary.AppendVarint(buf, ord)
	}
	return buf, true
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
