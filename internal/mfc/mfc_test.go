package mfc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"cellbe/internal/sim"
)

// fakeFabric is a Fabric with fixed per-line latency and unlimited
// concurrency, backed by a flat byte array.
type fakeFabric struct {
	eng     *sim.Engine
	mem     []byte
	latency sim.Time
	reads   int64
	writes  int64
	// inflight tracks concurrent operations to verify windowing.
	inflight    int
	maxInflight int
}

func (f *fakeFabric) track(delta int) {
	f.inflight += delta
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
}

func (f *fakeFabric) ReadEA(ea int64, n int, earliest sim.Time, dst []byte, done sim.Callee) {
	f.reads++
	start := earliest
	if now := f.eng.Now(); start < now {
		start = now
	}
	f.track(1)
	end := start + f.latency
	f.eng.At(end, func() {
		copy(dst, f.mem[ea:ea+int64(n)])
		f.track(-1)
		done.Call(end)
	})
}

func (f *fakeFabric) WriteEA(ea int64, n int, earliest sim.Time, src []byte, done sim.Callee) {
	f.writes++
	start := earliest
	if now := f.eng.Now(); start < now {
		start = now
	}
	f.track(1)
	end := start + f.latency
	f.eng.At(end, func() {
		copy(f.mem[ea:ea+int64(n)], src)
		f.track(-1)
		done.Call(end)
	})
}

func newMFC(latency sim.Time) (*sim.Engine, *fakeFabric, *MFC, []byte) {
	eng := sim.NewEngine()
	fab := &fakeFabric{eng: eng, mem: make([]byte, 1<<20), latency: latency}
	ls := make([]byte, 256<<10)
	m := New(eng, fab, ls, DefaultConfig())
	return eng, fab, m, ls
}

func fill(b []byte, seed byte) {
	for i := range b {
		b[i] = seed + byte(i*7)
	}
}

func TestGetMovesData(t *testing.T) {
	eng, fab, m, ls := newMFC(100)
	fill(fab.mem[4096:4096+1024], 3)
	done := false
	err := m.Enqueue(Cmd{Kind: Get, Tag: 1, LSAddr: 0, EA: 4096, Size: 1024}, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("command did not complete")
	}
	if !bytes.Equal(ls[:1024], fab.mem[4096:4096+1024]) {
		t.Fatal("GET payload mismatch")
	}
	if m.TagIncomplete(1) != 0 {
		t.Fatal("tag group must be idle after completion")
	}
}

func TestPutMovesData(t *testing.T) {
	eng, fab, m, ls := newMFC(100)
	fill(ls[512:512+256], 9)
	err := m.Enqueue(Cmd{Kind: Put, Tag: 0, LSAddr: 512, EA: 8192, Size: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(fab.mem[8192:8192+256], ls[512:512+256]) {
		t.Fatal("PUT payload mismatch")
	}
	if fab.writes != 2 {
		t.Fatalf("256B put should issue 2 line packets, got %d", fab.writes)
	}
}

func TestPacketSplitRespectsLines(t *testing.T) {
	eng, fab, m, _ := newMFC(10)
	// 16-byte aligned but not line aligned: 0x...70 + 160 bytes crosses
	// two line boundaries -> packets of 16, 128, 16.
	err := m.Enqueue(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: 0x70, Size: 160}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if fab.reads != 3 {
		t.Fatalf("unaligned 160B get should issue 3 packets, got %d", fab.reads)
	}
	st := m.Stats()
	if st.Bytes != 160 {
		t.Fatalf("bytes %d, want 160", st.Bytes)
	}
}

func TestWindowBoundsOutstanding(t *testing.T) {
	eng, fab, m, _ := newMFC(10_000) // long latency: window fills
	err := m.Enqueue(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: 0, Size: 16384}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if fab.maxInflight != DefaultConfig().Window {
		t.Fatalf("max inflight %d, want window %d", fab.maxInflight, DefaultConfig().Window)
	}
}

func TestListWindowSmaller(t *testing.T) {
	eng, fab, m, _ := newMFC(10_000)
	list := make([]ListElem, 16)
	for i := range list {
		list[i] = ListElem{EA: int64(i * 1024), Size: 1024}
	}
	err := m.Enqueue(Cmd{Kind: GetList, Tag: 0, LSAddr: 0, List: list}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if fab.maxInflight != DefaultConfig().ListWindow {
		t.Fatalf("max inflight %d, want list window %d", fab.maxInflight, DefaultConfig().ListWindow)
	}
}

func TestListMovesAllElements(t *testing.T) {
	eng, fab, m, ls := newMFC(50)
	list := []ListElem{{EA: 0, Size: 128}, {EA: 4096, Size: 256}, {EA: 9216, Size: 16}}
	fill(fab.mem[0:128], 1)
	fill(fab.mem[4096:4096+256], 2)
	fill(fab.mem[9216:9216+16], 3)
	err := m.Enqueue(Cmd{Kind: GetList, Tag: 2, LSAddr: 1024, List: list}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(ls[1024:1024+128], fab.mem[0:128]) ||
		!bytes.Equal(ls[1024+128:1024+384], fab.mem[4096:4096+256]) ||
		!bytes.Equal(ls[1024+384:1024+400], fab.mem[9216:9216+16]) {
		t.Fatal("GETL payload mismatch")
	}
	if m.Stats().ListElements != 3 {
		t.Fatalf("list elements %d, want 3", m.Stats().ListElements)
	}
}

func TestQueueFull(t *testing.T) {
	_, _, m, _ := newMFC(1_000_000)
	for i := 0; i < DefaultConfig().QueueDepth; i++ {
		if err := m.Enqueue(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: 0, Size: 128}, nil); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	err := m.Enqueue(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: 0, Size: 128}, nil)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("17th enqueue: %v, want ErrQueueFull", err)
	}
}

func TestOnSpaceFires(t *testing.T) {
	eng, _, m, _ := newMFC(100)
	for i := 0; i < DefaultConfig().QueueDepth; i++ {
		m.Enqueue(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: 0, Size: 128}, nil)
	}
	freed := false
	m.OnSpace(func() { freed = true })
	eng.Run()
	if !freed {
		t.Fatal("OnSpace never fired")
	}
}

func TestWaitTagsMask(t *testing.T) {
	eng, _, m, _ := newMFC(100)
	var order []int
	m.Enqueue(Cmd{Kind: Get, Tag: 3, LSAddr: 0, EA: 0, Size: 16384}, nil)
	m.Enqueue(Cmd{Kind: Get, Tag: 5, LSAddr: 16384, EA: 16384, Size: 128}, nil)
	m.WaitTags(1<<5, func() { order = append(order, 5) })
	m.WaitTags(1<<3|1<<5, func() { order = append(order, 35) })
	eng.Run()
	if len(order) != 2 || order[0] != 5 || order[1] != 35 {
		t.Fatalf("wait order %v, want [5 35]", order)
	}
	// Waiting on idle tags fires immediately.
	fired := false
	m.WaitTags(1<<7, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("wait on idle tag must fire")
	}
}

func TestBarrierOrdersAllPrior(t *testing.T) {
	eng, fab, m, ls := newMFC(200)
	// PUT 128 bytes of A, then barriered PUT of B to the same address:
	// B must land after A despite both being in flight together.
	fill(ls[0:128], 1)
	fill(ls[128:256], 2)
	m.Enqueue(Cmd{Kind: Put, Tag: 0, LSAddr: 0, EA: 0, Size: 128}, nil)
	m.Enqueue(Cmd{Kind: Put, Tag: 1, LSAddr: 128, EA: 0, Size: 128, Barrier: true}, nil)
	eng.Run()
	if !bytes.Equal(fab.mem[0:128], ls[128:256]) {
		t.Fatal("barriered PUT must be ordered after the prior PUT")
	}
}

func TestFenceOrdersSameTagOnly(t *testing.T) {
	eng, _, m, _ := newMFC(500)
	var completions []int
	// Tag 1: slow big GET. Tag 2: fenced GET (does not wait for tag 1).
	m.Enqueue(Cmd{Kind: Get, Tag: 1, LSAddr: 0, EA: 0, Size: 16384}, func() { completions = append(completions, 1) })
	m.Enqueue(Cmd{Kind: Get, Tag: 2, LSAddr: 16384, EA: 16384, Size: 128, Fence: true}, func() { completions = append(completions, 2) })
	eng.Run()
	if len(completions) != 2 || completions[0] != 2 {
		t.Fatalf("fenced other-tag command should finish first: %v", completions)
	}

	// Same tag: the fence must hold it back.
	completions = nil
	m.Enqueue(Cmd{Kind: Get, Tag: 1, LSAddr: 0, EA: 0, Size: 16384}, func() { completions = append(completions, 1) })
	m.Enqueue(Cmd{Kind: Get, Tag: 1, LSAddr: 16384, EA: 16384, Size: 128, Fence: true}, func() { completions = append(completions, 2) })
	eng.Run()
	if len(completions) != 2 || completions[0] != 1 {
		t.Fatalf("fenced same-tag command must wait: %v", completions)
	}
}

func TestValidation(t *testing.T) {
	_, _, m, _ := newMFC(10)
	bad := []Cmd{
		{Kind: Get, Tag: -1, Size: 128},
		{Kind: Get, Tag: 32, Size: 128},
		{Kind: Get, Tag: 0, Size: 0},
		{Kind: Get, Tag: 0, Size: MaxTransfer + 16},
		{Kind: Get, Tag: 0, Size: 3},                         // not a power of two
		{Kind: Get, Tag: 0, Size: 24},                        // not multiple of 16
		{Kind: Get, Tag: 0, Size: 4, EA: 2},                  // misaligned small
		{Kind: Get, Tag: 0, Size: 128, EA: 8},                // misaligned big
		{Kind: Get, Tag: 0, Size: 128, LSAddr: 8},            // misaligned LS
		{Kind: Get, Tag: 0, Size: 128, LSAddr: 256<<10 - 64}, // LS overflow
		{Kind: Get, Tag: 0, Size: 128, Fence: true, Barrier: true},
		{Kind: GetList, Tag: 0}, // empty list
		{Kind: GetList, Tag: 0, List: make([]ListElem, MaxListElements+1)},
		{Kind: GetList, Tag: 0, List: []ListElem{{EA: 0, Size: 24}}},
	}
	for i, c := range bad {
		if err := m.Enqueue(c, nil); !errors.Is(err, ErrBadCommand) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadCommand", i, c, err)
		}
	}
	ok := []Cmd{
		{Kind: Get, Tag: 0, Size: 1, EA: 77, LSAddr: 1},
		{Kind: Get, Tag: 31, Size: 8, EA: 64, LSAddr: 8},
		{Kind: Put, Tag: 0, Size: MaxTransfer, EA: 16384, LSAddr: 0},
	}
	for i, c := range ok {
		if err := m.Enqueue(c, nil); err != nil {
			t.Errorf("good case %d: %v", i, err)
		}
	}
}

func TestProxyQueueIndependent(t *testing.T) {
	eng, fab, m, ls := newMFC(100)
	fill(fab.mem[0:128], 7)
	done := false
	if err := m.EnqueueProxy(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: 0, Size: 128}, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done || !bytes.Equal(ls[0:128], fab.mem[0:128]) {
		t.Fatal("proxy GET failed")
	}
	// Proxy queue has its own depth.
	for i := 0; i < DefaultConfig().ProxyDepth; i++ {
		if err := m.EnqueueProxy(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: 0, Size: 16384}, nil); err != nil {
			t.Fatalf("proxy enqueue %d: %v", i, err)
		}
	}
	if err := m.EnqueueProxy(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: 0, Size: 128}, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("proxy overflow: %v, want ErrQueueFull", err)
	}
}

// Property: any valid element GET round-trips its payload exactly,
// regardless of size/alignment combination.
func TestGetRoundTripProperty(t *testing.T) {
	f := func(sizeSel uint8, lineOff uint8) bool {
		sizes := []int{1, 2, 4, 8, 16, 32, 48, 64, 128, 256, 1024, 2048, 16384}
		size := sizes[int(sizeSel)%len(sizes)]
		// EA offset: any multiple of size (small) or 16 (big).
		align := size
		if size >= 16 {
			align = 16
		}
		ea := int64(lineOff%8) * int64(align)
		eng, fab, m, ls := newMFC(37)
		fill(fab.mem[ea:ea+int64(size)], byte(sizeSel))
		err := m.Enqueue(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: ea, Size: size}, nil)
		if err != nil {
			return false
		}
		eng.Run()
		return bytes.Equal(ls[:size], fab.mem[ea:ea+int64(size)])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Throughput sanity: with near-zero latency, a big GET is paced by the
// issue interval (one packet per bus cycle), so 16 KB takes ~128 * 2
// cycles.
func TestIssuePacing(t *testing.T) {
	eng, _, m, _ := newMFC(1)
	m.Enqueue(Cmd{Kind: Get, Tag: 0, LSAddr: 0, EA: 0, Size: 16384}, nil)
	eng.Run()
	cfg := DefaultConfig()
	// Last of 128 packets issues at setup + 127*interval; +1 cycle fabric
	// latency for its completion.
	min := cfg.SetupCycles + 127*cfg.IssueInterval
	if got := eng.Now(); got < min || got > min+64 {
		t.Fatalf("16KB issue took %d cycles, want about %d", got, min)
	}
}

func TestPerCommandSetupCostDominatesSmall(t *testing.T) {
	// 128 commands of 128B must take ~128 * setup; one 16KB command must
	// be much faster. This is the paper's DMA-elem degradation below 1KB.
	run := func(n, size int) sim.Time {
		eng, _, m, _ := newMFC(1)
		issued := 0
		var next func()
		next = func() {
			for issued < n {
				err := m.Enqueue(Cmd{Kind: Get, Tag: 0, LSAddr: issued * size % (1 << 18), EA: int64(issued * size), Size: size}, nil)
				if errors.Is(err, ErrQueueFull) {
					m.OnSpace(next)
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				issued++
			}
		}
		next()
		eng.Run()
		return eng.Now()
	}
	small := run(128, 128)
	big := run(1, 16384)
	if small < 3*big {
		t.Fatalf("128x128B (%d cycles) should be much slower than 1x16KB (%d cycles)", small, big)
	}
}
