// Package mfc models the Memory Flow Controller of an SPE: the DMA engine
// through which all SPE communication happens.
//
// The model covers the parts of the MFC the paper's microbenchmarks
// exercise:
//
//   - a 16-entry SPU command queue (plus the 8-entry proxy queue used by
//     PPE-initiated DMA),
//   - GET/PUT element commands up to 16 KB, split into 128-byte bus
//     packets at effective-address line boundaries,
//   - GETL/PUTL list commands (up to 2048 elements per list) processed
//     element by element with a small per-element overhead,
//   - fence and barrier ordering variants,
//   - 32 tag groups with completion waiting,
//   - a bounded window of outstanding bus packets, which is what limits a
//     single SPE's memory bandwidth to ~10 GB/s in the paper (window ×
//     line size / round-trip latency).
//
// The MFC does not touch the EIB directly; it issues line-granularity
// reads/writes against a Fabric, which the cell package routes to main
// memory or to another SPE's local store.
package mfc

import (
	"errors"
	"fmt"
	"strings"

	"cellbe/internal/fault"
	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
	"cellbe/internal/trace"
)

// MaxTransfer is the architectural maximum size of one DMA element (16 KB).
const MaxTransfer = 16 * 1024

// MaxListElements is the architectural maximum list length.
const MaxListElements = 2048

// NumTags is the number of tag groups.
const NumTags = 32

// LineBytes is the bus packet granularity.
const LineBytes = 128

// Fabric is the MFC's view of the rest of the machine: line-granularity
// reads and writes by effective address. Calls must not cross a 128-byte
// EA boundary. done.Call fires at the simulated completion time; the
// dst/src slices are filled/read at that moment. done is an interface
// rather than a closure so the per-packet completion target is the
// command-state record itself — no allocation per packet, and pending
// completions stay identifiable to state inspection.
type Fabric interface {
	ReadEA(ea int64, n int, earliest sim.Time, dst []byte, done sim.Callee)
	WriteEA(ea int64, n int, earliest sim.Time, src []byte, done sim.Callee)
}

// Kind is the DMA command type.
type Kind int

const (
	// Get transfers from effective address space into the local store.
	Get Kind = iota
	// Put transfers from the local store to effective address space.
	Put
	// GetList is a list-directed Get: one command, many EA/size pairs.
	GetList
	// PutList is a list-directed Put.
	PutList
)

func (k Kind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case GetList:
		return "getl"
	case PutList:
		return "putl"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsList reports whether the kind is list-directed.
func (k Kind) IsList() bool { return k == GetList || k == PutList }

// IsGet reports whether data flows into the local store.
func (k Kind) IsGet() bool { return k == Get || k == GetList }

// ListElem is one entry of a DMA list: a transfer of Size bytes at EA. The
// local store address advances implicitly through the list.
type ListElem struct {
	EA   int64
	Size int
}

// Cmd is a DMA command as written to the MFC command queue.
type Cmd struct {
	Kind   Kind
	Tag    int   // tag group 0..31
	LSAddr int   // local store byte offset
	EA     int64 // effective address (element commands)
	Size   int   // bytes (element commands)
	List   []ListElem
	// Fence delays this command until previously enqueued commands of the
	// same tag group complete; Barrier until all previous commands do.
	Fence   bool
	Barrier bool
}

// Errors returned by Enqueue.
var (
	ErrQueueFull  = errors.New("mfc: command queue full")
	ErrBadCommand = errors.New("mfc: invalid command")
)

// Config holds MFC timing and capacity parameters (cycles are CPU cycles).
type Config struct {
	// QueueDepth is the SPU command queue depth (16).
	QueueDepth int
	// ProxyDepth is the PPE-side proxy command queue depth (8).
	ProxyDepth int
	// Window is the maximum outstanding bus packets across element
	// commands. This bound, times 128 bytes, divided by the memory
	// round-trip time, is a single SPE's memory bandwidth ceiling.
	Window int
	// ListWindow is the outstanding-packet bound for a list command's
	// packets (the list unrolls sequentially with less lookahead).
	ListWindow int
	// SetupCycles is the front-end cost of starting each queued command.
	SetupCycles sim.Time
	// ListElemCycles is the cost of unrolling each list element (the MFC
	// fetches list entries from the local store, 8 bytes each).
	ListElemCycles sim.Time
	// IssueInterval paces bus packet issue: one packet per bus cycle.
	IssueInterval sim.Time
}

// DefaultConfig returns the Cell BE MFC parameters.
func DefaultConfig() Config {
	return Config{
		QueueDepth:     16,
		ProxyDepth:     8,
		Window:         16,
		ListWindow:     6,
		SetupCycles:    30,
		ListElemCycles: 4,
		IssueInterval:  2,
	}
}

// Stats aggregates MFC activity.
type Stats struct {
	Commands     int64
	Packets      int64
	Bytes        int64
	ListElements int64
	Atomics      int64
}

type cmdState struct {
	cmd     Cmd
	seq     int64
	proxy   bool
	started bool
	// Issue-scan classification, fixed at enqueue. pickCommand runs once
	// per issued packet and scans every active command, so it reads these
	// packed bytes instead of chasing cmd.Kind/Fence/Barrier through the
	// much larger Cmd value.
	isList bool // kind is GetList/PutList
	isGet  bool // kind moves EA -> LS
	plain  bool // neither fenced nor barriered
	// element progress
	offset int // bytes issued (element commands)
	// list progress
	listIdx int // current list element
	listOff int // bytes issued within the current element
	lsOff   int // running local store offset (list commands)
	// completion accounting
	inflight    int
	issuedAll   bool
	totalIssued int64
	readyAt     sim.Time // fence/barrier release time (set when satisfied)
	// tracing timestamps: enqueue time and first bus-packet issue time
	// (plain stores, kept up to date whether or not a tracer is attached)
	issued      sim.Time
	firstPacket sim.Time
	done        func()
	// m backlinks to the owning MFC: the command state itself is the
	// per-packet completion Callee (a 16 KB command issues up to 128
	// line-sized packets, and allocating a fresh closure for each was a
	// top allocation site before the record became the target).
	m *MFC
	// ffMark/ffLabel are the fast-forward digest's wavefront labeling
	// scratch (see ff.go FFNoteEvent); valid only while ffMark equals the
	// owning MFC's current epoch.
	ffMark  int64
	ffLabel int32
	// retire is the prebound delayed-retirement target for the injected
	// late-completion fault path (see cmdState.Call).
	retire retireHandle
}

// Call is the bus-packet completion path: the fabric calls it once per
// finished packet. With fault injection attached, an injected late
// completion defers the retirement bookkeeping by the sampled delay.
func (st *cmdState) Call(end sim.Time) {
	m := st.m
	if m.faults != nil {
		if d := m.faults.DoneDelay(); d > 0 {
			// Injected late completion: the acknowledgement exists but the
			// MFC observes it a bounded number of cycles later.
			m.eng.AtCallee(m.eng.Now()+d, &st.retire, end)
			return
		}
	}
	st.retirePacket(end)
}

// retirePacket books one completed packet and pumps the queue.
func (st *cmdState) retirePacket(sim.Time) {
	m := st.m
	st.inflight--
	m.outstanding--
	if st.issuedAll && st.inflight == 0 {
		m.complete(st)
	}
	m.pump()
}

// retireHandle is the Callee the fault path schedules so a delayed
// retirement is still a prebound record, not a closure — and still
// classifiable by state inspection.
type retireHandle struct{ st *cmdState }

// Call performs the deferred retirement.
func (r *retireHandle) Call(end sim.Time) { r.st.retirePacket(end) }

// MFC is one SPE's memory flow controller.
type MFC struct {
	eng    *sim.Engine
	fabric Fabric
	ls     []byte
	cfg    Config
	faults *fault.Injector

	// taint, when set, is told the LS span a command will write before
	// the data lands (conservatively, at enqueue). The SPE wires its
	// dirty-span tracker here so recycled local stores know what to zero.
	taint func(lo, hi int)

	tracer   *trace.Tracer
	perf     *perfctr.MFCCounters
	traceSPE int               // logical SPE index for track identity
	tagStart [NumTags]sim.Time // cycle each tag group last went busy

	seq         int64
	spuQueue    int // occupied SPU queue slots
	proxyQueue  int
	active      []*cmdState // incomplete commands, enqueue order
	outstanding int
	nextIssue   sim.Time

	tagCount [NumTags]int
	// tagRequested/tagDelivered account payload bytes per tag group: a
	// command's bytes are requested at enqueue and delivered when its last
	// packet completes. The two must match at teardown (CheckConservation).
	tagRequested [NumTags]int64
	tagDelivered [NumTags]int64
	tagWaiters   []*tagWaiter
	spaceSubs    []spaceSub
	// spaceSpare is the drained spaceSubs backing, kept so the next
	// registration round reuses it instead of growing a fresh slice.
	spaceSpare []spaceSub

	// freeCmds pools completed cmdStates for reuse by enqueue: command
	// records churn at DMA rate (one per command, every run), so the
	// steady-state hot path allocates none. States from aborted runs are
	// simply dropped; only cleanly completed ones are pooled.
	freeCmds []*cmdState

	stats Stats

	// SPU-queue occupancy histogram: occHist[n] accumulates the simulated
	// cycles the queue spent holding exactly n commands (n = 0..QueueDepth),
	// advanced lazily at each occupancy transition. occLast is the time of
	// the last transition. The histogram is observational only — it never
	// feeds back into timing — and costs one add per enqueue/complete.
	occHist []sim.Time
	occLast sim.Time

	// Fast-forward wavefront-labeling state (see ff.go): the current
	// labeling epoch and the commands labeled this epoch, in label order.
	ffEpoch int64
	ffOrd   []*cmdState
}

// tagWaiter and spaceSub carry either a plain callback or a prebound
// Callee; exactly one is set. The SPU channel interface registers Callees
// (reusable process wake records); plain funcs remain for tests and
// ad-hoc drivers.
type tagWaiter struct {
	mask  uint32
	fired bool
	fn    func()
	cb    sim.Callee
}

type spaceSub struct {
	fn func()
	cb sim.Callee
}

// New returns an MFC moving data between ls (the SPE's local store) and
// the fabric.
func New(eng *sim.Engine, fabric Fabric, ls []byte, cfg Config) *MFC {
	if cfg.QueueDepth <= 0 || cfg.Window <= 0 || cfg.ListWindow <= 0 {
		panic("mfc: invalid config")
	}
	return &MFC{eng: eng, fabric: fabric, ls: ls, cfg: cfg}
}

// SetFaults attaches a fault injector (nil disables injection). Wired by
// the cell package at system assembly.
func (m *MFC) SetFaults(inj *fault.Injector) { m.faults = inj }

// SetLSTaint registers the local-store dirty-span tracker commands that
// write into LS report to (nil disables tracking). Wired by the owning
// SPE.
func (m *MFC) SetLSTaint(fn func(lo, hi int)) { m.taint = fn }

// SetTracer attaches an event tracer (nil disables tracing, the default)
// and the logical SPE index that identifies this MFC's tracks. Wired by
// the cell package at system assembly, like SetFaults.
func (m *MFC) SetTracer(tr *trace.Tracer, spe int) {
	m.tracer = tr
	m.traceSPE = spe
}

// SetPerf attaches a perf-counter block (nil disables counting, the
// default). Wired by the cell package at system assembly, like SetFaults.
func (m *MFC) SetPerf(pc *perfctr.MFCCounters) { m.perf = pc }

// QueueOccupancy returns the number of occupied SPU command-queue slots
// (the metrics sampler's per-SPE queue-depth gauge).
func (m *MFC) QueueOccupancy() int { return m.spuQueue }

// occAdvance charges the cycles since the last occupancy transition to the
// level the queue is leaving, then moves the accounting cursor to now.
func (m *MFC) occAdvance(level int) {
	if m.occHist == nil {
		m.occHist = make([]sim.Time, m.cfg.QueueDepth+1)
	}
	now := m.eng.Now()
	m.occHist[level] += now - m.occLast
	m.occLast = now
}

// OccupancyHist returns the time-weighted SPU-queue occupancy histogram:
// element n is the simulated cycles the queue spent holding exactly n
// commands, including the still-open span at the current level. The sum
// of all buckets equals the current simulated time once any command has
// been enqueued.
func (m *MFC) OccupancyHist() []sim.Time {
	out := make([]sim.Time, m.cfg.QueueDepth+1)
	copy(out, m.occHist)
	if m.occHist != nil {
		out[m.spuQueue] += m.eng.Now() - m.occLast
	}
	return out
}

// Reset returns the MFC to the state New(eng, fabric, ls, cfg) would
// build, keeping grown slice capacities (active queue, waiter lists,
// occupancy histogram). Attachments (faults, tracer, perf) are cleared as
// on a fresh MFC; the assembling layer rewires them. Part of the
// warm-system recycling path.
func (m *MFC) Reset(fabric Fabric, ls []byte, cfg Config) {
	if cfg.QueueDepth <= 0 || cfg.Window <= 0 || cfg.ListWindow <= 0 {
		panic("mfc: invalid config")
	}
	if cfg.QueueDepth != m.cfg.QueueDepth {
		m.occHist = nil
	} else {
		clear(m.occHist)
	}
	m.fabric, m.ls, m.cfg = fabric, ls, cfg
	m.faults, m.tracer, m.perf = nil, nil, nil
	m.traceSPE = 0
	m.tagStart = [NumTags]sim.Time{}
	m.seq = 0
	m.spuQueue, m.proxyQueue = 0, 0
	clear(m.active)
	m.active = m.active[:0]
	m.outstanding = 0
	m.nextIssue = 0
	m.tagCount = [NumTags]int{}
	m.tagRequested = [NumTags]int64{}
	m.tagDelivered = [NumTags]int64{}
	clear(m.tagWaiters)
	m.tagWaiters = m.tagWaiters[:0]
	clear(m.spaceSubs)
	m.spaceSubs = m.spaceSubs[:0]
	m.stats = Stats{}
	m.occLast = 0
	m.ffEpoch = 0
	clear(m.ffOrd)
	m.ffOrd = m.ffOrd[:0]
}

// Stats returns a snapshot of the activity counters.
func (m *MFC) Stats() Stats { return m.stats }

// QueueFree returns the number of free SPU command-queue slots.
func (m *MFC) QueueFree() int { return m.cfg.QueueDepth - m.spuQueue }

// TagIncomplete returns the number of incomplete commands in tag group t.
func (m *MFC) TagIncomplete(t int) int { return m.tagCount[t] }

// validate checks a command against the MFC's architectural rules.
func (m *MFC) validate(c *Cmd) error {
	if c.Tag < 0 || c.Tag >= NumTags {
		return fmt.Errorf("%w: tag %d", ErrBadCommand, c.Tag)
	}
	if c.Fence && c.Barrier {
		return fmt.Errorf("%w: both fence and barrier", ErrBadCommand)
	}
	checkSpan := func(ls int, ea int64, size int) error {
		if err := checkSize(size); err != nil {
			return err
		}
		if size < 16 {
			if ea%int64(size) != 0 || ls%size != 0 {
				return fmt.Errorf("%w: %d-byte transfer must be naturally aligned (ea=%#x ls=%#x)", ErrBadCommand, size, ea, ls)
			}
		} else if ea%16 != 0 || ls%16 != 0 {
			return fmt.Errorf("%w: transfer must be 16-byte aligned (ea=%#x ls=%#x)", ErrBadCommand, ea, ls)
		}
		if ls < 0 || ls+size > len(m.ls) {
			return fmt.Errorf("%w: local store span %#x+%d out of range", ErrBadCommand, ls, size)
		}
		return nil
	}
	if c.Kind.IsList() {
		if len(c.List) == 0 || len(c.List) > MaxListElements {
			return fmt.Errorf("%w: list of %d elements", ErrBadCommand, len(c.List))
		}
		ls := c.LSAddr
		for _, el := range c.List {
			if err := checkSpan(ls, el.EA, el.Size); err != nil {
				return err
			}
			ls += el.Size
		}
		return nil
	}
	return checkSpan(c.LSAddr, c.EA, c.Size)
}

func checkSize(size int) error {
	if size <= 0 || size > MaxTransfer {
		return fmt.Errorf("%w: size %d", ErrBadCommand, size)
	}
	if size < 16 {
		switch size {
		case 1, 2, 4, 8:
			return nil
		default:
			return fmt.Errorf("%w: size %d (must be 1,2,4,8 or multiple of 16)", ErrBadCommand, size)
		}
	}
	if size%16 != 0 {
		return fmt.Errorf("%w: size %d not a multiple of 16", ErrBadCommand, size)
	}
	return nil
}

// Enqueue places a command on the SPU command queue. It returns
// ErrQueueFull when all slots are busy (the caller — the SPU channel
// interface — stalls and retries via OnSpace). done, if non-nil, fires
// when the command completes.
func (m *MFC) Enqueue(c Cmd, done func()) error {
	return m.enqueue(c, done, false)
}

// EnqueueProxy places a command on the PPE-side proxy queue.
func (m *MFC) EnqueueProxy(c Cmd, done func()) error {
	return m.enqueue(c, done, true)
}

func (m *MFC) enqueue(c Cmd, done func(), proxy bool) error {
	if err := m.validate(&c); err != nil {
		return err
	}
	if proxy {
		if m.proxyQueue >= m.cfg.ProxyDepth {
			return ErrQueueFull
		}
		m.proxyQueue++
	} else {
		if m.spuQueue >= m.cfg.QueueDepth {
			return ErrQueueFull
		}
		m.occAdvance(m.spuQueue)
		m.spuQueue++
		m.perf.SampleQueue(m.spuQueue)
	}
	m.seq++
	var st *cmdState
	if n := len(m.freeCmds); n > 0 {
		st = m.freeCmds[n-1]
		m.freeCmds[n-1] = nil
		m.freeCmds = m.freeCmds[:n-1]
	} else {
		st = new(cmdState)
	}
	*st = cmdState{cmd: c, seq: m.seq, proxy: proxy, done: done, readyAt: -1, issued: m.eng.Now(), m: m}
	st.isList = c.Kind.IsList()
	st.isGet = c.Kind.IsGet()
	st.plain = !c.Fence && !c.Barrier
	if st.isGet && m.taint != nil {
		// The command will write this LS span as its packets land; list
		// elements fill the store contiguously from LSAddr. Taint now,
		// conservatively — an aborted run leaves at most a clean span
		// marked dirty.
		m.taint(c.LSAddr, c.LSAddr+int(payloadBytes(&c)))
	}
	st.retire.st = st
	m.active = append(m.active, st)
	if m.tagCount[c.Tag] == 0 {
		m.tagStart[c.Tag] = m.eng.Now()
	}
	m.tagCount[c.Tag]++
	m.tagRequested[c.Tag] += payloadBytes(&c)
	m.stats.Commands++
	m.pump()
	return nil
}

// payloadBytes returns the bytes a command moves when it completes.
func payloadBytes(c *Cmd) int64 {
	if !c.Kind.IsList() {
		return int64(c.Size)
	}
	var total int64
	for _, el := range c.List {
		total += int64(el.Size)
	}
	return total
}

// OnSpace registers fn to run once, the next time a queue slot frees.
func (m *MFC) OnSpace(fn func()) { m.spaceSubs = append(m.spaceSubs, spaceSub{fn: fn}) }

// OnSpaceCB is OnSpace with a prebound Callee target (the SPU channel
// interface's reusable wake record): registration allocates nothing.
func (m *MFC) OnSpaceCB(cb sim.Callee) { m.spaceSubs = append(m.spaceSubs, spaceSub{cb: cb}) }

// WaitTags registers fn to run when every tag group in mask has no
// incomplete commands. If already true, fn is scheduled immediately.
func (m *MFC) WaitTags(mask uint32, fn func()) {
	w := &tagWaiter{mask: mask, fn: fn}
	m.tagWaiters = append(m.tagWaiters, w)
	m.checkTagWaiters()
}

// WaitTagsCB is WaitTags with a prebound Callee target.
func (m *MFC) WaitTagsCB(mask uint32, cb sim.Callee) {
	w := &tagWaiter{mask: mask, cb: cb}
	m.tagWaiters = append(m.tagWaiters, w)
	m.checkTagWaiters()
}

// TagsComplete reports whether all tag groups in mask are idle.
func (m *MFC) TagsComplete(mask uint32) bool {
	for t := 0; t < NumTags; t++ {
		if mask&(1<<uint(t)) != 0 && m.tagCount[t] > 0 {
			return false
		}
	}
	return true
}

func (m *MFC) checkTagWaiters() {
	kept := m.tagWaiters[:0]
	for _, w := range m.tagWaiters {
		if !w.fired && m.TagsComplete(w.mask) {
			w.fired = true
			if w.cb != nil {
				m.eng.PostCallee(w.cb, m.eng.Now())
			} else {
				m.eng.Post(w.fn)
			}
		} else if !w.fired {
			kept = append(kept, w)
		}
	}
	m.tagWaiters = kept
}

// orderingSatisfied reports whether st's fence/barrier allows issue.
func (m *MFC) orderingSatisfied(st *cmdState) bool {
	if !st.cmd.Fence && !st.cmd.Barrier {
		return true
	}
	for _, other := range m.active {
		if other.seq >= st.seq {
			break
		}
		if st.cmd.Barrier || other.cmd.Tag == st.cmd.Tag {
			return false
		}
	}
	return true
}

// nextPacket computes the next bus packet of st without consuming it.
// ok is false when all packets have been issued.
func (st *cmdState) nextPacket() (lsOff int, ea int64, n int, newElem bool, ok bool) {
	c := &st.cmd
	if !c.Kind.IsList() {
		if st.offset >= c.Size {
			return 0, 0, 0, false, false
		}
		ea = c.EA + int64(st.offset)
		n = lineRemain(ea, c.Size-st.offset)
		return c.LSAddr + st.offset, ea, n, st.offset == 0, true
	}
	for st.listIdx < len(c.List) && c.List[st.listIdx].Size == 0 {
		st.listIdx++
	}
	if st.listIdx >= len(c.List) {
		return 0, 0, 0, false, false
	}
	el := c.List[st.listIdx]
	ea = el.EA + int64(st.listOff)
	n = lineRemain(ea, el.Size-st.listOff)
	return st.lsOff + c.LSAddr + st.listOff, ea, n, st.listOff == 0, true
}

// lineRemain returns the largest span at ea, up to remain bytes, that does
// not cross a 128-byte line boundary.
func lineRemain(ea int64, remain int) int {
	room := int(LineBytes - ea%LineBytes)
	if remain < room {
		return remain
	}
	return room
}

// advance consumes n bytes of st's current packet position.
func (st *cmdState) advance(n int) {
	c := &st.cmd
	if !c.Kind.IsList() {
		st.offset += n
		if st.offset >= c.Size {
			st.issuedAll = true
		}
		return
	}
	st.listOff += n
	if st.listOff >= c.List[st.listIdx].Size {
		st.lsOff += c.List[st.listIdx].Size
		st.listOff = 0
		st.listIdx++
		for st.listIdx < len(c.List) && c.List[st.listIdx].Size == 0 {
			st.listIdx++
		}
		if st.listIdx >= len(c.List) {
			st.issuedAll = true
		}
	}
}

// pump issues as many bus packets as the window and command ordering
// allow. It is called on every state change.
func (m *MFC) pump() {
	for m.outstanding < m.cfg.Window {
		st := m.pickCommand()
		if st == nil {
			return
		}
		lsOff, ea, n, newElem, ok := st.nextPacket()
		if !ok {
			return // defensive; pickCommand filters these
		}

		t := m.eng.Now()
		if m.nextIssue > t {
			t = m.nextIssue
		}
		// Injected command-bus token denial: the packet's issue slides by
		// the retry backoff, pushing later packets with it (the DMA
		// controller re-requests the token in order).
		if d := m.faults.MFCRetry(); d > 0 {
			t += d
			m.perf.Retry()
		}
		if !st.started {
			st.started = true
			t += m.cfg.SetupCycles
			st.firstPacket = t
		}
		if st.isList && newElem {
			t += m.cfg.ListElemCycles
			m.stats.ListElements++
		}
		m.nextIssue = t + m.cfg.IssueInterval

		st.advance(n)
		st.inflight++
		st.totalIssued++
		m.outstanding++
		m.stats.Packets++
		m.stats.Bytes += int64(n)

		if st.isGet {
			m.fabric.ReadEA(ea, n, t, m.ls[lsOff:lsOff+n], st)
		} else {
			m.fabric.WriteEA(ea, n, t, m.ls[lsOff:lsOff+n], st)
		}
	}
}

// pickCommand returns the eligible command to issue the next packet from.
// The DMA controller works on queued commands concurrently, so selection
// interleaves: among commands with unissued packets whose ordering and
// per-command window constraints are satisfied, pick the one with the
// fewest packets in flight (ties broken by queue order).
func (m *MFC) pickCommand() *cmdState {
	var best *cmdState
	listWindow := m.cfg.ListWindow
	for _, st := range m.active {
		if st.issuedAll {
			continue
		}
		if st.isList && st.inflight >= listWindow {
			continue
		}
		if !st.plain && !m.orderingSatisfied(st) {
			// Only this command waits; later independent commands may
			// bypass it (fences and barriers order the tagged command
			// against earlier ones, not the whole queue).
			continue
		}
		if best == nil || st.inflight < best.inflight {
			best = st
			if st.inflight == 0 {
				// Nothing can strictly beat zero packets in flight, and
				// ties always go to the earliest queue position, which
				// this command holds among the zeros.
				break
			}
		}
	}
	return best
}

func (m *MFC) complete(st *cmdState) {
	for i, s := range m.active {
		if s == st {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	if st.proxy {
		m.proxyQueue--
	} else {
		m.occAdvance(m.spuQueue)
		m.spuQueue--
	}
	m.tagCount[st.cmd.Tag]--
	m.tagDelivered[st.cmd.Tag] += payloadBytes(&st.cmd)
	m.tracer.Emit(trace.MFCTrack(m.traceSPE), trace.KindDMA,
		st.issued, m.eng.Now(), payloadBytes(&st.cmd), int64(st.cmd.Tag),
		int64(st.cmd.Kind), int64(st.firstPacket))
	if m.tagCount[st.cmd.Tag] == 0 {
		m.tracer.Emit(trace.TagTrack(m.traceSPE), trace.KindTag,
			m.tagStart[st.cmd.Tag], m.eng.Now(), int64(st.cmd.Tag), 0, 0, 0)
	}
	m.checkTagWaiters()
	if st.done != nil {
		m.eng.Post(st.done)
	}
	if len(m.spaceSubs) > 0 {
		// Swap in the spare backing before posting: a posted callback may
		// re-register, and it must land in the next round's slice, not
		// the one being drained.
		subs := m.spaceSubs
		m.spaceSubs = m.spaceSpare[:0]
		for _, s := range subs {
			if s.cb != nil {
				m.eng.PostCallee(s.cb, m.eng.Now())
			} else {
				m.eng.Post(s.fn)
			}
		}
		clear(subs)
		m.spaceSpare = subs[:0]
	}
	// The last packet has retired and every reference above is by value:
	// the record can be recycled for a future enqueue.
	*st = cmdState{}
	m.freeCmds = append(m.freeCmds, st)
}

// ConservationError reports a violated data-conservation invariant at
// scenario teardown: bytes requested must equal bytes delivered in every
// tag group, with no commands or packets left in flight.
type ConservationError struct {
	Problems []string
}

func (e *ConservationError) Error() string {
	return "mfc: conservation violated: " + strings.Join(e.Problems, "; ")
}

// CheckConservation verifies the teardown invariants: every enqueued
// command completed, no bus packets are outstanding, and each tag group
// delivered exactly the bytes requested of it. Faulty runs must pass this
// too — fault injection delays data, it never loses it.
func (m *MFC) CheckConservation() error {
	var problems []string
	if n := len(m.active); n > 0 {
		problems = append(problems, fmt.Sprintf("%d commands still active", n))
	}
	if m.outstanding > 0 {
		problems = append(problems, fmt.Sprintf("%d bus packets in flight", m.outstanding))
	}
	for t := 0; t < NumTags; t++ {
		if m.tagRequested[t] != m.tagDelivered[t] {
			problems = append(problems, fmt.Sprintf(
				"tag %d: requested %d bytes, delivered %d", t, m.tagRequested[t], m.tagDelivered[t]))
		}
	}
	if len(problems) > 0 {
		return &ConservationError{Problems: problems}
	}
	return nil
}

// Diagnose describes in-flight MFC state for watchdog diagnostics; it
// returns nil when the MFC is idle.
func (m *MFC) Diagnose() []string {
	if len(m.active) == 0 && m.outstanding == 0 && len(m.tagWaiters) == 0 {
		return nil
	}
	var busyTags []string
	for t := 0; t < NumTags; t++ {
		if m.tagCount[t] > 0 {
			busyTags = append(busyTags, fmt.Sprintf("%d(%d cmds, %d/%d bytes)",
				t, m.tagCount[t], m.tagDelivered[t], m.tagRequested[t]))
		}
	}
	line := fmt.Sprintf("%d active commands, %d packets in flight, %d tag waiters",
		len(m.active), m.outstanding, len(m.tagWaiters))
	if len(busyTags) > 0 {
		line += ", outstanding tags: " + strings.Join(busyTags, " ")
	}
	return []string{line}
}
