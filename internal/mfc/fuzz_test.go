package mfc

import (
	"errors"
	"testing"

	"cellbe/internal/sim"
)

// newValidateMFC builds an MFC whose validate method can be exercised
// without a fabric (validation never touches it).
func newValidateMFC() *MFC {
	return New(sim.NewEngine(), nil, make([]byte, 256<<10), DefaultConfig())
}

// TestValidateTypedErrors pins the graceful-degradation contract for
// user-reachable command validation: every malformed command yields an
// error wrapping ErrBadCommand — never a panic, never an untyped error.
func TestValidateTypedErrors(t *testing.T) {
	m := newValidateMFC()
	cases := []struct {
		name string
		cmd  Cmd
	}{
		{"bad tag", Cmd{Kind: Get, Tag: NumTags, Size: 128}},
		{"negative tag", Cmd{Kind: Get, Tag: -1, Size: 128}},
		{"oversize", Cmd{Kind: Get, Size: MaxTransfer + 16}},
		{"zero size", Cmd{Kind: Get, Size: 0}},
		{"size 3", Cmd{Kind: Get, Size: 3}},
		{"size 24", Cmd{Kind: Get, Size: 24}},
		{"unaligned ea", Cmd{Kind: Get, Size: 128, EA: 8}},
		{"unaligned ls", Cmd{Kind: Get, Size: 128, LSAddr: 4}},
		{"small unaligned", Cmd{Kind: Get, Size: 4, EA: 2}},
		{"ls overflow", Cmd{Kind: Get, Size: 128, LSAddr: 256<<10 - 64}},
		{"negative ls", Cmd{Kind: Get, Size: 128, LSAddr: -128}},
		{"fence and barrier", Cmd{Kind: Get, Size: 128, Fence: true, Barrier: true}},
		{"empty list", Cmd{Kind: GetList}},
		{"long list", Cmd{Kind: PutList, List: make([]ListElem, MaxListElements+1)}},
		{"bad list elem", Cmd{Kind: GetList, List: []ListElem{{EA: 0, Size: 3}}}},
	}
	for _, tc := range cases {
		err := m.validate(&tc.cmd)
		if err == nil {
			t.Errorf("%s: expected an error", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadCommand) {
			t.Errorf("%s: error %v does not wrap ErrBadCommand", tc.name, err)
		}
	}
	good := Cmd{Kind: Get, Tag: 3, Size: 16384, EA: 1 << 20}
	if err := m.validate(&good); err != nil {
		t.Errorf("valid command rejected: %v", err)
	}
}

// FuzzMFCValidate throws arbitrary command shapes (size, alignment, tag,
// list length) at the validator and asserts the robustness contract: it
// must return nil or a typed ErrBadCommand error — and must not panic.
// The fuzzer catches panics itself; the assertions pin the error type.
func FuzzMFCValidate(f *testing.F) {
	f.Add(uint8(0), 0, 0, int64(0), 16384, uint16(0), 0, false, false)          // valid get
	f.Add(uint8(1), 31, 128, int64(1<<20), 128, uint16(0), 0, true, false)      // valid fenced put
	f.Add(uint8(2), 0, 0, int64(0), 0, uint16(8), 1024, false, false)           // valid list
	f.Add(uint8(0), 32, 0, int64(0), 128, uint16(0), 0, false, false)           // bad tag
	f.Add(uint8(0), 0, 0, int64(0), MaxTransfer+16, uint16(0), 0, false, false) // oversize
	f.Add(uint8(0), 0, 4, int64(2), 3, uint16(0), 0, false, false)              // misaligned
	f.Add(uint8(3), 0, 0, int64(0), 0, uint16(4096), 16, false, false)          // list too long
	f.Add(uint8(0), 0, 0, int64(0), 128, uint16(0), 0, true, true)              // fence+barrier
	f.Add(uint8(0), 0, -1<<20, int64(-64), 128, uint16(0), 0, false, false)     // negative addrs

	m := newValidateMFC()
	f.Fuzz(func(t *testing.T, kindRaw uint8, tag, lsaddr int, ea int64, size int, listLen uint16, elemSize int, fence, barrier bool) {
		kind := Kind(kindRaw % 4)
		cmd := Cmd{
			Kind:    kind,
			Tag:     tag,
			LSAddr:  lsaddr,
			EA:      ea,
			Size:    size,
			Fence:   fence,
			Barrier: barrier,
		}
		if kind.IsList() {
			n := int(listLen % (MaxListElements + 16)) // cover the over-limit band
			cmd.List = make([]ListElem, n)
			for i := range cmd.List {
				cmd.List[i] = ListElem{EA: ea + int64(i*elemSize), Size: elemSize}
			}
		}
		if err := m.validate(&cmd); err != nil && !errors.Is(err, ErrBadCommand) {
			t.Fatalf("validate(%+v) = %v: not a typed ErrBadCommand", cmd, err)
		}
	})
}
