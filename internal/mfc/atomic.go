package mfc

import "cellbe/internal/sim"

// Atomic (lock-line reservation) support: the MFC's getllar/putllc/putlluc
// commands, the Cell's primitive for locks and lock-free structures. A
// GETLLAR loads a 128-byte line and establishes a reservation; a PUTLLC
// stores the line back only if no other party wrote the line in between.
//
// The reservation registry lives behind the fabric (the cell package owns
// the coherence point and kills reservations on every write to a line);
// the MFC side models the command timing: atomics bypass the ordinary
// 16-deep queue and execute immediately through a dedicated one-entry
// atomic unit.

// AtomicFabric is implemented by fabrics that support lock-line
// reservations. The done callback of ReadLocked fires when the line and
// its reservation are established; CondWrite reports success through its
// callback.
type AtomicFabric interface {
	Fabric
	// ReadLocked reads the 128-byte line at ea and places a reservation
	// for owner.
	ReadLocked(owner int, ea int64, earliest sim.Time, dst []byte, done func(end sim.Time))
	// CondWrite writes the line back iff owner's reservation on ea still
	// holds, reporting success.
	CondWrite(owner int, ea int64, earliest sim.Time, src []byte, done func(end sim.Time, ok bool))
}

// SupportsAtomics reports whether the MFC's fabric implements the
// lock-line reservation protocol.
func (m *MFC) SupportsAtomics() bool {
	_, ok := m.fabric.(AtomicFabric)
	return ok
}

// GetLLAR performs an atomic load-and-reserve of the 128-byte line at ea
// into lsAddr. owner identifies the reserving SPE. done fires at
// completion. Panics if the fabric has no atomic support.
func (m *MFC) GetLLAR(owner int, lsAddr int, ea int64, done func()) {
	af := m.fabric.(AtomicFabric)
	if ea%LineBytes != 0 || lsAddr%LineBytes != 0 {
		panic("mfc: getllar requires line alignment")
	}
	m.stats.Atomics++
	if m.taint != nil {
		m.taint(lsAddr, lsAddr+LineBytes)
	}
	af.ReadLocked(owner, ea, m.eng.Now(), m.ls[lsAddr:lsAddr+LineBytes], func(end sim.Time) {
		done()
	})
}

// PutLLC performs a conditional store of the line at lsAddr to ea; ok is
// true when the reservation held and the store was performed.
func (m *MFC) PutLLC(owner int, lsAddr int, ea int64, done func(ok bool)) {
	af := m.fabric.(AtomicFabric)
	if ea%LineBytes != 0 || lsAddr%LineBytes != 0 {
		panic("mfc: putllc requires line alignment")
	}
	m.stats.Atomics++
	af.CondWrite(owner, ea, m.eng.Now(), m.ls[lsAddr:lsAddr+LineBytes], func(end sim.Time, ok bool) {
		done(ok)
	})
}
