package core

import (
	"bytes"
	"testing"

	"cellbe/internal/spe"
)

func TestCrossChipLimitedByIOIF(t *testing.T) {
	p := fastParams()
	p.Runs = 2
	res, err := CrossChip(p)
	if err != nil {
		t.Fatal(err)
	}
	on, _ := res.At("on-chip partner", 16384)
	cross, _ := res.At("cross-chip partner", 16384)
	if on.Mean < 30 {
		t.Errorf("on-chip pair %.1f GB/s, want near the 33.6 peak", on.Mean)
	}
	// GET and PUT each cross a 7 GB/s link direction: the aggregate must
	// sit well below the on-chip peak and at or under 14.
	if cross.Mean > 14 || cross.Mean < 7 {
		t.Errorf("cross-chip pair %.1f GB/s, want within (7, 14] (two 7 GB/s directions)", cross.Mean)
	}
	if cross.Mean > on.Mean/2 {
		t.Errorf("cross-chip (%.1f) must be far below on-chip (%.1f)", cross.Mean, on.Mean)
	}
}

func TestRemoteLSDataRoundTrip(t *testing.T) {
	p := fastParams()
	sys := p.newSystem(0)
	// PUT a payload to the remote chip's SPE 3, then GET it back.
	src := sys.SPEs[0]
	for i := 0; i < 2048; i++ {
		src.LS()[i] = byte(i * 7)
	}
	src.Run("k", func(ctx *spe.Context) {
		ctx.Put(0, sys.RemoteLSEA(3, 4096), 2048, 0)
		ctx.WaitTag(0)
		ctx.Get(8192, sys.RemoteLSEA(3, 4096), 2048, 1)
		ctx.WaitTag(1)
	})
	sys.Run()
	if !bytes.Equal(sys.RemoteLS(3)[4096:4096+2048], src.LS()[:2048]) {
		t.Fatal("remote LS did not receive the PUT payload")
	}
	if !bytes.Equal(src.LS()[8192:8192+2048], src.LS()[:2048]) {
		t.Fatal("GET from remote LS returned wrong data")
	}
}

func TestRemoteLSBoundsPanic(t *testing.T) {
	p := fastParams()
	sys := p.newSystem(0)
	defer func() {
		if recover() == nil {
			t.Fatal("bad remote index should panic")
		}
	}()
	sys.RemoteLSEA(8, 0)
}

func TestTaskChainShape(t *testing.T) {
	p := fastParams()
	p.Runs = 1
	res, err := TaskChain(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"through-memory", "forwarding"} {
		one, _ := res.At(policy, 1)
		four, _ := res.At(policy, 4)
		if four.Mean < one.Mean*1.4 {
			t.Errorf("%s: 4 workers (%.1f) should scale over 1 (%.1f) with 4 chains",
				policy, four.Mean, one.Mean)
		}
	}
	mem4, _ := res.At("through-memory", 4)
	fwd4, _ := res.At("forwarding", 4)
	if fwd4.Mean <= mem4.Mean {
		t.Errorf("forwarding (%.1f) must beat through-memory (%.1f)", fwd4.Mean, mem4.Mean)
	}
}
