package core

import (
	"fmt"
	"sort"
)

// Experiment is a named, runnable reproduction of one of the paper's
// figures (or a documented extension).
type Experiment struct {
	// Name is the CLI identifier.
	Name string
	// Figure cites what the experiment reproduces.
	Figure string
	// Description says what is measured.
	Description string
	// Run executes the experiment.
	Run func(Params) (*Result, error)
}

// Registry lists every experiment, keyed by name.
var registry = map[string]Experiment{
	"ppe-l1": {
		Name: "ppe-l1", Figure: "Figure 3",
		Description: "PPE to L1 cache: load/store/copy, 1-16 byte elements, 1 and 2 threads",
		Run:         func(p Params) (*Result, error) { return PPEBandwidth(p, LevelL1) },
	},
	"ppe-l2": {
		Name: "ppe-l2", Figure: "Figure 4",
		Description: "PPE to L2 cache: load/store/copy, 1-16 byte elements, 1 and 2 threads",
		Run:         func(p Params) (*Result, error) { return PPEBandwidth(p, LevelL2) },
	},
	"ppe-mem": {
		Name: "ppe-mem", Figure: "Figure 6",
		Description: "PPE to main memory: load/store/copy, 1-16 byte elements, 1 and 2 threads",
		Run:         func(p Params) (*Result, error) { return PPEBandwidth(p, LevelMem) },
	},
	"spe-mem-get": {
		Name: "spe-mem-get", Figure: "Figure 8(a)",
		Description: "SPE to memory DMA-elem GET, 1-8 SPEs, 128B-16KB elements",
		Run:         func(p Params) (*Result, error) { return SPEMemory(p, DMAGet, false) },
	},
	"spe-mem-put": {
		Name: "spe-mem-put", Figure: "Figure 8(b)",
		Description: "SPE to memory DMA-elem PUT, 1-8 SPEs, 128B-16KB elements",
		Run:         func(p Params) (*Result, error) { return SPEMemory(p, DMAPut, false) },
	},
	"spe-mem-copy": {
		Name: "spe-mem-copy", Figure: "Figure 8(c)",
		Description: "SPE to memory DMA-elem GET+PUT copy, 1-8 SPEs, 128B-16KB elements",
		Run:         func(p Params) (*Result, error) { return SPEMemory(p, DMACopy, false) },
	},
	"spe-mem-get-list": {
		Name: "spe-mem-get-list", Figure: "extension of Figure 8",
		Description: "SPE to memory DMA-list GET (extension: list commands against memory)",
		Run:         func(p Params) (*Result, error) { return SPEMemory(p, DMAGet, true) },
	},
	"spe-ls": {
		Name: "spe-ls", Figure: "§4.2.2",
		Description: "SPU to its own Local Store: load/store/copy, 1-16 byte accesses",
		Run:         SPELocalStore,
	},
	"spe-pair-sync": {
		Name: "spe-pair-sync", Figure: "Figure 10",
		Description: "SPE pair, DMA-elem, synchronizing after every 1/2/4/.../all requests",
		Run:         SPEPairSync,
	},
	"spe-pair-distance": {
		Name: "spe-pair-distance", Figure: "§4.2.3",
		Description: "SPE 0 to each other logical SPE: physical distance effect on one pair",
		Run:         SPEPairDistance,
	},
	"spe-couples": {
		Name: "spe-couples", Figure: "Figures 12(a), 13(a)",
		Description: "1/2/4 couples of SPEs (active+passive), DMA-elem",
		Run:         func(p Params) (*Result, error) { return SPECouples(p, false) },
	},
	"spe-couples-list": {
		Name: "spe-couples-list", Figure: "Figures 12(b), 13(b)",
		Description: "1/2/4 couples of SPEs (active+passive), DMA-list",
		Run:         func(p Params) (*Result, error) { return SPECouples(p, true) },
	},
	"spe-cycle": {
		Name: "spe-cycle", Figure: "Figures 15(a), 16(a)",
		Description: "Cycle of 2/4/8 SPEs, all active with their neighbor, DMA-elem",
		Run:         func(p Params) (*Result, error) { return SPECycle(p, false) },
	},
	"spe-cycle-list": {
		Name: "spe-cycle-list", Figure: "Figures 15(b), 16(b)",
		Description: "Cycle of 2/4/8 SPEs, all active with their neighbor, DMA-list",
		Run:         func(p Params) (*Result, error) { return SPECycle(p, true) },
	},
	"streaming": {
		Name: "streaming", Figure: "§1, §5",
		Description: "Streaming pipelines: 1x8 vs 2x4 vs 4x2 SPEs over 8 SPEs total",
		Run:         Streaming,
	},
	"kernels": {
		Name: "kernels", Figure: "extension (§5 future work)",
		Description: "Streamed compute kernels (dot, matvec, matmul): GFLOPS by SPE count",
		Run:         ComputeKernels,
	},
	"stream": {
		Name: "stream", Figure: "extension (after McCalpin)",
		Description: "STREAM copy/scale/add/triad on SPEs: GB/s by SPE count",
		Run:         STREAM,
	},
	"cross-chip": {
		Name: "cross-chip", Figure: "extension (§5 warning)",
		Description: "SPE pair bandwidth: on-chip partner vs second-chip partner behind the IOIF",
		Run:         CrossChip,
	},
	"task-chain": {
		Name: "task-chain", Figure: "extension (CellSs, §2/§5)",
		Description: "Task runtime: dependent chain under through-memory vs LS-forwarding policies",
		Run:         TaskChain,
	},
	"fault-sweep": {
		Name: "fault-sweep", Figure: "extension (robustness)",
		Description: "Bandwidth vs injected fault rate for pair/couples/cycle/mem scenarios",
		Run:         FaultSweep,
	},
	"layout-timeline": {
		Name: "layout-timeline", Figure: "Figures 13, 16 (mechanism)",
		Description: "EIB bandwidth & wait timelines of the best vs worst SPE layout (cycle scenario)",
		Run:         LayoutTimeline,
	},
	"dma-latency": {
		Name: "dma-latency", Figure: "extension (after Kistler et al.)",
		Description: "Synchronous DMA round-trip latency by size, LS-to-LS and memory",
		Run:         DMALatency,
	},
	"workloads": {
		Name: "workloads", Figure: "extension (README Scenarios)",
		Description: "Workload presets (gups, qcd, md, stream) on the pattern interpreter, 8 SPEs",
		Run:         Workloads,
	},
}

// Experiments returns all experiments sorted by name.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	e, ok := registry[name]
	if !ok {
		return Experiment{}, fmt.Errorf("core: unknown experiment %q (use one of %v)", name, names())
	}
	return e, nil
}

func names() []string {
	var ns []string
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}
