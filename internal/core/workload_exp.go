package core

// The workload library (README "Scenarios"): the four application
// presets — GUPS random table updates, the QCD halo ring, MD
// gather/scatter and STREAM — run through the pattern interpreter on 8
// SPEs, swept over their element-size envelopes. This is the provenance
// run behind the "Workload library" section of EXPERIMENTS.md: the
// conformance claims re-check the same shapes at quick volumes.

import (
	"fmt"

	"cellbe/internal/stats"
)

// Workloads measures the scenario presets of the pattern interpreter.
// Each curve is one preset (GUPS at its 8–128 B gather envelope, the
// others at DMA-stream sizes); volumes are scaled per preset so the
// small-element points stay affordable while still reaching steady
// state.
func Workloads(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "workloads",
		Title:  "Workload presets on the pattern interpreter (8 SPEs)",
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	seeds := make([]int64, p.Runs)
	for i := range seeds {
		seeds[i] = p.FirstSeed + int64(i)
	}
	variants := []struct {
		label  string
		spec   SweepSpec
		volume int64
	}{
		{"gups both", SweepSpec{Scenario: "gups", SPEs: 8, Op: "both", Chunks: []int{8, 16, 32, 64, 128}}, p.BytesPerSPE / 16},
		{"qcd halo", SweepSpec{Scenario: "qcd", SPEs: 8, Chunks: []int{1024, 4096, 16384}}, p.BytesPerSPE / 2},
		{"md pairs", SweepSpec{Scenario: "md", SPEs: 8, Chunks: []int{512, 4096}}, p.BytesPerSPE / 2},
		{"stream copy", SweepSpec{Scenario: "stream", SPEs: 8, Op: "copy", Chunks: []int{16384}}, p.BytesPerSPE / 2},
		{"stream scale", SweepSpec{Scenario: "stream", SPEs: 8, Op: "scale", Chunks: []int{16384}}, p.BytesPerSPE / 2},
		{"stream add", SweepSpec{Scenario: "stream", SPEs: 8, Op: "add", Chunks: []int{16384}}, p.BytesPerSPE / 2},
		{"stream triad", SweepSpec{Scenario: "stream", SPEs: 8, Op: "triad", Chunks: []int{4096, 16384}}, p.BytesPerSPE / 2},
	}
	for _, v := range variants {
		spec := v.spec
		spec.Seeds = seeds
		spec.Volume = v.volume
		spec.Base = p.Base
		results, err := RunSweep(spec)
		if err != nil {
			return nil, err
		}
		series := stats.NewSeries(v.label, spec.Chunks)
		for _, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("core: workloads point %s chunk=%d seed=%d: %w", v.label, r.Chunk, r.Seed, r.Err)
			}
			series.Add(r.Chunk, r.GBps)
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}
