package core

import (
	"cellbe/internal/cell"
	"cellbe/internal/fault"
	"cellbe/internal/stats"
)

// FaultRatesBp is the injected fault probability sweep of the fault-sweep
// experiment, in basis points (1 bp = 0.01%). The range spans "healthy"
// through "one fault every ~20 commands", which is where the canonical
// scenarios visibly degrade without wedging.
var FaultRatesBp = []int{0, 10, 50, 100, 250, 500}

// faultScenarios are the four canonical workloads the degradation curves
// are measured on (the same set the acceptance run drives).
var faultScenarios = []cell.Scenario{
	{Kind: "pair", SPEs: 2, Chunk: 4096, Op: "get"},
	{Kind: "couples", SPEs: 8, Chunk: 4096, Op: "get"},
	{Kind: "cycle", SPEs: 8, Chunk: 4096, Op: "get"},
	{Kind: "mem", SPEs: 8, Chunk: 4096, Op: "get"},
}

// faultConfigAt scales the combined fault mix to a single probability knob:
// every fault class fires with the same per-decision rate, so the x axis
// reads "probability that any given decision point misbehaves".
func faultConfigAt(bp int) fault.Config {
	rate := float64(bp) / 10000
	return fault.Config{
		MFCRetryRate:  rate,
		XDRStallRate:  rate,
		EIBSlowRate:   rate,
		EIBOutageRate: rate,
		DoneDelayRate: rate,
	}
}

// FaultSweep measures aggregate bandwidth of the four canonical scenarios
// as the injected fault rate rises: graceful degradation made visible. At
// rate 0 the curves reproduce the healthy figures; every faulty point runs
// under the watchdog and the conservation check, so a fault model that
// loses bytes or wedges a kernel fails the experiment instead of printing
// a quietly wrong curve.
func FaultSweep(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fault-sweep",
		Title:  "Extension: bandwidth under injected faults (MFC retry, XDR stall, EIB slow/outage, late completion)",
		XLabel: "fault rate (basis points)",
		YLabel: "GB/s",
	}
	for _, sc := range faultScenarios {
		sc := sc
		series := stats.NewSeries(sc.Kind, FaultRatesBp)
		for _, bp := range FaultRatesBp {
			bp := bp
			addRuns(p, series, bp, func(run int) float64 {
				return runFaultPoint(p, run, sc, bp)
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

// runFaultPoint runs one scenario under one fault rate and returns the
// aggregate GB/s. The fault stream is seeded from the layout seed, so run r
// sweeps fault patterns alongside layouts and the whole experiment stays
// byte-reproducible.
func runFaultPoint(p Params, run int, sc cell.Scenario, bp int) float64 {
	cfg := p.config()
	cfg.Layout = cell.RandomLayout(p.FirstSeed + int64(run))
	cfg.Faults = faultConfigAt(bp)
	cfg.FaultSeed = p.FirstSeed + int64(run)
	sys := cell.New(cfg)
	sc.Volume = p.BytesPerSPE
	total, err := sc.Install(sys)
	if err != nil {
		panic(err)
	}
	if err := sys.RunChecked(0); err != nil {
		panic(err)
	}
	return sys.GBps(total, sys.Eng.Now())
}
