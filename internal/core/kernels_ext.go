package core

// Extensions beyond the paper's evaluation, implementing the future work
// its §5 announces: "evaluate small kernels (scalar product, matrix by
// vector, matrix product, streaming benchmarks...)". The kernels do real
// single-precision arithmetic on data streamed through the local stores,
// with SPU compute charged at the architectural 8 flops/cycle (4-lane
// SIMD fused multiply-add), so the GFLOPS curves show exactly where the
// bandwidth findings of the paper start to bound computation.

import (
	"encoding/binary"
	"fmt"
	"math"

	"cellbe/internal/cell"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
	"cellbe/internal/stats"
)

// simdFlopsPerCycle is the SPU peak: 4 single-precision lanes x FMA.
const simdFlopsPerCycle = 8

// f32 reads a float32 from the local store.
func f32(ls []byte, off int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(ls[off : off+4]))
}

// putf32 writes a float32 to a byte slice.
func putf32(b []byte, off int, v float32) {
	binary.LittleEndian.PutUint32(b[off:off+4], math.Float32bits(v))
}

// Kernel identifies one of the extension compute kernels.
type Kernel int

// The §5 kernel suite.
const (
	KernelDot Kernel = iota
	KernelMatVec
	KernelMatMul
)

func (k Kernel) String() string {
	switch k {
	case KernelDot:
		return "dot"
	case KernelMatVec:
		return "matvec"
	case KernelMatMul:
		return "matmul"
	}
	return "?"
}

// ComputeKernels measures achieved GFLOPS for the three kernels on 1 to 8
// SPEs. Dot product (1/4 flop per byte) and matrix-vector (1/2 flop per
// byte) are bandwidth-bound and flatten exactly where Figure 8 says SPE
// memory bandwidth saturates; blocked matrix multiply (flops grow with the
// tile edge) scales to all 8 SPEs.
func ComputeKernels(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "kernels",
		Title:  "Extension (§5 future work): streamed compute kernels, GFLOPS by SPE count",
		XLabel: "SPEs",
		YLabel: "GFLOPS",
	}
	for _, k := range []Kernel{KernelDot, KernelMatVec, KernelMatMul} {
		series := stats.NewSeries(k.String(), SPECounts)
		for _, n := range SPECounts {
			k, n := k, n
			addRuns(p, series, n, func(run int) float64 {
				return runKernel(p, run, k, n)
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

// runKernel returns aggregate GFLOPS (at the 2.1 GHz clock) for n SPEs.
func runKernel(p Params, run int, k Kernel, n int) float64 {
	sys := p.newSystem(run)
	volume := p.BytesPerSPE
	var lastEnd sim.Time
	var totalFlops int64
	pending := n
	for i := 0; i < n; i++ {
		sp := sys.SPEs[i]
		var base, base2 int64
		switch k {
		case KernelDot:
			base = sys.Alloc(volume, 1<<16)
			base2 = sys.Alloc(volume, 1<<16)
			fillF32(sys, base, int(volume), 1.5)
			fillF32(sys, base2, int(volume), 0.5)
		case KernelMatVec, KernelMatMul:
			base = sys.Alloc(volume, 1<<16)
			fillF32(sys, base, int(volume), 2.0)
		}
		sp.Run(fmt.Sprintf("%v%d", k, i), func(ctx *spe.Context) {
			var flops int64
			switch k {
			case KernelDot:
				flops = dotKernel(ctx, base, base2, volume)
			case KernelMatVec:
				flops = matVecKernel(ctx, base, volume)
			case KernelMatMul:
				flops = matMulKernel(ctx, base, volume)
			}
			totalFlops += flops
			if e := ctx.Decrementer(); e > lastEnd {
				lastEnd = e
			}
			pending--
		})
	}
	// The watchdog turns a wedged kernel into a structured diagnostic
	// (stuck process names, outstanding MFC tags) instead of a bare panic.
	if err := sys.RunChecked(0); err != nil {
		panic(err)
	}
	if pending != 0 {
		panic(fmt.Sprintf("core: %d kernels did not complete yet no process is blocked", pending))
	}
	cfg := sys.Config()
	return float64(totalFlops) * cfg.ClockGHz / float64(lastEnd)
}

// fillF32 writes a repeating float pattern into simulated RAM so the
// kernels crunch real, verifiable data.
func fillF32(sys *cell.System, base int64, bytes int, v float32) {
	buf := make([]byte, bytes)
	for off := 0; off < bytes; off += 4 {
		putf32(buf, off, v+float32(off%64)/64)
	}
	sys.Mem.RAM().Write(base, buf)
}

// dotKernel streams two vectors in 16 KB blocks, double-buffered, and
// accumulates x·y. Returns flops performed (2 per element).
func dotKernel(ctx *spe.Context, xBase, yBase int64, volume int64) int64 {
	const block = 16384
	var acc float32
	ls := ctx.SPE().LS()
	blocks := volume / block
	// Buffers: x at slots 0/1, y at slots 2/3 (16 KB each).
	issue := func(blk int64) {
		b := int(blk % 2)
		ctx.Get(b*block, xBase+blk*block, block, b)
		ctx.Get((2+b)*block, yBase+blk*block, block, 2+b)
	}
	issue(0)
	for blk := int64(0); blk < blocks; blk++ {
		b := int(blk % 2)
		if blk+1 < blocks {
			issue(blk + 1)
		}
		ctx.WaitTagMask(1<<b | 1<<(2+b))
		elems := block / 4
		for e := 0; e < elems; e++ {
			acc += f32(ls, b*block+4*e) * f32(ls, (2+b)*block+4*e)
		}
		// 2 flops/element at 8 flops/cycle.
		ctx.Wait(sim.Time(2 * elems / simdFlopsPerCycle))
	}
	putf32(ls[255*1024:], 0, acc) // park the result in LS
	return 2 * (volume / 4)
}

// matVecKernel computes y = A·x for a resident x and a streamed A
// (row-major, rows of 1024 floats = 4 KB). Returns flops (2 per element
// of A).
func matVecKernel(ctx *spe.Context, aBase int64, volume int64) int64 {
	const rowFloats = 1024
	const rowBytes = rowFloats * 4
	const rowsPerBlock = 4 // 16 KB blocks
	ls := ctx.SPE().LS()
	// x occupies LS[64K, 64K+4K); y accumulates at LS[70K...).
	const xOff = 64 << 10
	const yOff = 72 << 10
	for i := 0; i < rowFloats; i++ {
		putf32(ls, xOff+4*i, 1.0/float32(i+1))
	}
	blocks := volume / (rowsPerBlock * rowBytes)
	issue := func(blk int64) {
		b := int(blk % 2)
		ctx.Get(b*16384, aBase+blk*rowsPerBlock*rowBytes, 16384, b)
	}
	issue(0)
	for blk := int64(0); blk < blocks; blk++ {
		b := int(blk % 2)
		if blk+1 < blocks {
			issue(blk + 1)
		}
		ctx.WaitTag(b)
		for r := 0; r < rowsPerBlock; r++ {
			var acc float32
			rowOff := b*16384 + r*rowBytes
			for c := 0; c < rowFloats; c++ {
				acc += f32(ls, rowOff+4*c) * f32(ls, xOff+4*c)
			}
			putf32(ls, yOff+((int(blk)*rowsPerBlock+r)%1024)*4, acc)
		}
		ctx.Wait(sim.Time(2 * rowsPerBlock * rowFloats / simdFlopsPerCycle))
	}
	return 2 * (volume / 4)
}

// matMulKernel multiplies 64x64 single-precision tiles (16 KB each): for
// each streamed pair of tiles A and B it computes C += A·B in the local
// store. Arithmetic intensity is 64x higher than the dot product, so this
// kernel stays compute-bound and scales with SPE count. Returns flops.
func matMulKernel(ctx *spe.Context, base int64, volume int64) int64 {
	const edge = 64
	const tileBytes = edge * edge * 4 // 16 KB
	ls := ctx.SPE().LS()
	// A at 0/16K (double buffered), B at 32K/48K, C resident at 64K.
	pairs := volume / (2 * tileBytes)
	issue := func(pair int64) {
		b := int(pair % 2)
		ctx.Get(b*tileBytes, base+pair*2*tileBytes, tileBytes, b)
		ctx.Get((2+b)*tileBytes, base+pair*2*tileBytes+tileBytes, tileBytes, 2+b)
	}
	issue(0)
	var flops int64
	for pair := int64(0); pair < pairs; pair++ {
		b := int(pair % 2)
		if pair+1 < pairs {
			issue(pair + 1)
		}
		ctx.WaitTagMask(1<<b | 1<<(2+b))
		aOff, bOff, cOff := b*tileBytes, (2+b)*tileBytes, 64<<10
		for i := 0; i < edge; i++ {
			for j := 0; j < edge; j++ {
				var acc float32
				for kk := 0; kk < edge; kk++ {
					acc += f32(ls, aOff+4*(i*edge+kk)) * f32(ls, bOff+4*(kk*edge+j))
				}
				putf32(ls, cOff+4*(i*edge+j), f32(ls, cOff+4*(i*edge+j))+acc)
			}
		}
		flops += 2 * edge * edge * edge
		ctx.Wait(sim.Time(2 * edge * edge * edge / simdFlopsPerCycle))
	}
	return flops
}

// DMALatency is a second extension (after Kistler et al.): the round-trip
// latency of a single synchronous DMA, by size, for LS-to-LS and
// memory-to-LS transfers. It isolates the latency term that the window
// model divides by.
func DMALatency(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "dma-latency",
		Title:  "Extension: synchronous DMA round-trip latency (cycles)",
		XLabel: "transfer size (bytes)",
		YLabel: "cycles",
	}
	for _, target := range []string{"LS-to-LS", "memory"} {
		target := target
		series := stats.NewSeries(target, ChunkSizes)
		for _, size := range ChunkSizes {
			size := size
			addRuns(p, series, size, func(run int) float64 {
				return float64(latencyOnce(p, run, target == "memory", size))
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

func latencyOnce(p Params, run int, mem bool, size int) sim.Time {
	sys := p.newSystem(run)
	var ea int64
	if mem {
		ea = sys.Alloc(int64(size), 128)
	} else {
		ea = sys.LSEA(1, 0)
	}
	const iters = 50
	var total sim.Time
	sys.SPEs[0].Run("lat", func(ctx *spe.Context) {
		for i := 0; i < iters; i++ {
			start := ctx.Decrementer()
			ctx.Get(0, ea, size, 0)
			ctx.WaitTag(0)
			total += ctx.Decrementer() - start
		}
	})
	sys.Run()
	return total / iters
}
