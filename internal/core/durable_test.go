package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cellbe/internal/journal"
	"cellbe/internal/sim"
)

// failTimes builds a FailPoint hook that injects n consecutive transient
// failures for one grid point (keyed by chunk+seed) and succeeds after.
func failTimes(chunk int, seed int64, n int) func(int, int64, int) error {
	return func(c int, s int64, attempt int) error {
		if c == chunk && s == seed && attempt < n {
			return &TransientError{Err: fmt.Errorf("injected transient #%d", attempt)}
		}
		return nil
	}
}

// TestRetryTransientRecovers: a point failing transiently twice under a
// 3-attempt policy must succeed on the third try, report Attempts=3,
// and show up in the job's Retried counter — with the backoff sleeps
// actually taken.
func TestRetryTransientRecovers(t *testing.T) {
	var slept []time.Duration
	s := NewScheduler(SchedOptions{
		Workers:   2,
		Retry:     RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, Sleep: func(d time.Duration) { slept = append(slept, d) }},
		FailPoint: failTimes(1024, 1, 2),
	})
	defer s.Close()
	j, err := s.Submit(context.Background(), sweepSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	results := drainJob(j)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("point chunk=%d seed=%d failed despite retries: %v", r.Chunk, r.Seed, r.Err)
		}
		want := 1
		if r.Chunk == 1024 && r.Seed == 1 {
			want = 3
		}
		if r.Attempts != want {
			t.Errorf("point chunk=%d seed=%d: attempts = %d, want %d", r.Chunk, r.Seed, r.Attempts, want)
		}
	}
	if st := j.Status(); st.Retried != 2 || st.Poisoned != 0 || st.Failed != 0 {
		t.Fatalf("status %+v, want retried=2 poisoned=0 failed=0", st)
	}
	if len(slept) != 2 {
		t.Fatalf("took %d backoff sleeps, want 2", len(slept))
	}
}

// TestPoisonQuarantine: a point that fails transiently through every
// allowed attempt is quarantined as a typed PoisonError after exactly
// MaxAttempts attempts — the circuit breaker against burning workers.
func TestPoisonQuarantine(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	s := NewScheduler(SchedOptions{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, Sleep: func(time.Duration) {}},
		FailPoint: func(c int, sd int64, attempt int) error {
			if c == 1024 && sd == 0 {
				mu.Lock()
				attempts++
				mu.Unlock()
				return &TransientError{Err: errors.New("always broken")}
			}
			return nil
		},
	})
	defer s.Close()
	j, err := s.Submit(context.Background(), sweepSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	var poisoned *PointResult
	for _, r := range drainJob(j) {
		if r.Chunk == 1024 && r.Seed == 0 {
			r := r
			poisoned = &r
		} else if r.Err != nil {
			t.Fatalf("healthy point chunk=%d seed=%d failed: %v", r.Chunk, r.Seed, r.Err)
		}
	}
	if poisoned == nil || poisoned.Err == nil {
		t.Fatal("poisoned point did not fail")
	}
	var pe *PoisonError
	if !errors.As(poisoned.Err, &pe) {
		t.Fatalf("quarantined point's error is %T, want *PoisonError", poisoned.Err)
	}
	if pe.Attempts != 3 || poisoned.Attempts != 3 {
		t.Fatalf("poison after %d attempts (result says %d), want 3", pe.Attempts, poisoned.Attempts)
	}
	if attempts != 3 {
		t.Fatalf("worker burned %d attempts, want exactly MaxAttempts=3", attempts)
	}
	if code := FailureCode(poisoned.Err); code != "poisoned" {
		t.Fatalf("FailureCode = %q, want poisoned", code)
	}
	if st := j.Status(); st.Poisoned != 1 || st.Failed != 1 {
		t.Fatalf("status %+v, want poisoned=1 failed=1", st)
	}
}

// TestPermanentFailureNoRetry: a non-transient failure must not retry
// and must not be quarantined — it keeps the historical fail-fast path.
func TestPermanentFailureNoRetry(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	s := NewScheduler(SchedOptions{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}},
		FailPoint: func(c int, sd int64, attempt int) error {
			if c == 1024 && sd == 0 {
				mu.Lock()
				calls++
				mu.Unlock()
				return errors.New("permanently broken")
			}
			return nil
		},
	})
	defer s.Close()
	j, err := s.Submit(context.Background(), sweepSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range drainJob(j) {
		if r.Chunk == 1024 && r.Seed == 0 {
			var pe *PoisonError
			if errors.As(r.Err, &pe) {
				t.Fatal("permanent failure was quarantined as poison")
			}
			if r.Attempts != 1 {
				t.Fatalf("permanent failure took %d attempts, want 1", r.Attempts)
			}
		}
	}
	if calls != 1 {
		t.Fatalf("permanent failure attempted %d times, want 1", calls)
	}
}

// TestTransientClassification pins the retry classifier: injected
// TransientErrors always retry, watchdog deadlocks retry only under a
// fault profile, panics and plain errors never do.
func TestTransientClassification(t *testing.T) {
	dl := &sim.DeadlockError{}
	cases := []struct {
		err    error
		faulty bool
		want   bool
	}{
		{&TransientError{Err: errors.New("x")}, false, true},
		{dl, true, true},
		{dl, false, false},
		{fmt.Errorf("wrapped: %w", dl), true, true},
		{&sim.ProcessPanic{}, true, false},
		{errors.New("plain"), true, false},
	}
	for i, c := range cases {
		if got := transientFailure(c.err, c.faulty); got != c.want {
			t.Errorf("case %d (%v, faulty=%v): transient = %v, want %v", i, c.err, c.faulty, got, c.want)
		}
	}
}

// TestBackoffDeterministicJitter: backoff grows exponentially, stays in
// [d/2, d), clamps at MaxBackoff, and is bit-identical across calls —
// reruns of a sweep must back off identically.
func TestBackoffDeterministicJitter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	prevFloor := time.Duration(0)
	for attempt := 1; attempt <= 4; attempt++ {
		d := p.backoff(4096, 7, attempt)
		if d2 := p.backoff(4096, 7, attempt); d2 != d {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d, d2)
		}
		exp := 10 * time.Millisecond << (attempt - 1)
		if exp > p.MaxBackoff {
			exp = p.MaxBackoff
		}
		if d < exp/2 || d >= exp {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, exp/2, exp)
		}
		if exp/2 < prevFloor {
			t.Fatalf("attempt %d: backoff floor shrank", attempt)
		}
		prevFloor = exp / 2
	}
	if a, b := p.backoff(4096, 7, 1), p.backoff(4096, 8, 1); a == b {
		t.Fatal("different points share identical jitter — jitter is not keyed on the point")
	}
}

// TestRetryFaultSeedRerolls: attempt 0 keeps the stream, retries re-roll
// it deterministically and never emit the 0 sentinel.
func TestRetryFaultSeedRerolls(t *testing.T) {
	if got := retryFaultSeed(42, 0); got != 42 {
		t.Fatalf("attempt 0 changed the fault seed: %d", got)
	}
	s1, s2 := retryFaultSeed(42, 1), retryFaultSeed(42, 2)
	if s1 == 42 || s2 == 42 || s1 == s2 {
		t.Fatalf("retries did not re-roll distinctly: %d, %d", s1, s2)
	}
	if retryFaultSeed(42, 1) != s1 {
		t.Fatal("re-roll not deterministic")
	}
}

// TestMarshalSpecRoundTrip: journaled specs round-trip exactly (modulo
// the unserializable Instrument hook, which journaled jobs never carry).
func TestMarshalSpecRoundTrip(t *testing.T) {
	spec := sweepSpec(4)
	raw, err := MarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := MarshalSpec(back)
	if string(a) != string(raw) {
		t.Fatalf("spec did not round-trip:\n%s\n%s", raw, a)
	}
	if _, err := UnmarshalSpec([]byte(`{`)); err == nil {
		t.Fatal("corrupt spec decoded")
	}
}

// TestSchedulerJournalAndResume is the core durability contract: a
// scheduler crash mid-sweep loses nothing that was journaled — on
// restart the journaled points replay into the memo cache, the
// incomplete job resubmits, only the missing points simulate (proven by
// CacheStats.Simulations), and the final results are identical to an
// uninterrupted run.
func TestSchedulerJournalAndResume(t *testing.T) {
	dir := t.TempDir()
	spec := sweepSpec(1) // 6 points
	total := len(spec.Chunks) * len(spec.Seeds)
	const crashAfter = 2

	ref, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Process 1: run crashAfter points, then "crash" — the journal drops
	// its unsynced tail and the scheduler is torn down without a done
	// record.
	jr1, st, err := journal.Open(dir, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 0 {
		t.Fatalf("fresh journal has jobs: %+v", st.Jobs)
	}
	started := 0
	crashNow := make(chan struct{})
	crashed := make(chan struct{})
	s1 := NewScheduler(SchedOptions{
		Workers:     1,
		CachePoints: 64,
		Journal:     jr1,
		BeforePoint: func(int, int64) {
			started++
			if started == crashAfter+1 {
				close(crashNow)
				<-crashed // hold the worker until the crash landed
			}
		},
	})
	job1, err := s1.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	<-crashNow
	jr1.Crash()   // lose the process: unsynced records are gone
	job1.Cancel() // the dying process's jobs stop feeding
	close(crashed)
	s1.Close()
	for range job1.Results() {
	}
	if sims := s1.CacheStats().Simulations; sims != crashAfter {
		t.Fatalf("process 1 simulated %d points before the crash, want %d", sims, crashAfter)
	}

	// Process 2: replay, warm, resume. Only the missing points simulate.
	jr2, st2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if n := len(st2.Incomplete()); n != 1 {
		t.Fatalf("journal replayed %d incomplete jobs, want 1", n)
	}
	if len(st2.Points) != crashAfter {
		t.Fatalf("journal replayed %d points, want %d", len(st2.Points), crashAfter)
	}
	s2 := NewScheduler(SchedOptions{Workers: 2, CachePoints: 64, Journal: jr2})
	defer s2.Close()
	rs := s2.Resume(context.Background(), st2)
	if rs.WarmedPoints != crashAfter || rs.SkippedJobs != 0 || len(rs.Jobs) != 1 {
		t.Fatalf("resume stats %+v, want %d warmed / 1 job", rs, crashAfter)
	}
	job2 := rs.Jobs[0]
	if st := job2.Status(); !st.Resumed || st.JournalID == "" {
		t.Fatalf("resumed job status %+v, want Resumed with a JournalID", st)
	}
	got := drainJob(job2)
	if len(got) != total {
		t.Fatalf("resumed job delivered %d points, want %d (no lost points)", len(got), total)
	}
	if sims := s2.CacheStats().Simulations; sims != int64(total-crashAfter) {
		t.Fatalf("resume re-simulated %d points, want exactly the %d missing ones",
			sims, total-crashAfter)
	}
	cachedSeen := 0
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("resumed point chunk=%d seed=%d failed: %v", r.Chunk, r.Seed, r.Err)
		}
		if r.Cached {
			cachedSeen++
		}
		if r.Chunk != ref[i].Chunk || r.Seed != ref[i].Seed || r.Cycles != ref[i].Cycles ||
			r.GBps != ref[i].GBps || r.Transfers != ref[i].Transfers {
			t.Errorf("resumed point %d diverged from uninterrupted run: %+v vs %+v",
				i, r.SweepResult, ref[i])
		}
	}
	if cachedSeen != crashAfter {
		t.Fatalf("%d points served from the warm cache, want %d", cachedSeen, crashAfter)
	}

	// The resumed job finished, so a third boot has nothing to resume.
	jr2.Close()
	jr3, st3, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr3.Close()
	if n := len(st3.Incomplete()); n != 0 {
		t.Fatalf("after the resumed job finished, %d jobs still incomplete", n)
	}
	if len(st3.Points) != total {
		t.Fatalf("final journal holds %d warm points, want %d", len(st3.Points), total)
	}
}

// TestWarmCacheRejectsBadRecords: failures and malformed keys never
// enter the cache.
func TestWarmCacheRejectsBadRecords(t *testing.T) {
	s := NewScheduler(SchedOptions{Workers: 1, CachePoints: 8})
	defer s.Close()
	ok := journal.PointRecord{Chunk: 1024, Seed: 0, Cycles: 10}
	bad := ok
	bad.Error = "deadlock"
	key := "aa" // too short
	if s.WarmCache(key, ok) {
		t.Fatal("short key warmed the cache")
	}
	longKey := ""
	for i := 0; i < 32; i++ {
		longKey += "ab"
	}
	if s.WarmCache(longKey, bad) {
		t.Fatal("failed record warmed the cache")
	}
	if !s.WarmCache(longKey, ok) {
		t.Fatal("valid record rejected")
	}
	if st := s.CacheStats(); st.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.Entries)
	}
}
