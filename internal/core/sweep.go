package core

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"

	"cellbe/internal/cell"
	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
)

// SweepSpec describes a grid sweep of one DMA scenario over layout seeds
// and chunk sizes. Each grid point is an independent simulation (its own
// cell.System and event engine — the engine is single-threaded by design,
// so parallelism is across runs, never within one), which makes the sweep
// embarrassingly parallel and the results independent of worker count.
type SweepSpec struct {
	// Scenario is the workload kind: the canonical pair, couples, cycle
	// or mem, or a workload-library kind (gups, qcd, md, stream,
	// pattern).
	Scenario string
	// SPEs is the SPE count handed to the scenario.
	SPEs int
	// Op is the scenario operation: get, put or copy for mem; get, put
	// or both for gups; copy, scale, add or triad for stream. Ignored
	// for the SPE-to-SPE scenarios. Empty picks the kind's default
	// (cell.Scenario.WithDefaultOp).
	Op string
	// List runs the DMA-list variant of the scenario kernels (GETL/PUTL
	// lists of Chunk-sized elements) instead of DMA-elem commands.
	List bool
	// Ring is the qcd preset's halo-exchange neighbour distance (0
	// means nearest neighbour).
	Ring int `json:",omitempty"`
	// AddrSeeds pins the per-SPE address-stream seeds of seeded-random
	// workloads (one per SPE); nil derives fixed lane seeds.
	AddrSeeds []int64 `json:",omitempty"`
	// Pattern is the explicit phase program swept by the "pattern"
	// scenario kind.
	Pattern *cell.Pattern `json:",omitempty"`
	// Chunks are the DMA element sizes to sweep.
	Chunks []int
	// Seeds are the layout seeds to sweep (seed 0 is the identity
	// layout).
	Seeds []int64
	// Volume is the bytes per active SPE at every grid point.
	Volume int64
	// Workers caps the number of concurrent simulations; <= 0 uses
	// GOMAXPROCS.
	Workers int
	// Base overrides the machine configuration; nil means
	// cell.DefaultConfig. The scheduler snapshots it (cell.Config.Clone)
	// when the sweep is submitted, so the caller may keep mutating the
	// pointed-to Config afterwards without racing the workers. Fault
	// injection sweeps set Base.Faults; the per-point fault seed derives
	// from the layout seed via DeriveFaultSeed unless Base.FaultSeed is
	// set.
	Base *cell.Config
	// MaxCycles is the watchdog budget per grid point (0 = unlimited).
	MaxCycles sim.Time
	// Instrument, when set, runs against each grid point's freshly built
	// System before the scenario installs — the hook cellbench uses to
	// attach a tracer or metrics sampler to one chosen point. It executes
	// on a worker goroutine: an Instrument that touches shared state must
	// target a single (chunk, seed) point, or synchronize.
	//
	// The return value is the retention contract: return true to keep the
	// System alive past the point's lifetime (tracers and samplers read it
	// after the sweep joins) — its pooled buffers are then never recycled.
	// Return false and the scheduler releases the System exactly as it
	// does for uninstrumented points, so instrumenting one grid point does
	// not leak the local-store buffers of every other point in the grid.
	// Jobs with an Instrument hook bypass the result cache: a memoized
	// point would skip the simulation the hook exists to observe.
	// Instrumented jobs are also never journaled — a hook is process
	// state that cannot be re-attached from a file on resume.
	Instrument func(chunk int, seed int64, sys *cell.System) bool `json:"-"`
}

// MarshalSpec canonicalizes a spec for the write-ahead journal. The
// Instrument hook is excluded (and journaling is skipped for
// instrumented jobs); every other field — the snapshotted Base config
// included — round-trips, so a restart resubmits exactly the sweep the
// crash interrupted.
func MarshalSpec(spec SweepSpec) ([]byte, error) {
	return json.Marshal(spec)
}

// UnmarshalSpec is the inverse of MarshalSpec, for resume-on-restart.
func UnmarshalSpec(b []byte) (SweepSpec, error) {
	var spec SweepSpec
	if err := json.Unmarshal(b, &spec); err != nil {
		return SweepSpec{}, fmt.Errorf("core: decoding journaled spec: %w", err)
	}
	return spec, nil
}

// SweepResult is the outcome of one (chunk, seed) grid point.
type SweepResult struct {
	Chunk      int
	Seed       int64
	Cycles     sim.Time
	GBps       float64
	Transfers  int64
	WaitCycles sim.Time
	Commands   int64
	// FaultSeed is the injector seed this point actually ran with: the
	// explicit Base.FaultSeed, or the seed DeriveFaultSeed derived from
	// the layout seed (re-rolled deterministically on retries). Zero when
	// fault injection is off.
	FaultSeed int64
	// Attempts is how many times the point simulated before this result
	// (1 = first try; >1 means the retry policy re-ran a transient
	// failure). Zero only on skipped/unset results.
	Attempts int
	// Perf is the point's perf-counter rollup. Counters are cheap enough
	// (plain uint64 increments, never allocating, never touching event
	// timing) that every simulated point carries one; it rides the memo
	// cache and the journal with the rest of the result. Nil on failed
	// points and on results journaled before the counter subsystem.
	Perf *perfctr.Rollup
	// Err records why this grid point failed (deadlock diagnostic,
	// recovered panic, ...); the rest of the sweep still runs. Numeric
	// fields are zero when Err is set.
	Err error
	// Log carries this point's diagnostic lines — the full multi-line
	// deadlock/panic detail that does not fit a one-row CSV cell, and the
	// resolved SPE layout for failed points. Workers never print: all
	// reporting flows through the result so output is serialized and
	// deterministic regardless of worker count.
	Log []string
}

// identityFaultSeed is the derived fault seed of layout seed 0. Any fixed
// non-zero value works; it only has to be distinguishable from the
// FaultSeed == 0 "derive me" sentinel and implausible as a user-swept
// layout seed.
const identityFaultSeed int64 = 0x5eed_fa17_0001

// DeriveFaultSeed maps a grid point's layout seed to the fault-injector
// seed used when the sweep's config leaves FaultSeed at 0 ("derive from
// the layout seed"). Non-zero layout seeds pass through unchanged, so the
// fault stream sweeps alongside the layouts; layout seed 0 (the identity
// layout) maps to a fixed non-zero constant instead, because FaultSeed 0
// is the "unset" sentinel — passing it through would leave the seed-0
// point's config claiming "derive me" while actually pinning stream 0,
// and -fault-seed 0 on the CLIs could never reproduce it explicitly.
func DeriveFaultSeed(layoutSeed int64) int64 {
	if layoutSeed != 0 {
		return layoutSeed
	}
	return identityFaultSeed
}

// validate rejects impossible grids before any goroutine spawns.
func (s SweepSpec) validate() error {
	if len(s.Chunks) == 0 {
		return fmt.Errorf("core: sweep needs at least one chunk size")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("core: sweep needs at least one seed")
	}
	for _, c := range s.Chunks {
		sc := s.scenario(c)
		if err := sc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// faultsEnabled reports whether the sweep's (possibly nil) base config
// turns on fault injection — the condition under which a watchdog
// deadlock is considered transient and worth retrying.
func (s *SweepSpec) faultsEnabled() bool {
	return s.Base != nil && s.Base.Faults.Enabled()
}

func (s SweepSpec) scenario(chunk int) cell.Scenario {
	sc := cell.Scenario{
		Kind: s.Scenario, SPEs: s.SPEs, Chunk: chunk, Volume: s.Volume,
		Op: s.Op, List: s.List, Ring: s.Ring, AddrSeeds: s.AddrSeeds, Pattern: s.Pattern,
	}
	return sc.WithDefaultOp()
}

// pointConfig resolves the machine configuration one grid point runs on:
// the snapshotted base (or the default), with the point's layout and — for
// faulty sweeps that left FaultSeed unset — the derived fault seed. The
// base is cloned per point so concurrent workers never share the Layout
// slice (or any future reference field) through the spec.
func pointConfig(spec *SweepSpec, seed int64) cell.Config {
	cfg := cell.DefaultConfig()
	if spec.Base != nil {
		cfg = spec.Base.Clone()
	}
	cfg.Layout = cell.RandomLayout(seed)
	if cfg.Faults.Enabled() && cfg.FaultSeed == 0 {
		// Tie the fault stream to the grid point so seeds sweep fault
		// patterns alongside layouts, deterministically.
		cfg.FaultSeed = DeriveFaultSeed(seed)
	}
	return cfg
}

// runPoint simulates one grid point; attempt is 0 for the first try and
// counts up on retries, where it deterministically re-rolls the fault
// stream (see retryFaultSeed). When snap is non-nil the point is forked
// from the job's warm ancestor — stamped onto a recycled arena carcass
// with the point's own layout, fault seed and chunk — and the carcass is
// retired back to the arena afterwards; results are bit-identical to the
// cold path (pinned by the clone-vs-cold differential tests). Any
// failure — an install error, a watchdog deadlock, or a panic anywhere
// inside the simulation — is contained to this point's Err so one bad
// point cannot kill the sweep (or, worse, a worker goroutine and with it
// the whole process).
func runPoint(spec *SweepSpec, snap *cell.Snapshot, chunk int, seed int64, attempt int) (res SweepResult) {
	res = SweepResult{Chunk: chunk, Seed: seed}
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok {
				res.Err = fmt.Errorf("core: grid point chunk=%d seed=%d panicked: %w", chunk, seed, err)
			} else {
				res.Err = fmt.Errorf("core: grid point chunk=%d seed=%d panicked: %v", chunk, seed, r)
			}
			res.Log = append(res.Log, res.Err.Error())
		}
	}()
	cfg := pointConfig(spec, seed)
	if cfg.Faults.Enabled() {
		cfg.FaultSeed = retryFaultSeed(cfg.FaultSeed, attempt)
		res.FaultSeed = cfg.FaultSeed
	}
	var sys *cell.System
	var total int64
	if snap != nil {
		var err error
		sys, total, err = snap.CloneFor(cfg, chunk)
		if err != nil {
			res.Err = err
			res.Log = append(res.Log, err.Error())
			return res
		}
		// Teardown is a pointer-reset, not a garbage collection: the
		// carcass goes back to the arena for the next point to stamp.
		// init fully re-stamps it, so retiring after a deadlock or panic
		// is safe. Counters on by default, as on the cold path.
		defer snap.Retire(sys)
		sys.SetPerf(&perfctr.Counters{})
	} else {
		sys = cell.New(cfg)
		// Counters on by default for every point: the always-on
		// observability tier. The Instrument hook runs after, so it may
		// replace or extend the block — the harvest below reads whatever
		// the system ended up with via sys.Perf().
		sys.SetPerf(&perfctr.Counters{})
		retained := false
		if spec.Instrument != nil {
			retained = spec.Instrument(chunk, seed, sys)
		}
		if !retained {
			// The system dies with this point, so recycle its buffers. An
			// Instrument hook opts out per point by returning true: it kept
			// the system (tracers, samplers) past the point's lifetime.
			defer sys.Release()
		}
		var err error
		total, err = spec.scenario(chunk).Install(sys)
		if err != nil {
			res.Err = err
			res.Log = append(res.Log, err.Error())
			return res
		}
	}
	if err := sys.RunChecked(spec.MaxCycles); err != nil {
		res.Err = err
		res.Log = append(res.Log,
			fmt.Sprintf("layout %v", sys.Layout()), err.Error())
		return res
	}
	st := sys.Bus.Stats()
	res.Cycles = sys.Eng.Now()
	res.GBps = sys.GBps(total, sys.Eng.Now())
	res.Transfers = st.Transfers
	res.WaitCycles = st.WaitCycles
	res.Commands = st.Commands
	if pc := sys.Perf(); pc != nil {
		ru := pc.Rollup()
		// The time-weighted queue-occupancy view lives on each MFC (it is
		// accumulated at occupancy transitions, not enqueue samples); fold
		// it in here so it rides the rollup to /metrics with the rest.
		for i := range sys.SPEs {
			ru.AddOccupancy(i, sys.SPEs[i].MFC().OccupancyHist())
		}
		res.Perf = &ru
	}
	return res
}

// RunSweep executes every (chunk, seed) grid point of spec, fanning the
// independent simulations across worker goroutines, and returns results
// sorted by (chunk, seed). The result of each point is bit-identical
// regardless of Workers: each simulation owns its engine, and workers
// only write disjoint slice slots.
//
// RunSweep is the one-shot facade over the job scheduler: it builds a
// private Scheduler (no result cache — a one-shot sweep never resubmits a
// point), submits the spec as a single job and drains it. Long-running
// callers (cellserve) construct a shared Scheduler instead and get
// memoization, admission control and cancellation on top of the same
// worker pool.
func RunSweep(spec SweepSpec) ([]SweepResult, error) {
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := len(spec.Chunks) * len(spec.Seeds); n > 0 && workers > n {
		workers = n
	}
	s := NewScheduler(SchedOptions{Workers: workers, MaxJobs: 1})
	defer s.Close()
	job, err := s.Submit(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	out := make([]SweepResult, 0, job.Total())
	for pr := range job.Results() {
		out = append(out, pr.SweepResult)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Chunk != out[j].Chunk {
			return out[i].Chunk < out[j].Chunk
		}
		return out[i].Seed < out[j].Seed
	})
	return out, nil
}
