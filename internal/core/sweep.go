package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"cellbe/internal/cell"
	"cellbe/internal/sim"
)

// SweepSpec describes a grid sweep of one DMA scenario over layout seeds
// and chunk sizes. Each grid point is an independent simulation (its own
// cell.System and event engine — the engine is single-threaded by design,
// so parallelism is across runs, never within one), which makes the sweep
// embarrassingly parallel and the results independent of worker count.
type SweepSpec struct {
	// Scenario is the workload kind: pair, couples, cycle or mem.
	Scenario string
	// SPEs is the SPE count handed to the scenario.
	SPEs int
	// Op is the mem-scenario operation (get, put or copy); ignored for
	// the SPE-to-SPE scenarios. Empty defaults to get.
	Op string
	// List runs the DMA-list variant of the scenario kernels (GETL/PUTL
	// lists of Chunk-sized elements) instead of DMA-elem commands.
	List bool
	// Chunks are the DMA element sizes to sweep.
	Chunks []int
	// Seeds are the layout seeds to sweep (seed 0 is the identity
	// layout).
	Seeds []int64
	// Volume is the bytes per active SPE at every grid point.
	Volume int64
	// Workers caps the number of concurrent simulations; <= 0 uses
	// GOMAXPROCS.
	Workers int
	// Base overrides the machine configuration; nil means
	// cell.DefaultConfig. Fault injection sweeps set Base.Faults (the
	// per-point layout seed also seeds the injector unless Base.FaultSeed
	// is set).
	Base *cell.Config
	// MaxCycles is the watchdog budget per grid point (0 = unlimited).
	MaxCycles sim.Time
	// Instrument, when set, runs against each grid point's freshly built
	// System before the scenario installs — the hook cellbench uses to
	// attach a tracer or metrics sampler to one chosen point. It executes
	// on a worker goroutine: an Instrument that touches shared state must
	// target a single (chunk, seed) point, or synchronize.
	Instrument func(chunk int, seed int64, sys *cell.System)
}

// SweepResult is the outcome of one (chunk, seed) grid point.
type SweepResult struct {
	Chunk      int
	Seed       int64
	Cycles     sim.Time
	GBps       float64
	Transfers  int64
	WaitCycles sim.Time
	Commands   int64
	// Err records why this grid point failed (deadlock diagnostic,
	// recovered panic, ...); the rest of the sweep still runs. Numeric
	// fields are zero when Err is set.
	Err error
	// Log carries this point's diagnostic lines — the full multi-line
	// deadlock/panic detail that does not fit a one-row CSV cell, and the
	// resolved SPE layout for failed points. Workers never print: all
	// reporting flows through the result so output is serialized and
	// deterministic regardless of worker count.
	Log []string
}

// validate rejects impossible grids before any goroutine spawns.
func (s SweepSpec) validate() error {
	if len(s.Chunks) == 0 {
		return fmt.Errorf("core: sweep needs at least one chunk size")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("core: sweep needs at least one seed")
	}
	for _, c := range s.Chunks {
		sc := s.scenario(c)
		if err := sc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (s SweepSpec) scenario(chunk int) cell.Scenario {
	op := s.Op
	if op == "" {
		op = "get"
	}
	return cell.Scenario{Kind: s.Scenario, SPEs: s.SPEs, Chunk: chunk, Volume: s.Volume, Op: op, List: s.List}
}

// RunSweep executes every (chunk, seed) grid point of spec, fanning the
// independent simulations across worker goroutines, and returns results
// sorted by (chunk, seed). The result of each point is bit-identical
// regardless of Workers: each simulation owns its engine, and workers
// only write disjoint slice slots.
func RunSweep(spec SweepSpec) ([]SweepResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	type point struct {
		chunk int
		seed  int64
	}
	var grid []point
	for _, c := range spec.Chunks {
		for _, sd := range spec.Seeds {
			grid = append(grid, point{chunk: c, seed: sd})
		}
	}
	out := make([]SweepResult, len(grid))
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(grid) {
		workers = len(grid)
	}

	// runPoint simulates one grid point. Any failure — an install error, a
	// watchdog deadlock, or a panic anywhere inside the simulation — is
	// contained to this point's Err so one bad point cannot kill the
	// sweep (or, worse, a worker goroutine and with it the whole
	// process).
	runPoint := func(pt point) (res SweepResult) {
		res = SweepResult{Chunk: pt.chunk, Seed: pt.seed}
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok {
					res.Err = fmt.Errorf("core: grid point chunk=%d seed=%d panicked: %w", pt.chunk, pt.seed, err)
				} else {
					res.Err = fmt.Errorf("core: grid point chunk=%d seed=%d panicked: %v", pt.chunk, pt.seed, r)
				}
				res.Log = append(res.Log, res.Err.Error())
			}
		}()
		cfg := cell.DefaultConfig()
		if spec.Base != nil {
			cfg = *spec.Base
		}
		cfg.Layout = cell.RandomLayout(pt.seed)
		if cfg.Faults.Enabled() && cfg.FaultSeed == 0 {
			// Tie the fault stream to the grid point so seeds sweep fault
			// patterns alongside layouts, deterministically.
			cfg.FaultSeed = pt.seed
		}
		sys := cell.New(cfg)
		if spec.Instrument == nil {
			// The system dies with this point, so recycle its buffers.
			// Instrumented points opt out: the hook may retain the system
			// (tracers, samplers) past the point's lifetime.
			defer sys.Release()
		} else {
			spec.Instrument(pt.chunk, pt.seed, sys)
		}
		total, err := spec.scenario(pt.chunk).Install(sys)
		if err != nil {
			res.Err = err
			res.Log = append(res.Log, err.Error())
			return res
		}
		if err := sys.RunChecked(spec.MaxCycles); err != nil {
			res.Err = err
			res.Log = append(res.Log,
				fmt.Sprintf("layout %v", sys.Layout()), err.Error())
			return res
		}
		st := sys.Bus.Stats()
		res.Cycles = sys.Eng.Now()
		res.GBps = sys.GBps(total, sys.Eng.Now())
		res.Transfers = st.Transfers
		res.WaitCycles = st.WaitCycles
		res.Commands = st.Commands
		return res
	}

	if workers <= 1 {
		for i, pt := range grid {
			out[i] = runPoint(pt)
		}
	} else {
		var (
			wg   sync.WaitGroup
			next = make(chan int)
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i] = runPoint(grid[i])
				}
			}()
		}
		for i := range grid {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Chunk != out[j].Chunk {
			return out[i].Chunk < out[j].Chunk
		}
		return out[i].Seed < out[j].Seed
	})
	return out, nil
}
