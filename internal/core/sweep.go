package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"cellbe/internal/cell"
	"cellbe/internal/sim"
)

// SweepSpec describes a grid sweep of one DMA scenario over layout seeds
// and chunk sizes. Each grid point is an independent simulation (its own
// cell.System and event engine — the engine is single-threaded by design,
// so parallelism is across runs, never within one), which makes the sweep
// embarrassingly parallel and the results independent of worker count.
type SweepSpec struct {
	// Scenario is the workload kind: pair, couples, cycle or mem.
	Scenario string
	// SPEs is the SPE count handed to the scenario.
	SPEs int
	// Op is the mem-scenario operation (get, put or copy); ignored for
	// the SPE-to-SPE scenarios. Empty defaults to get.
	Op string
	// Chunks are the DMA element sizes to sweep.
	Chunks []int
	// Seeds are the layout seeds to sweep (seed 0 is the identity
	// layout).
	Seeds []int64
	// Volume is the bytes per active SPE at every grid point.
	Volume int64
	// Workers caps the number of concurrent simulations; <= 0 uses
	// GOMAXPROCS.
	Workers int
	// Base overrides the machine configuration; nil means
	// cell.DefaultConfig.
	Base *cell.Config
}

// SweepResult is the outcome of one (chunk, seed) grid point.
type SweepResult struct {
	Chunk      int
	Seed       int64
	Cycles     sim.Time
	GBps       float64
	Transfers  int64
	WaitCycles sim.Time
	Commands   int64
}

// validate rejects impossible grids before any goroutine spawns.
func (s SweepSpec) validate() error {
	if len(s.Chunks) == 0 {
		return fmt.Errorf("core: sweep needs at least one chunk size")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("core: sweep needs at least one seed")
	}
	for _, c := range s.Chunks {
		sc := s.scenario(c)
		if err := sc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (s SweepSpec) scenario(chunk int) cell.Scenario {
	op := s.Op
	if op == "" {
		op = "get"
	}
	return cell.Scenario{Kind: s.Scenario, SPEs: s.SPEs, Chunk: chunk, Volume: s.Volume, Op: op}
}

// RunSweep executes every (chunk, seed) grid point of spec, fanning the
// independent simulations across worker goroutines, and returns results
// sorted by (chunk, seed). The result of each point is bit-identical
// regardless of Workers: each simulation owns its engine, and workers
// only write disjoint slice slots.
func RunSweep(spec SweepSpec) ([]SweepResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	type point struct {
		chunk int
		seed  int64
	}
	var grid []point
	for _, c := range spec.Chunks {
		for _, sd := range spec.Seeds {
			grid = append(grid, point{chunk: c, seed: sd})
		}
	}
	out := make([]SweepResult, len(grid))
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(grid) {
		workers = len(grid)
	}

	runPoint := func(pt point) (SweepResult, error) {
		cfg := cell.DefaultConfig()
		if spec.Base != nil {
			cfg = *spec.Base
		}
		cfg.Layout = cell.RandomLayout(pt.seed)
		sys := cell.New(cfg)
		total, err := spec.scenario(pt.chunk).Install(sys)
		if err != nil {
			return SweepResult{}, err
		}
		sys.Run()
		st := sys.Bus.Stats()
		return SweepResult{
			Chunk:      pt.chunk,
			Seed:       pt.seed,
			Cycles:     sys.Eng.Now(),
			GBps:       sys.GBps(total, sys.Eng.Now()),
			Transfers:  st.Transfers,
			WaitCycles: st.WaitCycles,
			Commands:   st.Commands,
		}, nil
	}

	if workers <= 1 {
		for i, pt := range grid {
			r, err := runPoint(pt)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
	} else {
		var (
			wg       sync.WaitGroup
			next     = make(chan int)
			errMu    sync.Mutex
			firstErr error
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					r, err := runPoint(grid[i])
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						continue
					}
					out[i] = r
				}
			}()
		}
		for i := range grid {
			next <- i
		}
		close(next)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Chunk != out[j].Chunk {
			return out[i].Chunk < out[j].Chunk
		}
		return out[i].Seed < out[j].Seed
	})
	return out, nil
}
