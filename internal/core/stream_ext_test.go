package core

import (
	"math"
	"testing"

	"cellbe/internal/spe"
)

func TestStreamScaleComputesCorrectly(t *testing.T) {
	p := fastParams()
	sys := p.newSystem(0)
	const slice = 64 << 10
	a := sys.Alloc(slice, 1<<16)
	b := sys.Alloc(slice, 1<<16)
	c := sys.Alloc(slice, 1<<16)
	buf := make([]byte, slice)
	for off := 0; off < slice; off += 4 {
		putf32(buf, off, float32(off/4)+1)
	}
	sys.Mem.RAM().Write(c, buf)
	sys.SPEs[0].Run("scale", func(ctx *spe.Context) {
		streamSliceKernel(ctx, StreamScale, a, b, c, slice)
	})
	sys.Run()
	got := make([]byte, slice)
	sys.Mem.RAM().Read(b, got)
	for off := 0; off < slice; off += 4 {
		want := 3 * (float32(off/4) + 1)
		if gotv := f32(got, off); math.Abs(float64(gotv-want)) > 1e-3 {
			t.Fatalf("b[%d] = %v, want %v", off/4, gotv, want)
		}
	}
}

func TestStreamTriadComputesCorrectly(t *testing.T) {
	p := fastParams()
	sys := p.newSystem(0)
	const slice = 32 << 10
	a := sys.Alloc(slice, 1<<16)
	b := sys.Alloc(slice, 1<<16)
	c := sys.Alloc(slice, 1<<16)
	buf := make([]byte, slice)
	for off := 0; off < slice; off += 4 {
		putf32(buf, off, 2)
	}
	sys.Mem.RAM().Write(b, buf)
	for off := 0; off < slice; off += 4 {
		putf32(buf, off, 5)
	}
	sys.Mem.RAM().Write(c, buf)
	sys.SPEs[0].Run("triad", func(ctx *spe.Context) {
		streamSliceKernel(ctx, StreamTriad, a, b, c, slice)
	})
	sys.Run()
	got := make([]byte, slice)
	sys.Mem.RAM().Read(a, got)
	for off := 0; off < slice; off += 4 {
		if gotv := f32(got, off); gotv != 17 { // 2 + 3*5
			t.Fatalf("a[%d] = %v, want 17", off/4, gotv)
		}
	}
}

func TestSTREAMShape(t *testing.T) {
	p := fastParams()
	p.Runs = 1
	res, err := STREAM(p)
	if err != nil {
		t.Fatal(err)
	}
	// All four kernels present, bandwidth-bound saturation beyond 4 SPEs
	// (the Figure 8 ceiling).
	for _, k := range []string{"copy", "scale", "add", "triad"} {
		one, ok := res.At(k, 1)
		if !ok {
			t.Fatalf("missing %s curve", k)
		}
		if one.Mean < 6 || one.Mean > 14 {
			t.Errorf("%s 1 SPE: %.1f GB/s, want near the single-SPE memory bound", k, one.Mean)
		}
		four, _ := res.At(k, 4)
		eight, _ := res.At(k, 8)
		if eight.Mean > four.Mean*1.25 {
			t.Errorf("%s should saturate: 4 SPEs %.1f, 8 SPEs %.1f", k, four.Mean, eight.Mean)
		}
	}
}
