package core

import (
	"errors"
	"fmt"
	"time"

	"cellbe/internal/sim"
)

// TransientError marks a grid-point failure as retryable. The scheduler's
// own classifier treats fault-injected deadlocks as transient; test and
// chaos hooks wrap their injected failures in TransientError to opt into
// the retry path explicitly.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// PoisonError quarantines a grid point that kept failing transiently
// through every allowed attempt: the circuit breaker that stops a bad
// point from burning workers on endless retries. It wraps the final
// attempt's failure and is surfaced in SweepResult.Err (the HTTP layer
// maps it to code "poisoned").
type PoisonError struct {
	Chunk    int
	Seed     int64
	Attempts int
	Last     error
}

func (e *PoisonError) Error() string {
	return fmt.Sprintf("core: grid point chunk=%d seed=%d quarantined after %d failed attempts: %v",
		e.Chunk, e.Seed, e.Attempts, e.Last)
}

func (e *PoisonError) Unwrap() error { return e.Last }

// RetryPolicy is the scheduler's per-point self-healing knob: transient
// failures retry with exponential backoff and deterministic jitter, and a
// point that exhausts MaxAttempts is quarantined as a PoisonError.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per grid point,
	// including the first; <= 1 disables retries (the zero value keeps
	// the scheduler's historical fail-fast behavior).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; 0 defaults to
	// 10ms. Each further retry doubles it, clamped to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff clamps the backoff; 0 defaults to 1s.
	MaxBackoff time.Duration
	// Sleep replaces the backoff sleep in tests; nil uses time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) enabled() bool { return p.maxAttempts() > 1 }

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoff computes the delay before retry number attempt (1-based) of a
// grid point. The exponential base doubles per attempt; the jitter is
// deterministic — a splitmix64 stream keyed on (chunk, seed, attempt) —
// so a rerun of the same sweep backs off identically, which keeps the
// chaos harness's timing-sensitive schedules reproducible.
func (p RetryPolicy) backoff(chunk int, seed int64, attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Deterministic jitter in [d/2, d): full jitter would allow 0, which
	// defeats the backoff; half-jitter keeps the exponential floor.
	r := splitmix64(uint64(chunk)<<32 ^ uint64(seed) ^ uint64(attempt)*0x9e3779b97f4a7c15)
	frac := float64(r>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// splitmix64 is the standard splitmix64 finalizer — the same generator
// family the fault injector uses, duplicated here to keep the packages
// decoupled.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryFaultSeed derives the fault-injector seed for retry number
// attempt of a point whose first attempt ran faultSeed. Attempt 0 keeps
// the original stream; each retry re-rolls it deterministically — the
// model of a transient fault is that trying again meets different
// weather, and determinism keeps resumed runs byte-identical to
// uninterrupted ones (the retry sequence of a deterministic simulation
// is itself deterministic).
func retryFaultSeed(faultSeed int64, attempt int) int64 {
	if attempt == 0 {
		return faultSeed
	}
	s := int64(splitmix64(uint64(faultSeed) + uint64(attempt)))
	if s == 0 {
		s = 1 // 0 is the "derive me" config sentinel; never emit it
	}
	return s
}

// FailureCode classifies a grid point failure for status reporting and
// the HTTP layer: "poisoned" (quarantined by the retry circuit
// breaker), "deadlock" (watchdog), "panic" (recovered process panic) or
// "failed" (everything else). A PoisonError wrapping a deadlock reports
// "poisoned" — the quarantine is the actionable fact.
func FailureCode(err error) string {
	var pe *PoisonError
	if errors.As(err, &pe) {
		return "poisoned"
	}
	var dl *sim.DeadlockError
	if errors.As(err, &dl) {
		return "deadlock"
	}
	var pp *sim.ProcessPanic
	if errors.As(err, &pp) {
		return "panic"
	}
	return "failed"
}

// transientFailure classifies a point failure for the retry policy:
// injected TransientErrors always retry; a watchdog deadlock retries
// only when fault injection is on (a fault-free deadlock is
// deterministic — retrying it would reproduce the identical wedge).
// Panics, validation errors and everything else are permanent.
func transientFailure(err error, faultsEnabled bool) bool {
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	var dl *sim.DeadlockError
	if errors.As(err, &dl) {
		return faultsEnabled
	}
	return false
}
