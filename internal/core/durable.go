package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"

	"cellbe/internal/journal"
	"cellbe/internal/sim"
)

// resultRecord converts a final point result to its journal form. Errors
// flatten to a string + classification code: a journaled failure is
// never replayed into the cache (resume re-simulates it, reproducing
// the same deterministic failure with its live typed error), so nothing
// is lost by the flattening.
func resultRecord(res SweepResult) journal.PointRecord {
	rec := journal.PointRecord{
		Chunk:      res.Chunk,
		Seed:       res.Seed,
		Cycles:     int64(res.Cycles),
		GBps:       res.GBps,
		Transfers:  res.Transfers,
		WaitCycles: int64(res.WaitCycles),
		Commands:   res.Commands,
		FaultSeed:  res.FaultSeed,
		Attempts:   res.Attempts,
		Perf:       res.Perf,
		Log:        res.Log,
	}
	if res.Err != nil {
		rec.Error = res.Err.Error()
		rec.Code = FailureCode(res.Err)
	}
	return rec
}

// recordResult is the inverse of resultRecord for successful records.
func recordResult(rec journal.PointRecord) SweepResult {
	return SweepResult{
		Chunk:      rec.Chunk,
		Seed:       rec.Seed,
		Cycles:     sim.Time(rec.Cycles),
		GBps:       rec.GBps,
		Transfers:  rec.Transfers,
		WaitCycles: sim.Time(rec.WaitCycles),
		Commands:   rec.Commands,
		FaultSeed:  rec.FaultSeed,
		Attempts:   rec.Attempts,
		Perf:       rec.Perf,
		Log:        rec.Log,
	}
}

// WarmCache replays one journaled point into the memo cache, keyed by
// its hex content address. Only successful records warm the cache (a
// failure must re-simulate to regain its typed error); it reports
// whether the record was inserted. A scheduler without a cache warms
// nothing — resume still works, it just re-simulates.
func (s *Scheduler) WarmCache(keyHex string, rec journal.PointRecord) bool {
	if s.cache == nil || !rec.Ok() {
		return false
	}
	raw, err := hex.DecodeString(keyHex)
	if err != nil || len(raw) != sha256.Size {
		return false
	}
	var key [sha256.Size]byte
	copy(key[:], raw)
	s.cache.put(key, PointResult{SweepResult: recordResult(rec)})
	return true
}

// ResumeStats reports what Resume restored from a journal replay.
type ResumeStats struct {
	// WarmedPoints is how many journaled successes now sit in the memo
	// cache — points a resumed sweep gets for free.
	WarmedPoints int
	// SkippedPoints counts journaled records not warmed: failures
	// (including quarantined points) and undecodable keys. They
	// re-simulate on demand.
	SkippedPoints int
	// Jobs are the resubmitted incomplete jobs, running under their
	// original journal ids with Status().Resumed set. The caller must
	// drain each job's Results channel.
	Jobs []*Job
	// SkippedJobs counts incomplete jobs that could not be resubmitted
	// (spec no longer decodes or validates, or admission rejected it).
	SkippedJobs int
}

// Resume replays a journal state into the scheduler: every journaled
// success warms the content-addressed cache, then each job without a
// "done" record is resubmitted under its original journal id. The
// resumed jobs' completed points hit the warm cache — the
// CacheStats.Simulations counter proves only missing points re-simulate
// — and only the genuinely lost work runs again.
func (s *Scheduler) Resume(ctx context.Context, st *journal.State) ResumeStats {
	var rs ResumeStats
	for key, rec := range st.Points {
		if s.WarmCache(key, rec) {
			rs.WarmedPoints++
		} else {
			rs.SkippedPoints++
		}
	}
	for _, jr := range st.Incomplete() {
		spec, err := UnmarshalSpec(jr.Spec)
		if err != nil {
			rs.SkippedJobs++
			continue
		}
		job, err := s.SubmitWith(ctx, spec, SubmitOptions{Resumed: true, JournalID: jr.ID})
		if err != nil {
			rs.SkippedJobs++
			continue
		}
		rs.Jobs = append(rs.Jobs, job)
	}
	return rs
}
