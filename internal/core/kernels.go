package core

import (
	"fmt"

	"cellbe/internal/cell"
	"cellbe/internal/mfc"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
)

// lsWindow is how much local store a streaming kernel cycles through for
// its DMA buffers (the rest is "program + data" in a real SPU binary).
const lsWindow = 128 << 10

// peerWindow is how much of a partner's local store a pair kernel targets.
const peerWindow = 128 << 10

// DMAOp selects the transfer direction of a memory-streaming kernel.
type DMAOp int

// Memory streaming operations of Figure 8.
const (
	DMAGet DMAOp = iota
	DMAPut
	DMACopy
)

func (o DMAOp) String() string {
	switch o {
	case DMAGet:
		return "GET"
	case DMAPut:
		return "PUT"
	case DMACopy:
		return "GET+PUT"
	}
	return "?"
}

// memStreamKernel issues GET/PUT/copy element commands of size chunk
// covering volume bytes of the region at base, waiting only once at the
// end (the paper's "postpone waiting for DMA transfers" rule). For the
// copy operation each buffer slot chains GETF/PUTF on a per-slot tag so
// the PUT reads the data its GET fetched, while slots pipeline freely.
// It returns the cycles from first issue to full completion.
func memStreamKernel(ctx *spe.Context, op DMAOp, base, dstBase int64, volume int64, chunk int) sim.Time {
	start := ctx.Decrementer()
	slots := lsWindow / chunk
	if slots > 16 {
		slots = 16
	}
	if slots < 1 {
		slots = 1
	}
	i := 0
	for off := int64(0); off < volume; off += int64(chunk) {
		slot := i % slots
		lsOff := slot * chunk
		switch op {
		case DMAGet:
			ctx.Get(lsOff, base+off, chunk, slot%mfc.NumTags)
		case DMAPut:
			ctx.Put(lsOff, base+off, chunk, slot%mfc.NumTags)
		case DMACopy:
			tag := slot % mfc.NumTags
			ctx.GetF(lsOff, base+off, chunk, tag)
			ctx.PutF(lsOff, dstBase+off, chunk, tag)
		}
		i++
	}
	ctx.WaitTagMask(^uint32(0))
	return ctx.Decrementer() - start
}

// pairStreamKernel is the active half of an SPE couple: it GETs from and
// PUTs to its partner's local store simultaneously, syncing only after
// syncEvery commands (0 = only at the end). It returns elapsed cycles.
// The transferred volume is per direction.
func pairStreamKernel(ctx *spe.Context, peerEA int64, volume int64, chunk int, syncEvery int) sim.Time {
	start := ctx.Decrementer()
	slots := lsWindow / chunk
	if slots > 8 {
		slots = 8
	}
	if slots < 1 {
		slots = 1
	}
	peerSlots := peerWindow / chunk
	if peerSlots < 1 {
		peerSlots = 1
	}
	issued := 0
	i := 0
	for off := int64(0); off < volume; off += int64(chunk) {
		slot := i % slots
		pslot := i % peerSlots
		peer := peerEA + int64(pslot)*int64(chunk)
		ctx.Get(slot*chunk, peer, chunk, 0)
		ctx.Put(lsWindow/2+slot*chunk, peer, chunk, 1)
		issued += 2
		i++
		if syncEvery > 0 && issued >= syncEvery {
			ctx.WaitTagMask(1<<0 | 1<<1)
			issued = 0
		}
	}
	ctx.WaitTagMask(1<<0 | 1<<1)
	return ctx.Decrementer() - start
}

// pairListKernel is the DMA-list variant of pairStreamKernel: the same
// volume, grouped into list commands of up to 16 KB each, list elements of
// size chunk.
func pairListKernel(ctx *spe.Context, peerEA int64, volume int64, chunk int) sim.Time {
	start := ctx.Decrementer()
	perList := mfc.MaxTransfer / chunk
	if perList < 1 {
		perList = 1
	}
	if perList > mfc.MaxListElements {
		perList = mfc.MaxListElements
	}
	listBytes := int64(perList * chunk)
	peerSlots := peerWindow / chunk
	if peerSlots < 1 {
		peerSlots = 1
	}
	i := 0
	for off := int64(0); off < volume; off += listBytes {
		list := make([]mfc.ListElem, 0, perList)
		for k := 0; k < perList && off+int64(k*chunk) < volume; k++ {
			pslot := i % peerSlots
			list = append(list, mfc.ListElem{EA: peerEA + int64(pslot)*int64(chunk), Size: chunk})
			i++
		}
		lsOff := int(off % (lsWindow / 2))
		if lsOff+perList*chunk > lsWindow/2 {
			lsOff = 0
		}
		ctx.GetList(lsOff, list, 0)
		ctx.PutList(lsWindow/2+lsOff, list, 1)
	}
	ctx.WaitTagMask(1<<0 | 1<<1)
	return ctx.Decrementer() - start
}

// memListKernel streams volume bytes from memory with GETL/PUTL list
// commands (list elements of size chunk, lists of up to 16 KB).
func memListKernel(ctx *spe.Context, op DMAOp, base int64, volume int64, chunk int) sim.Time {
	start := ctx.Decrementer()
	perList := mfc.MaxTransfer / chunk
	if perList < 1 {
		perList = 1
	}
	listBytes := int64(perList * chunk)
	for off := int64(0); off < volume; off += listBytes {
		list := make([]mfc.ListElem, 0, perList)
		for k := 0; k < perList && off+int64(k*chunk) < volume; k++ {
			list = append(list, mfc.ListElem{EA: base + off + int64(k*chunk), Size: chunk})
		}
		lsOff := int(off % (lsWindow / 2))
		if lsOff+perList*chunk > lsWindow/2 {
			lsOff = 0
		}
		if op == DMAGet {
			ctx.GetList(lsOff, list, 0)
		} else {
			ctx.PutList(lsOff, list, 0)
		}
	}
	ctx.WaitTagMask(1 << 0)
	return ctx.Decrementer() - start
}

// aggregate runs a set of SPU kernels to completion and returns the
// aggregate bandwidth: total bytes moved divided by the wall time from
// simulation start to the last kernel's completion.
type aggregate struct {
	sys        *cell.System
	totalBytes int64
	lastEnd    sim.Time
	pending    int
}

func newAggregate(sys *cell.System) *aggregate { return &aggregate{sys: sys} }

// spawn starts kernel on logical SPE idx; bytes is the volume the kernel
// accounts for in the aggregate.
func (a *aggregate) spawn(idx int, name string, bytes int64, kernel func(ctx *spe.Context)) {
	a.pending++
	a.totalBytes += bytes
	sp := a.sys.SPEs[idx]
	sp.Run(name, func(ctx *spe.Context) {
		kernel(ctx)
		if end := ctx.Decrementer(); end > a.lastEnd {
			a.lastEnd = end
		}
		a.pending--
	})
}

// run drives the simulation under the watchdog and returns the aggregate
// bandwidth in GB/s. A deadlocked or conservation-violating experiment
// panics with the structured diagnostic (*sim.DeadlockError or a
// conservation error) instead of a bare string; RunSweep and experiment
// drivers recover it into a per-run error.
func (a *aggregate) run() float64 {
	if err := a.sys.RunChecked(0); err != nil {
		panic(err)
	}
	if a.pending != 0 {
		// Unreachable when the watchdog is sound: kernels that did not
		// complete leave their processes blocked, which RunChecked reports.
		panic(fmt.Sprintf("core: %d kernels did not complete yet no process is blocked", a.pending))
	}
	return a.sys.GBps(a.totalBytes, a.lastEnd)
}
