package core

import (
	"runtime"
	"sync"
)

// forEachRun evaluates measure once per layout run, in parallel when the
// host has spare cores. Each run builds its own System (its own event
// engine), so runs are fully independent and results stay deterministic —
// only wall-clock time changes. The returned slice is indexed by run.
func forEachRun(p Params, measure func(run int) float64) []float64 {
	out := make([]float64, p.Runs)
	workers := runtime.GOMAXPROCS(0)
	if workers > p.Runs {
		workers = p.Runs
	}
	if workers <= 1 {
		for r := 0; r < p.Runs; r++ {
			out[r] = measure(r)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				out[r] = measure(r)
			}
		}()
	}
	for r := 0; r < p.Runs; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	return out
}

// addRuns measures all runs (in parallel) and adds them to a series point.
func addRuns(p Params, series interface{ Add(int, float64) }, x int, measure func(run int) float64) {
	for _, v := range forEachRun(p, measure) {
		series.Add(x, v)
	}
}
