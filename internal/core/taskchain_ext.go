package core

// Task-runtime extension: measures the CellSs-style runtime
// (internal/task) executing a chain of dependent tasks under its two
// data-movement policies. The gap between them is the paper's SPE-to-SPE
// versus SPE-to-memory bandwidth difference, surfaced at the programming-
// model level — exactly the optimization the paper says its results
// should drive in such runtimes.

import (
	"cellbe/internal/sim"
	"cellbe/internal/stats"
	"cellbe/internal/task"
)

// The workload: four independent chains of dependent tasks, so both the
// data-movement policy (within a chain) and worker parallelism (across
// chains) are visible.
const (
	taskChains      = 4
	taskChainStages = 12
)

// TaskChain runs the chains (64 KB operands, SIMD-rate compute) on 1, 2,
// 4 and 8 workers under both policies and reports operand throughput.
func TaskChain(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "task-chain",
		Title:  "Extension: CellSs-style runtime, dependent task chain, by policy and workers",
		XLabel: "workers",
		YLabel: "GB/s of operands processed",
	}
	workerCounts := []int{1, 2, 4, 8}
	for _, policy := range []task.Policy{task.ThroughMemory, task.Forwarding} {
		series := stats.NewSeries(policy.String(), workerCounts)
		for _, w := range workerCounts {
			policy, w := policy, w
			addRuns(p, series, w, func(run int) float64 {
				return runTaskChain(p, run, policy, w)
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

func runTaskChain(p Params, run int, policy task.Policy, workers int) float64 {
	sys := p.newSystem(run)
	const size = 64 << 10
	ws := make([]int, workers)
	for i := range ws {
		ws[i] = i
	}
	rt := task.New(sys, ws, policy)
	for c := 0; c < taskChains; c++ {
		bufs := make([]int64, taskChainStages+1)
		for i := range bufs {
			bufs[i] = sys.Alloc(size, 128)
		}
		for i := 0; i < taskChainStages; i++ {
			rt.Submit(&task.Task{
				Name:          "link",
				Inputs:        []task.Buffer{{EA: bufs[i], Size: size}},
				Outputs:       []task.Buffer{{EA: bufs[i+1], Size: size}},
				ComputeCycles: sim.Time(size / 16),
			})
		}
	}
	st := rt.Run()
	// Each task touches 2*size operand bytes.
	return sys.GBps(int64(st.Tasks)*2*size, st.Cycles)
}
