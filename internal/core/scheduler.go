package core

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cellbe/internal/cell"
	"cellbe/internal/journal"
	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
)

// ErrQueueFull is returned by Submit when the scheduler already holds
// MaxJobs unfinished jobs. It is the backpressure signal: callers should
// retry later (the HTTP layer maps it to 429 + Retry-After).
var ErrQueueFull = errors.New("core: scheduler job queue is full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("core: scheduler is closed")

// SchedOptions configures a Scheduler.
type SchedOptions struct {
	// Workers is the size of the simulation worker pool shared by every
	// job; <= 0 uses GOMAXPROCS.
	Workers int
	// MaxJobs bounds the unfinished (queued + running) jobs the scheduler
	// admits; Submit returns ErrQueueFull beyond it. <= 0 defaults to 16.
	MaxJobs int
	// CachePoints is the capacity of the content-addressed result cache
	// (grid points, LRU-evicted). 0 disables memoization — the right
	// setting for one-shot sweeps that never resubmit a point.
	CachePoints int
	// KeepJobs is how many finished jobs stay queryable through Job()
	// before the oldest are pruned; <= 0 defaults to 256.
	KeepJobs int
	// BeforePoint, when set, runs on the worker goroutine before every
	// grid point (cache hits included). It exists for tests that need to
	// gate or observe worker progress deterministically; production
	// callers leave it nil.
	BeforePoint func(chunk int, seed int64)
	// Journal, when set, makes jobs durable: submissions and per-point
	// completions are appended to the write-ahead journal, and a restart
	// resumes incomplete jobs via Resume. Instrumented jobs are never
	// journaled (their hooks are process state). The caller owns the
	// journal's lifetime and closes it after Close.
	Journal *journal.Journal
	// Retry is the per-point self-healing policy: transient failures
	// (fault-injected deadlocks, injected TransientErrors) retry with
	// exponential backoff and deterministic jitter; a point failing
	// MaxAttempts consecutive times is quarantined as a PoisonError. The
	// zero value disables retries.
	Retry RetryPolicy
	// FailPoint, when set, runs before every simulation attempt
	// (attempt is 0-based); a non-nil return replaces the attempt's
	// simulation with that failure. It is the chaos harness's injection
	// point for adversarial schedules; production callers leave it nil.
	FailPoint func(chunk int, seed int64, attempt int) error
}

func (o SchedOptions) maxJobs() int {
	if o.MaxJobs <= 0 {
		return 16
	}
	return o.MaxJobs
}

func (o SchedOptions) keepJobs() int {
	if o.KeepJobs <= 0 {
		return 256
	}
	return o.KeepJobs
}

// PointResult is one grid point's SweepResult plus scheduler metadata.
type PointResult struct {
	SweepResult
	// Cached marks a memoized result: the point was not re-simulated.
	// Its Log slice is shared with every other consumer of the cache
	// entry and must be treated as read-only.
	Cached bool
}

// Scheduler is the reusable job layer under RunSweep, cellbench, cellsim
// and cellserve: a bounded worker pool that shards grid points across
// cores, a content-addressed result cache so resubmitted points are free,
// and bounded job admission so untrusted request streams degrade into
// ErrQueueFull instead of unbounded goroutines. Failures stay per-point
// (SweepResult.Err), exactly as in RunSweep — a deadlocked or panicking
// simulation never takes a worker down.
type Scheduler struct {
	opts   SchedOptions
	tasks  chan pointTask
	workWG sync.WaitGroup
	feedWG sync.WaitGroup

	sims    atomic.Int64 // points actually simulated (cache hits excluded)
	pending atomic.Int64 // grid points admitted but not yet delivered or skipped
	warm    atomic.Int64 // points stamped from a warm snapshot instead of cold-booted

	perfMu sync.Mutex
	perf   perfctr.Rollup // counter totals over every delivered point

	mu      sync.Mutex
	closed  bool
	active  int
	nextID  int64
	jobs    map[string]*Job
	doneIDs []string // finished jobs in finish order, for pruning
	cache   *pointCache
}

type pointTask struct {
	job *Job
	idx int
}

// NewScheduler starts the worker pool and returns the scheduler. Callers
// own its lifetime and must Close it.
func NewScheduler(opts SchedOptions) *Scheduler {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		opts:  opts,
		tasks: make(chan pointTask, workers),
		jobs:  make(map[string]*Job),
	}
	if opts.CachePoints > 0 {
		s.cache = newPointCache(opts.CachePoints)
	}
	for w := 0; w < workers; w++ {
		s.workWG.Add(1)
		go s.worker()
	}
	return s
}

// Close cancels every unfinished job, waits for in-flight points to
// drain and stops the workers. Submit fails with ErrClosed afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	s.feedWG.Wait()
	close(s.tasks)
	s.workWG.Wait()
}

// SubmitOptions carries submission metadata beyond the spec itself.
type SubmitOptions struct {
	// Resumed marks the job as a journal resume (reported in JobStatus).
	Resumed bool
	// JournalID reuses an existing journal job id instead of appending a
	// fresh job record — the resume path, where the record already
	// exists from before the restart.
	JournalID string
}

// Submit validates spec, snapshots its base config and enqueues the sweep
// as a job whose grid points the worker pool executes. It returns
// ErrQueueFull when MaxJobs jobs are already unfinished. Cancelling ctx
// cancels the job: points not yet started are skipped (a running
// simulation finishes its point first — simulations are not preemptible).
func (s *Scheduler) Submit(ctx context.Context, spec SweepSpec) (*Job, error) {
	return s.SubmitWith(ctx, spec, SubmitOptions{})
}

// SubmitWith is Submit with explicit SubmitOptions (the resume path).
func (s *Scheduler) SubmitWith(ctx context.Context, spec SweepSpec, opts SubmitOptions) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Base != nil {
		// Snapshot now, synchronously: after Submit returns, the caller
		// may mutate *spec.Base (its Layout slice included) without
		// racing any worker.
		b := spec.Base.Clone()
		spec.Base = &b
	}
	grid := make([]gridPoint, 0, len(spec.Chunks)*len(spec.Seeds))
	for _, c := range spec.Chunks {
		for _, sd := range spec.Seeds {
			grid = append(grid, gridPoint{chunk: c, seed: sd})
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.active >= s.opts.maxJobs() {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.active++
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		ID:      id,
		seq:     s.nextID,
		sched:   s,
		spec:    spec,
		grid:    grid,
		resumed: opts.Resumed,
		ctx:     jctx,
		cancel:  cancel,
		results: make(chan PointResult, len(grid)),
	}
	s.jobs[id] = j
	// Register the feeder before releasing the lock: Close checks the
	// closed flag and waits on feedWG under the same ordering, so it can
	// never observe a zero count, close(s.tasks), and then race a feed
	// goroutine spawned by a Submit it already admitted.
	s.feedWG.Add(1)
	s.pending.Add(int64(len(grid)))
	s.mu.Unlock()

	// Journal the submission before any point can run, so a crash right
	// after admission still resumes the job. A journal failure degrades
	// to an unjournaled job (sticky in journal Health / readiness)
	// rather than rejecting the request: durability is best-effort,
	// availability is not.
	if jr := s.opts.Journal; jr != nil && spec.Instrument == nil {
		if opts.JournalID != "" {
			j.jid = opts.JournalID
		} else if raw, err := MarshalSpec(spec); err == nil {
			if jid, err := jr.AppendJob(raw); err == nil {
				j.jid = jid
			}
		}
	}

	go s.feed(j)
	return j, nil
}

// Job returns a submitted job by ID (finished jobs stay queryable until
// KeepJobs newer ones have finished).
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Active returns the number of unfinished jobs.
func (s *Scheduler) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Closed reports whether Close has begun — the readiness probe's
// "shutting down" signal.
func (s *Scheduler) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Depth reports the scheduler's queue depth for readiness probes:
// unfinished jobs and grid points admitted but not yet delivered or
// skipped.
func (s *Scheduler) Depth() (jobs int, points int64) {
	s.mu.Lock()
	jobs = s.active
	s.mu.Unlock()
	return jobs, s.pending.Load()
}

// CacheStats reports the result cache counters plus the total number of
// points actually simulated — the number a memoized resubmission leaves
// unchanged.
func (s *Scheduler) CacheStats() CacheStats {
	s.mu.Lock()
	c := s.cache
	s.mu.Unlock()
	var st CacheStats
	if c != nil {
		st = c.stats()
	}
	st.Simulations = s.sims.Load()
	return st
}

// PerfTotals returns the perf-counter rollup summed over every point the
// scheduler has delivered (cache hits carry their memoized rollup) — the
// always-on observability tier the /metrics endpoint exposes.
func (s *Scheduler) PerfTotals() perfctr.Rollup {
	s.perfMu.Lock()
	defer s.perfMu.Unlock()
	return s.perf
}

// Jobs snapshots every job still tracked (unfinished, plus finished jobs
// not yet pruned), ordered by submission.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// feed pushes the job's grid points to the worker pool, abandoning the
// unfed tail as skipped if the job is cancelled first.
func (s *Scheduler) feed(j *Job) {
	defer s.feedWG.Done()
	for i := range j.grid {
		select {
		case s.tasks <- pointTask{job: j, idx: i}:
		case <-j.ctx.Done():
			j.skip(len(j.grid) - i)
			return
		}
	}
}

func (s *Scheduler) worker() {
	defer s.workWG.Done()
	for t := range s.tasks {
		s.runTask(t)
	}
}

func (s *Scheduler) runTask(t pointTask) {
	j := t.job
	pt := j.grid[t.idx]
	if j.ctx.Err() != nil {
		j.skip(1)
		return
	}
	j.markStarted()
	if hook := s.opts.BeforePoint; hook != nil {
		hook(pt.chunk, pt.seed)
		if j.ctx.Err() != nil {
			j.skip(1)
			return
		}
	}
	// Instrumented jobs bypass the cache both ways: a memoized hit would
	// skip the simulation the hook observes, and a hook-retained System
	// must not be recorded as a reusable result. They bypass the journal
	// for the same reason: a journaled result must be replayable.
	cacheable := s.cache != nil && j.spec.Instrument == nil
	journaled := s.opts.Journal != nil && j.spec.Instrument == nil
	var key [sha256.Size]byte
	if cacheable || journaled {
		key = pointKey(&j.spec, pt.chunk, pt.seed)
	}
	if cacheable {
		if r, ok := s.cache.get(key); ok {
			// Cache hits are not re-journaled: the record that warmed
			// the cache (or produced it in a prior job) is already on
			// disk, or was compacted away — in which case a resume
			// simply re-simulates the point.
			r.Cached = true
			j.deliver(r)
			return
		}
	}
	res := s.simulate(j, pt)
	if cacheable {
		s.cache.put(key, res)
	}
	if journaled {
		// An append failure is absorbed: the result is already bound for
		// the client, and the journal's sticky Health error flips
		// readiness until appends succeed again.
		s.opts.Journal.AppendPoint(j.jid, hex.EncodeToString(key[:]), resultRecord(res.SweepResult))
	}
	j.deliver(res)
}

// simulate runs one grid point under the retry policy: transient
// failures back off and retry (each retry deterministically re-rolls
// the fault stream), and a point that stays transiently broken through
// MaxAttempts is quarantined as a PoisonError instead of burning the
// worker further.
func (s *Scheduler) simulate(j *Job, pt gridPoint) PointResult {
	pol := s.opts.Retry
	maxA := pol.maxAttempts()
	faulty := j.spec.faultsEnabled()
	var res PointResult
	for attempt := 0; ; attempt++ {
		res = PointResult{SweepResult: s.attemptPoint(j, pt, attempt)}
		res.Attempts = attempt + 1
		if res.Err == nil || !transientFailure(res.Err, faulty) {
			return res
		}
		if attempt+1 >= maxA {
			break
		}
		if j.ctx.Err() != nil {
			// Cancelled mid-retry: report the transient failure as-is
			// instead of sleeping out a backoff nobody waits for.
			return res
		}
		pol.sleep(pol.backoff(pt.chunk, pt.seed, attempt+1))
	}
	if pol.enabled() {
		res.Err = &PoisonError{Chunk: pt.chunk, Seed: pt.seed, Attempts: res.Attempts, Last: res.Err}
		res.Log = append(res.Log, res.Err.Error())
	}
	return res
}

// attemptPoint executes one attempt of a grid point. The chaos FailPoint
// hook may substitute an injected failure for the simulation; a real
// simulation counts toward the Simulations proof counter.
func (s *Scheduler) attemptPoint(j *Job, pt gridPoint, attempt int) SweepResult {
	if hook := s.opts.FailPoint; hook != nil {
		if err := hook(pt.chunk, pt.seed, attempt); err != nil {
			return SweepResult{Chunk: pt.chunk, Seed: pt.seed, Err: err, Log: []string{err.Error()}}
		}
	}
	snap := j.snapshot()
	if snap != nil {
		s.warm.Add(1)
	}
	res := runPoint(&j.spec, snap, pt.chunk, pt.seed, attempt)
	s.sims.Add(1)
	return res
}

// WarmPoints reports how many grid points were stamped from a warm
// snapshot (recycled arena carcass or shared warm ancestor) instead of
// cold-booting a System — the /metrics observability for the clone path.
func (s *Scheduler) WarmPoints() int64 { return s.warm.Load() }

// release retires a finished job: frees its admission slot and prunes the
// oldest finished jobs beyond KeepJobs.
func (s *Scheduler) release(id string) {
	s.mu.Lock()
	s.active--
	s.doneIDs = append(s.doneIDs, id)
	for len(s.doneIDs) > s.opts.keepJobs() {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
	s.mu.Unlock()
}

type gridPoint struct {
	chunk int
	seed  int64
}

// JobState enumerates a job's lifecycle for status reporting.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobCancelled JobState = "cancelled"
)

// JobStatus is a point-in-time snapshot of a job's progress.
type JobStatus struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Total     int      `json:"total"`
	Completed int      `json:"completed"`
	Failed    int      `json:"failed"`
	Cached    int      `json:"cached"`
	Skipped   int      `json:"skipped,omitempty"`
	// Retried counts extra simulation attempts the retry policy spent on
	// transient failures (completed points' attempts beyond the first).
	Retried int `json:"retried,omitempty"`
	// Poisoned counts points quarantined by the circuit breaker
	// (PoisonError) — failures that exhausted every allowed retry.
	Poisoned int `json:"poisoned,omitempty"`
	// Resumed marks a job resubmitted from the write-ahead journal after
	// a restart.
	Resumed bool `json:"resumed,omitempty"`
	// JournalID is the job's durable identity in the write-ahead journal
	// (stable across restarts, unlike ID); empty when journaling is off.
	JournalID string `json:"journal_id,omitempty"`
}

// Job is one submitted sweep: its grid points flow through the scheduler's
// worker pool and stream out of Results in completion order.
type Job struct {
	ID      string
	seq     int64 // submission order, for stable Jobs() listings
	sched   *Scheduler
	spec    SweepSpec
	grid    []gridPoint
	jid     string // write-ahead journal id; empty when unjournaled
	resumed bool

	ctx     context.Context
	cancel  context.CancelFunc
	results chan PointResult

	// snap is the job's warm ancestor: one installed-but-never-run System
	// captured as a cell.Snapshot, from which every grid point is forked
	// (CloneFor) instead of cold-booted. Built lazily by the first worker
	// to simulate a point; nil when the workload is not snapshot-capable
	// (coroutine kernels, mem scenarios) or the job is instrumented.
	snapOnce sync.Once
	snap     *cell.Snapshot

	mu        sync.Mutex
	started   bool
	delivered int
	failed    int
	cached    int
	skipped   int
	retried   int
	poisoned  int
	finished  bool
	perf      perfctr.Rollup // counter totals over delivered points
}

// Total returns the number of grid points in the job.
func (j *Job) Total() int { return len(j.grid) }

// Results streams the job's point results in completion order (not grid
// order — sort by (Chunk, Seed) for the canonical ordering). The channel
// closes when every point has been delivered or skipped; a cancelled
// job's channel closes after the skipped tail is accounted.
func (j *Job) Results() <-chan PointResult { return j.results }

// Cancel stops the job: grid points not yet started are skipped, and the
// results channel closes once in-flight points finish. Safe to call any
// number of times, from any goroutine.
func (j *Job) Cancel() { j.cancel() }

// Status snapshots the job's progress.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Total:     len(j.grid),
		Completed: j.delivered,
		Failed:    j.failed,
		Cached:    j.cached,
		Skipped:   j.skipped,
		Retried:   j.retried,
		Poisoned:  j.poisoned,
		Resumed:   j.resumed,
		JournalID: j.jid,
	}
	switch {
	case j.ctx.Err() != nil && (j.skipped > 0 || !j.finished):
		st.State = JobCancelled
	case j.finished:
		st.State = JobDone
	case !j.started:
		st.State = JobQueued
	default:
		st.State = JobRunning
	}
	return st
}

// snapshot returns the job's warm ancestor, building it on first use: a
// template System is booted once, the scenario installed, and the
// install-boundary state captured. Grid points then fork from it with
// per-point configs (layout, fault seed) and chunk sizes. Jobs whose
// scenario is not snapshot-capable — and instrumented jobs, whose hook
// must see the System before the scenario installs — return nil and run
// every point through the cold path.
func (j *Job) snapshot() *cell.Snapshot {
	j.snapOnce.Do(func() {
		if j.spec.Instrument != nil || len(j.spec.Chunks) == 0 || len(j.spec.Seeds) == 0 {
			return
		}
		// A hostile Base config makes cell.New panic; leave snap nil and
		// let the cold path contain the same panic per-point, exactly as
		// it did before the warm path existed.
		defer func() { _ = recover() }()
		sys := cell.New(pointConfig(&j.spec, j.spec.Seeds[0]))
		if _, err := j.spec.scenario(j.spec.Chunks[0]).Install(sys); err != nil {
			sys.Release()
			return
		}
		snap, err := sys.Snapshot()
		if err != nil {
			// Not snapshot-capable (coroutine kernels): every point
			// cold-boots, exactly as before the warm path existed.
			sys.Release()
			return
		}
		// The template itself becomes the arena's first carcass.
		snap.Retire(sys)
		j.snap = snap
	})
	return j.snap
}

func (j *Job) markStarted() {
	j.mu.Lock()
	j.started = true
	j.mu.Unlock()
}

// deliver hands one point result to the consumer. The results channel is
// buffered to the full grid, so a slow (or gone) consumer can never block
// a worker.
func (j *Job) deliver(r PointResult) {
	j.results <- r
	j.sched.pending.Add(-1)
	if r.Perf != nil {
		j.sched.perfMu.Lock()
		j.sched.perf.Add(*r.Perf)
		j.sched.perfMu.Unlock()
	}
	j.mu.Lock()
	j.delivered++
	if r.Err != nil {
		j.failed++
	}
	if r.Cached {
		j.cached++
	}
	if r.Attempts > 1 {
		j.retried += r.Attempts - 1
	}
	var pe *PoisonError
	if errors.As(r.Err, &pe) {
		j.poisoned++
	}
	if r.Perf != nil {
		j.perf.Add(*r.Perf)
	}
	fin := !j.finished && j.delivered+j.skipped == len(j.grid)
	if fin {
		j.finished = true
	}
	j.mu.Unlock()
	if fin {
		j.finish()
	}
}

// Perf returns the perf-counter rollup summed over the job's delivered
// points so far (cache hits included via their memoized rollups).
func (j *Job) Perf() perfctr.Rollup {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.perf
}

// skip accounts n grid points that will never run (cancellation).
func (j *Job) skip(n int) {
	j.sched.pending.Add(-int64(n))
	j.mu.Lock()
	j.skipped += n
	fin := !j.finished && j.delivered+j.skipped == len(j.grid)
	if fin {
		j.finished = true
	}
	j.mu.Unlock()
	if fin {
		j.finish()
	}
}

func (j *Job) finish() {
	close(j.results)
	j.cancel() // release the context's resources
	// A finished job — every point delivered or deliberately skipped —
	// will never need resuming: seal it in the journal so the next boot
	// does not resurrect it. (A crash is precisely the absence of this
	// record.) The append fsyncs before returning.
	if jr := j.sched.opts.Journal; jr != nil && j.jid != "" {
		jr.AppendDone(j.jid)
	}
	j.sched.release(j.ID)
}

// pointKey canonicalizes everything that determines a grid point's result
// — the scenario (kind, SPE count, op, list variant, chunk, volume), the
// fully resolved machine configuration (fault config and derived fault
// seed included) and the watchdog budget — into a content address. Two
// submissions that would simulate identically hash identically, whatever
// spec fields (Workers, Instrument, seed-list order) differ around them.
func pointKey(spec *SweepSpec, chunk int, seed int64) [sha256.Size]byte {
	cfg := pointConfig(spec, seed)
	// The layout is a pure function of the seed; keying on the seed keeps
	// the canonical form small and layout-representation independent.
	cfg.Layout = nil
	k := struct {
		Scenario  cell.Scenario
		Config    cell.Config
		Seed      int64
		MaxCycles sim.Time
	}{spec.scenario(chunk), cfg, seed, spec.MaxCycles}
	b, err := json.Marshal(k)
	if err != nil {
		// Scenario and Config are plain data; this cannot fail.
		panic(fmt.Sprintf("core: canonicalizing point key: %v", err))
	}
	return sha256.Sum256(b)
}

// CacheStats are the result-cache counters.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Simulations counts grid points actually simulated by this
	// scheduler since start — the number that stays flat when a
	// resubmitted sweep is served entirely from the cache.
	Simulations int64 `json:"simulations"`
}

// pointCache is a bounded LRU of point results keyed by content address.
type pointCache struct {
	mu        sync.Mutex
	cap       int
	entries   map[[sha256.Size]byte]*list.Element
	order     *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key [sha256.Size]byte
	res PointResult
}

func newPointCache(capacity int) *pointCache {
	return &pointCache{
		cap:     capacity,
		entries: make(map[[sha256.Size]byte]*list.Element),
		order:   list.New(),
	}
}

func (c *pointCache) get(key [sha256.Size]byte) (PointResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return PointResult{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *pointCache) put(key [sha256.Size]byte, res PointResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *pointCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
