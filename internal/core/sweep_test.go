package core

import (
	"errors"
	"strings"
	"testing"

	"cellbe/internal/cell"
	"cellbe/internal/sim"
)

func sweepSpec(workers int) SweepSpec {
	return SweepSpec{
		Scenario: "cycle",
		SPEs:     4,
		Chunks:   []int{1024, 4096},
		Seeds:    []int64{0, 1, 2},
		Volume:   128 << 10,
		Workers:  workers,
	}
}

// TestSweepWorkerIndependence is the core property of the parallel sweep
// runner: every grid point owns its simulation engine, so the results
// must be bit-identical no matter how many workers the grid is fanned
// across. Under -race this is also the regression test for the fan-out
// machinery itself.
func TestSweepWorkerIndependence(t *testing.T) {
	serial, err := RunSweep(sweepSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		parallel, err := RunSweep(sweepSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			a, b := parallel[i], serial[i]
			same := a.Chunk == b.Chunk && a.Seed == b.Seed && a.Cycles == b.Cycles &&
				a.GBps == b.GBps && a.Transfers == b.Transfers &&
				a.WaitCycles == b.WaitCycles && a.Commands == b.Commands &&
				len(a.Log) == len(b.Log) &&
				(a.Err == nil) == (b.Err == nil)
			if !same {
				t.Errorf("workers=%d point %d diverged: %+v vs serial %+v",
					workers, i, parallel[i], serial[i])
			}
		}
	}
}

func TestSweepResultsOrdered(t *testing.T) {
	results, err := RunSweep(sweepSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		if a.Chunk > b.Chunk || (a.Chunk == b.Chunk && a.Seed >= b.Seed) {
			t.Fatalf("results not sorted by (chunk, seed): %+v before %+v", a, b)
		}
	}
	for _, r := range results {
		if r.Cycles <= 0 || r.GBps <= 0 || r.Transfers <= 0 {
			t.Errorf("degenerate sweep point: %+v", r)
		}
	}
}

// TestSweepRecoversDeadlockedPoints sweeps the deliberately wedged
// scenario: every grid point deadlocks, each must carry a structured
// per-point error, and the sweep as a whole must still return all points
// instead of aborting (or killing a worker goroutine) on the first one.
func TestSweepRecoversDeadlockedPoints(t *testing.T) {
	spec := SweepSpec{
		Scenario: "wedge",
		SPEs:     2,
		Chunks:   []int{4096},
		Seeds:    []int64{0, 1, 2, 3},
		Volume:   1 << 20,
		Workers:  2,
	}
	results, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want all 4 despite failures", len(results))
	}
	for _, r := range results {
		var de *sim.DeadlockError
		if !errors.As(r.Err, &de) {
			t.Errorf("point seed=%d: Err = %v, want *sim.DeadlockError", r.Seed, r.Err)
		}
	}
}

// TestSweepRecoversPanickedPoints makes every point's system assembly
// panic (LS aperture overlapping RAM) and checks the panic is contained
// to the point's Err rather than crashing the process.
func TestSweepRecoversPanickedPoints(t *testing.T) {
	base := cell.DefaultConfig()
	base.LSBase = 0 // overlaps RAM: cell.New panics
	spec := sweepSpec(2)
	spec.Base = &base
	results, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want all 6", len(results))
	}
	for _, r := range results {
		if r.Err == nil || !strings.Contains(r.Err.Error(), "panicked") {
			t.Errorf("point chunk=%d seed=%d: Err = %v, want recovered panic", r.Chunk, r.Seed, r.Err)
		}
	}
}

// TestSweepMaxCyclesBudget: an undersized cycle budget turns every point
// into a budget-exceeded diagnostic, still without aborting the sweep.
func TestSweepMaxCyclesBudget(t *testing.T) {
	spec := sweepSpec(1)
	spec.MaxCycles = 100
	results, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		var de *sim.DeadlockError
		if !errors.As(r.Err, &de) {
			t.Errorf("point chunk=%d seed=%d: Err = %v, want budget diagnostic", r.Chunk, r.Seed, r.Err)
		}
	}
}

func TestSweepRejectsBadSpecs(t *testing.T) {
	bad := []SweepSpec{
		{Scenario: "cycle", SPEs: 4, Chunks: nil, Seeds: []int64{1}, Volume: 1 << 20},
		{Scenario: "cycle", SPEs: 4, Chunks: []int{4096}, Seeds: nil, Volume: 1 << 20},
		{Scenario: "warp", SPEs: 4, Chunks: []int{4096}, Seeds: []int64{1}, Volume: 1 << 20},
		{Scenario: "cycle", SPEs: 4, Chunks: []int{64 << 10}, Seeds: []int64{1}, Volume: 1 << 20},
		{Scenario: "couples", SPEs: 3, Chunks: []int{4096}, Seeds: []int64{1}, Volume: 1 << 20},
	}
	for i, spec := range bad {
		if _, err := RunSweep(spec); err == nil {
			t.Errorf("spec %d: expected an error, got none (%+v)", i, spec)
		}
	}
}
