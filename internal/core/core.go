// Package core implements the paper's contribution: the microbenchmark
// suite that measures sustainable bandwidth between every pair of Cell BE
// components — PPE to caches and memory (Figs. 3, 4, 6), SPE to memory
// (Fig. 8), SPU to local store (§4.2.2), SPE to SPE with delayed
// synchronization (Fig. 10), couples of SPEs (Figs. 12, 13), cycles of
// SPEs (Figs. 15, 16) — plus the streaming-pipeline experiment behind the
// paper's "two streams of 4 SPEs beat one stream of 8" guidance.
//
// Each experiment builds fresh systems (one per run, with a different
// logical-to-physical SPE layout, as the paper does with its 10 repeated
// runs), drives SPU/PPU kernel coroutines, and reports bandwidth curves
// with min/max/median/average summaries.
package core

import (
	"fmt"

	"cellbe/internal/cell"
	"cellbe/internal/stats"
)

// ChunkSizes is the DMA element-size sweep of the paper: 128 bytes to the
// architectural maximum of 16 KB.
var ChunkSizes = []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// ElemSizes is the load/store access-width sweep: 1 byte to a full
// 128-bit register.
var ElemSizes = []int{1, 2, 4, 8, 16}

// SPECounts is the SPE scaling sweep.
var SPECounts = []int{1, 2, 4, 8}

// Params controls an experiment run.
type Params struct {
	// Runs is how many times each configuration is repeated, each with a
	// different logical-to-physical SPE layout (the paper uses 10).
	Runs int
	// BytesPerSPE is the weak-scaling transfer volume per SPE. The paper
	// moves 32 MB per SPE; the default here is smaller for quick runs —
	// steady state is reached long before that.
	BytesPerSPE int64
	// PPEBytes is the traversal volume for PPE main-memory experiments.
	PPEBytes int64
	// Base is the system configuration; zero value means
	// cell.DefaultConfig.
	Base *cell.Config
	// FirstSeed offsets the layout seeds (seed 0 is the identity layout;
	// runs use FirstSeed, FirstSeed+1, ...).
	FirstSeed int64
}

// DefaultParams returns quick-run parameters: 10 layout samples, 2 MB per
// SPE.
func DefaultParams() Params {
	return Params{
		Runs:        10,
		BytesPerSPE: 2 << 20,
		PPEBytes:    2 << 20,
		FirstSeed:   1,
	}
}

// PaperParams returns the full-volume parameters matching the paper's
// setup (slower; use for final numbers).
func PaperParams() Params {
	p := DefaultParams()
	p.BytesPerSPE = 32 << 20
	p.PPEBytes = 32 << 20
	return p
}

func (p Params) config() cell.Config {
	if p.Base != nil {
		return *p.Base
	}
	return cell.DefaultConfig()
}

func (p Params) validate() error {
	if p.Runs <= 0 {
		return fmt.Errorf("core: Runs must be positive")
	}
	if p.BytesPerSPE < 16384 || p.BytesPerSPE%16384 != 0 {
		return fmt.Errorf("core: BytesPerSPE must be a positive multiple of 16 KB")
	}
	if p.PPEBytes < 4096 || p.PPEBytes%128 != 0 {
		return fmt.Errorf("core: PPEBytes must be a multiple of the line size")
	}
	return nil
}

// newSystem builds a system for run r of the sweep.
func (p Params) newSystem(run int) *cell.System {
	cfg := p.config()
	cfg.Layout = cell.RandomLayout(p.FirstSeed + int64(run))
	if cfg.Faults.Enabled() && cfg.FaultSeed == 0 {
		// Tie the fault stream to the run so repeated runs sample fault
		// patterns alongside layouts, deterministically.
		cfg.FaultSeed = p.FirstSeed + int64(run)
	}
	return cell.New(cfg)
}

// Point is one x position of a curve with its cross-run summary.
type Point struct {
	X       int
	Summary stats.Summary
}

// Curve is one labeled series of a figure.
type Curve struct {
	Label  string
	Points []Point
}

// Result is a reproduced figure: a set of curves over a common x axis.
type Result struct {
	Name   string // experiment id, e.g. "spe-mem"
	Title  string // paper reference, e.g. "Figure 8: SPE to memory"
	XLabel string
	YLabel string
	Curves []Curve
}

// Curve returns the curve with the given label, or nil.
func (r *Result) Curve(label string) *Curve {
	for i := range r.Curves {
		if r.Curves[i].Label == label {
			return &r.Curves[i]
		}
	}
	return nil
}

// At returns the summary at x on the labeled curve; ok is false when the
// curve or point does not exist.
func (r *Result) At(label string, x int) (stats.Summary, bool) {
	c := r.Curve(label)
	if c == nil {
		return stats.Summary{}, false
	}
	for _, pt := range c.Points {
		if pt.X == x {
			return pt.Summary, true
		}
	}
	return stats.Summary{}, false
}

// curveFromSeries converts collected samples to a Curve.
func curveFromSeries(s *stats.Series) Curve {
	c := Curve{Label: s.Label}
	for i, x := range s.Xs {
		c.Points = append(c.Points, Point{X: x, Summary: stats.Summarize(s.Values[i])})
	}
	return c
}
