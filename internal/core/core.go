// Package core implements the paper's contribution: the microbenchmark
// suite that measures sustainable bandwidth between every pair of Cell BE
// components — PPE to caches and memory (Figs. 3, 4, 6), SPE to memory
// (Fig. 8), SPU to local store (§4.2.2), SPE to SPE with delayed
// synchronization (Fig. 10), couples of SPEs (Figs. 12, 13), cycles of
// SPEs (Figs. 15, 16) — plus the streaming-pipeline experiment behind the
// paper's "two streams of 4 SPEs beat one stream of 8" guidance.
//
// Each experiment builds fresh systems (one per run, with a different
// logical-to-physical SPE layout, as the paper does with its 10 repeated
// runs), drives SPU/PPU kernel coroutines, and reports bandwidth curves
// with min/max/median/average summaries.
package core

import (
	"fmt"

	"cellbe/internal/cell"
	"cellbe/internal/stats"
)

// ChunkSizes is the DMA element-size sweep of the paper: 128 bytes to the
// architectural maximum of 16 KB.
var ChunkSizes = []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// ElemSizes is the load/store access-width sweep: 1 byte to a full
// 128-bit register.
var ElemSizes = []int{1, 2, 4, 8, 16}

// SPECounts is the SPE scaling sweep.
var SPECounts = []int{1, 2, 4, 8}

// Params controls an experiment run.
type Params struct {
	// Runs is how many times each configuration is repeated, each with a
	// different logical-to-physical SPE layout (the paper uses 10).
	Runs int
	// BytesPerSPE is the weak-scaling transfer volume per SPE. The paper
	// moves 32 MB per SPE; the default here is smaller for quick runs —
	// steady state is reached long before that.
	BytesPerSPE int64
	// PPEBytes is the traversal volume for PPE main-memory experiments.
	PPEBytes int64
	// Base is the system configuration; zero value means
	// cell.DefaultConfig.
	Base *cell.Config
	// FirstSeed offsets the layout seeds (seed 0 is the identity layout;
	// runs use FirstSeed, FirstSeed+1, ...).
	FirstSeed int64

	// Chunks, Elems, SPESweep and Syncs restrict the sweep axes to the
	// listed values; nil keeps the full paper grid. The conformance suite
	// uses these to evaluate single figure points without paying for the
	// whole sweep.
	Chunks   []int // DMA element sizes (default ChunkSizes)
	Elems    []int // load/store access widths (default ElemSizes)
	SPESweep []int // SPE counts (default per experiment)
	Syncs    []int // Figure 10 sync intervals (default SyncIntervals)
}

// DefaultParams returns quick-run parameters: 10 layout samples, 2 MB per
// SPE.
func DefaultParams() Params {
	return Params{
		Runs:        10,
		BytesPerSPE: 2 << 20,
		PPEBytes:    2 << 20,
		FirstSeed:   1,
	}
}

// PaperParams returns the full-volume parameters matching the paper's
// setup (slower; use for final numbers).
func PaperParams() Params {
	p := DefaultParams()
	p.BytesPerSPE = 32 << 20
	p.PPEBytes = 32 << 20
	return p
}

func (p Params) config() cell.Config {
	if p.Base != nil {
		return *p.Base
	}
	return cell.DefaultConfig()
}

func (p Params) validate() error {
	if p.Runs <= 0 {
		return fmt.Errorf("core: Runs must be positive")
	}
	if p.BytesPerSPE < 16384 || p.BytesPerSPE%16384 != 0 {
		return fmt.Errorf("core: BytesPerSPE must be a positive multiple of 16 KB")
	}
	if p.PPEBytes < 4096 || p.PPEBytes%128 != 0 {
		return fmt.Errorf("core: PPEBytes must be a multiple of the line size")
	}
	for _, c := range p.Chunks {
		if c < 16 || c%16 != 0 || c > 16384 {
			return fmt.Errorf("core: chunk restriction %d must be a multiple of 16 in [16, 16384]", c)
		}
	}
	for _, e := range p.Elems {
		if e != 1 && e != 2 && e != 4 && e != 8 && e != 16 {
			return fmt.Errorf("core: element-size restriction %d must be one of 1, 2, 4, 8, 16", e)
		}
	}
	for _, n := range p.SPESweep {
		if n < 1 || n > 8 {
			return fmt.Errorf("core: SPE-count restriction %d out of range 1..8", n)
		}
	}
	for _, s := range p.Syncs {
		if s < 0 {
			return fmt.Errorf("core: sync-interval restriction %d must be non-negative", s)
		}
	}
	return nil
}

// chunkSizes returns the DMA element-size axis: the Chunks restriction,
// or the full paper sweep.
func (p Params) chunkSizes() []int {
	if len(p.Chunks) > 0 {
		return p.Chunks
	}
	return ChunkSizes
}

// elemSizes returns the access-width axis: the Elems restriction, or the
// full paper sweep.
func (p Params) elemSizes() []int {
	if len(p.Elems) > 0 {
		return p.Elems
	}
	return ElemSizes
}

// speCounts returns the SPE-count axis: the SPESweep restriction, or the
// experiment's default.
func (p Params) speCounts(def []int) []int {
	if len(p.SPESweep) > 0 {
		return p.SPESweep
	}
	return def
}

// syncIntervals returns the Figure 10 synchronization axis: the Syncs
// restriction, or the full paper sweep.
func (p Params) syncIntervals() []int {
	if len(p.Syncs) > 0 {
		return p.Syncs
	}
	return SyncIntervals
}

// newSystem builds a system for run r of the sweep.
func (p Params) newSystem(run int) *cell.System {
	cfg := p.config()
	cfg.Layout = cell.RandomLayout(p.FirstSeed + int64(run))
	if cfg.Faults.Enabled() && cfg.FaultSeed == 0 {
		// Tie the fault stream to the run so repeated runs sample fault
		// patterns alongside layouts, deterministically.
		cfg.FaultSeed = p.FirstSeed + int64(run)
	}
	return cell.New(cfg)
}

// Point is one x position of a curve with its cross-run summary. Samples
// keeps the raw per-run values behind the summary so claim-oriented
// consumers (the conformance suite) can compute their own statistics —
// percentiles, robust spreads — without rerunning the experiment.
type Point struct {
	X       int
	Summary stats.Summary
	Samples []float64
}

// Curve is one labeled series of a figure.
type Curve struct {
	Label  string
	Points []Point
}

// Result is a reproduced figure: a set of curves over a common x axis.
type Result struct {
	Name   string // experiment id, e.g. "spe-mem"
	Title  string // paper reference, e.g. "Figure 8: SPE to memory"
	XLabel string
	YLabel string
	Curves []Curve
}

// Curve returns the curve with the given label, or nil.
func (r *Result) Curve(label string) *Curve {
	for i := range r.Curves {
		if r.Curves[i].Label == label {
			return &r.Curves[i]
		}
	}
	return nil
}

// At returns the summary at x on the labeled curve; ok is false when the
// curve or point does not exist.
func (r *Result) At(label string, x int) (stats.Summary, bool) {
	c := r.Curve(label)
	if c == nil {
		return stats.Summary{}, false
	}
	for _, pt := range c.Points {
		if pt.X == x {
			return pt.Summary, true
		}
	}
	return stats.Summary{}, false
}

// CurveFromSeries converts collected samples to a Curve.
func CurveFromSeries(s *stats.Series) Curve {
	c := Curve{Label: s.Label}
	for i, x := range s.Xs {
		c.Points = append(c.Points, Point{X: x, Summary: stats.Summarize(s.Values[i]), Samples: s.Values[i]})
	}
	return c
}
