package core

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"testing"

	"cellbe/internal/cell"
	"cellbe/internal/fault"
	"cellbe/internal/sim"
)

// drainJob collects a job's streamed results and sorts them into the
// canonical (chunk, seed) order.
func drainJob(j *Job) []PointResult {
	var out []PointResult
	for pr := range j.Results() {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Chunk != out[k].Chunk {
			return out[i].Chunk < out[k].Chunk
		}
		return out[i].Seed < out[k].Seed
	})
	return out
}

// TestSchedulerMemoizes is the content-addressed cache contract:
// resubmitting an identical sweep must return bit-identical results
// without a single new simulation, and the cache counters must prove it.
func TestSchedulerMemoizes(t *testing.T) {
	s := NewScheduler(SchedOptions{Workers: 4, CachePoints: 64})
	defer s.Close()
	spec := sweepSpec(0)

	j1, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	first := drainJob(j1)
	st := s.CacheStats()
	if st.Simulations != int64(len(first)) || st.Hits != 0 || st.Entries != len(first) {
		t.Fatalf("after first run: stats %+v, want %d simulations / 0 hits / %d entries",
			st, len(first), len(first))
	}

	j2, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second := drainJob(j2)
	st = s.CacheStats()
	if st.Simulations != int64(len(first)) {
		t.Fatalf("resubmission re-simulated: %d simulations, want %d (all memoized)",
			st.Simulations, len(first))
	}
	if st.Hits != int64(len(first)) {
		t.Fatalf("resubmission hit the cache %d times, want %d", st.Hits, len(first))
	}
	if len(second) != len(first) {
		t.Fatalf("got %d memoized results, want %d", len(second), len(first))
	}
	for i := range first {
		a, b := first[i], second[i]
		if !b.Cached {
			t.Errorf("point chunk=%d seed=%d: resubmitted result not marked Cached", b.Chunk, b.Seed)
		}
		if a.Chunk != b.Chunk || a.Seed != b.Seed || a.Cycles != b.Cycles ||
			a.GBps != b.GBps || a.Transfers != b.Transfers {
			t.Errorf("memoized point %d diverged: %+v vs %+v", i, a, b)
		}
	}

	// The memoized results must also agree with a cache-free RunSweep.
	ref, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i].Cycles != second[i].Cycles || ref[i].GBps != second[i].GBps {
			t.Errorf("cached point %d disagrees with uncached sweep: %+v vs %+v",
				i, second[i].SweepResult, ref[i])
		}
	}
}

// TestSchedulerQueueBound: Submit must reject with ErrQueueFull once
// MaxJobs jobs are unfinished, and admit again after one drains.
func TestSchedulerQueueBound(t *testing.T) {
	gate := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(gate) })
	defer releaseAll()
	entered := make(chan struct{}, 16)
	s := NewScheduler(SchedOptions{
		Workers: 1,
		MaxJobs: 1,
		BeforePoint: func(int, int64) {
			entered <- struct{}{}
			<-gate
		},
	})
	defer s.Close()

	spec := sweepSpec(1)
	spec.Chunks = spec.Chunks[:1]
	spec.Seeds = spec.Seeds[:1]
	j1, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the job's one point is on the worker: the slot is held

	if _, err := s.Submit(context.Background(), spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second Submit with a full queue: err = %v, want ErrQueueFull", err)
	}

	releaseAll()
	if got := drainJob(j1); len(got) != 1 {
		t.Fatalf("first job delivered %d points, want 1", len(got))
	}
	j2, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("Submit after the queue drained: %v", err)
	}
	drainJob(j2)
}

// TestSchedulerCancellation: cancelling a job mid-sweep must stop workers
// from starting its remaining points and still close the results stream
// with consistent accounting.
func TestSchedulerCancellation(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	s := NewScheduler(SchedOptions{
		Workers: 1,
		BeforePoint: func(int, int64) {
			entered <- struct{}{}
			<-gate
		},
	})
	defer s.Close()

	spec := sweepSpec(1) // 6 points, one worker: strictly sequential
	j, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	<-entered          // point 1 at the gate
	gate <- struct{}{} // let it simulate
	<-entered          // point 2 at the gate
	j.Cancel()
	gate <- struct{}{} // release point 2: its worker must now skip it

	got := drainJob(j)
	if len(got) != 1 {
		t.Fatalf("cancelled job delivered %d points, want exactly the 1 started before Cancel", len(got))
	}
	st := j.Status()
	if st.State != JobCancelled {
		t.Fatalf("state = %q, want %q", st.State, JobCancelled)
	}
	if st.Completed != 1 || st.Skipped != st.Total-1 {
		t.Fatalf("accounting off: %+v (want completed=1, skipped=%d)", st, st.Total-1)
	}
	if sims := s.CacheStats().Simulations; sims != 1 {
		t.Fatalf("cancelled job simulated %d points, want 1", sims)
	}
}

// TestSubmitSnapshotsBaseConfig pins the Config.Clone fix: Submit
// snapshots *spec.Base synchronously, so the caller may keep mutating the
// config — its Layout slice included — while grid points run. Under
// -race this is the regression test for the shared-state hazard.
func TestSubmitSnapshotsBaseConfig(t *testing.T) {
	base := cell.DefaultConfig()
	base.Layout = cell.RandomLayout(5)
	s := NewScheduler(SchedOptions{Workers: 4})
	defer s.Close()

	spec := sweepSpec(4)
	spec.Base = &base
	j, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the caller-owned config while the sweep runs.
	for i := 0; i < 10000; i++ {
		base.Layout[i%cell.NumSPEs] = i % cell.NumSPEs
		base.FaultSeed = int64(i)
	}
	for _, r := range drainJob(j) {
		if r.Err != nil {
			t.Fatalf("point chunk=%d seed=%d failed under base mutation: %v", r.Chunk, r.Seed, r.Err)
		}
	}
}

// TestInstrumentedSweepReleasesLSBuffers is the leak regression test for
// the Instrument retention contract: a sweep whose hook retains nothing
// must recycle its pooled 256 KB local-store buffers exactly like an
// uninstrumented sweep, instead of leaking 8 fresh buffers per grid
// point.
func TestInstrumentedSweepReleasesLSBuffers(t *testing.T) {
	// Pooling only shows up without GC clearing the pool mid-measure.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	spec := SweepSpec{
		Scenario: "cycle",
		SPEs:     8,
		Chunks:   []int{4096},
		Seeds:    []int64{0, 1, 2, 3, 4, 5, 6, 7},
		Volume:   64 << 10,
		Workers:  1,
	}
	measure := func(spec SweepSpec) uint64 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := RunSweep(spec); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	if _, err := RunSweep(spec); err != nil { // warm the LS pool
		t.Fatal(err)
	}
	baseline := measure(spec)

	instrumented := spec
	instrumented.Instrument = func(int, int64, *cell.System) bool { return false }
	got := measure(instrumented)

	// Leaking the pool costs 8 points x 8 SPEs x 256 KB = 16 MB over
	// baseline; half that margin is an unambiguous verdict either way.
	const slack = 8 << 20
	if got > baseline+slack {
		t.Fatalf("instrumented sweep allocated %d bytes vs %d uninstrumented: LS buffers are leaking again",
			got, baseline)
	}
}

// TestSweepSeedZeroFaultStream pins the fault-seed derivation fix: layout
// seed 0 must run under an explicit, reproducible, non-sentinel fault
// seed, and non-zero seeds must keep their established streams.
func TestSweepSeedZeroFaultStream(t *testing.T) {
	if DeriveFaultSeed(0) == 0 {
		t.Fatal("DeriveFaultSeed(0) is the unset sentinel 0")
	}
	if DeriveFaultSeed(7) != 7 {
		t.Fatalf("DeriveFaultSeed(7) = %d, want the identity mapping for non-zero seeds", DeriveFaultSeed(7))
	}

	base := cell.DefaultConfig()
	base.Faults = fault.Config{
		MFCRetryRate:  0.01,
		XDRStallRate:  0.05,
		EIBSlowRate:   0.02,
		EIBOutageRate: 0.02,
		DoneDelayRate: 0.02,
	}
	spec := SweepSpec{
		Scenario: "cycle",
		SPEs:     4,
		Chunks:   []int{4096},
		Seeds:    []int64{0, 1},
		Volume:   128 << 10,
		Workers:  2,
		Base:     &base,
	}
	a, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Err != nil {
			t.Fatalf("faulty point chunk=%d seed=%d failed: %v", a[i].Chunk, a[i].Seed, a[i].Err)
		}
		if a[i].Cycles != b[i].Cycles || a[i].GBps != b[i].GBps || a[i].FaultSeed != b[i].FaultSeed {
			t.Fatalf("faulty sweep not deterministic at point %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if a[0].Seed != 0 || a[0].FaultSeed != DeriveFaultSeed(0) {
		t.Fatalf("seed-0 point ran fault seed %d, want DeriveFaultSeed(0) = %d",
			a[0].FaultSeed, DeriveFaultSeed(0))
	}
	if a[1].FaultSeed != 1 {
		t.Fatalf("seed-1 point ran fault seed %d, want the layout seed 1", a[1].FaultSeed)
	}

	// The derived seed must be live and reproducible: a direct run pinned
	// to DeriveFaultSeed(0) reproduces the grid point, and the sentinel
	// stream (injector seed 0) is a different run entirely.
	direct := faultyRunCycles(t, base, 0, DeriveFaultSeed(0))
	if direct != a[0].Cycles {
		t.Fatalf("direct run with the derived seed took %d cycles, sweep point took %d", direct, a[0].Cycles)
	}
	sentinel := faultyRunCycles(t, base, 0, 0)
	if sentinel == a[0].Cycles {
		t.Fatal("seed-0 grid point still runs the sentinel (injector seed 0) fault stream")
	}
}

// faultyRunCycles runs the test's cycle scenario once on layout seed
// layoutSeed with the injector seeded faultSeed, outside the sweep path.
func faultyRunCycles(t *testing.T, base cell.Config, layoutSeed, faultSeed int64) (cycles sim.Time) {
	t.Helper()
	cfg := base.Clone()
	cfg.Layout = cell.RandomLayout(layoutSeed)
	cfg.FaultSeed = faultSeed
	sys := cell.New(cfg)
	sc := cell.Scenario{Kind: "cycle", SPEs: 4, Chunk: 4096, Volume: 128 << 10, Op: "get"}
	if _, err := sc.Install(sys); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunChecked(0); err != nil {
		t.Fatal(err)
	}
	return sys.Eng.Now()
}

// TestSchedulerSubmitCloseRace: Submit registers its feeder with the
// scheduler's WaitGroup inside the admission critical section, so a
// concurrent Close either rejects the submission with ErrClosed or waits
// for its feed goroutine — it must never close the task channel under a
// feeder that then sends on it (a panic). Run with -race.
func TestSchedulerSubmitCloseRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		s := NewScheduler(SchedOptions{Workers: 2, MaxJobs: 8})
		spec := sweepSpec(0)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				j, err := s.Submit(context.Background(), spec)
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
						t.Errorf("Submit: %v", err)
					}
					return
				}
				for range j.Results() {
				}
			}()
		}
		close(start)
		s.Close() // races the submitters; must not panic
		wg.Wait()
		if _, err := s.Submit(context.Background(), spec); !errors.Is(err, ErrClosed) {
			t.Fatalf("Submit after Close: %v, want ErrClosed", err)
		}
	}
}
