package core

import (
	"fmt"

	"cellbe/internal/spe"
	"cellbe/internal/stats"
)

// SPEMemory reproduces Figure 8: DMA-elem GET, PUT and GET+PUT between
// SPEs and main memory, for 1 to 8 active SPEs (weak scaling: an
// independent region per SPE) and element sizes 128 B to 16 KB. Each
// configuration is repeated across Runs logical-to-physical layouts and
// the average reported, as in the paper. Set list to run the DMA-list
// variant instead (an extension: the paper reports get/put list
// differences only for SPE-to-SPE transfers).
func SPEMemory(p Params, op DMAOp, list bool) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	kind := "DMA-elem"
	if list {
		kind = "DMA-list"
	}
	res := &Result{
		Name:   "spe-mem",
		Title:  fmt.Sprintf("SPE to memory %s transfers (%s), 1 to 8 SPEs", op, kind),
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	for _, n := range p.speCounts(SPECounts) {
		series := stats.NewSeries(fmt.Sprintf("%d SPE", n), p.chunkSizes())
		for _, chunk := range p.chunkSizes() {
			chunk := chunk
			addRuns(p, series, chunk, func(run int) float64 {
				return runSPEMemory(p, run, n, chunk, op, list)
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

func runSPEMemory(p Params, run, n, chunk int, op DMAOp, list bool) float64 {
	if list && op == DMACopy {
		panic("core: list copy kernel not defined by the paper")
	}
	sys := p.newSystem(run)
	a := newAggregate(sys)
	volume := p.BytesPerSPE
	for i := 0; i < n; i++ {
		base := sys.Alloc(volume, 1<<16)
		dst := base
		counted := volume
		if op == DMACopy {
			dst = sys.Alloc(volume, 1<<16)
			counted = 2 * volume
		}
		a.spawn(i, fmt.Sprintf("mem-spe%d", i), counted, func(ctx *spe.Context) {
			if list {
				memListKernel(ctx, op, base, volume, chunk)
			} else {
				memStreamKernel(ctx, op, base, dst, volume, chunk)
			}
		})
	}
	return a.run()
}

// SPELocalStore reproduces §4.2.2: SPU load/store/copy bandwidth against
// its own local store for access widths of 1 to 16 bytes. Only 16-byte
// accesses reach the 33.6 GB/s peak; the SPU ISA has no narrower loads, so
// smaller accesses pay extract/merge overhead.
func SPELocalStore(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "spe-ls",
		Title:  "SPU to Local Store load/store bandwidth (§4.2.2)",
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	volume := 16 << 20 // pure compute-side loop; cheap to simulate
	for _, op := range []spe.LSOp{spe.LSLoad, spe.LSStore, spe.LSCopy} {
		label := map[spe.LSOp]string{spe.LSLoad: "load", spe.LSStore: "store", spe.LSCopy: "copy"}[op]
		series := stats.NewSeries(label, p.elemSizes())
		for _, elem := range p.elemSizes() {
			sys := p.newSystem(0)
			var bw float64
			sys.SPEs[0].Run("ls", func(ctx *spe.Context) {
				cycles := ctx.StreamLS(op, elem, volume)
				bytes := int64(volume)
				if op == spe.LSCopy {
					bytes *= 2
				}
				bw = sys.GBps(bytes, cycles)
			})
			sys.Run()
			series.Add(elem, bw)
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}
