package core

import (
	"runtime"
	"strings"
	"testing"

	"cellbe/internal/cell"
)

// fastParams keeps experiment tests quick: 2 layout samples, small
// volumes.
func fastParams() Params {
	p := DefaultParams()
	p.Runs = 2
	p.BytesPerSPE = 512 << 10
	p.PPEBytes = 1 << 20
	return p
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Runs: 0, BytesPerSPE: 1 << 20, PPEBytes: 1 << 20},
		{Runs: 1, BytesPerSPE: 1000, PPEBytes: 1 << 20}, // not multiple of 16K
		{Runs: 1, BytesPerSPE: 1 << 20, PPEBytes: 100},  // not line multiple
		{Runs: -1, BytesPerSPE: 1 << 20, PPEBytes: 1 << 20},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("case %d: bad params validated", i)
		}
	}
	if err := DefaultParams().validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if err := PaperParams().validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) < 14 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	// Every figure of the evaluation must be covered.
	figures := []string{"Figure 3", "Figure 4", "Figure 6", "Figure 8",
		"Figure 10", "Figure 12", "Figure 13", "Figure 15", "Figure 16"}
	all := ""
	for _, e := range exps {
		all += e.Figure + " "
		if e.Name == "" || e.Description == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
	}
	for _, f := range figures {
		if !strings.Contains(all, strings.TrimPrefix(f, "Figure ")) {
			t.Errorf("no experiment covers %s", f)
		}
	}
	if _, err := Lookup("spe-mem-get"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestPPEBandwidthShape(t *testing.T) {
	p := fastParams()
	res, err := PPEBandwidth(p, LevelL1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 6 {
		t.Fatalf("%d curves, want 6 (3 ops x 2 thread counts)", len(res.Curves))
	}
	// Figure 3(a): the load plateau at half peak from 8 bytes up, exact
	// proportionality below.
	for _, c := range []struct {
		elem int
		want float64
	}{{1, 2.1}, {2, 4.2}, {8, 8.4}, {16, 8.4}} {
		s, ok := res.At("load 1T", c.elem)
		if !ok {
			t.Fatalf("missing load point at %d", c.elem)
		}
		if s.Mean < c.want*0.95 || s.Mean > c.want*1.05 {
			t.Errorf("L1 load %dB = %.2f, want ~%.1f", c.elem, s.Mean, c.want)
		}
	}
	// Stores stay below loads at 16 bytes.
	ld, _ := res.At("load 1T", 16)
	st, _ := res.At("store 1T", 16)
	if st.Mean >= ld.Mean {
		t.Errorf("L1 store %.2f must be below load %.2f", st.Mean, ld.Mean)
	}
}

func TestPPEMemEqualsL2Read(t *testing.T) {
	p := fastParams()
	l2, err := PPEBandwidth(p, LevelL2)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := PPEBandwidth(p, LevelMem)
	if err != nil {
		t.Fatal(err)
	}
	l2load, _ := l2.At("load 1T", 8)
	memload, _ := mem.At("load 1T", 8)
	if memload.Mean < l2load.Mean*0.85 {
		t.Errorf("Figure 6: mem read %.2f should match L2 read %.2f", memload.Mean, l2load.Mean)
	}
	l2store, _ := l2.At("store 1T", 16)
	memstore, _ := mem.At("store 1T", 16)
	if memstore.Mean >= l2store.Mean/2 {
		t.Errorf("Figure 6: mem store %.2f should be far below L2 store %.2f", memstore.Mean, l2store.Mean)
	}
}

func TestSPEMemoryShape(t *testing.T) {
	p := fastParams()
	res, err := SPEMemory(p, DMAGet, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != len(SPECounts) {
		t.Fatalf("%d curves, want %d", len(res.Curves), len(SPECounts))
	}
	one, _ := res.At("1 SPE", 16384)
	two, _ := res.At("2 SPE", 16384)
	if two.Mean < one.Mean*1.5 {
		t.Errorf("2 SPEs (%.1f) must nearly double 1 SPE (%.1f)", two.Mean, one.Mean)
	}
	// 128-byte elements degrade relative to 16 KB: per-command setup
	// (~30 cycles for 128 bytes) caps them at ~8.4 GB/s.
	small, _ := res.At("1 SPE", 128)
	if small.Mean > one.Mean*0.85 {
		t.Errorf("128B (%.1f) must degrade vs 16KB (%.1f)", small.Mean, one.Mean)
	}
}

func TestSPEMemoryListExtension(t *testing.T) {
	p := fastParams()
	res, err := SPEMemory(p, DMAGet, true)
	if err != nil {
		t.Fatal(err)
	}
	// Lists keep small-element bandwidth close to large-element.
	small, _ := res.At("1 SPE", 128)
	big, _ := res.At("1 SPE", 16384)
	if small.Mean < big.Mean*0.7 {
		t.Errorf("list GET 128B (%.1f) should stay near 16KB (%.1f)", small.Mean, big.Mean)
	}
}

func TestSPELocalStoreShape(t *testing.T) {
	res, err := SPELocalStore(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	peak, _ := res.At("load", 16)
	if peak.Mean < 33 || peak.Mean > 34 {
		t.Errorf("LS 16B load = %.2f, want 33.6 peak", peak.Mean)
	}
	small, _ := res.At("load", 1)
	if small.Mean >= peak.Mean {
		t.Error("narrow LS accesses must be slower than quadword")
	}
}

func TestSPEPairDistanceSmallVariation(t *testing.T) {
	p := fastParams()
	p.Runs = 3
	res, err := SPEPairDistance(p)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Curve("16KB elements")
	if c == nil || len(c.Points) != 7 {
		t.Fatal("expected 7 partner points")
	}
	// §4.2.3: with a single active pair there are no conflicts; variation
	// across partners/layouts stays small (the paper: under 2 GB/s).
	min, max := 1e9, 0.0
	for _, pt := range c.Points {
		if pt.Summary.Mean < min {
			min = pt.Summary.Mean
		}
		if pt.Summary.Mean > max {
			max = pt.Summary.Mean
		}
	}
	if max-min > 2 {
		t.Errorf("pair distance variation %.2f GB/s, paper says under 2", max-min)
	}
	if min < 30 {
		t.Errorf("single pair min %.2f GB/s, want near peak", min)
	}
}

func TestStreamingMonotone(t *testing.T) {
	p := fastParams()
	res, err := Streaming(p)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := res.At("aggregate", 1)
	two, _ := res.At("aggregate", 2)
	four, _ := res.At("aggregate", 4)
	if !(one.Mean < two.Mean && two.Mean < four.Mean) {
		t.Errorf("streaming should scale with parallel streams: %.1f %.1f %.1f",
			one.Mean, two.Mean, four.Mean)
	}
}

func TestResultAccessors(t *testing.T) {
	res, err := SPELocalStore(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve("load") == nil {
		t.Fatal("missing load curve")
	}
	if res.Curve("bogus") != nil {
		t.Fatal("bogus curve must be nil")
	}
	if _, ok := res.At("load", 999); ok {
		t.Fatal("bogus x must not resolve")
	}
}

func TestPipelineMovesData(t *testing.T) {
	sys := cell.New(cell.DefaultConfig())
	const volume = 128 << 10
	src := sys.Alloc(volume, 128)
	dst := sys.Alloc(volume, 128)
	payload := make([]byte, volume)
	for i := range payload {
		payload[i] = byte(i*11 + 5)
	}
	sys.Mem.RAM().Write(src, payload)
	pl := NewPipeline(sys, 0, 4, src, dst, volume)
	pl.Start()
	sys.Run()
	if !pl.Done().Fired() {
		t.Fatal("pipeline did not complete")
	}
	got := make([]byte, volume)
	sys.Mem.RAM().Read(dst, got)
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d: got %d want %d (pipeline must move data intact)", i, got[i], payload[i])
		}
	}
	if pl.Bandwidth() <= 0 {
		t.Fatal("pipeline bandwidth must be positive")
	}
}

func TestPipelineSingleStage(t *testing.T) {
	sys := cell.New(cell.DefaultConfig())
	const volume = 64 << 10
	src := sys.Alloc(volume, 128)
	dst := sys.Alloc(volume, 128)
	sys.Mem.RAM().Write(src, []byte("single stage pipeline"))
	pl := NewPipeline(sys, 3, 1, src, dst, volume)
	pl.Start()
	sys.Run()
	got := make([]byte, 21)
	sys.Mem.RAM().Read(dst, got)
	if string(got) != "single stage pipeline" {
		t.Fatalf("dst holds %q", got)
	}
}

func TestPipelineBadGeometryPanics(t *testing.T) {
	sys := cell.New(cell.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range pipeline should panic")
		}
	}()
	NewPipeline(sys, 6, 4, 0, 0, 16384)
}

func TestFullExperimentFunctions(t *testing.T) {
	// Exercise the complete experiment entry points (sweep structure,
	// labels, x axes) at minimum volume.
	p := fastParams()
	p.Runs = 1
	p.BytesPerSPE = 128 << 10

	sync, err := SPEPairSync(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sync.Curves) != len(SyncIntervals) {
		t.Fatalf("pair-sync has %d curves, want %d", len(sync.Curves), len(SyncIntervals))
	}
	if s, ok := sync.At("all", 16384); !ok || s.Mean < 25 {
		t.Fatalf("pair-sync 'all' @16KB = %+v", s)
	}

	couples, err := SPECouples(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(couples.Curves) != 3 {
		t.Fatalf("couples has %d curves, want 3", len(couples.Curves))
	}

	cycle, err := SPECycle(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := cycle.At("2 SPEs", 128); !ok || s.Mean < 25 {
		t.Fatalf("cycle list @128B should stay near peak, got %+v", s)
	}
}

func TestForEachRunParallelPath(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	p := DefaultParams()
	p.Runs = 8
	got := forEachRun(p, func(run int) float64 { return float64(run * run) })
	for r := 0; r < p.Runs; r++ {
		if got[r] != float64(r*r) {
			t.Fatalf("run %d produced %v", r, got[r])
		}
	}
}

func TestDMAOpStrings(t *testing.T) {
	if DMAGet.String() != "GET" || DMAPut.String() != "PUT" || DMACopy.String() != "GET+PUT" {
		t.Fatal("DMAOp strings wrong")
	}
	if KernelDot.String() != "dot" || StreamTriad.String() != "triad" {
		t.Fatal("kernel strings wrong")
	}
	for _, l := range []CacheLevel{LevelL1, LevelL2, LevelMem} {
		if l.String() == "?" {
			t.Fatal("cache level string missing")
		}
	}
}

func TestParallelHarnessDeterministic(t *testing.T) {
	// The experiment harness must produce identical numbers whether runs
	// execute sequentially or on several goroutines: each run owns its
	// engine, so only wall-clock time may differ.
	p := fastParams()
	p.Runs = 4
	p.BytesPerSPE = 256 << 10
	run := func(procs int) []float64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return forEachRun(p, func(r int) float64 {
			return runCouples(p, r, 8, 16384, false)
		})
	}
	seq := run(1)
	par := run(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("run %d differs: sequential %v vs parallel %v", i, seq[i], par[i])
		}
	}
}
