package core

import (
	"fmt"

	"cellbe/internal/cell"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
	"cellbe/internal/stats"
)

// streamBlock is the pipeline granularity: one maximum-size DMA.
const streamBlock = 16 * 1024

// signalCost approximates an SPE-to-SPE signal notification (a small DMA
// to a flag plus the channel reads around it).
const signalCost = 64

// Pipeline wires count SPEs (starting at logical index first) into a
// streaming pipeline: stage 0 GETs blocks from src, every stage PUTs
// blocks into its successor's local store, and the last stage PUTs to
// dst. Double buffering overlaps each stage's inbound and outbound
// transfers, and handshaking uses credit/full mailboxes.
type Pipeline struct {
	sys      *cell.System
	first    int
	count    int
	src, dst int64
	volume   int64

	credits []*spe.Mailbox // credits[i]: stage i+1 -> stage i
	fulls   []*spe.Mailbox // fulls[i]: stage i-1 -> stage i
	done    *sim.Signal
	endTime sim.Time
}

// NewPipeline builds (but does not start) a pipeline over
// sys.SPEs[first:first+count] moving volume bytes from src to dst in main
// memory. volume must be a multiple of the 16 KB block size.
func NewPipeline(sys *cell.System, first, count int, src, dst, volume int64) *Pipeline {
	if count < 1 || first < 0 || first+count > len(sys.SPEs) {
		panic("core: bad pipeline geometry")
	}
	if volume <= 0 || volume%streamBlock != 0 {
		panic("core: pipeline volume must be a multiple of 16 KB")
	}
	pl := &Pipeline{
		sys: sys, first: first, count: count,
		src: src, dst: dst, volume: volume,
		done: sim.NewSignal(sys.Eng),
	}
	for i := 0; i < count; i++ {
		pl.credits = append(pl.credits, spe.NewMailbox(sys.Eng, 4))
		pl.fulls = append(pl.fulls, spe.NewMailbox(sys.Eng, 4))
	}
	return pl
}

// Start spawns the stage kernels. Completion fires the Done signal.
func (pl *Pipeline) Start() {
	blocks := pl.volume / streamBlock
	for s := 0; s < pl.count; s++ {
		s := s
		idx := pl.first + s
		pl.sys.SPEs[idx].Run(fmt.Sprintf("stage%d", s), func(ctx *spe.Context) {
			pl.stage(ctx, s, blocks)
			if s == pl.count-1 {
				pl.endTime = ctx.Decrementer()
				pl.done.Fire()
			}
		})
	}
	// Prime two credits per stage link: each stage has two inbound
	// buffers free initially.
	for s := 0; s < pl.count-1; s++ {
		pl.credits[s].TryWrite(0)
		pl.credits[s].TryWrite(1)
	}
}

// Done returns the completion signal of the pipeline.
func (pl *Pipeline) Done() *sim.Signal { return pl.done }

// EndTime returns the cycle at which the last block left the pipeline.
func (pl *Pipeline) EndTime() sim.Time { return pl.endTime }

// Bandwidth returns the end-to-end throughput in GB/s after completion.
func (pl *Pipeline) Bandwidth() float64 {
	return pl.sys.GBps(pl.volume, pl.endTime)
}

// stage runs one pipeline stage. Inbound buffers live at LS offsets 0 and
// 16 KB; data is pushed downstream into the successor's inbound buffers.
// Tag 2+b tracks the outbound PUT of buffer b so the next reuse of that
// buffer can wait for it (the delayed-sync discipline of the paper).
func (pl *Pipeline) stage(ctx *spe.Context, s int, blocks int64) {
	last := s == pl.count-1
	firstStage := s == 0
	for blk := int64(0); blk < blocks; blk++ {
		b := int(blk % 2)
		if firstStage {
			// Buffer b is being refilled; its previous outbound PUT
			// must have retired (it shares the LS region).
			if blk >= 2 {
				ctx.WaitTag(2 + b)
			}
			ctx.Get(b*streamBlock, pl.src+blk*streamBlock, streamBlock, b)
			ctx.WaitTag(b)
		} else {
			// Upstream pushes into our buffer b and then signals.
			ctx.Wait(signalCost)
			if v := pl.fulls[s].Read(ctx.Process); int(v) != b {
				panic("core: pipeline handshake out of order")
			}
		}
		if last {
			ctx.Put(b*streamBlock, pl.dst+blk*streamBlock, streamBlock, 2+b)
			ctx.WaitTag(2 + b)
		} else {
			// Wait for the downstream buffer b to be free, push, then
			// signal full downstream; completion of the PUT is what
			// lets us signal, so wait the tag first.
			ctx.Wait(signalCost)
			if v := pl.credits[s].Read(ctx.Process); int(v) != b {
				panic("core: pipeline credit out of order")
			}
			ctx.Put(b*streamBlock, pl.sys.LSEA(pl.first+s+1, b*streamBlock), streamBlock, 2+b)
			ctx.WaitTag(2 + b)
			ctx.Wait(signalCost)
			pl.fulls[s+1].Write(ctx.Process, uint32(b))
		}
		if !firstStage {
			// Our inbound buffer b is consumed; return the credit.
			ctx.Wait(signalCost)
			pl.credits[s-1].Write(ctx.Process, uint32(b))
		}
	}
	if last {
		return
	}
}

// Streaming reproduces the paper's §1/§5 guidance: a single data stream
// through all 8 SPEs versus two independent 4-SPE streams (and the other
// splits). The x axis is the number of parallel streams; total volume
// scales with streams (weak scaling). Two 4-SPE streams beat one 8-SPE
// stream because memory is read by two SPEs concurrently, which Figure 8
// shows is far more efficient than one.
func Streaming(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "streaming",
		Title:  "Streaming: 1x8 SPEs vs 2x4 SPEs vs 4x2 SPEs (§1, §5)",
		XLabel: "parallel streams (8 SPEs total)",
		YLabel: "GB/s end-to-end",
	}
	streamCounts := []int{1, 2, 4}
	series := stats.NewSeries("aggregate", streamCounts)
	for _, streams := range streamCounts {
		streams := streams
		addRuns(p, series, streams, func(run int) float64 {
			return runStreaming(p, run, streams)
		})
	}
	res.Curves = append(res.Curves, CurveFromSeries(series))
	return res, nil
}

func runStreaming(p Params, run, streams int) float64 {
	sys := p.newSystem(run)
	perStream := cell.NumSPEs / streams
	volume := p.BytesPerSPE
	pls := make([]*Pipeline, streams)
	for st := 0; st < streams; st++ {
		src := sys.Alloc(volume, 1<<16)
		dst := sys.Alloc(volume, 1<<16)
		pls[st] = NewPipeline(sys, st*perStream, perStream, src, dst, volume)
		pls[st].Start()
	}
	sys.Run()
	var lastEnd sim.Time
	for _, pl := range pls {
		if !pl.Done().Fired() {
			panic("core: pipeline did not finish")
		}
		if pl.EndTime() > lastEnd {
			lastEnd = pl.EndTime()
		}
	}
	return sys.GBps(int64(streams)*volume, lastEnd)
}
