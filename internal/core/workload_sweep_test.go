package core

// Sweep-path coverage for the workload library (gups, qcd, md, stream).
// The pattern interpreter is a coroutine kernel, so these kinds are
// declared cold-path: System.Snapshot refuses them with
// ErrNotSnapshottable and the scheduler's Job.snapshot() falls back to
// booting every grid point from scratch. The tests here pin both halves
// of that contract — the refusal is typed, and the fallback produces
// exactly what a hand-rolled cold loop produces — plus the allocation
// discipline of the cold interpreter itself.

import (
	"errors"
	"testing"

	"cellbe/internal/cell"
	"cellbe/internal/perfctr"
)

// workloadSweepSpecs is one small grid per workload kind, sized so the
// whole differential stays fast under -race.
func workloadSweepSpecs() []SweepSpec {
	return []SweepSpec{
		{Scenario: "gups", SPEs: 4, Op: "both", Chunks: []int{8, 64}, Seeds: []int64{0, 3}, Volume: 16 << 10},
		{Scenario: "qcd", SPEs: 4, Chunks: []int{1024, 4096}, Seeds: []int64{0, 3}, Volume: 64 << 10},
		{Scenario: "md", SPEs: 4, Chunks: []int{512}, Seeds: []int64{0, 3}, Volume: 64 << 10},
		{Scenario: "stream", SPEs: 4, Op: "triad", Chunks: []int{4096, 16384}, Seeds: []int64{3}, Volume: 64 << 10},
	}
}

// TestWorkloadSweepColdFallback is the clone-vs-cold differential for the
// pattern family: every workload kind must (a) refuse to snapshot with a
// typed ErrNotSnapshottable, and (b) sweep through the scheduler — which
// hits that refusal and silently downgrades the job to per-point cold
// boots — with results identical to a manual cold loop over the same
// grid. If someone later makes the interpreter snapshottable, (a) fails
// and the differential in snapshot_test.go takes over; if the fallback
// breaks, (b) fails.
func TestWorkloadSweepColdFallback(t *testing.T) {
	for _, spec := range workloadSweepSpecs() {
		spec := spec
		t.Run(spec.Scenario, func(t *testing.T) {
			t.Parallel()
			// (a) The kind is really cold-path: the snapshot gate refuses it.
			tpl := cell.New(cell.DefaultConfig())
			defer tpl.Release()
			if _, err := spec.scenario(spec.Chunks[0]).Install(tpl); err != nil {
				t.Fatalf("install template: %v", err)
			}
			if _, err := tpl.Snapshot(); !errors.Is(err, cell.ErrNotSnapshottable) {
				t.Fatalf("Snapshot(%s) = %v, want ErrNotSnapshottable", spec.Scenario, err)
			}

			// (b) The scheduler sweep equals the hand-rolled cold loop.
			results, err := RunSweep(spec)
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			i := 0
			for _, chunk := range spec.Chunks {
				for _, seed := range spec.Seeds {
					res := results[i]
					i++
					if res.Err != nil {
						t.Fatalf("point chunk=%d seed=%d failed: %v", chunk, seed, res.Err)
					}
					cfg := cell.DefaultConfig()
					cfg.Layout = cell.RandomLayout(seed)
					sys := cell.New(cfg)
					sys.SetPerf(&perfctr.Counters{})
					total, err := spec.scenario(chunk).Install(sys)
					if err != nil {
						t.Fatalf("cold install chunk=%d: %v", chunk, err)
					}
					if err := sys.RunChecked(0); err != nil {
						t.Fatalf("cold run chunk=%d seed=%d: %v", chunk, seed, err)
					}
					st := sys.Bus.Stats()
					if res.Cycles != sys.Eng.Now() || res.Transfers != st.Transfers ||
						res.Commands != st.Commands || res.WaitCycles != st.WaitCycles ||
						res.GBps != sys.GBps(total, sys.Eng.Now()) {
						t.Errorf("chunk=%d seed=%d: sweep point diverged from cold reference\nsweep: %+v\ncold:  cycles=%d transfers=%d cmds=%d wait=%d gbps=%g",
							chunk, seed, res, sys.Eng.Now(), st.Transfers, st.Commands, st.WaitCycles, sys.GBps(total, sys.Eng.Now()))
					}
					sys.Release()
				}
			}
			if i != len(results) {
				t.Fatalf("sweep returned %d points, grid has %d", len(results), i)
			}
		})
	}
}

// TestWorkloadColdAllocParity is the alloc-accounting guard for the
// pattern family's cold path (the only path these kinds have — see the
// warm-path guard in sweep_smoke_test.go for the canonical kinds). Cold
// points pay a per-command allocation cost in the shared event machinery
// (that is exactly what the warm arena removes), so a flat-allocation
// invariant cannot hold here. The invariant that can: the pattern
// interpreter adds nothing on top. A GUPS "both" point and a mem "copy"
// point at the same chunk and volume issue the same number of DMA
// commands, so their *marginal* allocations per command — measured by
// differencing two volumes, which cancels all setup cost — must be at
// parity. An allocation sneaking into the interpreter's per-element loop
// (a per-slot slice, a formatted tag, a rand re-seed) breaks parity by
// thousands and trips this at once.
func TestWorkloadColdAllocParity(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement: skipped in -short mode")
	}
	point := func(sc cell.Scenario) float64 {
		return testing.AllocsPerRun(3, func() {
			sys := cell.New(cell.DefaultConfig())
			defer sys.Release()
			if _, err := sc.Install(sys); err != nil {
				t.Fatalf("install: %v", err)
			}
			if err := sys.RunChecked(0); err != nil {
				t.Fatalf("run: %v", err)
			}
		})
	}
	marginal := func(kind, op string) float64 {
		small := point(cell.Scenario{Kind: kind, SPEs: 4, Chunk: 64, Volume: 16 << 10, Op: op})
		big := point(cell.Scenario{Kind: kind, SPEs: 4, Chunk: 64, Volume: 64 << 10, Op: op})
		return big - small // allocs attributable to the extra 6144 commands
	}
	ref := marginal("mem", "copy")  // canonical kernel, 2 commands/element
	got := marginal("gups", "both") // pattern interpreter, 2 commands/element
	// 15% covers scheduler-state noise between the two shapes (different
	// address streams exercise different event-heap growth points).
	if limit := ref*1.15 + 256; got > limit {
		t.Fatalf("gups marginal allocations %.0f exceed canonical mem-copy reference %.0f (limit %.0f): the pattern interpreter allocates per element",
			got, ref, limit)
	}
	t.Logf("marginal allocs over 6144 extra commands: gups %.0f, mem reference %.0f", got, ref)
}
