package core

// Cross-chip extension: the paper's §5 closes with a warning — on a
// dual-Cell blade, SPEs of one job "could be allocated in different
// chips, and they would have to communicate through the IO, limited to
// 7 [GB/s]". This experiment quantifies it: the same active/passive SPE
// pair workload, with the partner on the local chip versus on the second
// chip behind the IOIF.

import (
	"fmt"

	"cellbe/internal/spe"
	"cellbe/internal/stats"
)

// CrossChip measures pair bandwidth (simultaneous GET+PUT, delayed sync)
// against an on-chip partner and a second-chip partner, across element
// sizes.
func CrossChip(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "cross-chip",
		Title:  "Extension (§5 warning): SPE pair bandwidth, on-chip vs across the IOIF",
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	for _, remote := range []bool{false, true} {
		label := "on-chip partner"
		if remote {
			label = "cross-chip partner"
		}
		series := stats.NewSeries(label, ChunkSizes)
		for _, chunk := range ChunkSizes {
			chunk, remote := chunk, remote
			addRuns(p, series, chunk, func(run int) float64 {
				return runCrossChip(p, run, chunk, remote)
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

func runCrossChip(p Params, run, chunk int, remote bool) float64 {
	sys := p.newSystem(run)
	peer := sys.LSEA(1, 0)
	if remote {
		peer = sys.RemoteLSEA(0, 0)
	}
	volume := p.BytesPerSPE
	a := newAggregate(sys)
	a.spawn(0, fmt.Sprintf("pair-remote=%v", remote), 2*volume, func(ctx *spe.Context) {
		pairStreamKernel(ctx, peer, volume, chunk, 0)
	})
	return a.run()
}
