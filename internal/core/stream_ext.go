package core

// The STREAM benchmark (McCalpin), which the paper's related-work section
// uses as its frame of reference ("much in a similar way as the STREAMS
// benchmark does in regular processors"), ported to SPEs: each SPE works a
// private slice of the arrays with double-buffered DMA, real
// single-precision arithmetic, and SIMD-rate compute costs. The four
// kernels are the classic Copy, Scale, Add and Triad.

import (
	"fmt"

	"cellbe/internal/sim"
	"cellbe/internal/spe"
	"cellbe/internal/stats"
)

// StreamKernel is one of the four STREAM operations.
type StreamKernel int

// The STREAM kernels.
const (
	StreamCopy  StreamKernel = iota // c[i] = a[i]
	StreamScale                     // b[i] = q*c[i]
	StreamAdd                       // c[i] = a[i]+b[i]
	StreamTriad                     // a[i] = b[i]+q*c[i]
)

func (k StreamKernel) String() string {
	switch k {
	case StreamCopy:
		return "copy"
	case StreamScale:
		return "scale"
	case StreamAdd:
		return "add"
	case StreamTriad:
		return "triad"
	}
	return "?"
}

// streams returns how many arrays the kernel reads and writes.
func (k StreamKernel) streams() (reads, writes int) {
	switch k {
	case StreamCopy, StreamScale:
		return 1, 1
	default:
		return 2, 1
	}
}

// STREAM measures the four kernels for 1 to 8 SPEs (weak scaling, private
// slices). Bandwidth counts bytes read plus bytes written, as McCalpin
// does.
func STREAM(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "stream",
		Title:  "STREAM (copy/scale/add/triad) on SPEs — extension after McCalpin",
		XLabel: "SPEs",
		YLabel: "GB/s",
	}
	for _, k := range []StreamKernel{StreamCopy, StreamScale, StreamAdd, StreamTriad} {
		series := stats.NewSeries(k.String(), SPECounts)
		for _, n := range SPECounts {
			k, n := k, n
			addRuns(p, series, n, func(run int) float64 {
				return runSTREAM(p, run, k, n)
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

func runSTREAM(p Params, run int, k StreamKernel, n int) float64 {
	sys := p.newSystem(run)
	slice := p.BytesPerSPE
	reads, writes := k.streams()
	var lastEnd sim.Time
	for i := 0; i < n; i++ {
		a := sys.Alloc(slice, 1<<16)
		b := sys.Alloc(slice, 1<<16)
		c := sys.Alloc(slice, 1<<16)
		fillF32(sys, a, int(slice), 1.0)
		fillF32(sys, b, int(slice), 2.0)
		fillF32(sys, c, int(slice), 3.0)
		sp := sys.SPEs[i]
		sp.Run(fmt.Sprintf("stream%d", i), func(ctx *spe.Context) {
			streamSliceKernel(ctx, k, a, b, c, slice)
			if e := ctx.Decrementer(); e > lastEnd {
				lastEnd = e
			}
		})
	}
	sys.Run()
	total := int64(n) * slice * int64(reads+writes)
	return sys.GBps(total, lastEnd)
}

// streamSliceKernel runs one SPE's STREAM slice: 16 KB blocks, double
// buffered (in0/in1 at slots 0..3, outputs at 4/5), compute charged at one
// cycle per 16-byte quadword op.
func streamSliceKernel(ctx *spe.Context, k StreamKernel, a, b, c int64, slice int64) {
	const block = 16384
	const q = float32(3.0)
	ls := ctx.SPE().LS()
	blocks := slice / block
	reads, _ := k.streams()

	// in/out EAs per kernel.
	var in0, in1, out int64
	switch k {
	case StreamCopy:
		in0, out = a, c
	case StreamScale:
		in0, out = c, b
	case StreamAdd:
		in0, in1, out = a, b, c
	case StreamTriad:
		in0, in1, out = b, c, a
	}

	issue := func(blk int64) {
		s := int(blk % 2)
		ctx.Get(s*block, in0+blk*block, block, s)
		if reads == 2 {
			ctx.Get((2+s)*block, in1+blk*block, block, 2+s)
		}
	}
	issue(0)
	for blk := int64(0); blk < blocks; blk++ {
		s := int(blk % 2)
		if blk+1 < blocks {
			issue(blk + 1)
		}
		mask := uint32(1 << s)
		if reads == 2 {
			mask |= 1 << (2 + s)
		}
		ctx.WaitTagMask(mask)
		// Output buffer s must be free of its previous PUT.
		if blk >= 2 {
			ctx.WaitTag(4 + s)
		}
		elems := block / 4
		oOff := (4 + s) * block
		for e := 0; e < elems; e++ {
			x := f32(ls, s*block+4*e)
			var v float32
			switch k {
			case StreamCopy:
				v = x
			case StreamScale:
				v = q * x
			case StreamAdd:
				v = x + f32(ls, (2+s)*block+4*e)
			case StreamTriad:
				v = x + q*f32(ls, (2+s)*block+4*e)
			}
			putf32(ls, oOff+4*e, v)
		}
		ctx.Wait(sim.Time(elems / 4)) // one quadword op per cycle
		ctx.Put(oOff, out+blk*block, block, 4+s)
	}
	ctx.WaitTagMask(1<<4 | 1<<5)
}
