package core

import (
	"fmt"

	"cellbe/internal/spe"
	"cellbe/internal/stats"
)

// SyncIntervals is the synchronization sweep of Figure 10: wait for the
// tag group after every command, every 2, ... every 32, or only once at
// the end (0).
var SyncIntervals = []int{1, 2, 4, 8, 16, 32, 0}

// SPEPairSync reproduces Figure 10: one active SPE transfers to and from a
// passive SPE's local store with DMA-elem commands, synchronizing after
// every N requests. Delaying synchronization until the end ("all") keeps
// the MFC queue saturated and reaches almost the 33.6 GB/s peak for
// elements of 1 KB and above.
func SPEPairSync(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "spe-pair-sync",
		Title:  "Impact of delayed DMA-elem synchronization in SPE-to-SPE transfers (Figure 10)",
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	for _, every := range p.syncIntervals() {
		label := "all"
		if every > 0 {
			label = fmt.Sprintf("every %d", every)
		}
		series := stats.NewSeries(label, p.chunkSizes())
		for _, chunk := range p.chunkSizes() {
			chunk, every := chunk, every
			addRuns(p, series, chunk, func(run int) float64 {
				return runPair(p, run, 0, 1, chunk, every)
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

// runPair measures one active/passive SPE pair (logical indices a and b).
func runPair(p Params, run, a, b, chunk, syncEvery int) float64 {
	sys := p.newSystem(run)
	volume := p.BytesPerSPE
	agg := newAggregate(sys)
	agg.spawn(a, fmt.Sprintf("pair-active%d", a), 2*volume, func(ctx *spe.Context) {
		pairStreamKernel(ctx, sys.LSEA(b, 0), volume, chunk, syncEvery)
	})
	return agg.run()
}

// SPEPairDistance measures the bandwidth between logical SPE 0 and every
// other logical SPE (§4.2.3): with a single active pair there are no ring
// conflicts, so the variation stays small regardless of physical distance.
func SPEPairDistance(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "spe-pair-distance",
		Title:  "SPE 0 to each other SPE, DMA-elem, delayed sync (§4.2.3)",
		XLabel: "partner logical SPE",
		YLabel: "GB/s",
	}
	partners := []int{1, 2, 3, 4, 5, 6, 7}
	series := stats.NewSeries("16KB elements", partners)
	for _, b := range partners {
		b := b
		addRuns(p, series, b, func(run int) float64 {
			return runPair(p, run, 0, b, 16384, 0)
		})
	}
	res.Curves = append(res.Curves, CurveFromSeries(series))
	return res, nil
}

// SPECouples reproduces Figures 12 and 13: one, two or four couples of
// SPEs, each couple one active SPE doing simultaneous GET+PUT with a
// passive partner. With 4 couples there are four concurrent bidirectional
// flows; physical placement decides how many ring segments collide, which
// is what spreads the min/max across runs.
func SPECouples(p Params, list bool) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	kind := "DMA-elem"
	if list {
		kind = "DMA-list"
	}
	res := &Result{
		Name:   "spe-couples",
		Title:  fmt.Sprintf("Couples of SPEs, %s (Figures 12, 13)", kind),
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	for _, n := range p.speCounts([]int{2, 4, 8}) {
		series := stats.NewSeries(fmt.Sprintf("%d SPEs", n), p.chunkSizes())
		for _, chunk := range p.chunkSizes() {
			n, chunk := n, chunk
			addRuns(p, series, chunk, func(run int) float64 {
				return runCouples(p, run, n, chunk, list)
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

func runCouples(p Params, run, nSPEs, chunk int, list bool) float64 {
	sys := p.newSystem(run)
	volume := p.BytesPerSPE
	agg := newAggregate(sys)
	for c := 0; c < nSPEs/2; c++ {
		active, passive := 2*c, 2*c+1
		peer := sys.LSEA(passive, 0)
		agg.spawn(active, fmt.Sprintf("couple%d", c), 2*volume, func(ctx *spe.Context) {
			if list {
				pairListKernel(ctx, peer, volume, chunk)
			} else {
				pairStreamKernel(ctx, peer, volume, chunk, 0)
			}
		})
	}
	return agg.run()
}

// SPECycle reproduces Figures 15 and 16: a ring of 2, 4 or 8 SPEs in which
// every SPE actively GETs from and PUTs to its logical neighbor. With more
// than 4 concurrent flows the four EIB rings saturate and aggregate
// bandwidth falls well below the couples experiment.
func SPECycle(p Params, list bool) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	kind := "DMA-elem"
	if list {
		kind = "DMA-list"
	}
	res := &Result{
		Name:   "spe-cycle",
		Title:  fmt.Sprintf("Cycle of SPEs, all active, %s (Figures 15, 16)", kind),
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	for _, n := range p.speCounts([]int{2, 4, 8}) {
		series := stats.NewSeries(fmt.Sprintf("%d SPEs", n), p.chunkSizes())
		for _, chunk := range p.chunkSizes() {
			n, chunk := n, chunk
			addRuns(p, series, chunk, func(run int) float64 {
				return runCycle(p, run, n, chunk, list)
			})
		}
		res.Curves = append(res.Curves, CurveFromSeries(series))
	}
	return res, nil
}

func runCycle(p Params, run, nSPEs, chunk int, list bool) float64 {
	sys := p.newSystem(run)
	volume := p.BytesPerSPE
	agg := newAggregate(sys)
	for i := 0; i < nSPEs; i++ {
		neighbor := (i + 1) % nSPEs
		peer := sys.LSEA(neighbor, 0)
		agg.spawn(i, fmt.Sprintf("cycle%d", i), 2*volume, func(ctx *spe.Context) {
			if list {
				pairListKernel(ctx, peer, volume, chunk)
			} else {
				pairStreamKernel(ctx, peer, volume, chunk, 0)
			}
		})
	}
	return agg.run()
}
