package core

import (
	"fmt"

	"cellbe/internal/ppe"
	"cellbe/internal/sim"
	"cellbe/internal/stats"
)

// CacheLevel selects the PPE experiment target: which memory level the
// traversed buffer fits in.
type CacheLevel int

// The three PPE bandwidth experiments of the paper.
const (
	LevelL1 CacheLevel = iota
	LevelL2
	LevelMem
)

func (l CacheLevel) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "Mem"
	}
	return "?"
}

// bufBytes returns the traversal buffer size for a level: half the L1 for
// the L1 experiment, half the L2 for the L2 experiment, and the
// main-memory volume otherwise.
func (p Params) bufBytes(level CacheLevel) int64 {
	cfg := p.config()
	switch level {
	case LevelL1:
		return int64(cfg.PPE.L1Bytes) / 2
	case LevelL2:
		return int64(cfg.PPE.L2Bytes) / 2
	default:
		return p.PPEBytes
	}
}

// PPEBandwidth reproduces Figures 3 (L1), 4 (L2) and 6 (main memory): the
// PPU runs a tight load/store/copy loop over a buffer sized for the chosen
// level, with 1 and 2 SMT threads, for element sizes 1 to 16 bytes. One
// warm-up lap precedes the timed laps, exactly as the paper does to avoid
// cold-start effects.
func PPEBandwidth(p Params, level CacheLevel) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	buf := p.bufBytes(level)
	res := &Result{
		Name:   "ppe-" + map[CacheLevel]string{LevelL1: "l1", LevelL2: "l2", LevelMem: "mem"}[level],
		Title:  fmt.Sprintf("PPE to %s: load/store/copy for 1 and 2 threads", level),
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	// PPE results do not depend on the SPE layout, but we keep the same
	// multi-run structure (results are deterministic, so Runs collapses
	// to 1 here to avoid wasted work).
	for _, op := range []ppe.Op{ppe.Load, ppe.Store, ppe.Copy} {
		for _, threads := range []int{1, 2} {
			series := stats.NewSeries(fmt.Sprintf("%s %dT", op, threads), p.elemSizes())
			for _, elem := range p.elemSizes() {
				bw := runPPEKernel(p, op, threads, elem, buf)
				series.Add(elem, bw)
			}
			res.Curves = append(res.Curves, CurveFromSeries(series))
		}
	}
	return res, nil
}

// runPPEKernel measures one configuration: op with the given element size
// on 1 or 2 threads over private buffers of buf bytes each, warm-up lap
// plus timed laps. Returns aggregate GB/s across threads.
func runPPEKernel(p Params, op ppe.Op, threads, elem int, buf int64) float64 {
	sys := p.newSystem(0)
	// Timed laps: more for small buffers so timing is stable.
	laps := int64(1)
	if buf <= 1<<20 {
		laps = (4 << 20) / buf
	}
	var slowest sim.Time
	for th := 0; th < threads; th++ {
		th := th
		src := sys.Alloc(buf, 128)
		dst := sys.Alloc(buf, 128)
		sys.PPE.Spawn(th, fmt.Sprintf("ppe%d", th), func(t *ppe.Thread) {
			lap := func() {
				switch op {
				case ppe.Load:
					t.StreamLoad(src, buf, elem)
				case ppe.Store:
					t.StreamStore(src, buf, elem)
				case ppe.Copy:
					t.StreamCopy(src, dst, buf, elem)
				}
			}
			lap() // warm-up
			start := t.Now()
			for i := int64(0); i < laps; i++ {
				lap()
			}
			if el := t.Now() - start; el > slowest {
				slowest = el
			}
		})
	}
	sys.Run()
	bytes := int64(threads) * buf * laps
	if op == ppe.Copy {
		bytes *= 2
	}
	return sys.GBps(bytes, slowest)
}
