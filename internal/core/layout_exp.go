package core

import (
	"fmt"

	"cellbe/internal/cell"
	"cellbe/internal/sim"
	"cellbe/internal/stats"
	"cellbe/internal/trace"
)

// LayoutTimeline renders the mechanism behind the paper's layout variance
// (Figures 13 and 16): it probes Params.Runs layouts of the 8-SPE cycle
// scenario, picks the best and the worst by sustained bandwidth, then
// reruns both with the metrics sampler attached and reports their EIB
// bandwidth and wait-per-transfer *timelines* on a shared cycle axis. A
// lucky layout holds a flat high-bandwidth line; an unlucky one shows the
// sustained ring-segment conflicts — visible here as elevated per-transfer
// wait — that end-of-run aggregates can only hint at.
func LayoutTimeline(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	const chunk = 4096
	scenario := cell.Scenario{
		Kind:   "cycle",
		SPEs:   cell.NumSPEs,
		Chunk:  chunk,
		Volume: p.BytesPerSPE,
		Op:     "get",
	}

	// Probe pass: aggregate bandwidth per layout seed, no tracing.
	type probe struct {
		seed   int64
		gbps   float64
		cycles sim.Time
	}
	var best, worst probe
	for r := 0; r < p.Runs; r++ {
		sys := p.newSystem(r)
		total, err := scenario.Install(sys)
		if err != nil {
			return nil, err
		}
		if err := sys.RunChecked(0); err != nil {
			return nil, err
		}
		pr := probe{seed: p.FirstSeed + int64(r), gbps: sys.GBps(total, sys.Eng.Now()), cycles: sys.Eng.Now()}
		if r == 0 || pr.gbps > best.gbps {
			best = pr
		}
		if r == 0 || pr.gbps < worst.gbps {
			worst = pr
		}
	}

	// One shared sampling interval, sized off the slower run so both
	// timelines get comparable resolution on the same axis (~64 samples).
	maxCyc := best.cycles
	if worst.cycles > maxCyc {
		maxCyc = worst.cycles
	}
	interval := maxCyc / 64
	if interval < 1000 {
		interval = 1000
	}

	rerun := func(seed int64) (*trace.Timeseries, error) {
		cfg := p.config()
		cfg.Layout = cell.RandomLayout(seed)
		if cfg.Faults.Enabled() && cfg.FaultSeed == 0 {
			cfg.FaultSeed = seed
		}
		sys := cell.New(cfg)
		sampler := sys.StartMetrics(interval)
		if _, err := scenario.Install(sys); err != nil {
			return nil, err
		}
		if err := sys.RunChecked(0); err != nil {
			return nil, err
		}
		return sampler.Timeseries(), nil
	}
	bestTS, err := rerun(best.seed)
	if err != nil {
		return nil, err
	}
	worstTS, err := rerun(worst.seed)
	if err != nil {
		return nil, err
	}

	curves := func(label string, ts *trace.Timeseries) []Curve {
		cyc := ts.Column("cycle")
		gbps := ts.Column("eib_GBps")
		waits := ts.Column("eib_wait_cyc")
		xfers := ts.Column("eib_transfers")
		bw := Curve{Label: label + " GB/s"}
		wp := Curve{Label: label + " wait/xfer"}
		for i := range cyc {
			x := int(cyc[i] / 1000)
			bw.Points = append(bw.Points, Point{X: x, Summary: stats.Summarize([]float64{gbps[i]})})
			perXfer := 0.0
			if xfers[i] > 0 {
				perXfer = waits[i] / xfers[i]
			}
			wp.Points = append(wp.Points, Point{X: x, Summary: stats.Summarize([]float64{perXfer})})
		}
		return []Curve{bw, wp}
	}

	res := &Result{
		Name: "layout-timeline",
		Title: fmt.Sprintf("Cycle of 8 SPEs, %dB chunks: best (seed %d, %.1f GB/s) vs worst (seed %d, %.1f GB/s) layout timeline",
			chunk, best.seed, best.gbps, worst.seed, worst.gbps),
		XLabel: "kilocycle",
		YLabel: "GB/s | wait cycles per transfer",
	}
	res.Curves = append(res.Curves, curves("best-layout", bestTS)...)
	res.Curves = append(res.Curves, curves("worst-layout", worstTS)...)
	return res, nil
}
