package core

import (
	"math"
	"testing"

	"cellbe/internal/spe"
)

func TestDotKernelComputesCorrectValue(t *testing.T) {
	p := fastParams()
	sys := p.newSystem(0)
	const volume = 64 << 10
	x := sys.Alloc(volume, 1<<16)
	y := sys.Alloc(volume, 1<<16)
	// x[i] = 2, y[i] = 3 -> dot = 6 * nElems.
	buf := make([]byte, volume)
	for off := 0; off < volume; off += 4 {
		putf32(buf, off, 2)
	}
	sys.Mem.RAM().Write(x, buf)
	for off := 0; off < volume; off += 4 {
		putf32(buf, off, 3)
	}
	sys.Mem.RAM().Write(y, buf)

	var flops int64
	sys.SPEs[0].Run("dot", func(ctx *spe.Context) {
		flops = dotKernel(ctx, x, y, volume)
	})
	sys.Run()
	got := f32(sys.SPEs[0].LS(), 255*1024)
	want := float32(6 * volume / 4)
	if math.Abs(float64(got-want)) > 1 {
		t.Fatalf("dot = %v, want %v", got, want)
	}
	if flops != 2*(volume/4) {
		t.Fatalf("flops = %d, want %d", flops, 2*(volume/4))
	}
}

func TestMatMulKernelFlops(t *testing.T) {
	p := fastParams()
	sys := p.newSystem(0)
	const volume = 128 << 10 // 4 tile pairs
	a := sys.Alloc(volume, 1<<16)
	fillF32(sys, a, volume, 1.0)
	var flops int64
	sys.SPEs[0].Run("mm", func(ctx *spe.Context) {
		flops = matMulKernel(ctx, a, volume)
	})
	sys.Run()
	wantPairs := int64(volume / (2 * 16384))
	if flops != wantPairs*2*64*64*64 {
		t.Fatalf("flops = %d, want %d", flops, wantPairs*2*64*64*64)
	}
}

func TestComputeKernelsShape(t *testing.T) {
	p := fastParams()
	p.Runs = 1
	p.BytesPerSPE = 512 << 10
	res, err := ComputeKernels(p)
	if err != nil {
		t.Fatal(err)
	}
	// Dot product is bandwidth-bound: 8 SPEs add little over 4.
	dot4, _ := res.At("dot", 4)
	dot8, _ := res.At("dot", 8)
	if dot8.Mean > dot4.Mean*1.35 {
		t.Errorf("dot should saturate with memory bandwidth: 4 SPEs %.1f, 8 SPEs %.1f GFLOPS",
			dot4.Mean, dot8.Mean)
	}
	// Matmul is compute-bound: 8 SPEs ~ 2x of 4.
	mm4, _ := res.At("matmul", 4)
	mm8, _ := res.At("matmul", 8)
	if mm8.Mean < mm4.Mean*1.7 {
		t.Errorf("matmul should scale with SPEs: 4 SPEs %.1f, 8 SPEs %.1f GFLOPS",
			mm4.Mean, mm8.Mean)
	}
	// Matmul per SPE approaches the 16.8 GFLOPS SPU peak.
	mm1, _ := res.At("matmul", 1)
	if mm1.Mean < 10 || mm1.Mean > 17 {
		t.Errorf("1-SPE matmul %.1f GFLOPS, want near the 16.8 peak", mm1.Mean)
	}
}

func TestDMALatencyShape(t *testing.T) {
	p := fastParams()
	p.Runs = 2
	res, err := DMALatency(p)
	if err != nil {
		t.Fatal(err)
	}
	lsSmall, _ := res.At("LS-to-LS", 128)
	memSmall, _ := res.At("memory", 128)
	if memSmall.Mean <= lsSmall.Mean {
		t.Errorf("memory latency (%.0f) must exceed LS-to-LS (%.0f)", memSmall.Mean, lsSmall.Mean)
	}
	lsBig, _ := res.At("LS-to-LS", 16384)
	if lsBig.Mean <= lsSmall.Mean {
		t.Error("bigger transfers must take longer")
	}
	// Small LS-to-LS round trip is on the order of 100-300 cycles.
	if lsSmall.Mean < 50 || lsSmall.Mean > 500 {
		t.Errorf("128B LS-to-LS latency %.0f cycles implausible", lsSmall.Mean)
	}
}
