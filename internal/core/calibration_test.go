package core

// Calibration tests: these pin the simulator to the paper's headline
// numbers (within tolerance). They are the ground truth for the model
// constants in the component configs — if one fails after a model change,
// the reproduction has drifted.

import (
	"testing"

	"cellbe/internal/cell"
	"cellbe/internal/spe"
)

// pairBandwidth measures one active SPE doing GET+PUT with a passive
// partner, as in §4.2.3.
func pairBandwidth(t *testing.T, chunk int, syncEvery int) float64 {
	t.Helper()
	sys := cell.New(cell.DefaultConfig())
	const volume = 2 << 20
	a := newAggregate(sys)
	a.spawn(0, "active", 2*volume, func(ctx *spe.Context) {
		pairStreamKernel(ctx, sys.LSEA(1, 0), volume, chunk, syncEvery)
	})
	return a.run()
}

func TestCalibrationPairPeak(t *testing.T) {
	// §4.2.3: a single SPE pair with delayed sync reaches almost the
	// 33.6 GB/s peak for elements of 1024 bytes and above.
	for _, chunk := range []int{1024, 4096, 16384} {
		got := pairBandwidth(t, chunk, 0)
		if got < 29 || got > 34 {
			t.Errorf("pair %dB: %.2f GB/s, want ~33.6 (>=29)", chunk, got)
		}
	}
}

func TestCalibrationPairSmallChunksDegrade(t *testing.T) {
	// §4.2.3: below 1024 bytes DMA-elem degrades significantly.
	small := pairBandwidth(t, 128, 0)
	big := pairBandwidth(t, 4096, 0)
	if small > big/2 {
		t.Errorf("128B pair %.2f GB/s vs 4KB %.2f: want < half", small, big)
	}
}

func TestCalibrationSyncEveryRequestHurts(t *testing.T) {
	// Figure 10: synchronizing after every request is much slower than
	// delaying sync, especially for 1 KB - 8 KB elements.
	delayed := pairBandwidth(t, 2048, 0)
	eager := pairBandwidth(t, 2048, 1)
	if eager > delayed*0.75 {
		t.Errorf("sync-every-1 %.2f GB/s vs delayed %.2f: want significant drop", eager, delayed)
	}
}

// memBandwidth measures n SPEs streaming against main memory (Figure 8).
func memBandwidth(t *testing.T, n int, chunk int, op DMAOp) float64 {
	t.Helper()
	sys := cell.New(cell.DefaultConfig())
	const volume = 2 << 20
	a := newAggregate(sys)
	for i := 0; i < n; i++ {
		i := i
		base := sys.Alloc(volume, 1<<16)
		dst := base
		counted := int64(volume)
		if op == DMACopy {
			dst = sys.Alloc(volume, 1<<16)
			counted = 2 * volume
		}
		a.spawn(i, "mem", counted, func(ctx *spe.Context) {
			memStreamKernel(ctx, op, base, dst, volume, chunk)
		})
	}
	return a.run()
}

func TestCalibrationSingleSPEMemory(t *testing.T) {
	// Figure 8: one SPE sustains only ~10 GB/s regardless of operation
	// (60% of the 16.8 GB/s MIC peak).
	for _, op := range []DMAOp{DMAGet, DMAPut, DMACopy} {
		got := memBandwidth(t, 1, 16384, op)
		if got < 8 || got > 12.5 {
			t.Errorf("1 SPE %v: %.2f GB/s, want ~10", op, got)
		}
	}
}

func TestCalibrationTwoSPEsDoubleMemory(t *testing.T) {
	// Figure 8: two SPEs reach ~20 GB/s, exceeding the single-bank
	// 16.8 GB/s because both banks are used.
	got := memBandwidth(t, 2, 16384, DMAGet)
	if got < 17 || got > 23 {
		t.Errorf("2 SPEs GET: %.2f GB/s, want ~20", got)
	}
}

func TestCalibrationEightSPEsDropSlightly(t *testing.T) {
	four := memBandwidth(t, 4, 16384, DMAGet)
	eight := memBandwidth(t, 8, 16384, DMAGet)
	if eight > four {
		t.Errorf("8 SPEs (%.2f) should not beat 4 SPEs (%.2f): EIB saturation", eight, four)
	}
	if eight < four*0.6 {
		t.Errorf("8 SPEs (%.2f) dropped too far below 4 SPEs (%.2f)", eight, four)
	}
}

func TestCalibrationCopyTops23(t *testing.T) {
	got := memBandwidth(t, 4, 16384, DMACopy)
	if got < 19 || got > 25 {
		t.Errorf("4 SPEs copy: %.2f GB/s, want ~23", got)
	}
}

func couplesBandwidth(t *testing.T, run, nSPEs, chunk int, list bool) float64 {
	t.Helper()
	p := DefaultParams()
	p.BytesPerSPE = 1 << 20
	return runCouples(p, run, nSPEs, chunk, list)
}

func TestCalibrationCouplesScaling(t *testing.T) {
	// Figure 12: 1 and 2 couples reach (near) peak; 4 couples average
	// around 95 GB/s (70% of the 134.4 peak).
	if got := couplesBandwidth(t, 0, 2, 16384, false); got < 30 {
		t.Errorf("1 couple: %.1f GB/s, want ~33.6", got)
	}
	if got := couplesBandwidth(t, 0, 4, 16384, false); got < 60 {
		t.Errorf("2 couples: %.1f GB/s, want ~67", got)
	}
	sum := 0.0
	const runs = 8
	for r := 0; r < runs; r++ {
		sum += couplesBandwidth(t, r, 8, 16384, false)
	}
	avg := sum / runs
	if avg < 80 || avg > 110 {
		t.Errorf("4 couples avg: %.1f GB/s, want ~95", avg)
	}
}

func TestCalibrationCouplesLayoutSpread(t *testing.T) {
	// Figure 13: physical placement of the SPEs spreads min/max widely.
	min, max := 1e9, 0.0
	for r := 0; r < 10; r++ {
		v := couplesBandwidth(t, r, 8, 16384, false)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 15 {
		t.Errorf("4-couple layout spread %.1f GB/s, want a wide min/max gap", max-min)
	}
}

func TestCalibrationListFlatAcrossSizes(t *testing.T) {
	// Figure 12(b): DMA-list bandwidth is constant across element sizes,
	// even at 128 bytes where DMA-elem collapses.
	small := couplesBandwidth(t, 0, 2, 128, true)
	big := couplesBandwidth(t, 0, 2, 16384, true)
	if small < big*0.9 {
		t.Errorf("DMA-list 128B %.1f vs 16KB %.1f: want flat", small, big)
	}
	elemSmall := couplesBandwidth(t, 0, 2, 128, false)
	if elemSmall > small/2 {
		t.Errorf("DMA-elem 128B %.1f should be far below DMA-list %.1f", elemSmall, small)
	}
}

func cycleBandwidth(t *testing.T, run, nSPEs int) float64 {
	t.Helper()
	p := DefaultParams()
	p.BytesPerSPE = 1 << 20
	return runCycle(p, run, nSPEs, 16384, false)
}

func TestCalibrationCycleSaturation(t *testing.T) {
	// Figure 15: a 2-SPE cycle reaches the 33.6 peak; 4 SPEs get ~50 of
	// 67.2; 8 SPEs ~70 of 134.4 — saturating the EIB is counterproductive
	// (lower than couples with half the active DMAs).
	if got := cycleBandwidth(t, 0, 2); got < 31 {
		t.Errorf("2-SPE cycle: %.1f GB/s, want ~33.6", got)
	}
	avg4, avg8 := 0.0, 0.0
	const runs = 8
	for r := 0; r < runs; r++ {
		avg4 += cycleBandwidth(t, r, 4)
		avg8 += cycleBandwidth(t, r, 8)
	}
	avg4 /= runs
	avg8 /= runs
	if avg4 < 42 || avg4 > 60 {
		t.Errorf("4-SPE cycle avg: %.1f GB/s, want ~50", avg4)
	}
	if avg8 < 58 || avg8 > 80 {
		t.Errorf("8-SPE cycle avg: %.1f GB/s, want ~70", avg8)
	}
	// And the cycle (all active) must underperform couples (half active)
	// at 8 SPEs.
	couples := 0.0
	for r := 0; r < runs; r++ {
		couples += couplesBandwidth(t, r, 8, 16384, false)
	}
	couples /= runs
	if avg8 >= couples {
		t.Errorf("8-SPE cycle %.1f must be below 8-SPE couples %.1f", avg8, couples)
	}
}

func TestCalibrationStreamingSplitWins(t *testing.T) {
	// §1/§5: two 4-SPE streams beat one 8-SPE stream because two SPEs
	// read memory concurrently.
	p := DefaultParams()
	p.BytesPerSPE = 1 << 20
	one := runStreaming(p, 0, 1)
	two := runStreaming(p, 0, 2)
	if two < one*1.4 {
		t.Errorf("2x4 streams %.1f GB/s vs 1x8 %.1f: want a clear win", two, one)
	}
}
