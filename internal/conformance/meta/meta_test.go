package meta

import (
	"math"
	"math/rand"
	"testing"

	"cellbe/internal/cell"
	"cellbe/internal/fault"
)

// cases returns how many random cases each invariant samples: enough to
// cover every scenario kind, fewer under -short.
func cases(t *testing.T) int {
	if testing.Short() {
		return 6
	}
	return 14
}

// mustRun runs a case and fails the test on any simulation error, after
// shrinking the case to the simplest one that still errors.
func mustRun(t *testing.T, c Case) Outcome {
	t.Helper()
	o, err := Run(c)
	if err != nil {
		min := Shrink(c, func(v Case) bool { _, e := Run(v); return e != nil })
		_, minErr := Run(min)
		t.Fatalf("case failed to run: %v\n  case:     %v\n  shrunk:   %v\n  shrunk error: %v", err, c, min, minErr)
	}
	return o
}

// failPair reports a violated pairwise relation, shrinking the case with
// the supplied predicate first.
func failPair(t *testing.T, name string, c Case, fails func(Case) bool, detail string) {
	t.Helper()
	min := Shrink(c, fails)
	t.Errorf("%s violated: %s\n  case:   %v\n  shrunk: %v", name, detail, c, min)
}

// TestRelabelInvariance: bandwidth must not depend on where the *idle*
// SPEs sit. Two layouts that place the active SPEs identically and only
// permute the rest must produce cycle-identical runs.
func TestRelabelInvariance(t *testing.T) {
	rnd := rand.New(rand.NewSource(101))
	fails := func(c Case) bool {
		a, err1 := Run(c)
		b, err2 := Run(relabelIdle(c))
		return err1 != nil || err2 != nil || a.Cycles != b.Cycles
	}
	tested := 0
	for i := 0; tested < cases(t); i++ {
		c := Generate(rnd)
		if len(UsedSPEs(c.Scenario)) > cell.NumSPEs-2 {
			continue // need at least two idle SPEs to swap
		}
		tested++
		a := mustRun(t, c)
		b := mustRun(t, relabelIdle(c))
		if a.Cycles != b.Cycles {
			failPair(t, "relabel invariance", c, fails,
				"permuting idle SPEs changed cycles")
			return
		}
	}
}

// relabelIdle swaps the physical slots of the first two idle logical
// SPEs, leaving every active SPE's placement untouched.
func relabelIdle(c Case) Case {
	used := UsedSPEs(c.Scenario)
	first := used[len(used)-1] + 1
	layout := c.Layout
	if layout == nil {
		layout = cell.RandomLayout(0)
	}
	v := c
	v.Layout = append([]int(nil), layout...)
	v.Layout[first], v.Layout[first+1] = v.Layout[first+1], v.Layout[first]
	return v
}

// TestClockLinearity: all model timing is expressed in cycles, so
// doubling the reporting clock must leave the cycle count bit-identical
// and scale GB/s by exactly two.
func TestClockLinearity(t *testing.T) {
	rnd := rand.New(rand.NewSource(202))
	for i := 0; i < cases(t); i++ {
		c := Generate(rnd)
		c.ClockGHz = 2.1
		double := c
		double.ClockGHz = 4.2
		a := mustRun(t, c)
		b := mustRun(t, double)
		if a.Cycles != b.Cycles {
			failPair(t, "clock linearity", c, func(v Case) bool {
				v.ClockGHz = 2.1
				w := v
				w.ClockGHz = 4.2
				x, err1 := Run(v)
				y, err2 := Run(w)
				return err1 != nil || err2 != nil || x.Cycles != y.Cycles
			}, "changing the clock changed the cycle count")
			return
		}
		if math.Abs(b.GBps-2*a.GBps) > 1e-9*a.GBps {
			t.Errorf("clock linearity violated: 2.1 GHz -> %.6f GB/s but 4.2 GHz -> %.6f GB/s (want exactly 2x)\n  case: %v",
				a.GBps, b.GBps, c)
			return
		}
	}
}

// TestChunkMonotonicity: for a memory stream, doubling the DMA element
// size (fewer, larger transfers; same bytes) must never reduce bandwidth
// beyond tolerance — the setup-cost physics behind every figure's rising
// edge.
func TestChunkMonotonicity(t *testing.T) {
	const tol = 0.05
	rnd := rand.New(rand.NewSource(303))
	pow2 := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	fails := func(c Case) bool {
		a, err1 := Run(c)
		b, err2 := Run(doubleChunk(c))
		return err1 != nil || err2 != nil || b.GBps < a.GBps*(1-tol)
	}
	for i := 0; i < cases(t); i++ {
		c := Generate(rnd)
		c.Scenario.Kind = "mem"
		c.Scenario.SPEs = 1 + rnd.Intn(4)
		c.Scenario.Op = []string{"get", "put"}[rnd.Intn(2)]
		c.Scenario.List = false
		c.Scenario.Ring = 0 // a drawn qcd case may carry a ring offset mem rejects
		c.Scenario.Chunk = pow2[rnd.Intn(len(pow2))]
		c.Scenario.Volume = 16384 * int64(8+rnd.Intn(17)) // multiple of both chunks
		a := mustRun(t, c)
		b := mustRun(t, doubleChunk(c))
		if b.GBps < a.GBps*(1-tol) {
			failPair(t, "chunk monotonicity", c, fails,
				"doubling the element size lost more than 5% bandwidth")
			return
		}
	}
}

func doubleChunk(c Case) Case {
	v := c
	v.Scenario.Chunk = c.Scenario.Chunk * 2
	return v
}

// TestFaultMonotonicity: fault injection delays work and must never make
// a run faster beyond the reordering tolerance.
func TestFaultMonotonicity(t *testing.T) {
	const tol = 0.02
	rnd := rand.New(rand.NewSource(404))
	fails := func(c Case) bool {
		clean := c
		clean.Faults = fault.Config{}
		a, err1 := Run(clean)
		b, err2 := Run(c)
		return err1 != nil || err2 != nil || b.GBps > a.GBps*(1+tol)
	}
	for i := 0; i < cases(t); i++ {
		c := Generate(rnd)
		c.Faults = GenerateFaults(rnd)
		clean := c
		clean.Faults = fault.Config{}
		a := mustRun(t, clean)
		b := mustRun(t, c)
		if b.GBps > a.GBps*(1+tol) {
			failPair(t, "fault monotonicity", c, fails,
				"injecting faults increased bandwidth")
			return
		}
	}
}

// TestConservation: every generated case — including faulty ones — must
// run to completion with the MFC teardown audit proving bytes requested
// equal bytes delivered (Run calls RunChecked, which ends in Verify).
func TestConservation(t *testing.T) {
	rnd := rand.New(rand.NewSource(505))
	for i := 0; i < cases(t); i++ {
		c := Generate(rnd)
		if i%2 == 1 {
			c.Faults = GenerateFaults(rnd)
		}
		o := mustRun(t, c)
		if o.Cycles <= 0 || o.Bytes <= 0 {
			t.Errorf("conservation run degenerate: cycles=%d bytes=%d\n  case: %v", o.Cycles, o.Bytes, c)
		}
		if o.GBps <= 0 || o.GBps > 250 {
			t.Errorf("bandwidth %f GB/s outside physical range\n  case: %v", o.GBps, c)
		}
	}
}

// TestListNeverSlower: grouping the same volume into DMA lists must never
// be materially slower than issuing DMA-elem commands — the paper's "use
// lists for small elements" rule as an inequality. Scoped to unsaturated
// scenarios (at most 4 concurrent bidirectional flows): under EIB
// saturation the elem/list ordering is contention luck, and the paper
// itself measures lists *slower* there (Figure 13's 60% vs 70%).
func TestListNeverSlower(t *testing.T) {
	const tol = 0.10
	rnd := rand.New(rand.NewSource(606))
	fails := func(c Case) bool {
		listed := c
		listed.Scenario.List = true
		a, err1 := Run(c)
		b, err2 := Run(listed)
		return err1 != nil || err2 != nil || b.GBps < a.GBps*(1-tol)
	}
	tested := 0
	for i := 0; tested < cases(t); i++ {
		c := Generate(rnd)
		if c.Scenario.Kind == "mem" && c.Scenario.Op == "copy" {
			continue // no list variant
		}
		if patternKind(c.Scenario.Kind) {
			continue // the pattern interpreter has no DMA-list variant
		}
		// Stay below ring saturation: every active SPE of a cycle or couple
		// runs a GET and a PUT flow, and the EIB fits four concurrent
		// transfers — so at most a 2-SPE cycle or 2 couples.
		if c.Scenario.Kind == "cycle" && c.Scenario.SPEs > 2 {
			c.Scenario.SPEs = 2
		}
		if c.Scenario.Kind == "couples" && c.Scenario.SPEs > 4 {
			c.Scenario.SPEs = 4
		}
		// The rule is about steady state: the list kernel double-buffers in
		// a smaller aperture than elem's eight slots, so a run of only a
		// few elements measures ramp-up, not the discipline.
		if c.Scenario.Volume < int64(c.Scenario.Chunk)*32 {
			c.Scenario.Volume = int64(c.Scenario.Chunk) * 32
		}
		tested++
		c.Scenario.List = false
		listed := c
		listed.Scenario.List = true
		a := mustRun(t, c)
		b := mustRun(t, listed)
		if b.GBps < a.GBps*(1-tol) {
			failPair(t, "list never slower", c, fails,
				"the DMA-list variant lost more than 10% against DMA-elem")
			return
		}
	}
}

// TestVolumeScaling: doubling the per-SPE volume must roughly double the
// cycle count — sublinear would mean the simulator invents bandwidth at
// scale, superlinear that steady state degrades with run length.
func TestVolumeScaling(t *testing.T) {
	rnd := rand.New(rand.NewSource(707))
	fails := func(c Case) bool {
		bigger := c
		bigger.Scenario.Volume = 2 * c.Scenario.Volume
		a, err1 := Run(c)
		b, err2 := Run(bigger)
		ratio := float64(b.Cycles) / float64(a.Cycles)
		return err1 != nil || err2 != nil || ratio < 1.4 || ratio > 2.6
	}
	tested := 0
	for i := 0; tested < cases(t); i++ {
		c := Generate(rnd)
		// Scope: linearity in volume is only a law when the run's XDR
		// footprint does not change shape with the volume. Workloads whose
		// regions scale with the volume AND stream both directions at once
		// (mem copy, stream, qcd's spinor field) hit bank-alignment
		// resonances: doubling the volume moves region bases across the
		// 3-in-10 XDR bank map, and measured ratios legitimately swing from
		// 1.2x to 3.2x at specific (SPEs, chunk) shapes. The LS-only kinds
		// (pair/couples/cycle), one-directional mem, and the fixed-region
		// workloads (gups' shared table, md's slab) are free of that and
		// must scale linearly.
		if c.Scenario.Kind == "qcd" || c.Scenario.Kind == "stream" ||
			(c.Scenario.Kind == "mem" && c.Scenario.Op == "copy") {
			continue
		}
		tested++
		// Start from enough elements that startup cost cannot dominate
		// the ratio. The pattern kinds split their volume into per-rep
		// phases with fixed halo and barrier overhead, so they converge
		// to linear much more slowly than the single-stream kernels.
		minElems := int64(16)
		if patternKind(c.Scenario.Kind) {
			minElems = 64
		}
		if c.Scenario.Volume/int64(c.Scenario.Chunk) < minElems {
			c.Scenario.Volume = int64(c.Scenario.Chunk) * minElems
		}
		bigger := c
		bigger.Scenario.Volume = 2 * c.Scenario.Volume
		a := mustRun(t, c)
		b := mustRun(t, bigger)
		ratio := float64(b.Cycles) / float64(a.Cycles)
		if ratio < 1.4 || ratio > 2.6 {
			failPair(t, "volume scaling", c, fails,
				"doubling the volume did not roughly double the cycles")
			return
		}
	}
}

// TestGUPSSeedAssignmentInvariance: GUPS aggregate bandwidth is a
// property of the *set* of per-SPE address streams, not of which SPE runs
// which stream — all lanes hash the same shared table with statistically
// identical streams, so permuting the AddrSeeds assignment across SPEs
// must leave bandwidth within a small tolerance. (Not bit-identical: the
// lanes sit at different EIB ramps, so a permutation reshuffles
// addresses across ramp positions; 5% bounds the contention luck.) A
// violation would mean a lane's identity leaked into its address stream —
// exactly the bug the layout-independent lane seeding exists to prevent.
func TestGUPSSeedAssignmentInvariance(t *testing.T) {
	const tol = 0.05
	rnd := rand.New(rand.NewSource(909))
	fails := func(c Case) bool {
		p := c
		p.Scenario.AddrSeeds = reverseSeeds(c.Scenario.AddrSeeds)
		a, err1 := Run(c)
		b, err2 := Run(p)
		return err1 != nil || err2 != nil || math.Abs(b.GBps-a.GBps) > a.GBps*tol
	}
	for i := 0; i < cases(t); i++ {
		spes := 2 + rnd.Intn(7)
		chunk := gupsChunks[rnd.Intn(len(gupsChunks))]
		seeds := make([]int64, spes)
		for j := range seeds {
			seeds[j] = 1 + rnd.Int63n(1<<30)
		}
		c := Case{
			Scenario: cell.Scenario{
				Kind: "gups", SPEs: spes, Chunk: chunk,
				// Enough elements per lane that stream statistics, not
				// per-lane luck, set the aggregate number.
				Volume:    int64(chunk) * 256,
				Op:        []string{"both", "get", "put"}[rnd.Intn(3)],
				AddrSeeds: seeds,
			},
			Layout: cell.RandomLayout(rnd.Int63n(1 << 30)),
		}
		perm := c
		perm.Scenario.AddrSeeds = append([]int64(nil), seeds...)
		rnd.Shuffle(spes, func(x, y int) {
			s := perm.Scenario.AddrSeeds
			s[x], s[y] = s[y], s[x]
		})
		a := mustRun(t, c)
		b := mustRun(t, perm)
		if math.Abs(b.GBps-a.GBps) > a.GBps*tol {
			failPair(t, "gups seed-assignment invariance", c, fails,
				"permuting the address-stream seed assignment moved bandwidth beyond 5%")
			return
		}
	}
}

// reverseSeeds is the deterministic permutation the shrinker predicate
// uses (shrinking needs a fixed permutation, not the sampled shuffle).
func reverseSeeds(s []int64) []int64 {
	out := make([]int64, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// TestShrink pins the shrinker itself: it must return a strictly simpler
// case that still satisfies the predicate, and must terminate on a
// predicate that always fails.
func TestShrink(t *testing.T) {
	rnd := rand.New(rand.NewSource(808))
	c := Generate(rnd)
	c.Faults = GenerateFaults(rnd)
	min := Shrink(c, func(Case) bool { return true })
	if min.Layout != nil || min.Faults.Enabled() || min.Scenario.List || min.Scenario.Ring != 0 || min.Scenario.AddrSeeds != nil {
		t.Errorf("always-failing predicate did not shrink to the simplest case: %v", min)
	}
	if want := maxChunkFor(min.Scenario.Kind); min.Scenario.Chunk != want {
		t.Errorf("shrinker left chunk at %d, want %d", min.Scenario.Chunk, want)
	}
	same := Shrink(c, func(v Case) bool { return v.Scenario.Volume == c.Scenario.Volume })
	if same.Scenario.Volume != c.Scenario.Volume {
		t.Errorf("shrinker returned a case that no longer fails the predicate")
	}
}
