// Package meta is the metamorphic half of the conformance suite: instead
// of comparing one measurement against a recorded value, it asserts
// relations between *pairs* of simulator runs that must hold for every
// scenario the generator can produce — properties no golden file can
// express. Bandwidth must not depend on where idle SPEs sit in the
// layout; cycle counts must not depend on the clock used to report GB/s;
// bigger DMA elements, fewer faults and DMA lists must never make a
// stream slower beyond tolerance; and every run, faulty or not, must
// deliver exactly the bytes it requested.
//
// Cases are drawn from a seeded generator, so failures reproduce, and a
// failing case is shrunk (smaller volume, fewer SPEs, maximal chunk, no
// faults, identity layout) before being reported.
package meta

import (
	"fmt"
	"math/rand"

	"cellbe/internal/cell"
	"cellbe/internal/fault"
	"cellbe/internal/sim"
)

// maxCycles is the watchdog budget per metamorphic run; the generator's
// volumes finish in well under a million cycles, so hitting this means a
// deadlock, which the invariant then reports via RunChecked's error.
const maxCycles sim.Time = 200_000_000

// Case is one randomized scenario instance: the workload plus the machine
// variation knobs the invariants toggle.
type Case struct {
	Scenario  cell.Scenario
	Layout    []int // logical-to-physical SPE permutation (nil = identity)
	ClockGHz  float64
	Faults    fault.Config
	FaultSeed int64
}

func (c Case) String() string {
	sc := c.Scenario
	return fmt.Sprintf("kind=%s spes=%d chunk=%d volume=%d op=%q list=%v ring=%d seeds=%v layout=%v clock=%.1f faults=%+v",
		sc.Kind, sc.SPEs, sc.Chunk, sc.Volume, sc.Op, sc.List, sc.Ring, sc.AddrSeeds, c.Layout, c.ClockGHz, c.Faults)
}

// patternKind reports whether a scenario kind runs on the pattern
// interpreter (the workload library); those kinds have no DMA-list
// variant and their own chunk envelopes.
func patternKind(kind string) bool {
	switch kind {
	case "gups", "qcd", "md", "stream", "pattern":
		return true
	}
	return false
}

// maxChunkFor is the largest valid chunk of a kind — the shrinker's
// "simplest chunk" target. GUPS elements are capped at 128 bytes; every
// other kind accepts the full MFC transfer size.
func maxChunkFor(kind string) int {
	if kind == "gups" {
		return 128
	}
	return 16384
}

// Outcome is the measured result of one run.
type Outcome struct {
	Cycles sim.Time
	GBps   float64
	Bytes  int64
}

// Run executes the case on a fresh system and returns its outcome. The
// run is checked end to end: watchdog, process panics, and the MFC
// byte-conservation teardown audit all turn into an error.
func Run(c Case) (Outcome, error) {
	cfg := cell.DefaultConfig()
	if c.ClockGHz > 0 {
		cfg.ClockGHz = c.ClockGHz
	}
	if c.Layout != nil {
		cfg.Layout = append([]int(nil), c.Layout...)
	}
	cfg.Faults = c.Faults
	cfg.FaultSeed = c.FaultSeed
	sys := cell.New(cfg)
	defer sys.Release()
	total, err := c.Scenario.Install(sys)
	if err != nil {
		return Outcome{}, err
	}
	if err := sys.RunChecked(maxCycles); err != nil {
		return Outcome{}, err
	}
	cycles := sys.Eng.Now()
	return Outcome{Cycles: cycles, GBps: sys.GBps(total, cycles), Bytes: total}, nil
}

// chunks the generator draws from: the power-of-two paper sweep plus
// non-power-of-two 16-byte multiples that only a property test would try.
var genChunks = []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 48, 208, 1040, 5008}

// gupsChunks are the element sizes the GUPS preset accepts (8..128 B
// gathers/scatters).
var gupsChunks = []int{8, 16, 32, 64, 128}

// Generate draws a random valid scenario case from rnd — a canonical kind
// or a workload-library kind. Volumes are kept small (at most ~512 KB per
// SPE) so a property can afford dozens of runs; every generated case
// passes Scenario.Validate by construction.
func Generate(rnd *rand.Rand) Case {
	kinds := []string{"pair", "couples", "cycle", "mem", "gups", "qcd", "md", "stream"}
	sc := cell.Scenario{Kind: kinds[rnd.Intn(len(kinds))]}
	switch sc.Kind {
	case "pair":
		sc.SPEs = 2
	case "couples":
		sc.SPEs = 2 * (1 + rnd.Intn(4)) // 2, 4, 6, 8
	case "cycle":
		sc.SPEs = 2 + rnd.Intn(7) // 2..8
	case "mem":
		sc.SPEs = 1 + rnd.Intn(8)
		sc.Op = []string{"get", "put", "copy"}[rnd.Intn(3)]
	case "gups":
		sc.SPEs = 1 + rnd.Intn(8)
		sc.Op = []string{"both", "get", "put"}[rnd.Intn(3)]
	case "qcd":
		sc.SPEs = 2 + rnd.Intn(7) // the halo ring needs a neighbour
		if sc.SPEs > 2 && rnd.Intn(2) == 0 {
			sc.Ring = 1 + rnd.Intn(sc.SPEs-1)
		}
	case "md":
		sc.SPEs = 1 + rnd.Intn(8)
	case "stream":
		sc.SPEs = 1 + rnd.Intn(8)
		sc.Op = []string{"copy", "scale", "add", "triad"}[rnd.Intn(4)]
	}
	if sc.Kind == "gups" {
		sc.Chunk = gupsChunks[rnd.Intn(len(gupsChunks))]
	} else {
		sc.Chunk = genChunks[rnd.Intn(len(genChunks))]
	}
	// 8..40 elements per SPE, as a whole number of chunks so byte
	// accounting is exact across every variant pairing.
	sc.Volume = int64(sc.Chunk) * int64(8+rnd.Intn(33))
	// The DMA-list variant exists only for the canonical kernels.
	if rnd.Intn(2) == 0 && !patternKind(sc.Kind) && !(sc.Kind == "mem" && sc.Op == "copy") {
		sc.List = true
	}
	return Case{
		Scenario:  sc,
		Layout:    cell.RandomLayout(rnd.Int63n(1 << 30)),
		FaultSeed: 1 + rnd.Int63n(1<<30),
	}
}

// GenerateFaults draws a small single-class fault load.
func GenerateFaults(rnd *rand.Rand) fault.Config {
	rate := 0.002 + rnd.Float64()*0.03
	var f fault.Config
	switch rnd.Intn(5) {
	case 0:
		f.MFCRetryRate = rate
	case 1:
		f.XDRStallRate = rate
	case 2:
		f.EIBSlowRate = rate
	case 3:
		f.EIBOutageRate = rate
	case 4:
		f.DoneDelayRate = rate
	}
	return f
}

// Shrink minimizes a failing case: while the predicate still fails, it
// greedily applies simplifications — identity layout, no faults, no ring
// offset, no pinned address seeds, fewer SPEs, elem instead of list, the
// kind's largest chunk, half the volume — and returns the simplest case
// that still fails. fails must be deterministic for the same case (runs
// are).
func Shrink(c Case, fails func(Case) bool) Case {
	simpler := func(c Case) []Case {
		var out []Case
		if c.Layout != nil {
			v := c
			v.Layout = nil
			out = append(out, v)
		}
		if c.Faults.Enabled() {
			v := c
			v.Faults = fault.Config{}
			out = append(out, v)
		}
		if c.Scenario.Ring != 0 {
			v := c
			v.Scenario.Ring = 0
			out = append(out, v)
		}
		if c.Scenario.AddrSeeds != nil {
			v := c
			v.Scenario.AddrSeeds = nil
			out = append(out, v)
		}
		if c.Scenario.List {
			v := c
			v.Scenario.List = false
			out = append(out, v)
		}
		if c.Scenario.Kind != "pair" && c.Scenario.SPEs > 2 {
			v := c
			v.Scenario.SPEs -= 1
			if c.Scenario.Kind == "couples" {
				v.Scenario.SPEs = c.Scenario.SPEs - 2
			}
			if v.Scenario.Ring >= v.Scenario.SPEs {
				v.Scenario.Ring = 0
			}
			if len(v.Scenario.AddrSeeds) > 0 {
				v.Scenario.AddrSeeds = v.Scenario.AddrSeeds[:v.Scenario.SPEs]
			}
			out = append(out, v)
		}
		if max := maxChunkFor(c.Scenario.Kind); c.Scenario.Chunk != max {
			v := c
			elems := c.Scenario.Volume / int64(c.Scenario.Chunk)
			v.Scenario.Chunk = max
			v.Scenario.Volume = int64(max) * elems
			out = append(out, v)
		}
		if elems := c.Scenario.Volume / int64(c.Scenario.Chunk); elems >= 16 {
			v := c
			v.Scenario.Volume = c.Scenario.Volume / 2
			out = append(out, v)
		}
		return out
	}
	for budget := 0; budget < 64; budget++ {
		shrunk := false
		for _, v := range simpler(c) {
			if fails(v) {
				c, shrunk = v, true
				break
			}
		}
		if !shrunk {
			return c
		}
	}
	return c
}

// UsedSPEs returns the logical SPE indices a scenario actually drives;
// the rest are idle, and their physical placement must not matter.
func UsedSPEs(sc cell.Scenario) []int {
	switch sc.Kind {
	case "pair":
		return []int{0, 1}
	default:
		used := make([]int, sc.SPEs)
		for i := range used {
			used[i] = i
		}
		return used
	}
}
