package conformance

import (
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// sharedData is the one dataset all claim subtests draw from; probes are
// lazily computed and cached, so the suite's cost is the union of probes
// the selected claims need, regardless of shuffle order or parallelism.
var (
	sharedOnce sync.Once
	sharedData *Dataset
)

func dataset(t *testing.T) *Dataset {
	t.Helper()
	sharedOnce.Do(func() {
		sharedData = NewDataset(QuickParams(testing.Short()))
	})
	return sharedData
}

// TestClaims evaluates every claim of the reproduction record against
// fresh simulator runs — the paper's figures as executable assertions.
// With -short only the Short-tagged core-physics subset runs (the CI
// budget under -race).
func TestClaims(t *testing.T) {
	d := dataset(t)
	for _, c := range Claims() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			if testing.Short() && !c.Short {
				t.Skip("not part of the -short subset")
			}
			t.Parallel()
			o := Eval(c, d)
			for _, detail := range o.Details {
				t.Log(detail)
			}
			if o.Err != nil {
				t.Errorf("claim %q (%s | %s): %v", c.ID, c.Label, c.Paper, o.Err)
			}
		})
	}
}

// TestClaimInventory pins the structural guarantees of the suite: at
// least 25 executable paper claims, unique IDs, no claim without checks,
// and a -short subset that still covers every experiment family.
func TestClaimInventory(t *testing.T) {
	claims := Claims()
	if len(claims) < 25 {
		t.Errorf("only %d claims; the reproduction record requires at least 25", len(claims))
	}
	seen := make(map[string]bool)
	short := 0
	for _, c := range claims {
		if c.ID == "" {
			t.Errorf("claim %q has no ID", c.Label)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim ID %q", c.ID)
		}
		seen[c.ID] = true
		if len(c.Checks) == 0 {
			t.Errorf("claim %q has no checks — a row without a guard can silently rot", c.ID)
		}
		if c.Short {
			short++
		}
	}
	if short < 8 {
		t.Errorf("only %d claims in the -short subset; want at least 8", short)
	}
	if _, err := Lookup(claims[0].ID); err != nil {
		t.Errorf("Lookup(%q): %v", claims[0].ID, err)
	}
	if _, err := Lookup("no-such-claim"); err == nil {
		t.Error("Lookup of an unknown ID succeeded")
	}
}

// TestProbeCoverage walks every check's metrics by reflection and asserts
// the referenced probes exist and that no registered probe is dead
// weight.
func TestProbeCoverage(t *testing.T) {
	used := make(map[string]bool)
	var collect func(v reflect.Value)
	collect = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			if m, ok := v.Interface().(Metric); ok {
				used[m.Probe] = true
				return
			}
			if k, ok := v.Interface().(Knee); ok {
				used[k.Probe] = true
				return
			}
			for i := 0; i < v.NumField(); i++ {
				collect(v.Field(i))
			}
		case reflect.Interface, reflect.Ptr:
			if !v.IsNil() {
				collect(v.Elem())
			}
		}
	}
	for _, c := range Claims() {
		for _, ch := range c.Checks {
			collect(reflect.ValueOf(ch))
		}
	}
	registered := make(map[string]bool)
	for _, n := range ProbeNames() {
		registered[n] = true
	}
	for p := range used {
		if !registered[p] {
			t.Errorf("claims reference unregistered probe %q", p)
		}
	}
	for p := range registered {
		if !used[p] {
			t.Errorf("probe %q is registered but no claim references it", p)
		}
	}
}

// TestExperimentsDocInSync asserts the checked-in EXPERIMENTS.md is
// byte-identical to what the claim tables render: edit claims.go, run
// `go generate .`, commit both.
func TestExperimentsDocInSync(t *testing.T) {
	onDisk, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("reading EXPERIMENTS.md: %v", err)
	}
	want := Doc()
	if string(onDisk) != want {
		t.Errorf("EXPERIMENTS.md is out of sync with the conformance claims; regenerate with `go generate .`\n"+
			"checked-in %d bytes, generated %d bytes; first divergence at byte %d",
			len(onDisk), len(want), firstDiff(string(onDisk), want))
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestReport exercises the text reporter on fabricated outcomes; the real
// evaluation path is covered by TestClaims.
func TestReport(t *testing.T) {
	pass := &Claim{ID: "x/pass", Label: "good"}
	fail := &Claim{ID: "x/fail", Label: "bad"}
	var b strings.Builder
	failed := Report(&b, []Outcome{
		{Claim: pass, Details: []string{"a >= b: 2.00 vs 1.00"}},
		{Claim: fail, Err: os.ErrInvalid},
	})
	if failed != 1 {
		t.Errorf("Report returned %d failures, want 1", failed)
	}
	out := b.String()
	for _, want := range []string{"PASS x/pass", "FAIL x/fail", "2 claims evaluated, 1 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestEvalUnknownProbe asserts a claim can never pass by measuring
// nothing: a bad probe or curve name is an evaluation error.
func TestEvalUnknownProbe(t *testing.T) {
	d := NewDataset(QuickParams(true))
	bad := &Claim{ID: "x/bad", Checks: []Check{
		Range{M: Metric{Probe: "no-such-probe", Curve: "c", X: 1}, Min: 0, Max: 1},
	}}
	if o := Eval(bad, d); o.Err == nil {
		t.Error("claim with an unknown probe evaluated without error")
	}
	bad2 := &Claim{ID: "x/bad2", Checks: []Check{
		Range{M: Metric{Probe: "spe-ls", Curve: "no-such-curve", X: 1}, Min: 0, Max: 1},
	}}
	if o := Eval(bad2, dataset(t)); o.Err == nil {
		t.Error("claim with an unknown curve evaluated without error")
	}
}

// TestEvalAllReport drives the same entry point the cellbench
// -conformance flag uses: EvalAll over the shared dataset (probe results
// are cached, so this costs only the claim arithmetic) rendered through
// Report. Every outcome must carry its details and the tail line must
// account for every evaluated claim.
func TestEvalAllReport(t *testing.T) {
	d := dataset(t)
	short := testing.Short()
	outcomes := EvalAll(d, short)
	want := 0
	for _, c := range Claims() {
		if !short || c.Short {
			want++
		}
	}
	if len(outcomes) != want {
		t.Fatalf("EvalAll returned %d outcomes, want %d", len(outcomes), want)
	}
	for _, o := range outcomes {
		if len(o.Details) == 0 {
			t.Errorf("claim %q evaluated with no detail lines", o.Claim.ID)
		}
	}
	var sb strings.Builder
	failed := Report(&sb, outcomes)
	if got := strings.Count(sb.String(), "\n"); got < want {
		t.Errorf("report has %d lines for %d claims:\n%s", got, want, sb.String())
	}
	if !strings.Contains(sb.String(), "claims evaluated") {
		t.Errorf("report missing the summary line:\n%s", sb.String())
	}
	for _, o := range outcomes {
		if o.Err != nil {
			t.Errorf("claim %q failed: %v", o.Claim.ID, o.Err)
		}
	}
	_ = failed // failures are reported per claim above
}
