package conformance

import (
	"fmt"
	"io"
	"strings"
)

// docHeader is the fixed preamble of EXPERIMENTS.md. Everything after it
// is rendered from the claim tables.
const docHeader = `# EXPERIMENTS — paper vs. measured

Reproduction record for every table/figure of *"Performance Analysis of
Cell Broadband Engine for High Memory Bandwidth Applications"* (ISPASS
2007) against this repository's simulator.

This file is generated from the claim tables in ` + "`internal/conformance`" + `
(` + "`go generate .`" + ` rewrites it via ` + "`cellbench -conformance-doc`" + `), and
every row below is also an executable check, evaluated against fresh
simulator runs by ` + "`go test ./internal/conformance`" + ` — document and test
suite share one source and cannot diverge. The raw sweep behind the
"Measured" numbers is
` + "`go run ./cmd/cellbench -all -full -q > results/full_sweep.txt`" + ` (the
checked-in run uses 10 layout samples × 2 MB/SPE; add ` + "`-paper`" + ` for the
original 32 MB/SPE volume — same steady-state numbers, ~16× slower), or
` + "`go test -bench=. -benchmem`" + ` for the per-figure benchmark harness.

All bandwidths in GB/s at 2.1 GHz. "Paper" values come from the paper's
text (its figures are not machine-readable in the available copy; where
only qualitative statements survive, those are quoted). Values here are
averages across 10 random logical→physical SPE layouts unless noted.
`

// defaultHeader is the column set of the standard figure tables.
var defaultHeader = []string{"", "Paper", "Measured", "Match"}

// Doc renders the whole EXPERIMENTS.md document from the claim data.
// TestExperimentsDocInSync asserts the checked-in file equals this output
// byte for byte.
func Doc() string {
	var b strings.Builder
	b.WriteString(docHeader)
	for _, s := range sections {
		b.WriteString("\n")
		b.WriteString(s.Title)
		b.WriteString("\n")
		if len(s.Claims) > 0 {
			header := s.Header
			if header == nil {
				header = defaultHeader
			}
			b.WriteString("\n")
			writeRow(&b, header)
			b.WriteString("|")
			for range header {
				b.WriteString("---|")
			}
			b.WriteString("\n")
			for _, c := range s.Claims {
				writeRow(&b, []string{c.Label, c.Paper, c.Measured, c.Match}[:len(header)])
			}
		}
		if s.Footer != "" {
			b.WriteString("\n")
			b.WriteString(s.Footer)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// writeRow renders one markdown table row; an empty cell collapses to a
// single space so the standard tables' blank first column renders as the
// conventional "| |".
func writeRow(b *strings.Builder, cells []string) {
	b.WriteString("|")
	for _, cell := range cells {
		if cell == "" {
			b.WriteString(" |")
			continue
		}
		b.WriteString(" " + cell + " |")
	}
	b.WriteString("\n")
}

// Report writes a human-readable evaluation report and returns the number
// of failed claims.
func Report(w io.Writer, outcomes []Outcome) int {
	failed := 0
	for _, o := range outcomes {
		status := "PASS"
		if o.Err != nil {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%s %s (%s)\n", status, o.Claim.ID, o.Claim.Label)
		for _, d := range o.Details {
			fmt.Fprintf(w, "     %s\n", d)
		}
		if o.Err != nil {
			fmt.Fprintf(w, "     error: %v\n", o.Err)
		}
	}
	fmt.Fprintf(w, "conformance: %d claims evaluated, %d failed\n", len(outcomes), failed)
	return failed
}
