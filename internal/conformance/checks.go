package conformance

import (
	"fmt"

	"cellbe/internal/stats"
)

// Stat selects which statistic of a measured point (or curve) a Metric
// resolves to.
type Stat int

const (
	// Mean is the cross-run average at one x (the paper's headline stat).
	Mean Stat = iota
	// MinRun and MaxRun are the cross-run extremes at one x.
	MinRun
	MaxRun
	// Median is the cross-run median at one x.
	Median
	// Spread is MaxRun - MinRun at one x: the layout-placement variance
	// the paper's Figures 13 and 16 report.
	Spread
	// RobustSpread is the p90 - p10 interpercentile range of the runs at
	// one x: Spread without the single luckiest/unluckiest layout.
	RobustSpread
	// CurveMax and CurveMin are the extremes of the point means along the
	// whole curve (X is ignored); with Curve "*" they range over every
	// curve of the probe.
	CurveMax
	CurveMin
)

func (s Stat) String() string {
	switch s {
	case Mean:
		return "mean"
	case MinRun:
		return "min"
	case MaxRun:
		return "max"
	case Median:
		return "median"
	case Spread:
		return "spread"
	case RobustSpread:
		return "p90-p10"
	case CurveMax:
		return "curve-max"
	case CurveMin:
		return "curve-min"
	}
	return "?"
}

// Metric names one measurement of the dataset: a statistic of a probe's
// curve at an x position. The zero Stat is the cross-run mean.
type Metric struct {
	Probe string
	Curve string // curve label; "*" ranges over all curves (CurveMax/CurveMin only)
	X     int    // ignored by CurveMax/CurveMin
	Stat  Stat
}

func (m Metric) String() string {
	switch m.Stat {
	case CurveMax, CurveMin:
		return fmt.Sprintf("%s[%s].%v", m.Probe, m.Curve, m.Stat)
	}
	if m.Stat == Mean {
		return fmt.Sprintf("%s[%s]@%d", m.Probe, m.Curve, m.X)
	}
	return fmt.Sprintf("%s[%s]@%d.%v", m.Probe, m.Curve, m.X, m.Stat)
}

// Value resolves the metric against the dataset.
func (m Metric) Value(d *Dataset) (float64, error) {
	res, err := d.Result(m.Probe)
	if err != nil {
		return 0, err
	}
	if m.Stat == CurveMax || m.Stat == CurveMin {
		best := 0.0
		first := true
		for i := range res.Curves {
			c := &res.Curves[i]
			if m.Curve != "*" && c.Label != m.Curve {
				continue
			}
			for _, p := range c.Points {
				v := p.Summary.Mean
				if first || (m.Stat == CurveMax && v > best) || (m.Stat == CurveMin && v < best) {
					best, first = v, false
				}
			}
		}
		if first {
			return 0, fmt.Errorf("conformance: metric %v matches no points", m)
		}
		return best, nil
	}
	c := res.Curve(m.Curve)
	if c == nil {
		return 0, fmt.Errorf("conformance: probe %q has no curve %q", m.Probe, m.Curve)
	}
	for _, p := range c.Points {
		if p.X != m.X {
			continue
		}
		switch m.Stat {
		case Mean:
			return p.Summary.Mean, nil
		case MinRun:
			return p.Summary.Min, nil
		case MaxRun:
			return p.Summary.Max, nil
		case Median:
			return p.Summary.Median, nil
		case Spread:
			return p.Summary.Spread(), nil
		case RobustSpread:
			return stats.Percentile(p.Samples, 90) - stats.Percentile(p.Samples, 10), nil
		}
		return 0, fmt.Errorf("conformance: unknown stat %v", m.Stat)
	}
	return 0, fmt.Errorf("conformance: probe %q curve %q has no point at x=%d", m.Probe, m.Curve, m.X)
}

// Check is one executable guard of a claim. Eval returns a human-readable
// account of what was measured, plus an error when the check fails; an
// unresolvable metric (bad probe or curve name) is also an error, so a
// claim can never silently pass by measuring nothing.
type Check interface {
	Describe() string
	Eval(d *Dataset) (detail string, err error)
}

// Ordering asserts Hi >= Lo * Factor: one configuration beats (or at
// Factor 1, at least matches) another. The zero Factor means 1.
type Ordering struct {
	Lo, Hi Metric
	Factor float64
}

func (o Ordering) factor() float64 {
	if o.Factor == 0 {
		return 1
	}
	return o.Factor
}

func (o Ordering) Describe() string {
	if o.factor() == 1 {
		return fmt.Sprintf("%v >= %v", o.Hi, o.Lo)
	}
	return fmt.Sprintf("%v >= %.2f x %v", o.Hi, o.factor(), o.Lo)
}

func (o Ordering) Eval(d *Dataset) (string, error) {
	lo, err := o.Lo.Value(d)
	if err != nil {
		return "", err
	}
	hi, err := o.Hi.Value(d)
	if err != nil {
		return "", err
	}
	detail := fmt.Sprintf("%.2f vs %.2f", hi, lo)
	if hi < lo*o.factor() {
		return detail, fmt.Errorf("ordering inverted: %v = %.3f < %.2f x %v = %.3f", o.Hi, hi, o.factor(), o.Lo, lo)
	}
	return detail, nil
}

// Ceiling asserts M <= Limit * (1 + Slack): a hard bandwidth limit of the
// architecture (ring peak, MIC bank rate) is never exceeded.
type Ceiling struct {
	M     Metric
	Limit float64
	Slack float64 // fraction of Limit; 0 means exactly Limit
}

func (c Ceiling) Describe() string {
	return fmt.Sprintf("%v <= %.1f", c.M, c.Limit)
}

func (c Ceiling) Eval(d *Dataset) (string, error) {
	v, err := c.M.Value(d)
	if err != nil {
		return "", err
	}
	detail := fmt.Sprintf("%.2f (limit %.1f)", v, c.Limit)
	if v > c.Limit*(1+c.Slack) {
		return detail, fmt.Errorf("ceiling broken: %v = %.3f exceeds %.2f", c.M, v, c.Limit*(1+c.Slack))
	}
	return detail, nil
}

// Range asserts Min <= M <= Max: the measurement lands in an absolute
// GB/s window.
type Range struct {
	M        Metric
	Min, Max float64
}

func (r Range) Describe() string {
	return fmt.Sprintf("%v in [%.1f, %.1f]", r.M, r.Min, r.Max)
}

func (r Range) Eval(d *Dataset) (string, error) {
	v, err := r.M.Value(d)
	if err != nil {
		return "", err
	}
	detail := fmt.Sprintf("%.2f", v)
	if v < r.Min || v > r.Max {
		return detail, fmt.Errorf("out of range: %v = %.3f not in [%.2f, %.2f]", r.M, v, r.Min, r.Max)
	}
	return detail, nil
}

// Ratio asserts Min <= Num/Den <= Max: two configurations relate by a
// bounded factor ("store is almost twice the load", "mem read equals L2
// read"). A zero Max means unbounded above.
type Ratio struct {
	Num, Den Metric
	Min, Max float64
}

func (r Ratio) Describe() string {
	if r.Max == 0 {
		return fmt.Sprintf("%v / %v >= %.2f", r.Num, r.Den, r.Min)
	}
	return fmt.Sprintf("%v / %v in [%.2f, %.2f]", r.Num, r.Den, r.Min, r.Max)
}

func (r Ratio) Eval(d *Dataset) (string, error) {
	num, err := r.Num.Value(d)
	if err != nil {
		return "", err
	}
	den, err := r.Den.Value(d)
	if err != nil {
		return "", err
	}
	if den == 0 {
		return "", fmt.Errorf("ratio denominator %v is zero", r.Den)
	}
	ratio := num / den
	detail := fmt.Sprintf("%.2f/%.2f = %.2f", num, den, ratio)
	if ratio < r.Min || (r.Max > 0 && ratio > r.Max) {
		return detail, fmt.Errorf("ratio %v/%v = %.3f outside [%.2f, %.2f]", r.Num, r.Den, ratio, r.Min, r.Max)
	}
	return detail, nil
}

// Knee asserts the degradation shape of a curve: every point below KneeX
// stays at most MaxFrac of the value at KneeX (small elements pay setup
// costs), and, when FlatTol is set, every point at or above KneeX stays
// within FlatTol (fractional) of the knee value (the curve has saturated).
type Knee struct {
	Probe, Curve string
	KneeX        int
	MaxFrac      float64
	FlatTol      float64 // 0 = do not check flatness above the knee
}

func (k Knee) Describe() string {
	return fmt.Sprintf("%s[%s] knees at %d (below <= %.2f x knee)", k.Probe, k.Curve, k.KneeX, k.MaxFrac)
}

func (k Knee) Eval(d *Dataset) (string, error) {
	res, err := d.Result(k.Probe)
	if err != nil {
		return "", err
	}
	c := res.Curve(k.Curve)
	if c == nil {
		return "", fmt.Errorf("conformance: probe %q has no curve %q", k.Probe, k.Curve)
	}
	knee, ok := res.At(k.Curve, k.KneeX)
	if !ok {
		return "", fmt.Errorf("conformance: curve %q has no knee point at x=%d", k.Curve, k.KneeX)
	}
	detail := fmt.Sprintf("knee %.2f at %d", knee.Mean, k.KneeX)
	below := 0
	for _, p := range c.Points {
		switch {
		case p.X < k.KneeX:
			below++
			if p.Summary.Mean > knee.Mean*k.MaxFrac {
				return detail, fmt.Errorf("no knee: %s[%s]@%d = %.3f exceeds %.2f x knee %.3f",
					k.Probe, k.Curve, p.X, p.Summary.Mean, k.MaxFrac, knee.Mean)
			}
		case p.X > k.KneeX && k.FlatTol > 0:
			if diff := p.Summary.Mean - knee.Mean; diff > knee.Mean*k.FlatTol || diff < -knee.Mean*k.FlatTol {
				return detail, fmt.Errorf("not flat past the knee: %s[%s]@%d = %.3f vs knee %.3f",
					k.Probe, k.Curve, p.X, p.Summary.Mean, knee.Mean)
			}
		}
	}
	if below == 0 {
		return detail, fmt.Errorf("conformance: curve %q has no points below the knee %d", k.Curve, k.KneeX)
	}
	return detail, nil
}

// VarianceBound bounds the run-to-run spread of a measurement: MaxSpread
// guards "variation stays under X" claims, MinSpread guards "placement
// spreads the results widely" claims. Either bound may be left zero.
type VarianceBound struct {
	M         Metric // typically Stat: Spread or RobustSpread
	MaxSpread float64
	MinSpread float64
}

func (v VarianceBound) Describe() string {
	switch {
	case v.MaxSpread > 0 && v.MinSpread > 0:
		return fmt.Sprintf("%v in [%.1f, %.1f]", v.M, v.MinSpread, v.MaxSpread)
	case v.MinSpread > 0:
		return fmt.Sprintf("%v >= %.1f", v.M, v.MinSpread)
	default:
		return fmt.Sprintf("%v <= %.1f", v.M, v.MaxSpread)
	}
}

func (v VarianceBound) Eval(d *Dataset) (string, error) {
	val, err := v.M.Value(d)
	if err != nil {
		return "", err
	}
	detail := fmt.Sprintf("%.2f", val)
	if v.MaxSpread > 0 && val > v.MaxSpread {
		return detail, fmt.Errorf("variance too wide: %v = %.3f exceeds %.2f", v.M, val, v.MaxSpread)
	}
	if val < v.MinSpread {
		return detail, fmt.Errorf("variance too narrow: %v = %.3f below %.2f", v.M, val, v.MinSpread)
	}
	return detail, nil
}
