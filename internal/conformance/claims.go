package conformance

// sections is the reproduction record itself: every EXPERIMENTS.md table
// row as a Claim carrying both its rendered cells (Label/Paper/Measured/
// Match — the "Measured" numbers come from the checked-in full-volume run)
// and the executable checks that guard the row's physics at the quick-run
// parameters. The document is generated from this slice (see Doc), so a
// row cannot exist without a check and a check cannot drift from its row.
var sections = []Section{
	{
		Title: "## Figure 3 — PPE to L1 cache",
		Claims: []Claim{
			{
				ID:       "fig3/load-half-peak",
				Label:    "load 1T, ≥8 B",
				Paper:    "half peak ≈ 8.4; no gain at 16 B",
				Measured: "8.40 at 4/8/16 B",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 16}, Min: 7.5, Max: 9.3},
					Ratio{Num: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 16},
						Den: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 8}, Min: 0.95, Max: 1.05},
				},
			},
			{
				ID:       "fig3/load-proportional",
				Label:    "load 1T, 4/2/1 B",
				Paper:    "\"8 / 4 / 2\", proportional to size",
				Measured: "8.40 / 4.20 / 2.10",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ratio{Num: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 4},
						Den: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 2}, Min: 1.8, Max: 2.2},
					Ratio{Num: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 2},
						Den: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 1}, Min: 1.8, Max: 2.2},
				},
			},
			{
				ID:       "fig3/store-below-load",
				Label:    "store",
				Paper:    "below loads, proportional, 16 B + 2T steeper",
				Measured: "2.1→6.72 (1T), 7.27 at 16 B 2T",
				Match:    "✓",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 16},
						Lo: Metric{Probe: "ppe-l1", Curve: "store 1T", X: 16}, Factor: 1.1},
					Ordering{Hi: Metric{Probe: "ppe-l1", Curve: "store 2T", X: 16},
						Lo: Metric{Probe: "ppe-l1", Curve: "store 1T", X: 16}},
				},
			},
			{
				ID:       "fig3/copy-16b-best",
				Label:    "copy 1T",
				Paper:    "half peak; 16 B clearly better than 8 B",
				Measured: "8.40 at 16 B vs 6.72 at 8 B",
				Match:    "✓",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "ppe-l1", Curve: "copy 1T", X: 16},
						Lo: Metric{Probe: "ppe-l1", Curve: "copy 1T", X: 8}, Factor: 1.15},
				},
			},
			{
				ID:       "fig3/threads-equal",
				Label:    "threads",
				Paper:    "1T ≈ 2T in L1",
				Measured: "identical curves",
				Match:    "✓",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "ppe-l1", Curve: "load 2T", X: 16},
						Den: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 16}, Min: 0.9, Max: 1.1},
				},
			},
		},
	},
	{
		Title: "## Figure 4 — PPE to L2 cache",
		Claims: []Claim{
			{
				ID:       "fig4/load-below-l1",
				Label:    "load",
				Paper:    "much lower than L1; limited outstanding misses",
				Measured: "2.04 (1T) vs 8.40 L1",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "ppe-l1", Curve: "load 1T", X: 16},
						Lo: Metric{Probe: "ppe-l2", Curve: "load 1T", X: 16}, Factor: 3},
				},
			},
			{
				ID:       "fig4/store-above-load",
				Label:    "store 1T",
				Paper:    "\"almost twice the bandwidth\" of loads",
				Measured: "4.2–6.72 vs 2.04",
				Match:    "✓ (2–3×)",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "ppe-l2", Curve: "store 1T", X: 16},
						Den: Metric{Probe: "ppe-l2", Curve: "load 1T", X: 16}, Min: 1.8, Max: 3.6},
				},
			},
			{
				ID:       "fig4/smt-gain",
				Label:    "2 threads",
				Paper:    "\"performance increases significantly\"",
				Measured: "loads 2.04 → 3.27 (+60%)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ratio{Num: Metric{Probe: "ppe-l2", Curve: "load 2T", X: 16},
						Den: Metric{Probe: "ppe-l2", Curve: "load 1T", X: 16}, Min: 1.3, Max: 2.0},
				},
			},
			{
				ID:       "fig4/size-dependence",
				Label:    "element size",
				Paper:    "same strong size dependence as L1",
				Measured: "1.18 → 2.04 across 1–16 B",
				Match:    "✓",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "ppe-l2", Curve: "load 1T", X: 16},
						Lo: Metric{Probe: "ppe-l2", Curve: "load 1T", X: 1}, Factor: 1.4},
				},
			},
		},
	},
	{
		Title: "## Figure 6 — PPE to main memory",
		Claims: []Claim{
			{
				ID:       "fig6/read-equals-l2",
				Label:    "read",
				Paper:    "equal to L2 read (both miss-service limited)",
				Measured: "2.04/3.26 = L2's 2.04/3.27",
				Match:    "✓ (prefetcher mechanism)",
				Short:    true,
				Checks: []Check{
					Ratio{Num: Metric{Probe: "ppe-mem", Curve: "load 1T", X: 16},
						Den: Metric{Probe: "ppe-l2", Curve: "load 1T", X: 16}, Min: 0.9, Max: 1.1},
					Ratio{Num: Metric{Probe: "ppe-mem", Curve: "load 2T", X: 16},
						Den: Metric{Probe: "ppe-l2", Curve: "load 2T", X: 16}, Min: 0.9, Max: 1.1},
				},
			},
			{
				ID:       "fig6/write-below-l2",
				Label:    "write",
				Paper:    "much lower than L2 write; store queue saturates",
				Measured: "1.77 vs 6.72",
				Match:    "✓",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "ppe-l2", Curve: "store 1T", X: 16},
						Lo: Metric{Probe: "ppe-mem", Curve: "store 1T", X: 16}, Factor: 2},
				},
			},
			{
				ID:       "fig6/overall-low",
				Label:    "overall",
				Paper:    "\"very low (under 6)\"",
				Measured: "max 4.29 (copy 2T)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ceiling{M: Metric{Probe: "ppe-mem", Curve: "*", Stat: CurveMax}, Limit: 6},
				},
			},
		},
	},
	{
		Title: "## Figure 8 — SPE ↔ main memory, DMA-elem (weak scaling)",
		Header: []string{"", "Paper", "Measured (16 KB elems)", "Match"},
		Claims: []Claim{
			{
				ID:       "fig8/one-spe-ten",
				Label:    "1 SPE, any op",
				Paper:    "≈10 (60% of 16.8 for GET/PUT, 30% of 33.6 for copy)",
				Measured: "GET 10.06, PUT 10.88, copy 10.34",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "spe-mem-get", Curve: "1 SPE", X: 16384}, Min: 8.5, Max: 11.5},
					Range{M: Metric{Probe: "spe-mem-put", Curve: "1 SPE", X: 16384}, Min: 8.5, Max: 12},
					Range{M: Metric{Probe: "spe-mem-copy", Curve: "1 SPE", X: 16384}, Min: 8.5, Max: 12},
				},
			},
			{
				ID:       "fig8/two-spes-beat-bank",
				Label:    "2 SPEs",
				Paper:    "≈20, exceeding one bank's 16.8",
				Measured: "GET 18.08, PUT 19.62, copy 17.68",
				Match:    "✓ (shape; both banks proven)",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "spe-mem-get", Curve: "2 SPE", X: 16384}, Min: 16.8, Max: 21.5},
				},
			},
			{
				ID:       "fig8/four-spes-increase",
				Label:    "4 SPEs",
				Paper:    "still increases; copy max ≈23",
				Measured: "GET 23.10, copy 21.55–23.3",
				Match:    "✓",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "spe-mem-get", Curve: "4 SPE", X: 16384},
						Lo: Metric{Probe: "spe-mem-get", Curve: "2 SPE", X: 16384}, Factor: 1.1},
					Range{M: Metric{Probe: "spe-mem-get", Curve: "4 SPE", X: 16384}, Min: 20.5, Max: 25},
				},
			},
			{
				ID:       "fig8/eight-spes-flat",
				Label:    "8 SPEs",
				Paper:    "slight drop (EIB ring saturation)",
				Measured: "23.22 (flat vs 4 SPEs)",
				Match:    "~ (drop is within noise here; the saturation penalty shows up strongly in Figs 15/16 instead)",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "spe-mem-get", Curve: "8 SPE", X: 16384},
						Den: Metric{Probe: "spe-mem-get", Curve: "4 SPE", X: 16384}, Min: 0.9, Max: 1.1},
				},
			},
			{
				ID:       "fig8/small-elems-slower",
				Label:    "small elems",
				Paper:    "128 B much slower, rising with size",
				Measured: "GET 7.75 → 10.06",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "spe-mem-get", Curve: "1 SPE", X: 16384},
						Lo: Metric{Probe: "spe-mem-get", Curve: "1 SPE", X: 128}, Factor: 1.15},
					Ordering{Hi: Metric{Probe: "spe-mem-get", Curve: "1 SPE", X: 2048},
						Lo: Metric{Probe: "spe-mem-get", Curve: "1 SPE", X: 128}},
				},
			},
		},
	},
	{
		Title: "## §4.2.2 — SPU to Local Store",
		Claims: []Claim{
			{
				ID:       "ls/quadword-peak",
				Label:    "16 B",
				Paper:    "peak 33.6",
				Measured: "33.60",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "spe-ls", Curve: "load", X: 16}, Min: 33.0, Max: 33.7},
					Ceiling{M: Metric{Probe: "spe-ls", Curve: "*", Stat: CurveMax}, Limit: 33.6, Slack: 0.005},
				},
			},
			{
				ID:       "ls/narrow-penalty",
				Label:    "narrower",
				Paper:    "slower (quadword-only ISA, extract/merge)",
				Measured: "0.70–8.40",
				Match:    "✓",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "spe-ls", Curve: "load", X: 16},
						Lo: Metric{Probe: "spe-ls", Curve: "load", X: 4}, Factor: 3.5},
					Range{M: Metric{Probe: "spe-ls", Curve: "load", X: 1}, Min: 0.3, Max: 3},
				},
			},
		},
	},
	{
		Title: "## Figure 10 — delayed DMA synchronization (one SPE pair)",
		Claims: []Claim{
			{
				ID:       "fig10/delayed-near-peak",
				Label:    "sync after all, ≥1 KB",
				Paper:    "almost peak 33.6",
				Measured: "32.06–33.28",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "pair-sync", Curve: "all", X: 16384}, Min: 30.5, Max: 33.6},
					Ceiling{M: Metric{Probe: "pair-sync", Curve: "*", Stat: CurveMax}, Limit: 33.6, Slack: 0.01},
				},
			},
			{
				ID:       "fig10/sync-every-loss",
				Label:    "sync every request",
				Paper:    "large loss, worst for 1–8 KB",
				Measured: "2 KB: 18.78 vs 32.95 (−43%)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "pair-sync", Curve: "all", X: 2048},
						Lo: Metric{Probe: "pair-sync", Curve: "every 1", X: 2048}, Factor: 1.4},
				},
			},
			{
				ID:       "fig10/small-elems-degrade",
				Label:    "< 1 KB elems",
				Paper:    "significant degradation regardless",
				Measured: "128 B: 8.40 even fully delayed",
				Match:    "✓",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "pair-sync", Curve: "all", X: 16384},
						Lo: Metric{Probe: "pair-sync", Curve: "all", X: 128}, Factor: 3},
					// The curve's shape, not just its endpoints: at 2 KB the pair
					// has already reached peak (within 15% of 16 KB), while the
					// 128-byte point sits below half of it.
					Knee{Probe: "pair-sync", Curve: "all", KneeX: 2048, MaxFrac: 0.5, FlatTol: 0.15},
				},
			},
			{
				ID:       "fig10/single-pair-stable",
				Label:    "single pair variation",
				Paper:    "\"under 2\" across runs",
				Measured: "≤ 0.6 across layouts/partners",
				Match:    "✓",
				Checks: []Check{
					VarianceBound{M: Metric{Probe: "pair-sync", Curve: "all", X: 16384, Stat: Spread}, MaxSpread: 2},
					Ratio{Num: Metric{Probe: "pair-distance", Curve: "16KB elements", Stat: CurveMax},
						Den: Metric{Probe: "pair-distance", Curve: "16KB elements", Stat: CurveMin}, Min: 0.95, Max: 1.06},
				},
			},
		},
	},
	{
		Title: "## Figures 12, 13 — couples of SPEs",
		Claims: []Claim{
			{
				ID:       "fig12/one-couple-peak",
				Label:    "2 SPEs (1 couple)",
				Paper:    "≈peak 33.6, elem and list",
				Measured: "33.28 / 33.27",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "couples-elem", Curve: "2 SPEs", X: 16384}, Min: 32, Max: 33.6},
					Range{M: Metric{Probe: "couples-list", Curve: "2 SPEs", X: 16384}, Min: 32, Max: 33.6},
				},
			},
			{
				ID:       "fig12/two-couples-peak",
				Label:    "4 SPEs (2 couples)",
				Paper:    "near peak 67.2",
				Measured: "66.18 / 65.99",
				Match:    "✓",
				Checks: []Check{
					Range{M: Metric{Probe: "couples-elem", Curve: "4 SPEs", X: 16384}, Min: 60, Max: 67.2},
				},
			},
			{
				ID:       "fig12/four-couples-seventy-pct",
				Label:    "8 SPEs elem avg",
				Paper:    "≈95 (70% of 134.4)",
				Measured: "99.35 (74%)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "couples-elem", Curve: "8 SPEs", X: 16384}, Min: 80, Max: 120},
					Ceiling{M: Metric{Probe: "couples-elem", Curve: "8 SPEs", X: 16384, Stat: MaxRun}, Limit: 134.4},
				},
			},
			{
				ID:       "fig12/list-tracks-elem",
				Label:    "8 SPEs list avg",
				Paper:    "≈81 (60%)",
				Measured: "99.29",
				Match:    "✗ (elem≈list here; the paper's own text is self-contradictory on which is slower — see DESIGN.md)",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "couples-list", Curve: "8 SPEs", X: 16384},
						Den: Metric{Probe: "couples-elem", Curve: "8 SPEs", X: 16384}, Min: 0.85, Max: 1.15},
				},
			},
			{
				ID:       "fig12/list-size-independent",
				Label:    "list vs size",
				Paper:    "constant, independent of element size",
				Measured: "33.06 at 128 B vs 33.27 at 16 KB",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ratio{Num: Metric{Probe: "couples-list", Curve: "2 SPEs", X: 128},
						Den: Metric{Probe: "couples-list", Curve: "2 SPEs", X: 16384}, Min: 0.95, Max: 1.05},
				},
			},
			{
				ID:       "fig12/elem-small-degrades",
				Label:    "elem < 1 KB",
				Paper:    "significant degradation",
				Measured: "8.40 at 128 B",
				Match:    "✓",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "couples-elem", Curve: "2 SPEs", X: 16384},
						Lo: Metric{Probe: "couples-elem", Curve: "2 SPEs", X: 128}, Factor: 3},
				},
			},
			{
				ID:       "fig13/placement-spread",
				Label:    "Fig 13 spread",
				Paper:    "wide min/max from physical placement",
				Measured: "min 46.2, max 106.6, med 105.2",
				Match:    "✓ (direction; our spread is wider than the paper's ~20–40)",
				Checks: []Check{
					VarianceBound{M: Metric{Probe: "couples-spread", Curve: "8 SPEs", X: 16384, Stat: Spread}, MinSpread: 10},
				},
			},
		},
	},
	{
		Title: "## Figures 15, 16 — cycle of SPEs (all active)",
		Claims: []Claim{
			{
				ID:       "fig15/two-ring-peak",
				Label:    "2 SPEs",
				Paper:    "peak 33.6",
				Measured: "33.57",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "cycle-elem", Curve: "2 SPEs", X: 16384}, Min: 32, Max: 33.7},
				},
			},
			{
				ID:       "fig15/four-saturating",
				Label:    "4 SPEs",
				Paper:    "≈50 of 67.2 (EIB saturated, 8 active DMAs)",
				Measured: "51.47 avg",
				Match:    "✓",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "cycle-elem", Curve: "4 SPEs", X: 16384},
						Den: Metric{Probe: "couples-elem", Curve: "4 SPEs", X: 16384}, Min: 0.6, Max: 0.95},
				},
			},
			{
				ID:       "fig15/eight-below-couples",
				Label:    "8 SPEs",
				Paper:    "≈70 of 134.4; below couples with half the DMAs",
				Measured: "78.64 avg (vs 99.35 couples)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "couples-elem", Curve: "8 SPEs", X: 16384},
						Lo: Metric{Probe: "cycle-elem", Curve: "8 SPEs", X: 16384}, Factor: 1.1},
				},
			},
			{
				ID:       "fig15/saturation-counterproductive",
				Label:    "saturation lesson",
				Paper:    "\"saturating the EIB is counterproductive\"",
				Measured: "cycle-8 per-SPE 9.8 vs couples-8 12.4",
				Match:    "✓",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "cycle-elem", Curve: "8 SPEs", X: 16384},
						Den: Metric{Probe: "couples-elem", Curve: "8 SPEs", X: 16384}, Min: 0.5, Max: 0.92},
				},
			},
			{
				ID:       "fig16/placement-spread",
				Label:    "Fig 16 spread",
				Paper:    "≈20 (elem), ≈10 (list), smaller than couples",
				Measured: "49 / 48 (median 77.7/77.8)",
				Match:    "~ (direction right vs couples min; magnitudes larger — see DESIGN.md)",
				Checks: []Check{
					VarianceBound{M: Metric{Probe: "cycle-spread", Curve: "8 SPEs", X: 16384, Stat: Spread}, MinSpread: 5},
					Ratio{Num: Metric{Probe: "cycle-list", Curve: "8 SPEs", X: 16384},
						Den: Metric{Probe: "cycle-elem", Curve: "8 SPEs", X: 16384}, Min: 0.85, Max: 1.15},
				},
			},
		},
		Footer: `The *mechanism* behind the Figure 13/16 spread is rendered by
` + "`cellbench -experiment layout-timeline`" + ` (section ` + "`layout-timeline`" + ` in
` + "`results/full_sweep.txt`" + `): it reruns the best and the worst of the
sampled layouts with the metrics sampler attached. In the checked-in
run the lucky layout (seed 8) holds a flat ~107 GB/s at ~100
wait-cycles per transfer for the whole run, while the unlucky one
(seed 2) is pinned at ~58 GB/s with ~500 wait-cycles per transfer —
sustained ring-segment conflicts, not transient warm-up. The same
conflicts are visible span-by-span in a Perfetto trace
(` + "`cellsim -trace`" + `, see README "Observability").`,
	},
	{
		Title: "## §1/§5 — streaming programming model",
		Claims: []Claim{
			{
				ID:       "stream/two-beat-one",
				Label:    "2 streams × 4 SPEs vs 1 × 8",
				Paper:    "\"can be more efficient\"",
				Measured: "8.35 vs 4.91 GB/s (+70%)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "streaming", Curve: "aggregate", X: 2},
						Lo: Metric{Probe: "streaming", Curve: "aggregate", X: 1}, Factor: 1.2},
				},
			},
			{
				ID:       "stream/more-readers",
				Label:    "more parallel readers",
				Paper:    "beneficial",
				Measured: "4 × 2 SPEs: 9.94",
				Match:    "✓",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "streaming", Curve: "aggregate", X: 4},
						Lo: Metric{Probe: "streaming", Curve: "aggregate", X: 2}},
				},
			},
		},
	},
	{
		Title: "## Workload library (README \"Scenarios\")",
		Claims: []Claim{
			{
				ID:       "wl/gups-element-scaling",
				Label:    "GUPS update rate vs element size",
				Paper:    "random updates are latency-bound: GB/s proportional to element size (Chen & Bader)",
				Measured: "1.36 / 2.73 / 5.38 / 10.79 / 21.50 at 8–128 B",
				Match:    "✓ (each doubling ≈ 2×)",
				Short:    true,
				Checks: []Check{
					Ratio{Num: Metric{Probe: "gups-chunk", Curve: "8 SPE update", X: 16},
						Den: Metric{Probe: "gups-chunk", Curve: "8 SPE update", X: 8}, Min: 1.8, Max: 2.2},
					Ratio{Num: Metric{Probe: "gups-chunk", Curve: "8 SPE update", X: 128},
						Den: Metric{Probe: "gups-chunk", Curve: "8 SPE update", X: 64}, Min: 1.8, Max: 2.2},
				},
			},
			{
				ID:       "wl/gups-chunk-knee",
				Label:    "GUPS small-element knee",
				Paper:    "sub-128 B gathers pay full DMA issue cost per element",
				Measured: "64 B at 50% of the 128 B rate; 8 B at 6%",
				Match:    "✓",
				Checks: []Check{
					Knee{Probe: "gups-chunk", Curve: "8 SPE update", KneeX: 128, MaxFrac: 0.55},
					Range{M: Metric{Probe: "gups-chunk", Curve: "8 SPE update", X: 64}, Min: 9.5, Max: 12},
				},
			},
			{
				ID:       "wl/gups-bank-interleave",
				Label:    "GUPS needs both XDR banks",
				Paper:    "random access across both banks; one bank throttles the table",
				Measured: "10.92 interleaved vs 7.61 single bank (−30%)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "gups-bank", Curve: "interleaved", X: 64},
						Lo: Metric{Probe: "gups-bank", Curve: "single bank", X: 64}, Factor: 1.25},
				},
			},
			{
				ID:       "wl/gups-bank-ceiling",
				Label:    "single-bank GUPS ceiling",
				Paper:    "one bank caps at 16.8, and random 64 B updates sit far below even that",
				Measured: "7.65 max, under the 16.8 bank rate",
				Match:    "✓",
				Checks: []Check{
					Ceiling{M: Metric{Probe: "gups-bank", Curve: "single bank", X: 64, Stat: MaxRun}, Limit: 16.8},
					Range{M: Metric{Probe: "gups-bank", Curve: "single bank", X: 64}, Min: 6, Max: 9},
				},
			},
			{
				ID:       "wl/qcd-sustained",
				Label:    "QCD sweep bandwidth",
				Paper:    "spinor streaming + halo sustains near the Fig 8 memory rate (Belletti et al.)",
				Measured: "18.83 at 4 KB spinors (8 SPEs)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "qcd-chunk", Curve: "8 SPE halo", X: 4096}, Min: 17, Max: 21},
				},
			},
			{
				ID:       "wl/qcd-spinor-size",
				Label:    "QCD vs spinor size",
				Paper:    "flat at stream sizes; 16 KB slabs amortize the halo fence",
				Measured: "18.87 / 18.78 / 18.83 / 24.63 at 256 B–16 KB",
				Match:    "✓",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "qcd-chunk", Curve: "8 SPE halo", X: 256},
						Den: Metric{Probe: "qcd-chunk", Curve: "8 SPE halo", X: 4096}, Min: 0.9, Max: 1.1},
					Ordering{Hi: Metric{Probe: "qcd-chunk", Curve: "8 SPE halo", X: 16384},
						Lo: Metric{Probe: "qcd-chunk", Curve: "8 SPE halo", X: 256}, Factor: 1.15},
				},
			},
			{
				ID:       "wl/qcd-ring-locality",
				Label:    "halo-ring placement locality",
				Paper:    "ring traffic is locality-ordered across layouts: colliding placements halve it",
				Measured: "best layout 107.1, worst 45.7 (pure halo ring)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "qcd-ring", Curve: "halo ring", X: 1024, Stat: MaxRun},
						Lo: Metric{Probe: "qcd-ring", Curve: "halo ring", X: 1024, Stat: MinRun}, Factor: 1.8},
					Ceiling{M: Metric{Probe: "qcd-ring", Curve: "halo ring", X: 1024, Stat: MaxRun}, Limit: 134.4},
				},
			},
			{
				ID:       "wl/qcd-place-damped",
				Label:    "full QCD damps placement",
				Paper:    "memory streams dominate the halo, so placement costs % not ×",
				Measured: "18.05–20.38 across 8 placements (spread 2.3)",
				Match:    "✓",
				Checks: []Check{
					VarianceBound{M: Metric{Probe: "qcd-place", Curve: "8 SPE halo", X: 4096, Stat: Spread},
						MinSpread: 0.3, MaxSpread: 5},
				},
			},
			{
				ID:       "wl/md-sustained",
				Label:    "MD force loop bandwidth",
				Paper:    "gather/compute/scatter sustains the Fig 8 memory rate",
				Measured: "20.17 at 512 B pairs (8 SPEs)",
				Match:    "✓",
				Checks: []Check{
					Range{M: Metric{Probe: "md-chunk", Curve: "8 SPE pairs", X: 512}, Min: 18.5, Max: 21.5},
				},
			},
			{
				ID:       "wl/md-element-insensitive",
				Label:    "MD vs pair-record size",
				Paper:    "deep async gathers hide per-element cost down to 128 B",
				Measured: "19.82 at 128 B vs 21.12 at 4 KB (−6%)",
				Match:    "✓",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "md-chunk", Curve: "8 SPE pairs", X: 128},
						Den: Metric{Probe: "md-chunk", Curve: "8 SPE pairs", X: 4096}, Min: 0.85, Max: 1.02},
				},
			},
			{
				ID:       "wl/stream-triad-band",
				Label:    "STREAM triad",
				Paper:    "21.8 on real hardware (McCalpin kernel, cellbench `stream`)",
				Measured: "21.99 (scenario preset, 8 SPEs, 16 KB blocks)",
				Match:    "✓",
				Short:    true,
				Checks: []Check{
					Range{M: Metric{Probe: "stream-ops", Curve: "triad", X: 16384}, Min: 20.5, Max: 23.5},
				},
			},
			{
				ID:       "wl/stream-triad-vs-copy",
				Label:    "triad vs copy ratio",
				Paper:    "three-array kernels slightly above two-array (more overlap per fence)",
				Measured: "21.99 / 21.39 = 1.03",
				Match:    "✓",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "stream-ops", Curve: "triad", X: 16384},
						Den: Metric{Probe: "stream-ops", Curve: "copy", X: 16384}, Min: 0.95, Max: 1.15},
				},
			},
			{
				ID:       "wl/stream-op-pairs",
				Label:    "scale=copy, add=triad",
				Paper:    "compute op is free: bandwidth depends only on the array count",
				Measured: "identical phase programs, bit-identical rates",
				Match:    "✓",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "stream-ops", Curve: "scale", X: 16384},
						Den: Metric{Probe: "stream-ops", Curve: "copy", X: 16384}, Min: 0.999, Max: 1.001},
					Ratio{Num: Metric{Probe: "stream-ops", Curve: "add", X: 16384},
						Den: Metric{Probe: "stream-ops", Curve: "triad", X: 16384}, Min: 0.999, Max: 1.001},
				},
			},
			{
				ID:       "wl/stream-block-insensitive",
				Label:    "triad vs block size",
				Paper:    "double-buffered streams saturate from 512 B blocks on",
				Measured: "21.52 / 21.49 / 21.99 at 512 B / 2 KB / 16 KB",
				Match:    "✓",
				Checks: []Check{
					Ratio{Num: Metric{Probe: "stream-chunk", Curve: "triad", X: 512},
						Den: Metric{Probe: "stream-chunk", Curve: "triad", X: 16384}, Min: 0.9, Max: 1.05},
					Ratio{Num: Metric{Probe: "stream-chunk", Curve: "triad", X: 2048},
						Den: Metric{Probe: "stream-chunk", Curve: "triad", X: 16384}, Min: 0.9, Max: 1.05},
				},
			},
		},
		Footer: `The workload presets (` + "`gups`" + `, ` + "`qcd`" + `, ` + "`md`" + `, ` + "`stream`" + `) are data-driven
phase programs on the pattern interpreter — see README "Scenarios" for
the lineage (Chen & Bader's GUPS characterisation, Belletti et al.'s
lattice QCD, McCalpin's STREAM) and DESIGN.md for the pattern layer.
The provenance run behind the preset rows is the ` + "`workloads`" + ` section of
` + "`results/full_sweep.txt`" + ` (` + "`cellbench -experiment workloads`" + `); the
halo-ring and bank-split rows come from the conformance probes
themselves (explicit phase program / config variant, quick volumes).`,
	},
	{
		Title: "## Extensions (the paper's §5 future work)",
		Footer: "`cellbench -experiment kernels` — streamed compute kernels, GFLOPS\n" +
			"(1→8 SPEs): dot 2.3→5.7 (bandwidth-bound, saturates exactly where\n" +
			"Figure 8 saturates), matvec 4.7→10.7, matmul 16.8→132.5 (compute-bound,\n" +
			"linear scaling at ~16.8 GFLOPS per SPE, the SP-SIMD peak).\n" +
			"\n" +
			"`cellbench -experiment dma-latency` — synchronous round trip: 115 cycles\n" +
			"(128 B LS→LS) to 3051 cycles (16 KB from memory); the 390-cycle 128 B\n" +
			"memory latency is the RTT term in the window model that caps one SPE at\n" +
			"~10 GB/s.\n" +
			"\n" +
			"`cellbench -experiment stream` — McCalpin STREAM on SPEs (GB/s, 1→8):\n" +
			"copy 9.6→20.3, scale 9.5→21.0, add 10.1→21.7, triad 10.1→21.8 — all four\n" +
			"kernels track the Figure 8 memory ceiling, saturating past 4 SPEs.\n" +
			"\n" +
			"`cellbench -experiment cross-chip` — the §5 dual-chip warning: an SPE\n" +
			"pair reaches 33.3 GB/s on-chip but only 11.9 GB/s when the partner sits\n" +
			"on the second chip (GET and PUT each crossing a 7 GB/s IOIF direction);\n" +
			"at 128-byte elements both are equally setup-bound at 8.4.\n" +
			"\n" +
			"`examples/taskfarm` — the CellSs-style task runtime: a 16-stage dependent\n" +
			"chain over 64 KB blocks on 4 workers runs 1.53× faster under the\n" +
			"LS-forwarding policy than through memory, with results byte-exact and the\n" +
			"task tally kept by getllar/putllc atomics.\n" +
			"\n" +
			"`examples/stencil` — 1D Jacobi over 32 Ki cells on 8 SPEs with LS-to-LS\n" +
			"halo exchange: 64 iterations in 146 µs of simulated time, bit-for-bit\n" +
			"equal to the host float32 reference.",
	},
	{
		Title:  "## Ablations (`go test -bench=Ablation`)",
		Header: []string{"Rule from §5", "off", "on"},
		Claims: []Claim{
			{
				ID:       "abl/delay-sync",
				Label:    "delay DMA synchronization",
				Paper:    "18.9",
				Measured: "32.8 GB/s",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "pair-sync", Curve: "all", X: 2048},
						Lo: Metric{Probe: "pair-sync", Curve: "every 1", X: 2048}, Factor: 1.3},
				},
			},
			{
				ID:       "abl/lists-small-chunks",
				Label:    "DMA lists for small chunks",
				Paper:    "8.4 (elem 128 B)",
				Measured: "33.0 GB/s (list 128 B)",
				Short:    true,
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "couples-list", Curve: "2 SPEs", X: 128},
						Lo: Metric{Probe: "couples-elem", Curve: "2 SPEs", X: 128}, Factor: 3},
					Ordering{Hi: Metric{Probe: "spe-mem-get-list", Curve: "1 SPE", X: 128},
						Lo: Metric{Probe: "spe-mem-get", Curve: "1 SPE", X: 128}, Factor: 1.1},
					Ratio{Num: Metric{Probe: "spe-mem-get-list", Curve: "1 SPE", X: 128},
						Den: Metric{Probe: "spe-mem-get-list", Curve: "1 SPE", X: 16384}, Min: 0.9, Max: 1.1},
				},
			},
			{
				ID:       "abl/bank-interleave",
				Label:    "spread pages over both banks",
				Paper:    "16.4 (one bank)",
				Measured: "23.2 GB/s",
				Short:    true,
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "mem-bank", Curve: "interleaved", X: 16384},
						Lo: Metric{Probe: "mem-bank", Curve: "single bank", X: 16384}, Factor: 1.2},
					Ceiling{M: Metric{Probe: "mem-bank", Curve: "single bank", X: 16384, Stat: MaxRun}, Limit: 16.8, Slack: 0.02},
				},
			},
			{
				ID:       "abl/mfc-window",
				Label:    "MFC window is the 1-SPE ceiling",
				Paper:    "10.3 (window 16)",
				Measured: "16.7 GB/s (window 64)",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "mfc-window", Curve: "window 64", X: 16384},
						Lo: Metric{Probe: "mfc-window", Curve: "window 16", X: 16384}, Factor: 1.3},
				},
			},
			{
				ID:       "abl/l2-prefetcher",
				Label:    "L2 prefetcher ⇒ mem read = L2 read",
				Paper:    "0.58",
				Measured: "2.04 GB/s",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "ppe-prefetch", Curve: "prefetch on", X: 8},
						Lo: Metric{Probe: "ppe-prefetch", Curve: "prefetch off", X: 8}, Factor: 2},
				},
			},
			{
				ID:       "abl/ring-arbitration",
				Label:    "imperfect EIB arbitration (model)",
				Paper:    "102.4 (ideal)",
				Measured: "95.0 GB/s (gap 64)",
				Checks: []Check{
					Ordering{Hi: Metric{Probe: "eib-arb", Curve: "ideal arbiter", X: 16384},
						Lo: Metric{Probe: "eib-arb", Curve: "real arbiter", X: 16384}},
				},
			},
		},
	},
}
