// Package conformance machine-checks the repository's reproduction of the
// paper: every quantitative or qualitative statement EXPERIMENTS.md records
// ("DMA-list bandwidth is independent of element size", "the MIC caps one
// bank at 16.8 GB/s", "synchronizing every request loses 40% at 2 KB") is
// encoded as a typed claim — an Ordering, Ceiling, Knee, VarianceBound,
// Ratio or Range over named measurements — and evaluated against fresh
// simulator runs by `go test ./internal/conformance`.
//
// The same claim data renders the EXPERIMENTS.md tables (see Doc), so the
// document and the test suite cannot diverge: a claim edit changes both,
// and TestExperimentsDocInSync fails when the checked-in file was not
// regenerated (`go generate .`).
//
// Claims deliberately assert the paper's physics (shapes, knees, ceilings,
// orderings, layout variance), not exact cycle counts — the determinism
// goldens in the repository root pin those. This split is what lets the
// simulator be refactored freely: a change may shift a bandwidth by a few
// percent and still conform, but it cannot silently flip a ✓ in the
// reproduction record to a ✗.
package conformance

import "fmt"

// Claim is one row of an EXPERIMENTS.md table: the paper's statement, the
// recorded measurement of the checked-in full run, the match verdict, and
// the executable checks that guard the statement.
type Claim struct {
	// ID names the claim for reports and test filters, e.g. "fig10/sync-every-loss".
	ID string
	// Label, Paper, Measured and Match are the table cells of the claim's
	// EXPERIMENTS.md row. Measured records the checked-in full-volume run;
	// the checks validate the claim's physics at quick-run parameters.
	Label    string
	Paper    string
	Measured string
	Match    string
	// Short marks the claim as part of the quick CI subset (-short).
	Short bool
	// Checks are the executable guards; all must pass.
	Checks []Check
}

// Outcome is the evaluation result of one claim.
type Outcome struct {
	Claim   *Claim
	Details []string // one human-readable line per check
	Err     error    // first failing check, nil when the claim holds
}

// Section is one figure's block of EXPERIMENTS.md: a heading, the claim
// table, and optional prose around it.
type Section struct {
	// Title is the markdown heading, e.g. "## Figure 3 — PPE to L1 cache".
	Title string
	// Header overrides the table column names; nil means the standard
	// {"", "Paper", "Measured", "Match"}. The ablations table uses three
	// columns, so its claims leave Match empty.
	Header []string
	// Claims are the table rows. A section with no claims renders as
	// prose only (its Footer).
	Claims []Claim
	// Footer is verbatim markdown after the table (mechanism notes).
	Footer string
}

// Claims returns every claim of every section, in document order.
func Claims() []*Claim {
	var out []*Claim
	for _, s := range sections {
		for i := range s.Claims {
			out = append(out, &s.Claims[i])
		}
	}
	return out
}

// Lookup finds a claim by ID.
func Lookup(id string) (*Claim, error) {
	for _, c := range Claims() {
		if c.ID == id {
			return c, nil
		}
	}
	return nil, fmt.Errorf("conformance: unknown claim %q", id)
}

// Eval evaluates one claim against the dataset.
func Eval(c *Claim, d *Dataset) Outcome {
	out := Outcome{Claim: c}
	for _, ch := range c.Checks {
		detail, err := ch.Eval(d)
		out.Details = append(out.Details, fmt.Sprintf("%s: %s", ch.Describe(), detail))
		if err != nil && out.Err == nil {
			out.Err = fmt.Errorf("%s: %w", c.ID, err)
		}
	}
	return out
}

// EvalAll evaluates every claim (or only the Short subset) against d, in
// document order.
func EvalAll(d *Dataset, short bool) []Outcome {
	var out []Outcome
	for _, c := range Claims() {
		if short && !c.Short {
			continue
		}
		out = append(out, Eval(c, d))
	}
	return out
}
