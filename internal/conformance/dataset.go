package conformance

import (
	"fmt"
	"sync"

	"cellbe/internal/cell"
	"cellbe/internal/core"
	"cellbe/internal/stats"
)

// Dataset lazily runs and caches the measurement probes claims draw from.
// Each probe is computed at most once per Dataset, on first use, so the
// cost of an evaluation is exactly the probes the selected claims need —
// and claim order (or test shuffling) cannot change any result, because
// every probe builds its own systems from fixed seeds.
type Dataset struct {
	params core.Params

	mu      sync.Mutex
	entries map[string]*datasetEntry
}

type datasetEntry struct {
	once sync.Once
	res  *core.Result
	err  error
}

// QuickParams returns the evaluation parameters of the conformance suite:
// the experiments' quick-run volume (512 KB per SPE reaches steady state;
// see the calibration tests) across 3 layout seeds — or 2 in the short CI
// subset, where wall-clock is budgeted under `-race`.
func QuickParams(short bool) core.Params {
	p := core.DefaultParams()
	p.Runs = 3
	if short {
		p.Runs = 2
	}
	p.BytesPerSPE = 512 << 10
	p.PPEBytes = 1 << 20
	return p
}

// NewDataset returns an empty dataset evaluating probes at params.
func NewDataset(params core.Params) *Dataset {
	return &Dataset{params: params, entries: make(map[string]*datasetEntry)}
}

// Result runs (or returns the cached result of) the named probe.
func (d *Dataset) Result(name string) (*core.Result, error) {
	p, ok := probes[name]
	if !ok {
		return nil, fmt.Errorf("conformance: unknown probe %q", name)
	}
	d.mu.Lock()
	e := d.entries[name]
	if e == nil {
		e = &datasetEntry{}
		d.entries[name] = e
	}
	d.mu.Unlock()
	e.once.Do(func() {
		params := d.params
		if p.tweak != nil {
			p.tweak(&params)
		}
		e.res, e.err = p.run(params)
	})
	return e.res, e.err
}

// ProbeNames returns every registered probe (for coverage checks).
func ProbeNames() []string {
	var names []string
	for n := range probes {
		names = append(names, n)
	}
	return names
}

// probe is one named measurement function: an experiment restricted to
// the grid points the claims actually reference.
type probe struct {
	tweak func(*core.Params)
	run   func(core.Params) (*core.Result, error)
}

var probes = map[string]probe{
	// The three PPE figures are layout-independent and deterministic, so
	// one run suffices regardless of the dataset's Runs.
	"ppe-l1": {
		tweak: func(p *core.Params) { p.Runs = 1 },
		run:   func(p core.Params) (*core.Result, error) { return core.PPEBandwidth(p, core.LevelL1) },
	},
	// L2 and memory traversals simulate every element access, so these two
	// probes restrict the access-width axis to the points the claims cite
	// (1-byte sweeps over megabyte buffers dominate the suite otherwise).
	"ppe-l2": {
		tweak: func(p *core.Params) { p.Runs = 1; p.Elems = []int{1, 16} },
		run:   func(p core.Params) (*core.Result, error) { return core.PPEBandwidth(p, core.LevelL2) },
	},
	"ppe-mem": {
		tweak: func(p *core.Params) { p.Runs = 1; p.Elems = []int{16} },
		run:   func(p core.Params) (*core.Result, error) { return core.PPEBandwidth(p, core.LevelMem) },
	},
	"spe-ls": {
		tweak: func(p *core.Params) { p.Runs = 1 },
		run:   core.SPELocalStore,
	},
	// Figure 8, restricted to the element sizes and SPE counts the claims
	// cite.
	"spe-mem-get": {
		tweak: func(p *core.Params) { p.Chunks = []int{128, 2048, 16384}; p.SPESweep = []int{1, 2, 4, 8} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPEMemory(p, core.DMAGet, false) },
	},
	"spe-mem-put": {
		tweak: func(p *core.Params) { p.Chunks = []int{16384}; p.SPESweep = []int{1} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPEMemory(p, core.DMAPut, false) },
	},
	"spe-mem-copy": {
		tweak: func(p *core.Params) { p.Chunks = []int{16384}; p.SPESweep = []int{1} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPEMemory(p, core.DMACopy, false) },
	},
	"spe-mem-get-list": {
		tweak: func(p *core.Params) { p.Chunks = []int{128, 16384}; p.SPESweep = []int{1} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPEMemory(p, core.DMAGet, true) },
	},
	// Figure 10: fully delayed ("all") against sync-every-request.
	"pair-sync": {
		tweak: func(p *core.Params) { p.Syncs = []int{1, 0}; p.Chunks = []int{128, 2048, 16384} },
		run:   core.SPEPairSync,
	},
	"pair-distance": {
		run: core.SPEPairDistance,
	},
	// Figures 12/13 and 15/16.
	"couples-elem": {
		tweak: func(p *core.Params) { p.Chunks = []int{128, 16384}; p.SPESweep = []int{2, 4, 8} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPECouples(p, false) },
	},
	"couples-list": {
		tweak: func(p *core.Params) { p.Chunks = []int{128, 16384}; p.SPESweep = []int{2, 4, 8} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPECouples(p, true) },
	},
	"cycle-elem": {
		tweak: func(p *core.Params) { p.Chunks = []int{16384}; p.SPESweep = []int{2, 4, 8} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPECycle(p, false) },
	},
	"cycle-list": {
		tweak: func(p *core.Params) { p.Chunks = []int{16384}; p.SPESweep = []int{2, 4, 8} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPECycle(p, true) },
	},
	// Layout-placement spread needs more samples than the mean claims: 8
	// layouts, as the paper's 10 repeated runs.
	"couples-spread": {
		tweak: func(p *core.Params) { p.Runs = 8; p.Chunks = []int{16384}; p.SPESweep = []int{8} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPECouples(p, false) },
	},
	"cycle-spread": {
		tweak: func(p *core.Params) { p.Runs = 8; p.Chunks = []int{16384}; p.SPESweep = []int{8} },
		run:   func(p core.Params) (*core.Result, error) { return core.SPECycle(p, false) },
	},
	// §1/§5 streaming pipelines.
	"streaming": {
		run: core.Streaming,
	},
	// The MIC bank ceiling: 4 SPEs streaming GETs against one bank versus
	// pages interleaved over both.
	"mem-bank": {
		run: memBankProbe,
	},
	// The remaining §5 ablations: each toggles one config knob and keeps
	// everything else at the default.
	"mfc-window": {
		run: func(p core.Params) (*core.Result, error) {
			return configProbe(p, "mfc-window", "mem", 1, func(cfg *cell.Config, on bool) string {
				if on {
					cfg.MFC.Window = 64
					return "window 64"
				}
				cfg.MFC.Window = 16
				return "window 16"
			})
		},
	},
	"eib-arb": {
		// The arbitration gap only bites on placements whose paths
		// collide: average enough layouts (and a long enough stream) for
		// the colliding ones to dominate the comparison, as the ablation
		// benchmark does.
		tweak: func(p *core.Params) { p.Runs = 6; p.BytesPerSPE = 1 << 20 },
		run: func(p core.Params) (*core.Result, error) {
			return configProbe(p, "eib-arb", "couples", 8, func(cfg *cell.Config, on bool) string {
				if on {
					return "real arbiter"
				}
				cfg.EIB.RingDeadCycles = 0
				return "ideal arbiter"
			})
		},
	},
	"ppe-prefetch": {
		run: ppePrefetchProbe,
	},
	// The workload library (README "Scenarios"): GUPS, QCD halo, MD and
	// STREAM presets of the pattern interpreter, restricted to the grid
	// points the "Workload library" claims reference. GUPS probes scale
	// the volume down — its elements are 8..128 B gathers, so the same
	// bytes cost orders of magnitude more commands than a DMA stream.
	"gups-chunk": {
		tweak: func(p *core.Params) { p.BytesPerSPE = 32 << 10 },
		run: func(p core.Params) (*core.Result, error) {
			return workloadProbe(p, "gups-chunk", "GUPS table updates vs element size (8 SPEs)",
				[]workloadVariant{{label: "8 SPE update",
					spec: core.SweepSpec{Scenario: "gups", SPEs: 8, Op: "both", Chunks: []int{8, 16, 32, 64, 128}}}})
		},
	},
	"gups-bank": {
		tweak: func(p *core.Params) { p.BytesPerSPE = 128 << 10 },
		run: func(p core.Params) (*core.Result, error) {
			single := cell.DefaultConfig()
			single.Mem.Interleave = false
			spec := core.SweepSpec{Scenario: "gups", SPEs: 8, Op: "both", Chunks: []int{64}}
			return workloadProbe(p, "gups-bank", "GUPS updates: interleaved banks vs a single bank",
				[]workloadVariant{
					{label: "interleaved", spec: spec},
					{label: "single bank", spec: spec, base: &single},
				})
		},
	},
	// The qcd halo phase in isolation: an explicit ring-only phase program
	// (no memory streams to mask the EIB), run over a pinned census of
	// layouts — the identity plus eight scrambled placements — because the
	// locality ordering lives *across layouts*: a placement that folds the
	// logical ring onto colliding ring segments halves the halo rate.
	"qcd-ring": {
		run: func(p core.Params) (*core.Result, error) {
			ring := &cell.Pattern{Phases: []cell.Phase{{Access: "ring", Bytes: 256 << 10}}}
			return workloadProbe(p, "qcd-ring", "QCD halo ring in isolation, across SPE placements",
				[]workloadVariant{{label: "halo ring", seeds: []int64{0, 1, 2, 3, 4, 5, 6, 7, 8},
					spec: core.SweepSpec{Scenario: "pattern", SPEs: 8, Pattern: ring, Chunks: []int{1024}}}})
		},
	},
	"qcd-chunk": {
		run: func(p core.Params) (*core.Result, error) {
			return workloadProbe(p, "qcd-chunk", "QCD sweep vs spinor element size (8 SPEs)",
				[]workloadVariant{{label: "8 SPE halo",
					spec: core.SweepSpec{Scenario: "qcd", SPEs: 8, Chunks: []int{256, 1024, 4096, 16384}}}})
		},
	},
	// Placement spread wants more layout samples than the mean claims, as
	// the Figure 13/16 spread probes do.
	"qcd-place": {
		tweak: func(p *core.Params) { p.Runs = 8 },
		run: func(p core.Params) (*core.Result, error) {
			return workloadProbe(p, "qcd-place", "QCD halo bandwidth across SPE placements",
				[]workloadVariant{{label: "8 SPE halo",
					spec: core.SweepSpec{Scenario: "qcd", SPEs: 8, Chunks: []int{4096}}}})
		},
	},
	"md-chunk": {
		run: func(p core.Params) (*core.Result, error) {
			return workloadProbe(p, "md-chunk", "MD pair gather/scatter vs element size (8 SPEs)",
				[]workloadVariant{{label: "8 SPE pairs",
					spec: core.SweepSpec{Scenario: "md", SPEs: 8, Chunks: []int{128, 512, 4096}}}})
		},
	},
	"stream-ops": {
		run: func(p core.Params) (*core.Result, error) {
			var variants []workloadVariant
			for _, op := range []string{"copy", "scale", "add", "triad"} {
				variants = append(variants, workloadVariant{label: op,
					spec: core.SweepSpec{Scenario: "stream", SPEs: 8, Op: op, Chunks: []int{16384}}})
			}
			return workloadProbe(p, "stream-ops", "STREAM scenario kernels at 16 KB blocks (8 SPEs)", variants)
		},
	},
	"stream-chunk": {
		run: func(p core.Params) (*core.Result, error) {
			return workloadProbe(p, "stream-chunk", "STREAM triad vs block size (8 SPEs)",
				[]workloadVariant{{label: "triad",
					spec: core.SweepSpec{Scenario: "stream", SPEs: 8, Op: "triad", Chunks: []int{512, 2048, 16384}}}})
		},
	},
}

// workloadVariant is one curve of a workload-library probe: a sweep spec
// (seeds and volume filled in from the dataset parameters unless pinned)
// plus an optional config override.
type workloadVariant struct {
	label string
	seeds []int64
	spec  core.SweepSpec
	base  *cell.Config
}

// workloadProbe folds workload-library sweeps into labeled curves over
// the element-size axis.
func workloadProbe(p core.Params, name, title string, variants []workloadVariant) (*core.Result, error) {
	res := &core.Result{Name: name, Title: title, XLabel: "element size (bytes)", YLabel: "GB/s"}
	defSeeds := make([]int64, p.Runs)
	for i := range defSeeds {
		defSeeds[i] = p.FirstSeed + int64(i)
	}
	for _, v := range variants {
		spec := v.spec
		spec.Seeds = v.seeds
		if spec.Seeds == nil {
			spec.Seeds = defSeeds
		}
		spec.Volume = p.BytesPerSPE
		spec.Base = v.base
		if spec.Base == nil {
			spec.Base = p.Base
		}
		results, err := core.RunSweep(spec)
		if err != nil {
			return nil, err
		}
		series := stats.NewSeries(v.label, spec.Chunks)
		for _, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("conformance: %s point %s chunk=%d seed=%d: %w", name, v.label, r.Chunk, r.Seed, r.Err)
			}
			series.Add(r.Chunk, r.GBps)
		}
		res.Curves = append(res.Curves, core.CurveFromSeries(series))
	}
	return res, nil
}

// memBankProbe measures the NUMA placement ablation via the sweep runner:
// the same 4-SPE, 16 KB GET stream once with pages interleaved over both
// XDR banks and once pinned to the MIC-local bank, whose 16.8 GB/s rate
// then caps the aggregate.
func memBankProbe(p core.Params) (*core.Result, error) {
	res := &core.Result{
		Name:   "mem-bank",
		Title:  "SPE to memory GETs: interleaved banks vs a single bank",
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	seeds := make([]int64, p.Runs)
	for i := range seeds {
		seeds[i] = p.FirstSeed + int64(i)
	}
	for _, variant := range []struct {
		label      string
		interleave bool
	}{{"interleaved", true}, {"single bank", false}} {
		cfg := p.Base
		base := cell.DefaultConfig()
		if cfg != nil {
			base = *cfg
		}
		base.Mem.Interleave = variant.interleave
		results, err := core.RunSweep(core.SweepSpec{
			Scenario: "mem",
			SPEs:     4,
			Op:       "get",
			Chunks:   []int{16384},
			Seeds:    seeds,
			Volume:   p.BytesPerSPE,
			Base:     &base,
		})
		if err != nil {
			return nil, err
		}
		series := stats.NewSeries(variant.label, []int{16384})
		for _, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("conformance: mem-bank point chunk=%d seed=%d: %w", r.Chunk, r.Seed, r.Err)
			}
			series.Add(r.Chunk, r.GBps)
		}
		res.Curves = append(res.Curves, core.CurveFromSeries(series))
	}
	return res, nil
}

// configProbe runs one sweep scenario at 16 KB chunks twice — once with a
// config knob off, once on — and returns the pair as two curves named by
// the mutator.
func configProbe(p core.Params, name, scenario string, spes int, mutate func(cfg *cell.Config, on bool) string) (*core.Result, error) {
	res := &core.Result{
		Name:   name,
		Title:  fmt.Sprintf("%s scenario with a §5 design rule off and on", scenario),
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	seeds := make([]int64, p.Runs)
	for i := range seeds {
		seeds[i] = p.FirstSeed + int64(i)
	}
	for _, on := range []bool{false, true} {
		base := cell.DefaultConfig()
		if p.Base != nil {
			base = *p.Base
		}
		label := mutate(&base, on)
		results, err := core.RunSweep(core.SweepSpec{
			Scenario: scenario,
			SPEs:     spes,
			Op:       "get",
			Chunks:   []int{16384},
			Seeds:    seeds,
			Volume:   p.BytesPerSPE,
			Base:     &base,
		})
		if err != nil {
			return nil, err
		}
		series := stats.NewSeries(label, []int{16384})
		for _, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("conformance: %s point chunk=%d seed=%d: %w", name, r.Chunk, r.Seed, r.Err)
			}
			series.Add(r.Chunk, r.GBps)
		}
		res.Curves = append(res.Curves, core.CurveFromSeries(series))
	}
	return res, nil
}

// ppePrefetchProbe isolates the L2 stream prefetcher behind Figure 6's
// read equality: the PPE main-memory load curve with the prefetcher
// disabled and at the default depth. Curves are relabeled "prefetch off"
// and "prefetch on"; the x axis is the access width.
func ppePrefetchProbe(p core.Params) (*core.Result, error) {
	res := &core.Result{
		Name:   "ppe-prefetch",
		Title:  "PPE main-memory loads without and with the L2 prefetcher",
		XLabel: "element size (bytes)",
		YLabel: "GB/s",
	}
	p.Runs = 1
	p.Elems = []int{8}
	for _, on := range []bool{false, true} {
		cfg := cell.DefaultConfig()
		if p.Base != nil {
			cfg = *p.Base
		}
		label := "prefetch on"
		if !on {
			cfg.PPE.PrefetchDepth = 0
			label = "prefetch off"
		}
		params := p
		params.Base = &cfg
		mem, err := core.PPEBandwidth(params, core.LevelMem)
		if err != nil {
			return nil, err
		}
		c := mem.Curve("load 1T")
		if c == nil {
			return nil, fmt.Errorf("conformance: ppe-mem probe has no load 1T curve")
		}
		res.Curves = append(res.Curves, core.Curve{Label: label, Points: c.Points})
	}
	return res, nil
}
