// Package task is a CellSs-style offload runtime on top of the simulator:
// the programming model the paper's related work introduces (Bellens et
// al.) and whose runtime the paper says its bandwidth guidelines should
// optimize. Tasks name their main-memory operands; the runtime infers
// dependencies from operand overlap, schedules ready tasks onto SPE
// workers, stages inputs into local stores by DMA (with the paper's
// delayed-synchronization discipline), runs the compute, and writes
// outputs back.
//
// Two data-movement policies are provided, directly encoding the paper's
// findings:
//
//   - ThroughMemory: every operand moves through main memory — simple,
//     but bounded by the ~10 GB/s a single SPE gets from memory.
//   - Forwarding: when a task consumes exactly what an earlier task
//     produced and that output is still resident in the producer's local
//     store, the consumer fetches it LS-to-LS (up to 33.6 GB/s per pair,
//     §4.2.3) or reuses it in place when scheduled on the same worker.
package task

import (
	"fmt"

	"cellbe/internal/cell"
	"cellbe/internal/mfc"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
)

// Buffer is a task operand in main memory.
type Buffer struct {
	EA   int64
	Size int
}

func (b Buffer) overlaps(o Buffer) bool {
	return b.EA < o.EA+int64(o.Size) && o.EA < b.EA+int64(b.Size)
}

// Task is one unit of offloaded work. Inputs are staged into the worker's
// local store, Compute runs on the staged bytes, and Outputs are written
// back. ComputeCycles is the simulated cost of Compute (e.g. bytes/16 for
// a SIMD-rate pass).
type Task struct {
	Name          string
	Inputs        []Buffer
	Outputs       []Buffer
	ComputeCycles sim.Time
	// Compute transforms staged input bytes into output bytes. Slices
	// alias local store staging areas; indexes follow Inputs/Outputs.
	// May be nil for pure traffic studies.
	Compute func(in [][]byte, out [][]byte)

	id      int
	deps    []*Task
	ndeps   int // unresolved dependency count
	dones   []*Task
	state   taskState
	worker  int // where it ran
	started sim.Time
	ended   sim.Time
}

type taskState int

const (
	statePending taskState = iota
	stateReady
	stateRunning
	stateDone
)

// Policy selects the data-movement strategy.
type Policy int

// Policies.
const (
	// ThroughMemory stages every operand via main memory.
	ThroughMemory Policy = iota
	// Forwarding fetches inputs LS-to-LS from the producing worker when
	// the produced data is still resident, and skips staging entirely
	// when producer and consumer share a worker.
	Forwarding
)

func (p Policy) String() string {
	if p == Forwarding {
		return "forwarding"
	}
	return "through-memory"
}

// Stats summarizes a runtime execution.
type Stats struct {
	Tasks       int
	Cycles      sim.Time
	BytesStaged int64 // DMA bytes moved for operands
	ForwardedLS int   // inputs satisfied LS-to-LS
	ReusedInLS  int   // inputs reused in place (same worker)
	PerWorker   []int // tasks per worker
}

// Runtime schedules tasks over a set of SPE workers.
type Runtime struct {
	sys     *cell.System
	workers []int
	policy  Policy
	tasks   []*Task

	// residency: which task's outputs each worker's LS currently holds,
	// and at which staging offsets.
	resident []map[*Task][]int
}

// lsIn / lsOut are the staging areas inside each worker's local store:
// inputs at [0, 96K), outputs at [96K, 192K). The region above 192K is
// free for the atomic scratch and program state.
const (
	lsIn     = 0
	lsOut    = 96 << 10
	lsRegion = 96 << 10
)

// New builds a runtime over the given logical SPE workers.
func New(sys *cell.System, workers []int, policy Policy) *Runtime {
	if len(workers) == 0 {
		panic("task: need at least one worker")
	}
	seen := map[int]bool{}
	for _, w := range workers {
		if w < 0 || w >= len(sys.SPEs) || seen[w] {
			panic(fmt.Sprintf("task: bad worker set %v", workers))
		}
		seen[w] = true
	}
	r := &Runtime{sys: sys, workers: workers, policy: policy}
	r.resident = make([]map[*Task][]int, len(workers))
	for i := range r.resident {
		r.resident[i] = make(map[*Task][]int)
	}
	return r
}

// Submit adds a task, inferring dependencies from operand overlap with
// previously submitted tasks (RAW, WAR and WAW hazards all order).
func (r *Runtime) Submit(t *Task) *Task {
	var in, out int
	for _, b := range t.Inputs {
		if b.Size <= 0 {
			panic("task: empty input buffer")
		}
		in += b.Size
	}
	for _, b := range t.Outputs {
		if b.Size <= 0 {
			panic("task: empty output buffer")
		}
		out += b.Size
	}
	if in > lsRegion || out > lsRegion {
		panic(fmt.Sprintf("task %q: operands exceed the %d KB staging areas", t.Name, lsRegion>>10))
	}
	t.id = len(r.tasks)
	for _, prev := range r.tasks {
		if r.hazard(prev, t) {
			t.deps = append(t.deps, prev)
			t.ndeps++
			prev.dones = append(prev.dones, t)
		}
	}
	r.tasks = append(r.tasks, t)
	return t
}

// hazard reports whether t must wait for prev.
func (r *Runtime) hazard(prev, t *Task) bool {
	for _, w := range prev.Outputs {
		for _, in := range t.Inputs {
			if w.overlaps(in) {
				return true // RAW
			}
		}
		for _, o := range t.Outputs {
			if w.overlaps(o) {
				return true // WAW
			}
		}
	}
	for _, pin := range prev.Inputs {
		for _, o := range t.Outputs {
			if pin.overlaps(o) {
				return true // WAR
			}
		}
	}
	return false
}

// Run executes all submitted tasks and returns statistics. It drives the
// system simulation to completion.
func (r *Runtime) Run() Stats {
	st := Stats{Tasks: len(r.tasks), PerWorker: make([]int, len(r.workers))}
	if len(r.tasks) == 0 {
		return st
	}

	ready := make([]*Task, 0, len(r.tasks))
	for _, t := range r.tasks {
		if t.ndeps == 0 {
			t.state = stateReady
			ready = append(ready, t)
		}
	}

	// Completion channel: workers post their worker index.
	completions := spe.NewMailbox(r.sys.Eng, len(r.workers))
	// Per-worker dispatch mailboxes carry task ids (or stop).
	const stop = ^uint32(0)
	dispatch := make([]*spe.Mailbox, len(r.workers))
	idle := make([]bool, len(r.workers))
	running := make([]*Task, len(r.workers))
	for i := range dispatch {
		dispatch[i] = spe.NewMailbox(r.sys.Eng, 1)
		idle[i] = true
	}

	done := 0
	for wi, w := range r.workers {
		wi, w := wi, w
		r.sys.SPEs[w].Run(fmt.Sprintf("worker%d", wi), func(ctx *spe.Context) {
			for {
				msg := dispatch[wi].Read(ctx.Process)
				if msg == stop {
					return
				}
				t := r.tasks[msg]
				r.execute(ctx, wi, t, &st)
				completions.Write(ctx.Process, uint32(wi))
			}
		})
	}

	// Dispatcher: a PPE-side control loop (control messages only; its
	// memory traffic is negligible next to the staging DMA).
	sim.Spawn(r.sys.Eng, "dispatcher", func(p *sim.Process) {
		assign := func() {
			for wi := range r.workers {
				if !idle[wi] || len(ready) == 0 {
					continue
				}
				t := r.pick(&ready, wi)
				idle[wi] = false
				running[wi] = t
				t.state = stateRunning
				t.worker = wi
				dispatch[wi].Write(p, uint32(t.id))
			}
		}
		assign()
		for done < len(r.tasks) {
			wi := int(completions.Read(p))
			t := running[wi]
			t.state = stateDone
			t.ended = p.Now()
			st.PerWorker[wi]++
			done++
			idle[wi] = true
			for _, succ := range t.dones {
				succ.ndeps--
				if succ.ndeps == 0 {
					succ.state = stateReady
					ready = append(ready, succ)
				}
			}
			assign()
		}
		for wi := range r.workers {
			dispatch[wi].Write(p, stop)
		}
		st.Cycles = p.Now()
	})

	// Run under the watchdog: a dependency cycle leaves the dispatcher
	// (and idle workers) blocked on mailboxes forever, which surfaces as a
	// *sim.DeadlockError naming the stuck processes instead of a bare
	// string panic with no context.
	if err := r.sys.RunChecked(0); err != nil {
		panic(fmt.Errorf("task: runtime wedged with %d/%d tasks done (dependency cycle?): %w",
			done, len(r.tasks), err))
	}
	if done != len(r.tasks) {
		panic(fmt.Sprintf("task: %d/%d tasks done yet no process is blocked", done, len(r.tasks)))
	}
	return st
}

// pick selects the next ready task for worker wi: under Forwarding, prefer
// a task whose inputs are resident on wi (zero-copy), then any task with a
// resident producer somewhere; otherwise FIFO.
func (r *Runtime) pick(ready *[]*Task, wi int) *Task {
	list := *ready
	best := 0
	if r.policy == Forwarding {
		bestScore := -1
		for i, t := range list {
			score := 0
			for _, in := range t.Inputs {
				if _, ok := r.findResident(wi, in); ok {
					score += 2 // same worker: no transfer at all
				} else if _, _, ok := r.findResidentAnywhere(in); ok {
					score++ // LS-to-LS transfer
				}
			}
			if score > bestScore {
				bestScore, best = score, i
			}
		}
	}
	t := list[best]
	*ready = append(list[:best], list[best+1:]...)
	return t
}

// findResident returns the staging offset of buffer b in worker wi's LS.
func (r *Runtime) findResident(wi int, b Buffer) (off int, ok bool) {
	for prod, offs := range r.resident[wi] {
		for k, out := range prod.Outputs {
			if out == b {
				return offs[k], true
			}
		}
	}
	return 0, false
}

// findResidentAnywhere locates buffer b in any worker's LS.
func (r *Runtime) findResidentAnywhere(b Buffer) (wi, off int, ok bool) {
	for w := range r.resident {
		if o, hit := r.findResident(w, b); hit {
			return w, o, true
		}
	}
	return 0, 0, false
}

// execute stages, computes and writes back one task on worker wi.
func (r *Runtime) execute(ctx *spe.Context, wi int, t *Task, st *Stats) {
	t.started = ctx.Decrementer()
	ls := ctx.SPE().LS()

	// Resolve input sources BEFORE claiming the staging areas: this
	// worker's own resident outputs are still valid to copy from.
	srcs := make([]int64, len(t.Inputs))
	for i, b := range t.Inputs {
		srcs[i] = b.EA
		if r.policy == Forwarding {
			if lsOff, ok := r.findResident(wi, b); ok {
				// Same worker: a local LS-to-LS copy, no ring traffic.
				srcs[i] = r.sys.LSEA(r.workers[wi], lsOff)
				st.ReusedInLS++
			} else if w, lsOff, ok := r.findResidentAnywhere(b); ok {
				srcs[i] = r.sys.LSEA(r.workers[w], lsOff)
				st.ForwardedLS++
			}
		}
	}

	// Claiming the staging areas invalidates residency on this worker.
	r.resident[wi] = make(map[*Task][]int)

	// Stage inputs with delayed synchronization: issue every GET, wait
	// once. Inputs pack tightly into the input area.
	in := make([][]byte, len(t.Inputs))
	off := lsIn
	for i, b := range t.Inputs {
		stage(ctx, off, srcs[i], b.Size, i%mfc.NumTags)
		st.BytesStaged += int64(b.Size)
		in[i] = ls[off : off+b.Size]
		off += pad16(b.Size)
	}
	ctx.WaitTagMask(^uint32(0))

	// Compute.
	if t.Compute != nil || t.ComputeCycles > 0 {
		out := make([][]byte, len(t.Outputs))
		ooff := lsOut
		for i, b := range t.Outputs {
			out[i] = ls[ooff : ooff+b.Size]
			ooff += pad16(b.Size)
		}
		if t.Compute != nil {
			t.Compute(in, out)
		}
		ctx.Wait(t.ComputeCycles)
	}

	// Write back outputs, again with one wait at the end.
	ooff := lsOut
	offs := make([]int, len(t.Outputs))
	for i, b := range t.Outputs {
		unstage(ctx, ooff, b.EA, b.Size, i%mfc.NumTags)
		st.BytesStaged += int64(b.Size)
		offs[i] = ooff
		ooff += pad16(b.Size)
	}
	ctx.WaitTagMask(^uint32(0))

	// The outputs are now resident in this worker's LS until the next
	// task claims the staging areas.
	r.resident[wi][t] = offs
}

// stage GETs size bytes from src (memory or a peer LS) into lsOff in
// maximum-size DMA chunks.
func stage(ctx *spe.Context, lsOff int, src int64, size, tag int) {
	for done := 0; done < size; {
		n := size - done
		if n > mfc.MaxTransfer {
			n = mfc.MaxTransfer
		}
		ctx.Get(lsOff+done, src+int64(done), n, tag)
		done += n
	}
}

// unstage PUTs size bytes from lsOff to a memory EA in chunks.
func unstage(ctx *spe.Context, lsOff int, dst int64, size, tag int) {
	for done := 0; done < size; {
		n := size - done
		if n > mfc.MaxTransfer {
			n = mfc.MaxTransfer
		}
		ctx.Put(lsOff+done, dst+int64(done), n, tag)
		done += n
	}
}

func pad16(n int) int { return (n + 15) &^ 15 }
