package task

import (
	"bytes"
	"testing"

	"cellbe/internal/cell"
)

func newSys() *cell.System { return cell.New(cell.DefaultConfig()) }

// transform returns a Compute that copies inputs to outputs adding delta.
func transform(delta byte) func(in, out [][]byte) {
	return func(in, out [][]byte) {
		for i := range out {
			src := in[i%len(in)]
			for j := range out[i] {
				out[i][j] = src[j%len(src)] + delta
			}
		}
	}
}

func TestSingleTaskMovesData(t *testing.T) {
	sys := newSys()
	in := sys.Alloc(4096, 128)
	out := sys.Alloc(4096, 128)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 5)
	}
	sys.Mem.RAM().Write(in, payload)

	r := New(sys, []int{0}, ThroughMemory)
	r.Submit(&Task{
		Name:          "t",
		Inputs:        []Buffer{{EA: in, Size: 4096}},
		Outputs:       []Buffer{{EA: out, Size: 4096}},
		ComputeCycles: 256,
		Compute:       transform(1),
	})
	st := r.Run()
	if st.Tasks != 1 || st.PerWorker[0] != 1 {
		t.Fatalf("stats %+v", st)
	}
	got := make([]byte, 4096)
	sys.Mem.RAM().Read(out, got)
	for i := range got {
		if got[i] != payload[i]+1 {
			t.Fatalf("byte %d: %d, want %d", i, got[i], payload[i]+1)
		}
	}
}

func TestDependencyInference(t *testing.T) {
	sys := newSys()
	a := sys.Alloc(1024, 128)
	b := sys.Alloc(1024, 128)
	c := sys.Alloc(1024, 128)
	r := New(sys, []int{0, 1}, ThroughMemory)
	t1 := r.Submit(&Task{Name: "w1", Outputs: []Buffer{{EA: a, Size: 1024}}})
	t2 := r.Submit(&Task{Name: "r1w2", Inputs: []Buffer{{EA: a, Size: 1024}}, Outputs: []Buffer{{EA: b, Size: 1024}}})
	t3 := r.Submit(&Task{Name: "indep", Outputs: []Buffer{{EA: c, Size: 1024}}})
	t4 := r.Submit(&Task{Name: "waw", Outputs: []Buffer{{EA: a, Size: 1024}}})
	if t2.ndeps != 1 {
		t.Fatalf("RAW not inferred: t2 deps %d", t2.ndeps)
	}
	if t3.ndeps != 0 {
		t.Fatal("independent task must have no deps")
	}
	// t4 writes a: WAW with t1 and WAR with t2.
	if t4.ndeps != 2 {
		t.Fatalf("WAW/WAR not inferred: t4 deps %d", t4.ndeps)
	}
	_ = t1
	r.Run()
}

func TestChainOrdering(t *testing.T) {
	// t0 writes 10 to buf, t1 reads buf and writes buf2+1, t2 reads buf2
	// and writes buf3+1: final must be 12 — only if ordering held.
	sys := newSys()
	bufs := []int64{sys.Alloc(1024, 128), sys.Alloc(1024, 128), sys.Alloc(1024, 128), sys.Alloc(1024, 128)}
	seed := make([]byte, 1024)
	for i := range seed {
		seed[i] = 10
	}
	sys.Mem.RAM().Write(bufs[0], seed)

	r := New(sys, []int{0, 1, 2, 3}, ThroughMemory)
	for i := 0; i < 3; i++ {
		r.Submit(&Task{
			Name:    "stage",
			Inputs:  []Buffer{{EA: bufs[i], Size: 1024}},
			Outputs: []Buffer{{EA: bufs[i+1], Size: 1024}},
			Compute: transform(1),
		})
	}
	r.Run()
	got := make([]byte, 1024)
	sys.Mem.RAM().Read(bufs[3], got)
	for i := range got {
		if got[i] != 13 {
			t.Fatalf("chain result %d, want 13 (ordering broken)", got[i])
		}
	}
}

func TestParallelFanOut(t *testing.T) {
	// One producer, 6 independent consumers: consumers must spread over
	// the workers and all see the producer's data.
	sys := newSys()
	src := sys.Alloc(8192, 128)
	r := New(sys, []int{0, 1, 2, 3}, ThroughMemory)
	r.Submit(&Task{
		Name:    "produce",
		Outputs: []Buffer{{EA: src, Size: 8192}},
		Compute: func(in, out [][]byte) {
			for j := range out[0] {
				out[0][j] = 77
			}
		},
	})
	outs := make([]int64, 6)
	for i := range outs {
		outs[i] = sys.Alloc(8192, 128)
		r.Submit(&Task{
			Name:    "consume",
			Inputs:  []Buffer{{EA: src, Size: 8192}},
			Outputs: []Buffer{{EA: outs[i], Size: 8192}},
			Compute: transform(1),
		})
	}
	st := r.Run()
	busy := 0
	for _, n := range st.PerWorker {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("fan-out used only %d workers: %v", busy, st.PerWorker)
	}
	want := bytes.Repeat([]byte{78}, 8192)
	got := make([]byte, 8192)
	for i := range outs {
		sys.Mem.RAM().Read(outs[i], got)
		if !bytes.Equal(got, want) {
			t.Fatalf("consumer %d saw wrong data", i)
		}
	}
}

func TestForwardingBeatsMemoryOnChains(t *testing.T) {
	// A long chain of producer->consumer tasks over big operands: the
	// Forwarding policy moves intermediates LS-to-LS (or reuses them in
	// place) and must finish faster — the paper's SPE-to-SPE bandwidth
	// advantage expressed at the runtime level.
	build := func(policy Policy) (Stats, *cell.System) {
		sys := newSys()
		const n = 24
		const size = 64 << 10
		bufs := make([]int64, n+1)
		for i := range bufs {
			bufs[i] = sys.Alloc(size, 128)
		}
		r := New(sys, []int{0, 1, 2, 3}, policy)
		for i := 0; i < n; i++ {
			r.Submit(&Task{
				Name:          "link",
				Inputs:        []Buffer{{EA: bufs[i], Size: size}},
				Outputs:       []Buffer{{EA: bufs[i+1], Size: size}},
				ComputeCycles: size / 16,
				Compute:       transform(1),
			})
		}
		return r.Run(), sys
	}
	memStats, _ := build(ThroughMemory)
	fwdStats, _ := build(Forwarding)
	if fwdStats.ForwardedLS+fwdStats.ReusedInLS == 0 {
		t.Fatal("forwarding policy never forwarded")
	}
	if fwdStats.Cycles >= memStats.Cycles {
		t.Fatalf("forwarding (%d cycles) must beat through-memory (%d cycles)",
			fwdStats.Cycles, memStats.Cycles)
	}
}

func TestForwardingCorrectness(t *testing.T) {
	sys := newSys()
	const size = 32 << 10
	a := sys.Alloc(size, 128)
	b := sys.Alloc(size, 128)
	c := sys.Alloc(size, 128)
	seed := bytes.Repeat([]byte{100}, size)
	sys.Mem.RAM().Write(a, seed)
	r := New(sys, []int{0, 1}, Forwarding)
	r.Submit(&Task{Inputs: []Buffer{{EA: a, Size: size}}, Outputs: []Buffer{{EA: b, Size: size}}, Compute: transform(1)})
	r.Submit(&Task{Inputs: []Buffer{{EA: b, Size: size}}, Outputs: []Buffer{{EA: c, Size: size}}, Compute: transform(1)})
	st := r.Run()
	got := make([]byte, size)
	sys.Mem.RAM().Read(c, got)
	for i := range got {
		if got[i] != 102 {
			t.Fatalf("forwarded chain produced %d, want 102", got[i])
		}
	}
	if st.ForwardedLS+st.ReusedInLS == 0 {
		t.Fatal("expected at least one forwarded input")
	}
}

func TestOversizeOperandPanics(t *testing.T) {
	sys := newSys()
	r := New(sys, []int{0}, ThroughMemory)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize operand should panic")
		}
	}()
	r.Submit(&Task{Inputs: []Buffer{{EA: 0, Size: 97 << 10}}})
}

func TestBadWorkerSetPanics(t *testing.T) {
	sys := newSys()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate worker should panic")
		}
	}()
	New(sys, []int{0, 0}, ThroughMemory)
}

func TestEmptyRuntime(t *testing.T) {
	sys := newSys()
	r := New(sys, []int{0}, ThroughMemory)
	st := r.Run()
	if st.Tasks != 0 || st.Cycles != 0 {
		t.Fatalf("empty run stats %+v", st)
	}
}
