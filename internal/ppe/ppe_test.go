package ppe

import (
	"testing"
	"testing/quick"

	"cellbe/internal/sim"
)

// fakeMem is a MemoryPort with fixed latency and a simple service rate.
type fakeMem struct {
	eng     *sim.Engine
	latency sim.Time
	srv     *sim.Server
	reads   int64
	writes  int64
}

func newFakeMem(eng *sim.Engine, latency sim.Time) *fakeMem {
	return &fakeMem{eng: eng, latency: latency, srv: sim.NewServer(eng)}
}

func (f *fakeMem) ReadLine(addr int64, earliest sim.Time, done func(end sim.Time)) {
	f.reads++
	f.srv.Request(16, func(sim.Time) {
		end := f.eng.Now() + f.latency
		f.eng.At(end, func() { done(end) })
	})
}

func (f *fakeMem) WriteLine(addr int64, earliest sim.Time, done func(end sim.Time)) {
	f.writes++
	f.srv.Request(16, func(sim.Time) { done(f.eng.Now()) })
}

func newPPE(latency sim.Time) (*sim.Engine, *fakeMem, *PPE) {
	eng := sim.NewEngine()
	mem := newFakeMem(eng, latency)
	return eng, mem, New(eng, mem, DefaultConfig())
}

// gbps converts bytes moved in cycles at 2.1 GHz to GB/s.
func gbps(bytes int64, cycles sim.Time) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bytes) * 2.1 / float64(cycles)
}

// runStream runs a warmed-up stream kernel on one thread and returns the
// timed-pass bandwidth in GB/s.
func runStream(t *testing.T, op Op, bufBytes int64, elem int, latency sim.Time) float64 {
	t.Helper()
	eng, _, p := newPPE(latency)
	var cycles sim.Time
	p.Spawn(0, "kernel", func(th *Thread) {
		th.stream(op, 0, 1<<24, bufBytes, elem) // warm-up lap
		start := th.Now()
		th.stream(op, 0, 1<<24, bufBytes, elem)
		th.drainStoreQueue()
		cycles = th.Now() - start
	})
	eng.Run()
	bytes := bufBytes
	if op == Copy {
		bytes *= 2
	}
	return gbps(bytes, cycles)
}

func TestCacheArrayBasics(t *testing.T) {
	c := newCacheArray(1024, 128, 2) // 4 sets, 2 ways
	if c.Lookup(0) {
		t.Fatal("empty cache must miss")
	}
	c.Insert(0, false)
	if !c.Lookup(0) || !c.Lookup(64) {
		t.Fatal("same line must hit at any offset")
	}
	if c.Lookup(128) {
		t.Fatal("different line must miss")
	}
}

func TestCacheArrayLRUEviction(t *testing.T) {
	c := newCacheArray(1024, 128, 2) // sets of 2 ways; set = line%4
	// Three lines in set 0: 0, 512, 1024 (lines 0, 4, 8).
	c.Insert(0, false)
	c.Insert(512, true)
	c.Lookup(0) // make line 0 most recent
	ev, dirty, has := c.Insert(1024, false)
	if !has || ev != 512 || !dirty {
		t.Fatalf("evicted %d dirty=%v has=%v, want 512/dirty", ev, dirty, has)
	}
	if !c.Lookup(0) || !c.Lookup(1024) || c.Lookup(512) {
		t.Fatal("wrong lines resident after eviction")
	}
}

func TestCacheArrayMarkDirty(t *testing.T) {
	c := newCacheArray(1024, 128, 2)
	if c.MarkDirty(0) {
		t.Fatal("marking an absent line must fail")
	}
	c.Insert(0, false)
	if !c.MarkDirty(0) {
		t.Fatal("marking a present line must succeed")
	}
	c.Insert(512, false)
	ev, dirty, has := c.Insert(1024, false)
	if !has || ev != 0 || !dirty {
		t.Fatalf("dirty bit lost: evicted %d dirty=%v", ev, dirty)
	}
}

// Property: a cache with S sets and W ways never holds more than W lines
// of the same set, and inserting N <= W distinct same-set lines evicts
// nothing.
func TestCacheArrayCapacityProperty(t *testing.T) {
	f := func(n uint8) bool {
		c := newCacheArray(4096, 128, 4) // 8 sets, 4 ways
		k := int(n%4) + 1                // 1..4 same-set lines
		for i := 0; i < k; i++ {
			if _, _, has := c.Insert(int64(i)*128*8, false); has {
				return false
			}
		}
		for i := 0; i < k; i++ {
			if !c.Lookup(int64(i) * 128 * 8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL1LoadBandwidthPlateau(t *testing.T) {
	// 16 KB buffer fits L1: pure issue-limited bandwidth, plateauing at
	// half peak (8.4 GB/s) from 8-byte elements down to 2.1 at 1 byte.
	want := map[int]float64{1: 2.1, 2: 4.2, 4: 8.4, 8: 8.4, 16: 8.4}
	for elem, w := range want {
		got := runStream(t, Load, 16<<10, elem, 400)
		if got < w*0.9 || got > w*1.1 {
			t.Errorf("L1 load %dB: %.2f GB/s, want ~%.1f", elem, got, w)
		}
	}
}

func TestL1StoreBelowLoad(t *testing.T) {
	load := runStream(t, Load, 16<<10, 16, 400)
	store := runStream(t, Store, 16<<10, 16, 400)
	if store >= load {
		t.Fatalf("16B store %.2f must be below load %.2f (drain-limited)", store, load)
	}
	if store < 3 {
		t.Fatalf("16B store %.2f unreasonably low", store)
	}
}

func TestL2LoadLatencyBound(t *testing.T) {
	// 256 KB buffer: fits L2, misses L1 every line. Bandwidth ~ line /
	// (issue + L2 latency).
	got := runStream(t, Load, 256<<10, 16, 400)
	cfg := DefaultConfig()
	want := gbps(LineBytes, cfg.L2HitLatency+cfg.LoadCost.C16*8)
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("L2 load %.2f GB/s, want ~%.2f", got, want)
	}
}

func TestMemLoadMatchesL2Load(t *testing.T) {
	// 4 MB buffer: misses L2, but the stream prefetcher hides memory
	// latency, so bandwidth must be close to the L2-resident case. This
	// is the paper's Figure 6 observation.
	l2 := runStream(t, Load, 256<<10, 8, 400)
	mem := runStream(t, Load, 4<<20, 8, 400)
	if mem < l2*0.75 {
		t.Fatalf("mem load %.2f GB/s, want close to L2 load %.2f", mem, l2)
	}
}

func TestPrefetcherIsWhatHidesMemoryLatency(t *testing.T) {
	run := func(depth int) float64 {
		eng := sim.NewEngine()
		mem := newFakeMem(eng, 400)
		cfg := DefaultConfig()
		cfg.PrefetchDepth = depth
		p := New(eng, mem, cfg)
		var cycles sim.Time
		p.Spawn(0, "k", func(th *Thread) {
			start := th.Now()
			th.StreamLoad(0, 4<<20, 8)
			cycles = th.Now() - start
		})
		eng.Run()
		return gbps(4<<20, cycles)
	}
	with := run(DefaultConfig().PrefetchDepth)
	without := run(0)
	if with < 2*without {
		t.Fatalf("prefetch on %.2f GB/s vs off %.2f: expected a large gain", with, without)
	}
}

func TestMemStoreRFOLimited(t *testing.T) {
	// Store misses must fetch lines with tiny concurrency: memory store
	// bandwidth is far below L2 store bandwidth.
	l2 := runStream(t, Store, 256<<10, 16, 400)
	mem := runStream(t, Store, 4<<20, 16, 400)
	if mem >= l2/2 {
		t.Fatalf("mem store %.2f GB/s vs L2 store %.2f: want < half", mem, l2)
	}
}

func TestTwoThreadsHelpL2(t *testing.T) {
	run := func(threads int) float64 {
		eng, _, p := newPPE(400)
		var total sim.Time
		done := 0
		for th := 0; th < threads; th++ {
			th := th
			base := int64(th) * (1 << 22)
			p.Spawn(th, "k", func(tt *Thread) {
				tt.StreamLoad(base, 256<<10, 8) // warm
				start := tt.Now()
				tt.StreamLoad(base, 256<<10, 8)
				if el := tt.Now() - start; el > total {
					total = el
				}
				done++
			})
		}
		eng.Run()
		return gbps(int64(threads)*(256<<10), total)
	}
	one := run(1)
	two := run(2)
	if two < one*1.5 {
		t.Fatalf("2 threads %.2f GB/s vs 1 thread %.2f: SMT must overlap L2 stalls", two, one)
	}
}

func TestSMTSharesIssueOnL1(t *testing.T) {
	// L1-resident loads are issue-limited: two threads split the issue
	// slots, so the aggregate stays ~the same as one thread.
	run := func(threads int) float64 {
		eng, _, p := newPPE(400)
		var slowest sim.Time
		for th := 0; th < threads; th++ {
			th := th
			base := int64(th) * (1 << 22)
			p.Spawn(th, "k", func(tt *Thread) {
				tt.StreamLoad(base, 8<<10, 8) // warm (both fit L1)
				start := tt.Now()
				for i := 0; i < 8; i++ {
					tt.StreamLoad(base, 8<<10, 8)
				}
				if el := tt.Now() - start; el > slowest {
					slowest = el
				}
			})
		}
		eng.Run()
		return gbps(int64(threads)*8*(8<<10), slowest)
	}
	one := run(1)
	two := run(2)
	if two > one*1.25 || two < one*0.75 {
		t.Fatalf("L1 loads: 2 threads %.2f GB/s vs 1 thread %.2f: want about equal", two, one)
	}
}

func TestStoreQueueStallsWhenFull(t *testing.T) {
	// With a huge drain time, the store stream must be drain-limited,
	// not issue-limited.
	eng := sim.NewEngine()
	mem := newFakeMem(eng, 50)
	cfg := DefaultConfig()
	cfg.StoreDrainCycles = 100
	p := New(eng, mem, cfg)
	var cycles sim.Time
	p.Spawn(0, "k", func(th *Thread) {
		th.StreamStore(0, 16<<10, 16) // warm L2
		start := th.Now()
		th.StreamStore(0, 16<<10, 16)
		th.drainStoreQueue()
		cycles = th.Now() - start
	})
	eng.Run()
	chunks := sim.Time(16 << 10 / 16)
	if cycles < chunks*100 {
		t.Fatalf("store stream took %d cycles, want >= %d (drain-limited)", cycles, chunks*100)
	}
}

func TestWritebacksHappen(t *testing.T) {
	eng, mem, p := newPPE(100)
	p.Spawn(0, "k", func(th *Thread) {
		// Dirty 2 MB of lines, then stream another 2 MB to force
		// evictions of dirty lines.
		th.StreamStore(0, 2<<20, 16)
		th.StreamLoad(8<<20, 2<<20, 16)
	})
	eng.Run()
	if mem.writes == 0 || p.Stats().Writebacks == 0 {
		t.Fatal("dirty evictions must write back to memory")
	}
}

func TestStatsCount(t *testing.T) {
	eng, _, p := newPPE(100)
	p.Spawn(0, "k", func(th *Thread) {
		th.StreamLoad(0, 1<<13, 8)
	})
	eng.Run()
	st := p.Stats()
	if st.Loads != (1<<13)/8 {
		t.Fatalf("loads %d, want %d", st.Loads, (1<<13)/8)
	}
	if st.L1Misses != (1<<13)/128 {
		t.Fatalf("l1 misses %d, want %d", st.L1Misses, (1<<13)/128)
	}
}

func TestBadThreadIDPanics(t *testing.T) {
	_, _, p := newPPE(100)
	defer func() {
		if recover() == nil {
			t.Fatal("bad thread id should panic")
		}
	}()
	p.Spawn(2, "k", func(*Thread) {})
}

func TestUnalignedStreamPanics(t *testing.T) {
	eng, _, p := newPPE(100)
	p.Spawn(0, "k", func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("unaligned stream should panic")
			}
			panic("rethrow") // keep the process contract: panics propagate
		}()
		th.StreamLoad(64, 1<<13, 8)
	})
	defer func() { recover() }()
	eng.Run()
}
