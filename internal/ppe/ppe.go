// Package ppe models the Power Processor Element: a 2-way SMT in-order
// PPU with a 32 KB write-through L1 data cache and a 512 KB L2, attached
// to the EIB. It reproduces the mechanisms behind Figures 3, 4 and 6 of
// the paper:
//
//   - per-access issue costs that make bandwidth proportional to the
//     element size, plateauing at half the 16.8 GB/s L1 peak (the PPU has
//     one load/store unit; wide accesses cost extra cycles),
//   - an in-order core that blocks on every demand load miss, so L2-hit
//     bandwidth is latency-bound (~128 B per L2 latency),
//   - a gathering store queue per thread that drains 16-byte chunks
//     through the shared L2 write port, which caps store bandwidth below
//     load bandwidth and rewards a second thread,
//   - an L2 stream prefetcher that hides main-memory latency behind the
//     same L1-miss service bottleneck — which is why the paper measures
//     memory *read* bandwidth equal to L2 read bandwidth,
//   - store misses that must fetch the line first (RFO) with very limited
//     concurrency, which is why memory *write* bandwidth is so poor.
//
// PPU kernels run as simulator coroutines (one per SMT thread) built from
// streaming load/store/copy primitives, matching the paper's benchmark
// loops.
package ppe

import (
	"fmt"

	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
	"cellbe/internal/trace"
)

// LineBytes is the cache line size of both cache levels.
const LineBytes = 128

// MemoryPort is the PPE's path to main memory for line fills and
// writebacks: the cell package routes it over the simulated EIB to the
// MIC.
type MemoryPort interface {
	ReadLine(addr int64, earliest sim.Time, done func(end sim.Time))
	WriteLine(addr int64, earliest sim.Time, done func(end sim.Time))
}

// AccessCosts maps element sizes 1,2,4,8,16 to per-access issue cycles.
type AccessCosts struct {
	C1, C2, C4, C8, C16 sim.Time
}

// Cost returns the issue cost for an element size.
func (a AccessCosts) Cost(size int) sim.Time {
	switch size {
	case 1:
		return a.C1
	case 2:
		return a.C2
	case 4:
		return a.C4
	case 8:
		return a.C8
	case 16:
		return a.C16
	}
	panic(fmt.Sprintf("ppe: unsupported element size %d", size))
}

// Config holds PPE model parameters (cycles are CPU cycles at 2.1 GHz).
type Config struct {
	L1Bytes int
	L1Assoc int
	L2Bytes int
	L2Assoc int

	// LoadCost/StoreCost are per-access issue costs. With one access per
	// cycle up to 4 bytes and wider accesses costing extra cycles, load
	// bandwidth is 2.1/4.2/8.4/8.4/8.4 GB/s for 1/2/4/8/16-byte elements
	// — the Figure 3(a) plateau at half the L1 peak.
	LoadCost  AccessCosts
	StoreCost AccessCosts

	// L2HitLatency is the load-to-use stall for an L1 miss that hits L2
	// (or a prefetched line): the in-order PPU cannot overlap it, making
	// L2 bandwidth ~ LineBytes / L2HitLatency per thread.
	L2HitLatency sim.Time
	// L2RefillExtra is the additional stall when the demand miss had to
	// wait for an in-flight fill.
	L2RefillExtra sim.Time

	// StoreChunkBytes is the gathering granularity of the store queue.
	StoreChunkBytes int
	// StoreQueueChunks is the per-thread store-queue capacity; the thread
	// stalls when it is full.
	StoreQueueChunks int
	// StoreDrainCycles paces each thread's queue drain into L2.
	StoreDrainCycles sim.Time
	// StorePortInterval is the shared L2 write port occupancy per chunk.
	StorePortInterval sim.Time

	// PrefetchDepth is how many sequential lines the L2 prefetcher runs
	// ahead of a demand miss stream.
	PrefetchDepth int
	// RFOWindow bounds outstanding store-miss line fetches per thread;
	// beyond it the thread stalls. This is the paper's "L2 to Memory
	// store queue is quickly saturated".
	RFOWindow int
}

// DefaultConfig returns the calibrated PPE parameters.
func DefaultConfig() Config {
	return Config{
		L1Bytes:           32 << 10,
		L1Assoc:           4,
		L2Bytes:           512 << 10,
		L2Assoc:           8,
		LoadCost:          AccessCosts{C1: 1, C2: 1, C4: 1, C8: 2, C16: 4},
		StoreCost:         AccessCosts{C1: 1, C2: 1, C4: 2, C8: 3, C16: 4},
		L2HitLatency:      100,
		L2RefillExtra:     20,
		StoreChunkBytes:   16,
		StoreQueueChunks:  16,
		StoreDrainCycles:  5,
		StorePortInterval: 2,
		PrefetchDepth:     8,
		RFOWindow:         2,
	}
}

// Stats aggregates PPE activity.
type Stats struct {
	Loads       int64
	Stores      int64
	L1Misses    int64
	L2Misses    int64
	Prefetches  int64
	RFOs        int64
	Writebacks  int64
	StoreChunks int64
}

// PPE is the Power Processor Element model.
type PPE struct {
	eng *sim.Engine
	cfg Config
	mem MemoryPort

	l1 *cacheArray
	l2 *cacheArray

	inflight  map[int64]*sim.Signal // line address -> fill completion
	storePort *sim.TokenBucket

	tracer        *trace.Tracer
	perf          *perfctr.PPECounters
	activeThreads int
	stats         Stats
}

// SetTracer attaches an event tracer (nil disables tracing, the default).
// Wired by the cell package at system assembly, like SetFaults elsewhere.
func (p *PPE) SetTracer(tr *trace.Tracer) { p.tracer = tr }

// SetPerf attaches a perf-counter block (nil disables counting, the
// default). Wired by the cell package at system assembly, like SetTracer.
func (p *PPE) SetPerf(pc *perfctr.PPECounters) { p.perf = pc }

// InflightFills returns the current L2 miss-queue occupancy (demand misses
// plus prefetches with a fill outstanding).
func (p *PPE) InflightFills() int { return len(p.inflight) }

// Reset returns the PPE to the state New(eng, mem, cfg) would build,
// keeping both cache arrays (flushed) and the fill map. Attachments
// (tracer, perf) are cleared as on a fresh PPE; the assembling layer
// rewires them. Part of the warm-system recycling path.
func (p *PPE) Reset(mem MemoryPort, cfg Config) {
	if cfg.L1Bytes != p.cfg.L1Bytes || cfg.L1Assoc != p.cfg.L1Assoc {
		p.l1 = newCacheArray(cfg.L1Bytes, LineBytes, cfg.L1Assoc)
	} else {
		p.l1.Flush()
	}
	if cfg.L2Bytes != p.cfg.L2Bytes || cfg.L2Assoc != p.cfg.L2Assoc {
		p.l2 = newCacheArray(cfg.L2Bytes, LineBytes, cfg.L2Assoc)
	} else {
		p.l2.Flush()
	}
	p.cfg = cfg
	p.mem = mem
	clear(p.inflight)
	p.storePort.Reset(cfg.StorePortInterval)
	p.tracer, p.perf = nil, nil
	p.activeThreads = 0
	p.stats = Stats{}
}

// New returns a PPE attached to mem.
func New(eng *sim.Engine, mem MemoryPort, cfg Config) *PPE {
	return &PPE{
		eng:       eng,
		cfg:       cfg,
		mem:       mem,
		l1:        newCacheArray(cfg.L1Bytes, LineBytes, cfg.L1Assoc),
		l2:        newCacheArray(cfg.L2Bytes, LineBytes, cfg.L2Assoc),
		inflight:  make(map[int64]*sim.Signal),
		storePort: sim.NewTokenBucket(eng, cfg.StorePortInterval),
	}
}

// Stats returns a snapshot of the activity counters.
func (p *PPE) Stats() Stats { return p.stats }

// Config returns the configuration in use.
func (p *PPE) Config() Config { return p.cfg }

// FlushCaches invalidates both cache levels (between experiment runs).
func (p *PPE) FlushCaches() {
	p.l1.Flush()
	p.l2.Flush()
}

// smt returns the issue-cost multiplier: with both SMT threads running,
// each thread gets every other issue slot.
func (p *PPE) smt() sim.Time {
	if p.activeThreads >= 2 {
		return 2
	}
	return 1
}

// fetch starts (or joins) an L2 line fill and returns its completion
// signal. dirty marks the line modified upon arrival (RFO path).
func (p *PPE) fetch(lineAddr int64, dirty bool) *sim.Signal {
	if sig, ok := p.inflight[lineAddr]; ok {
		if dirty {
			// The store will dirty it after arrival.
			sig.OnFire(func() { p.l2.MarkDirty(lineAddr) })
		}
		return sig
	}
	sig := sim.NewSignal(p.eng)
	p.inflight[lineAddr] = sig
	p.stats.L2Misses++
	p.perf.Fill()
	p.tracer.Counter(trace.TrackPPEMissQ, p.eng.Now(), int64(len(p.inflight)))
	issuedAt := p.eng.Now()
	rfo := int64(0)
	if dirty {
		rfo = 1
	}
	p.mem.ReadLine(lineAddr, p.eng.Now(), func(end sim.Time) {
		if ev, evDirty, has := p.l2.Insert(lineAddr, dirty); has && evDirty {
			p.stats.Writebacks++
			p.mem.WriteLine(ev, end, func(sim.Time) {})
		}
		delete(p.inflight, lineAddr)
		p.tracer.Emit(trace.TrackPPE, trace.KindFill, issuedAt, p.eng.Now(), lineAddr, rfo, 0, 0)
		p.tracer.Counter(trace.TrackPPEMissQ, p.eng.Now(), int64(len(p.inflight)))
		sig.Fire()
	})
	return sig
}

// Thread is one SMT hardware thread running a kernel coroutine.
type Thread struct {
	*sim.Process
	ppe *PPE
	id  int

	// Gathering store queue: completion times of in-flight chunks.
	drain     []sim.Time
	lastDrain sim.Time

	// Outstanding RFO fills.
	rfos []*sim.Signal

	// Sequential prefetch stream state.
	streamNext int64
}

// Spawn starts fn on hardware thread id (0 or 1). The PPE tracks how many
// threads are active to model SMT issue sharing; a thread counts as active
// until fn returns.
func (p *PPE) Spawn(id int, name string, fn func(t *Thread)) *sim.Process {
	if id != 0 && id != 1 {
		panic("ppe: thread id must be 0 or 1")
	}
	p.activeThreads++
	return sim.Spawn(p.eng, name, func(proc *sim.Process) {
		defer func() { p.activeThreads-- }()
		t := &Thread{Process: proc, ppe: p, id: id, streamNext: -1}
		fn(t)
		t.drainStoreQueue()
	})
}

// drainStoreQueue waits for all queued store chunks to retire.
func (t *Thread) drainStoreQueue() {
	if t.lastDrain > t.Now() {
		t.Wait(t.lastDrain - t.Now())
	}
	t.drain = nil
	for len(t.rfos) > 0 {
		t.WaitSignal(t.rfos[0])
		t.rfos = t.rfos[1:]
	}
}

// demandLoad stalls the thread for an L1 miss on lineAddr: L2 hit latency,
// an in-flight fill join, or a full memory fetch; it then triggers the
// stream prefetcher and fills L1.
func (t *Thread) demandLoad(lineAddr int64) {
	p := t.ppe
	p.stats.L1Misses++
	switch {
	case p.l2.Lookup(lineAddr):
		t.Wait(p.cfg.L2HitLatency)
		// Keep a detected stream running ahead even while demand hits
		// land in L2; otherwise the prefetcher sawtooths between bursts.
		t.prefetchAfter(lineAddr)
	default:
		p.perf.MissQStall()
		if sig, ok := p.inflight[lineAddr]; ok {
			t.WaitSignal(sig)
			t.Wait(p.cfg.L2HitLatency + p.cfg.L2RefillExtra)
		} else {
			sig := p.fetch(lineAddr, false)
			t.WaitSignal(sig)
			t.Wait(p.cfg.L2RefillExtra)
		}
		t.prefetchAfter(lineAddr)
	}
	p.l1.Insert(lineAddr, false)
}

// prefetchAfter runs the sequential L2 prefetcher past a demand miss.
func (t *Thread) prefetchAfter(lineAddr int64) {
	p := t.ppe
	if p.cfg.PrefetchDepth <= 0 {
		return
	}
	next := lineAddr + LineBytes
	limit := lineAddr + int64(p.cfg.PrefetchDepth)*LineBytes
	// Continue the tracked stream if this miss falls inside its window;
	// otherwise this is a new stream (e.g. a fresh pass over the buffer).
	if t.streamNext > next && t.streamNext <= limit+LineBytes {
		next = t.streamNext
	}
	for ; next <= limit; next += LineBytes {
		if len(p.inflight) >= p.cfg.PrefetchDepth {
			break
		}
		if p.l2.Contains(next) {
			continue
		}
		if _, ok := p.inflight[next]; ok {
			continue
		}
		p.stats.Prefetches++
		p.perf.PrefetchFill()
		p.fetch(next, false)
	}
	t.streamNext = next
}

// pushStoreChunk retires one gathered 16-byte chunk through the store
// queue, stalling the thread when the queue is full.
func (t *Thread) pushStoreChunk() {
	p := t.ppe
	if len(t.drain) >= p.cfg.StoreQueueChunks {
		head := t.drain[0]
		t.drain = t.drain[1:]
		if head > t.Now() {
			t.Wait(head - t.Now())
		}
	}
	start := t.Now()
	if t.lastDrain > start {
		start = t.lastDrain
	}
	start = p.storePort.Take(start)
	done := start + p.cfg.StoreDrainCycles
	t.lastDrain = done
	t.drain = append(t.drain, done)
	p.stats.StoreChunks++
}

// ensureLineForStore makes lineAddr writable in L2: on a miss it issues an
// RFO fetch, stalling only when RFOWindow fills are already outstanding.
func (t *Thread) ensureLineForStore(lineAddr int64) {
	p := t.ppe
	if p.l2.Lookup(lineAddr) {
		p.l2.MarkDirty(lineAddr)
		return
	}
	p.stats.RFOs++
	sig := p.fetch(lineAddr, true)
	t.rfos = append(t.rfos, sig)
	for len(t.rfos) > p.cfg.RFOWindow {
		t.WaitSignal(t.rfos[0])
		t.rfos = t.rfos[1:]
	}
}

// Op selects a streaming kernel.
type Op int

// Streaming kernels matching the paper's load/store/copy microbenchmarks.
const (
	Load Op = iota
	Store
	Copy
)

func (o Op) String() string {
	switch o {
	case Load:
		return "load"
	case Store:
		return "store"
	case Copy:
		return "copy"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// StreamLoad walks bytes of memory at addr with elemSize-byte loads,
// charging issue costs and cache stalls.
func (t *Thread) StreamLoad(addr, bytes int64, elemSize int) {
	t.stream(Load, addr, 0, bytes, elemSize)
}

// StreamStore walks bytes of memory at addr with elemSize-byte stores.
func (t *Thread) StreamStore(addr, bytes int64, elemSize int) {
	t.stream(Store, addr, 0, bytes, elemSize)
}

// StreamCopy loads from src and stores to dst, elemSize bytes at a time.
func (t *Thread) StreamCopy(src, dst, bytes int64, elemSize int) {
	t.stream(Copy, src, dst, bytes, elemSize)
}

func (t *Thread) stream(op Op, src, dst, bytes int64, elemSize int) {
	p := t.ppe
	if bytes%LineBytes != 0 || src%LineBytes != 0 || (op == Copy && dst%LineBytes != 0) {
		panic("ppe: stream kernels must be line aligned")
	}
	perLine := int64(LineBytes / elemSize)
	chunksPerLine := LineBytes / p.cfg.StoreChunkBytes
	if elemSize > p.cfg.StoreChunkBytes {
		chunksPerLine = LineBytes / elemSize // each wide store is its own chunk
	}

	var issue sim.Time
	switch op {
	case Load:
		issue = p.cfg.LoadCost.Cost(elemSize) * sim.Time(perLine)
	case Store:
		issue = p.cfg.StoreCost.Cost(elemSize) * sim.Time(perLine)
	case Copy:
		issue = (p.cfg.LoadCost.Cost(elemSize) + p.cfg.StoreCost.Cost(elemSize)) * sim.Time(perLine)
	}

	for off := int64(0); off < bytes; off += LineBytes {
		t.Wait(issue * p.smt())
		if op == Load || op == Copy {
			la := src + off
			p.stats.Loads += perLine
			if !p.l1.Lookup(la) {
				t.demandLoad(la)
			}
		}
		if op == Store || op == Copy {
			sa := dst + off
			if op == Store {
				sa = src + off
			}
			p.stats.Stores += perLine
			// Write-through, no-allocate L1: stores update L1 data in
			// place on a hit (no timing effect) and always drain to L2.
			t.ensureLineForStore(sa)
			for c := 0; c < chunksPerLine; c++ {
				t.pushStoreChunk()
			}
		}
	}
}
