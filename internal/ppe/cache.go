package ppe

import "fmt"

// cacheArray is a set-associative tag array with true-LRU replacement and
// per-line dirty bits. It tracks presence and victims only; data contents
// live in the simulated RAM.
type cacheArray struct {
	lineBytes int
	sets      int
	assoc     int
	tags      []int64 // sets*assoc entries; -1 = invalid
	dirty     []bool
	stamp     []int64
	tick      int64
}

func newCacheArray(totalBytes, lineBytes, assoc int) *cacheArray {
	if totalBytes <= 0 || lineBytes <= 0 || assoc <= 0 || totalBytes%(lineBytes*assoc) != 0 {
		panic(fmt.Sprintf("ppe: bad cache geometry %d/%d/%d", totalBytes, lineBytes, assoc))
	}
	sets := totalBytes / (lineBytes * assoc)
	c := &cacheArray{
		lineBytes: lineBytes,
		sets:      sets,
		assoc:     assoc,
		tags:      make([]int64, sets*assoc),
		dirty:     make([]bool, sets*assoc),
		stamp:     make([]int64, sets*assoc),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

func (c *cacheArray) line(addr int64) int64 { return addr / int64(c.lineBytes) }

func (c *cacheArray) set(line int64) int { return int(line % int64(c.sets)) }

// Lookup reports whether addr's line is present, updating LRU on hit.
func (c *cacheArray) Lookup(addr int64) bool {
	line := c.line(addr)
	base := c.set(line) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == line {
			c.tick++
			c.stamp[base+w] = c.tick
			return true
		}
	}
	return false
}

// Contains reports presence without touching LRU state.
func (c *cacheArray) Contains(addr int64) bool {
	line := c.line(addr)
	base := c.set(line) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// MarkDirty sets the dirty bit of a present line; it reports whether the
// line was found.
func (c *cacheArray) MarkDirty(addr int64) bool {
	line := c.line(addr)
	base := c.set(line) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == line {
			c.dirty[base+w] = true
			return true
		}
	}
	return false
}

// Insert places addr's line, evicting the LRU way if the set is full. It
// returns the evicted line's base address and dirtiness when an eviction
// of a valid line occurred. Inserting an already-present line only updates
// its LRU position (and ORs the dirty bit).
func (c *cacheArray) Insert(addr int64, dirty bool) (evicted int64, evictedDirty, hasEvict bool) {
	line := c.line(addr)
	base := c.set(line) * c.assoc
	victim := base
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.tags[i] == line {
			c.tick++
			c.stamp[i] = c.tick
			c.dirty[i] = c.dirty[i] || dirty
			return 0, false, false
		}
		if c.tags[i] == -1 {
			victim = i
		} else if c.tags[victim] != -1 && c.stamp[i] < c.stamp[victim] {
			victim = i
		}
	}
	if c.tags[victim] != -1 {
		evicted = c.tags[victim] * int64(c.lineBytes)
		evictedDirty = c.dirty[victim]
		hasEvict = true
	}
	c.tick++
	c.tags[victim] = line
	c.dirty[victim] = dirty
	c.stamp[victim] = c.tick
	return evicted, evictedDirty, hasEvict
}

// Flush invalidates everything, returning how many dirty lines were
// dropped (callers model writebacks separately if needed).
func (c *cacheArray) Flush() int {
	n := 0
	for i := range c.tags {
		if c.tags[i] != -1 && c.dirty[i] {
			n++
		}
		c.tags[i] = -1
		c.dirty[i] = false
		c.stamp[i] = 0
	}
	c.tick = 0
	return n
}
