package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestRateLimiterHardCap: a client spraying unique keys must not grow the
// bucket table past its cap — the LRU eviction is a hard bound, not a
// best-effort prune of refilled buckets.
func TestRateLimiterHardCap(t *testing.T) {
	l := newRateLimiter(0.001, 1) // so slow nothing refills during the test
	l.max = 64
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 10*l.max; i++ {
		if ok, _ := l.allow(fmt.Sprintf("key:spray-%d", i)); !ok {
			t.Fatalf("fresh key %d denied its burst token", i)
		}
		if n := l.size(); n > l.max {
			t.Fatalf("bucket table grew to %d after %d sprayed keys, cap is %d", n, i+1, l.max)
		}
	}
}

// TestRateLimiterEvictsRefilledFirst: when the table is full, buckets
// that have refilled to burst (no state worth keeping) go before
// still-draining ones, so active clients keep their spent-token history.
func TestRateLimiterEvictsRefilledFirst(t *testing.T) {
	l := newRateLimiter(1, 2)
	l.max = 3
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }

	l.allow("active")
	now = now.Add(10 * time.Second)
	l.allow("idle-1") // 1 of 2 tokens left
	l.allow("active") // refilled to burst by the 10s gap...
	l.allow("active") // ...then drained to 0
	l.allow("idle-2") // table full: active (0 tokens), idle-1 (1), idle-2 (1)

	// 1.5s refills the idle buckets to burst (1 + 1.5 >= 2) but leaves
	// active below it (0 + 1.5 < 2): eviction must drop the idle pair and
	// keep active's drained state.
	now = now.Add(1500 * time.Millisecond)
	l.allow("fresh")

	if ok, _ := l.allow("active"); !ok {
		t.Fatal("active bucket should have 1.5 tokens (it was never refilled to burst)")
	}
	if ok, _ := l.allow("active"); ok {
		t.Fatal("active bucket kept across eviction should be drained now — was it reset?")
	}
}

// TestRateLimiterRetryAfter: a denied request reports a positive wait
// that actually lands a token.
func TestRateLimiterRetryAfter(t *testing.T) {
	l := newRateLimiter(2, 1)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }

	if ok, _ := l.allow("k"); !ok {
		t.Fatal("burst token denied")
	}
	ok, wait := l.allow("k")
	if ok {
		t.Fatal("empty bucket allowed a request")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait %v, want in (0, 500ms] for rate 2/s", wait)
	}
	now = now.Add(wait)
	if ok, _ := l.allow("k"); !ok {
		t.Fatal("request denied after waiting the reported Retry-After")
	}
}
