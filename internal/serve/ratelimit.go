package serve

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each key accrues rate tokens
// per second up to burst, and a submission spends one. Zero rate means
// unlimited. Keys are whatever the caller identifies clients by (API key
// or remote host); the bucket map is bounded by pruning full buckets, so
// an address-spraying client cannot grow it without bound.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the limiter's memory; beyond it, buckets that have
// refilled to burst carry no state worth keeping and are pruned.
const maxBuckets = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports false plus how long until the next token lands — the HTTP
// layer's Retry-After.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.prune(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// prune drops buckets that have refilled to burst: they are
// indistinguishable from absent ones. Called with mu held.
func (l *rateLimiter) prune(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}
