package serve

import (
	"container/list"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each key accrues rate tokens
// per second up to burst, and a submission spends one. Zero rate means
// unlimited. Keys are whatever the caller identifies clients by (API key
// or remote host).
//
// The bucket table is a hard-capped LRU: when an insert would exceed max
// it first forgets buckets that have refilled to burst (they carry no
// state), then evicts the least-recently-used entries regardless of
// fill. A client spraying unique keys therefore bounds memory, not the
// server — the cost is that an evicted client's spent tokens are
// forgotten, which the Server's coarser per-host bucket backstops.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	max   int              // hard cap on tracked buckets
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*list.Element
	order   *list.List // front = most recently used
}

type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

// maxBuckets is the default hard cap on the limiter's bucket table.
const maxBuckets = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		max:     maxBuckets,
		now:     time.Now,
		buckets: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports false plus how long until the next token lands — the HTTP
// layer's Retry-After.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	var b *bucket
	if el, ok := l.buckets[key]; ok {
		l.order.MoveToFront(el)
		b = el.Value.(*bucket)
	} else {
		if len(l.buckets) >= l.max {
			l.evict(now)
		}
		b = &bucket{key: key, tokens: l.burst, last: now}
		l.buckets[key] = l.order.PushFront(b)
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// evict makes room for one insert with mu held: first drop buckets that
// have refilled to burst (indistinguishable from absent ones), then, if
// the table is still at the cap, drop least-recently-used entries until
// it is below it.
func (l *rateLimiter) evict(now time.Time) {
	for k, el := range l.buckets {
		b := el.Value.(*bucket)
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			l.order.Remove(el)
			delete(l.buckets, k)
		}
	}
	for len(l.buckets) >= l.max {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.buckets, oldest.Value.(*bucket).key)
	}
}

// size reports the tracked-bucket count, for tests.
func (l *rateLimiter) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
