package serve

import (
	"fmt"
	"net/http"
	"strings"

	"cellbe/internal/perfctr"
)

// handleMetrics exposes the service's observability counters in
// Prometheus text exposition format: scheduler depth, result-cache
// stats, journal health and the perf-counter rollups — the cheap
// always-on tier, aggregated across every simulated point, plus a
// per-job breakdown for the jobs still tracked. Everything here is a
// snapshot of counters the scheduler maintains anyway; scraping costs
// no simulation work.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	jobs, points := s.sched.Depth()
	gauge("cellserve_jobs_active", "Unfinished jobs admitted to the scheduler.", jobs)
	gauge("cellserve_points_pending", "Grid points admitted but not yet delivered or skipped.", points)

	cs := s.sched.CacheStats()
	gauge("cellserve_cache_entries", "Grid points held in the result cache.", cs.Entries)
	gauge("cellserve_cache_capacity", "Result cache capacity in grid points.", cs.Capacity)
	counter("cellserve_cache_hits_total", "Result cache hits.", cs.Hits)
	counter("cellserve_cache_misses_total", "Result cache misses.", cs.Misses)
	counter("cellserve_cache_evictions_total", "Result cache LRU evictions.", cs.Evictions)
	counter("cellserve_simulations_total", "Grid points actually simulated (cache hits excluded).", cs.Simulations)
	counter("cellserve_warm_points_total", "Grid points stamped from a warm snapshot (recycled arena carcass) instead of cold-booted.", s.sched.WarmPoints())

	if s.opts.Journal != nil {
		h := s.opts.Journal.Health()
		counter("cellserve_journal_appends_total", "Journal records accepted since open.", h.Appends)
		counter("cellserve_journal_syncs_total", "Journal fsync batches since open.", h.Syncs)
		gauge("cellserve_journal_lag", "Journal records accepted but not yet fsynced.", h.Lag)
		degraded := 0
		if h.LastError != "" {
			degraded = 1
		}
		gauge("cellserve_journal_degraded", "1 when the last journal append failed (readiness is down).", degraded)
	}

	writePerf(&b, "cellserve_perf", "", s.sched.PerfTotals())
	for _, j := range s.sched.Jobs() {
		writePerf(&b, "cellserve_job_perf", fmt.Sprintf("job=%q", j.ID), j.Perf())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}

// writePerf renders one perf-counter rollup as a family of counter
// series under prefix. extra is an optional label pair (`job="job-1"`)
// added to every series; the TYPE headers are emitted only for the
// unlabeled scheduler totals, so per-job series extend those families.
func writePerf(b *strings.Builder, prefix, extra string, ru perfctr.Rollup) {
	series := func(name, labels string, v uint64) {
		switch {
		case labels == "" && extra == "":
			fmt.Fprintf(b, "%s_%s %d\n", prefix, name, v)
		case labels == "":
			fmt.Fprintf(b, "%s_%s{%s} %d\n", prefix, name, extra, v)
		case extra == "":
			fmt.Fprintf(b, "%s_%s{%s} %d\n", prefix, name, labels, v)
		default:
			fmt.Fprintf(b, "%s_%s{%s,%s} %d\n", prefix, name, labels, extra, v)
		}
	}
	emit := func(name string, v uint64) {
		if extra == "" {
			fmt.Fprintf(b, "# TYPE %s_%s counter\n", prefix, name)
		}
		series(name, "", v)
	}
	emit("eib_bytes_total", ru.EIBBytes)
	emit("eib_grants_total", ru.EIBGrants)
	emit("eib_local_grants_total", ru.EIBLocal)
	emit("eib_denies_total", ru.EIBDenies)
	emit("eib_abandons_total", ru.EIBAbandons)
	emit("eib_busy_cycles_total", ru.EIBBusyCycles)
	emit("eib_wait_cycles_total", ru.EIBWaitCycles)
	emit("eib_commands_total", ru.EIBCommands)
	for i := range ru.XDRBytes {
		bankLabel := fmt.Sprintf("bank=\"%d\"", i)
		if i == 0 && extra == "" {
			for _, name := range []string{"xdr_bytes_total", "xdr_row_hits_total", "xdr_row_misses_total", "xdr_refreshes_total"} {
				fmt.Fprintf(b, "# TYPE %s_%s counter\n", prefix, name)
			}
		}
		series("xdr_bytes_total", bankLabel, ru.XDRBytes[i])
		series("xdr_row_hits_total", bankLabel, ru.XDRRowHits[i])
		series("xdr_row_misses_total", bankLabel, ru.XDRRowMisses[i])
		series("xdr_refreshes_total", bankLabel, ru.XDRRefreshes[i])
	}
	// Per-ramp and per-ring EIB detail. Every ramp and ring is emitted
	// (idle ones as zero) so dashboards get stable series.
	for i := range ru.EIBRampGrants {
		rampLabel := fmt.Sprintf("ramp=\"%d\"", i)
		if i == 0 && extra == "" {
			for _, name := range []string{"eib_ramp_grants_total", "eib_ramp_denies_total", "eib_ramp_abandons_total"} {
				fmt.Fprintf(b, "# TYPE %s_%s counter\n", prefix, name)
			}
		}
		series("eib_ramp_grants_total", rampLabel, ru.EIBRampGrants[i])
		series("eib_ramp_denies_total", rampLabel, ru.EIBRampDenies[i])
		series("eib_ramp_abandons_total", rampLabel, ru.EIBRampAbandons[i])
	}
	for i := range ru.EIBRingBusy {
		if i == 0 && extra == "" {
			fmt.Fprintf(b, "# TYPE %s_eib_ring_busy_cycles_total counter\n", prefix)
		}
		series("eib_ring_busy_cycles_total", fmt.Sprintf("ring=\"%d\"", i), ru.EIBRingBusy[i])
	}
	emit("mfc_retries_total", ru.MFCRetries)
	// Per-SPE MFC queue-occupancy histograms: enqueue-time depth samples
	// and the time-weighted cycles-at-depth view. Only touched buckets are
	// emitted — 2 x 8 x 17 all-zero series would drown the scrape.
	occTyped := false
	for spe := range ru.MFCOccSamples {
		for d := range ru.MFCOccSamples[spe] {
			samples, cycles := ru.MFCOccSamples[spe][d], ru.MFCOccCycles[spe][d]
			if samples == 0 && cycles == 0 {
				continue
			}
			if !occTyped && extra == "" {
				fmt.Fprintf(b, "# TYPE %s_mfc_occupancy_samples_total counter\n", prefix)
				fmt.Fprintf(b, "# TYPE %s_mfc_occupancy_cycles_total counter\n", prefix)
			}
			occTyped = true
			label := fmt.Sprintf("spe=\"%d\",depth=\"%d\"", spe, d)
			if samples > 0 {
				series("mfc_occupancy_samples_total", label, samples)
			}
			if cycles > 0 {
				series("mfc_occupancy_cycles_total", label, cycles)
			}
		}
	}
	emit("ppe_missq_stalls_total", ru.PPEMissQStalls)
	emit("ppe_fills_total", ru.PPEFills)
	emit("ppe_prefetch_fills_total", ru.PPEPrefetchFills)
}
