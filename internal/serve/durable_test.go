package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellbe/internal/core"
	"cellbe/internal/journal"
	"cellbe/internal/serve"
)

// TestRetryAfterJitterRange: every queue-full 429 must advise a
// Retry-After in [1, 4] seconds, and the advice must actually vary —
// a fixed value would synchronize the retrying herd into a second wave.
func TestRetryAfterJitterRange(t *testing.T) {
	gate := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(gate) })
	defer releaseAll()
	entered := make(chan struct{}, 16)
	ts, _ := newTestServer(t,
		core.SchedOptions{
			Workers: 1,
			MaxJobs: 1,
			BeforePoint: func(int, int64) {
				entered <- struct{}{}
				<-gate
			},
		},
		serve.Options{})

	go http.Post(ts.URL+"/v1/sweeps?wait=1", "application/json", strings.NewReader(sweepBody()))
	<-entered // the only job slot is now held

	seen := map[int]bool{}
	for i := 0; i < 40; i++ {
		resp := postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody())
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 429", i, resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("request %d: Retry-After %q not an integer", i, resp.Header.Get("Retry-After"))
		}
		if ra < 1 || ra > 4 {
			t.Fatalf("request %d: Retry-After %d outside the documented [1, 4]", i, ra)
		}
		seen[ra] = true
		resp.Body.Close()
	}
	if len(seen) < 2 {
		t.Fatalf("40 queue-full responses all advised the same Retry-After %v — jitter is not wired", seen)
	}
}

// TestHealthProbes: liveness answers 200 as long as the process serves;
// readiness flips to 503 when the journal degrades and recovers when
// appends succeed again, and goes dark for good on shutdown — while
// liveness stays green so the orchestrator drains instead of killing.
func TestHealthProbes(t *testing.T) {
	var failWrites atomic.Bool
	jr, _, err := journal.Open(t.TempDir(), journal.Options{
		AppendRetries: 1,
		RetrySleep:    func(time.Duration) {},
		WriteErr: func(op string) error {
			if failWrites.Load() {
				return fmt.Errorf("injected %s write failure", op)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	ts, sched := newTestServer(t,
		core.SchedOptions{Workers: 2, Journal: jr},
		serve.Options{Journal: jr})

	assertReady := func(wantStatus int, wantReady bool) serveReadyBody {
		t.Helper()
		resp := mustGet(t, ts.URL+"/healthz/ready")
		if resp.StatusCode != wantStatus {
			t.Fatalf("/healthz/ready status %d, want %d", resp.StatusCode, wantStatus)
		}
		body := decodeBody[serveReadyBody](t, resp)
		if body.Ready != wantReady {
			t.Fatalf("/healthz/ready body %+v, want ready=%v", body, wantReady)
		}
		return body
	}

	if resp := mustGet(t, ts.URL+"/healthz/live"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz/live status %d, want 200", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	body := assertReady(http.StatusOK, true)
	if body.Journal == nil {
		t.Fatal("ready body missing journal health on a journaled server")
	}

	// Degrade the journal: the next submission's job append fails past
	// its retries and the error sticks.
	failWrites.Store(true)
	decodeBody[waitResponse](t, postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody()))
	body = assertReady(http.StatusServiceUnavailable, false)
	if !strings.Contains(body.Reason, "journal degraded") {
		t.Fatalf("unready reason %q does not name the journal", body.Reason)
	}

	// Heal it: a successful append clears the sticky error.
	failWrites.Store(false)
	decodeBody[waitResponse](t, postJSON(t, ts.URL+"/v1/sweeps?wait=1",
		`{"scenario":"cycle","spes":4,"chunks":[2048],"seeds":[0],"volume":131072}`))
	assertReady(http.StatusOK, true)

	// Shutdown: readiness goes dark, liveness does not.
	sched.Close()
	body = assertReady(http.StatusServiceUnavailable, false)
	if !strings.Contains(body.Reason, "shutting down") {
		t.Fatalf("unready reason %q does not name shutdown", body.Reason)
	}
	if resp := mustGet(t, ts.URL+"/healthz/live"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz/live during shutdown: status %d, want 200", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// serveReadyBody mirrors the readiness response for decoding.
type serveReadyBody struct {
	Ready         bool            `json:"ready"`
	Reason        string          `json:"reason"`
	ActiveJobs    int             `json:"active_jobs"`
	PendingPoints int64           `json:"pending_points"`
	Journal       *journal.Health `json:"journal"`
}

// TestPointAttemptsOnWire: a retried point reports its attempt count in
// the response; first-try points omit the field.
func TestPointAttemptsOnWire(t *testing.T) {
	ts, _ := newTestServer(t,
		core.SchedOptions{
			Workers: 2,
			Retry:   core.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}},
			FailPoint: func(chunk int, seed int64, attempt int) error {
				if chunk == 1024 && seed == 0 && attempt == 0 {
					return &core.TransientError{Err: fmt.Errorf("flaky once")}
				}
				return nil
			},
		},
		serve.Options{})
	got := decodeBody[waitResponse](t, postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody()))
	if got.Status.Failed != 0 || got.Status.Retried != 1 {
		t.Fatalf("status %+v, want retried=1 failed=0", got.Status)
	}
	for _, p := range got.Results {
		want := 0
		if p.Chunk == 1024 && p.Seed == 0 {
			want = 2
		}
		if p.Attempts != want {
			t.Errorf("point chunk=%d seed=%d: attempts %d on the wire, want %d", p.Chunk, p.Seed, p.Attempts, want)
		}
	}
}

// TestGracefulDrainStream is the shutdown-with-in-flight-stream
// contract: Shutdown must wait for an open NDJSON sweep stream, the
// client must receive every line intact — valid JSON, trailer included,
// never a mid-record cut — and only then does Shutdown return.
func TestGracefulDrainStream(t *testing.T) {
	gate := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(gate) })
	defer releaseAll()
	entered := make(chan struct{}, 16)
	sched := core.NewScheduler(core.SchedOptions{
		Workers: 1,
		BeforePoint: func(int, int64) {
			entered <- struct{}{}
			<-gate
		},
	})
	defer sched.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: serve.New(serve.Options{Sched: sched})}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/sweeps", "application/json",
		strings.NewReader(sweepBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-entered // the stream is open and the first point is in flight

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must not cut the open stream: while the gate holds the
	// sweep, the response must stay open.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a sweep stream was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	releaseAll()

	var lines []json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if !json.Valid(line) {
			t.Fatalf("stream line %d is not valid JSON (mid-record cut?): %q", len(lines), line)
		}
		lines = append(lines, json.RawMessage(append([]byte(nil), line...)))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream ended with a transport error, not a clean EOF: %v", err)
	}
	if len(lines) != 6 { // header + 4 points + trailer
		t.Fatalf("stream delivered %d lines, want 6", len(lines))
	}
	var trailer struct {
		Done      bool `json:"done"`
		Completed int  `json:"completed"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil || !trailer.Done || trailer.Completed != 4 {
		t.Fatalf("stream's last line is not a done trailer: %s (err %v)", lines[len(lines)-1], err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}
