package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cellbe/internal/core"
	"cellbe/internal/serve"
)

// newTestServer builds a serve.Server over a test-owned scheduler and
// exposes it on a real listener (streaming responses need one).
func newTestServer(t *testing.T, sched core.SchedOptions, opts serve.Options) (*httptest.Server, *core.Scheduler) {
	t.Helper()
	s := core.NewScheduler(sched)
	t.Cleanup(s.Close)
	opts.Sched = s
	ts := httptest.NewServer(serve.New(opts))
	t.Cleanup(ts.Close)
	return ts, s
}

// sweepBody is the canonical 4-point test sweep.
func sweepBody() string {
	return `{"scenario":"cycle","spes":4,"chunks":[1024,4096],"seeds":[0,1],"volume":131072}`
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %s response: %v", resp.Request.URL.Path, err)
	}
	return v
}

type waitResponse struct {
	Job     string         `json:"job"`
	Status  core.JobStatus `json:"status"`
	Results []serve.Point  `json:"results"`
}

// TestServerMemoization is the service-level cache acceptance check:
// resubmitting an identical sweep must be answered entirely from the
// result cache, with /v1/cache proving zero new simulations ran.
func TestServerMemoization(t *testing.T) {
	ts, _ := newTestServer(t,
		core.SchedOptions{Workers: 4, CachePoints: 64},
		serve.Options{})

	first := decodeBody[waitResponse](t, postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody()))
	if len(first.Results) != 4 || first.Status.Failed != 0 {
		t.Fatalf("first sweep: %+v", first.Status)
	}
	stats := decodeBody[core.CacheStats](t, mustGet(t, ts.URL+"/v1/cache"))
	if stats.Simulations != 4 || stats.Entries != 4 {
		t.Fatalf("after first sweep: %+v, want 4 simulations / 4 entries", stats)
	}

	second := decodeBody[waitResponse](t, postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody()))
	for _, p := range second.Results {
		if !p.Cached {
			t.Errorf("point chunk=%d seed=%d not served from cache", p.Chunk, p.Seed)
		}
	}
	stats = decodeBody[core.CacheStats](t, mustGet(t, ts.URL+"/v1/cache"))
	if stats.Simulations != 4 {
		t.Fatalf("resubmission ran %d new simulations, want 0 (total still 4)", stats.Simulations-4)
	}
	if stats.Hits != 4 {
		t.Fatalf("resubmission recorded %d cache hits, want 4", stats.Hits)
	}
	for i := range first.Results {
		a, b := first.Results[i], second.Results[i]
		if a.Chunk != b.Chunk || a.Seed != b.Seed || a.Cycles != b.Cycles || a.GBps != b.GBps {
			t.Errorf("memoized point %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

type errBody struct {
	Error string   `json:"error"`
	Code  string   `json:"code"`
	Log   []string `json:"log"`
}

// TestServerQueueFull429: once the scheduler holds MaxJobs unfinished
// jobs, a new submission must bounce with 429 + Retry-After instead of
// queueing unboundedly — and be admitted again after the queue drains.
func TestServerQueueFull429(t *testing.T) {
	gate := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(gate) })
	defer releaseAll()
	entered := make(chan struct{}, 16)
	ts, _ := newTestServer(t,
		core.SchedOptions{
			Workers: 1,
			MaxJobs: 1,
			BeforePoint: func(int, int64) {
				entered <- struct{}{}
				<-gate
			},
		},
		serve.Options{})

	type result struct {
		resp *http.Response
		err  error
	}
	firstc := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sweeps?wait=1", "application/json",
			strings.NewReader(sweepBody()))
		firstc <- result{resp, err}
	}()
	<-entered // the first job's opening point holds the only slot

	resp := postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission with a full queue: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	}
	if body := decodeBody[errBody](t, resp); body.Code != "queue_full" {
		t.Fatalf("error code %q, want queue_full", body.Code)
	}

	releaseAll()
	r := <-firstc
	if r.err != nil {
		t.Fatal(r.err)
	}
	if got := decodeBody[waitResponse](t, r.resp); got.Status.Completed != 4 {
		t.Fatalf("first job finished with %+v, want 4 completed", got.Status)
	}
	resp = postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submission after the queue drained: status %d, want 200", resp.StatusCode)
	}
	decodeBody[waitResponse](t, resp)
}

// TestServerRateLimit: a client over its token budget gets 429 with code
// rate_limited, while other clients are untouched.
func TestServerRateLimit(t *testing.T) {
	ts, _ := newTestServer(t,
		core.SchedOptions{Workers: 2},
		serve.Options{RatePerSec: 0.001, RateBurst: 1})

	post := func(key string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/sweeps?wait=1", strings.NewReader(sweepBody()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := post("alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request within burst: status %d, want 200", resp.StatusCode)
	} else {
		decodeBody[waitResponse](t, resp)
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request over budget: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("rate-limited response missing Retry-After")
	}
	if body := decodeBody[errBody](t, resp); body.Code != "rate_limited" {
		t.Fatalf("error code %q, want rate_limited", body.Code)
	}
	if resp := post("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("different client caught by alice's limit: status %d, want 200", resp.StatusCode)
	} else {
		decodeBody[waitResponse](t, resp)
	}
}

// TestServerDeadlockDiagnostics: a grid point whose watchdog fires must
// come back as a structured 422 carrying the diagnostic log — and the
// worker that ran it must stay alive for the next request.
func TestServerDeadlockDiagnostics(t *testing.T) {
	ts, _ := newTestServer(t,
		core.SchedOptions{Workers: 1},
		serve.Options{})

	// A 100-cycle budget wedges any real scenario: the watchdog reports
	// an exceeded budget as a DeadlockError with the stuck-process dump.
	wedged := `{"scenario":"cycle","spes":4,"chunks":[4096],"seeds":[0],"volume":131072,"max_cycles":100}`
	resp := postJSON(t, ts.URL+"/v1/scenarios", wedged)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("wedged scenario: status %d, want 422", resp.StatusCode)
	}
	body := decodeBody[errBody](t, resp)
	if body.Code != "deadlock" {
		t.Fatalf("error code %q, want deadlock", body.Code)
	}
	if body.Error == "" || len(body.Log) == 0 {
		t.Fatalf("422 body missing diagnostics: %+v", body)
	}
	found := false
	for _, line := range body.Log {
		if strings.Contains(line, "layout") || strings.Contains(line, "cycle") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostic log carries no watchdog detail: %q", body.Log)
	}

	// The same (only) worker must serve the next, healthy request.
	ok := `{"scenario":"cycle","spes":4,"chunks":[4096],"seeds":[0],"volume":131072}`
	resp = postJSON(t, ts.URL+"/v1/scenarios", ok)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy scenario after a deadlock: status %d, want 200", resp.StatusCode)
	}
	if p := decodeBody[serve.Point](t, resp); p.Cycles == 0 || p.GBps == 0 {
		t.Fatalf("healthy scenario returned empty result: %+v", p)
	}
}

// readLine scans one NDJSON line into v.
func readLine(t *testing.T, sc *bufio.Scanner, v any) {
	t.Helper()
	if !sc.Scan() {
		t.Fatalf("NDJSON stream ended early: %v", sc.Err())
	}
	if err := json.Unmarshal(sc.Bytes(), v); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
	}
}

type streamHeader struct {
	Job    string `json:"job"`
	Points int    `json:"points"`
}

type streamTrailer struct {
	Done      bool `json:"done"`
	Completed int  `json:"completed"`
	Failed    int  `json:"failed"`
	Cached    int  `json:"cached"`
	Skipped   int  `json:"skipped"`
}

// TestServerCancelEndpoint: DELETE /v1/jobs/{id} mid-sweep must stop the
// remaining grid points and the NDJSON stream must account for them as
// skipped in its trailer.
func TestServerCancelEndpoint(t *testing.T) {
	gate := make(chan struct{}, 16)
	entered := make(chan struct{}, 16)
	ts, _ := newTestServer(t,
		core.SchedOptions{
			Workers: 1,
			BeforePoint: func(int, int64) {
				entered <- struct{}{}
				<-gate
			},
		},
		serve.Options{})

	resp := postJSON(t, ts.URL+"/v1/sweeps", sweepBody())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream submission: status %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var hdr streamHeader
	readLine(t, sc, &hdr)
	if hdr.Points != 4 || hdr.Job == "" {
		t.Fatalf("stream header %+v, want 4 points and a job id", hdr)
	}

	<-entered          // point 1 on the worker
	gate <- struct{}{} // let it simulate
	<-entered          // point 2 on the worker

	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+hdr.Job, nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d, want 200", cresp.StatusCode)
	}
	decodeBody[core.JobStatus](t, cresp)
	gate <- struct{}{} // release point 2: its worker must now skip it

	var pt serve.Point
	readLine(t, sc, &pt) // the one point that completed
	var tr streamTrailer
	readLine(t, sc, &tr)
	if !tr.Done || tr.Completed != 1 || tr.Skipped != 3 {
		t.Fatalf("trailer %+v, want done with completed=1 skipped=3", tr)
	}

	st := decodeBody[core.JobStatus](t, mustGet(t, ts.URL+"/v1/jobs/"+hdr.Job))
	if st.State != core.JobCancelled {
		t.Fatalf("job state %q, want %q", st.State, core.JobCancelled)
	}
}

// TestServerClientDisconnectCancels: a client that walks away mid-stream
// must cancel its job — the request context is the job context, so the
// scheduler skips every point not yet started.
func TestServerClientDisconnectCancels(t *testing.T) {
	gate := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(gate) })
	defer releaseAll()
	entered := make(chan struct{}, 16)
	ts, sched := newTestServer(t,
		core.SchedOptions{
			Workers: 1,
			BeforePoint: func(int, int64) {
				entered <- struct{}{}
				<-gate
			},
		},
		serve.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweeps",
		strings.NewReader(sweepBody()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var hdr streamHeader
	readLine(t, sc, &hdr)
	job, ok := sched.Job(hdr.Job)
	if !ok {
		t.Fatalf("job %s not registered", hdr.Job)
	}

	<-entered // point 1 on the worker, gated
	cancel()  // client walks away
	// Drain whatever the dead connection delivers; the transport errors
	// out once the context cancellation reaches it.
	go io.Copy(io.Discard, resp.Body)

	// The disconnect reaches the server asynchronously (the handler's
	// request context cancels when the connection tears down), so hold
	// the gate until the job is observably cancelled — only then may the
	// gated point proceed, and it must be skipped, not simulated.
	deadline := time.Now().Add(5 * time.Second)
	for job.Status().State != core.JobCancelled {
		if time.Now().After(deadline) {
			t.Fatalf("job not cancelled after client disconnect: %+v", job.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	releaseAll()

	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(5 * time.Millisecond) {
		st := job.Status()
		if st.Completed+st.Skipped == st.Total {
			if st.Completed != 0 || st.Skipped != st.Total {
				t.Fatalf("disconnected job still simulated points: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never drained after disconnect: %+v", st)
		}
	}
}

// TestServerRequestValidation covers the 400/404 paths: malformed JSON,
// unknown scenario kinds, grids beyond the server cap, volumes beyond
// the byte cap, and status queries for jobs that never existed.
func TestServerRequestValidation(t *testing.T) {
	ts, _ := newTestServer(t,
		core.SchedOptions{Workers: 1},
		serve.Options{MaxPoints: 8, MaxVolume: 1 << 20})

	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"scenario":`},
		{"unknown field", `{"scenario":"cycle","bogus":1}`},
		{"unknown scenario", `{"scenario":"nope","spes":4,"chunks":[1024],"volume":65536}`},
		{"no chunks", `{"scenario":"cycle","spes":4,"volume":65536}`},
		{"grid too large", `{"scenario":"cycle","spes":4,"chunks":[1024],"seed_count":9,"volume":65536}`},
		// A huge seed_count must be rejected from the count alone, before
		// any seed slice is materialized — expanding first would allocate
		// gigabytes and OOM the server off one small request body.
		{"seed_count DoS", `{"scenario":"cycle","spes":4,"chunks":[1024],"seed_count":4000000000,"volume":65536}`},
		{"volume too large", `{"scenario":"cycle","spes":4,"chunks":[1024],"volume":2097152}`},
		{"invalid config", `{"scenario":"cycle","spes":4,"chunks":[1024],"volume":65536,"config":{"ClockGHz":-1}}`},
		{"non-permutation layout", `{"scenario":"cycle","spes":4,"chunks":[1024],"volume":65536,"config":{"Layout":[0,0,0,0,0,0,0,0]}}`},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/sweeps", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if body := decodeBody[errBody](t, resp); body.Code != "bad_request" {
			t.Errorf("%s: code %q, want bad_request", tc.name, body.Code)
		}
	}

	resp := mustGet(t, ts.URL+"/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServerConfigOverlay: a request config is a partial overlay over the
// server's default machine. An empty object must mean "the default blade"
// (not a zero Config that panics cell.New), and a one-field overlay must
// keep every other calibrated value.
func TestServerConfigOverlay(t *testing.T) {
	ts, _ := newTestServer(t,
		core.SchedOptions{Workers: 2},
		serve.Options{})

	run := func(config string) serve.Point {
		t.Helper()
		body := `{"scenario":"cycle","spes":4,"chunks":[4096],"seeds":[0],"volume":131072,"config":` + config + `}`
		resp := postJSON(t, ts.URL+"/v1/scenarios", body)
		if resp.StatusCode != http.StatusOK {
			var eb errBody
			json.NewDecoder(resp.Body).Decode(&eb)
			resp.Body.Close()
			t.Fatalf("config %s: status %d (%+v), want 200", config, resp.StatusCode, eb)
		}
		return decodeBody[serve.Point](t, resp)
	}

	def := run(`{}`)
	if def.Cycles == 0 || def.GBps == 0 {
		t.Fatalf("empty config overlay returned empty result: %+v", def)
	}
	// Doubling the clock doubles GB/s for the same cycle count: the
	// overlay changed exactly the one field it named.
	fast := run(`{"ClockGHz": 4.2}`)
	if fast.Cycles != def.Cycles {
		t.Errorf("clock overlay changed simulated cycles: %d vs %d", fast.Cycles, def.Cycles)
	}
	if ratio := fast.GBps / def.GBps; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("GB/s ratio %.3f after doubling the clock, want ~2", ratio)
	}
}

// TestServerKeySprayHostLimit: X-API-Key is attacker-chosen, so fresh
// keys minting fresh bursts must still drain the per-host budget — one
// address gets hostRateFactor clients' worth, no more.
func TestServerKeySprayHostLimit(t *testing.T) {
	ts, _ := newTestServer(t,
		core.SchedOptions{Workers: 2, CachePoints: 16},
		serve.Options{RatePerSec: 0.001, RateBurst: 1})

	post := func(key string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/scenarios",
			strings.NewReader(`{"scenario":"cycle","spes":4,"chunks":[1024],"seeds":[0],"volume":65536}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// The host budget is burst*16 = 16: the first 16 sprayed keys ride
	// their per-key bursts, the 17th is cut off at the host tier even
	// though its own key is fresh.
	for i := 0; i < 16; i++ {
		resp := post(fmt.Sprintf("spray-%d", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sprayed key %d: status %d, want 200 (within host budget)", i, resp.StatusCode)
		}
		decodeBody[serve.Point](t, resp)
	}
	resp := post("spray-16")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("17th sprayed key: status %d, want 429 from the host-level limit", resp.StatusCode)
	}
	if body := decodeBody[errBody](t, resp); body.Code != "rate_limited" {
		t.Fatalf("error code %q, want rate_limited", body.Code)
	}
}
