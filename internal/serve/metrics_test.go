package serve_test

import (
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cellbe/internal/core"
	"cellbe/internal/perfctr"
	"cellbe/internal/serve"
)

// TestMetricsEndpoint runs a sweep to completion and scrapes /metrics:
// the exposition must parse as Prometheus text (TYPE headers, one value
// per series), report the cache activity the sweep caused, and carry
// non-zero perf-counter rollups both as scheduler totals and under the
// job's label.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t,
		core.SchedOptions{Workers: 4, CachePoints: 64},
		serve.Options{})

	done := decodeBody[waitResponse](t, postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody()))
	if len(done.Results) != 4 || done.Status.Failed != 0 {
		t.Fatalf("sweep: %+v", done.Status)
	}

	resp := mustGet(t, ts.URL+"/metrics")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every non-comment line must be "name[{labels}] value".
	lineRe := regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? -?[0-9.e+-]+$`)
	values := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		name, val, _ := strings.Cut(line, " ")
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparsable value on %q: %v", line, err)
		}
		values[name] = f
	}

	want := map[string]float64{
		"cellserve_jobs_active":           0,
		"cellserve_simulations_total":     4,
		"cellserve_cache_entries":         4,
		"cellserve_perf_eib_grants_total": float64(sumTransfers(done)),
	}
	for name, v := range want {
		got, ok := values[name]
		if !ok {
			t.Errorf("missing series %s", name)
		} else if got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if values["cellserve_perf_eib_bytes_total"] <= 0 {
		t.Error("scheduler perf rollup saw no EIB bytes")
	}

	// The finished job is still tracked, so its labeled rollup must
	// match the scheduler totals (it is the only job).
	jobSeries := `cellserve_job_perf_eib_bytes_total{job="` + done.Job + `"}`
	if got, ok := values[jobSeries]; !ok {
		t.Errorf("missing per-job series %s", jobSeries)
	} else if got != values["cellserve_perf_eib_bytes_total"] {
		t.Errorf("job rollup %v != scheduler total %v", got, values["cellserve_perf_eib_bytes_total"])
	}

	// Bank-labeled series must exist for both banks (zero-valued here:
	// the cycle scenario never touches main memory).
	for _, s := range []string{`cellserve_perf_xdr_bytes_total{bank="0"}`, `cellserve_perf_xdr_bytes_total{bank="1"}`} {
		if _, ok := values[s]; !ok {
			t.Errorf("missing series %s", s)
		}
	}

	if !strings.Contains(body, "# TYPE cellserve_perf_eib_bytes_total counter") {
		t.Error("missing TYPE header for perf counter family")
	}

	// Per-ramp EIB detail: a stable series per ramp, whose grant counts
	// sum back to the scheduler-level grant total.
	var rampSum float64
	for i := 0; i < perfctr.NumRamps; i++ {
		s := fmt.Sprintf(`cellserve_perf_eib_ramp_grants_total{ramp="%d"}`, i)
		v, ok := values[s]
		if !ok {
			t.Errorf("missing series %s", s)
		}
		rampSum += v
	}
	if rampSum != values["cellserve_perf_eib_grants_total"] {
		t.Errorf("per-ramp grants sum to %v, scheduler total %v", rampSum, values["cellserve_perf_eib_grants_total"])
	}
	var ringBusy float64
	for i := 0; i < perfctr.NumRings; i++ {
		s := fmt.Sprintf(`cellserve_perf_eib_ring_busy_cycles_total{ring="%d"}`, i)
		v, ok := values[s]
		if !ok {
			t.Errorf("missing series %s", s)
		}
		ringBusy += v
	}
	if ringBusy <= 0 {
		t.Error("ring busy cycles all zero after a saturating sweep")
	}

	// Per-SPE MFC occupancy histograms: both the enqueue-sample and the
	// time-weighted cycle views must be present (touched buckets only)
	// and positive for the active SPEs.
	occRe := regexp.MustCompile(`^cellserve_perf_mfc_occupancy_(samples|cycles)_total\{spe="(\d+)",depth="(\d+)"\}$`)
	var occSamples, occCycles float64
	for name, v := range values {
		m := occRe.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		if m[1] == "samples" {
			occSamples += v
		} else {
			occCycles += v
		}
	}
	if occSamples <= 0 {
		t.Error("no MFC occupancy sample series emitted")
	}
	if occCycles <= 0 {
		t.Error("no time-weighted MFC occupancy series emitted")
	}

	// Every point of the cycle sweep is snapshot-capable, so all of them
	// must have been stamped from the warm arena.
	if got := values["cellserve_warm_points_total"]; got != 4 {
		t.Errorf("cellserve_warm_points_total = %v, want 4", got)
	}
}

// sumTransfers totals the transfer counts of a finished sweep — with no
// ramp-local transfers in the cycle scenario, every one is a ring grant.
func sumTransfers(w waitResponse) int64 {
	var n int64
	for _, p := range w.Results {
		n += p.Transfers
	}
	return n
}

// TestMetricsCachedResubmission: a fully cache-served job still rolls
// its memoized per-point rollups into the scheduler totals — cached
// points carry counters from the run that populated the cache.
func TestMetricsCachedResubmission(t *testing.T) {
	ts, _ := newTestServer(t,
		core.SchedOptions{Workers: 4, CachePoints: 64},
		serve.Options{})

	first := decodeBody[waitResponse](t, postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody()))
	second := decodeBody[waitResponse](t, postJSON(t, ts.URL+"/v1/sweeps?wait=1", sweepBody()))
	if first.Status.Failed != 0 || second.Status.Failed != 0 {
		t.Fatalf("sweeps failed: %+v / %+v", first.Status, second.Status)
	}

	resp := mustGet(t, ts.URL+"/metrics")
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	total := 2 * sumTransfers(first)
	wantLine := "cellserve_perf_eib_grants_total " + strconv.FormatInt(total, 10)
	if !strings.Contains(string(raw), wantLine) {
		t.Errorf("metrics missing %q (cached points must contribute their memoized rollups)", wantLine)
	}
}
