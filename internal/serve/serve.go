// Package serve exposes the core job scheduler over HTTP/JSON: sweep
// submission with streamed results, job status and cancellation, cache
// statistics and health. It is the cellserve binary's handler layer,
// kept separate so httptest can drive it in-process.
//
// The server degrades instead of dying: a full job queue answers 429
// with Retry-After, over-budget clients answer 429, and a grid point
// that deadlocks or panics comes back as a structured error body
// carrying the watchdog's diagnostic log — the worker that ran it
// stays alive for the next request.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"sort"
	"time"

	"cellbe/internal/cell"
	"cellbe/internal/core"
	"cellbe/internal/fault"
	"cellbe/internal/journal"
	"cellbe/internal/sim"
)

// Options configures a Server. Sched is the only required field; the
// caller owns its lifetime (cellserve closes it after HTTP shutdown so
// in-flight jobs drain first).
type Options struct {
	// Sched runs the simulations. Required.
	Sched *core.Scheduler
	// RatePerSec and RateBurst shape the per-client token bucket guarding
	// the submission endpoints; RatePerSec <= 0 disables rate limiting.
	// Clients are keyed by X-API-Key when present, else by remote host.
	// Because the API key is client-chosen, every request also spends
	// from a coarser per-host bucket with hostRateFactor times the
	// budget, so spraying fresh keys from one address cannot mint
	// unlimited bursts.
	RatePerSec float64
	RateBurst  int
	// MaxPoints caps the grid size of one request; <= 0 defaults to 4096.
	MaxPoints int
	// MaxCycles caps (and, when a request leaves its budget unset,
	// supplies) the per-point watchdog budget, so a wedged scenario
	// terminates with a deadlock diagnostic instead of pinning a worker
	// forever. 0 leaves request budgets alone.
	MaxCycles sim.Time
	// MaxVolume caps the per-SPE byte volume of one request; <= 0
	// defaults to 64 MiB.
	MaxVolume int64
	// MaxBody caps the request body; <= 0 defaults to 1 MiB.
	MaxBody int64
	// Journal, when set, feeds the readiness probe: a journal whose
	// appends are failing flips /healthz/ready to 503 (the instance keeps
	// serving — liveness stays green — but load balancers stop routing
	// new sweeps to a node that can no longer make them durable).
	Journal *journal.Journal
}

func (o Options) maxPoints() int {
	if o.MaxPoints <= 0 {
		return 4096
	}
	return o.MaxPoints
}

func (o Options) maxVolume() int64 {
	if o.MaxVolume <= 0 {
		return 64 << 20
	}
	return o.MaxVolume
}

func (o Options) maxBody() int64 {
	if o.MaxBody <= 0 {
		return 1 << 20
	}
	return o.MaxBody
}

// hostRateFactor scales the per-host rate limit relative to the
// per-client one: a single address gets at most this many clients' worth
// of budget, however many distinct API keys it presents.
const hostRateFactor = 16

// Server is the HTTP handler set. Create with New.
type Server struct {
	opts        Options
	sched       *core.Scheduler
	limiter     *rateLimiter // per client (API key or remote host)
	hostLimiter *rateLimiter // per remote host, hostRateFactor times wider
	mux         *http.ServeMux
}

// New builds the handler set over opts.Sched.
func New(opts Options) *Server {
	s := &Server{
		opts:  opts,
		sched: opts.Sched,
	}
	if opts.RatePerSec > 0 {
		burst := opts.RateBurst
		if burst < 1 {
			burst = 1
		}
		s.limiter = newRateLimiter(opts.RatePerSec, burst)
		s.hostLimiter = newRateLimiter(opts.RatePerSec*hostRateFactor, burst*hostRateFactor)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("POST /v1/scenarios", s.handleScenario)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /healthz/live", s.handleLive)
	mux.HandleFunc("GET /healthz/ready", s.handleReady)
	s.mux = mux
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SweepRequest is the submission body for /v1/sweeps and /v1/scenarios.
// Seeds may be listed explicitly or expanded from seed_count/first_seed
// (the cellbench convention); faults is a fault.ParseSpec string like
// "mfc=0.01,xdr=0.05". Config is a partial cell.Config overlay: fields
// it sets override the server's default machine, fields it omits keep
// their calibrated values, so {} (or omitting it) means the default
// dual-Cell blade.
type SweepRequest struct {
	Scenario  string          `json:"scenario"`
	SPEs      int             `json:"spes"`
	Op        string          `json:"op,omitempty"`
	List      bool            `json:"list,omitempty"`
	Chunks    []int           `json:"chunks"`
	Seeds     []int64         `json:"seeds,omitempty"`
	SeedCount int             `json:"seed_count,omitempty"`
	FirstSeed int64           `json:"first_seed,omitempty"`
	Volume    int64           `json:"volume"`
	MaxCycles sim.Time        `json:"max_cycles,omitempty"`
	Faults    string          `json:"faults,omitempty"`
	FaultSeed int64           `json:"fault_seed,omitempty"`
	Config    json.RawMessage `json:"config,omitempty"`
	// Workload-library knobs: ring is the qcd halo-exchange neighbour
	// distance, addr_seeds pins per-SPE address-stream seeds, pattern is
	// the explicit phase program of the "pattern" scenario kind.
	Ring      int           `json:"ring,omitempty"`
	AddrSeeds []int64       `json:"addr_seeds,omitempty"`
	Pattern   *cell.Pattern `json:"pattern,omitempty"`
}

// Point is one grid point on the wire. Failed points carry error/code/log
// instead of the numeric fields.
type Point struct {
	Chunk      int      `json:"chunk"`
	Seed       int64    `json:"seed"`
	Cycles     sim.Time `json:"cycles,omitempty"`
	GBps       float64  `json:"gbps,omitempty"`
	Transfers  int64    `json:"transfers,omitempty"`
	WaitCycles sim.Time `json:"wait_cycles,omitempty"`
	Commands   int64    `json:"commands,omitempty"`
	FaultSeed  int64    `json:"fault_seed,omitempty"`
	Attempts   int      `json:"attempts,omitempty"`
	Cached     bool     `json:"cached,omitempty"`
	Error      string   `json:"error,omitempty"`
	Code       string   `json:"code,omitempty"`
	Log        []string `json:"log,omitempty"`
}

func toPoint(pr core.PointResult) Point {
	p := Point{
		Chunk:      pr.Chunk,
		Seed:       pr.Seed,
		Cycles:     pr.Cycles,
		GBps:       pr.GBps,
		Transfers:  pr.Transfers,
		WaitCycles: pr.WaitCycles,
		Commands:   pr.Commands,
		FaultSeed:  pr.FaultSeed,
		Cached:     pr.Cached,
	}
	if pr.Attempts > 1 {
		// Surface retries only: attempts=1 on every point would be noise.
		p.Attempts = pr.Attempts
	}
	if pr.Err != nil {
		p.Error = pr.Err.Error()
		p.Code = core.FailureCode(pr.Err)
		p.Log = pr.Log
	}
	return p
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string   `json:"error"`
	Code  string   `json:"code"`
	Log   []string `json:"log,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Code: code})
}

// remoteHost extracts the connection's host for the per-host limiter —
// the one identity a key-spraying client cannot choose.
func remoteHost(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return host
}

// clientKey identifies the caller for rate limiting: the API key when
// one is presented, otherwise the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	return "addr:" + remoteHost(r)
}

// admit runs the rate limiters for submission endpoints: the wide
// per-host bucket first (so arbitrarily many sprayed API keys still
// drain one budget), then the per-client bucket. It reports whether the
// request may proceed, answering 429 itself when not.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	ok, wait := s.hostLimiter.allow("addr:" + remoteHost(r))
	if ok {
		ok, wait = s.limiter.allow(clientKey(r))
	}
	if ok {
		return true
	}
	secs := int(wait/time.Second) + 1
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, http.StatusTooManyRequests, "rate_limited",
		fmt.Sprintf("client over rate limit; retry in %ds", secs))
	return false
}

// decode parses a submission body into req, answering 400 itself on
// malformed input.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, req *SweepRequest) bool {
	body := http.MaxBytesReader(w, r.Body, s.opts.maxBody())
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding request: "+err.Error())
		return false
	}
	return true
}

// spec turns a request into a validated SweepSpec, enforcing the
// server's grid, volume and cycle-budget caps.
func (s *Server) spec(req *SweepRequest) (core.SweepSpec, error) {
	// Validate the grid size from counts alone, before materializing
	// anything: seed_count is attacker-controlled and must never drive
	// an allocation, or one small request body OOMs the server.
	nSeeds := len(req.Seeds)
	if nSeeds == 0 {
		nSeeds = req.SeedCount
		if nSeeds <= 0 {
			nSeeds = 1
		}
	}
	if len(req.Chunks) == 0 {
		return core.SweepSpec{}, fmt.Errorf("chunks: at least one chunk size required")
	}
	if nSeeds > s.opts.maxPoints() {
		return core.SweepSpec{}, fmt.Errorf("grid of %d seeds x %d chunks exceeds the server's limit of %d points",
			nSeeds, len(req.Chunks), s.opts.maxPoints())
	}
	if grid := len(req.Chunks) * nSeeds; grid > s.opts.maxPoints() {
		return core.SweepSpec{}, fmt.Errorf("grid of %d points exceeds the server's limit of %d",
			grid, s.opts.maxPoints())
	}
	if req.Volume > s.opts.maxVolume() {
		return core.SweepSpec{}, fmt.Errorf("volume %d exceeds the server's limit of %d",
			req.Volume, s.opts.maxVolume())
	}
	if req.Pattern != nil {
		// Explicit phase programs bypass the Volume knob, so cap their
		// accounted per-SPE traffic the same way Volume is capped; the
		// grid cap already bounds AddrSeeds via spes <= NumSPEs.
		if lb := req.Pattern.LaneBytes(); lb > s.opts.maxVolume() {
			return core.SweepSpec{}, fmt.Errorf("pattern moves %d bytes per SPE, exceeding the server's limit of %d",
				lb, s.opts.maxVolume())
		}
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = make([]int64, nSeeds)
		for i := range seeds {
			seeds[i] = req.FirstSeed + int64(i)
		}
	}
	// A request config is a partial overlay: decode it over the defaults
	// so {"ClockGHz": 3.2} adjusts one knob without the client restating
	// the whole machine, and {} means the default machine.
	cfg := cell.DefaultConfig()
	if len(req.Config) > 0 {
		dec := json.NewDecoder(bytes.NewReader(req.Config))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return core.SweepSpec{}, fmt.Errorf("config: %w", err)
		}
	}
	if req.Faults != "" {
		fc, err := fault.ParseSpec(req.Faults)
		if err != nil {
			return core.SweepSpec{}, fmt.Errorf("faults: %w", err)
		}
		cfg.Faults = fc
	}
	if req.FaultSeed != 0 {
		cfg.FaultSeed = req.FaultSeed
	}
	if err := cfg.Validate(); err != nil {
		return core.SweepSpec{}, fmt.Errorf("config: %w", err)
	}
	budget := req.MaxCycles
	if limit := s.opts.MaxCycles; limit > 0 && (budget <= 0 || budget > limit) {
		budget = limit
	}
	return core.SweepSpec{
		Scenario:  req.Scenario,
		SPEs:      req.SPEs,
		Op:        req.Op,
		List:      req.List,
		Chunks:    req.Chunks,
		Seeds:     seeds,
		Volume:    req.Volume,
		Ring:      req.Ring,
		AddrSeeds: req.AddrSeeds,
		Pattern:   req.Pattern,
		Base:      &cfg,
		MaxCycles: budget,
	}, nil
}

// submit runs admission + decoding + scheduling for the submission
// endpoints, answering the error responses itself. A nil job means the
// response is already written.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) *core.Job {
	if !s.admit(w, r) {
		return nil
	}
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return nil
	}
	spec, err := s.spec(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return nil
	}
	// The request context drives the job: a client that disconnects
	// mid-stream cancels its remaining grid points.
	job, err := s.sched.Submit(r.Context(), spec)
	switch {
	case err == nil:
		return job
	case errors.Is(err, core.ErrQueueFull):
		// Jitter the retry hint across [1, 4] seconds: every client
		// hitting a full queue gets a different comeback time, so the
		// herd that filled the queue does not return as one thundering
		// wave and fill it again.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", 1+rand.IntN(4)))
		writeError(w, http.StatusTooManyRequests, "queue_full",
			"job queue is full; retry shortly")
	case errors.Is(err, core.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "shutting_down",
			"scheduler is shutting down")
	default:
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	}
	return nil
}

// sweepHeader opens an NDJSON stream; sweepTrailer closes it.
type sweepHeader struct {
	Job    string `json:"job"`
	Points int    `json:"points"`
}

type sweepTrailer struct {
	Done      bool `json:"done"`
	Completed int  `json:"completed"`
	Failed    int  `json:"failed"`
	Cached    int  `json:"cached"`
	Skipped   int  `json:"skipped"`
}

// handleSweep submits a sweep. The default response is an NDJSON stream
// — one header line, one line per grid point as it completes, one
// trailer line — so a client watches a long sweep land point by point.
// ?wait=1 buffers instead and answers one JSON document: 200 when every
// point succeeded, 207 when some failed.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	job := s.submit(w, r)
	if job == nil {
		return
	}
	w.Header().Set("X-Job-Id", job.ID)
	if r.URL.Query().Get("wait") != "" {
		s.sweepWait(w, job)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(sweepHeader{Job: job.ID, Points: job.Total()})
	flush()
	for pr := range job.Results() {
		enc.Encode(toPoint(pr))
		flush()
	}
	st := job.Status()
	enc.Encode(sweepTrailer{
		Done:      true,
		Completed: st.Completed,
		Failed:    st.Failed,
		Cached:    st.Cached,
		Skipped:   st.Skipped,
	})
	flush()
}

// sweepResponse is the buffered (?wait=1) sweep answer.
type sweepResponse struct {
	Job     string         `json:"job"`
	Status  core.JobStatus `json:"status"`
	Results []Point        `json:"results"`
}

func (s *Server) sweepWait(w http.ResponseWriter, job *core.Job) {
	var points []Point
	failed := 0
	for pr := range job.Results() {
		if pr.Err != nil {
			failed++
		}
		points = append(points, toPoint(pr))
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Chunk != points[j].Chunk {
			return points[i].Chunk < points[j].Chunk
		}
		return points[i].Seed < points[j].Seed
	})
	status := http.StatusOK
	if failed > 0 {
		status = http.StatusMultiStatus
	}
	writeJSON(w, status, sweepResponse{Job: job.ID, Status: job.Status(), Results: points})
}

// handleScenario runs one grid point synchronously. A deadlocked or
// panicking simulation answers 422 with the watchdog's diagnostic log in
// the body — the server (and the worker that ran the point) keeps
// serving.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	job := s.submit(w, r)
	if job == nil {
		return
	}
	if job.Total() != 1 {
		// More than one point is a sweep; the stream endpoint owns those.
		job.Cancel()
		for range job.Results() {
		}
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("scenario request resolves to %d grid points, want exactly 1 (use /v1/sweeps)", job.Total()))
		return
	}
	w.Header().Set("X-Job-Id", job.ID)
	var res core.PointResult
	ok := false
	for pr := range job.Results() {
		res, ok = pr, true
	}
	if !ok {
		// Client went away before the point ran; nobody reads this.
		writeError(w, http.StatusRequestTimeout, "cancelled", "request cancelled before the point ran")
		return
	}
	if res.Err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{
			Error: res.Err.Error(),
			Code:  core.FailureCode(res.Err),
			Log:   res.Log,
		})
		return
	}
	writeJSON(w, http.StatusOK, toPoint(res))
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job")
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.CacheStats())
}

// handleHealthz is the legacy combined probe, kept for existing
// monitors; new deployments point liveness at /healthz/live and
// readiness at /healthz/ready.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":          true,
		"active_jobs": s.sched.Active(),
	})
}

// handleLive is the liveness probe: the process is up and the handler
// stack answers. It never consults the scheduler or journal — a node
// that is degraded but alive must not be restarted by its orchestrator.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// readyBody is the readiness probe's response: whether this node should
// receive new work, with the queue depth and journal health that
// explain the verdict.
type readyBody struct {
	Ready bool `json:"ready"`
	// Reason says why Ready is false; empty when ready.
	Reason string `json:"reason,omitempty"`
	// ActiveJobs and PendingPoints are the scheduler's queue depth: jobs
	// admitted and grid points not yet delivered.
	ActiveJobs    int   `json:"active_jobs"`
	PendingPoints int64 `json:"pending_points"`
	// Journal reports append/sync counters, the unsynced-record lag and
	// the last append error; absent when the server runs without a
	// journal.
	Journal *journal.Health `json:"journal,omitempty"`
}

// handleReady is the readiness probe: 200 while the node can accept and
// durably record new sweeps, 503 once the scheduler is shutting down or
// the journal's appends are failing (sticky until an append succeeds).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	var body readyBody
	body.Ready = true
	body.ActiveJobs, body.PendingPoints = s.sched.Depth()
	if s.sched.Closed() {
		body.Ready = false
		body.Reason = "scheduler is shutting down"
	}
	if s.opts.Journal != nil {
		h := s.opts.Journal.Health()
		body.Journal = &h
		if body.Ready && h.LastError != "" {
			body.Ready = false
			body.Reason = "journal degraded: " + h.LastError
		}
	}
	status := http.StatusOK
	if !body.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}
