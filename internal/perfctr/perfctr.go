// Package perfctr simulates the Cell blade's hardware performance
// counters: plain monotonic uint64s incremented at the model's existing
// decision points (EIB arbitration, XDR bank access, MFC queue pumps,
// PPE cache fills). The package follows the repo's nil-safe
// observability discipline — every hook method is a no-op on a nil
// receiver, so components hold a possibly-nil counter pointer and a run
// with counters disabled is bit- and allocation-identical to one
// without the subsystem compiled in at all.
//
// Counters are the cheap always-on tier: incrementing a uint64 costs a
// few nanoseconds and never allocates, so the sweep scheduler attaches
// a Counters block to every grid point and rolls the totals into
// SweepResult. Full Perfetto traces (internal/trace) remain the opt-in
// deep tier. Periodic window snapshots ride the engine's daemon events
// (sim.Engine.EveryDaemon), so sampling never extends a run.
package perfctr

import "cellbe/internal/sim"

// Model dimensions mirrored from internal/cell's hardware constants.
// They are repeated here (rather than imported) so the counter block
// stays a leaf package importable from anywhere, including
// internal/journal.
const (
	NumRamps = 12 // EIB on/off ramps (8 SPE + PPE, MIC, 2x BIF/IOIF)
	NumRings = 4  // EIB data rings
	NumSPEs  = 8
	NumBanks = 2 // XDR memory banks

	// RowBytes is the counter model's DRAM row granularity: two
	// accesses RowBytes apart open different rows. It is a
	// counter-only notion — the timing model (internal/xdr) tracks
	// service slots, not rows — chosen to match a 2 KiB XDR page.
	RowBytes = 2048

	// QueueBuckets is the MFC occupancy histogram size: queue depths
	// 0..QueueBuckets-1, with the last bucket absorbing anything
	// deeper. Sized for the hardware's 16-entry MFC queue plus a
	// bucket for depth 16 itself.
	QueueBuckets = 17
)

// EIBCounters counts element-interconnect-bus arbitration outcomes.
// Grants/Denies/Abandons are per source ramp; RingBusy is per data ring.
type EIBCounters struct {
	Grants   [NumRamps]uint64 // transfers granted a ring slot, by source ramp
	Denies   [NumRamps]uint64 // candidate rings denied mid-search (another ring already grants earlier)
	Abandons [NumRamps]uint64 // candidate rings abandoned to an injected ring outage
	RingBusy [NumRings]uint64 // cycles each ring spent carrying data

	LocalGrants uint64 // same-ramp transfers that never touched a ring
	WaitCycles  uint64 // total cycles transfers waited for a ring slot
	Bytes       uint64 // payload bytes moved (local + ring)
	Commands    uint64 // command-phase slots consumed on the address bus
}

// Command counts one command-phase slot.
func (c *EIBCounters) Command() {
	if c == nil {
		return
	}
	c.Commands++
}

// Local counts a same-ramp transfer of n bytes (no ring involved).
func (c *EIBCounters) Local(n int) {
	if c == nil {
		return
	}
	c.LocalGrants++
	c.Bytes += uint64(n)
}

// Grant counts a ring grant from source ramp src on ring r: busy cycles
// of ring occupancy, wait cycles of arbitration delay, n payload bytes.
func (c *EIBCounters) Grant(src, r int, busy, wait uint64, n int) {
	if c == nil {
		return
	}
	c.Grants[src]++
	c.RingBusy[r] += busy
	c.WaitCycles += wait
	c.Bytes += uint64(n)
}

// Deny counts an arbitration pass from ramp src that found no ring.
func (c *EIBCounters) Deny(src int) {
	if c == nil {
		return
	}
	c.Denies[src]++
}

// Abandon counts a request from ramp src dropped by a ramp outage.
func (c *EIBCounters) Abandon(src int) {
	if c == nil {
		return
	}
	c.Abandons[src]++
}

// GrantTotal returns ring grants summed over ramps (excludes LocalGrants).
func (c *EIBCounters) GrantTotal() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for _, g := range c.Grants {
		t += g
	}
	return t
}

// BankCounters counts one XDR bank's row behaviour and refresh stalls.
// The row model is counter-local: the bank remembers the last row
// touched, and an access to a different row is a miss that opens it.
type BankCounters struct {
	RowOpens      uint64 // rows activated (first access + every miss)
	RowHits       uint64 // accesses landing in the open row
	RowMisses     uint64 // accesses forcing a row change
	RefreshStalls uint64 // refresh windows that closed the open row
	ReadBytes     uint64
	WriteBytes    uint64

	lastRow int64
	opened  bool
}

// Access counts an n-byte read or write at bank-relative address addr.
func (c *BankCounters) Access(addr int64, n int, write bool) {
	if c == nil {
		return
	}
	row := addr / RowBytes
	switch {
	case !c.opened:
		c.opened = true
		c.lastRow = row
		c.RowOpens++
		c.RowMisses++
	case row == c.lastRow:
		c.RowHits++
	default:
		c.lastRow = row
		c.RowOpens++
		c.RowMisses++
	}
	if write {
		c.WriteBytes += uint64(n)
	} else {
		c.ReadBytes += uint64(n)
	}
}

// Refresh counts a refresh window, which closes the open row: the next
// access misses regardless of its address, as on hardware.
func (c *BankCounters) Refresh() {
	if c == nil {
		return
	}
	c.RefreshStalls++
	c.opened = false
}

// Bytes returns the bank's total traffic.
func (c *BankCounters) Bytes() uint64 {
	if c == nil {
		return 0
	}
	return c.ReadBytes + c.WriteBytes
}

// MFCCounters counts one SPE's memory-flow-controller queue behaviour.
type MFCCounters struct {
	Occupancy [QueueBuckets]uint64 // enqueue-time queue depth histogram
	Retries   uint64               // command-bus retries (fault injection)
}

// SampleQueue records the queue depth observed at an enqueue.
func (c *MFCCounters) SampleQueue(depth int) {
	if c == nil {
		return
	}
	if depth < 0 {
		depth = 0
	}
	if depth >= QueueBuckets {
		depth = QueueBuckets - 1
	}
	c.Occupancy[depth]++
}

// Retry counts one command-bus retry.
func (c *MFCCounters) Retry() {
	if c == nil {
		return
	}
	c.Retries++
}

// PPECounters counts PPE-side cache events.
type PPECounters struct {
	MissQStalls   uint64 // demand loads that stalled on the L2 miss queue
	Fills         uint64 // L2 miss fills issued to memory (demand and prefetch)
	PrefetchFills uint64 // the subset of fills issued by the prefetch engine
}

// MissQStall counts a demand load stalled behind the miss queue.
func (c *PPECounters) MissQStall() {
	if c == nil {
		return
	}
	c.MissQStalls++
}

// Fill counts an L2 miss fill fetched from memory.
func (c *PPECounters) Fill() {
	if c == nil {
		return
	}
	c.Fills++
}

// PrefetchFill counts a prefetch fill fetched from memory.
func (c *PPECounters) PrefetchFill() {
	if c == nil {
		return
	}
	c.PrefetchFills++
}

// Counters is one system's full counter block. The zero value is ready
// to use; components receive pointers into it via cell.System.SetPerf.
type Counters struct {
	EIB EIBCounters
	XDR [NumBanks]BankCounters
	MFC [NumSPEs]MFCCounters
	PPE PPECounters
}

// Rollup is the flat, JSON-serializable summary of a Counters block:
// the per-ramp/per-ring/per-bucket detail collapsed to totals that can
// ride in a SweepResult, a journal point record, or a /metrics gauge.
type Rollup struct {
	EIBBytes      uint64 `json:"eib_bytes,omitempty"`
	EIBGrants     uint64 `json:"eib_grants,omitempty"`
	EIBLocal      uint64 `json:"eib_local,omitempty"`
	EIBDenies     uint64 `json:"eib_denies,omitempty"`
	EIBAbandons   uint64 `json:"eib_abandons,omitempty"`
	EIBBusyCycles uint64 `json:"eib_busy_cycles,omitempty"`
	EIBWaitCycles uint64 `json:"eib_wait_cycles,omitempty"`
	EIBCommands   uint64 `json:"eib_commands,omitempty"`

	// Per-ramp and per-ring EIB detail, preserved from the counter block
	// rather than collapsed into the totals above: grants/denies/abandons
	// by source ramp, busy cycles by data ring. The totals remain the sums
	// of these, so existing consumers are unchanged.
	EIBRampGrants   [NumRamps]uint64 `json:"eib_ramp_grants"`
	EIBRampDenies   [NumRamps]uint64 `json:"eib_ramp_denies"`
	EIBRampAbandons [NumRamps]uint64 `json:"eib_ramp_abandons"`
	EIBRingBusy     [NumRings]uint64 `json:"eib_ring_busy"`

	XDRBytes     [NumBanks]uint64 `json:"xdr_bytes"`
	XDRRowHits   [NumBanks]uint64 `json:"xdr_row_hits"`
	XDRRowMisses [NumBanks]uint64 `json:"xdr_row_misses"`
	XDRRefreshes [NumBanks]uint64 `json:"xdr_refreshes"`

	MFCRetries uint64 `json:"mfc_retries,omitempty"`
	// MFCOccSamples is each SPE's enqueue-time queue-depth histogram (the
	// counter block's Occupancy). MFCOccCycles is the time-weighted
	// variant the MFC itself accumulates — simulated cycles spent at each
	// SPU-queue depth — folded in at harvest (see AddOccupancy); depths
	// beyond the last bucket clamp into it.
	MFCOccSamples [NumSPEs][QueueBuckets]uint64 `json:"mfc_occ_samples"`
	MFCOccCycles  [NumSPEs][QueueBuckets]uint64 `json:"mfc_occ_cycles"`

	PPEMissQStalls   uint64 `json:"ppe_missq_stalls,omitempty"`
	PPEFills         uint64 `json:"ppe_fills,omitempty"`
	PPEPrefetchFills uint64 `json:"ppe_prefetch_fills,omitempty"`
}

// Rollup collapses the counter block to its serializable summary. A nil
// receiver returns the zero Rollup.
func (c *Counters) Rollup() Rollup {
	var r Rollup
	if c == nil {
		return r
	}
	r.EIBBytes = c.EIB.Bytes
	r.EIBGrants = c.EIB.GrantTotal()
	r.EIBLocal = c.EIB.LocalGrants
	r.EIBWaitCycles = c.EIB.WaitCycles
	r.EIBCommands = c.EIB.Commands
	r.EIBRampGrants = c.EIB.Grants
	r.EIBRampDenies = c.EIB.Denies
	r.EIBRampAbandons = c.EIB.Abandons
	r.EIBRingBusy = c.EIB.RingBusy
	for _, d := range c.EIB.Denies {
		r.EIBDenies += d
	}
	for _, a := range c.EIB.Abandons {
		r.EIBAbandons += a
	}
	for _, b := range c.EIB.RingBusy {
		r.EIBBusyCycles += b
	}
	for i := range c.XDR {
		r.XDRBytes[i] = c.XDR[i].Bytes()
		r.XDRRowHits[i] = c.XDR[i].RowHits
		r.XDRRowMisses[i] = c.XDR[i].RowMisses
		r.XDRRefreshes[i] = c.XDR[i].RefreshStalls
	}
	for i := range c.MFC {
		r.MFCRetries += c.MFC[i].Retries
		r.MFCOccSamples[i] = c.MFC[i].Occupancy
	}
	r.PPEMissQStalls = c.PPE.MissQStalls
	r.PPEFills = c.PPE.Fills
	r.PPEPrefetchFills = c.PPE.PrefetchFills
	return r
}

// Add accumulates other into r, field by field (for per-job and
// per-scheduler aggregation of point rollups).
func (r *Rollup) Add(other Rollup) {
	r.EIBBytes += other.EIBBytes
	r.EIBGrants += other.EIBGrants
	r.EIBLocal += other.EIBLocal
	r.EIBDenies += other.EIBDenies
	r.EIBAbandons += other.EIBAbandons
	r.EIBBusyCycles += other.EIBBusyCycles
	r.EIBWaitCycles += other.EIBWaitCycles
	r.EIBCommands += other.EIBCommands
	for i := range r.XDRBytes {
		r.XDRBytes[i] += other.XDRBytes[i]
		r.XDRRowHits[i] += other.XDRRowHits[i]
		r.XDRRowMisses[i] += other.XDRRowMisses[i]
		r.XDRRefreshes[i] += other.XDRRefreshes[i]
	}
	for i := range r.EIBRampGrants {
		r.EIBRampGrants[i] += other.EIBRampGrants[i]
		r.EIBRampDenies[i] += other.EIBRampDenies[i]
		r.EIBRampAbandons[i] += other.EIBRampAbandons[i]
	}
	for i := range r.EIBRingBusy {
		r.EIBRingBusy[i] += other.EIBRingBusy[i]
	}
	r.MFCRetries += other.MFCRetries
	for i := range r.MFCOccSamples {
		for d := range r.MFCOccSamples[i] {
			r.MFCOccSamples[i][d] += other.MFCOccSamples[i][d]
			r.MFCOccCycles[i][d] += other.MFCOccCycles[i][d]
		}
	}
	r.PPEMissQStalls += other.PPEMissQStalls
	r.PPEFills += other.PPEFills
	r.PPEPrefetchFills += other.PPEPrefetchFills
}

// AddOccupancy folds one SPE's time-weighted SPU-queue histogram — hist[n]
// is the simulated cycles the queue spent holding exactly n commands, as
// mfc.OccupancyHist reports it — into the rollup, clamping depths beyond
// the last bucket. The sweep harvest calls this per SPE after a run, since
// the time-weighted view lives on the MFC, not in the counter block.
func (r *Rollup) AddOccupancy(spe int, hist []sim.Time) {
	if spe < 0 || spe >= NumSPEs {
		return
	}
	for d, cycles := range hist {
		b := d
		if b >= QueueBuckets {
			b = QueueBuckets - 1
		}
		r.MFCOccCycles[spe][b] += uint64(cycles)
	}
}

// XDRBytesTotal returns traffic summed over banks.
func (r Rollup) XDRBytesTotal() uint64 {
	var t uint64
	for _, b := range r.XDRBytes {
		t += b
	}
	return t
}

// Snapshot is one windowed sample of the byte counters.
type Snapshot struct {
	Cycle    sim.Time
	EIBBytes uint64
	XDRBytes [NumBanks]uint64
}

// Windows holds periodic counter snapshots taken by a daemon sampler.
// Snaps[0] is the arm-time baseline; each later entry is one interval
// on. The final partial interval goes unsampled (daemon events never
// extend a run), which is exactly the timing-window subtlety the
// report-layer cross-check exists to police.
type Windows struct {
	Interval sim.Time
	Snaps    []Snapshot
}

// StartWindows arms periodic snapshots of c on eng, every interval
// cycles, returning the accumulating window set. The first entry is
// recorded immediately as the baseline. Panics on a non-positive
// interval (via sim.Engine.EveryDaemon).
func (c *Counters) StartWindows(eng *sim.Engine, interval sim.Time) *Windows {
	w := &Windows{Interval: interval}
	snap := func() {
		s := Snapshot{Cycle: eng.Now(), EIBBytes: c.EIB.Bytes}
		for i := range c.XDR {
			s.XDRBytes[i] = c.XDR[i].Bytes()
		}
		w.Snaps = append(w.Snaps, s)
	}
	snap()
	eng.EveryDaemon(interval, snap)
	return w
}
