package perfctr

// FFAddScaled advances every counter by k times its (current - base)
// delta: the fast-forward commit path, which extrapolates one observed
// steady-state period across the k repetitions it skips. base is the
// snapshot taken at the matched earlier anchor. The XDR banks' private
// row-phase fields (lastRow/opened) are not counters and are left alone;
// the controller only jumps while the banks are untouched, so their
// deltas are zero anyway.
func (c *Counters) FFAddScaled(base *Counters, k uint64) {
	if c == nil {
		return
	}
	e, be := &c.EIB, &base.EIB
	for i := range e.Grants {
		e.Grants[i] += k * (e.Grants[i] - be.Grants[i])
		e.Denies[i] += k * (e.Denies[i] - be.Denies[i])
		e.Abandons[i] += k * (e.Abandons[i] - be.Abandons[i])
	}
	for i := range e.RingBusy {
		e.RingBusy[i] += k * (e.RingBusy[i] - be.RingBusy[i])
	}
	e.LocalGrants += k * (e.LocalGrants - be.LocalGrants)
	e.WaitCycles += k * (e.WaitCycles - be.WaitCycles)
	e.Bytes += k * (e.Bytes - be.Bytes)
	e.Commands += k * (e.Commands - be.Commands)
	for i := range c.XDR {
		x, bx := &c.XDR[i], &base.XDR[i]
		x.RowOpens += k * (x.RowOpens - bx.RowOpens)
		x.RowHits += k * (x.RowHits - bx.RowHits)
		x.RowMisses += k * (x.RowMisses - bx.RowMisses)
		x.RefreshStalls += k * (x.RefreshStalls - bx.RefreshStalls)
		x.ReadBytes += k * (x.ReadBytes - bx.ReadBytes)
		x.WriteBytes += k * (x.WriteBytes - bx.WriteBytes)
	}
	for i := range c.MFC {
		m, bm := &c.MFC[i], &base.MFC[i]
		for b := range m.Occupancy {
			m.Occupancy[b] += k * (m.Occupancy[b] - bm.Occupancy[b])
		}
		m.Retries += k * (m.Retries - bm.Retries)
	}
	c.PPE.MissQStalls += k * (c.PPE.MissQStalls - base.PPE.MissQStalls)
	c.PPE.Fills += k * (c.PPE.Fills - base.PPE.Fills)
	c.PPE.PrefetchFills += k * (c.PPE.PrefetchFills - base.PPE.PrefetchFills)
}
