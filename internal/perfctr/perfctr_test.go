package perfctr

import (
	"encoding/json"
	"testing"

	"cellbe/internal/sim"
)

// TestNilSafety exercises every hook on a nil receiver: the nil-safe
// observability discipline says a component holding a nil counter
// pointer must be able to call through it freely.
func TestNilSafety(t *testing.T) {
	var e *EIBCounters
	e.Command()
	e.Local(64)
	e.Grant(0, 0, 1, 2, 64)
	e.Deny(3)
	e.Abandon(4)
	if e.GrantTotal() != 0 {
		t.Error("nil GrantTotal != 0")
	}
	var b *BankCounters
	b.Access(0, 64, false)
	b.Refresh()
	if b.Bytes() != 0 {
		t.Error("nil Bytes != 0")
	}
	var m *MFCCounters
	m.SampleQueue(3)
	m.Retry()
	var p *PPECounters
	p.MissQStall()
	p.Fill()
	p.PrefetchFill()
	var c *Counters
	if got := c.Rollup(); got != (Rollup{}) {
		t.Errorf("nil Counters.Rollup() = %+v, want zero", got)
	}
}

// TestBankRowModel pins the counter-local row semantics: first touch
// opens (and misses), same-row accesses hit, row changes miss, and a
// refresh closes the open row so the next access misses even in-row.
func TestBankRowModel(t *testing.T) {
	var b BankCounters
	b.Access(0, 64, false)            // open row 0: miss
	b.Access(RowBytes-64, 64, false)  // same row: hit
	b.Access(RowBytes, 64, true)      // row 1: miss
	b.Access(RowBytes+128, 64, true)  // still row 1: hit
	b.Refresh()                       // closes row 1
	b.Access(RowBytes+256, 64, false) // row 1 again, but closed: miss
	if b.RowOpens != 3 || b.RowMisses != 3 || b.RowHits != 2 || b.RefreshStalls != 1 {
		t.Errorf("opens=%d misses=%d hits=%d refreshes=%d, want 3/3/2/1",
			b.RowOpens, b.RowMisses, b.RowHits, b.RefreshStalls)
	}
	if b.ReadBytes != 192 || b.WriteBytes != 128 {
		t.Errorf("read=%d write=%d, want 192/128", b.ReadBytes, b.WriteBytes)
	}
	if b.Bytes() != 320 {
		t.Errorf("Bytes() = %d, want 320", b.Bytes())
	}
}

// TestQueueHistogramClamp pins the occupancy histogram's bucket edges.
func TestQueueHistogramClamp(t *testing.T) {
	var m MFCCounters
	m.SampleQueue(-5)               // clamps to bucket 0
	m.SampleQueue(0)                // bucket 0
	m.SampleQueue(QueueBuckets - 1) // last bucket, exactly
	m.SampleQueue(1000)             // clamps to last bucket
	if m.Occupancy[0] != 2 {
		t.Errorf("bucket 0 = %d, want 2", m.Occupancy[0])
	}
	if m.Occupancy[QueueBuckets-1] != 2 {
		t.Errorf("last bucket = %d, want 2", m.Occupancy[QueueBuckets-1])
	}
}

// TestRollupAndAdd checks the collapse from the full counter block to
// the flat rollup, and that Add is field-complete (a missed field here
// silently drops a series from every aggregated /metrics view).
func TestRollupAndAdd(t *testing.T) {
	var c Counters
	c.EIB.Command()
	c.EIB.Local(100)
	c.EIB.Grant(2, 1, 10, 5, 400)
	c.EIB.Deny(2)
	c.EIB.Abandon(7)
	c.XDR[0].Access(0, 64, false)
	c.XDR[1].Access(0, 32, true)
	c.XDR[1].Refresh()
	c.MFC[0].SampleQueue(1)
	c.MFC[3].Retry()
	c.PPE.MissQStall()
	c.PPE.Fill()
	c.PPE.PrefetchFill()

	r := c.Rollup()
	want := Rollup{
		EIBBytes: 500, EIBGrants: 1, EIBLocal: 1, EIBDenies: 1, EIBAbandons: 1,
		EIBBusyCycles: 10, EIBWaitCycles: 5, EIBCommands: 1,
		XDRBytes:       [NumBanks]uint64{64, 32},
		XDRRowHits:     [NumBanks]uint64{0, 0},
		XDRRowMisses:   [NumBanks]uint64{1, 1},
		XDRRefreshes:   [NumBanks]uint64{0, 1},
		MFCRetries:     1,
		PPEMissQStalls: 1, PPEFills: 1, PPEPrefetchFills: 1,
	}
	want.EIBRampGrants[2] = 1
	want.EIBRampDenies[2] = 1
	want.EIBRampAbandons[7] = 1
	want.EIBRingBusy[1] = 10
	want.MFCOccSamples[0][1] = 1
	if r != want {
		t.Errorf("Rollup() = %+v, want %+v", r, want)
	}
	if r.XDRBytesTotal() != 96 {
		t.Errorf("XDRBytesTotal = %d, want 96", r.XDRBytesTotal())
	}

	var sum Rollup
	sum.Add(r)
	sum.Add(r)
	if sum.EIBBytes != 1000 || sum.XDRBytes[1] != 64 || sum.MFCRetries != 2 || sum.PPEPrefetchFills != 2 {
		t.Errorf("Add not field-complete: %+v", sum)
	}
	if sum.EIBRampGrants[2] != 2 || sum.EIBRingBusy[1] != 20 || sum.MFCOccSamples[0][1] != 2 {
		t.Errorf("Add dropped per-ramp/per-SPE detail: %+v", sum)
	}
}

// TestAddOccupancy pins the time-weighted histogram fold: cycles land in
// the right (spe, depth) cell, depths beyond the last bucket clamp into
// it, and out-of-range SPE indices are ignored.
func TestAddOccupancy(t *testing.T) {
	var r Rollup
	hist := make([]sim.Time, QueueBuckets+3)
	hist[0] = 100
	hist[2] = 40
	hist[QueueBuckets+2] = 7 // deeper than the histogram: clamps to last bucket
	r.AddOccupancy(3, hist)
	r.AddOccupancy(3, hist)
	r.AddOccupancy(-1, hist)      // ignored
	r.AddOccupancy(NumSPEs, hist) // ignored
	if r.MFCOccCycles[3][0] != 200 || r.MFCOccCycles[3][2] != 80 {
		t.Errorf("cycles misfolded: %v", r.MFCOccCycles[3])
	}
	if r.MFCOccCycles[3][QueueBuckets-1] != 14 {
		t.Errorf("deep bucket = %d, want 14 (clamped)", r.MFCOccCycles[3][QueueBuckets-1])
	}
	for spe := range r.MFCOccCycles {
		if spe != 3 {
			for d, v := range r.MFCOccCycles[spe] {
				if v != 0 {
					t.Fatalf("spe %d depth %d unexpectedly %d", spe, d, v)
				}
			}
		}
	}
}

// TestRollupJSONRoundTrip guards the journal wire format: a rollup must
// survive encode/decode unchanged (it rides in PointRecord).
func TestRollupJSONRoundTrip(t *testing.T) {
	r := Rollup{EIBBytes: 7, XDRBytes: [NumBanks]uint64{1, 2}, PPEFills: 3}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Rollup
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip changed rollup: %+v -> %+v", r, back)
	}
}

// TestStartWindows checks the daemon sampler: snapshots land every
// interval while real work remains, the arm-time baseline is Snaps[0],
// and sampling never extends the run past the last real event.
func TestStartWindows(t *testing.T) {
	eng := sim.NewEngine()
	var c Counters
	// A process that moves 100 bytes every 10 cycles, 10 times: last
	// real event at cycle 100.
	step := 0
	var proc func()
	proc = func() {
		c.EIB.Local(100)
		step++
		if step < 10 {
			eng.At(eng.Now()+10, proc)
		}
	}
	eng.At(10, proc)
	w := c.StartWindows(eng, 25)
	eng.Run()
	if got := eng.Now(); got != 100 {
		t.Fatalf("engine ended at %d, want 100 (sampler extended the run)", got)
	}
	if len(w.Snaps) < 2 {
		t.Fatalf("got %d snapshots, want baseline + periodic samples", len(w.Snaps))
	}
	if w.Snaps[0].Cycle != 0 || w.Snaps[0].EIBBytes != 0 {
		t.Errorf("baseline snapshot = %+v, want cycle 0 / 0 bytes", w.Snaps[0])
	}
	for i := 1; i < len(w.Snaps); i++ {
		if w.Snaps[i].Cycle != w.Snaps[i-1].Cycle+25 {
			t.Errorf("snapshot %d at cycle %d, want %d", i, w.Snaps[i].Cycle, w.Snaps[i-1].Cycle+25)
		}
		if w.Snaps[i].EIBBytes < w.Snaps[i-1].EIBBytes {
			t.Errorf("snapshot %d bytes decreased", i)
		}
	}
	last := w.Snaps[len(w.Snaps)-1]
	if last.Cycle > 100 {
		t.Errorf("snapshot past the last real event at cycle %d", last.Cycle)
	}
}

// TestStartWindowsBadInterval pins the contract that a non-positive
// sampling interval panics (via sim.Engine.EveryDaemon) instead of
// silently spinning.
func TestStartWindowsBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StartWindows(0) did not panic")
		}
	}()
	var c Counters
	c.StartWindows(sim.NewEngine(), 0)
}
