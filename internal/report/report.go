// Package report renders experiment results as text tables, CSV, and
// simple ASCII charts, for the cellbench CLI and the EXPERIMENTS.md
// record.
package report

import (
	"fmt"
	"io"
	"strings"

	"cellbe/internal/core"
	"cellbe/internal/stats"
	"cellbe/internal/trace"
)

// csvField quotes a free-text CSV field per RFC 4180 when it contains a
// separator, quote or newline; clean fields pass through unchanged so
// the common output stays byte-identical.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// TimeseriesCSV writes a metrics-sampler timeseries (cellsim/cellbench
// -metrics) as CSV: the header row names the columns ("cycle" first), then
// one row per sampling tick. Cycle counts print as integers, metric values
// with four decimals.
func TimeseriesCSV(w io.Writer, ts *trace.Timeseries) error {
	cols := make([]string, len(ts.Columns))
	for i, c := range ts.Columns {
		cols[i] = csvField(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range ts.Rows {
		var b strings.Builder
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if i == 0 {
				fmt.Fprintf(&b, "%d", int64(v))
			} else {
				fmt.Fprintf(&b, "%.4f", v)
			}
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Table writes r as an aligned text table: one row per x value, one
// column group (avg) per curve.
func Table(w io.Writer, r *core.Result, full bool) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", r.Name, r.Title); err != nil {
		return err
	}
	headers := []string{r.XLabel}
	for _, c := range r.Curves {
		if full {
			headers = append(headers, c.Label+" min", c.Label+" max", c.Label+" med", c.Label+" avg")
		} else {
			headers = append(headers, c.Label)
		}
	}
	rows := [][]string{headers}
	for _, x := range xAxis(r) {
		row := []string{fmt.Sprintf("%d", x)}
		for _, c := range r.Curves {
			s, ok := pointAt(&c, x)
			if !ok {
				if full {
					row = append(row, "-", "-", "-", "-")
				} else {
					row = append(row, "-")
				}
				continue
			}
			if full {
				row = append(row,
					fmt.Sprintf("%.2f", s.Min), fmt.Sprintf("%.2f", s.Max),
					fmt.Sprintf("%.2f", s.Median), fmt.Sprintf("%.2f", s.Mean))
			} else {
				row = append(row, fmt.Sprintf("%.2f", s.Mean))
			}
		}
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}

// CSV writes r as comma-separated values with min/max/median/avg columns.
func CSV(w io.Writer, r *core.Result) error {
	if _, err := fmt.Fprintf(w, "experiment,curve,x,min,max,median,avg,stddev,n\n"); err != nil {
		return err
	}
	for _, c := range r.Curves {
		for _, p := range c.Points {
			s := p.Summary
			_, err := fmt.Fprintf(w, "%s,%s,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%d\n",
				csvField(r.Name), csvField(c.Label), p.X, s.Min, s.Max, s.Median, s.Mean, s.Stddev, s.N)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Chart writes a crude ASCII bar chart of the curves' averages, one block
// per curve — enough to eyeball the shape against the paper's figures.
func Chart(w io.Writer, r *core.Result, width int) error {
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, c := range r.Curves {
		for _, p := range c.Points {
			if p.Summary.Mean > max {
				max = p.Summary.Mean
			}
		}
	}
	if max == 0 {
		max = 1
	}
	if _, err := fmt.Fprintf(w, "# %s (GB/s, full scale = %.1f)\n", r.Title, max); err != nil {
		return err
	}
	for _, c := range r.Curves {
		if _, err := fmt.Fprintf(w, "%s\n", c.Label); err != nil {
			return err
		}
		for _, p := range c.Points {
			n := int(p.Summary.Mean / max * float64(width))
			if _, err := fmt.Fprintf(w, "  %7d | %-*s %7.2f\n", p.X, width, strings.Repeat("#", n), p.Summary.Mean); err != nil {
				return err
			}
		}
	}
	return nil
}

// xAxis collects the union of x values over all curves, in first-seen
// order (curves share the axis in practice).
func xAxis(r *core.Result) []int {
	var xs []int
	seen := map[int]bool{}
	for _, c := range r.Curves {
		for _, p := range c.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	return xs
}

func pointAt(c *core.Curve, x int) (stats.Summary, bool) {
	for _, p := range c.Points {
		if p.X == x {
			return p.Summary, true
		}
	}
	return stats.Summary{}, false
}

func writeAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}
