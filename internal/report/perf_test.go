package report

import (
	"strings"
	"testing"

	"cellbe/internal/perfctr"
)

// TestBuildPerfExactAgreement: when the counter bytes and the
// application figure describe the same bytes over the same window, the
// derived bandwidths are identical and the check passes with delta 0.
func TestBuildPerfExactAgreement(t *testing.T) {
	// 2 GB over 1e9 cycles at 2 GHz = 4 GB/s both ways.
	ru := perfctr.Rollup{EIBBytes: 2 << 30}
	rep := BuildPerf(PerfInput{
		Rollup:    ru,
		ClockGHz:  2,
		AppGBps:   float64(ru.EIBBytes) * 2 / 1e9,
		AppCycles: 1e9,
	})
	if len(rep.Checks) != 1 || rep.Checks[0].Name != "eib" {
		t.Fatalf("checks = %+v, want one eib check", rep.Checks)
	}
	if !rep.OK() || rep.Checks[0].Delta != 0 {
		t.Errorf("exact agreement failed: %+v", rep.Checks[0])
	}
	if rep.Tolerance != PerfTolerance {
		t.Errorf("tolerance = %v, want default %v", rep.Tolerance, PerfTolerance)
	}
}

// TestBuildPerfXDRCheckGating: the xdr check appears only when the
// counters saw main-memory traffic.
func TestBuildPerfXDRCheckGating(t *testing.T) {
	in := PerfInput{Rollup: perfctr.Rollup{EIBBytes: 1000}, ClockGHz: 2, AppGBps: 2e-6, AppCycles: 1000}
	if rep := BuildPerf(in); len(rep.Checks) != 1 {
		t.Errorf("no XDR traffic: %d checks, want 1", len(rep.Checks))
	}
	in.Rollup.XDRBytes[0] = 1000
	if rep := BuildPerf(in); len(rep.Checks) != 2 || rep.Checks[1].Name != "xdr" {
		t.Errorf("with XDR traffic: checks %+v, want eib + xdr", BuildPerf(in).Checks)
	}
}

// TestBuildPerfWindowMismatch reproduces the counter-window pitfall at
// the unit level: same bytes, but the counter bandwidth derived over a
// 9% longer window than the application measured. The check must fail.
func TestBuildPerfWindowMismatch(t *testing.T) {
	ru := perfctr.Rollup{EIBBytes: 1 << 30}
	appCycles := int64(1e8)
	rep := BuildPerf(PerfInput{
		Rollup:       ru,
		ClockGHz:     2,
		AppGBps:      float64(ru.EIBBytes) * 2 / float64(appCycles),
		AppCycles:    1e8,
		WindowCycles: 109_000_000,
	})
	if rep.OK() {
		t.Fatalf("9%% window skew passed the cross-check: %+v", rep.Checks)
	}
	d := rep.Checks[0].Delta
	if d < 0.07 || d > 0.10 {
		t.Errorf("delta = %.4f, want ~0.083 (1 - 100/109)", d)
	}
}

// TestBuildPerfAppSilent: counters saw traffic but the application
// measured nothing — that is a methodology bug, not a pass.
func TestBuildPerfAppSilent(t *testing.T) {
	rep := BuildPerf(PerfInput{Rollup: perfctr.Rollup{EIBBytes: 4096}, ClockGHz: 2, AppGBps: 0, AppCycles: 1000})
	if rep.OK() {
		t.Error("counters-vs-silent-app passed")
	}
}

// TestBuildPerfToleranceOverride: a caller-supplied tolerance replaces
// the default.
func TestBuildPerfToleranceOverride(t *testing.T) {
	ru := perfctr.Rollup{EIBBytes: 1 << 20}
	app := float64(ru.EIBBytes) * 2 / 1e6
	rep := BuildPerf(PerfInput{Rollup: ru, ClockGHz: 2, AppGBps: app * 1.05, AppCycles: 1e6, Tolerance: 0.10})
	if !rep.OK() {
		t.Errorf("5%% delta under a 10%% tolerance failed: %+v", rep.Checks)
	}
}

// TestBuildPerfWindowTimeline: consecutive snapshots become per-window
// bandwidth entries.
func TestBuildPerfWindowTimeline(t *testing.T) {
	w := &perfctr.Windows{Interval: 100, Snaps: []perfctr.Snapshot{
		{Cycle: 0, EIBBytes: 0},
		{Cycle: 100, EIBBytes: 200},
		{Cycle: 200, EIBBytes: 200}, // idle window
		{Cycle: 300, EIBBytes: 600},
	}}
	rep := BuildPerf(PerfInput{Rollup: perfctr.Rollup{EIBBytes: 600}, Windows: w,
		ClockGHz: 1, AppGBps: 2, AppCycles: 300})
	want := []float64{2, 0, 4}
	if len(rep.WindowGBps) != len(want) {
		t.Fatalf("got %d windows, want %d", len(rep.WindowGBps), len(want))
	}
	for i := range want {
		if rep.WindowGBps[i] != want[i] {
			t.Errorf("window %d = %v, want %v", i, rep.WindowGBps[i], want[i])
		}
	}
}

// TestPerfReportWrite smoke-tests the rendered report: counter totals,
// the window timeline and a verdict line per check.
func TestPerfReportWrite(t *testing.T) {
	ru := perfctr.Rollup{EIBBytes: 1 << 20, EIBGrants: 256}
	ru.XDRBytes[0] = 4096
	rep := BuildPerf(PerfInput{
		Rollup:   ru,
		Windows:  &perfctr.Windows{Interval: 500, Snaps: []perfctr.Snapshot{{Cycle: 0}, {Cycle: 500, EIBBytes: 1 << 19}}},
		ClockGHz: 2, AppGBps: float64(ru.EIBBytes) * 2 / 1e6, AppCycles: 1e6,
	})
	var b strings.Builder
	if err := rep.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"eib.bytes", "xdr.bank0.bytes", "EIB GB/s per window", "cross-check", "eib ", "xdr "} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
