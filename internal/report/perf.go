package report

import (
	"fmt"
	"io"

	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
)

// PerfTolerance is the documented agreement bound between counter-derived
// and application-measured bandwidth: the relative delta must stay below
// 2%. On the four canonical scenarios the two derivations share both the
// byte count and the cycle window, so they agree exactly; the tolerance
// exists to catch the methodology bugs that break that identity — above
// all deriving over a window that is not the application's measurement
// window (SNIPPETS.md snippet 3's counter-vs-test-duration pitfall, a
// silent ~9% skew on real hardware).
const PerfTolerance = 0.02

// PerfInput is everything BuildPerf needs: the counter rollup, the
// application-side measurement to validate against, and the windowing.
type PerfInput struct {
	Rollup  perfctr.Rollup
	Windows *perfctr.Windows // optional: per-window EIB bandwidth timeline

	ClockGHz float64
	// AppGBps/AppCycles are the application-measured bandwidth and the
	// cycle window it was measured over (bytes moved / elapsed cycles,
	// as every scenario reports).
	AppGBps   float64
	AppCycles sim.Time
	// WindowCycles is the window the counter bandwidth is derived over.
	// Zero means AppCycles — the windowing rule: counters must be read
	// over the application's own measurement window, or the cross-check
	// is comparing different experiments. A deliberate mismatch here is
	// how the validator's regression test reproduces snippet 3's bug.
	WindowCycles sim.Time
	// Tolerance overrides PerfTolerance when positive.
	Tolerance float64
}

// PerfCheck is one counter-vs-application bandwidth comparison.
type PerfCheck struct {
	Name        string
	CounterGBps float64
	AppGBps     float64
	Delta       float64 // |counter - app| / app (app == 0: 0 or +Inf)
	OK          bool
}

// PerfReport is the derived-bandwidth report: counter totals, the
// cross-validation checks, and an optional windowed EIB timeline.
type PerfReport struct {
	Rollup    perfctr.Rollup
	ClockGHz  float64
	Window    sim.Time
	Tolerance float64
	Checks    []PerfCheck

	// WindowGBps is the EIB bandwidth of each sampled window (empty
	// without Windows input).
	WindowGBps []float64
}

// OK reports whether every cross-check passed.
func (r *PerfReport) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// gbps converts a byte count over a cycle window at clk GHz.
func gbps(bytes uint64, cycles sim.Time, clk float64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(bytes) * clk / float64(cycles)
}

// BuildPerf derives bandwidth from the counter rollup and cross-validates
// it against the application measurement. The EIB check always runs; the
// XDR check runs only when the counters saw main-memory traffic (pure
// SPE-to-SPE scenarios never touch the banks, so an XDR comparison there
// would validate 0 against 0).
func BuildPerf(in PerfInput) *PerfReport {
	tol := in.Tolerance
	if tol <= 0 {
		tol = PerfTolerance
	}
	win := in.WindowCycles
	if win <= 0 {
		win = in.AppCycles
	}
	r := &PerfReport{Rollup: in.Rollup, ClockGHz: in.ClockGHz, Window: win, Tolerance: tol}

	check := func(name string, counter float64) {
		c := PerfCheck{Name: name, CounterGBps: counter, AppGBps: in.AppGBps}
		switch {
		case in.AppGBps > 0:
			c.Delta = counter/in.AppGBps - 1
			if c.Delta < 0 {
				c.Delta = -c.Delta
			}
		case counter > 0:
			c.Delta = 1 // app measured nothing, counters saw traffic
		}
		c.OK = c.Delta <= tol
		r.Checks = append(r.Checks, c)
	}

	check("eib", gbps(in.Rollup.EIBBytes, win, in.ClockGHz))
	if xb := in.Rollup.XDRBytesTotal(); xb > 0 {
		check("xdr", gbps(xb, win, in.ClockGHz))
	}

	if in.Windows != nil {
		snaps := in.Windows.Snaps
		for i := 1; i < len(snaps); i++ {
			cyc := snaps[i].Cycle - snaps[i-1].Cycle
			r.WindowGBps = append(r.WindowGBps, gbps(snaps[i].EIBBytes-snaps[i-1].EIBBytes, cyc, in.ClockGHz))
		}
	}
	return r
}

// Write renders the counter report: totals, the per-window EIB timeline
// when sampled, and one line per cross-check.
func (r *PerfReport) Write(w io.Writer) error {
	ru := &r.Rollup
	rows := [][]string{
		{"counter", "value"},
		{"eib.bytes", fmt.Sprintf("%d", ru.EIBBytes)},
		{"eib.grants", fmt.Sprintf("%d", ru.EIBGrants)},
		{"eib.local_grants", fmt.Sprintf("%d", ru.EIBLocal)},
		{"eib.denies", fmt.Sprintf("%d", ru.EIBDenies)},
		{"eib.abandons", fmt.Sprintf("%d", ru.EIBAbandons)},
		{"eib.busy_cycles", fmt.Sprintf("%d", ru.EIBBusyCycles)},
		{"eib.wait_cycles", fmt.Sprintf("%d", ru.EIBWaitCycles)},
		{"eib.commands", fmt.Sprintf("%d", ru.EIBCommands)},
	}
	for i := range ru.XDRBytes {
		pfx := fmt.Sprintf("xdr.bank%d", i)
		rows = append(rows,
			[]string{pfx + ".bytes", fmt.Sprintf("%d", ru.XDRBytes[i])},
			[]string{pfx + ".row_hits", fmt.Sprintf("%d", ru.XDRRowHits[i])},
			[]string{pfx + ".row_misses", fmt.Sprintf("%d", ru.XDRRowMisses[i])},
			[]string{pfx + ".refreshes", fmt.Sprintf("%d", ru.XDRRefreshes[i])},
		)
	}
	rows = append(rows,
		[]string{"mfc.retries", fmt.Sprintf("%d", ru.MFCRetries)},
		[]string{"ppe.missq_stalls", fmt.Sprintf("%d", ru.PPEMissQStalls)},
		[]string{"ppe.fills", fmt.Sprintf("%d", ru.PPEFills)},
		[]string{"ppe.prefetch_fills", fmt.Sprintf("%d", ru.PPEPrefetchFills)},
	)
	if err := writeAligned(w, rows); err != nil {
		return err
	}
	if len(r.WindowGBps) > 0 {
		if _, err := fmt.Fprintf(w, "\nEIB GB/s per window:\n"); err != nil {
			return err
		}
		for i, g := range r.WindowGBps {
			if _, err := fmt.Fprintf(w, "  w%-3d %7.3f\n", i, g); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "\ncross-check (window %d cycles, tolerance %.1f%%):\n", r.Window, r.Tolerance*100); err != nil {
		return err
	}
	for _, c := range r.Checks {
		verdict := "OK"
		if !c.OK {
			verdict = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "  %-4s counters %7.3f GB/s  app %7.3f GB/s  delta %6.2f%%  %s\n",
			c.Name, c.CounterGBps, c.AppGBps, c.Delta*100, verdict); err != nil {
			return err
		}
	}
	return nil
}
