package report

import (
	"strings"
	"testing"

	"cellbe/internal/core"
	"cellbe/internal/stats"
	"cellbe/internal/trace"
)

func sampleResult() *core.Result {
	return &core.Result{
		Name:   "demo",
		Title:  "Demo figure",
		XLabel: "x",
		YLabel: "GB/s",
		Curves: []core.Curve{
			{
				Label: "a",
				Points: []core.Point{
					{X: 128, Summary: stats.Summarize([]float64{1, 3})},
					{X: 256, Summary: stats.Summarize([]float64{4})},
				},
			},
			{
				Label: "b",
				Points: []core.Point{
					{X: 128, Summary: stats.Summarize([]float64{10})},
				},
			},
		},
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	if err := Table(&sb, sampleResult(), false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "Demo figure", "128", "256", "2.00", "10.00", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTableFull(t *testing.T) {
	var sb strings.Builder
	if err := Table(&sb, sampleResult(), true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a min", "a max", "a med", "a avg", "1.00", "3.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("full table missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, sampleResult()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // header + 3 data rows
		t.Fatalf("%d CSV lines, want 4:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,curve,x,min,max") {
		t.Fatalf("bad CSV header %q", lines[0])
	}
	if !strings.Contains(lines[1], "demo,a,128,1.0000,3.0000,2.0000,2.0000") {
		t.Fatalf("bad CSV row %q", lines[1])
	}
}

func TestChart(t *testing.T) {
	var sb strings.Builder
	if err := Chart(&sb, sampleResult(), 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("chart has no bars:\n%s", out)
	}
	// Curve b's 10.0 is the maximum: its bar must be full width.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Fatalf("max bar not full width:\n%s", out)
	}
}

func TestChartZeroResult(t *testing.T) {
	var sb strings.Builder
	empty := &core.Result{Name: "empty", Title: "empty"}
	if err := Chart(&sb, empty, 10); err != nil {
		t.Fatal(err)
	}
}

func TestCSVEscaping(t *testing.T) {
	r := &core.Result{
		Name: `sweep,"dirty"`,
		Curves: []core.Curve{{
			Label: "a,b\nc",
			Points: []core.Point{
				{X: 128, Summary: stats.Summarize([]float64{2})},
			},
		}},
	}
	var sb strings.Builder
	if err := CSV(&sb, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	// The embedded newline is quoted, so the record spans two physical
	// lines: header, then one logical row.
	if len(lines) != 3 {
		t.Fatalf("%d physical lines, want 3:\n%s", len(lines), sb.String())
	}
	row := lines[1] + "\n" + lines[2]
	if !strings.HasPrefix(row, `"sweep,""dirty""","a,b`+"\nc\",128,") {
		t.Fatalf("labels not RFC 4180 quoted: %q", row)
	}
}

func TestCSVCleanLabelsUnquoted(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"`) {
		t.Fatalf("clean labels must pass through unquoted:\n%s", sb.String())
	}
}

func TestTimeseriesCSV(t *testing.T) {
	ts := &trace.Timeseries{
		Columns: []string{"cycle", "eib.busy", `odd,"name"`},
		Rows: [][]float64{
			{0, 0.5, 1},
			{1000, 0.25, 2},
		},
	}
	var sb strings.Builder
	if err := TimeseriesCSV(&sb, ts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3:\n%s", len(lines), sb.String())
	}
	if lines[0] != `cycle,eib.busy,"odd,""name"""` {
		t.Fatalf("bad header %q", lines[0])
	}
	if lines[1] != "0,0.5000,1.0000" || lines[2] != "1000,0.2500,2.0000" {
		t.Fatalf("bad rows %q / %q", lines[1], lines[2])
	}
}

func TestTimeseriesCSVEmpty(t *testing.T) {
	ts := &trace.Timeseries{Columns: []string{"cycle"}}
	var sb strings.Builder
	if err := TimeseriesCSV(&sb, ts); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "cycle\n" {
		t.Fatalf("empty timeseries rendered %q, want header only", got)
	}
}

func TestTableMissingPoints(t *testing.T) {
	// Curve b has no sample at x=256; both table modes must print dashes
	// rather than invent a value.
	var sb strings.Builder
	if err := Table(&sb, sampleResult(), true); err != nil {
		t.Fatal(err)
	}
	var dashRow string
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "256") {
			dashRow = line
		}
	}
	if dashRow == "" || strings.Count(dashRow, "-") != 4 {
		t.Fatalf("row for x=256 should carry 4 dashes for curve b: %q", dashRow)
	}
}
