package cell

import (
	"errors"
	"fmt"

	"cellbe/internal/mfc"
	"cellbe/internal/spe"
)

// ErrBadScenario is wrapped by every Scenario.Validate rejection, so
// callers (and the fuzzer) can distinguish "the user asked for an
// impossible workload" from simulation failures with errors.Is.
var ErrBadScenario = errors.New("invalid scenario")

// Scenario describes one of the canonical DMA workloads the paper's
// SPE-to-SPE experiments are built from. The same scenarios back the
// cellsim debugging tool, the cellbench sweep runner, the saturation
// benchmarks and the scheduler determinism test, so all of them drive
// cycle-for-cycle identical kernels.
type Scenario struct {
	// Kind selects the traffic pattern: "pair" (SPE0 pulls from and
	// pushes to SPE1), "couples" (disjoint pairs), "cycle" (SPE i
	// exchanges with SPE i+1 mod N, the paper's worst case) or "mem"
	// (every SPE streams against main memory). The extra kind "wedge" is
	// a deliberately deadlocked scenario (every SPE blocks on a mailbox
	// nobody writes) for exercising the simulation watchdog.
	//
	// The workload library adds "gups", "qcd", "md" and "stream" — named
	// application workloads defined as data over the access-pattern
	// layer — and "pattern", an explicit phase program via the Pattern
	// field. See pattern.go.
	Kind string
	// SPEs is the number of SPEs involved (couples/cycle/mem; pair
	// always uses SPE0 and SPE1).
	SPEs int
	// Chunk is the DMA element size in bytes.
	Chunk int
	// Volume is the bytes moved per active SPE.
	Volume int64
	// Op is the mem-scenario operation: "get", "put" or "copy".
	Op string
	// List switches the kernels from DMA-elem to DMA-list commands
	// (GETL/PUTL): the same volume grouped into lists of up to 16 KB, with
	// list elements of Chunk bytes — the paper's Figures 12(b)/15(b)
	// discipline. Not defined for the wedge scenario or the mem copy op.
	List bool
	// Ring is the neighbour distance of the qcd preset's halo-exchange
	// ring (0 means 1, nearest neighbour). Only valid for kind "qcd".
	Ring int `json:",omitempty"`
	// AddrSeeds optionally pins the per-SPE address-stream seeds of
	// seeded-random phases, one per active SPE. Nil derives fixed
	// layout-independent lane seeds. Only valid for the workload-library
	// kinds (gups, qcd, md, stream, pattern).
	AddrSeeds []int64 `json:",omitempty"`
	// Pattern is the explicit phase program of kind "pattern"; the named
	// workload presets build theirs internally. See pattern.go.
	Pattern *Pattern `json:",omitempty"`
}

// pairGetBase/pairPutBase split an SPE's local store into a receive and a
// send aperture for the pair kernels. The put aperture starts at 128 KB so
// the 8 in-flight slots of the largest (16 KB) element never overlap the
// get slots: 128 KB + 8*16 KB = 256 KB exactly fills the local store.
const (
	pairGetBase = 0
	pairPutBase = 128 << 10
)

// pairSlots returns the number of in-flight buffer slots the pair kernel
// cycles through for a given element size.
func pairSlots(chunk int) int {
	slots := (128 << 10) / chunk
	if slots > 8 {
		slots = 8
	}
	if slots < 1 {
		slots = 1
	}
	return slots
}

// Validate checks the scenario parameters against the architectural
// limits before any kernel runs, so a bad -chunk fails with a clear
// message instead of a panic (or silently corrupted local-store offsets)
// deep inside the simulation.
func (sc Scenario) Validate() error {
	switch sc.Kind {
	case "pair", "couples", "cycle", "mem":
		if err := sc.rejectPatternKnobs(); err != nil {
			return err
		}
	case "gups", "qcd", "md", "stream", "pattern":
		return sc.validatePattern()
	case "wedge":
		// The watchdog-test scenario moves no data; only the SPE count
		// matters.
		if err := sc.rejectPatternKnobs(); err != nil {
			return err
		}
		if sc.List {
			return fmt.Errorf("cell: %w: the wedge scenario has no DMA-list variant", ErrBadScenario)
		}
		if sc.SPEs < 1 || sc.SPEs > NumSPEs {
			return fmt.Errorf("cell: %w: %d SPEs out of range 1..%d", ErrBadScenario, sc.SPEs, NumSPEs)
		}
		return nil
	default:
		return fmt.Errorf("cell: %w: unknown scenario %q (want pair, couples, cycle, mem, wedge, gups, qcd, md, stream or pattern)", ErrBadScenario, sc.Kind)
	}
	if sc.Chunk < 16 || sc.Chunk%16 != 0 {
		return fmt.Errorf("cell: %w: chunk %d must be a multiple of 16 bytes", ErrBadScenario, sc.Chunk)
	}
	if sc.Chunk > mfc.MaxTransfer {
		return fmt.Errorf("cell: %w: chunk %d exceeds the %d-byte DMA element limit", ErrBadScenario, sc.Chunk, mfc.MaxTransfer)
	}
	if sc.Volume <= 0 {
		return fmt.Errorf("cell: %w: volume must be positive", ErrBadScenario)
	}
	if sc.Kind != "pair" {
		if sc.SPEs < 1 || sc.SPEs > NumSPEs {
			return fmt.Errorf("cell: %w: %d SPEs out of range 1..%d", ErrBadScenario, sc.SPEs, NumSPEs)
		}
		if sc.Kind == "couples" && sc.SPEs%2 != 0 {
			return fmt.Errorf("cell: %w: couples scenario needs an even SPE count, got %d", ErrBadScenario, sc.SPEs)
		}
	}
	if sc.Kind == "pair" || sc.Kind == "couples" || sc.Kind == "cycle" {
		// The put aperture must hold every slot below the top of local
		// store; guaranteed for chunk <= MaxTransfer, but keep the check
		// so aperture changes cannot silently reintroduce an overflow.
		slots := pairSlots(sc.Chunk)
		if end := pairPutBase + slots*sc.Chunk; end > spe.LocalStoreBytes {
			return fmt.Errorf("cell: %w: chunk %d overflows local store (put aperture ends at %#x)", ErrBadScenario, sc.Chunk, end)
		}
	}
	if sc.Kind == "mem" {
		switch sc.Op {
		case "get", "put", "copy":
		default:
			return fmt.Errorf("cell: %w: unknown mem op %q (want get, put or copy)", ErrBadScenario, sc.Op)
		}
		if sc.List && sc.Op == "copy" {
			return fmt.Errorf("cell: %w: the mem copy op has no DMA-list variant", ErrBadScenario)
		}
	}
	return nil
}

// rejectPatternKnobs guards the canonical kinds against workload-library
// fields leaking in: a ring step, explicit address seeds or a phase
// program on a pair/mem-family scenario is a configuration error, not
// something to silently ignore.
func (sc Scenario) rejectPatternKnobs() error {
	switch {
	case sc.Ring != 0:
		return fmt.Errorf("cell: %w: ring step is a workload-library knob, not valid for kind %q", ErrBadScenario, sc.Kind)
	case sc.AddrSeeds != nil:
		return fmt.Errorf("cell: %w: address-stream seeds are a workload-library knob, not valid for kind %q", ErrBadScenario, sc.Kind)
	case sc.Pattern != nil:
		return fmt.Errorf("cell: %w: an explicit phase program needs kind \"pattern\", not %q", ErrBadScenario, sc.Kind)
	}
	return nil
}

// listLength returns how many Chunk-sized elements one DMA list groups:
// up to one MaxTransfer per list, capped at the architectural list length.
func listLength(chunk int) int {
	n := mfc.MaxTransfer / chunk
	if n < 1 {
		n = 1
	}
	if n > mfc.MaxListElements {
		n = mfc.MaxListElements
	}
	return n
}

// pairListLoop is the DMA-list variant of the pair kernel: the same
// bidirectional volume, grouped into GETL/PUTL commands whose elements
// cycle through the peer's receive window, double-buffered inside the
// get/put apertures.
func pairListLoop(ctx *spe.Context, sc Scenario, peerEA int64) {
	perList := listLength(sc.Chunk)
	listBytes := int64(perList * sc.Chunk)
	peerSlots := pairSlots(sc.Chunk)
	i := 0
	for off := int64(0); off < sc.Volume; off += listBytes {
		list := make([]mfc.ListElem, 0, perList)
		for k := 0; k < perList && off+int64(k*sc.Chunk) < sc.Volume; k++ {
			slot := i % peerSlots
			list = append(list, mfc.ListElem{EA: peerEA + int64(slot*sc.Chunk), Size: sc.Chunk})
			i++
		}
		lsOff := int(off % (64 << 10))
		if lsOff+perList*sc.Chunk > 64<<10 {
			lsOff = 0
		}
		ctx.GetList(pairGetBase+lsOff, list, 0)
		ctx.PutList(pairPutBase+lsOff, list, 1)
	}
	ctx.WaitTagMask(1<<0 | 1<<1)
}

// memListLoop is the DMA-list variant of the mem kernel: GETL or PUTL
// lists of Chunk-sized elements streaming over the region at base.
func memListLoop(ctx *spe.Context, sc Scenario, base int64) {
	perList := listLength(sc.Chunk)
	listBytes := int64(perList * sc.Chunk)
	for off := int64(0); off < sc.Volume; off += listBytes {
		list := make([]mfc.ListElem, 0, perList)
		for k := 0; k < perList && off+int64(k*sc.Chunk) < sc.Volume; k++ {
			list = append(list, mfc.ListElem{EA: base + off + int64(k*sc.Chunk), Size: sc.Chunk})
		}
		lsOff := int(off % (64 << 10))
		if lsOff+perList*sc.Chunk > 64<<10 {
			lsOff = 0
		}
		if sc.Op == "get" {
			ctx.GetList(lsOff, list, 0)
		} else {
			ctx.PutList(lsOff, list, 0)
		}
	}
	ctx.WaitTagMask(1 << 0)
}

// Install validates sc and installs its kernels on sys. It returns the
// total payload bytes the scenario accounts for (the figure bandwidth is
// computed from). Run the system afterwards to execute the kernels.
func (sc Scenario) Install(sys *System) (int64, error) {
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	var total int64
	spawn := func(idx int, bytes int64, kernel func(ctx *spe.Context)) {
		total += bytes
		sys.SPEs[idx].Run(fmt.Sprintf("spe%d", idx), kernel)
	}
	pairKernel := func(idx, peer int) {
		if sc.List {
			spawn(idx, 2*sc.Volume, func(ctx *spe.Context) {
				pairListLoop(ctx, sc, sys.LSEA(peer, 0))
			})
			return
		}
		// The element variant runs as a registered stream: the same loop,
		// reified so the fast-forward controller can inspect its progress
		// (see dmaStream).
		total += 2 * sc.Volume
		sys.installStream(&dmaStream{
			sys:    sys,
			idx:    idx,
			chunk:  sc.Chunk,
			slots:  pairSlots(sc.Chunk),
			iters:  (sc.Volume + int64(sc.Chunk) - 1) / int64(sc.Chunk),
			peerEA: sys.LSEA(peer, 0),
		})
	}
	switch sc.Kind {
	case "gups", "qcd", "md", "stream", "pattern":
		// The whole workload library shares this one arm: the phase
		// program (preset or explicit) runs on the generic interpreter.
		if err := sc.installPattern(sys, spawn); err != nil {
			return 0, err
		}
	case "pair":
		pairKernel(0, 1)
	case "couples":
		for c := 0; c < sc.SPEs/2; c++ {
			pairKernel(2*c, 2*c+1)
		}
	case "cycle":
		for i := 0; i < sc.SPEs; i++ {
			pairKernel(i, (i+1)%sc.SPEs)
		}
	case "wedge":
		for i := 0; i < sc.SPEs; i++ {
			spawn(i, 0, func(ctx *spe.Context) {
				ctx.ReadMailbox() // nobody ever writes: deadlocks on purpose
			})
		}
	case "mem":
		for i := 0; i < sc.SPEs; i++ {
			base, err := sys.TryAlloc(sc.Volume, 1<<16)
			if err != nil {
				return 0, err
			}
			spawn(i, sc.Volume, func(ctx *spe.Context) {
				if sc.List {
					memListLoop(ctx, sc, base)
					return
				}
				for off := int64(0); off < sc.Volume; off += int64(sc.Chunk) {
					ls := int(off) % (128 << 10)
					if ls+sc.Chunk > 128<<10 {
						ls = 0
					}
					switch sc.Op {
					case "get":
						ctx.Get(ls, base+off, sc.Chunk, 0)
					case "put":
						ctx.Put(ls, base+off, sc.Chunk, 0)
					case "copy":
						ctx.GetF(ls, base+off, sc.Chunk, 0)
						ctx.PutF(ls, base+off, sc.Chunk, 0)
					}
				}
				ctx.WaitTagMask(^uint32(0))
			})
		}
	}
	sys.scen = sc
	return total, nil
}
