package cell

import (
	"fmt"

	"cellbe/internal/mfc"
	"cellbe/internal/spe"
)

// Scenario describes one of the canonical DMA workloads the paper's
// SPE-to-SPE experiments are built from. The same scenarios back the
// cellsim debugging tool, the cellbench sweep runner, the saturation
// benchmarks and the scheduler determinism test, so all of them drive
// cycle-for-cycle identical kernels.
type Scenario struct {
	// Kind selects the traffic pattern: "pair" (SPE0 pulls from and
	// pushes to SPE1), "couples" (disjoint pairs), "cycle" (SPE i
	// exchanges with SPE i+1 mod N, the paper's worst case) or "mem"
	// (every SPE streams against main memory). The extra kind "wedge" is
	// a deliberately deadlocked scenario (every SPE blocks on a mailbox
	// nobody writes) for exercising the simulation watchdog.
	Kind string
	// SPEs is the number of SPEs involved (couples/cycle/mem; pair
	// always uses SPE0 and SPE1).
	SPEs int
	// Chunk is the DMA element size in bytes.
	Chunk int
	// Volume is the bytes moved per active SPE.
	Volume int64
	// Op is the mem-scenario operation: "get", "put" or "copy".
	Op string
}

// pairGetBase/pairPutBase split an SPE's local store into a receive and a
// send aperture for the pair kernels. The put aperture starts at 128 KB so
// the 8 in-flight slots of the largest (16 KB) element never overlap the
// get slots: 128 KB + 8*16 KB = 256 KB exactly fills the local store.
const (
	pairGetBase = 0
	pairPutBase = 128 << 10
)

// pairSlots returns the number of in-flight buffer slots the pair kernel
// cycles through for a given element size.
func pairSlots(chunk int) int {
	slots := (128 << 10) / chunk
	if slots > 8 {
		slots = 8
	}
	if slots < 1 {
		slots = 1
	}
	return slots
}

// Validate checks the scenario parameters against the architectural
// limits before any kernel runs, so a bad -chunk fails with a clear
// message instead of a panic (or silently corrupted local-store offsets)
// deep inside the simulation.
func (sc Scenario) Validate() error {
	switch sc.Kind {
	case "pair", "couples", "cycle", "mem":
	case "wedge":
		// The watchdog-test scenario moves no data; only the SPE count
		// matters.
		if sc.SPEs < 1 || sc.SPEs > NumSPEs {
			return fmt.Errorf("cell: %d SPEs out of range 1..%d", sc.SPEs, NumSPEs)
		}
		return nil
	default:
		return fmt.Errorf("cell: unknown scenario %q (want pair, couples, cycle, mem or wedge)", sc.Kind)
	}
	if sc.Chunk < 16 || sc.Chunk%16 != 0 {
		return fmt.Errorf("cell: chunk %d must be a multiple of 16 bytes", sc.Chunk)
	}
	if sc.Chunk > mfc.MaxTransfer {
		return fmt.Errorf("cell: chunk %d exceeds the %d-byte DMA element limit", sc.Chunk, mfc.MaxTransfer)
	}
	if sc.Volume <= 0 {
		return fmt.Errorf("cell: volume must be positive")
	}
	if sc.Kind != "pair" {
		if sc.SPEs < 1 || sc.SPEs > NumSPEs {
			return fmt.Errorf("cell: %d SPEs out of range 1..%d", sc.SPEs, NumSPEs)
		}
		if sc.Kind == "couples" && sc.SPEs%2 != 0 {
			return fmt.Errorf("cell: couples scenario needs an even SPE count, got %d", sc.SPEs)
		}
	}
	if sc.Kind == "pair" || sc.Kind == "couples" || sc.Kind == "cycle" {
		// The put aperture must hold every slot below the top of local
		// store; guaranteed for chunk <= MaxTransfer, but keep the check
		// so aperture changes cannot silently reintroduce an overflow.
		slots := pairSlots(sc.Chunk)
		if end := pairPutBase + slots*sc.Chunk; end > spe.LocalStoreBytes {
			return fmt.Errorf("cell: chunk %d overflows local store (put aperture ends at %#x)", sc.Chunk, end)
		}
	}
	if sc.Kind == "mem" {
		switch sc.Op {
		case "get", "put", "copy":
		default:
			return fmt.Errorf("cell: unknown mem op %q (want get, put or copy)", sc.Op)
		}
	}
	return nil
}

// Install validates sc and installs its kernels on sys. It returns the
// total payload bytes the scenario accounts for (the figure bandwidth is
// computed from). Run the system afterwards to execute the kernels.
func (sc Scenario) Install(sys *System) (int64, error) {
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	var total int64
	spawn := func(idx int, bytes int64, kernel func(ctx *spe.Context)) {
		total += bytes
		sys.SPEs[idx].Run(fmt.Sprintf("spe%d", idx), kernel)
	}
	pairKernel := func(idx, peer int) {
		spawn(idx, 2*sc.Volume, func(ctx *spe.Context) {
			peerEA := sys.LSEA(peer, 0)
			slots := pairSlots(sc.Chunk)
			i := 0
			for off := int64(0); off < sc.Volume; off += int64(sc.Chunk) {
				slot := i % slots
				ctx.Get(pairGetBase+slot*sc.Chunk, peerEA+int64(slot*sc.Chunk), sc.Chunk, 0)
				ctx.Put(pairPutBase+slot*sc.Chunk, peerEA+int64(slot*sc.Chunk), sc.Chunk, 1)
				i++
			}
			ctx.WaitTagMask(1<<0 | 1<<1)
		})
	}
	switch sc.Kind {
	case "pair":
		pairKernel(0, 1)
	case "couples":
		for c := 0; c < sc.SPEs/2; c++ {
			pairKernel(2*c, 2*c+1)
		}
	case "cycle":
		for i := 0; i < sc.SPEs; i++ {
			pairKernel(i, (i+1)%sc.SPEs)
		}
	case "wedge":
		for i := 0; i < sc.SPEs; i++ {
			spawn(i, 0, func(ctx *spe.Context) {
				ctx.ReadMailbox() // nobody ever writes: deadlocks on purpose
			})
		}
	case "mem":
		for i := 0; i < sc.SPEs; i++ {
			base, err := sys.TryAlloc(sc.Volume, 1<<16)
			if err != nil {
				return 0, err
			}
			spawn(i, sc.Volume, func(ctx *spe.Context) {
				for off := int64(0); off < sc.Volume; off += int64(sc.Chunk) {
					ls := int(off) % (128 << 10)
					if ls+sc.Chunk > 128<<10 {
						ls = 0
					}
					switch sc.Op {
					case "get":
						ctx.Get(ls, base+off, sc.Chunk, 0)
					case "put":
						ctx.Put(ls, base+off, sc.Chunk, 0)
					case "copy":
						ctx.GetF(ls, base+off, sc.Chunk, 0)
						ctx.PutF(ls, base+off, sc.Chunk, 0)
					}
				}
				ctx.WaitTagMask(^uint32(0))
			})
		}
	}
	return total, nil
}
