// Package cell assembles the full Cell Broadband Engine system model: the
// PPE, eight SPEs, the MIC-attached XDR memory and the IOIF-attached
// remote bank, all wired to the Element Interconnect Bus, plus the
// effective-address map that routes DMA between main memory and
// memory-mapped local stores.
//
// It also owns the experimental platform quirks the paper documents: the
// 2.1 GHz clock, the dual-bank NUMA allocation, and the opaque
// logical-to-physical SPE mapping ("the current API does not allow the
// programmer to control such layout"), which is modeled as a seeded random
// permutation so experiments can sample layouts the way the paper samples
// runs.
package cell

import (
	"fmt"
	"math/rand"

	"cellbe/internal/eib"
	"cellbe/internal/fault"
	"cellbe/internal/mfc"
	"cellbe/internal/perfctr"
	"cellbe/internal/ppe"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
	"cellbe/internal/trace"
	"cellbe/internal/xdr"
)

// NumSPEs is the number of Synergistic Processor Elements on a CBE chip.
const NumSPEs = 8

// Config assembles the component configurations plus system-level layout.
type Config struct {
	// ClockGHz is the CPU clock; cycles-to-GB/s conversion uses it.
	ClockGHz float64
	// EIB, Mem, MFC, SPU, PPE configure the respective component models.
	EIB eib.Config
	Mem xdr.Config
	MFC mfc.Config
	SPU spe.Config
	PPE ppe.Config
	// Layout maps logical SPE index (what the program sees) to physical
	// SPE number (which fixes the EIB ramp). nil means identity. Use
	// RandomLayout to sample mappings as the paper's repeated runs do.
	Layout []int
	// LSBase is the effective address where local stores are mapped;
	// logical SPE i's LS occupies [LSBase+i*LSSpan, +LocalStoreBytes).
	LSBase int64
	// LSSpan is the EA stride between consecutive SPEs' local stores.
	LSSpan int64
	// NoiseEvery/NoiseCycles inject periodic OS interference: every
	// NoiseEvery cycles the MIC-side bank is stolen for NoiseCycles.
	// Off by default; the paper's warm-up discipline exists precisely to
	// exclude this — it is a failure-injection knob for tests.
	NoiseEvery  sim.Time
	NoiseCycles sim.Time
	// Faults enables deterministic fault injection across the model
	// (MFC command-bus retries, XDR bank stalls, EIB ring slowdowns and
	// outages, delayed completions). Zero value disables injection.
	Faults fault.Config
	// FaultSeed seeds the injector's random stream; the same (Faults,
	// FaultSeed, Layout) triple perturbs a scenario identically on every
	// run.
	FaultSeed int64
	// MaxCycles is the default watchdog cycle budget RunChecked enforces
	// when its caller passes 0. Zero means unlimited.
	MaxCycles sim.Time
}

// Clone returns a deep copy of c. Every component configuration is a
// plain value, so the only reference field is the Layout slice — cloning
// it means a System built from the copy can never race a caller that
// keeps mutating the original Config (the sweep scheduler snapshots its
// base config this way before fanning grid points across workers).
func (c Config) Clone() Config {
	c.Layout = append([]int(nil), c.Layout...)
	return c
}

// DefaultConfig returns the calibrated configuration of the paper's
// dual-Cell blade (one active chip at 2.1 GHz, both memory banks).
func DefaultConfig() Config {
	return Config{
		ClockGHz: 2.1,
		EIB:      eib.DefaultConfig(),
		Mem:      xdr.DefaultConfig(),
		MFC:      mfc.DefaultConfig(),
		SPU:      spe.DefaultConfig(),
		PPE:      ppe.DefaultConfig(),
		LSBase:   1 << 30, // local stores mapped at 1 GB, above the 512 MB of RAM
		LSSpan:   1 << 20,
	}
}

// RandomLayout returns a logical-to-physical SPE permutation drawn from
// seed. Seed 0 returns the identity mapping.
func RandomLayout(seed int64) []int {
	if seed == 0 {
		layout := make([]int, NumSPEs)
		for i := range layout {
			layout[i] = i
		}
		return layout
	}
	return rand.New(rand.NewSource(seed)).Perm(NumSPEs)
}

// System is a fully wired Cell BE machine model.
type System struct {
	Eng  *sim.Engine
	Bus  *eib.EIB
	Mem  *xdr.Memory
	PPE  *ppe.PPE
	SPEs []*spe.SPE // indexed by logical SPE number

	cfg       Config
	allocNext int64
	resv      *reservations
	rem       *remoteChip
	faults    *fault.Injector
	tracer    *trace.Tracer
	perf      *perfctr.Counters
	pktFree   *pktDone // free list of packet completion records (engine is single-threaded)
	streams   []*dmaStream
	ff        *ffController // nil unless EnableFastForward was called

	// fabs holds each logical SPE's routing fabric so a recycled system
	// can rebind ramps for a new layout without rebuilding the SPEs.
	fabs [NumSPEs]*fabric
	// scen records the installed scenario (zero Kind = none yet); the
	// snapshot layer replays it into clones.
	scen Scenario
}

// Validate reports why the configuration cannot build a System, nil when
// it can. New panics on exactly these conditions; callers assembling a
// Config from untrusted input (the serve layer) validate first so a bad
// request fails with an error instead of a recovered panic.
func (c Config) Validate() error {
	if c.ClockGHz <= 0 {
		return fmt.Errorf("cell: clock must be positive")
	}
	if c.Layout != nil {
		if len(c.Layout) != NumSPEs {
			return fmt.Errorf("cell: layout must have %d entries", NumSPEs)
		}
		seen := make(map[int]bool)
		for _, p := range c.Layout {
			if p < 0 || p >= NumSPEs || seen[p] {
				return fmt.Errorf("cell: layout %v is not a permutation", c.Layout)
			}
			seen[p] = true
		}
	}
	if c.LSSpan < spe.LocalStoreBytes || c.LSBase < c.Mem.TotalBytes {
		return fmt.Errorf("cell: LS mapping overlaps RAM")
	}
	return nil
}

// New builds a system from cfg.
func New(cfg Config) *System {
	s := &System{}
	s.init(cfg)
	return s
}

// init wires s for cfg. On a zero System it performs the cold boot New
// always did; on a recycled carcass (the Snapshot arena path) it resets
// and rebinds the components already present, keeping every allocation
// they grew — the engine's timing wheel, the EIB's interval timelines,
// the MFC queues and the local stores (re-zeroed over their dirty spans
// only). Either way the result must be observationally identical to a
// cold boot: the differential clone-vs-cold tests pin this.
func (s *System) init(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	layout := cfg.Layout
	if layout == nil {
		layout = RandomLayout(0)
	}

	if s.Eng == nil {
		s.Eng = sim.NewEngine()
	} else {
		s.Eng.Reset()
	}
	eng := s.Eng
	freshBus := s.Bus == nil || !s.Bus.Reset(cfg.EIB)
	if freshBus {
		s.Bus = eib.New(eng, cfg.EIB)
	}
	memCfg := cfg.Mem
	memCfg.NoisePeriod = cfg.NoiseEvery
	memCfg.NoiseCycles = cfg.NoiseCycles
	if s.Mem == nil || freshBus {
		// The memory system routes through the bus instance, so a rebuilt
		// bus forces a rebuilt memory front end too.
		s.Mem = xdr.New(eng, s.Bus, memCfg)
	} else {
		s.Mem.Reset(memCfg)
	}
	s.cfg = cfg
	s.cfg.Layout = layout
	s.allocNext = 0
	s.resv = newReservations()
	s.rem = nil
	s.faults = fault.New(cfg.Faults, cfg.FaultSeed)
	s.Bus.SetFaults(s.faults)
	s.Mem.SetFaults(s.faults)
	s.tracer, s.perf = nil, nil
	clear(s.streams)
	s.streams = s.streams[:0]
	s.ff = nil
	s.scen = Scenario{}

	for logical := 0; logical < NumSPEs; logical++ {
		ramp := eib.PhysicalSPERamp(layout[logical])
		if logical < len(s.SPEs) {
			fab := s.fabs[logical]
			fab.ramp = ramp
			sp := s.SPEs[logical]
			sp.Reset(ramp, fab, cfg.SPU, cfg.MFC)
			sp.MFC().SetFaults(s.faults)
			continue
		}
		fab := &fabric{sys: s, ramp: ramp}
		s.fabs[logical] = fab
		sp := spe.New(eng, logical, ramp, fab, cfg.SPU, cfg.MFC)
		sp.MFC().SetFaults(s.faults)
		s.SPEs = append(s.SPEs, sp)
	}
	if s.PPE == nil {
		s.PPE = ppe.New(eng, &ppePort{sys: s}, cfg.PPE)
	} else {
		s.PPE.Reset(&ppePort{sys: s}, cfg.PPE)
	}
	eng.OnDiagnostic(s.diagnose)
}

// Faults returns the system's fault injector (nil when injection is
// disabled).
func (s *System) Faults() *fault.Injector { return s.faults }

// Tracer returns the attached event tracer (nil when tracing is off).
func (s *System) Tracer() *trace.Tracer { return s.tracer }

// SetTracer wires an event tracer through every component — the EIB, both
// XDR banks, all eight MFCs and the PPE — following the SetFaults
// discipline: nil (the default) leaves every hot path on its traced-off
// fast path. It also stamps the tracer with the system clock and display
// names for every track so exports are self-describing.
func (s *System) SetTracer(tr *trace.Tracer) {
	s.tracer = tr
	s.Bus.SetTracer(tr)
	s.Mem.SetTracer(tr)
	s.PPE.SetTracer(tr)
	for i, sp := range s.SPEs {
		sp.MFC().SetTracer(tr, i)
	}
	if tr == nil {
		return
	}
	tr.SetClock(s.cfg.ClockGHz)
	tr.SetTrackName(trace.TrackPPE, "PPE fills")
	tr.SetTrackName(trace.TrackPPEMissQ, "PPE miss queue")
	for i := range s.SPEs {
		ramp := eib.PhysicalSPERamp(s.cfg.Layout[i])
		tr.SetTrackName(trace.MFCTrack(i), fmt.Sprintf("SPE%d MFC (ramp %v)", i, ramp))
		tr.SetTrackName(trace.TagTrack(i), fmt.Sprintf("SPE%d tags", i))
	}
	for r := 0; r < eib.NumRamps; r++ {
		tr.SetTrackName(trace.RampTrack(r), fmt.Sprintf("%v out", eib.RampID(r)))
	}
	for ring := 0; ring < 2*s.cfg.EIB.RingsPerDirection; ring++ {
		dir := eib.Clockwise
		if ring >= s.cfg.EIB.RingsPerDirection {
			dir = eib.Counterclockwise
		}
		for seg := 0; seg < eib.NumRamps; seg++ {
			next := (seg + 1) % eib.NumRamps
			if dir == eib.Counterclockwise {
				next = (seg - 1 + eib.NumRamps) % eib.NumRamps
			}
			tr.SetTrackName(trace.SegTrack(ring, seg),
				fmt.Sprintf("ring%d %v %v>%v", ring, dir, eib.RampID(seg), eib.RampID(next)))
		}
	}
	tr.SetTrackName(trace.BankTrack(0), "XDR local (MIC)")
	tr.SetTrackName(trace.BankTrack(1), "XDR remote (IOIF0)")
}

// Perf returns the attached perf-counter block (nil when counting is off).
func (s *System) Perf() *perfctr.Counters { return s.perf }

// SetPerf wires a perf-counter block through every component — the EIB,
// both XDR banks, all eight MFCs and the PPE — following the SetFaults
// discipline: nil (the default) leaves every hot path on its counter-off
// fast path, so an uncounted run is bit- and allocation-identical to one
// without the subsystem. Counters are plain uint64 increments, so unlike
// tracing they are cheap enough to leave on for every sweep point.
func (s *System) SetPerf(pc *perfctr.Counters) {
	s.perf = pc
	s.Mem.SetPerf(pc)
	if pc == nil {
		s.Bus.SetPerf(nil)
		s.PPE.SetPerf(nil)
		for _, sp := range s.SPEs {
			sp.MFC().SetPerf(nil)
		}
		return
	}
	s.Bus.SetPerf(&pc.EIB)
	s.PPE.SetPerf(&pc.PPE)
	for i, sp := range s.SPEs {
		sp.MFC().SetPerf(&pc.MFC[i])
	}
}

// StartPerfWindows arms periodic snapshots of the attached counter block,
// every interval cycles, for windowed bandwidth derivation. Like
// StartMetrics it rides daemon events and never extends a run; the final
// partial interval goes unsampled. Panics if SetPerf has not been called.
func (s *System) StartPerfWindows(interval sim.Time) *perfctr.Windows {
	if s.perf == nil {
		panic("cell: StartPerfWindows requires SetPerf")
	}
	return s.perf.StartWindows(s.Eng, interval)
}

// StartMetrics arms a periodic utilization sampler on the system: every
// interval cycles it records EIB bandwidth and command rate, per-ring
// utilization, accumulated wait cycles, both XDR banks' bandwidth,
// per-SPE MFC queue depth, the command-bus backlog and the PPE miss-queue
// occupancy. The sampler runs on daemon events, so it never extends a run
// or changes simulated behaviour; call before Run and read the returned
// sampler's Timeseries afterwards.
func (s *System) StartMetrics(interval sim.Time) *trace.Sampler {
	sa := trace.NewSampler(s.Eng, interval)
	clk := s.cfg.ClockGHz
	perCyc := 1.0 / float64(interval)
	sa.Rate("eib_GBps", clk*perCyc, func() float64 { return float64(s.Bus.Stats().Bytes) })
	sa.Rate("eib_cmds_per_kcyc", 1000*perCyc, func() float64 { return float64(s.Bus.Stats().Commands) })
	sa.Rate("eib_transfers", 1, func() float64 { return float64(s.Bus.Stats().Transfers) })
	sa.Rate("eib_wait_cyc", 1, func() float64 { return float64(s.Bus.Stats().WaitCycles) })
	nrings := 2 * s.cfg.EIB.RingsPerDirection
	if nrings > len(s.Bus.Stats().BusyCycles) {
		nrings = len(s.Bus.Stats().BusyCycles)
	}
	for r := 0; r < nrings; r++ {
		sa.Rate(fmt.Sprintf("ring%d_util", r), perCyc, func() float64 {
			return float64(s.Bus.Stats().BusyCycles[r])
		})
	}
	sa.Rate("xdr_local_GBps", clk*perCyc, func() float64 {
		b := s.Mem.BankStats(0)
		return float64(b.ReadBytes + b.WriteBytes)
	})
	sa.Rate("xdr_remote_GBps", clk*perCyc, func() float64 {
		b := s.Mem.BankStats(1)
		return float64(b.ReadBytes + b.WriteBytes)
	})
	for i, sp := range s.SPEs {
		m := sp.MFC()
		sa.Gauge(fmt.Sprintf("spe%d_q", i), func() float64 { return float64(m.QueueOccupancy()) })
	}
	sa.Gauge("cmdbus_backlog", func() float64 { return float64(s.Bus.CommandBacklog()) })
	sa.Gauge("ppe_missq", func() float64 { return float64(s.PPE.InflightFills()) })
	sa.Start()
	return sa
}

// diagnose contributes per-SPE MFC state to watchdog diagnostics.
func (s *System) diagnose() []string {
	var lines []string
	for i, sp := range s.SPEs {
		for _, d := range sp.MFC().Diagnose() {
			lines = append(lines, fmt.Sprintf("SPE%d MFC: %s", i, d))
		}
	}
	return lines
}

// Config returns the system configuration (with the resolved layout).
func (s *System) Config() Config { return s.cfg }

// Layout returns the logical-to-physical SPE mapping in use.
func (s *System) Layout() []int { return append([]int(nil), s.cfg.Layout...) }

// Run drives the simulation until no events remain.
func (s *System) Run() { s.Eng.Run() }

// RunChecked drives the simulation under the watchdog: it enforces the
// max-cycle budget (0 = unlimited), detects deadlocks when the event
// queue drains with SPU/PPU processes still blocked, converts process
// panics into errors, and verifies the data-conservation invariants at
// teardown. On failure the returned error is a *sim.DeadlockError, a
// *sim.ProcessPanic, or a conservation error.
func (s *System) RunChecked(maxCycles sim.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pp, ok := r.(*sim.ProcessPanic)
			if !ok {
				panic(r)
			}
			err = pp
		}
	}()
	if maxCycles == 0 {
		maxCycles = s.cfg.MaxCycles
	}
	if s.ff != nil {
		// A steady-state jump must never overshoot the watchdog budget: a
		// cycle-exact run would have stopped at the boundary, and the
		// fast-forwarded run must fail (or pass) identically.
		s.ff.budget = maxCycles
	}
	if err := s.Eng.RunChecked(maxCycles); err != nil {
		return err
	}
	return s.Verify()
}

// Verify checks scenario-teardown invariants: every MFC must have
// delivered exactly the bytes requested of it, per tag group, with
// nothing left in flight. Fault injection delays data but never loses
// it, so faulty runs must pass too.
func (s *System) Verify() error {
	for i, sp := range s.SPEs {
		if err := sp.MFC().CheckConservation(); err != nil {
			return fmt.Errorf("cell: SPE%d: %w", i, err)
		}
	}
	return nil
}

// GBps converts bytes moved in cycles into GB/s at the system clock.
func (s *System) GBps(bytes int64, cycles sim.Time) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(bytes) * s.cfg.ClockGHz / float64(cycles)
}

// LSEA returns the effective address of byte off inside logical SPE i's
// local store, as seen by DMA engines.
func (s *System) LSEA(logical, off int) int64 {
	if logical < 0 || logical >= NumSPEs {
		panic(fmt.Sprintf("cell: bad SPE index %d", logical))
	}
	if off < 0 || off >= spe.LocalStoreBytes {
		panic(fmt.Sprintf("cell: bad LS offset %#x", off))
	}
	return s.cfg.LSBase + int64(logical)*s.cfg.LSSpan + int64(off)
}

// Alloc reserves size bytes of main memory aligned to align and returns
// its effective address. It is a bump allocator for experiment buffers.
// It panics when the simulated address space is exhausted; callers
// handling user-sized requests should use TryAlloc.
func (s *System) Alloc(size int64, align int64) int64 {
	addr, err := s.TryAlloc(size, align)
	if err != nil {
		panic(err.Error())
	}
	return addr
}

// TryAlloc is Alloc returning an error instead of panicking when the
// request does not fit the simulated address space — the path for
// user-controlled sizes (CLI -volume), which must fail with a clean
// message.
func (s *System) TryAlloc(size int64, align int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("cell: allocation of %d bytes", size)
	}
	if align <= 0 {
		align = 128
	}
	addr := (s.allocNext + align - 1) / align * align
	if addr+size > s.cfg.Mem.TotalBytes {
		return 0, fmt.Errorf("cell: out of simulated memory (%d MB requested beyond the %d MB address space)",
			size>>20, s.cfg.Mem.TotalBytes>>20)
	}
	s.allocNext = addr + size
	return addr, nil
}

// resolveLS maps an effective address to (logical SPE, LS offset) when it
// falls in the local store aperture.
func (s *System) resolveLS(ea int64) (logical, off int, ok bool) {
	if ea < s.cfg.LSBase {
		return 0, 0, false
	}
	idx := (ea - s.cfg.LSBase) / s.cfg.LSSpan
	if idx >= NumSPEs {
		panic(fmt.Sprintf("cell: EA %#x beyond the LS aperture", ea))
	}
	off64 := (ea - s.cfg.LSBase) % s.cfg.LSSpan
	if off64 >= spe.LocalStoreBytes+8 {
		panic(fmt.Sprintf("cell: EA %#x falls in an unmapped LS hole", ea))
	}
	return int(idx), int(off64), true
}

// SignalEA returns the memory-mapped address of logical SPE i's signal
// notification register reg (0 or 1).
func (s *System) SignalEA(logical, reg int) int64 {
	if reg != 0 && reg != 1 {
		panic("cell: signal register must be 0 or 1")
	}
	if logical < 0 || logical >= NumSPEs {
		panic(fmt.Sprintf("cell: bad SPE index %d", logical))
	}
	return s.cfg.LSBase + int64(logical)*s.cfg.LSSpan + spe.SNROffset + int64(4*reg)
}

// Release returns the system's recyclable buffers (the SPE local stores)
// to their allocation pools. The caller promises the system is dead: no
// further Run, scenario or inspection call may follow. Batch drivers that
// build one System per point (sweeps) call this to keep GC pressure flat;
// everyone else can simply drop the System.
func (s *System) Release() {
	for _, sp := range s.SPEs {
		sp.Release()
	}
}

// fabric routes one SPE's DMA line requests: to main memory via the
// MIC/IOIF, or to another SPE's memory-mapped local store.
type fabric struct {
	sys  *System
	ramp eib.RampID
}

// pktDone is a pooled completion record for one DMA packet routed to a
// local-store target: the context the fabric's per-packet closures used
// to capture, made reusable so the LS-to-LS packet hot path schedules
// through eib.TransferCB (see sim.Callee) without allocating. Records
// recycle through a free list on System — the engine is single-threaded,
// so no locking — and are released before the completion callback runs,
// ready for the MFC pump's immediate next packet.
type pktDone struct {
	sys    *System
	target *spe.SPE
	buf    []byte // requester-side packet buffer: dst for reads, src for writes; may be nil
	off    int    // target LS offset
	n      int
	write  bool
	done   sim.Callee
	next   *pktDone // free-list link
}

func (s *System) getPkt() *pktDone {
	p := s.pktFree
	if p == nil {
		return &pktDone{sys: s}
	}
	s.pktFree = p.next
	return p
}

// Call performs the local-store side effect of the completed packet, then
// releases the record and invokes the caller's completion. Release comes
// first because done may schedule the next packet synchronously and should
// find this record back on the free list.
func (p *pktDone) Call(end sim.Time) {
	if p.write {
		if p.off >= spe.SNROffset {
			// A 4-byte store landing on a signal notification register
			// ORs into it.
			if p.n == 4 && p.buf != nil {
				reg := (p.off - spe.SNROffset) / 4
				v := uint32(p.buf[0]) | uint32(p.buf[1])<<8 | uint32(p.buf[2])<<16 | uint32(p.buf[3])<<24
				p.target.WriteSignal(reg, v)
			}
		} else if p.buf != nil {
			copy(p.target.LSWrite(p.off, p.n), p.buf[:p.n])
		}
	} else if p.buf != nil {
		copy(p.buf, p.target.LSRead(p.off, p.n))
	}
	sys, done := p.sys, p.done
	*p = pktDone{sys: sys, next: sys.pktFree}
	sys.pktFree = p
	done.Call(end)
}

func (f *fabric) ReadEA(ea int64, n int, earliest sim.Time, dst []byte, done sim.Callee) {
	sys := f.sys
	if remote, off, ok := sys.resolveRemoteLS(ea); ok {
		f.readRemote(remote, off, n, earliest, dst, done)
		return
	}
	if logical, off, ok := sys.resolveLS(ea); ok {
		target := sys.SPEs[logical]
		ready := sys.Bus.Command(earliest)
		p := sys.getPkt()
		p.target, p.buf, p.off, p.n, p.write, p.done = target, dst, off, n, false, done
		sys.Bus.TransferCB(target.Ramp(), f.ramp, n, ready, p)
		return
	}
	sys.Mem.Read(f.ramp, ea, n, earliest, dst, done.Call)
}

func (f *fabric) WriteEA(ea int64, n int, earliest sim.Time, src []byte, done sim.Callee) {
	sys := f.sys
	if remote, off, ok := sys.resolveRemoteLS(ea); ok {
		f.writeRemote(remote, off, n, earliest, src, done)
		return
	}
	if logical, off, ok := sys.resolveLS(ea); ok {
		target := sys.SPEs[logical]
		ready := sys.Bus.Command(earliest)
		p := sys.getPkt()
		p.target, p.buf, p.off, p.n, p.write, p.done = target, src, off, n, true, done
		sys.Bus.TransferCB(f.ramp, target.Ramp(), n, ready, p)
		return
	}
	// Any store to a line kills reservations on it (coherence point).
	sys.Mem.Write(f.ramp, ea, n, earliest, src, func(end sim.Time) {
		sys.resv.kill(lineOf(ea))
		done.Call(end)
	})
}

// ppePort is the PPE's line-fill path over the EIB to main memory.
type ppePort struct{ sys *System }

func (p *ppePort) ReadLine(addr int64, earliest sim.Time, done func(end sim.Time)) {
	p.sys.Mem.Read(eib.RampPPE, addr, xdr.LineBytes, earliest, nil, done)
}

func (p *ppePort) WriteLine(addr int64, earliest sim.Time, done func(end sim.Time)) {
	p.sys.Mem.Write(eib.RampPPE, addr, xdr.LineBytes, earliest, nil, func(end sim.Time) {
		p.sys.resv.kill(lineOf(addr))
		done(end)
	})
}
