package cell

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cellbe/internal/perfctr"
)

// coldRun boots, installs and runs one grid point from scratch, the
// reference the clone path must match bit-for-bit.
func coldRun(t *testing.T, cfg Config, sc Scenario) *System {
	t.Helper()
	sys := New(cfg)
	sys.SetPerf(&perfctr.Counters{})
	if _, err := sc.Install(sys); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := sys.RunChecked(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	return sys
}

// assertIdentical pins every observable of a finished system against the
// cold reference: cycle count, event totals, EIB/MFC statistics, the
// occupancy histograms and the full perf-counter block.
func assertIdentical(t *testing.T, label string, cold, warm *System) {
	t.Helper()
	if c, w := cold.Eng.Now(), warm.Eng.Now(); c != w {
		t.Errorf("%s: cycles: cold %d, warm %d", label, c, w)
	}
	if c, w := cold.Eng.Fired(), warm.Eng.Fired(); c != w {
		t.Errorf("%s: events fired: cold %d, warm %d", label, c, w)
	}
	if c, w := cold.Eng.Scheduled(), warm.Eng.Scheduled(); c != w {
		t.Errorf("%s: events scheduled: cold %d, warm %d", label, c, w)
	}
	if c, w := cold.Bus.Stats(), warm.Bus.Stats(); c != w {
		t.Errorf("%s: EIB stats diverge:\ncold %+v\nwarm %+v", label, c, w)
	}
	for i := range cold.SPEs {
		if c, w := cold.SPEs[i].MFC().Stats(), warm.SPEs[i].MFC().Stats(); c != w {
			t.Errorf("%s: SPE%d MFC stats: cold %+v, warm %+v", label, i, c, w)
		}
		if c, w := cold.SPEs[i].MFC().OccupancyHist(), warm.SPEs[i].MFC().OccupancyHist(); !reflect.DeepEqual(c, w) {
			t.Errorf("%s: SPE%d occupancy histogram: cold %v, warm %v", label, i, c, w)
		}
	}
	if !reflect.DeepEqual(cold.Perf(), warm.Perf()) {
		t.Errorf("%s: perf counters diverge:\ncold %+v\nwarm %+v", label, cold.Perf(), warm.Perf())
	}
}

// runClone runs one cloned system to completion with counters on.
func runClone(t *testing.T, sys *System) {
	t.Helper()
	sys.SetPerf(&perfctr.Counters{})
	if err := sys.RunChecked(0); err != nil {
		t.Fatalf("clone run: %v", err)
	}
}

// TestSnapshotCloneMatchesCold is the tentpole differential: for every
// snapshot-capable canonical scenario, a system stamped from a recycled
// carcass must be observationally identical to a cold boot — including
// when the carcass previously ran a *different* grid point (other chunk,
// other layout), which is exactly the sweep's reuse pattern.
func TestSnapshotCloneMatchesCold(t *testing.T) {
	scenarios := []Scenario{
		{Kind: "pair", Chunk: 1024, Volume: 256 << 10},
		{Kind: "pair", Chunk: 16384, Volume: 256 << 10},
		{Kind: "couples", SPEs: 4, Chunk: 4096, Volume: 128 << 10},
		{Kind: "cycle", SPEs: 8, Chunk: 2048, Volume: 128 << 10},
	}
	for _, sc := range scenarios {
		t.Run(fmt.Sprintf("%s-%d", sc.Kind, sc.Chunk), func(t *testing.T) {
			tpl := New(DefaultConfig())
			if _, err := sc.Install(tpl); err != nil {
				t.Fatalf("install template: %v", err)
			}
			snap, err := tpl.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}

			// First clone cold-boots (arena empty); retire it so the next
			// clones are stamped from a used carcass — the path under test.
			warmup, _, err := snap.Clone()
			if err != nil {
				t.Fatalf("clone: %v", err)
			}
			runClone(t, warmup)
			snap.Retire(warmup)
			if snap.ArenaLen() != 1 {
				t.Fatalf("arena holds %d carcasses, want 1", snap.ArenaLen())
			}

			// Same grid point from the recycled carcass.
			same, _, err := snap.Clone()
			if err != nil {
				t.Fatalf("clone from carcass: %v", err)
			}
			runClone(t, same)
			assertIdentical(t, "same-point", coldRun(t, DefaultConfig(), sc), same)
			snap.Retire(same)

			// A different grid point — new chunk and a randomized layout —
			// from a carcass that ran the old one.
			cfg := snap.Config()
			cfg.Layout = RandomLayout(7)
			chunk := sc.Chunk / 2
			diff, _, err := snap.CloneFor(cfg, chunk)
			if err != nil {
				t.Fatalf("clone variant: %v", err)
			}
			runClone(t, diff)
			refCfg := DefaultConfig()
			refCfg.Layout = RandomLayout(7)
			refSc := sc
			refSc.Chunk = chunk
			assertIdentical(t, "variant-point", coldRun(t, refCfg, refSc), diff)
		})
	}
}

// TestSnapshotGates pins the refusals: snapshots are only valid at the
// install boundary of a reified-stream scenario.
func TestSnapshotGates(t *testing.T) {
	// No scenario installed.
	if _, err := New(DefaultConfig()).Snapshot(); !errors.Is(err, ErrNotSnapshottable) {
		t.Errorf("bare system: got %v, want ErrNotSnapshottable", err)
	}
	// Coroutine kernels (DMA-list variant).
	sys := New(DefaultConfig())
	if _, err := (Scenario{Kind: "pair", Chunk: 4096, Volume: 64 << 10, List: true}).Install(sys); err != nil {
		t.Fatalf("install: %v", err)
	}
	if _, err := sys.Snapshot(); !errors.Is(err, ErrNotSnapshottable) {
		t.Errorf("list scenario: got %v, want ErrNotSnapshottable", err)
	}
	// Already run.
	sys = New(DefaultConfig())
	if _, err := (Scenario{Kind: "pair", Chunk: 4096, Volume: 64 << 10}).Install(sys); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := sys.RunChecked(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := sys.Snapshot(); !errors.Is(err, ErrNotSnapshottable) {
		t.Errorf("finished system: got %v, want ErrNotSnapshottable", err)
	}
}

// TestSnapshotCloneConcurrent clones one snapshot from many goroutines at
// once (run under -race in CI): the arena must serialize hand-outs and
// every concurrently produced result must equal the cold reference.
func TestSnapshotCloneConcurrent(t *testing.T) {
	sc := Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: 64 << 10}
	tpl := New(DefaultConfig())
	if _, err := sc.Install(tpl); err != nil {
		t.Fatalf("install: %v", err)
	}
	snap, err := tpl.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ref := coldRun(t, DefaultConfig(), sc)

	const workers, rounds = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sys, _, err := snap.Clone()
				if err != nil {
					errs <- err
					return
				}
				sys.SetPerf(&perfctr.Counters{})
				if err := sys.RunChecked(0); err != nil {
					errs <- err
					return
				}
				if sys.Eng.Now() != ref.Eng.Now() || sys.Bus.Stats() != ref.Bus.Stats() {
					errs <- fmt.Errorf("concurrent clone diverged: %d cycles vs %d", sys.Eng.Now(), ref.Eng.Now())
					return
				}
				snap.Retire(sys)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
