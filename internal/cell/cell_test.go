package cell

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"cellbe/internal/eib"
	"cellbe/internal/mfc"
	"cellbe/internal/ppe"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
)

func TestDefaultSystemWiring(t *testing.T) {
	s := New(DefaultConfig())
	if len(s.SPEs) != NumSPEs {
		t.Fatalf("%d SPEs, want %d", len(s.SPEs), NumSPEs)
	}
	for i, sp := range s.SPEs {
		if sp.Index() != i {
			t.Fatalf("SPE %d has index %d", i, sp.Index())
		}
		if sp.Ramp() != eib.PhysicalSPERamp(i) {
			t.Fatalf("identity layout: SPE %d on ramp %v", i, sp.Ramp())
		}
	}
}

func TestRandomLayoutIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		l := RandomLayout(seed)
		if len(l) != NumSPEs {
			return false
		}
		seen := make(map[int]bool)
		for _, p := range l {
			if p < 0 || p >= NumSPEs || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Seed 0 is identity; two different seeds usually differ.
	id := RandomLayout(0)
	for i, p := range id {
		if p != i {
			t.Fatal("seed 0 must be the identity layout")
		}
	}
}

func TestBadLayoutPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = []int{0, 1, 2, 3, 4, 5, 6, 6}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate layout entry should panic")
		}
	}()
	New(cfg)
}

func TestLSEAMapping(t *testing.T) {
	s := New(DefaultConfig())
	ea := s.LSEA(3, 0x100)
	logical, off, ok := s.resolveLS(ea)
	if !ok || logical != 3 || off != 0x100 {
		t.Fatalf("resolveLS(%#x) = %d,%#x,%v", ea, logical, off, ok)
	}
	if _, _, ok := s.resolveLS(12345); ok {
		t.Fatal("RAM address must not resolve as LS")
	}
}

func TestAllocAlignment(t *testing.T) {
	s := New(DefaultConfig())
	a := s.Alloc(100, 128)
	b := s.Alloc(100, 4096)
	if a%128 != 0 || b%4096 != 0 || b <= a {
		t.Fatalf("bad allocations %#x %#x", a, b)
	}
}

func TestGBps(t *testing.T) {
	s := New(DefaultConfig())
	// 16 bytes per cycle at 2.1 GHz = 33.6 GB/s.
	if got := s.GBps(16000, 1000); got != 33.6 {
		t.Fatalf("GBps = %v, want 33.6", got)
	}
	if s.GBps(1, 0) != 0 {
		t.Fatal("zero cycles must yield 0")
	}
}

func TestDMAGetFromMemory(t *testing.T) {
	s := New(DefaultConfig())
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	addr := s.Alloc(4096, 128)
	s.Mem.RAM().Write(addr, payload)

	sp := s.SPEs[0]
	sp.Run("getter", func(ctx *spe.Context) {
		ctx.Get(0, addr, 4096, 1)
		ctx.WaitTag(1)
	})
	s.Run()
	if !bytes.Equal(sp.LS()[:4096], payload) {
		t.Fatal("DMA GET payload mismatch")
	}
}

func TestDMAPutToMemory(t *testing.T) {
	s := New(DefaultConfig())
	sp := s.SPEs[2]
	copy(sp.LS(), []byte("payload via MFC put"))
	addr := s.Alloc(128, 128)
	sp.Run("putter", func(ctx *spe.Context) {
		ctx.Put(0, addr, 128, 0)
		ctx.WaitTag(0)
	})
	s.Run()
	got := make([]byte, 19)
	s.Mem.RAM().Read(addr, got)
	if string(got) != "payload via MFC put" {
		t.Fatalf("memory holds %q", got)
	}
}

func TestDMASPEToSPE(t *testing.T) {
	s := New(DefaultConfig())
	src := s.SPEs[1]
	for i := 0; i < 1024; i++ {
		src.LS()[i] = byte(i ^ 0x5a)
	}
	dst := s.SPEs[6]
	dst.Run("puller", func(ctx *spe.Context) {
		ctx.Get(2048, s.LSEA(1, 0), 1024, 5)
		ctx.WaitTag(5)
	})
	s.Run()
	if !bytes.Equal(dst.LS()[2048:2048+1024], src.LS()[:1024]) {
		t.Fatal("SPE-to-SPE GET payload mismatch")
	}
}

func TestDMARoundTripThroughMemory(t *testing.T) {
	// SPE 0 PUTs to memory; SPE 1 GETs it after a mailbox handshake.
	s := New(DefaultConfig())
	addr := s.Alloc(2048, 128)
	a, b := s.SPEs[0], s.SPEs[1]
	for i := 0; i < 2048; i++ {
		a.LS()[i] = byte(3 * i)
	}
	a.Run("producer", func(ctx *spe.Context) {
		ctx.Put(0, addr, 2048, 0)
		ctx.WaitTag(0)
		b.Inbox.Write(ctx.Process, 1) // signal ready
	})
	b.Run("consumer", func(ctx *spe.Context) {
		if v := ctx.ReadMailbox(); v != 1 {
			t.Errorf("mailbox value %d", v)
		}
		ctx.Get(0, addr, 2048, 0)
		ctx.WaitTag(0)
	})
	s.Run()
	if !bytes.Equal(b.LS()[:2048], a.LS()[:2048]) {
		t.Fatal("round trip payload mismatch")
	}
}

func TestLayoutChangesRamps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = RandomLayout(7)
	s := New(cfg)
	identity := true
	for i, sp := range s.SPEs {
		if sp.Ramp() != eib.PhysicalSPERamp(i) {
			identity = false
		}
	}
	if identity {
		t.Fatal("seed 7 layout should permute ramps")
	}
}

func TestPPEKernelRunsOverEIB(t *testing.T) {
	s := New(DefaultConfig())
	addr := s.Alloc(1<<20, 128)
	s.PPE.Spawn(0, "stream", func(th *ppe.Thread) {
		th.StreamLoad(addr, 1<<20, 8)
	})
	s.Run()
	if s.PPE.Stats().L2Misses == 0 {
		t.Fatal("a 1MB stream must miss L2")
	}
	if s.Bus.Stats().Transfers == 0 {
		t.Fatal("PPE line fills must travel over the EIB")
	}
	if s.Mem.BankStats(0).ReadBytes == 0 || s.Mem.BankStats(1).ReadBytes == 0 {
		t.Fatal("interleaved allocation must hit both banks")
	}
}

func TestNoiseInjection(t *testing.T) {
	run := func(noise bool) int64 {
		cfg := DefaultConfig()
		if noise {
			cfg.NoiseEvery = 2000
			cfg.NoiseCycles = 400
		}
		s := New(cfg)
		addr := s.Alloc(1<<20, 128)
		var cycles int64
		s.PPE.Spawn(0, "stream", func(th *ppe.Thread) {
			start := th.Now()
			th.StreamLoad(addr, 1<<20, 8)
			cycles = int64(th.Now() - start)
		})
		s.Run()
		return cycles
	}
	quiet := run(false)
	noisy := run(true)
	if noisy <= quiet {
		t.Fatalf("noise injection must slow the PPE stream: %d vs %d", noisy, quiet)
	}
}

func TestDMASPEToSPEWrite(t *testing.T) {
	// Active SPE PUTs into a passive SPE's local store (the paper's pair
	// experiment write direction), exercising the LS write fabric path.
	s := New(DefaultConfig())
	src := s.SPEs[4]
	for i := 0; i < 512; i++ {
		src.LS()[i] = byte(200 - i)
	}
	src.Run("pusher", func(ctx *spe.Context) {
		ctx.Put(0, s.LSEA(7, 8192), 512, 2)
		ctx.WaitTag(2)
	})
	s.Run()
	if !bytes.Equal(s.SPEs[7].LS()[8192:8192+512], src.LS()[:512]) {
		t.Fatal("SPE-to-SPE PUT payload mismatch")
	}
}

func TestProxyDMAFromPPESide(t *testing.T) {
	// The PPE-side proxy queue drives an SPE's MFC without SPU code: the
	// way a host runtime stages data before starting a kernel.
	s := New(DefaultConfig())
	addr := s.Alloc(1024, 128)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i ^ 0x33)
	}
	s.Mem.RAM().Write(addr, payload)
	done := false
	err := s.SPEs[3].MFC().EnqueueProxy(mfc.Cmd{Kind: mfc.Get, Tag: 0, LSAddr: 0, EA: addr, Size: 1024}, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !done || !bytes.Equal(s.SPEs[3].LS()[:1024], payload) {
		t.Fatal("proxy GET did not stage the payload")
	}
}

func TestConfigAndLayoutAccessors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = RandomLayout(9)
	s := New(cfg)
	if got := s.Config(); got.ClockGHz != cfg.ClockGHz {
		t.Fatal("Config accessor mismatch")
	}
	l := s.Layout()
	l[0] = 99 // returned slice must be a copy
	if s.Layout()[0] == 99 {
		t.Fatal("Layout must return a defensive copy")
	}
}

func TestLSEABounds(t *testing.T) {
	s := New(DefaultConfig())
	for _, bad := range []struct{ spe, off int }{{-1, 0}, {8, 0}, {0, -1}, {0, spe.LocalStoreBytes}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LSEA(%d,%d) should panic", bad.spe, bad.off)
				}
			}()
			s.LSEA(bad.spe, bad.off)
		}()
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	s := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("allocating past RAM should panic")
		}
	}()
	s.Alloc(s.Config().Mem.TotalBytes+1, 128)
}

// Property: any aligned payload round-trips SPE LS -> memory -> another
// SPE LS through two chained DMAs.
func TestDMAChainProperty(t *testing.T) {
	f := func(seedByte uint8, sizeSel uint8) bool {
		sizes := []int{16, 128, 1024, 2048, 16384}
		size := sizes[int(sizeSel)%len(sizes)]
		s := New(DefaultConfig())
		addr := s.Alloc(int64(size), 128)
		a, b := s.SPEs[0], s.SPEs[5]
		for i := 0; i < size; i++ {
			a.LS()[i] = seedByte + byte(i*3)
		}
		a.Run("w", func(ctx *spe.Context) {
			ctx.Put(0, addr, size, 0)
			ctx.WaitTag(0)
			b.Inbox.Write(ctx.Process, 1)
		})
		b.Run("r", func(ctx *spe.Context) {
			ctx.ReadMailbox()
			ctx.Get(0, addr, size, 0)
			ctx.WaitTag(0)
		})
		s.Run()
		return bytes.Equal(b.LS()[:size], a.LS()[:size])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSignalNotification(t *testing.T) {
	// Two producers OR distinct bits into SPE 5's SNR0; the consumer
	// collects until both bits arrive (OR mode must not lose signals).
	s := New(DefaultConfig())
	target := s.SignalEA(5, 0)
	var got uint32
	s.SPEs[5].Run("consumer", func(ctx *spe.Context) {
		for got != 0b11 {
			got |= ctx.ReadSignal(0)
		}
	})
	for i, bit := range []uint32{0b01, 0b10} {
		i := i
		bit := bit
		s.SPEs[i].Run("producer", func(ctx *spe.Context) {
			ctx.Wait(sim.Time(100 * (i + 1)))
			ctx.Signal(target, bit, 0)
			ctx.WaitTag(0)
		})
	}
	s.Run()
	if got != 0b11 {
		t.Fatalf("SNR accumulated %#b, want 0b11", got)
	}
}

func TestTrySignalNonBlocking(t *testing.T) {
	s := New(DefaultConfig())
	var empty, full bool
	var v uint32
	s.SPEs[0].Run("k", func(ctx *spe.Context) {
		_, ok := ctx.TrySignal(1)
		empty = !ok
		ctx.Signal(s.SignalEA(0, 1), 42, 0) // signal self via the fabric
		ctx.WaitTag(0)
		v, full = ctx.TrySignal(1)
	})
	s.Run()
	if !empty || !full || v != 42 {
		t.Fatalf("TrySignal empty=%v full=%v v=%d", empty, full, v)
	}
}

func TestConfigClone(t *testing.T) {
	orig := DefaultConfig()
	orig.Layout = RandomLayout(3)
	orig.FaultSeed = 42

	c := orig.Clone()
	if !reflect.DeepEqual(c, orig) {
		t.Fatalf("clone differs from original:\n%+v\n%+v", c, orig)
	}
	// Layout is the config's only reference field; the clone must own its
	// own backing array so mutating one side never shows through the other.
	c.Layout[0], c.Layout[1] = c.Layout[1], c.Layout[0]
	if reflect.DeepEqual(c.Layout, orig.Layout) {
		t.Fatal("clone shares its Layout backing array with the original")
	}
	if n := (Config{}).Clone(); n.Layout != nil {
		t.Fatalf("cloning a nil Layout produced %v, want nil", n.Layout)
	}
}
