package cell

// The access-pattern layer: application workloads expressed as data.
//
// A Pattern is a small phase program — per-SPE DMA address streams
// (sequential, strided, seeded-random), SPE<->SPE neighbour exchange over
// a configurable ring, and compute/communicate alternation with per-phase
// byte volumes — interpreted by a single generic kernel. The named
// workload kinds (gups, qcd, md, stream) are presets that build a Pattern
// from the Scenario knobs; they add no kernel code of their own. The
// interpreter's Access switch in patternKernel is the only place phase
// semantics live.
//
// Workload lineage:
//   - gups:   random-access (RandomAccess/GUPS) gathers and scatters over
//     one shared table spanning both XDR banks, element sizes 8..128 B —
//     the access discipline Chen & Bader used to characterise Cell BE
//     irregular-access performance.
//   - qcd:    lattice-QCD inner loop à la Belletti et al., "QCD on the
//     Cell Broadband Engine": bulk spinor-field streaming plus
//     nearest-neighbour halo exchange around an SPE ring.
//   - md:     molecular-dynamics force loop: gather neighbour positions,
//     compute, scatter forces, repeated per timestep.
//   - stream: McCalpin STREAM (copy/scale/add/triad), reporting the
//     read+write bytes the STREAM convention counts.

import (
	"fmt"
	"math/rand"

	"cellbe/internal/mfc"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
)

// Phase is one step of a Pattern's per-rep program.
type Phase struct {
	// Access selects the address discipline: "seq" (a cursor walking the
	// region), "stride" (cursor advancing Stride bytes per element),
	// "rand" (seeded-random element slots over the region), "ring"
	// (halo exchange with the two ring neighbours' local stores) or
	// "compute" (SPU busy cycles, no traffic).
	Access string `json:"access"`
	// Op directs memory phases: "get", "put" or "both" (a get and a put
	// per element, the copy discipline). Ring and compute phases take no
	// Op.
	Op string `json:"op,omitempty"`
	// Bytes is the per-SPE payload this phase moves per rep (the halo
	// width for ring phases). Must be a positive multiple of the
	// scenario chunk.
	Bytes int64 `json:"bytes,omitempty"`
	// Stride is the address step in bytes between consecutive elements
	// of a "stride" phase; a positive multiple of the chunk.
	Stride int64 `json:"stride,omitempty"`
	// Cycles is the SPU busy time of a "compute" phase.
	Cycles int64 `json:"cycles,omitempty"`
	// Async leaves the phase's DMA in flight instead of fencing on its
	// tags at the phase boundary; the next synchronous phase (or the end
	// of the kernel) collects it. This is how stream add/triad overlap
	// their second input stream with the copy stream.
	Async bool `json:"async,omitempty"`
}

// Pattern is a declarative per-SPE workload: the phase program every
// active SPE runs Reps times over a memory region.
type Pattern struct {
	Phases []Phase `json:"phases"`
	// Reps repeats the phase program; 0 means 1.
	Reps int `json:"reps,omitempty"`
	// Region is the per-SPE (or shared, see Shared) memory window in
	// bytes that seq/stride/rand phases address. Required when any
	// memory phase exists; at least one chunk.
	Region int64 `json:"region,omitempty"`
	// RingStep is the neighbour distance of ring phases; 0 means 1.
	RingStep int `json:"ring_step,omitempty"`
	// Shared makes all lanes address one shared region (the GUPS table)
	// instead of a private region per SPE.
	Shared bool `json:"shared,omitempty"`
}

// Architectural and sanity caps for explicit phase programs; the presets
// stay far inside them by construction.
const (
	maxPatternPhases = 16
	maxPatternReps   = 1 << 16
	maxPatternRegion = 64 << 20
	maxPhaseBytes    = 1 << 30
	maxComputeCycles = 1 << 32
)

// Preset region sizes. The GUPS table deliberately spans many XDR pages
// so the interleaved mapping spreads random elements over both banks; the
// MD window models a neighbour-list slab.
const (
	gupsRegionBytes = 16 << 20
	mdRegionBytes   = 4 << 20
)

// workloadPreset describes one named workload: which ops it accepts
// (ops[0] is the default for an empty Scenario.Op), its chunk envelope,
// and the builder producing its Pattern from the Scenario knobs.
type workloadPreset struct {
	ops      []string
	minChunk int
	maxChunk int
	build    func(sc Scenario) Pattern
}

// workloadPresets is the workload library. Adding a workload means adding
// a row here — the interpreter below is workload-agnostic.
var workloadPresets = map[string]workloadPreset{
	"gups":   {ops: []string{"both", "get", "put"}, minChunk: 8, maxChunk: 128, build: gupsPattern},
	"qcd":    {ops: []string{""}, minChunk: 16, maxChunk: mfc.MaxTransfer, build: qcdPattern},
	"md":     {ops: []string{""}, minChunk: 16, maxChunk: mfc.MaxTransfer, build: mdPattern},
	"stream": {ops: []string{"triad", "copy", "scale", "add"}, minChunk: 16, maxChunk: mfc.MaxTransfer, build: streamPattern},
}

// patternFamily reports whether the scenario runs on the pattern
// interpreter: a named workload preset or an explicit "pattern" program.
func (sc Scenario) patternFamily() bool {
	_, ok := workloadPresets[sc.Kind]
	return ok || sc.Kind == "pattern"
}

// WithDefaultOp returns sc with an empty Op replaced by the kind's
// default operation: "get" for the canonical kinds (preserving the
// historical sweep default), the preset's first op for workload kinds,
// and no op for explicit patterns (their phases carry the ops).
// Validate itself stays strict, so callers constructing scenarios by
// hand still fail loudly on a missing op.
func (sc Scenario) WithDefaultOp() Scenario {
	if sc.Op != "" {
		return sc
	}
	if p, ok := workloadPresets[sc.Kind]; ok {
		sc.Op = p.ops[0]
		return sc
	}
	if sc.Kind != "pattern" {
		sc.Op = "get"
	}
	return sc
}

// roundToChunk rounds v up to a whole number of chunks, at least one.
func roundToChunk(v int64, chunk int) int64 {
	c := int64(chunk)
	if v < c {
		return c
	}
	return (v + c - 1) / c * c
}

// regionOf floors a nominal region size to whole chunks (at least one),
// so every element slot lies fully inside the window.
func regionOf(bytes int64, chunk int) int64 {
	c := int64(chunk)
	n := bytes / c * c
	if n < c {
		n = c
	}
	return n
}

// gupsPattern: one seeded-random phase over a shared 16 MB table. Op
// "both" issues a gather and a scatter per element (the RandomAccess
// read-modify-write); "get"/"put" isolate one direction.
func gupsPattern(sc Scenario) Pattern {
	return Pattern{
		Phases: []Phase{{Access: "rand", Op: sc.Op, Bytes: roundToChunk(sc.Volume, sc.Chunk)}},
		Region: regionOf(gupsRegionBytes, sc.Chunk),
		Shared: true,
	}
}

// qcdReps/qcdComputeDiv shape the qcd preset: four sweep iterations per
// run, with SPU compute time proportional to the bulk streamed per rep
// (about one cycle per 8 bytes — comparable to, not dwarfing, the DMA
// time, so compute/communicate alternation is visible in the timing).
const (
	qcdReps       = 4
	qcdComputeDiv = 8
)

// qcdPattern: per rep, stream a bulk spinor-field slab in, exchange a
// chunk-wide halo with both ring neighbours, compute, stream results
// out. The region spans the whole per-SPE field so the sequential cursor
// walks it across reps.
func qcdPattern(sc Scenario) Pattern {
	bulk := roundToChunk(sc.Volume/qcdReps, sc.Chunk)
	step := sc.Ring
	if step == 0 {
		step = 1
	}
	return Pattern{
		Phases: []Phase{
			{Access: "seq", Op: "get", Bytes: bulk},
			{Access: "ring", Bytes: int64(sc.Chunk)},
			{Access: "compute", Cycles: bulk / qcdComputeDiv},
			{Access: "seq", Op: "put", Bytes: bulk},
		},
		Reps:     qcdReps,
		Region:   bulk * qcdReps,
		RingStep: step,
	}
}

// mdReps/mdComputeDiv shape the md preset: four force-loop timesteps,
// compute-heavier than qcd (one cycle per 4 gathered bytes).
const (
	mdReps       = 4
	mdComputeDiv = 4
)

// mdPattern: per timestep, gather a slab of neighbour positions from
// random slots of a private window, compute forces, scatter them back.
func mdPattern(sc Scenario) Pattern {
	slab := roundToChunk(sc.Volume/(2*mdReps), sc.Chunk)
	return Pattern{
		Phases: []Phase{
			{Access: "rand", Op: "get", Bytes: slab},
			{Access: "compute", Cycles: slab / mdComputeDiv},
			{Access: "rand", Op: "put", Bytes: slab},
		},
		Reps:   mdReps,
		Region: regionOf(mdRegionBytes, sc.Chunk),
	}
}

// streamPhaseTable maps each STREAM op to its phase program; Bytes holds
// the array-length multiplier the builder scales by the scenario volume.
// Copy and scale stream one array in and one out ("both" = a get and a
// put per element); add and triad overlap a second asynchronous input
// stream, for three arrays total — the McCalpin byte-counting convention
// falls out of the accounting (both = 2x, ring = 2x).
var streamPhaseTable = map[string][]Phase{
	"copy":  {{Access: "seq", Op: "both", Bytes: 1}},
	"scale": {{Access: "seq", Op: "both", Bytes: 1}},
	"add":   {{Access: "seq", Op: "get", Bytes: 1, Async: true}, {Access: "seq", Op: "both", Bytes: 1}},
	"triad": {{Access: "seq", Op: "get", Bytes: 1, Async: true}, {Access: "seq", Op: "both", Bytes: 1}},
}

// streamPattern scales the op's phase table by the per-SPE array length.
func streamPattern(sc Scenario) Pattern {
	v := roundToChunk(sc.Volume, sc.Chunk)
	tpl := streamPhaseTable[sc.Op]
	phases := make([]Phase, len(tpl))
	for i, ph := range tpl {
		ph.Bytes *= v
		phases[i] = ph
	}
	return Pattern{Phases: phases, Region: v}
}

// pattern resolves the scenario's phase program: the preset builder for
// workload kinds, the explicit program for kind "pattern". Callers run
// it only after Validate.
func (sc Scenario) pattern() Pattern {
	if p, ok := workloadPresets[sc.Kind]; ok {
		return p.build(sc)
	}
	return *sc.Pattern
}

// reps returns the effective repetition count (0 means 1).
func (p Pattern) reps() int {
	if p.Reps < 1 {
		return 1
	}
	return p.Reps
}

// ringStep returns the effective neighbour distance (0 means 1).
func (p Pattern) ringStep() int {
	if p.RingStep < 1 {
		return 1
	}
	return p.RingStep
}

// hasRing/hasMem report which resources the program needs.
func (p Pattern) hasRing() bool {
	for _, ph := range p.Phases {
		if ph.Access == "ring" {
			return true
		}
	}
	return false
}

func (p Pattern) hasMem() bool {
	for _, ph := range p.Phases {
		switch ph.Access {
		case "seq", "stride", "rand":
			return true
		}
	}
	return false
}

// LaneBytes is the accounted payload one SPE moves over the whole run:
// actual DMA traffic in both directions (ring and "both" phases count
// twice — the STREAM read+write convention). Request validators use it
// to cap explicit phase programs the way Volume caps the presets.
func (p Pattern) LaneBytes() int64 {
	var per int64
	for _, ph := range p.Phases {
		switch {
		case ph.Access == "compute":
		case ph.Access == "ring" || ph.Op == "both":
			per += 2 * ph.Bytes
		default:
			per += ph.Bytes
		}
	}
	return per * int64(p.reps())
}

// validatePattern is the pattern-family arm of Scenario.Validate: it
// checks the scenario knobs against the preset envelope (or the explicit
// program against the architectural caps) and then the resolved Pattern
// itself. Every rejection wraps ErrBadScenario.
func (sc Scenario) validatePattern() error {
	if sc.List {
		return fmt.Errorf("cell: %w: workload kind %q has no DMA-list variant", ErrBadScenario, sc.Kind)
	}
	if sc.SPEs < 1 || sc.SPEs > NumSPEs {
		return fmt.Errorf("cell: %w: %d SPEs out of range 1..%d", ErrBadScenario, sc.SPEs, NumSPEs)
	}
	if sc.AddrSeeds != nil && len(sc.AddrSeeds) != sc.SPEs {
		return fmt.Errorf("cell: %w: %d address-stream seeds for %d SPEs (want one per SPE)", ErrBadScenario, len(sc.AddrSeeds), sc.SPEs)
	}
	preset, named := workloadPresets[sc.Kind]
	minChunk, maxChunk := 8, mfc.MaxTransfer
	if named {
		minChunk, maxChunk = preset.minChunk, preset.maxChunk
	}
	switch {
	case sc.Chunk == 8 && minChunk <= 8:
		// The sub-quadword GUPS element: a naturally aligned 8-byte DMA.
	case sc.Chunk >= 16 && sc.Chunk%16 == 0 && sc.Chunk >= minChunk && sc.Chunk <= maxChunk:
	default:
		return fmt.Errorf("cell: %w: chunk %d outside the %q element envelope (8 or a multiple of 16 in %d..%d)",
			ErrBadScenario, sc.Chunk, sc.Kind, minChunk, maxChunk)
	}
	if named {
		if sc.Pattern != nil {
			return fmt.Errorf("cell: %w: kind %q builds its own pattern; an explicit one needs kind \"pattern\"", ErrBadScenario, sc.Kind)
		}
		if sc.Volume <= 0 {
			return fmt.Errorf("cell: %w: volume must be positive", ErrBadScenario)
		}
		ok := false
		for _, op := range preset.ops {
			if sc.Op == op {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("cell: %w: op %q not valid for kind %q (want one of %q)", ErrBadScenario, sc.Op, sc.Kind, preset.ops)
		}
		if sc.Ring != 0 && sc.Kind != "qcd" {
			return fmt.Errorf("cell: %w: ring step is a qcd knob, not valid for kind %q", ErrBadScenario, sc.Kind)
		}
	} else {
		if sc.Pattern == nil {
			return fmt.Errorf("cell: %w: kind \"pattern\" needs an explicit phase program", ErrBadScenario)
		}
		if sc.Op != "" {
			return fmt.Errorf("cell: %w: kind \"pattern\" takes its ops from the phases, not a scenario op", ErrBadScenario)
		}
		if sc.Ring != 0 {
			return fmt.Errorf("cell: %w: kind \"pattern\" sets its ring step inside the pattern", ErrBadScenario)
		}
	}
	if sc.Kind == "qcd" {
		if sc.SPEs < 2 {
			return fmt.Errorf("cell: %w: the qcd ring needs at least 2 SPEs", ErrBadScenario)
		}
		if sc.Ring < 0 || sc.Ring >= sc.SPEs {
			return fmt.Errorf("cell: %w: ring step %d out of range 1..%d", ErrBadScenario, sc.Ring, sc.SPEs-1)
		}
	}
	return sc.pattern().validate(sc)
}

// validate checks a resolved phase program against the chunk and the
// architectural caps.
func (p Pattern) validate(sc Scenario) error {
	chunk := int64(sc.Chunk)
	if len(p.Phases) == 0 || len(p.Phases) > maxPatternPhases {
		return fmt.Errorf("cell: %w: pattern needs 1..%d phases, got %d", ErrBadScenario, maxPatternPhases, len(p.Phases))
	}
	if p.Reps < 0 || p.Reps > maxPatternReps {
		return fmt.Errorf("cell: %w: pattern reps %d out of range 0..%d", ErrBadScenario, p.Reps, maxPatternReps)
	}
	for i, ph := range p.Phases {
		switch ph.Access {
		case "compute":
			if ph.Cycles < 1 || ph.Cycles > maxComputeCycles {
				return fmt.Errorf("cell: %w: phase %d: compute needs positive cycles up to %d", ErrBadScenario, i, int64(maxComputeCycles))
			}
			if ph.Bytes != 0 || ph.Stride != 0 || ph.Op != "" {
				return fmt.Errorf("cell: %w: phase %d: compute moves no data (bytes, stride and op must be unset)", ErrBadScenario, i)
			}
		case "ring":
			if sc.SPEs < 2 {
				return fmt.Errorf("cell: %w: phase %d: ring exchange needs at least 2 SPEs", ErrBadScenario, i)
			}
			if p.RingStep < 0 || p.RingStep >= sc.SPEs {
				return fmt.Errorf("cell: %w: ring step %d out of range 1..%d", ErrBadScenario, p.RingStep, sc.SPEs-1)
			}
			if ph.Op != "" {
				return fmt.Errorf("cell: %w: phase %d: ring exchange is bidirectional, takes no op", ErrBadScenario, i)
			}
			if err := checkPhaseBytes(i, ph.Bytes, chunk); err != nil {
				return err
			}
		case "seq", "stride", "rand":
			switch ph.Op {
			case "get", "put", "both":
			default:
				return fmt.Errorf("cell: %w: phase %d: op %q (want get, put or both)", ErrBadScenario, i, ph.Op)
			}
			if err := checkPhaseBytes(i, ph.Bytes, chunk); err != nil {
				return err
			}
			if ph.Access == "stride" {
				if ph.Stride < chunk || ph.Stride%chunk != 0 {
					return fmt.Errorf("cell: %w: phase %d: stride %d must be a positive multiple of the %d-byte chunk", ErrBadScenario, i, ph.Stride, chunk)
				}
			} else if ph.Stride != 0 {
				return fmt.Errorf("cell: %w: phase %d: stride only applies to stride phases", ErrBadScenario, i)
			}
			if ph.Cycles != 0 {
				return fmt.Errorf("cell: %w: phase %d: cycles only apply to compute phases", ErrBadScenario, i)
			}
		default:
			return fmt.Errorf("cell: %w: phase %d: unknown access %q (want seq, stride, rand, ring or compute)", ErrBadScenario, i, ph.Access)
		}
	}
	if !p.hasMem() && !p.hasRing() {
		return fmt.Errorf("cell: %w: pattern moves no data; it needs at least one memory or ring phase", ErrBadScenario)
	}
	if p.hasMem() {
		if p.Region < chunk || p.Region%chunk != 0 || p.Region > maxPatternRegion {
			return fmt.Errorf("cell: %w: region %d must be a whole number of %d-byte chunks up to %d", ErrBadScenario, p.Region, chunk, int64(maxPatternRegion))
		}
	}
	return nil
}

func checkPhaseBytes(i int, bytes, chunk int64) error {
	if bytes < chunk || bytes%chunk != 0 || bytes > maxPhaseBytes {
		return fmt.Errorf("cell: %w: phase %d: %d bytes must be a whole number of %d-byte chunks up to %d", ErrBadScenario, i, bytes, chunk, int64(maxPhaseBytes))
	}
	return nil
}

// patternSeed derives the lane's address-stream seed: explicit AddrSeeds
// win; otherwise lanes get distinct fixed seeds (a golden-ratio stride)
// that depend only on the logical lane index — never on the layout — so
// relabeling SPEs cannot perturb the streams.
func patternSeed(sc Scenario, lane int) int64 {
	if len(sc.AddrSeeds) > 0 {
		return sc.AddrSeeds[lane]
	}
	return int64(uint64(lane+1) * 0x9E3779B97F4A7C15)
}

// installPattern wires the resolved phase program onto sys: one region
// allocation (shared or per lane) and one interpreter coroutine per
// active SPE, accounted through the same spawn helper as the canonical
// kinds.
func (sc Scenario) installPattern(sys *System, spawn func(idx int, bytes int64, kernel func(ctx *spe.Context))) error {
	pat := sc.pattern()
	var shared int64
	var err error
	if pat.hasMem() && pat.Shared {
		if shared, err = sys.TryAlloc(pat.Region, 1<<16); err != nil {
			return err
		}
	}
	per := pat.LaneBytes()
	for lane := 0; lane < sc.SPEs; lane++ {
		base := shared
		if pat.hasMem() && !pat.Shared {
			if base, err = sys.TryAlloc(pat.Region, 1<<16); err != nil {
				return err
			}
		}
		spawn(lane, per, patternKernel(sys, sc, pat, lane, base))
	}
	return nil
}

// patternKernel returns the generic interpreter coroutine for one lane.
// The Access switch below is the pattern interpreter — the one place
// phase semantics are executed; workloads above it are pure data.
func patternKernel(sys *System, sc Scenario, pat Pattern, lane int, base int64) func(ctx *spe.Context) {
	chunk := sc.Chunk
	slots := pairSlots(chunk)
	var leftEA, rightEA int64
	if pat.hasRing() {
		step := pat.ringStep()
		left := ((lane-step)%sc.SPEs + sc.SPEs) % sc.SPEs
		right := (lane + step) % sc.SPEs
		// Pull the halo from the left neighbour's receive aperture; push
		// ours into the right neighbour's send aperture. Slots cycle, so
		// every address stays inside the 256 KB local store.
		leftEA = sys.LSEA(left, pairGetBase)
		rightEA = sys.LSEA(right, pairPutBase)
	}
	var nSlots int64
	if pat.Region > 0 {
		nSlots = pat.Region / int64(chunk)
	}
	seed := patternSeed(sc, lane)
	reps := pat.reps()
	return func(ctx *spe.Context) {
		var rng *rand.Rand
		cursors := make([]int64, len(pat.Phases))
		gslot, pslot := 0, 0
		var pending uint32
		for rep := 0; rep < reps; rep++ {
			for i, ph := range pat.Phases {
				switch ph.Access {
				case "compute":
					ctx.Wait(sim.Time(ph.Cycles))
				case "ring":
					for n := int64(0); n < ph.Bytes; n += int64(chunk) {
						gs := gslot % slots
						gslot++
						ps := pslot % slots
						pslot++
						ctx.Get(pairGetBase+gs*chunk, leftEA+int64(gs*chunk), chunk, 0)
						ctx.Put(pairPutBase+ps*chunk, rightEA+int64(ps*chunk), chunk, 1)
					}
					pending |= 1<<0 | 1<<1
				default: // seq, stride, rand over [base, base+Region)
					for n := int64(0); n < ph.Bytes; n += int64(chunk) {
						var slot int64
						switch ph.Access {
						case "rand":
							if rng == nil {
								rng = rand.New(rand.NewSource(seed))
							}
							slot = rng.Int63n(nSlots)
						case "stride":
							slot = cursors[i] % nSlots
							cursors[i] += ph.Stride / int64(chunk)
						default: // seq
							slot = cursors[i] % nSlots
							cursors[i]++
						}
						ea := base + slot*int64(chunk)
						if ph.Op != "put" {
							gs := gslot % slots
							gslot++
							ctx.Get(pairGetBase+gs*chunk, ea, chunk, 0)
							pending |= 1 << 0
						}
						if ph.Op != "get" {
							ps := pslot % slots
							pslot++
							ctx.Put(pairPutBase+ps*chunk, ea, chunk, 1)
							pending |= 1 << 1
						}
					}
				}
				if !ph.Async && pending != 0 {
					ctx.WaitTagMask(pending)
					pending = 0
				}
			}
		}
		if pending != 0 {
			ctx.WaitTagMask(pending)
		}
	}
}
