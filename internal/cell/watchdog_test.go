package cell

import (
	"errors"
	"strings"
	"testing"

	"cellbe/internal/fault"
	"cellbe/internal/sim"
)

// TestWedgeScenarioDiagnostic drives the deliberately deadlocked scenario
// and checks the watchdog's full contract: a typed *sim.DeadlockError
// naming every stuck SPE process.
func TestWedgeScenarioDiagnostic(t *testing.T) {
	sys := New(DefaultConfig())
	sc := Scenario{Kind: "wedge", SPEs: 4}
	if _, err := sc.Install(sys); err != nil {
		t.Fatalf("install: %v", err)
	}
	err := sys.RunChecked(0)
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *sim.DeadlockError, got %v", err)
	}
	for _, name := range []string{"spe0", "spe1", "spe2", "spe3"} {
		found := false
		for _, s := range de.Stuck {
			if s == name {
				found = true
			}
		}
		if !found {
			t.Errorf("stuck list %v missing %s", de.Stuck, name)
		}
	}
}

// TestCycleBudgetDiagnostic wedges a healthy scenario on an impossible
// cycle budget and checks the MFC detail lines reach the diagnostic.
func TestCycleBudgetDiagnostic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 5000
	sys := New(cfg)
	sc := Scenario{Kind: "cycle", SPEs: 4, Chunk: 4096, Volume: 1 << 20}
	if _, err := sc.Install(sys); err != nil {
		t.Fatalf("install: %v", err)
	}
	err := sys.RunChecked(0) // 0 falls back to cfg.MaxCycles
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *sim.DeadlockError, got %v", err)
	}
	if !strings.Contains(err.Error(), "MFC") {
		t.Fatalf("diagnostic lacks MFC detail lines:\n%v", err)
	}
}

// TestFaultyRunConserves checks the conservation invariant under heavy
// fault injection: faults delay bytes but must never lose them, so
// RunChecked (which verifies per-tag requested == delivered at teardown)
// must succeed, with a fault count proving injection actually happened.
func TestFaultyRunConserves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.Config{
		MFCRetryRate:  0.05,
		XDRStallRate:  0.05,
		EIBSlowRate:   0.05,
		EIBOutageRate: 0.05,
		DoneDelayRate: 0.05,
	}
	cfg.FaultSeed = 11
	sys := New(cfg)
	sc := Scenario{Kind: "mem", SPEs: 4, Chunk: 4096, Volume: 1 << 20, Op: "copy"}
	if _, err := sc.Install(sys); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := sys.RunChecked(0); err != nil {
		t.Fatalf("faulty run must still conserve and complete: %v", err)
	}
	if sys.Faults().Stats().Total() == 0 {
		t.Fatal("no faults injected at 5% rates — injection is not wired")
	}
}

// TestFaultyRunSlower sanity-checks graceful degradation: the same
// scenario takes longer under injected faults than without them.
func TestFaultyRunSlower(t *testing.T) {
	run := func(fc fault.Config) sim.Time {
		cfg := DefaultConfig()
		cfg.Faults = fc
		cfg.FaultSeed = 3
		sys := New(cfg)
		sc := Scenario{Kind: "pair", SPEs: 2, Chunk: 4096, Volume: 1 << 20}
		if _, err := sc.Install(sys); err != nil {
			t.Fatalf("install: %v", err)
		}
		if err := sys.RunChecked(0); err != nil {
			t.Fatalf("run: %v", err)
		}
		return sys.Eng.Now()
	}
	healthy := run(fault.Config{})
	faulty := run(fault.Config{MFCRetryRate: 0.1, EIBSlowRate: 0.1})
	if faulty <= healthy {
		t.Fatalf("faulty run (%d cycles) not slower than healthy (%d cycles)", faulty, healthy)
	}
}

// TestTryAllocErrors pins the typed-error path for user-sized allocations.
func TestTryAllocErrors(t *testing.T) {
	sys := New(DefaultConfig())
	if _, err := sys.TryAlloc(0, 128); err == nil {
		t.Error("zero-size allocation must fail")
	}
	if _, err := sys.TryAlloc(sys.Config().Mem.TotalBytes+1, 128); err == nil {
		t.Error("oversize allocation must fail")
	}
	// An oversize mem scenario surfaces it as a clean install error.
	sc := Scenario{Kind: "mem", SPEs: 8, Chunk: 4096, Volume: 1 << 40, Op: "get"}
	if _, err := sc.Install(sys); err == nil || strings.Contains(err.Error(), "panic") {
		t.Errorf("oversize volume should fail cleanly, got %v", err)
	}
}
