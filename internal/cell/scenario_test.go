package cell

import (
	"strings"
	"testing"

	"cellbe/internal/spe"
)

func TestScenarioValidate(t *testing.T) {
	ok := []Scenario{
		{Kind: "pair", Chunk: 4096, Volume: 1 << 20},
		{Kind: "couples", SPEs: 8, Chunk: 16384, Volume: 1 << 20},
		{Kind: "cycle", SPEs: 3, Chunk: 128, Volume: 1 << 20},
		{Kind: "mem", SPEs: 4, Chunk: 16384, Volume: 1 << 20, Op: "copy"},
	}
	for _, sc := range ok {
		if err := sc.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", sc, err)
		}
	}
	bad := []struct {
		sc   Scenario
		want string
	}{
		{Scenario{Kind: "warp", Chunk: 4096, Volume: 1 << 20}, "unknown scenario"},
		{Scenario{Kind: "pair", Chunk: 100, Volume: 1 << 20}, "multiple of 16"},
		// The historic failure mode: an oversized -chunk used to march
		// put offsets past the end of local store mid-simulation; it must
		// be rejected up front with a clear message instead.
		{Scenario{Kind: "pair", Chunk: 128 << 10, Volume: 1 << 20}, "DMA element limit"},
		{Scenario{Kind: "pair", Chunk: 4096, Volume: 0}, "volume"},
		{Scenario{Kind: "couples", SPEs: 5, Chunk: 4096, Volume: 1 << 20}, "even"},
		{Scenario{Kind: "cycle", SPEs: 9, Chunk: 4096, Volume: 1 << 20}, "out of range"},
		{Scenario{Kind: "mem", SPEs: 4, Chunk: 4096, Volume: 1 << 20, Op: "swizzle"}, "unknown mem op"},
	}
	for _, tc := range bad {
		err := tc.sc.Validate()
		if err == nil {
			t.Errorf("%+v: expected error containing %q, got nil", tc.sc, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: error %q does not mention %q", tc.sc, err, tc.want)
		}
	}
}

// TestScenarioApertures pins the local-store layout of the pair kernels:
// the put aperture must hold the largest element's full slot rotation
// without overlapping the get aperture or running off the local store.
func TestScenarioApertures(t *testing.T) {
	for _, chunk := range []int{128, 1024, 4096, 16384} {
		slots := pairSlots(chunk)
		getEnd := pairGetBase + slots*chunk
		putEnd := pairPutBase + slots*chunk
		if getEnd > pairPutBase {
			t.Errorf("chunk %d: get aperture [%#x,%#x) overlaps put base %#x", chunk, pairGetBase, getEnd, pairPutBase)
		}
		if putEnd > spe.LocalStoreBytes {
			t.Errorf("chunk %d: put aperture ends at %#x, past local store end %#x", chunk, putEnd, spe.LocalStoreBytes)
		}
	}
}

func TestScenarioInstallRuns(t *testing.T) {
	for _, sc := range []Scenario{
		{Kind: "pair", Chunk: 4096, Volume: 64 << 10},
		{Kind: "couples", SPEs: 4, Chunk: 4096, Volume: 64 << 10},
		{Kind: "cycle", SPEs: 4, Chunk: 4096, Volume: 64 << 10},
		{Kind: "mem", SPEs: 2, Chunk: 16384, Volume: 64 << 10, Op: "get"},
	} {
		sys := New(DefaultConfig())
		total, err := sc.Install(sys)
		if err != nil {
			t.Fatalf("%s: %v", sc.Kind, err)
		}
		if total <= 0 {
			t.Fatalf("%s: nonpositive accounted volume %d", sc.Kind, total)
		}
		sys.Run()
		if sys.Eng.Now() <= 0 {
			t.Fatalf("%s: simulation did not advance", sc.Kind)
		}
		if st := sys.Bus.Stats(); st.Transfers == 0 {
			t.Fatalf("%s: no EIB transfers happened", sc.Kind)
		}
	}
}

func TestScenarioInstallRejectsInvalid(t *testing.T) {
	sys := New(DefaultConfig())
	if _, err := (Scenario{Kind: "pair", Chunk: 48 << 10, Volume: 1 << 20}).Install(sys); err == nil {
		t.Fatal("expected oversized chunk to be rejected before any kernel ran")
	}
	if sys.Eng.Pending() != 0 {
		t.Fatal("rejected scenario left events scheduled")
	}
}
