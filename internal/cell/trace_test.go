package cell

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cellbe/internal/ppe"
	"cellbe/internal/trace"
)

// tracedRun builds a system with a MaskAll tracer attached, installs the
// scenario and runs it to completion, returning the tracer.
func tracedRun(t *testing.T, sc Scenario, layoutSeed int64) *trace.Tracer {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Layout = RandomLayout(layoutSeed)
	sys := New(cfg)
	tr := trace.New(1<<20, trace.MaskAll)
	sys.SetTracer(tr)
	if _, err := sc.Install(sys); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunChecked(0); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestPerfettoGolden pins the exporter's byte-exact output for a tiny pair
// scenario. The simulation is deterministic and the exporter sorts tracks
// and lanes explicitly, so any diff here is a real format or scheduling
// change. Regenerate with: UPDATE_GOLDEN=1 go test ./internal/cell -run Golden
func TestPerfettoGolden(t *testing.T) {
	tr := tracedRun(t, Scenario{Kind: "pair", SPEs: 2, Chunk: 4096, Volume: 8192}, 3)
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_pair.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got := buf.Bytes()
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		clip := func(b []byte) []byte {
			if hi < len(b) {
				return b[lo:hi]
			}
			return b[lo:]
		}
		t.Fatalf("trace output diverges from %s at byte %d:\n got ...%q...\nwant ...%q...\n(regenerate with UPDATE_GOLDEN=1 if the change is intended)",
			golden, i, clip(got), clip(want))
	}
}

// TestDMASpansNestInTagGroups checks the structural invariant that makes
// the trace readable: every per-command DMA span lies inside the lifetime
// of its tag group (first enqueue of the tag to last completion) on the
// same SPE.
func TestDMASpansNestInTagGroups(t *testing.T) {
	tr := tracedRun(t, Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: 64 << 10}, 3)

	type tagSpan struct{ start, end int64 }
	// groups[spe][tag] collects every tag-group span of that tag.
	groups := map[trace.Track]map[int64][]tagSpan{}
	for _, ev := range tr.Events() {
		if ev.Kind != trace.KindTag {
			continue
		}
		m := groups[ev.Track]
		if m == nil {
			m = map[int64][]tagSpan{}
			groups[ev.Track] = m
		}
		m[ev.A] = append(m[ev.A], tagSpan{int64(ev.Start), int64(ev.End)})
	}

	dmas, nested := 0, 0
	for spe := 0; spe < NumSPEs; spe++ {
		tagTrack := trace.TagTrack(spe)
		for _, ev := range tr.Events() {
			if ev.Kind != trace.KindDMA || ev.Track != trace.MFCTrack(spe) {
				continue
			}
			dmas++
			for _, ts := range groups[tagTrack][ev.B] {
				if ts.start <= int64(ev.Start) && int64(ev.End) <= ts.end {
					nested++
					break
				}
			}
		}
	}
	if dmas == 0 {
		t.Fatal("cycle run produced no DMA events")
	}
	if nested != dmas {
		t.Fatalf("%d of %d DMA spans are not contained in any same-tag group span", dmas-nested, dmas)
	}
}

// TestSegmentReservationsDontOverlap checks the EIB model's exclusivity
// invariant as observed through the trace: a ring segment carries at most
// one transfer at a time, so per segment track the reservation spans must
// never overlap.
func TestSegmentReservationsDontOverlap(t *testing.T) {
	tr := tracedRun(t, Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: 64 << 10}, 3)

	bySeg := map[trace.Track][]trace.Event{}
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindSegment {
			bySeg[ev.Track] = append(bySeg[ev.Track], ev)
		}
	}
	if len(bySeg) == 0 {
		t.Fatal("cycle run produced no segment reservations")
	}
	for track, evs := range bySeg {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Start != evs[j].Start {
				return evs[i].Start < evs[j].Start
			}
			return evs[i].End < evs[j].End
		})
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End {
				t.Fatalf("track %v: reservation [%d,%d) overlaps previous [%d,%d)",
					track, evs[i].Start, evs[i].End, evs[i-1].Start, evs[i-1].End)
			}
		}
	}
}

// TestMemScenarioEmitsBankEvents: streaming against main memory must show
// up as busy windows on the XDR bank tracks.
func TestMemScenarioEmitsBankEvents(t *testing.T) {
	tr := tracedRun(t, Scenario{Kind: "mem", SPEs: 2, Chunk: 4096, Volume: 64 << 10, Op: "get"}, 1)
	banks, bytes := 0, int64(0)
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindBank {
			banks++
			bytes += ev.A
		}
	}
	if banks == 0 || bytes == 0 {
		t.Fatalf("mem run produced %d bank events covering %d bytes, want both > 0", banks, bytes)
	}
}

// TestPPEStreamEmitsFills: a PPE streaming load must emit cache-line fill
// spans and miss-queue counter samples.
func TestPPEStreamEmitsFills(t *testing.T) {
	sys := New(DefaultConfig())
	tr := trace.New(1<<16, trace.MaskAll)
	sys.SetTracer(tr)
	base := sys.Alloc(1<<16, 128)
	sys.PPE.Spawn(0, "load", func(th *ppe.Thread) {
		th.StreamLoad(base, 1<<16, 8)
	})
	if err := sys.RunChecked(0); err != nil {
		t.Fatal(err)
	}
	fills, counters := 0, 0
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindFill:
			fills++
			if ev.Track != trace.TrackPPE {
				t.Fatalf("fill event on track %v, want PPE track", ev.Track)
			}
		case trace.KindCounter:
			counters++
		}
	}
	if fills == 0 || counters == 0 {
		t.Fatalf("PPE stream produced %d fills and %d counter samples, want both > 0", fills, counters)
	}
}
