package cell

import (
	"fmt"

	"cellbe/internal/sim"
	"cellbe/internal/xdr"
)

// Lock-line reservation registry: the coherence point of the machine.
// GETLLAR places a reservation on a 128-byte line for one SPE; any write
// to the line — DMA from any SPE, a PPE writeback, or a winning PUTLLC —
// kills every reservation on it. This is what makes SPE spinlocks and
// atomic counters work on real Cell hardware.

type reservations struct {
	byLine map[int64]map[int]bool // line address -> reserving owners
}

func newReservations() *reservations {
	return &reservations{byLine: make(map[int64]map[int]bool)}
}

func (r *reservations) place(owner int, line int64) {
	set := r.byLine[line]
	if set == nil {
		set = make(map[int]bool)
		r.byLine[line] = set
	}
	set[owner] = true
}

func (r *reservations) holds(owner int, line int64) bool {
	return r.byLine[line][owner]
}

func (r *reservations) kill(line int64) {
	delete(r.byLine, line)
}

func lineOf(ea int64) int64 { return ea &^ (xdr.LineBytes - 1) }

// atomicLatency is the extra cost of the reservation bookkeeping relative
// to a plain line access.
const atomicLatency sim.Time = 20

// ReadLocked implements mfc.AtomicFabric: a line read plus a reservation.
func (f *fabric) ReadLocked(owner int, ea int64, earliest sim.Time, dst []byte, done func(end sim.Time)) {
	sys := f.sys
	if _, _, isLS := sys.resolveLS(ea); isLS {
		panic(fmt.Sprintf("cell: atomics require a main-memory EA, got LS address %#x", ea))
	}
	sys.Mem.Read(f.ramp, ea, xdr.LineBytes, earliest, dst, func(end sim.Time) {
		sys.resv.place(owner, lineOf(ea))
		fin := end + atomicLatency
		sys.Eng.AtCall(fin, done, fin)
	})
}

// CondWrite implements mfc.AtomicFabric: a conditional line store that
// succeeds only while the owner's reservation holds.
func (f *fabric) CondWrite(owner int, ea int64, earliest sim.Time, src []byte, done func(end sim.Time, ok bool)) {
	sys := f.sys
	if _, _, isLS := sys.resolveLS(ea); isLS {
		panic(fmt.Sprintf("cell: atomics require a main-memory EA, got LS address %#x", ea))
	}
	line := lineOf(ea)
	if !sys.resv.holds(owner, line) {
		// Lost reservation: fail fast after the command round trip.
		end := sys.Bus.Command(earliest) + atomicLatency
		sys.Eng.At(end, func() { done(end, false) })
		return
	}
	// The reservation is checked again at the coherence point when the
	// write lands (another write may race in between).
	sys.Mem.Write(f.ramp, ea, xdr.LineBytes, earliest, nil, func(end sim.Time) {
		ok := sys.resv.holds(owner, line)
		if ok {
			sys.Mem.RAM().Write(ea, src[:xdr.LineBytes])
		}
		sys.resv.kill(line) // success or failure, this attempt clears it
		fin := end + atomicLatency
		sys.Eng.At(fin, func() { done(fin, ok) })
	})
}
