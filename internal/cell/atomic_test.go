package cell

import (
	"encoding/binary"
	"testing"

	"cellbe/internal/spe"
)

func TestGetLLARPutLLCBasic(t *testing.T) {
	s := New(DefaultConfig())
	addr := s.Alloc(128, 128)
	s.Mem.RAM().Write(addr, []byte{42})
	var loaded byte
	var stored bool
	s.SPEs[0].Run("k", func(ctx *spe.Context) {
		ctx.GetLLAR(0, addr)
		loaded = ctx.SPE().LS()[0]
		ctx.SPE().LS()[0] = 43
		stored = ctx.PutLLC(0, addr)
	})
	s.Run()
	if loaded != 42 {
		t.Fatalf("getllar loaded %d, want 42", loaded)
	}
	if !stored {
		t.Fatal("uncontended putllc must succeed")
	}
	got := make([]byte, 1)
	s.Mem.RAM().Read(addr, got)
	if got[0] != 43 {
		t.Fatalf("memory holds %d after putllc, want 43", got[0])
	}
}

func TestPutLLCFailsAfterInterveningWrite(t *testing.T) {
	s := New(DefaultConfig())
	addr := s.Alloc(128, 128)
	a, b := s.SPEs[0], s.SPEs[1]
	var stored bool
	a.Run("reserver", func(ctx *spe.Context) {
		ctx.GetLLAR(0, addr)
		// Hand off to SPE1, which writes the line via ordinary DMA.
		b.Inbox.Write(ctx.Process, 1)
		ctx.ReadMailbox() // wait for the intervening write
		ctx.SPE().LS()[0] = 9
		stored = ctx.PutLLC(0, addr)
	})
	b.Run("intruder", func(ctx *spe.Context) {
		ctx.ReadMailbox()
		ctx.SPE().LS()[0] = 7
		ctx.Put(0, addr, 128, 0)
		ctx.WaitTag(0)
		a.Inbox.Write(ctx.Process, 1)
	})
	s.Run()
	if stored {
		t.Fatal("putllc must fail after an intervening DMA write to the line")
	}
	got := make([]byte, 1)
	s.Mem.RAM().Read(addr, got)
	if got[0] != 7 {
		t.Fatalf("memory holds %d, want the intruder's 7", got[0])
	}
}

func TestPutLLCWithoutReservationFails(t *testing.T) {
	s := New(DefaultConfig())
	addr := s.Alloc(128, 128)
	var stored bool
	s.SPEs[0].Run("k", func(ctx *spe.Context) {
		stored = ctx.PutLLC(0, addr)
	})
	s.Run()
	if stored {
		t.Fatal("putllc without a reservation must fail")
	}
}

func TestAtomicAdd32Contended(t *testing.T) {
	// All 8 SPEs increment one shared counter concurrently; the final
	// value must be exact — the fundamental mutual-exclusion property.
	s := New(DefaultConfig())
	addr := s.Alloc(128, 128)
	const perSPE = 25
	for i := 0; i < NumSPEs; i++ {
		s.SPEs[i].Run("adder", func(ctx *spe.Context) {
			for n := 0; n < perSPE; n++ {
				ctx.AtomicAdd32(addr, 1)
			}
		})
	}
	s.Run()
	got := make([]byte, 4)
	s.Mem.RAM().Read(addr, got)
	if v := binary.LittleEndian.Uint32(got); v != NumSPEs*perSPE {
		t.Fatalf("counter = %d, want %d (lost updates!)", v, NumSPEs*perSPE)
	}
}

func TestSpinlockMutualExclusion(t *testing.T) {
	// A non-atomic read-modify-write protected by the spinlock: without
	// mutual exclusion the interleaved DMA GET/PUT pairs would lose
	// updates.
	s := New(DefaultConfig())
	lock := s.Alloc(128, 128)
	counter := s.Alloc(128, 128)
	const perSPE = 10
	var inCritical int
	var maxInCritical int
	for i := 0; i < 4; i++ {
		s.SPEs[i].Run("locker", func(ctx *spe.Context) {
			for n := 0; n < perSPE; n++ {
				ctx.Lock(lock)
				inCritical++
				if inCritical > maxInCritical {
					maxInCritical = inCritical
				}
				// Plain (racy without the lock) increment via DMA.
				ctx.Get(1024, counter, 128, 1)
				ctx.WaitTag(1)
				ls := ctx.SPE().LS()
				v := binary.LittleEndian.Uint32(ls[1024:])
				ctx.Wait(50) // widen the race window
				binary.LittleEndian.PutUint32(ls[1024:], v+1)
				ctx.Put(1024, counter, 128, 1)
				ctx.WaitTag(1)
				inCritical--
				ctx.Unlock(lock)
			}
		})
	}
	s.Run()
	if maxInCritical != 1 {
		t.Fatalf("%d SPEs inside the critical section at once", maxInCritical)
	}
	got := make([]byte, 4)
	s.Mem.RAM().Read(counter, got)
	if v := binary.LittleEndian.Uint32(got); v != 4*perSPE {
		t.Fatalf("locked counter = %d, want %d", v, 4*perSPE)
	}
}

func TestAtomicsOnLSAddressPanics(t *testing.T) {
	s := New(DefaultConfig())
	s.SPEs[0].Run("k", func(ctx *spe.Context) {
		defer func() {
			if recover() == nil {
				t.Error("atomics on an LS EA should panic")
			}
			panic("rethrow")
		}()
		ctx.GetLLAR(0, s.LSEA(1, 0))
	})
	defer func() { recover() }()
	s.Run()
}
