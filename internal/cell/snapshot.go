package cell

import (
	"errors"
	"fmt"
	"sync"

	"cellbe/internal/sim"
)

// Snapshot is a warm-system factory captured from an installed (but not
// yet run) System: the template's configuration and scenario, plus an
// arena of retired system carcasses that clones are stamped from.
//
// The capture point is the install boundary — cycle 0, before any event
// fires. That is the only instant provably shared by every grid point of
// a sweep: the canonical scenarios randomize the SPE layout per seed, so
// two points' event histories diverge from the very first DMA command and
// no later prefix is common (measured directly: the fast-forward
// controller's digest matching finds zero recurring microstates across
// any pair of anchors; see DESIGN.md). At cycle 0 the shared warm state
// is exactly the boot image: all-zero local stores, empty timelines, the
// immutable route/path tables. Cloning therefore shares the *allocations*
// rather than mid-run state — a retired carcass keeps its grown timing
// wheel, EIB interval timelines, MFC queues and local stores, and a clone
// pointer-resets them (zeroing stores only over their recorded dirty
// spans) instead of cold-booting. Teardown of a grid point becomes
// Retire: a handful of slice-length resets instead of a garbage
// collection of megabytes.
//
// Exactness is enforced, not assumed: a cloned system must be
// observationally identical to cell.New + Scenario.Install, and the
// differential clone-vs-cold tests pin byte-identical sweep results,
// stats and perf counters for every canonical scenario.
type Snapshot struct {
	cfg   Config
	scen  Scenario
	total int64

	mu    sync.Mutex
	arena []*System
}

// ErrNotSnapshottable is wrapped by Snapshot rejections so callers can
// distinguish "this workload cannot use the warm path" (fall back to cold
// boots) from real failures.
var ErrNotSnapshottable = errors.New("scenario not snapshot-capable")

// Snapshot captures a warm-system factory from s. It must be called after
// Scenario.Install and before the system runs. Only reified stream
// scenarios (the pair-family element kernels) are snapshot-capable:
// coroutine kernels (DMA lists, mem streams, wedge) hold live goroutine
// state that a clone cannot re-materialize, and remote-chip scenarios pin
// buffers outside the recycled carcass.
func (s *System) Snapshot() (*Snapshot, error) {
	if s.scen.Kind == "" {
		return nil, fmt.Errorf("cell: %w: no scenario installed", ErrNotSnapshottable)
	}
	if s.scen.patternFamily() {
		// The workload library (gups/qcd/md/stream/pattern) is declared
		// cold-path: its phase programs run as coroutine interpreter
		// kernels whose goroutine state a clone cannot re-materialize.
		// Sweeps fall back to cold boots per point (see Job.snapshot).
		return nil, fmt.Errorf("cell: %w: %q is a phase-program workload (coroutine interpreter, cold path only)", ErrNotSnapshottable, s.scen.Kind)
	}
	if s.Eng.Now() != 0 || s.Eng.Fired() != 0 {
		return nil, fmt.Errorf("cell: %w: snapshot must be taken at the install boundary, before the system runs", ErrNotSnapshottable)
	}
	procs := 0
	s.Eng.VisitLiveProcesses(func(*sim.Process) bool { procs++; return true })
	if procs > 0 || len(s.streams) == 0 {
		return nil, fmt.Errorf("cell: %w: %q runs %d coroutine kernels", ErrNotSnapshottable, s.scen.Kind, procs)
	}
	if s.rem != nil {
		return nil, fmt.Errorf("cell: %w: remote-chip state is not recycled", ErrNotSnapshottable)
	}
	return &Snapshot{cfg: s.cfg.Clone(), scen: s.scen, total: 2 * s.scen.Volume * int64(len(s.streams))}, nil
}

// Scenario returns the captured scenario template.
func (sn *Snapshot) Scenario() Scenario { return sn.scen }

// Config returns a private copy of the captured configuration, ready to
// vary per grid point (layout, fault seed) before CloneFor.
func (sn *Snapshot) Config() Config { return sn.cfg.Clone() }

// Clone stamps a run-ready replica of the snapshot's own grid point. The
// returned total is the bytes the scenario will move, as Install reported
// for the template.
func (sn *Snapshot) Clone() (*System, int64, error) {
	return sn.CloneFor(sn.cfg.Clone(), sn.scen.Chunk)
}

// CloneFor forks a variant grid point from the warm ancestor: the
// captured scenario at the given chunk size, on the given configuration
// (typically Config() with a different layout). The system is stamped
// from a retired arena carcass when one is available and cold-booted
// otherwise; either way it is ready to RunChecked. Safe for concurrent
// use — sweep workers clone in parallel — provided each caller passes its
// own cfg value.
func (sn *Snapshot) CloneFor(cfg Config, chunk int) (*System, int64, error) {
	scen := sn.scen
	scen.Chunk = chunk
	if err := scen.Validate(); err != nil {
		return nil, 0, err
	}
	sys := sn.take()
	if sys == nil {
		sys = &System{}
	}
	sys.init(cfg)
	total, err := scen.Install(sys)
	if err != nil {
		// An install error leaves a half-wired system; recycle the
		// carcass rather than leak it — init fully re-stamps it.
		sn.Retire(sys)
		return nil, 0, err
	}
	return sys, total, nil
}

// Retire returns a finished (or failed) system to the arena for the next
// clone to stamp from. The caller promises the system is dead: no result
// harvesting, tracing or instrumentation will touch it afterwards. Do not
// retire a system that was handed to an Instrument hook which retained
// it.
func (sn *Snapshot) Retire(sys *System) {
	sn.mu.Lock()
	sn.arena = append(sn.arena, sys)
	sn.mu.Unlock()
}

// ArenaLen reports how many retired carcasses are currently pooled
// (observability for tests and metrics).
func (sn *Snapshot) ArenaLen() int {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return len(sn.arena)
}

func (sn *Snapshot) take() *System {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if n := len(sn.arena); n > 0 {
		sys := sn.arena[n-1]
		sn.arena[n-1] = nil
		sn.arena = sn.arena[:n-1]
		return sys
	}
	return nil
}
