package cell

import (
	"errors"
	"strings"
	"testing"
)

func TestWorkloadValidate(t *testing.T) {
	ok := []Scenario{
		{Kind: "gups", SPEs: 8, Chunk: 8, Volume: 1 << 16, Op: "both"},
		{Kind: "gups", SPEs: 4, Chunk: 128, Volume: 1 << 16, Op: "get"},
		{Kind: "gups", SPEs: 2, Chunk: 64, Volume: 1 << 16, Op: "put", AddrSeeds: []int64{7, 11}},
		{Kind: "qcd", SPEs: 8, Chunk: 4096, Volume: 1 << 20},
		{Kind: "qcd", SPEs: 4, Chunk: 1024, Volume: 1 << 18, Ring: 3},
		{Kind: "md", SPEs: 8, Chunk: 2048, Volume: 1 << 19},
		{Kind: "stream", SPEs: 8, Chunk: 16384, Volume: 1 << 20, Op: "triad"},
		{Kind: "stream", SPEs: 1, Chunk: 16, Volume: 1 << 10, Op: "copy"},
		{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{
				{Access: "seq", Op: "get", Bytes: 4096},
				{Access: "stride", Op: "put", Bytes: 4096, Stride: 1024},
				{Access: "ring", Bytes: 512},
				{Access: "compute", Cycles: 1000},
				{Access: "rand", Op: "both", Bytes: 2048},
			},
			Reps: 2, Region: 64 << 10,
		}},
	}
	for _, sc := range ok {
		if err := sc.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", sc, err)
		}
	}
	bad := []struct {
		sc   Scenario
		want string
	}{
		{Scenario{Kind: "gups", SPEs: 8, Chunk: 256, Volume: 1 << 16, Op: "both"}, "element envelope"},
		{Scenario{Kind: "gups", SPEs: 8, Chunk: 12, Volume: 1 << 16, Op: "both"}, "element envelope"},
		{Scenario{Kind: "gups", SPEs: 8, Chunk: 64, Volume: 0, Op: "both"}, "volume"},
		{Scenario{Kind: "gups", SPEs: 8, Chunk: 64, Volume: 1 << 16, Op: "triad"}, "not valid for kind"},
		{Scenario{Kind: "gups", SPEs: 8, Chunk: 64, Volume: 1 << 16, Op: "both", List: true}, "no DMA-list variant"},
		{Scenario{Kind: "gups", SPEs: 8, Chunk: 64, Volume: 1 << 16, Op: "both", AddrSeeds: []int64{1, 2}}, "one per SPE"},
		{Scenario{Kind: "gups", SPEs: 8, Chunk: 64, Volume: 1 << 16, Op: "both", Ring: 2}, "qcd knob"},
		{Scenario{Kind: "qcd", SPEs: 1, Chunk: 4096, Volume: 1 << 20}, "at least 2 SPEs"},
		{Scenario{Kind: "qcd", SPEs: 4, Chunk: 4096, Volume: 1 << 20, Ring: 4}, "ring step"},
		{Scenario{Kind: "qcd", SPEs: 8, Chunk: 8, Volume: 1 << 20}, "element envelope"},
		{Scenario{Kind: "md", SPEs: 9, Chunk: 2048, Volume: 1 << 19}, "out of range"},
		{Scenario{Kind: "stream", SPEs: 8, Chunk: 16384, Volume: 1 << 20, Op: "get"}, "not valid for kind"},
		{Scenario{Kind: "pattern", SPEs: 2, Chunk: 256}, "explicit phase program"},
		{Scenario{Kind: "pattern", SPEs: 2, Chunk: 256, Op: "get", Pattern: &Pattern{
			Phases: []Phase{{Access: "seq", Op: "get", Bytes: 4096}}, Region: 4096,
		}}, "from the phases"},
		{Scenario{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{{Access: "warp", Op: "get", Bytes: 4096}}, Region: 4096,
		}}, "unknown access"},
		{Scenario{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{{Access: "seq", Op: "scan", Bytes: 4096}}, Region: 4096,
		}}, "want get, put or both"},
		{Scenario{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{{Access: "seq", Op: "get", Bytes: 100}}, Region: 4096,
		}}, "whole number"},
		{Scenario{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{{Access: "stride", Op: "get", Bytes: 4096, Stride: 100}}, Region: 4096,
		}}, "stride"},
		{Scenario{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{{Access: "compute"}},
		}}, "positive cycles"},
		{Scenario{Kind: "pattern", SPEs: 1, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{{Access: "ring", Bytes: 512}},
		}}, "at least 2 SPEs"},
		{Scenario{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{{Access: "seq", Op: "get", Bytes: 4096}}, Region: 100,
		}}, "region"},
		{Scenario{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{}}, "phases"},
		// Workload-library knobs must not leak into the canonical kinds.
		{Scenario{Kind: "pair", Chunk: 4096, Volume: 1 << 20, Ring: 1}, "workload-library knob"},
		{Scenario{Kind: "mem", SPEs: 4, Chunk: 4096, Volume: 1 << 20, Op: "get", AddrSeeds: []int64{1, 2, 3, 4}}, "workload-library knob"},
		{Scenario{Kind: "wedge", SPEs: 4, Pattern: &Pattern{}}, "kind \"pattern\""},
	}
	for _, tc := range bad {
		err := tc.sc.Validate()
		if err == nil {
			t.Errorf("%+v: expected error containing %q, got nil", tc.sc, tc.want)
			continue
		}
		if !errors.Is(err, ErrBadScenario) {
			t.Errorf("%+v: error %v does not wrap ErrBadScenario", tc.sc, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: error %q does not mention %q", tc.sc, err, tc.want)
		}
	}
}

// TestWorkloadDefaultOps pins the per-kind defaulting the sweep layers
// rely on: canonical kinds keep the historical "get", workload presets
// get their own leading op, explicit patterns stay op-free.
func TestWorkloadDefaultOps(t *testing.T) {
	for _, tc := range []struct{ kind, want string }{
		{"mem", "get"}, {"cycle", "get"}, {"wedge", "get"},
		{"gups", "both"}, {"qcd", ""}, {"md", ""}, {"stream", "triad"}, {"pattern", ""},
	} {
		if got := (Scenario{Kind: tc.kind}).WithDefaultOp().Op; got != tc.want {
			t.Errorf("%s: default op %q, want %q", tc.kind, got, tc.want)
		}
	}
	if got := (Scenario{Kind: "stream", Op: "copy"}).WithDefaultOp().Op; got != "copy" {
		t.Errorf("explicit op overwritten to %q", got)
	}
}

// TestWorkloadInstallRuns: every workload-library kind installs, runs to
// completion, moves traffic, and accounts a plausible byte total.
func TestWorkloadInstallRuns(t *testing.T) {
	for _, sc := range []Scenario{
		{Kind: "gups", SPEs: 4, Chunk: 64, Volume: 16 << 10, Op: "both"},
		{Kind: "gups", SPEs: 2, Chunk: 8, Volume: 1 << 10, Op: "get"},
		{Kind: "qcd", SPEs: 4, Chunk: 1024, Volume: 64 << 10},
		{Kind: "qcd", SPEs: 4, Chunk: 1024, Volume: 64 << 10, Ring: 2},
		{Kind: "md", SPEs: 2, Chunk: 512, Volume: 32 << 10},
		{Kind: "stream", SPEs: 2, Chunk: 4096, Volume: 64 << 10, Op: "copy"},
		{Kind: "stream", SPEs: 2, Chunk: 4096, Volume: 64 << 10, Op: "triad"},
		{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{
				{Access: "seq", Op: "get", Bytes: 4096, Async: true},
				{Access: "stride", Op: "put", Bytes: 4096, Stride: 1024},
				{Access: "ring", Bytes: 512},
				{Access: "compute", Cycles: 1000},
				{Access: "rand", Op: "both", Bytes: 2048},
			},
			Reps: 2, Region: 64 << 10,
		}},
	} {
		sys := New(DefaultConfig())
		total, err := sc.Install(sys)
		if err != nil {
			t.Fatalf("%s/%s: %v", sc.Kind, sc.Op, err)
		}
		if want := sc.pattern().LaneBytes() * int64(sc.SPEs); total != want {
			t.Fatalf("%s/%s: accounted %d bytes, want %d", sc.Kind, sc.Op, total, want)
		}
		if err := sys.RunChecked(200_000_000); err != nil {
			t.Fatalf("%s/%s: %v", sc.Kind, sc.Op, err)
		}
		if st := sys.Bus.Stats(); st.Transfers == 0 || st.Bytes == 0 {
			t.Fatalf("%s/%s: no EIB traffic (stats %+v)", sc.Kind, sc.Op, st)
		}
	}
}

// TestStreamOpTraffic pins the STREAM byte-counting convention: copy and
// scale move two arrays, add and triad three.
func TestStreamOpTraffic(t *testing.T) {
	v := int64(64 << 10)
	for op, arrays := range map[string]int64{"copy": 2, "scale": 2, "add": 3, "triad": 3} {
		sc := Scenario{Kind: "stream", SPEs: 1, Chunk: 4096, Volume: v, Op: op}
		if got := sc.pattern().LaneBytes(); got != arrays*v {
			t.Errorf("%s: lane bytes %d, want %d arrays x %d", op, got, arrays, v)
		}
	}
}

// TestWorkloadsNotSnapshottable declares the whole workload library
// cold-path: snapshot capture must fail with ErrNotSnapshottable for
// every kind, so sweeps fall back to per-point cold boots (proven by
// TestWorkloadSweepColdFallback in internal/core).
func TestWorkloadsNotSnapshottable(t *testing.T) {
	for _, sc := range []Scenario{
		{Kind: "gups", SPEs: 2, Chunk: 64, Volume: 1 << 10, Op: "both"},
		{Kind: "qcd", SPEs: 2, Chunk: 1024, Volume: 16 << 10},
		{Kind: "md", SPEs: 2, Chunk: 512, Volume: 16 << 10},
		{Kind: "stream", SPEs: 2, Chunk: 4096, Volume: 16 << 10, Op: "copy"},
		{Kind: "pattern", SPEs: 2, Chunk: 256, Pattern: &Pattern{
			Phases: []Phase{{Access: "seq", Op: "get", Bytes: 4096}}, Region: 4096,
		}},
	} {
		sys := New(DefaultConfig())
		if _, err := sc.Install(sys); err != nil {
			t.Fatalf("%s: install: %v", sc.Kind, err)
		}
		if _, err := sys.Snapshot(); !errors.Is(err, ErrNotSnapshottable) {
			t.Errorf("%s: snapshot err = %v, want ErrNotSnapshottable", sc.Kind, err)
		}
		sys.Release()
	}
}

// TestGUPSAddrSeedsChangeStreams: distinct address seeds must actually
// produce distinct address streams (different bank traffic mixes), or
// the seed-permutation metamorphic invariant would be vacuous.
func TestGUPSAddrSeedsChangeStreams(t *testing.T) {
	run := func(seeds []int64) int64 {
		sys := New(DefaultConfig())
		sc := Scenario{Kind: "gups", SPEs: 2, Chunk: 64, Volume: 32 << 10, Op: "get", AddrSeeds: seeds}
		if _, err := sc.Install(sys); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunChecked(0); err != nil {
			t.Fatal(err)
		}
		now := int64(sys.Eng.Now())
		sys.Release()
		return now
	}
	a := run([]int64{1, 2})
	b := run([]int64{1, 2})
	c := run([]int64{3, 4})
	if a != b {
		t.Fatalf("same seeds, different cycle counts: %d vs %d", a, b)
	}
	if a == c {
		t.Fatalf("different seeds produced identical cycle counts %d; streams look seed-independent", a)
	}
}
