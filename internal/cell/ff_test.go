package cell

import (
	"reflect"
	"testing"

	"cellbe/internal/fault"
	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
)

// ffRun executes sc on a fresh default system, with or without
// fast-forward, and returns the system for state comparison.
func ffRun(t *testing.T, sc Scenario, ff bool) *System {
	t.Helper()
	sys := New(DefaultConfig())
	sys.SetPerf(&perfctr.Counters{})
	if _, err := sc.Install(sys); err != nil {
		t.Fatalf("install: %v", err)
	}
	if ff {
		sys.EnableFastForward()
	}
	if err := sys.RunChecked(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	return sys
}

// ffCompare asserts that a fast-forwarded run left every observable —
// final cycle count, event totals, EIB and MFC statistics, the full perf
// counter block — bit-identical to the cycle-exact reference.
func ffCompare(t *testing.T, cold, fast *System) {
	t.Helper()
	if c, f := cold.Eng.Now(), fast.Eng.Now(); c != f {
		t.Errorf("cycles: cold %d, fast %d", c, f)
	}
	if c, f := cold.Eng.Fired(), fast.Eng.Fired(); c != f {
		t.Errorf("events fired: cold %d, fast %d", c, f)
	}
	if c, f := cold.Eng.Scheduled(), fast.Eng.Scheduled(); c != f {
		t.Errorf("events scheduled: cold %d, fast %d", c, f)
	}
	if c, f := cold.Bus.Stats(), fast.Bus.Stats(); c != f {
		t.Errorf("EIB stats diverge:\ncold %+v\nfast %+v", c, f)
	}
	for i := range cold.SPEs {
		if c, f := cold.SPEs[i].MFC().Stats(), fast.SPEs[i].MFC().Stats(); c != f {
			t.Errorf("SPE%d MFC stats: cold %+v, fast %+v", i, c, f)
		}
		if c, f := cold.SPEs[i].MFC().FFLinear(), fast.SPEs[i].MFC().FFLinear(); c != f {
			t.Errorf("SPE%d MFC linear state: cold %+v, fast %+v", i, c, f)
		}
	}
	if !reflect.DeepEqual(cold.Perf(), fast.Perf()) {
		t.Errorf("perf counters diverge:\ncold %+v\nfast %+v", cold.Perf(), fast.Perf())
	}
}

// TestFastForwardExact is the tentpole differential: across the pair
// scenario family, an armed fast-forward controller must leave every
// observable indistinguishable from the cycle-exact run — whether or not
// it finds a period to jump. On these workloads it does not: the EIB's
// switching-gap arbitration never settles into an exactly recurring
// microstate (measured across all-pairs anchor scans; see DESIGN.md), so
// the controller's give-up path retires it after a bounded number of
// digests. The test therefore asserts exactness unconditionally and the
// self-disable bound explicitly, not jump counts.
func TestFastForwardExact(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"pair-1k", Scenario{Kind: "pair", Chunk: 1024, Volume: 1 << 20}},
		{"pair-4k", Scenario{Kind: "pair", Chunk: 4096, Volume: 1 << 20}},
		{"pair-16k", Scenario{Kind: "pair", Chunk: 16384, Volume: 1 << 20}},
		{"couples-4", Scenario{Kind: "couples", SPEs: 4, Chunk: 4096, Volume: 1 << 20}},
		{"couples-8", Scenario{Kind: "couples", SPEs: 8, Chunk: 4096, Volume: 1 << 20}},
		{"cycle-8-1k", Scenario{Kind: "cycle", SPEs: 8, Chunk: 1024, Volume: 1 << 20}},
		{"cycle-8-4k", Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: 1 << 20}},
		{"cycle-3", Scenario{Kind: "cycle", SPEs: 3, Chunk: 2048, Volume: 1 << 20}},
		{"pair-tiny", Scenario{Kind: "pair", Chunk: 4096, Volume: 64 << 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cold := ffRun(t, tc.sc, false)
			fast := ffRun(t, tc.sc, true)
			ffCompare(t, cold, fast)
			jumps, skipped := fast.FastForwardStats()
			t.Logf("jumps=%d skipped=%d/%d cycles", jumps, skipped, fast.Eng.Now())
			if c := fast.ff; c != nil && jumps == 0 && c.captured > ffGiveUpAfter {
				t.Errorf("controller captured %d anchors without a jump but never gave up (bound %d)",
					c.captured, ffGiveUpAfter)
			}
		})
	}
}

// ffGuardedRun runs sc on cfg, optionally arming fast-forward and
// optionally attaching windowed perf sampling, and returns the finished
// system plus its window snapshots (nil when sampling is off).
func ffGuardedRun(t *testing.T, cfg Config, sc Scenario, ff bool, windowEvery sim.Time) (*System, *perfctr.Windows) {
	t.Helper()
	sys := New(cfg)
	sys.SetPerf(&perfctr.Counters{})
	if _, err := sc.Install(sys); err != nil {
		t.Fatalf("install: %v", err)
	}
	var w *perfctr.Windows
	if windowEvery > 0 {
		w = sys.StartPerfWindows(windowEvery)
	}
	if ff {
		sys.EnableFastForward()
	}
	if err := sys.RunChecked(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	return sys, w
}

// TestFastForwardNeverEngagesGuarded is the property suite for the
// exactness guards: under fault injection, with EIB tracing attached, or
// with windowed perf sampling live, an armed controller must either
// refuse to arm (faults, tracing — state the digest cannot capture) or
// never commit a jump (daemon-driven samplers, which a jump would starve
// of their window boundaries) — and in every case the run's observables
// must be bit-identical to the unarmed reference.
func TestFastForwardNeverEngagesGuarded(t *testing.T) {
	sc := Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: 1 << 20}

	t.Run("fault-injection", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Faults = fault.Config{MFCRetryRate: 0.01}
		cfg.FaultSeed = 11
		cold, _ := ffGuardedRun(t, cfg, sc, false, 0)
		fast, _ := ffGuardedRun(t, cfg, sc, true, 0)
		if fast.ff != nil {
			t.Error("controller armed despite fault injection: injected events are not in the digest")
		}
		ffCompare(t, cold, fast)
	})

	t.Run("tracing", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.EIB.TraceCapacity = 4096
		cold, _ := ffGuardedRun(t, cfg, sc, false, 0)
		fast, _ := ffGuardedRun(t, cfg, sc, true, 0)
		if fast.ff != nil {
			t.Error("controller armed despite EIB tracing: a jump would leave a hole in the trace")
		}
		ffCompare(t, cold, fast)
		if c, f := len(cold.Bus.Trace()), len(fast.Bus.Trace()); c != f {
			t.Errorf("trace lengths diverge: cold %d, fast %d", c, f)
		}
	})

	t.Run("perf-windows", func(t *testing.T) {
		cfg := DefaultConfig()
		cold, cw := ffGuardedRun(t, cfg, sc, false, 500)
		fast, fw := ffGuardedRun(t, cfg, sc, true, 500)
		if jumps, skipped := fast.FastForwardStats(); jumps != 0 || skipped != 0 {
			t.Errorf("controller jumped %d times (%d cycles) across live window samplers", jumps, skipped)
		}
		ffCompare(t, cold, fast)
		if !reflect.DeepEqual(cw.Snaps, fw.Snaps) {
			t.Errorf("window snapshots diverge:\ncold %+v\nfast %+v", cw.Snaps, fw.Snaps)
		}
		if len(fw.Snaps) < 2 {
			t.Fatalf("sampler took %d snapshots; the guard never faced a live daemon", len(fw.Snaps))
		}
	})
}
