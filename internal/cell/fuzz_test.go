package cell

import (
	"errors"
	"testing"
)

// fuzzKinds maps the raw fuzz byte onto scenario kinds — the canonical
// kinds, the workload library, and an out-of-vocabulary name so the
// unknown-kind rejection stays covered.
var fuzzKinds = []string{"pair", "couples", "cycle", "mem", "wedge", "gups", "qcd", "md", "stream", "bogus", ""}

var fuzzOps = []string{"get", "put", "copy", "both", "scale", "add", "triad", "scan", ""}

// FuzzScenarioConfig throws arbitrary scenario shapes at the
// user-reachable configuration surface and asserts the robustness
// contract: Validate must return nil or an error wrapping
// ErrBadScenario — never a panic and never an untyped error — and every
// scenario it accepts must install and run to completion (byte
// conservation included) inside a finite cycle budget, i.e. no accepted
// configuration may deadlock. Volumes are clamped so the executable
// half stays cheap enough for a CI fuzz smoke.
func FuzzScenarioConfig(f *testing.F) {
	f.Add(uint8(0), 2, 16384, int64(64<<10), uint8(0), false, 0, uint8(0)) // valid pair
	f.Add(uint8(1), 4, 2048, int64(32<<10), uint8(0), true, 0, uint8(0))   // valid couples, lists
	f.Add(uint8(2), 3, 128, int64(4<<10), uint8(0), false, 0, uint8(0))    // valid 3-cycle
	f.Add(uint8(3), 1, 4096, int64(64<<10), uint8(1), false, 0, uint8(0))  // valid mem put
	f.Add(uint8(3), 2, 1024, int64(16<<10), uint8(2), true, 0, uint8(0))   // mem copy + list: reject
	f.Add(uint8(1), 3, 2048, int64(32<<10), uint8(0), false, 0, uint8(0))  // odd couples: reject
	f.Add(uint8(0), 2, 24, int64(1<<10), uint8(0), false, 0, uint8(0))     // 24-byte chunk: reject
	f.Add(uint8(0), 2, 32768, int64(64<<10), uint8(0), false, 0, uint8(0)) // oversize chunk: reject
	f.Add(uint8(2), 9, 128, int64(1<<10), uint8(0), false, 0, uint8(0))    // too many SPEs: reject
	f.Add(uint8(9), 2, 128, int64(1<<10), uint8(0), false, 0, uint8(0))    // unknown kind: reject
	f.Add(uint8(3), 1, 128, int64(-16), uint8(3), false, 0, uint8(0))      // bad volume and op
	f.Add(uint8(5), 8, 8, int64(2<<10), uint8(3), false, 0, uint8(0))      // valid gups, 8-byte elements
	f.Add(uint8(5), 4, 64, int64(1<<10), uint8(0), false, 0, uint8(1))     // valid gups get + pinned seeds
	f.Add(uint8(5), 4, 256, int64(1<<10), uint8(3), false, 0, uint8(0))    // gups chunk over 128: reject
	f.Add(uint8(6), 8, 4096, int64(64<<10), uint8(8), false, 1, uint8(0))  // valid qcd ring
	f.Add(uint8(6), 1, 4096, int64(64<<10), uint8(8), false, 0, uint8(0))  // 1-SPE qcd ring: reject
	f.Add(uint8(6), 4, 1024, int64(32<<10), uint8(8), false, 5, uint8(0))  // ring step past SPEs: reject
	f.Add(uint8(7), 4, 512, int64(16<<10), uint8(8), false, 0, uint8(0))   // valid md
	f.Add(uint8(8), 8, 16384, int64(64<<10), uint8(6), false, 0, uint8(0)) // valid stream triad
	f.Add(uint8(8), 8, 16384, int64(64<<10), uint8(0), false, 0, uint8(0)) // stream get: reject
	f.Add(uint8(8), 2, 4096, int64(32<<10), uint8(8), true, 0, uint8(0))   // stream + list: reject
	f.Add(uint8(0), 2, 16384, int64(64<<10), uint8(0), false, 2, uint8(0)) // ring knob on pair: reject
	f.Add(uint8(3), 4, 4096, int64(32<<10), uint8(0), false, 0, uint8(2))  // addr seeds on mem: reject

	f.Fuzz(func(t *testing.T, kindRaw uint8, spes, chunk int, volume int64, opRaw uint8, list bool, ring int, seedSel uint8) {
		sc := Scenario{
			Kind:   fuzzKinds[int(kindRaw)%len(fuzzKinds)],
			SPEs:   spes,
			Chunk:  chunk,
			Volume: volume,
			Op:     fuzzOps[int(opRaw)%len(fuzzOps)],
			List:   list,
			Ring:   ring,
		}
		// seedSel exercises the AddrSeeds surface: 0 leaves them nil, 1
		// pins one seed per SPE (valid for workload kinds when the SPE
		// count is in range), anything else deliberately mismatches the
		// length so the rejection stays covered.
		if seedSel != 0 && spes > 0 && spes <= NumSPEs {
			n := spes
			if seedSel > 1 {
				n = spes + 1
			}
			sc.AddrSeeds = make([]int64, n)
			for i := range sc.AddrSeeds {
				sc.AddrSeeds[i] = int64(seedSel) + int64(i)
			}
		}
		err := sc.Validate()
		if err != nil {
			if !errors.Is(err, ErrBadScenario) {
				t.Fatalf("Validate(%+v) = %v: not a typed ErrBadScenario", sc, err)
			}
			return
		}
		if sc.Kind == "wedge" {
			return // valid by design but deadlocks on purpose; the watchdog tests own it
		}
		// Accepted scenarios must actually run. Clamp the volume to a few
		// elements so the fuzzer's executions stay fast; the clamped
		// scenario is still valid (whole chunks, positive volume).
		if max := int64(sc.Chunk) * 4; sc.Volume > max {
			sc.Volume = max
		}
		sys := New(DefaultConfig())
		defer sys.Release()
		total, err := sc.Install(sys)
		if err != nil {
			t.Fatalf("validated scenario %+v failed to install: %v", sc, err)
		}
		if total <= 0 {
			t.Fatalf("scenario %+v accounts for %d bytes", sc, total)
		}
		if err := sys.RunChecked(50_000_000); err != nil {
			t.Fatalf("validated scenario %+v failed to run: %v", sc, err)
		}
	})
}

var fuzzAccesses = []string{"seq", "stride", "rand", "ring", "compute", "bogus", ""}
var fuzzPhaseOps = []string{"get", "put", "both", "scan", ""}

// FuzzPatternConfig drives the explicit phase-program surface (scenario
// kind "pattern", the layer under the workload presets) with arbitrary
// phase lists: the same contract as FuzzScenarioConfig — typed
// rejections only, and every accepted program must interpret to
// completion within a finite budget.
func FuzzPatternConfig(f *testing.F) {
	f.Add(2, 256, uint8(2), uint16(0x0010), uint16(0x0002), int64(4096), int64(1024), int64(500), 2, int64(64<<10), 0, false, uint8(0))
	f.Add(4, 128, uint8(3), uint16(0x0432), uint16(0x0021), int64(1024), int64(256), int64(100), 1, int64(8<<10), 1, true, uint8(1))
	f.Add(8, 16384, uint8(1), uint16(0x0003), uint16(0x0000), int64(16384), int64(0), int64(1), 1, int64(32<<10), 3, false, uint8(2))
	f.Add(1, 8, uint8(1), uint16(0x0003), uint16(0x0000), int64(64), int64(0), int64(1), 1, int64(512), 0, false, uint8(0)) // 1-SPE ring: reject
	f.Add(2, 100, uint8(1), uint16(0x0000), uint16(0x0000), int64(400), int64(0), int64(0), 1, int64(4<<10), 0, false, uint8(0))

	f.Fuzz(func(t *testing.T, spes, chunk int, nPhases uint8, accessBits, opBits uint16, bytes, stride, cycles int64, reps int, region int64, ringStep int, shared bool, async uint8) {
		n := int(nPhases % 5)
		phases := make([]Phase, n)
		for i := range phases {
			ph := Phase{
				Access: fuzzAccesses[int(accessBits>>(3*i))%len(fuzzAccesses)],
				Op:     fuzzPhaseOps[int(opBits>>(3*i))%len(fuzzPhaseOps)],
				Bytes:  bytes,
				Async:  async&(1<<i) != 0,
			}
			switch ph.Access {
			case "compute":
				ph.Cycles, ph.Bytes = cycles, 0
				ph.Op = ""
			case "stride":
				ph.Stride = stride
			case "ring":
				ph.Op = ""
			}
			phases[i] = ph
		}
		sc := Scenario{
			Kind:  "pattern",
			SPEs:  spes,
			Chunk: chunk,
			Pattern: &Pattern{
				Phases: phases, Reps: reps, Region: region,
				RingStep: ringStep, Shared: shared,
			},
		}
		err := sc.Validate()
		if err != nil {
			if !errors.Is(err, ErrBadScenario) {
				t.Fatalf("Validate(%+v) = %v: not a typed ErrBadScenario", sc, err)
			}
			return
		}
		// Clamp the accepted program to a cheap execution: a handful of
		// elements per phase, two reps, a small region, bounded compute.
		// Every clamp preserves validity (whole chunks, positive counts).
		pat := *sc.Pattern
		pat.Phases = append([]Phase(nil), pat.Phases...)
		c := int64(sc.Chunk)
		for i := range pat.Phases {
			if ph := &pat.Phases[i]; ph.Access == "compute" {
				if ph.Cycles > 10_000 {
					ph.Cycles = 10_000
				}
			} else if max := c * 4; ph.Bytes > max {
				ph.Bytes = max
			}
		}
		if pat.Reps > 2 {
			pat.Reps = 2
		}
		if max := c * 256; pat.Region > max {
			pat.Region = max
		}
		sc.Pattern = &pat
		sys := New(DefaultConfig())
		defer sys.Release()
		total, err := sc.Install(sys)
		if err != nil {
			t.Fatalf("validated pattern %+v failed to install: %v", sc, err)
		}
		if total <= 0 {
			t.Fatalf("pattern %+v accounts for %d bytes", sc, total)
		}
		if err := sys.RunChecked(50_000_000); err != nil {
			t.Fatalf("validated pattern %+v failed to run: %v", sc, err)
		}
	})
}
