package cell

import (
	"errors"
	"testing"
)

// fuzzKinds maps the raw fuzz byte onto scenario kinds, including an
// out-of-vocabulary name so the unknown-kind rejection stays covered.
var fuzzKinds = []string{"pair", "couples", "cycle", "mem", "wedge", "bogus", ""}

var fuzzOps = []string{"get", "put", "copy", "scan", ""}

// FuzzScenarioConfig throws arbitrary scenario shapes at the
// user-reachable configuration surface and asserts the robustness
// contract: Validate must return nil or an error wrapping
// ErrBadScenario — never a panic and never an untyped error — and every
// scenario it accepts must install and run to completion (byte
// conservation included) inside a finite cycle budget, i.e. no accepted
// configuration may deadlock. Volumes are clamped so the executable
// half stays cheap enough for a CI fuzz smoke.
func FuzzScenarioConfig(f *testing.F) {
	f.Add(uint8(0), 2, 16384, int64(64<<10), uint8(0), false) // valid pair
	f.Add(uint8(1), 4, 2048, int64(32<<10), uint8(0), true)   // valid couples, lists
	f.Add(uint8(2), 3, 128, int64(4<<10), uint8(0), false)    // valid 3-cycle
	f.Add(uint8(3), 1, 4096, int64(64<<10), uint8(1), false)  // valid mem put
	f.Add(uint8(3), 2, 1024, int64(16<<10), uint8(2), true)   // mem copy + list: reject
	f.Add(uint8(1), 3, 2048, int64(32<<10), uint8(0), false)  // odd couples: reject
	f.Add(uint8(0), 2, 24, int64(1<<10), uint8(0), false)     // 24-byte chunk: reject
	f.Add(uint8(0), 2, 32768, int64(64<<10), uint8(0), false) // oversize chunk: reject
	f.Add(uint8(2), 9, 128, int64(1<<10), uint8(0), false)    // too many SPEs: reject
	f.Add(uint8(5), 2, 128, int64(1<<10), uint8(0), false)    // unknown kind: reject
	f.Add(uint8(3), 1, 128, int64(-16), uint8(3), false)      // bad volume and op

	f.Fuzz(func(t *testing.T, kindRaw uint8, spes, chunk int, volume int64, opRaw uint8, list bool) {
		sc := Scenario{
			Kind:   fuzzKinds[int(kindRaw)%len(fuzzKinds)],
			SPEs:   spes,
			Chunk:  chunk,
			Volume: volume,
			Op:     fuzzOps[int(opRaw)%len(fuzzOps)],
			List:   list,
		}
		err := sc.Validate()
		if err != nil {
			if !errors.Is(err, ErrBadScenario) {
				t.Fatalf("Validate(%+v) = %v: not a typed ErrBadScenario", sc, err)
			}
			return
		}
		if sc.Kind == "wedge" {
			return // valid by design but deadlocks on purpose; the watchdog tests own it
		}
		// Accepted scenarios must actually run. Clamp the volume to a few
		// elements so the fuzzer's executions stay fast; the clamped
		// scenario is still valid (whole chunks, positive volume).
		if max := int64(sc.Chunk) * 4; sc.Volume > max {
			sc.Volume = max
		}
		sys := New(DefaultConfig())
		defer sys.Release()
		total, err := sc.Install(sys)
		if err != nil {
			t.Fatalf("validated scenario %+v failed to install: %v", sc, err)
		}
		if total <= 0 {
			t.Fatalf("scenario %+v accounts for %d bytes", sc, total)
		}
		if err := sys.RunChecked(50_000_000); err != nil {
			t.Fatalf("validated scenario %+v failed to run: %v", sc, err)
		}
	})
}
