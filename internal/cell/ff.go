package cell

import (
	"encoding/binary"

	"cellbe/internal/eib"
	"cellbe/internal/mfc"
	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
)

// Steady-state fast-forward: detect that the simulation has entered a
// periodic steady state and advance it K whole periods analytically
// instead of firing every event, without changing a single observable
// result. See DESIGN.md ("Warm-state cloning and steady-state
// fast-forward") for the full exactness argument; the short form:
//
// The simulation is deterministic and time-invariant: its future depends
// only on the current canonical state — the pending-event multiset
// (relative times + target identities), the MFC/EIB/stream machine state
// (relative times), and nothing else. If the canonical state at anchor
// time T2 equals the state at an earlier anchor T1 modulo a uniform time
// shift delta = T2-T1 (and renaming of linear counters, which nothing
// feeds back from), then evolution from T2 replays evolution from T1
// shifted by delta — so the state at T2+delta is again equivalent, and by
// induction the period repeats forever. One digest match therefore
// licenses jumping K periods at once: shift every absolute time by
// K*delta, add K times the observed per-period delta to every linear
// counter, and advance each stream's iteration count by K times its
// per-period progress. K is capped so no stream's loop bound (and no
// watchdog budget) falls inside the skipped span — the replayed windows
// must take every loop branch the observed window took.
//
// Anchors are placed by stream 0 at iteration-window boundaries
// (i % slots == 0), and the digest includes every stream's (i mod slots,
// body position, park site), so a match forces each stream's per-period
// progress to be a whole number of slot windows — the LS offsets and
// effective addresses of the skipped commands repeat exactly.
//
// Local-store *data* is exempt from the exactness contract: the canonical
// kernels move zero-filled buffers, and payload bytes influence nothing
// in the timing model. Everything that can influence behaviour — SNR
// writes, atomics, faults, tracing — vetoes the jump instead.

// ffMaxAnchors bounds the anchor table; past it the controller stops
// recording new candidates (existing ones can still match).
const ffMaxAnchors = 512

// ffGiveUpAfter disables the controller for the rest of the run when this
// many anchors were captured without a single committed jump: a workload
// that is not settling into a detectable period should not keep paying
// the digest cost.
const ffGiveUpAfter = 64

// ffAnchor is one recorded steady-state candidate: the canonical digest
// plus the absolute linear-counter snapshot the commit deltas are
// computed against.
type ffAnchor struct {
	key     []byte
	now     sim.Time
	seq     int64 // engine events scheduled
	nfired  int64 // engine events fired
	eib     eib.Stats
	mfc     [NumSPEs]mfc.FFLinear
	perf    *perfctr.Counters // deep snapshot; nil when counting is off
	streamI []int64
}

// ffController is the steady-state fast-forward controller, armed by
// EnableFastForward and driven from stream 0's anchor hook.
type ffController struct {
	sys      *System
	notes    map[string]int64 // park-site note interning
	anchors  map[uint64][]*ffAnchor
	captured int
	disabled bool
	budget   sim.Time // watchdog cycle budget jumps must not overshoot (0 = none)
	buf      []byte   // reusable digest buffer

	jumps   int
	skipped sim.Time
}

// EnableFastForward arms steady-state fast-forward on the system. It is
// opt-in per System (the sweep runner enables it; determinism goldens and
// ad-hoc drivers run cycle-exact by default) and refuses quietly when the
// configuration makes periodicity unprovable: fault injection perturbs
// timing aperiodically, and an EIB transfer trace records per-transfer
// history a jump cannot reproduce. Call after the scenario is installed —
// the controller needs the stream census.
func (s *System) EnableFastForward() {
	if s.cfg.Faults.Enabled() || s.cfg.EIB.TraceCapacity > 0 || len(s.streams) == 0 {
		return
	}
	s.ff = &ffController{
		sys:     s,
		notes:   make(map[string]int64, 8),
		anchors: make(map[uint64][]*ffAnchor),
	}
}

// FastForwardStats reports how many steady-state jumps committed and how
// many simulated cycles they skipped (both zero when fast-forward is off
// or never engaged).
func (s *System) FastForwardStats() (jumps int, skipped sim.Time) {
	if s.ff == nil {
		return 0, 0
	}
	return s.ff.jumps, s.ff.skipped
}

// ffAnchor is called by stream ordinal 0 at each iteration-window
// boundary; with fast-forward disabled (the default) it does nothing.
func (s *System) ffAnchor() {
	if s.ff == nil || s.ff.disabled {
		return
	}
	s.ff.anchor()
}

// anchor captures the canonical state digest and either commits a jump
// against a matching earlier anchor or records this one as a candidate.
func (c *ffController) anchor() {
	sys := c.sys
	eng := sys.Eng

	// Dynamic vetoes: any observer or machine state the digest cannot
	// prove periodic forces cycle-exact execution. Tracing records
	// per-event history; daemon events (metrics/perf-window samplers)
	// observe absolute time on their own schedule; atomics, PPE fills and
	// XDR traffic involve components the digest does not cover.
	if sys.tracer != nil ||
		eng.Pending() != eng.PendingWork() || // daemon events pending
		len(sys.resv.byLine) != 0 ||
		sys.PPE.InflightFills() != 0 ||
		sys.Mem.BankStats(0).Requests != 0 ||
		sys.Mem.BankStats(1).Requests != 0 {
		return
	}
	// Census: stream kernels are state machines, so no spawned process may
	// be live at all — any coroutine carries parked state the digest does
	// not see.
	if !eng.VisitLiveProcesses(func(*sim.Process) bool { return false }) {
		return
	}

	now := eng.Now()
	buf, ok := c.encode(c.buf[:0], now)
	c.buf = buf
	if !ok {
		return
	}

	h := fnv64(buf)
	for _, a := range c.anchors[h] {
		if !bytesEqual(a.key, buf) {
			continue
		}
		if c.tryCommit(a, now) {
			return
		}
	}
	if c.captured >= ffMaxAnchors {
		return
	}
	c.captured++
	if c.captured >= ffGiveUpAfter && c.jumps == 0 {
		c.disabled = true
		return
	}
	a := &ffAnchor{
		key:     append([]byte(nil), buf...),
		now:     now,
		seq:     eng.Scheduled(),
		nfired:  eng.Fired(),
		eib:     sys.Bus.Stats(),
		streamI: make([]int64, len(sys.streams)),
	}
	for i, sp := range sys.SPEs {
		a.mfc[i] = sp.MFC().FFLinear()
	}
	if sys.perf != nil {
		cp := *sys.perf
		a.perf = &cp
	}
	for i, d := range sys.streams {
		a.streamI[i] = d.i
	}
	c.anchors[h] = append(c.anchors[h], a)
}

// encode appends the canonical relative state digest to buf: the pending
// event queue in firing order (relative times, classified identities),
// each MFC, the EIB timetable, and each stream's position. ok=false means
// some state was not provably encodable and no anchor exists here.
func (c *ffController) encode(buf []byte, now sim.Time) ([]byte, bool) {
	sys := c.sys
	for _, sp := range sys.SPEs {
		sp.MFC().FFBegin()
	}
	ok := sys.Eng.VisitPending(func(ev sim.PendingEvent) bool {
		if ev.Opaque || ev.Daemon {
			return false
		}
		buf = binary.AppendVarint(buf, int64(ev.At-now))
		if ev.Proc != nil {
			// Process activations belong to coroutine kernels the census
			// already rejects; unreachable, but never classifiable here.
			return false
		}
		buf = binary.AppendVarint(buf, int64(ev.Targ-now))
		switch t := ev.Cb.(type) {
		case *dmaStreamCont:
			buf = append(buf, 1)
			buf = binary.AppendVarint(buf, int64(t.d.ord))
		case *dmaStreamWake:
			buf = append(buf, 2)
			buf = binary.AppendVarint(buf, int64(t.d.ord))
		case *pktDone:
			// A packet landing on a signal-notification register changes
			// SPE-visible data; only plain LS payload traffic is exempt
			// from the exactness contract. For plain payload the offset
			// within the target LS is behaviourally irrelevant (it only
			// addresses exempt bytes), so it is not encoded.
			if t.off >= spe.SNROffset {
				return false
			}
			mi, label, delayed, known := c.noteMFC(t.done)
			if !known {
				return false
			}
			buf = append(buf, 3)
			buf = binary.AppendVarint(buf, int64(c.logicalOf(t.target)))
			buf = binary.AppendVarint(buf, int64(t.n))
			buf = append(buf, boolByte(t.write))
			buf = binary.AppendVarint(buf, int64(mi))
			buf = binary.AppendVarint(buf, int64(label))
			buf = append(buf, boolByte(delayed))
		default:
			mi, label, delayed, known := c.noteMFC(ev.Cb)
			if !known {
				return false
			}
			buf = append(buf, 4)
			buf = binary.AppendVarint(buf, int64(mi))
			buf = binary.AppendVarint(buf, int64(label))
			buf = append(buf, boolByte(delayed))
		}
		return true
	})
	if !ok {
		return buf, false
	}
	for _, sp := range sys.SPEs {
		buf, ok = sp.MFC().FFEncode(buf, now, c.wakeOrd, c.routeOf)
		if !ok {
			return buf, false
		}
	}
	buf = sys.Bus.FFEncode(buf, now)
	for _, d := range sys.streams {
		buf = binary.AppendVarint(buf, d.i%int64(d.slots))
		buf = binary.AppendVarint(buf, int64(d.op))
		buf = binary.AppendVarint(buf, int64(d.pc))
		buf = binary.AppendVarint(buf, c.noteID(d.note))
	}
	return buf, true
}

// tryCommit computes the jump against matched anchor a and applies it.
// It reports whether a jump committed.
func (c *ffController) tryCommit(a *ffAnchor, now sim.Time) bool {
	sys := c.sys
	delta := now - a.now
	if delta <= 0 {
		return false
	}
	// K = min over progressing streams of the whole periods left before
	// their loop bound: every loop-condition check inside the skipped
	// span must take the branch the observed period took.
	k := int64(1<<62 - 1)
	progressed := false
	for i, d := range sys.streams {
		di := d.i - a.streamI[i]
		if di == 0 {
			continue
		}
		progressed = true
		if rem := (d.iters - d.i) / di; rem < k {
			k = rem
		}
	}
	if !progressed {
		return false
	}
	if c.budget > 0 {
		if cap := int64((c.budget - now) / delta); cap < k {
			k = cap
		}
	}
	if k < 1 {
		return false
	}

	eng := sys.Eng
	d := sim.Time(k) * delta
	dSeq := k * (eng.Scheduled() - a.seq)
	dFired := k * (eng.Fired() - a.nfired)
	eng.FFJump(d)
	eng.FFAddCounters(dSeq, dFired)
	for i, sp := range sys.SPEs {
		m := sp.MFC()
		cur := m.FFLinear()
		m.FFShift(d)
		m.FFAddLinear(cur, a.mfc[i], k)
	}
	curEIB := sys.Bus.Stats()
	sys.Bus.FFShift(d)
	sys.Bus.FFAddStats(curEIB, a.eib, k)
	if sys.perf != nil && a.perf != nil {
		sys.perf.FFAddScaled(a.perf, uint64(k))
	}
	for i, st := range sys.streams {
		st.i += k * (st.i - a.streamI[i])
	}
	c.jumps++
	c.skipped += d
	return true
}

// noteMFC resolves a completion Callee to (logical SPE, wavefront label,
// delayed-retirement flag) by asking each MFC, labeling the bound command
// in first-seen order (see mfc.FFNoteEvent).
func (c *ffController) noteMFC(cb sim.Callee) (mfcIdx, label int, delayed, ok bool) {
	if cb == nil {
		return 0, 0, false, false
	}
	for i, sp := range c.sys.SPEs {
		if lb, dl, found := sp.MFC().FFNoteEvent(cb); found {
			return i, lb, dl, true
		}
	}
	return 0, 0, false, false
}

// routeOf abstracts an effective-address span to a canonical route: the
// logical index of the local SPE whose plain local-store region it
// addresses. Timing depends only on the route (which ramp pair, hence
// which ring path and arbitration flow) and the span's line alignment —
// not on the absolute address — so streaming commands that differ only in
// which window slot they target become digest-identical. Anything else is
// unabstractable: XDR memory timing depends on bank/row address bits,
// remote-chip spans cross the IOIF link model, and signal-notification
// registers have data side effects.
func (c *ffController) routeOf(ea int64, size int) (int64, bool) {
	sys := c.sys
	if ea >= sys.remoteLSBase() {
		return 0, false
	}
	logical, off, ok := sys.resolveLS(ea)
	if !ok {
		return 0, false // main memory: address bits select banks and rows
	}
	if int64(off)+int64(size) > int64(spe.SNROffset) {
		return 0, false
	}
	return int64(logical), true
}

// wakeOrd resolves a registered waiter Callee to its stream ordinal; only
// wake records of registered streams qualify.
func (c *ffController) wakeOrd(cb sim.Callee) (int64, bool) {
	w, ok := cb.(*dmaStreamWake)
	if !ok {
		return 0, false
	}
	return int64(w.d.ord), true
}

// logicalOf maps an SPE back to its logical index.
func (c *ffController) logicalOf(target *spe.SPE) int {
	for i, sp := range c.sys.SPEs {
		if sp == target {
			return i
		}
	}
	return -1
}

// noteID interns a park-site note. IDs are assigned in first-seen order,
// which is deterministic within a run — all the digest needs.
func (c *ffController) noteID(n string) int64 {
	id, ok := c.notes[n]
	if !ok {
		id = int64(len(c.notes) + 1)
		c.notes[n] = id
	}
	return id
}

func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range b {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
