package cell

import (
	"fmt"

	"cellbe/internal/mfc"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
)

// dmaStream is the pair-family element kernel (pair/couples/cycle, the
// non-list variants) reified as an event-driven state machine instead of a
// spawned coroutine. The kernel behaviour is identical to the goroutine
// body it replaces — the same MFC calls with the same arguments, and the
// same engine events scheduled at the same execution points, so the
// engine's sequence counter advances identically and every simulated
// timestamp is unchanged. What changes is the host-side cost: advancing
// the kernel is a method call on a pooled record, not four unbuffered
// channel operations and a goroutine context switch per park/activate.
//
// The reified progress (iteration count, position within the iteration
// body, park-site note) is what lets the steady-state fast-forward
// controller prove that two instants of the run are equivalent and jump
// between them; stream iteration state is one of the "linear counters"
// the controller advances analytically on a committed jump.
type dmaStream struct {
	sys    *System
	ord    int // registration ordinal (install order across the scenario)
	idx    int // logical SPE the kernel runs on
	chunk  int
	slots  int
	iters  int64 // total iterations (one Get+Put per iteration)
	peerEA int64

	// Live progress, updated as the kernel advances. i is the current
	// iteration; op is the position inside the body: 0 = about to Get,
	// 1 = about to Put, 2 = in the final tag wait, 3 = done.
	i  int64
	op int

	eng  *sim.Engine
	spe  *spe.SPE
	dma  *mfc.MFC
	pc   int    // continuation point step resumes from
	note string // current park-site label (the coroutine's SetNote)

	// cont is the kernel's timer/continuation event target and wake its
	// one-shot subscription record — the state-machine counterparts of a
	// process's pre-bound activation event and its WakeRecord. Keeping
	// them as two distinct identities preserves the exact event sequence
	// of the coroutine version: a completion notification fires wake,
	// which schedules cont, the same two-event chain a WakeRecord wake
	// produced.
	cont dmaStreamCont
	wake dmaStreamWake
}

// Stream body positions (dmaStream.op).
const (
	streamOpGet = iota
	streamOpPut
	streamOpTagWait
	streamOpDone
)

// Continuation points (dmaStream.pc).
const (
	pcStart   = iota // first activation: begin iteration 0
	pcEnqGet         // issue cost paid: offer the Get to the queue
	pcEnqPut         // issue cost paid: offer the Put to the queue
	pcTagCheck       // status-read cost paid: poll the tag groups
	pcTagWake        // tag-group wake delivered: finish
)

// Park-site labels, matching the notes the coroutine kernel set.
const (
	noteDMAIssue   = "dma-issue"
	noteDMAQfull   = "dma-qfull"
	noteTagChannel = "tag-channel"
	noteTagWait    = "tag-wait"
)

// streamTags is the tag mask the final wait drains: tag 0 carries the
// Gets, tag 1 the Puts.
const streamTags uint32 = 1<<0 | 1<<1

// dmaStreamCont is the stream's continuation event target: every timer
// expiry and wake-chain completion dispatches here, the way a process
// event dispatched to Process.activate.
type dmaStreamCont struct{ d *dmaStream }

// Call resumes the kernel at its continuation point.
func (c *dmaStreamCont) Call(sim.Time) { c.d.step() }

// dmaStreamWake is the stream's reusable one-shot subscription record —
// the state-machine WakeRecord. Queue-space and tag-group notifications
// are posted to it, and it schedules the continuation as a fresh event,
// replicating the notify-then-activate double event of the coroutine
// wake path (and with it the engine's sequence numbering).
type dmaStreamWake struct {
	d     *dmaStream
	armed bool
}

// Call forwards the notification to the kernel's continuation.
func (w *dmaStreamWake) Call(sim.Time) {
	if !w.armed {
		panic("cell: stream wake fired while unarmed")
	}
	w.armed = false
	w.d.eng.PostCallee(&w.d.cont, w.d.eng.Now())
}

// step advances the kernel from its continuation point until it blocks on
// simulated time (a scheduled cont event), on a queue-space or tag-group
// subscription (an armed wake), or finishes. The loop structure mirrors
// the coroutine body exactly: an accepted command falls through inline to
// the next charge, just as the goroutine ran on within one activation.
func (d *dmaStream) step() {
	for {
		switch d.pc {
		case pcStart:
			if d.startIter() {
				return
			}
		case pcEnqGet:
			if !d.offer(false) {
				return
			}
			d.op = streamOpPut
			d.note = noteDMAIssue
			if d.delay(d.spe.DMAIssueCycles(), pcEnqPut) {
				return
			}
		case pcEnqPut:
			if !d.offer(true) {
				return
			}
			d.i++
			if d.startIter() {
				return
			}
		case pcTagCheck:
			if d.dma.TagsComplete(streamTags) {
				d.op = streamOpDone
				return
			}
			d.note = noteTagWait
			d.pc = pcTagWake
			d.wake.armed = true
			d.dma.WaitTagsCB(streamTags, &d.wake)
			return
		case pcTagWake:
			d.op = streamOpDone
			return
		}
	}
}

// startIter begins iteration d.i — or, past the loop bound, the final tag
// wait — charging the channel cycles the next queue attempt costs. It
// reports whether the continuation was scheduled (false: continue inline,
// the Wait(0) case). The fast-forward anchor fires before the body
// mutates op or note, exactly where the coroutine loop placed it.
func (d *dmaStream) startIter() bool {
	if d.i < d.iters {
		if d.ord == 0 && d.i%int64(d.slots) == 0 {
			d.sys.ffAnchor()
		}
		d.op = streamOpGet
		d.note = noteDMAIssue
		return d.delay(d.spe.DMAIssueCycles(), pcEnqGet)
	}
	d.op = streamOpTagWait
	d.note = noteTagChannel
	return d.delay(d.spe.TagStatusCycles(), pcTagCheck)
}

// delay sets the continuation point and schedules it c cycles out,
// reporting whether an event was scheduled. A zero charge continues
// inline without touching the engine, matching Process.Wait(0).
func (d *dmaStream) delay(c sim.Time, pc int) bool {
	d.pc = pc
	if c == 0 {
		return false
	}
	t := d.eng.Now() + c
	d.eng.AtCallee(t, &d.cont, t)
	return true
}

// offer presents the current iteration's Get or Put to the command queue.
// On ErrQueueFull it subscribes the wake record for the next free slot
// and reports false — the continuation point is unchanged, so the wake
// retries the same offer, the coroutine's retry loop.
func (d *dmaStream) offer(put bool) bool {
	slot := int(d.i % int64(d.slots))
	cmd := mfc.Cmd{Kind: mfc.Get, Tag: 0, LSAddr: pairGetBase + slot*d.chunk,
		EA: d.peerEA + int64(slot*d.chunk), Size: d.chunk}
	if put {
		cmd.Kind, cmd.Tag, cmd.LSAddr = mfc.Put, 1, pairPutBase+slot*d.chunk
	}
	err := d.dma.Enqueue(cmd, nil)
	if err == nil {
		return true
	}
	if err != mfc.ErrQueueFull {
		// Unreachable for a validated scenario; surfaced the way a
		// coroutine kernel's panic reached the driver.
		panic(&sim.ProcessPanic{Name: fmt.Sprintf("spe%d", d.idx),
			Value: &spe.CommandError{SPE: d.idx, Err: err}})
	}
	d.note = noteDMAQfull
	d.wake.armed = true
	d.dma.OnSpaceCB(&d.wake)
	return false
}

// installStream registers the stream kernel and schedules its first
// activation — the same immediate event a Spawn produced. The first
// installed stream also registers the watchdog liveness reporter, since
// state-machine kernels are invisible to the process registry.
func (sys *System) installStream(d *dmaStream) {
	d.ord = len(sys.streams)
	d.eng = sys.Eng
	d.spe = sys.SPEs[d.idx]
	d.dma = d.spe.MFC()
	d.cont.d = d
	d.wake.d = d
	if len(sys.streams) == 0 {
		sys.Eng.OnLiveness(func() []string {
			var stuck []string
			for _, st := range sys.streams {
				if st.op != streamOpDone {
					stuck = append(stuck, fmt.Sprintf("spe%d (%s)", st.idx, st.note))
				}
			}
			return stuck
		})
	}
	sys.streams = append(sys.streams, d)
	sys.Eng.PostCallee(&d.cont, sys.Eng.Now())
}
