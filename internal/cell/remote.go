package cell

import (
	"fmt"

	"cellbe/internal/eib"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
	"cellbe/internal/xdr"
)

// Cross-chip SPE targets. The paper's §5 warns that on a dual-Cell blade
// the runtime may place communicating SPEs on *different* chips, forcing
// their DMA through the IOIF "limited to 7 GB/s". This models the second
// chip's SPEs as local-store endpoints behind the inter-chip link: the
// full path is local EIB -> IOIF0 ramp -> link (7 GB/s per direction,
// with its own latency) -> remote local store. The remote chip's own EIB
// is not modeled (it is unloaded in the experiment that matters); what is
// captured is exactly the bottleneck the paper warns about.

// NumRemoteSPEs is the number of SPEs on the blade's second chip.
const NumRemoteSPEs = 8

// remoteChip holds the second chip's LS endpoints and the inter-chip link.
type remoteChip struct {
	ls [NumRemoteSPEs][]byte
	// One server per direction: data to the remote chip and data from it
	// each sustain 7 GB/s.
	linkTo   *sim.Server
	linkFrom *sim.Server
	latency  sim.Time
	service  sim.Time // link occupancy per 128-byte line
}

func (s *System) remote() *remoteChip {
	if s.rem == nil {
		s.rem = &remoteChip{
			linkTo:   sim.NewServer(s.Eng),
			linkFrom: sim.NewServer(s.Eng),
			latency:  s.cfg.Mem.RemoteExtraLatency,
			service:  s.cfg.Mem.RemoteServiceCycles,
		}
		for i := range s.rem.ls {
			s.rem.ls[i] = make([]byte, spe.LocalStoreBytes)
		}
	}
	return s.rem
}

// RemoteLSEA returns the effective address of byte off in remote (second
// chip) SPE i's local store.
func (s *System) RemoteLSEA(remote, off int) int64 {
	if remote < 0 || remote >= NumRemoteSPEs {
		panic(fmt.Sprintf("cell: bad remote SPE index %d", remote))
	}
	if off < 0 || off >= spe.LocalStoreBytes {
		panic(fmt.Sprintf("cell: bad remote LS offset %#x", off))
	}
	return s.remoteLSBase() + int64(remote)*s.cfg.LSSpan + int64(off)
}

// remoteLSBase places the second chip's LS aperture directly above the
// local one.
func (s *System) remoteLSBase() int64 {
	return s.cfg.LSBase + int64(NumSPEs)*s.cfg.LSSpan
}

// RemoteLS returns the contents of remote SPE i's local store.
func (s *System) RemoteLS(remote int) []byte {
	if remote < 0 || remote >= NumRemoteSPEs {
		panic(fmt.Sprintf("cell: bad remote SPE index %d", remote))
	}
	return s.remote().ls[remote]
}

// resolveRemoteLS maps an EA to a remote-chip local store.
func (s *System) resolveRemoteLS(ea int64) (remote, off int, ok bool) {
	base := s.remoteLSBase()
	if ea < base {
		return 0, 0, false
	}
	idx := (ea - base) / s.cfg.LSSpan
	if idx >= NumRemoteSPEs {
		panic(fmt.Sprintf("cell: EA %#x beyond the remote LS aperture", ea))
	}
	off64 := (ea - base) % s.cfg.LSSpan
	if off64 >= spe.LocalStoreBytes {
		panic(fmt.Sprintf("cell: EA %#x falls in an unmapped remote LS hole", ea))
	}
	return int(idx), int(off64), true
}

// readRemote is the cross-chip GET data path: the remote chip streams the
// line over the link, then it crosses the local EIB from the IOIF ramp.
func (f *fabric) readRemote(remote, off int, n int, earliest sim.Time, dst []byte, done sim.Callee) {
	sys := f.sys
	rc := sys.remote()
	ready := sys.Bus.Command(earliest)
	dur := rc.service * sim.Time((n+xdr.LineBytes-1)/xdr.LineBytes)
	sys.Eng.At(ready, func() {
		rc.linkFrom.Request(dur, func(sim.Time) {
			start := sys.Eng.Now() + rc.latency
			sys.Bus.Transfer(eib.RampIOIF0, f.ramp, n, start, func(end sim.Time) {
				if dst != nil {
					copy(dst, rc.ls[remote][off:off+n])
				}
				done.Call(end)
			})
		})
	})
}

// writeRemote is the cross-chip PUT path: local EIB to the IOIF ramp,
// then the link to the remote local store.
func (f *fabric) writeRemote(remote, off int, n int, earliest sim.Time, src []byte, done sim.Callee) {
	sys := f.sys
	rc := sys.remote()
	ready := sys.Bus.Command(earliest)
	dur := rc.service * sim.Time((n+xdr.LineBytes-1)/xdr.LineBytes)
	sys.Bus.Transfer(f.ramp, eib.RampIOIF0, n, ready, func(xferEnd sim.Time) {
		rc.linkTo.Request(dur, func(sim.Time) {
			end := sys.Eng.Now() + rc.latency
			sys.Eng.At(end, func() {
				if src != nil {
					copy(rc.ls[remote][off:off+n], src[:n])
				}
				done.Call(end)
			})
		})
	})
}
