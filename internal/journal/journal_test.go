package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, *State) {
	t.Helper()
	j, st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, st
}

func pt(chunk int, seed int64) PointRecord {
	return PointRecord{Chunk: chunk, Seed: seed, Cycles: 100 + int64(chunk), GBps: 1.5, Attempts: 1}
}

// TestJournalRoundTrip: appended jobs, points and done records replay
// into the same State on reopen.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, st := mustOpen(t, dir, Options{})
	if len(st.Jobs) != 0 || len(st.Points) != 0 {
		t.Fatalf("fresh journal replayed non-empty state: %+v", st)
	}
	spec := json.RawMessage(`{"scenario":"cycle"}`)
	jid, err := j.AppendJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPoint(jid, "k1", pt(1024, 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPoint(jid, "k2", pt(4096, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, st2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	inc := st2.Incomplete()
	if len(inc) != 1 || inc[0].ID != jid || string(inc[0].Spec) != string(spec) {
		t.Fatalf("incomplete jobs after reopen: %+v, want [%s]", inc, jid)
	}
	if len(st2.Points) != 2 || st2.Points["k1"].Chunk != 1024 || st2.Points["k2"].Seed != 1 {
		t.Fatalf("points after reopen: %+v", st2.Points)
	}
	if !st2.Points["k1"].Ok() {
		t.Fatal("successful point not Ok after replay")
	}
}

// TestJournalDoneCompacts: a done job's records are dropped at the next
// Open, but its points survive as cache warmers.
func TestJournalDoneCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	jid, _ := j.AppendJob(json.RawMessage(`{}`))
	j.AppendPoint(jid, "k1", pt(1024, 0))
	if err := j.AppendDone(jid); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, st := mustOpen(t, dir, Options{})
	defer j2.Close()
	if n := len(st.Incomplete()); n != 0 {
		t.Fatalf("done job still listed incomplete: %d", n)
	}
	if len(st.Points) != 1 {
		t.Fatalf("done job's points dropped: %+v", st.Points)
	}
	// After compaction the file holds only the point record.
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"t":"job"`) || strings.Contains(string(data), `"t":"done"`) {
		t.Fatalf("compacted file still carries job/done records:\n%s", data)
	}
}

// TestJournalBatchedSyncAndCrash: with SyncEvery=3, the unsynced tail of
// a batch dies with a crash — and only that tail.
func TestJournalBatchedSyncAndCrash(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{SyncEvery: 3})
	jid, _ := j.AppendJob(json.RawMessage(`{}`)) // job records sync immediately
	for i := 0; i < 5; i++ {
		if err := j.AppendPoint(jid, fmt.Sprintf("k%d", i), pt(1024, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if lag := j.Health().Lag; lag != 2 {
		t.Fatalf("after 5 points with SyncEvery=3: lag = %d, want 2", lag)
	}
	j.Crash()

	j2, st := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(st.Incomplete()) != 1 {
		t.Fatalf("job record lost in crash: %+v", st.Jobs)
	}
	if len(st.Points) != 3 {
		t.Fatalf("crash kept %d points, want the 3 fsynced ones (lost unsynced tail of 2)", len(st.Points))
	}
	for _, k := range []string{"k0", "k1", "k2"} {
		if _, ok := st.Points[k]; !ok {
			t.Fatalf("fsynced point %s lost in crash", k)
		}
	}
}

// TestJournalAppendAfterCrash: a crashed journal refuses appends.
func TestJournalAppendAfterCrash(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir(), Options{})
	jid, _ := j.AppendJob(json.RawMessage(`{}`))
	j.Crash()
	if err := j.AppendPoint(jid, "k", pt(1, 0)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash: %v, want ErrCrashed", err)
	}
}

// TestJournalWriteErrRetries: a transiently failing write succeeds on
// retry and leaves no sticky error; a persistently failing one surfaces
// in Health and fails the append.
func TestJournalWriteErrRetries(t *testing.T) {
	fails := 0
	var slept []time.Duration
	j, _ := mustOpen(t, t.TempDir(), Options{
		WriteErr: func(op string) error {
			if fails > 0 {
				fails--
				return errors.New("disk on fire")
			}
			return nil
		},
		RetrySleep: func(d time.Duration) { slept = append(slept, d) },
	})
	defer j.Close()
	jid, err := j.AppendJob(json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}

	fails = 1 // first attempt fails, retry succeeds
	if err := j.AppendPoint(jid, "k1", pt(1, 0)); err != nil {
		t.Fatalf("append with one transient write error: %v", err)
	}
	if len(slept) != 1 {
		t.Fatalf("retry slept %d times, want 1", len(slept))
	}
	if h := j.Health(); h.LastError != "" {
		t.Fatalf("sticky error after successful retry: %q", h.LastError)
	}

	fails = 10 // exhausts the default 2 retries
	if err := j.AppendPoint(jid, "k2", pt(2, 0)); err == nil {
		t.Fatal("append with persistent write errors succeeded")
	}
	if h := j.Health(); !strings.Contains(h.LastError, "disk on fire") {
		t.Fatalf("persistent failure not surfaced in Health: %+v", h)
	}

	fails = 0 // recovery clears the sticky error
	if err := j.AppendPoint(jid, "k3", pt(3, 0)); err != nil {
		t.Fatal(err)
	}
	if h := j.Health(); h.LastError != "" {
		t.Fatalf("sticky error survived a successful append: %q", h.LastError)
	}
}

// TestJournalTornTailTolerated: a partial final line (crash mid-write)
// must not poison the replay of the records before it.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	jid, _ := j.AppendJob(json.RawMessage(`{}`))
	j.AppendPoint(jid, "k1", pt(1024, 0))
	j.Close()

	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"point","job":"` + jid + `","key":"k2","res":{"chu`) // torn
	f.Close()

	j2, st := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(st.Points) != 1 || len(st.Incomplete()) != 1 {
		t.Fatalf("torn tail corrupted replay: %d points, %d incomplete",
			len(st.Points), len(st.Incomplete()))
	}
}

// TestJournalPointDedup: a re-journaled key keeps only the newest record.
func TestJournalPointDedup(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	jid, _ := j.AppendJob(json.RawMessage(`{}`))
	j.AppendPoint(jid, "k1", pt(1024, 0))
	newer := pt(1024, 0)
	newer.Attempts = 3
	j.AppendPoint(jid, "k1", newer)
	j.Close()

	j2, st := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(st.Points) != 1 || st.Points["k1"].Attempts != 3 {
		t.Fatalf("dedup kept the wrong record: %+v", st.Points)
	}
}

// TestJournalKeepPointsCap: compaction keeps completed-job points
// newest-first up to KeepPoints, and always keeps incomplete jobs'.
func TestJournalKeepPointsCap(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	doneJob, _ := j.AppendJob(json.RawMessage(`{}`))
	for i := 0; i < 6; i++ {
		j.AppendPoint(doneJob, fmt.Sprintf("d%d", i), pt(1024, int64(i)))
	}
	j.AppendDone(doneJob)
	liveJob, _ := j.AppendJob(json.RawMessage(`{}`))
	j.AppendPoint(liveJob, "live0", pt(2048, 0))
	j.Close()

	j2, st := mustOpen(t, dir, Options{KeepPoints: 3})
	defer j2.Close()
	if _, ok := st.Points["live0"]; !ok {
		t.Fatal("incomplete job's point pruned by KeepPoints")
	}
	kept := 0
	for k := range st.Points {
		if strings.HasPrefix(k, "d") {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d warm points, want KeepPoints=3", kept)
	}
	for _, k := range []string{"d3", "d4", "d5"} { // newest three
		if _, ok := st.Points[k]; !ok {
			t.Fatalf("newest warm point %s pruned before older ones: %v", k, st.Points)
		}
	}
}

// TestJournalJobIDsNeverCollide: ids minted after a reopen must not
// collide with ids referenced by surviving records of compacted jobs.
func TestJournalJobIDsNeverCollide(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	var last string
	for i := 0; i < 3; i++ {
		jid, _ := j.AppendJob(json.RawMessage(`{}`))
		j.AppendPoint(jid, fmt.Sprintf("k%d", i), pt(1024, int64(i)))
		j.AppendDone(jid)
		last = jid
	}
	j.Close()

	j2, _ := mustOpen(t, dir, Options{})
	defer j2.Close()
	jid, _ := j2.AppendJob(json.RawMessage(`{}`))
	if jid == last {
		t.Fatalf("minted id %s collides with a pre-restart job", jid)
	}
}
