// Package journal is the durability layer under the job scheduler: an
// append-only NDJSON write-ahead journal recording job submissions
// (canonicalized sweep specs) and per-point completions keyed by the
// scheduler's content-addressed memo key. A cellserve restart replays the
// journal: completed points warm the result cache (zero re-simulation)
// and jobs without a "done" record are resubmitted, so a crash or
// redeploy costs at most the points that had not been fsynced yet.
//
// The wire format is one JSON object per line, three record types:
//
//	{"t":"job","id":"<jid>","spec":{...}}   a sweep was submitted
//	{"t":"point","job":"<jid>","key":"<hex sha256>","res":{...}}
//	{"t":"done","id":"<jid>"}               every point delivered
//
// Job and done records fsync immediately (they are the resume decision);
// point records batch — one fsync per Options.SyncEvery records — so a
// hot sweep does not pay a disk round-trip per grid point. The tail of a
// batch is the declared loss window: a crash re-simulates at most
// SyncEvery-1 journaled-but-unsynced points.
//
// Open replays the existing file and compacts it: done jobs' job/done
// records are dropped, duplicate point records collapse to the newest,
// and completed jobs' points are kept newest-first up to KeepPoints as
// cache warmers. The rewrite goes through a temp file + atomic rename,
// so a crash mid-compaction leaves the previous journal intact.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cellbe/internal/perfctr"
)

// FileName is the journal's file name inside its directory.
const FileName = "journal.ndjson"

// ErrCrashed is returned by appends after Crash — the test hook that
// simulates losing the process (and the unsynced write buffer) mid-run.
var ErrCrashed = errors.New("journal: crashed (test hook)")

// Options tunes a Journal.
type Options struct {
	// SyncEvery is the number of point records batched per fsync;
	// <= 0 syncs every record. Job and done records always sync.
	SyncEvery int
	// KeepPoints caps how many completed-job point records survive
	// compaction as cache warmers; <= 0 defaults to 4096. Points of
	// unfinished jobs are always kept.
	KeepPoints int
	// WriteErr, when set, is consulted before every append's physical
	// write with the record type ("job", "point", "done"); a non-nil
	// return fails that write attempt. It is the chaos harness's I/O
	// fault injection point and is not consulted during compaction.
	WriteErr func(op string) error
	// AppendRetries is how many extra write attempts an append makes
	// after a failed one, with short exponential backoff; <0 disables
	// retries, 0 defaults to 2.
	AppendRetries int
	// RetrySleep replaces the inter-retry sleep in tests; nil uses
	// time.Sleep.
	RetrySleep func(time.Duration)
}

func (o Options) syncEvery() int {
	if o.SyncEvery <= 0 {
		return 1
	}
	return o.SyncEvery
}

func (o Options) keepPoints() int {
	if o.KeepPoints <= 0 {
		return 4096
	}
	return o.KeepPoints
}

func (o Options) appendRetries() int {
	switch {
	case o.AppendRetries < 0:
		return 0
	case o.AppendRetries == 0:
		return 2
	default:
		return o.AppendRetries
	}
}

// PointRecord is one grid point's journaled result. Numeric fields mirror
// core.SweepResult (cycles in simulated sim.Time units); failed points
// carry Error/Code instead and are never replayed into the cache — they
// re-simulate on resume, which reproduces the same deterministic failure.
type PointRecord struct {
	Chunk      int      `json:"chunk"`
	Seed       int64    `json:"seed"`
	Cycles     int64    `json:"cycles,omitempty"`
	GBps       float64  `json:"gbps,omitempty"`
	Transfers  int64    `json:"transfers,omitempty"`
	WaitCycles int64    `json:"wait_cycles,omitempty"`
	Commands   int64    `json:"commands,omitempty"`
	FaultSeed  int64    `json:"fault_seed,omitempty"`
	Attempts   int      `json:"attempts,omitempty"`
	Error      string   `json:"error,omitempty"`
	Code       string   `json:"code,omitempty"`
	Log        []string `json:"log,omitempty"`
	// Perf is the point's perf-counter rollup; nil on failed points and
	// on records journaled before the counter subsystem existed (both
	// replay fine — a warmed point without counters just contributes
	// nothing to the rollup totals).
	Perf *perfctr.Rollup `json:"perf,omitempty"`
}

// Ok reports whether the point completed successfully (replayable into
// the memo cache).
func (r PointRecord) Ok() bool { return r.Error == "" }

// record is the on-disk line format.
type record struct {
	T    string          `json:"t"`
	ID   string          `json:"id,omitempty"`   // job, done
	Spec json.RawMessage `json:"spec,omitempty"` // job
	Job  string          `json:"job,omitempty"`  // point: owning job
	Key  string          `json:"key,omitempty"`  // point: hex memo key
	Res  *PointRecord    `json:"res,omitempty"`  // point
}

// JobRecord is one journaled job in replayed State.
type JobRecord struct {
	ID   string
	Spec json.RawMessage
	Done bool
}

// State is what Open replayed from an existing journal.
type State struct {
	// Jobs lists every journaled job in submission order.
	Jobs []JobRecord
	// Points maps memo key (hex) to the newest journaled result for that
	// key, across all jobs.
	Points map[string]PointRecord
}

// Incomplete returns the jobs with no "done" record, in submission
// order — the ones a restart must resubmit.
func (s *State) Incomplete() []JobRecord {
	var out []JobRecord
	for _, j := range s.Jobs {
		if !j.Done {
			out = append(out, j)
		}
	}
	return out
}

// Health is the journal's observability snapshot, surfaced by the
// server's readiness endpoint.
type Health struct {
	// Appends counts records accepted since Open (compacted records
	// excluded).
	Appends int64 `json:"appends"`
	// Syncs counts fsync batches since Open.
	Syncs int64 `json:"syncs"`
	// Lag is the number of accepted records not yet fsynced — the
	// current loss window.
	Lag int `json:"lag"`
	// LastError is the most recent append failure, empty once a later
	// append succeeds. A persistent error means new completions are not
	// durable (they would re-simulate after a crash) — readiness turns
	// false on it.
	LastError string `json:"last_error,omitempty"`
}

// pointEntry keeps per-key insertion order for compaction recency.
type pointEntry struct {
	key string
	job string
	rec PointRecord
}

// Journal is an open write-ahead journal. Safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	crashed bool
	closed  bool
	pending int // records written but not fsynced

	appends int64
	syncs   int64
	lastErr string

	// live state, maintained across appends for Compact
	jobs    map[string]*liveJob
	jobSeq  []string // submission order
	points  []pointEntry
	pointIx map[string]int // key -> index into points
	nextJID int64
	garbage int // records superseded or belonging to done jobs
}

type liveJob struct {
	spec json.RawMessage
	done bool
}

// Open creates dir if needed, replays any existing journal into a State,
// compacts the file (atomic rewrite) and returns the journal opened for
// append. The returned State is the caller's resume input: warm the
// cache from State.Points, resubmit State.Incomplete().
func Open(dir string, opts Options) (*Journal, *State, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	j := &Journal{
		dir:     dir,
		opts:    opts,
		jobs:    make(map[string]*liveJob),
		pointIx: make(map[string]int),
	}
	if err := j.replay(); err != nil {
		return nil, nil, err
	}
	if err := j.compactLocked(); err != nil {
		return nil, nil, err
	}
	// The state is snapshotted after compaction, so it is exactly what
	// the rewritten file holds: resume sees the same world a second
	// restart would.
	return j, j.state(), nil
}

// path returns the journal file path.
func (j *Journal) path() string { return filepath.Join(j.dir, FileName) }

// replay loads an existing journal file into the live state. A torn
// final line (crash mid-write) is tolerated and dropped; any other
// malformed line is skipped too — the journal is a cache+resume aid, and
// refusing to boot over one bad record would turn a durability feature
// into an availability bug.
func (j *Journal) replay() error {
	f, err := os.Open(j.path())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: opening %s: %w", j.path(), err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn tail or corrupt line: drop, keep booting
		}
		j.apply(rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("journal: reading %s: %w", j.path(), err)
	}
	return nil
}

// apply folds one record into the live state.
func (j *Journal) apply(rec record) {
	switch rec.T {
	case "job":
		if rec.ID == "" {
			return
		}
		j.noteID(rec.ID)
		if _, ok := j.jobs[rec.ID]; !ok {
			j.jobs[rec.ID] = &liveJob{spec: rec.Spec}
			j.jobSeq = append(j.jobSeq, rec.ID)
		}
	case "point":
		if rec.Key == "" || rec.Res == nil {
			return
		}
		j.noteID(rec.Job)
		if ix, ok := j.pointIx[rec.Key]; ok {
			// Newest record wins; the superseded one is garbage.
			j.points[ix] = pointEntry{key: rec.Key, job: rec.Job, rec: *rec.Res}
			j.garbage++
			return
		}
		j.pointIx[rec.Key] = len(j.points)
		j.points = append(j.points, pointEntry{key: rec.Key, job: rec.Job, rec: *rec.Res})
	case "done":
		if lj, ok := j.jobs[rec.ID]; ok && !lj.done {
			lj.done = true
			j.garbage += 2 // its job+done records will compact away
		}
	}
}

// state snapshots the live state for the caller.
func (j *Journal) state() *State {
	st := &State{Points: make(map[string]PointRecord, len(j.points))}
	for _, id := range j.jobSeq {
		lj := j.jobs[id]
		st.Jobs = append(st.Jobs, JobRecord{ID: id, Spec: lj.spec, Done: lj.done})
	}
	for _, pe := range j.points {
		st.Points[pe.key] = pe.rec
	}
	return st
}

// nextJobID mints a fresh journal job id. The sequence continues past
// every id seen in the replayed file (job records and the owning-job
// field of surviving point records), so a restarted process can never
// reuse the id of a compacted-away job whose warm points remain.
func (j *Journal) nextJobID() string {
	j.nextJID++
	return fmt.Sprintf("j-%d", j.nextJID)
}

// noteID advances the id sequence past a replayed "j-<n>" id.
func (j *Journal) noteID(id string) {
	var n int64
	if _, err := fmt.Sscanf(id, "j-%d", &n); err == nil && n > j.nextJID {
		j.nextJID = n
	}
}

// AppendJob records a submission and returns its journal job id. The
// record is fsynced before AppendJob returns: the submission is the
// resume decision and must survive a crash that immediately follows.
func (j *Journal) AppendJob(spec json.RawMessage) (string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextJobID()
	rec := record{T: "job", ID: id, Spec: spec}
	if err := j.appendLocked(rec, true); err != nil {
		return "", err
	}
	j.apply(rec)
	return id, nil
}

// AppendPoint records one completed grid point under job jid, keyed by
// the scheduler's hex memo key. Point records batch SyncEvery per fsync.
func (j *Journal) AppendPoint(jid, key string, res PointRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := record{T: "point", Job: jid, Key: key, Res: &res}
	if err := j.appendLocked(rec, j.pending+1 >= j.opts.syncEvery()); err != nil {
		return err
	}
	j.apply(rec)
	return nil
}

// AppendDone records that every point of job jid was delivered; the
// record fsyncs immediately. When enough of the file is garbage, a
// compaction pass rewrites it in place (atomic rename).
func (j *Journal) AppendDone(jid string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := record{T: "done", ID: jid}
	if err := j.appendLocked(rec, true); err != nil {
		return err
	}
	j.apply(rec)
	// Auto-compact once most of the file is dead weight: done jobs'
	// records, superseded points, and warm points beyond the cap.
	garbage := j.garbage
	if excess := len(j.points) - j.opts.keepPoints(); excess > 0 {
		garbage += excess
	}
	live := len(j.points) + 2*j.incompleteCount()
	if garbage > live && garbage > 64 {
		return j.compactLocked()
	}
	return nil
}

func (j *Journal) incompleteCount() int {
	n := 0
	for _, lj := range j.jobs {
		if !lj.done {
			n++
		}
	}
	return n
}

// appendLocked writes one record (with retries) and syncs when asked.
// Callers hold j.mu.
func (j *Journal) appendLocked(rec record, sync bool) error {
	if j.crashed {
		return ErrCrashed
	}
	if j.closed {
		return errors.New("journal: closed")
	}
	if err := j.ensureOpen(); err != nil {
		j.lastErr = err.Error()
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		// records are plain data; this cannot fail.
		panic(fmt.Sprintf("journal: marshaling record: %v", err))
	}
	line = append(line, '\n')

	write := func() error {
		if j.opts.WriteErr != nil {
			if err := j.opts.WriteErr(rec.T); err != nil {
				return err
			}
		}
		_, err := j.w.Write(line)
		return err
	}
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		err = write()
		if err == nil {
			break
		}
		if attempt >= j.opts.appendRetries() {
			j.lastErr = err.Error()
			return fmt.Errorf("journal: appending %s record: %w", rec.T, err)
		}
		sleep := j.opts.RetrySleep
		if sleep == nil {
			sleep = time.Sleep
		}
		sleep(backoff)
		backoff *= 2
	}
	j.appends++
	j.pending++
	j.lastErr = ""
	if sync {
		if err := j.syncLocked(); err != nil {
			j.lastErr = err.Error()
			return err
		}
	}
	return nil
}

func (j *Journal) ensureOpen() error {
	if j.f != nil {
		return nil
	}
	f, err := os.OpenFile(j.path(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening %s for append: %w", j.path(), err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return nil
}

// Sync flushes buffered records to disk (fsync). The scheduler calls it
// at job boundaries; Close calls it last.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed || j.closed || j.f == nil {
		return nil
	}
	if err := j.syncLocked(); err != nil {
		j.lastErr = err.Error()
		return err
	}
	return nil
}

func (j *Journal) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flushing: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.syncs++
	j.pending = 0
	return nil
}

// Close flushes, fsyncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil || j.crashed {
		return nil
	}
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Crash simulates a process crash for tests: the unsynced write buffer
// is discarded (as a real crash would lose it) and the journal refuses
// further use. Only fsynced records survive for the next Open.
func (j *Journal) Crash() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed || j.closed {
		return
	}
	j.crashed = true
	if j.w != nil {
		j.w.Reset(io.Discard) // drop the unsynced tail
	}
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// Health snapshots the journal's counters for readiness reporting.
func (j *Journal) Health() Health {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Health{
		Appends:   j.appends,
		Syncs:     j.syncs,
		Lag:       j.pending,
		LastError: j.lastErr,
	}
}

// Compact rewrites the journal keeping only what a restart needs: job
// records of unfinished jobs, every point of an unfinished job, and the
// newest KeepPoints other points as cache warmers. The rewrite is
// atomic (temp file + rename); on any error the old journal survives.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	if j.crashed || j.closed {
		return nil
	}
	// Flush anything buffered so the state we rewrite from is complete.
	if j.f != nil {
		if err := j.syncLocked(); err != nil {
			return err
		}
		j.f.Close()
		j.f = nil
		j.w = nil
	}

	// Prune: drop done jobs, collapse points (already deduped), keep
	// completed-job points newest-first up to the cap.
	keepJobs := make(map[string]*liveJob)
	var keepSeq []string
	for _, id := range j.jobSeq {
		if lj := j.jobs[id]; !lj.done {
			keepJobs[id] = lj
			keepSeq = append(keepSeq, id)
		}
	}
	incomplete := func(jid string) bool {
		_, ok := keepJobs[jid]
		return ok
	}
	budget := j.opts.keepPoints()
	keepPt := make([]bool, len(j.points))
	for i := range j.points {
		if incomplete(j.points[i].job) {
			keepPt[i] = true
		}
	}
	for i := len(j.points) - 1; i >= 0 && budget > 0; i-- { // newest first
		if !keepPt[i] {
			keepPt[i] = true
			budget--
		}
	}
	var kept []pointEntry
	for i, keep := range keepPt {
		if keep {
			kept = append(kept, j.points[i])
		}
	}

	tmp := j.path() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, id := range keepSeq {
		if err := enc.Encode(record{T: "job", ID: id, Spec: keepJobs[id].spec}); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("journal: compacting: %w", err)
		}
	}
	for i := range kept {
		rec := kept[i].rec
		if err := enc.Encode(record{T: "point", Job: kept[i].job, Key: kept[i].key, Res: &rec}); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("journal: compacting: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := os.Rename(tmp, j.path()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compacting: %w", err)
	}
	// fsync the directory so the rename itself is durable.
	if d, err := os.Open(j.dir); err == nil {
		d.Sync()
		d.Close()
	}

	// Adopt the pruned state.
	j.jobs = keepJobs
	j.jobSeq = keepSeq
	j.points = kept
	j.pointIx = make(map[string]int, len(kept))
	for i, pe := range kept {
		j.pointIx[pe.key] = i
	}
	j.garbage = 0
	j.pending = 0
	return nil
}
