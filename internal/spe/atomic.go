package spe

import (
	"encoding/binary"

	"cellbe/internal/sim"
)

// Atomic (lock-line reservation) operations for SPU programs, built on
// the MFC's getllar/putllc commands. The helpers (AtomicAdd32, Lock,
// Unlock) use the last 128-byte line of the local store as their scratch
// buffer — programs that use them must leave it free.

// atomicScratch is the reserved LS line used by the convenience helpers.
const atomicScratch = LocalStoreBytes - 128

// GetLLAR atomically loads the 128-byte line at ea into lsAddr and places
// a reservation. Blocks until the line arrives.
func (c *Context) GetLLAR(lsAddr int, ea int64) {
	c.issueCost()
	c.WaitFunc(func(wake func()) {
		c.spe.dma.GetLLAR(c.spe.index, lsAddr, ea, wake)
	})
}

// PutLLC conditionally stores the line at lsAddr back to ea; it reports
// whether the reservation held and the store was performed.
func (c *Context) PutLLC(lsAddr int, ea int64) bool {
	c.issueCost()
	var ok bool
	c.WaitFunc(func(wake func()) {
		c.spe.dma.PutLLC(c.spe.index, lsAddr, ea, func(success bool) {
			ok = success
			wake()
		})
	})
	return ok
}

// AtomicAdd32 atomically adds delta to the little-endian uint32 at ea
// (which must be line-aligned plus a 4-byte-aligned offset within the
// line) and returns the new value, retrying on reservation loss.
func (c *Context) AtomicAdd32(ea int64, delta uint32) uint32 {
	line := ea &^ 127
	off := int(ea - line)
	ls := c.spe.ls
	for {
		c.GetLLAR(atomicScratch, line)
		v := binary.LittleEndian.Uint32(ls[atomicScratch+off:]) + delta
		binary.LittleEndian.PutUint32(ls[atomicScratch+off:], v)
		if c.PutLLC(atomicScratch, line) {
			return v
		}
		c.Wait(20) // brief backoff before retrying
	}
}

// Lock acquires a spinlock: the uint32 at ea transitions 0 -> 1
// atomically. Contending SPEs back off exponentially, as Cell programming
// guides recommend to keep the lock line from ping-ponging.
func (c *Context) Lock(ea int64) {
	line := ea &^ 127
	off := int(ea - line)
	ls := c.spe.ls
	backoff := sim.Time(50)
	for {
		c.GetLLAR(atomicScratch, line)
		if binary.LittleEndian.Uint32(ls[atomicScratch+off:]) == 0 {
			binary.LittleEndian.PutUint32(ls[atomicScratch+off:], 1)
			if c.PutLLC(atomicScratch, line) {
				return
			}
		}
		c.Wait(backoff)
		if backoff < 1600 {
			backoff *= 2
		}
	}
}

// Unlock releases a spinlock acquired with Lock.
func (c *Context) Unlock(ea int64) {
	line := ea &^ 127
	off := int(ea - line)
	ls := c.spe.ls
	for {
		c.GetLLAR(atomicScratch, line)
		binary.LittleEndian.PutUint32(ls[atomicScratch+off:], 0)
		if c.PutLLC(atomicScratch, line) {
			return
		}
		c.Wait(20)
	}
}
