package spe

import (
	"bytes"
	"testing"
	"testing/quick"

	"cellbe/internal/eib"
	"cellbe/internal/mfc"
	"cellbe/internal/sim"
)

// loopFabric connects every SPE's MFC to a shared flat memory with fixed
// latency, standing in for the cell package's routing.
type loopFabric struct {
	eng *sim.Engine
	mem []byte
	lat sim.Time
}

func (f *loopFabric) ReadEA(ea int64, n int, earliest sim.Time, dst []byte, done sim.Callee) {
	start := earliest
	if now := f.eng.Now(); start < now {
		start = now
	}
	end := start + f.lat
	f.eng.At(end, func() {
		copy(dst, f.mem[ea:ea+int64(n)])
		done.Call(end)
	})
}

func (f *loopFabric) WriteEA(ea int64, n int, earliest sim.Time, src []byte, done sim.Callee) {
	start := earliest
	if now := f.eng.Now(); start < now {
		start = now
	}
	end := start + f.lat
	f.eng.At(end, func() {
		copy(f.mem[ea:ea+int64(n)], src)
		done.Call(end)
	})
}

func newSPE(t *testing.T) (*sim.Engine, *loopFabric, *SPE) {
	t.Helper()
	eng := sim.NewEngine()
	fab := &loopFabric{eng: eng, mem: make([]byte, 1<<20), lat: 100}
	s := New(eng, 0, eib.RampSPE0, fab, DefaultConfig(), mfc.DefaultConfig())
	return eng, fab, s
}

func TestGetWaitTag(t *testing.T) {
	eng, fab, s := newSPE(t)
	for i := 0; i < 256; i++ {
		fab.mem[4096+i] = byte(i)
	}
	var doneAt sim.Time
	s.Run("k", func(ctx *Context) {
		ctx.Get(0, 4096, 256, 7)
		ctx.WaitTag(7)
		doneAt = ctx.Decrementer()
	})
	eng.Run()
	if doneAt == 0 {
		t.Fatal("kernel never finished")
	}
	if !bytes.Equal(s.LS()[:256], fab.mem[4096:4096+256]) {
		t.Fatal("GET payload mismatch")
	}
}

func TestPutDelivers(t *testing.T) {
	eng, fab, s := newSPE(t)
	copy(s.LS()[128:], []byte("spu payload"))
	s.Run("k", func(ctx *Context) {
		ctx.Put(128, 8192, 16, 0)
		ctx.WaitTag(0)
	})
	eng.Run()
	if string(fab.mem[8192:8192+11]) != "spu payload" {
		t.Fatalf("memory holds %q", fab.mem[8192:8192+11])
	}
}

func TestGetListViaContext(t *testing.T) {
	eng, fab, s := newSPE(t)
	for i := 0; i < 512; i++ {
		fab.mem[i] = byte(i * 3)
	}
	s.Run("k", func(ctx *Context) {
		ctx.GetList(0, []mfc.ListElem{{EA: 0, Size: 256}, {EA: 256, Size: 256}}, 1)
		ctx.WaitTag(1)
	})
	eng.Run()
	if !bytes.Equal(s.LS()[:512], fab.mem[:512]) {
		t.Fatal("GETL payload mismatch")
	}
}

func TestEnqueueBlocksOnFullQueue(t *testing.T) {
	// Issue far more commands than the queue depth: the context must
	// stall and retry, and all commands must eventually complete.
	eng, _, s := newSPE(t)
	const n = 64
	completed := false
	s.Run("k", func(ctx *Context) {
		for i := 0; i < n; i++ {
			ctx.Get((i%8)*1024, int64(i%8)*1024, 1024, 0)
		}
		ctx.WaitTag(0)
		completed = true
	})
	eng.Run()
	if !completed {
		t.Fatal("kernel with queue pressure did not complete")
	}
	if got := s.MFC().Stats().Commands; got != n {
		t.Fatalf("MFC saw %d commands, want %d", got, n)
	}
}

func TestWaitTagMaskAlreadyIdle(t *testing.T) {
	eng, _, s := newSPE(t)
	var before, after sim.Time
	s.Run("k", func(ctx *Context) {
		before = ctx.Decrementer()
		ctx.WaitTagMask(0xffff)
		after = ctx.Decrementer()
	})
	eng.Run()
	if after-before > 10 {
		t.Fatalf("wait on idle tags cost %d cycles, want just channel overhead", after-before)
	}
}

func TestStreamLSPeakAt16Bytes(t *testing.T) {
	eng, _, s := newSPE(t)
	var cyc16, cyc4 sim.Time
	s.Run("k", func(ctx *Context) {
		cyc16 = ctx.StreamLS(LSLoad, 16, 1<<20)
		cyc4 = ctx.StreamLS(LSLoad, 4, 1<<20)
	})
	eng.Run()
	// 16B loads: 1 cycle per access => 64Ki cycles for 1 MB => peak.
	if cyc16 != (1<<20)/16 {
		t.Fatalf("16B LS loads took %d cycles, want %d", cyc16, (1<<20)/16)
	}
	if cyc4 <= cyc16 {
		t.Fatal("4B accesses must be slower than 16B (quadword extract overhead)")
	}
}

func TestStreamLSBadSizePanics(t *testing.T) {
	eng, _, s := newSPE(t)
	s.Run("k", func(ctx *Context) {
		defer func() {
			if recover() == nil {
				t.Error("3-byte LS access should panic")
			}
			panic("rethrow")
		}()
		ctx.StreamLS(LSLoad, 3, 1024)
	})
	defer func() { recover() }()
	eng.Run()
}

func TestMailboxBlockingHandshake(t *testing.T) {
	eng := sim.NewEngine()
	mb := NewMailbox(eng, 1)
	var order []uint32
	sim.Spawn(eng, "reader", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			order = append(order, mb.Read(p))
		}
	})
	sim.Spawn(eng, "writer", func(p *sim.Process) {
		p.Wait(10)
		for i := uint32(1); i <= 3; i++ {
			mb.Write(p, i) // capacity 1: blocks until reader drains
		}
	})
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Fatalf("mailbox order %v", order)
	}
}

func TestMailboxTryOps(t *testing.T) {
	eng := sim.NewEngine()
	mb := NewMailbox(eng, 2)
	if _, ok := mb.TryRead(); ok {
		t.Fatal("empty mailbox must not read")
	}
	if !mb.TryWrite(1) || !mb.TryWrite(2) {
		t.Fatal("writes under capacity must succeed")
	}
	if mb.TryWrite(3) {
		t.Fatal("write over capacity must fail")
	}
	if v, ok := mb.TryRead(); !ok || v != 1 {
		t.Fatalf("read %d/%v, want 1", v, ok)
	}
	if mb.Len() != 1 {
		t.Fatalf("len %d, want 1", mb.Len())
	}
}

// Property: mailbox preserves FIFO order for any message sequence.
func TestMailboxFIFOProperty(t *testing.T) {
	f := func(msgs []uint32) bool {
		if len(msgs) == 0 {
			return true
		}
		eng := sim.NewEngine()
		mb := NewMailbox(eng, 4)
		var got []uint32
		sim.Spawn(eng, "r", func(p *sim.Process) {
			for range msgs {
				got = append(got, mb.Read(p))
			}
		})
		sim.Spawn(eng, "w", func(p *sim.Process) {
			for _, m := range msgs {
				mb.Write(p, m)
			}
		})
		eng.Run()
		if len(got) != len(msgs) {
			return false
		}
		for i := range msgs {
			if got[i] != msgs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessCostsUnknownSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown element size should panic")
		}
	}()
	DefaultConfig().LoadCost.Cost(5)
}

func TestDecrementerAdvances(t *testing.T) {
	eng, _, s := newSPE(t)
	var t0, t1 sim.Time
	s.Run("k", func(ctx *Context) {
		t0 = ctx.Decrementer()
		ctx.Wait(123)
		t1 = ctx.Decrementer()
	})
	eng.Run()
	if t1-t0 != 123 {
		t.Fatalf("decrementer advanced %d, want 123", t1-t0)
	}
}

func TestFencedVariantsOrder(t *testing.T) {
	// GetF/PutF/GetB/PutB must all complete and respect ordering: a
	// barriered PUT lands after a prior PUT to the same address.
	eng, fab, s := newSPE(t)
	copy(s.LS()[0:4], []byte{1, 1, 1, 1})
	copy(s.LS()[128:132], []byte{2, 2, 2, 2})
	s.Run("k", func(ctx *Context) {
		ctx.Put(0, 0, 128, 0)
		ctx.PutB(128, 0, 128, 1) // barrier: after the first PUT
		ctx.WaitTagMask(3)
		ctx.GetF(256, 0, 128, 2) // fenced read-back
		ctx.WaitTag(2)
		ctx.GetB(384, 0, 128, 3)
		ctx.WaitTag(3)
		ctx.PutF(384, 512, 128, 4)
		ctx.WaitTag(4)
	})
	eng.Run()
	if fab.mem[0] != 2 {
		t.Fatalf("barriered PUT did not win: mem[0]=%d", fab.mem[0])
	}
	if s.LS()[256] != 2 || s.LS()[384] != 2 {
		t.Fatal("fenced/barriered GETs read stale data")
	}
	if fab.mem[512] != 2 {
		t.Fatal("fenced PUT did not deliver")
	}
}

func TestPutListViaContext(t *testing.T) {
	eng, fab, s := newSPE(t)
	fill := func(off, n int, seed byte) {
		for i := 0; i < n; i++ {
			s.LS()[off+i] = seed + byte(i)
		}
	}
	fill(0, 128, 10)
	fill(128, 128, 99)
	s.Run("k", func(ctx *Context) {
		ctx.PutList(0, []mfc.ListElem{{EA: 1024, Size: 128}, {EA: 4096, Size: 128}}, 0)
		ctx.WaitTag(0)
	})
	eng.Run()
	if !bytes.Equal(fab.mem[1024:1024+128], s.LS()[0:128]) ||
		!bytes.Equal(fab.mem[4096:4096+128], s.LS()[128:256]) {
		t.Fatal("PUTL payload mismatch")
	}
}

func TestAccessorsAndCosts(t *testing.T) {
	_, _, s := newSPE(t)
	if s.Index() != 0 || s.Ramp() != eib.RampSPE0 {
		t.Fatal("accessors wrong")
	}
	costs := DefaultConfig().LoadCost
	for _, sz := range []int{1, 2, 4, 8, 16} {
		if costs.Cost(sz) <= 0 {
			t.Fatalf("cost for %dB must be positive", sz)
		}
	}
	if costs.Cost(16) >= costs.Cost(1) {
		t.Fatal("quadword access must be cheapest")
	}
}

func TestStreamLSStoreAndCopy(t *testing.T) {
	eng, _, s := newSPE(t)
	var st, cp sim.Time
	s.Run("k", func(ctx *Context) {
		if ctx.SPE() != s {
			t.Error("context SPE accessor wrong")
		}
		st = ctx.StreamLS(LSStore, 16, 1<<16)
		cp = ctx.StreamLS(LSCopy, 16, 1<<16)
	})
	eng.Run()
	if cp <= st {
		t.Fatal("copy must cost more than store (load+store per element)")
	}
}

func TestWriteMailboxBlocksAtCapacityOne(t *testing.T) {
	eng, _, s := newSPE(t)
	var wrote []sim.Time
	s.Run("k", func(ctx *Context) {
		ctx.WriteMailbox(1) // outbox depth 1: first write succeeds
		wrote = append(wrote, ctx.Decrementer())
		ctx.WriteMailbox(2) // blocks until drained
		wrote = append(wrote, ctx.Decrementer())
	})
	eng.Schedule(500, func() { s.Outbox.TryRead() })
	eng.Run()
	if len(wrote) != 2 || wrote[1] < 500 {
		t.Fatalf("second outbox write at %v, want blocked until 500", wrote)
	}
}
