// Package spe models a Synergistic Processor Element: the SPU core with
// its 256 KB Local Store, the channel interface to the MFC's DMA engine,
// mailboxes, and the decrementer.
//
// SPU "programs" are Go functions run as simulator coroutines. They are
// charged simulated cycles for local store accesses and for the channel
// operations that program the MFC, and they block on simulated DMA
// completion — exactly the structure of the paper's microbenchmark kernels
// (issue a batch of DMA commands, delay the tag-group wait as long as
// possible, measure with the decrementer).
package spe

import (
	"fmt"
	"sync"

	"cellbe/internal/eib"
	"cellbe/internal/mfc"
	"cellbe/internal/sim"
)

// LocalStoreBytes is the size of an SPE's local store.
const LocalStoreBytes = 256 * 1024

// Config holds SPU timing parameters (CPU cycles).
type Config struct {
	// LoadCost / StoreCost give the cycles per local store access by
	// element size. The SPU ISA has only 16-byte loads and stores: a
	// full quadword streams at 1 access/cycle (peak 33.6 GB/s at
	// 2.1 GHz); narrower accesses pay rotate/mask (loads) or
	// read-modify-write (stores) overhead.
	LoadCost  AccessCosts
	StoreCost AccessCosts
	// ChannelCycles is the cost of one SPU channel write/read. Issuing a
	// DMA command takes several (target address, EA high/low, size, tag,
	// opcode).
	ChannelCycles sim.Time
	// DMAIssueChannels is the number of channel operations per DMA
	// command issue.
	DMAIssueChannels int
}

// AccessCosts maps element sizes 1,2,4,8,16 to a per-access cycle cost.
type AccessCosts struct {
	C1, C2, C4, C8, C16 sim.Time
}

// Cost returns the per-access cost for an element size.
func (a AccessCosts) Cost(size int) sim.Time {
	switch size {
	case 1:
		return a.C1
	case 2:
		return a.C2
	case 4:
		return a.C4
	case 8:
		return a.C8
	case 16:
		return a.C16
	}
	panic(fmt.Sprintf("spe: unsupported element size %d", size))
}

// DefaultConfig returns SPU parameters calibrated to §4.2.2 of the paper:
// only 16-byte accesses reach the 33.6 GB/s local store peak; every
// narrower access pays quadword extract/merge overhead.
func DefaultConfig() Config {
	return Config{
		LoadCost:         AccessCosts{C1: 3, C2: 3, C4: 2, C8: 2, C16: 1},
		StoreCost:        AccessCosts{C1: 4, C2: 4, C4: 3, C8: 3, C16: 1},
		ChannelCycles:    2,
		DMAIssueChannels: 6,
	}
}

// SPE is one Synergistic Processor Element.
type SPE struct {
	eng   *sim.Engine
	cfg   Config
	index int // logical index as seen by the program
	ramp  eib.RampID
	ls    []byte
	dma   *mfc.MFC

	// Mailboxes: the PPE writes the 4-deep inbox, the SPU writes the
	// 1-deep outbox.
	Inbox  *Mailbox
	Outbox *Mailbox

	// Signal notification registers (OR mode).
	snrs   [2]snr
	sigSeq int

	// Dirty span of ls: every byte outside [dirtyLo, dirtyHi) is
	// guaranteed zero. Writers widen it (see Taint); recycling a buffer
	// zeroes only the span instead of the whole 256 KiB store, which is
	// what makes per-grid-point system reuse cheap in sweeps — a pair
	// kernel at small chunk sizes dirties a fraction of the store.
	dirtyLo, dirtyHi int
}

// lsSlab is a pooled local-store buffer together with the dirty span its
// previous owner accumulated, so reuse zeroes only what was written.
type lsSlab struct {
	b      []byte
	lo, hi int
}

// lsPool recycles local-store buffers across SPE lifetimes. A sweep builds
// and discards a full system per grid point, and at 256 KiB per SPE the
// stores dominate its allocation volume (and with it, GC frequency);
// recycling trades that for a memclr of the reused buffer's dirty span.
var lsPool sync.Pool

func newLS() []byte {
	if v := lsPool.Get(); v != nil {
		slab := v.(*lsSlab)
		if slab.lo < slab.hi {
			clear(slab.b[slab.lo:slab.hi])
		}
		return slab.b
	}
	return make([]byte, LocalStoreBytes)
}

// Release returns the SPE's local store to the shared buffer pool. The
// caller promises the SPE is dead: no scenario, DMA or simulation event
// will touch it afterwards.
func (s *SPE) Release() {
	if s.ls != nil {
		lsPool.Put(&lsSlab{b: s.ls, lo: s.dirtyLo, hi: s.dirtyHi})
		s.ls = nil
	}
}

// New builds an SPE. fabric is the routing layer (provided by the cell
// package); mfcCfg configures the DMA engine.
func New(eng *sim.Engine, index int, ramp eib.RampID, fabric mfc.Fabric, cfg Config, mfcCfg mfc.Config) *SPE {
	s := &SPE{
		eng:     eng,
		cfg:     cfg,
		index:   index,
		ramp:    ramp,
		ls:      newLS(),
		dirtyLo: LocalStoreBytes,
	}
	s.dma = mfc.New(eng, fabric, s.ls, mfcCfg)
	s.dma.SetLSTaint(s.Taint)
	s.Inbox = NewMailbox(eng, 4)
	s.Outbox = NewMailbox(eng, 1)
	return s
}

// Reset returns the SPE to the state New would build for the given
// binding, keeping the engine, the logical index, the local store buffer
// (re-zeroing only its dirty span) and the MFC record. It exists for
// warm-system recycling: a reset SPE must be observationally identical to
// a fresh one.
func (s *SPE) Reset(ramp eib.RampID, fabric mfc.Fabric, cfg Config, mfcCfg mfc.Config) {
	s.cfg = cfg
	s.ramp = ramp
	if s.ls == nil {
		s.ls = newLS()
	} else if s.dirtyLo < s.dirtyHi {
		clear(s.ls[s.dirtyLo:s.dirtyHi])
	}
	s.dirtyLo, s.dirtyHi = LocalStoreBytes, 0
	s.dma.Reset(fabric, s.ls, mfcCfg)
	s.dma.SetLSTaint(s.Taint)
	s.Inbox.Reset(s.eng)
	s.Outbox.Reset(s.eng)
	s.snrs = [2]snr{}
	s.sigSeq = 0
}

// Taint records that [lo, hi) of the local store may now hold non-zero
// bytes. Every write path into the store must pass through it (or through
// LS/LSWrite, which call it); a missed taint would let a recycled buffer
// leak stale bytes into the next run.
func (s *SPE) Taint(lo, hi int) {
	if lo < s.dirtyLo {
		s.dirtyLo = lo
	}
	if hi > s.dirtyHi {
		s.dirtyHi = hi
	}
}

// Index returns the SPE's logical index.
func (s *SPE) Index() int { return s.index }

// Ramp returns the SPE's physical position on the EIB.
func (s *SPE) Ramp() eib.RampID { return s.ramp }

// LS returns the local store contents. The caller may write through the
// returned slice, so the whole store is conservatively marked dirty; the
// packet hot path uses LSRead/LSWrite instead to keep the span tight.
func (s *SPE) LS() []byte {
	s.Taint(0, LocalStoreBytes)
	return s.ls
}

// LSRead returns [off, off+n) of the local store for reading only.
func (s *SPE) LSRead(off, n int) []byte { return s.ls[off : off+n] }

// LSWrite returns [off, off+n) of the local store for writing, marking
// exactly that span dirty.
func (s *SPE) LSWrite(off, n int) []byte {
	s.Taint(off, off+n)
	return s.ls[off : off+n]
}

// MFC returns the SPE's memory flow controller (for proxy commands and
// statistics).
func (s *SPE) MFC() *mfc.MFC { return s.dma }

// DMAIssueCycles returns the channel-write cycles charged to program one
// DMA command (target address, EA high/low, size, tag, opcode).
func (s *SPE) DMAIssueCycles() sim.Time {
	return sim.Time(s.cfg.DMAIssueChannels) * s.cfg.ChannelCycles
}

// TagStatusCycles returns the channel cycles charged to request and read
// tag-group completion status (MFC_WriteTagUpdateRequest + read).
func (s *SPE) TagStatusCycles() sim.Time { return 2 * s.cfg.ChannelCycles }

// Run spawns fn as the SPU program of this SPE.
func (s *SPE) Run(name string, fn func(ctx *Context)) *sim.Process {
	return sim.Spawn(s.eng, name, func(p *sim.Process) {
		fn(&Context{Process: p, spe: s})
	})
}

// Context is the execution context handed to an SPU program. It embeds the
// simulator process, so programs can also Wait for raw cycle counts to
// model computation.
type Context struct {
	*sim.Process
	spe *SPE
}

// SPE returns the element the program runs on.
func (c *Context) SPE() *SPE { return c.spe }

// Decrementer returns the current time in CPU cycles — the SPU timebase
// register the paper uses to measure DMA bandwidth.
func (c *Context) Decrementer() sim.Time { return c.Now() }

// issueCost charges the channel writes needed to program one DMA command.
func (c *Context) issueCost() {
	c.Wait(c.spe.DMAIssueCycles())
}

// CommandError is the typed panic value raised when an SPU program
// enqueues an invalid DMA command (bad size, alignment, tag or list).
// The engine wraps it in a *sim.ProcessPanic, which simulation drivers
// (cell.System.RunChecked, the CLIs) recover into a clean error message.
type CommandError struct {
	SPE int
	Err error
}

func (e *CommandError) Error() string { return fmt.Sprintf("spe%d: %v", e.SPE, e.Err) }

// Unwrap exposes the underlying mfc error to errors.Is/As.
func (e *CommandError) Unwrap() error { return e.Err }

// enqueue blocks until the MFC accepts the command (the channel write
// stalls while the command queue is full), then returns; completion is
// tracked by the command's tag group.
func (c *Context) enqueue(cmd mfc.Cmd) {
	c.SetNote("dma-issue")
	c.issueCost()
	for {
		err := c.spe.dma.Enqueue(cmd, nil)
		if err == nil {
			return
		}
		if err != mfc.ErrQueueFull {
			panic(&CommandError{SPE: c.spe.index, Err: err})
		}
		c.SetNote("dma-qfull")
		c.WaitCallee(c.spe.dma.OnSpaceCB)
	}
}

// Get enqueues a DMA transfer of size bytes from effective address ea into
// local store address lsAddr, under the given tag group.
func (c *Context) Get(lsAddr int, ea int64, size, tag int) {
	c.enqueue(mfc.Cmd{Kind: mfc.Get, Tag: tag, LSAddr: lsAddr, EA: ea, Size: size})
}

// Put enqueues a DMA transfer from local store to effective address space.
func (c *Context) Put(lsAddr int, ea int64, size, tag int) {
	c.enqueue(mfc.Cmd{Kind: mfc.Put, Tag: tag, LSAddr: lsAddr, EA: ea, Size: size})
}

// GetF/PutF are the fenced variants; GetB/PutB the barriered ones.
func (c *Context) GetF(lsAddr int, ea int64, size, tag int) {
	c.enqueue(mfc.Cmd{Kind: mfc.Get, Tag: tag, LSAddr: lsAddr, EA: ea, Size: size, Fence: true})
}

// PutF enqueues a fenced Put (ordered after prior same-tag commands).
func (c *Context) PutF(lsAddr int, ea int64, size, tag int) {
	c.enqueue(mfc.Cmd{Kind: mfc.Put, Tag: tag, LSAddr: lsAddr, EA: ea, Size: size, Fence: true})
}

// GetB enqueues a barriered Get (ordered after all prior commands).
func (c *Context) GetB(lsAddr int, ea int64, size, tag int) {
	c.enqueue(mfc.Cmd{Kind: mfc.Get, Tag: tag, LSAddr: lsAddr, EA: ea, Size: size, Barrier: true})
}

// PutB enqueues a barriered Put.
func (c *Context) PutB(lsAddr int, ea int64, size, tag int) {
	c.enqueue(mfc.Cmd{Kind: mfc.Put, Tag: tag, LSAddr: lsAddr, EA: ea, Size: size, Barrier: true})
}

// GetList enqueues a list-directed Get.
func (c *Context) GetList(lsAddr int, list []mfc.ListElem, tag int) {
	c.enqueue(mfc.Cmd{Kind: mfc.GetList, Tag: tag, LSAddr: lsAddr, List: list})
}

// PutList enqueues a list-directed Put.
func (c *Context) PutList(lsAddr int, list []mfc.ListElem, tag int) {
	c.enqueue(mfc.Cmd{Kind: mfc.PutList, Tag: tag, LSAddr: lsAddr, List: list})
}

// WaitTag blocks until tag group t has no incomplete commands.
func (c *Context) WaitTag(t int) { c.WaitTagMask(1 << uint(t)) }

// WaitTagMask blocks until all tag groups in mask are idle (the
// MFC_WriteTagMask + MFC_WriteTagUpdateRequest + read-status sequence).
func (c *Context) WaitTagMask(mask uint32) {
	c.SetNote("tag-channel")
	c.Wait(c.spe.TagStatusCycles())
	if c.spe.dma.TagsComplete(mask) {
		return
	}
	c.SetNote("tag-wait")
	c.WaitCallee(func(cb sim.Callee) { c.spe.dma.WaitTagsCB(mask, cb) })
}

// LSOp selects a local store streaming operation.
type LSOp int

// Local store streaming operations.
const (
	LSLoad LSOp = iota
	LSStore
	LSCopy
)

// StreamLS charges the cycles for a tight SPU loop that loads, stores, or
// copies totalBytes of local store in elemSize-byte accesses, and returns
// the cycles spent. It models the compiler-generated unrolled loops of
// §4.2.2: time is per-access cost only, since the LS is a flat SRAM with
// no cache effects.
func (c *Context) StreamLS(op LSOp, elemSize int, totalBytes int) sim.Time {
	if totalBytes <= 0 || elemSize <= 0 {
		panic("spe: StreamLS with non-positive size")
	}
	n := sim.Time(totalBytes / elemSize)
	var per sim.Time
	switch op {
	case LSLoad:
		per = c.spe.cfg.LoadCost.Cost(elemSize)
	case LSStore:
		per = c.spe.cfg.StoreCost.Cost(elemSize)
	case LSCopy:
		per = c.spe.cfg.LoadCost.Cost(elemSize) + c.spe.cfg.StoreCost.Cost(elemSize)
	default:
		panic("spe: unknown LS op")
	}
	d := n * per
	c.Wait(d)
	return d
}

// Mailbox is a bounded 32-bit message queue between the PPE and an SPU.
type Mailbox struct {
	eng     *sim.Engine
	cap     int
	queue   []uint32
	readers []func()
	writers []func()
}

// NewMailbox returns a mailbox holding up to capacity entries.
func NewMailbox(eng *sim.Engine, capacity int) *Mailbox {
	return &Mailbox{eng: eng, cap: capacity}
}

// Reset empties the mailbox and drops any parked readers and writers,
// reusing the queue and waiter backings for the next run.
func (m *Mailbox) Reset(eng *sim.Engine) {
	m.eng = eng
	m.queue = m.queue[:0]
	clear(m.readers)
	m.readers = m.readers[:0]
	clear(m.writers)
	m.writers = m.writers[:0]
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return len(m.queue) }

// TryWrite appends v if there is room, reporting success.
func (m *Mailbox) TryWrite(v uint32) bool {
	if len(m.queue) >= m.cap {
		return false
	}
	m.queue = append(m.queue, v)
	m.wakeAll(&m.readers)
	return true
}

// TryRead pops the oldest message, reporting success.
func (m *Mailbox) TryRead() (uint32, bool) {
	if len(m.queue) == 0 {
		return 0, false
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	m.wakeAll(&m.writers)
	return v, true
}

func (m *Mailbox) wakeAll(subs *[]func()) {
	list := *subs
	*subs = nil
	for _, fn := range list {
		m.eng.Post(fn)
	}
}

// Read blocks the process until a message is available.
func (m *Mailbox) Read(p *sim.Process) uint32 {
	for {
		if v, ok := m.TryRead(); ok {
			return v
		}
		p.WaitFunc(func(wake func()) { m.readers = append(m.readers, wake) })
	}
}

// Write blocks the process until there is room, then appends v.
func (m *Mailbox) Write(p *sim.Process, v uint32) {
	for {
		if m.TryWrite(v) {
			return
		}
		p.WaitFunc(func(wake func()) { m.writers = append(m.writers, wake) })
	}
}

// ReadMailbox is a convenience for SPU programs reading their inbox.
func (c *Context) ReadMailbox() uint32 { return c.spe.Inbox.Read(c.Process) }

// WriteMailbox is a convenience for SPU programs writing their outbox.
func (c *Context) WriteMailbox(v uint32) { c.spe.Outbox.Write(c.Process, v) }
