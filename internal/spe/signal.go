package spe

import (
	"cellbe/internal/mfc"
	"cellbe/internal/sim"
)

// Signal notification registers: each SPE has two 32-bit SNRs that other
// units write by DMA to a memory-mapped address just above the SPE's
// local store in the EA map. In OR mode (the Cell's many-to-one mode,
// modeled here) writes accumulate bitwise, so several producers can
// signal one consumer without losing notifications. The SPU reads a
// register with a blocking channel read that returns and clears the
// accumulated value.

// SNROffset is the EA offset of SNR1 relative to the SPE's LS base; SNR2
// follows at +4. Both sit in the aperture hole above the 256 KB local
// store, matching the problem-state register area of the real chip.
const SNROffset = LocalStoreBytes

type snr struct {
	value   uint32
	pending bool
	waiters []func()
}

// WriteSignal ORs v into signal register reg (0 or 1). It is the
// fabric-side entry point (a 4-byte DMA landing on the SNR address).
func (s *SPE) WriteSignal(reg int, v uint32) {
	r := &s.snrs[reg]
	r.value |= v
	r.pending = true
	ws := r.waiters
	r.waiters = nil
	for _, w := range ws {
		s.eng.Post(w)
	}
}

// readSignal returns and clears the register once it has a value.
func (s *SPE) readSignal(p *sim.Process, reg int) uint32 {
	r := &s.snrs[reg]
	for !r.pending {
		p.WaitFunc(func(wake func()) { r.waiters = append(r.waiters, wake) })
	}
	v := r.value
	r.value = 0
	r.pending = false
	return v
}

// ReadSignal blocks the SPU until signal register reg (0 or 1) has been
// written, then returns and clears its accumulated OR value.
func (c *Context) ReadSignal(reg int) uint32 {
	if reg != 0 && reg != 1 {
		panic("spe: signal register must be 0 or 1")
	}
	c.Wait(c.spe.cfg.ChannelCycles)
	return c.spe.readSignal(c.Process, reg)
}

// TrySignal returns the register's value without blocking; ok reports
// whether a signal was pending.
func (c *Context) TrySignal(reg int) (uint32, bool) {
	if reg != 0 && reg != 1 {
		panic("spe: signal register must be 0 or 1")
	}
	c.Wait(c.spe.cfg.ChannelCycles)
	r := &c.spe.snrs[reg]
	if !r.pending {
		return 0, false
	}
	v := r.value
	r.value = 0
	r.pending = false
	return v, true
}

// Signal sends a 4-byte notification DMA to another SPE's signal register
// via its memory-mapped address (sndsig). The tag group tracks delivery
// like any other DMA. Eight rotating scratch words allow several signals
// to be in flight without overwriting each other's payload.
func (c *Context) Signal(targetEA int64, v uint32, tag int) {
	slot := c.spe.sigSeq % 8
	c.spe.sigSeq++
	scratch := atomicScratch + 64 + 4*slot
	putU32(c.spe.ls, scratch, v)
	c.enqueue(mfc.Cmd{Kind: mfc.Put, Tag: tag, LSAddr: scratch, EA: targetEA, Size: 4})
}

func putU32(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}
