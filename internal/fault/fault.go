// Package fault is a deterministic, seeded fault-injection layer for the
// Cell BE model. It perturbs the simulation the way the measured blade
// misbehaves in bounded ways — MFC commands retried after command-bus
// token denial, XDR banks stalling on refresh collisions, EIB ring
// segments slowing down or dropping out of arbitration, completion
// callbacks arriving late — without ever corrupting data or breaking the
// model's invariants. Faulty runs therefore degrade bandwidth gracefully
// instead of collapsing, which is exactly the regime the paper's
// layout-variance figures (13, 16) probe.
//
// Every decision is drawn from one splitmix64 stream owned by the
// injector. The simulation engine is single-threaded and fires events in
// a deterministic order, so a given (fault config, seed) pair perturbs a
// given scenario identically on every run: faulty runs stay
// byte-reproducible and sweepable, and goldens can be pinned on them.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cellbe/internal/sim"
)

// Default fault magnitudes, in CPU cycles. Rates come from the user; the
// magnitudes are fixed bounded penalties chosen to match the hardware
// mechanism each fault models.
const (
	// DefaultRetryCycles is the base MFC retry backoff after a command-bus
	// token denial (roughly one command-bus round trip). Consecutive
	// denials back off exponentially up to MaxRetryBackoff.
	DefaultRetryCycles sim.Time = 50
	// MaxRetryBackoff caps the exponential retry backoff.
	MaxRetryBackoff sim.Time = 800
	// DefaultStallCycles is an XDR bank busy/refresh-collision stall: the
	// bank is stolen for about one refresh's worth of cycles.
	DefaultStallCycles sim.Time = 180
	// DefaultSlowCycles delays one EIB data transfer's earliest start (a
	// ring-segment re-arbitration glitch).
	DefaultSlowCycles sim.Time = 128
	// DefaultDoneDelayCycles postpones one completion callback (a late
	// acknowledgement on the loaded bus).
	DefaultDoneDelayCycles sim.Time = 64
)

// Config sets the per-event probability of each fault class. All rates
// are in [0,1); zero disables the class. The zero value disables
// injection entirely.
type Config struct {
	// MFCRetryRate is the chance that a bus packet's command-bus token is
	// denied at issue, forcing the MFC to retry with exponential backoff
	// (each retry re-rolls, so a packet can be denied several times).
	MFCRetryRate float64
	// XDRStallRate is the chance that a memory-bank access finds the bank
	// busy (refresh collision, scrub cycle) and must wait an extra
	// DefaultStallCycles with priority over queued accesses.
	XDRStallRate float64
	// EIBSlowRate is the chance that a data transfer's ring grant is
	// delayed by DefaultSlowCycles (segment re-arbitration).
	EIBSlowRate float64
	// EIBOutageRate is the chance that one data ring is excluded from
	// arbitration for a transfer (a ring temporarily out of service); the
	// transfer falls back to the remaining rings.
	EIBOutageRate float64
	// DoneDelayRate is the chance that a bus-packet completion callback is
	// delivered DefaultDoneDelayCycles late.
	DoneDelayRate float64
}

// Enabled reports whether any fault class has a non-zero rate.
func (c Config) Enabled() bool {
	return c.MFCRetryRate > 0 || c.XDRStallRate > 0 || c.EIBSlowRate > 0 ||
		c.EIBOutageRate > 0 || c.DoneDelayRate > 0
}

// specKeys maps -faults spec keys to config fields.
var specKeys = map[string]func(*Config, float64){
	"mfc-retry":  func(c *Config, r float64) { c.MFCRetryRate = r },
	"xdr-stall":  func(c *Config, r float64) { c.XDRStallRate = r },
	"eib-slow":   func(c *Config, r float64) { c.EIBSlowRate = r },
	"eib-outage": func(c *Config, r float64) { c.EIBOutageRate = r },
	"done-delay": func(c *Config, r float64) { c.DoneDelayRate = r },
}

// Keys returns the recognized spec keys, sorted, for usage messages.
func Keys() []string {
	ks := make([]string, 0, len(specKeys))
	for k := range specKeys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// ParseSpec parses a command-line fault specification of the form
// "mfc-retry:0.01,xdr-stall:0.05". Unknown keys and rates outside [0,1)
// are errors. The empty string parses to a disabled Config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, ":")
		if !ok {
			return Config{}, fmt.Errorf("fault: %q: want KEY:RATE", field)
		}
		set, known := specKeys[strings.TrimSpace(key)]
		if !known {
			return Config{}, fmt.Errorf("fault: unknown fault %q (want one of %s)",
				key, strings.Join(Keys(), ", "))
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Config{}, fmt.Errorf("fault: bad rate in %q: %v", field, err)
		}
		if rate < 0 || rate >= 1 {
			return Config{}, fmt.Errorf("fault: rate %g in %q out of range [0,1)", rate, field)
		}
		set(&cfg, rate)
	}
	return cfg, nil
}

// Stats counts injected faults by class.
type Stats struct {
	MFCRetries int64 // command-bus token denials (retries forced)
	XDRStalls  int64 // bank busy/refresh stalls
	EIBSlow    int64 // delayed ring grants
	EIBOutages int64 // per-transfer ring exclusions
	DoneDelays int64 // late completion callbacks
}

// Total returns the number of faults injected across all classes.
func (s Stats) Total() int64 {
	return s.MFCRetries + s.XDRStalls + s.EIBSlow + s.EIBOutages + s.DoneDelays
}

// Injector draws fault decisions from a seeded stream. A nil *Injector is
// valid and injects nothing, so model code calls its methods
// unconditionally. Not safe for concurrent use: like the rest of the
// model it must only be driven from simulation events.
type Injector struct {
	cfg   Config
	state uint64
	stats Stats
}

// New returns an injector for cfg drawing from seed. It returns nil when
// cfg is disabled, keeping the fault-free hot paths branch-cheap.
func New(cfg Config, seed int64) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, state: splitmixSeed(uint64(seed))}
}

// Config returns the injector's fault configuration (zero for nil).
func (i *Injector) Config() Config {
	if i == nil {
		return Config{}
	}
	return i.cfg
}

// Stats returns the injected-fault counters (zero for nil).
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return i.stats
}

// splitmixSeed hardens trivially related seeds (0, 1, 2...) into
// well-separated stream states.
func splitmixSeed(s uint64) uint64 {
	return splitmix(&s)
}

// splitmix is splitmix64: tiny, fast, and stable across Go releases —
// unlike math/rand, whose stream the standard library does not guarantee.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws one uniform [0,1) variate and compares it against rate.
func (i *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	// 53 high bits -> uniform float64 in [0,1).
	v := float64(splitmix(&i.state)>>11) / (1 << 53)
	return v < rate
}

// MFCRetry returns the cycles an MFC bus-packet issue loses to
// command-bus token denial: zero when the token is granted first try,
// otherwise the summed exponential backoff of the denied attempts.
func (i *Injector) MFCRetry() sim.Time {
	if i == nil || i.cfg.MFCRetryRate <= 0 {
		return 0
	}
	var delay sim.Time
	backoff := DefaultRetryCycles
	for i.roll(i.cfg.MFCRetryRate) {
		i.stats.MFCRetries++
		delay += backoff
		if backoff < MaxRetryBackoff {
			backoff *= 2
		}
	}
	return delay
}

// XDRStall returns the extra bank occupancy (with priority over queued
// accesses) charged to this bank access, or zero.
func (i *Injector) XDRStall() sim.Time {
	if i == nil || !i.roll(i.cfg.XDRStallRate) {
		return 0
	}
	i.stats.XDRStalls++
	return DefaultStallCycles
}

// EIBSlow returns the grant delay injected into one data transfer, or
// zero.
func (i *Injector) EIBSlow() sim.Time {
	if i == nil || !i.roll(i.cfg.EIBSlowRate) {
		return 0
	}
	i.stats.EIBSlow++
	return DefaultSlowCycles
}

// EIBOutage returns the index of a ring (in [0,rings)) to exclude from
// arbitration for one transfer, or -1 when all rings are in service.
func (i *Injector) EIBOutage(rings int) int {
	if i == nil || rings <= 1 || !i.roll(i.cfg.EIBOutageRate) {
		return -1
	}
	i.stats.EIBOutages++
	return int(splitmix(&i.state) % uint64(rings))
}

// DoneDelay returns how late one completion callback is delivered, or
// zero.
func (i *Injector) DoneDelay() sim.Time {
	if i == nil || !i.roll(i.cfg.DoneDelayRate) {
		return 0
	}
	i.stats.DoneDelays++
	return DefaultDoneDelayCycles
}
