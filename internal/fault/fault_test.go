package fault

import (
	"fmt"
	"strings"
	"testing"

	"cellbe/internal/sim"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("mfc-retry:0.01,xdr-stall:0.05")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if cfg.MFCRetryRate != 0.01 || cfg.XDRStallRate != 0.05 {
		t.Fatalf("wrong rates: %+v", cfg)
	}
	if cfg.EIBSlowRate != 0 || cfg.EIBOutageRate != 0 || cfg.DoneDelayRate != 0 {
		t.Fatalf("unset classes must stay zero: %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config should be enabled")
	}

	// Whitespace and trailing commas are tolerated; every key parses.
	cfg, err = ParseSpec(" eib-slow:0.1 , eib-outage:0.2, done-delay:0.3 ,")
	if err != nil {
		t.Fatalf("ParseSpec with spaces: %v", err)
	}
	if cfg.EIBSlowRate != 0.1 || cfg.EIBOutageRate != 0.2 || cfg.DoneDelayRate != 0.3 {
		t.Fatalf("wrong rates: %+v", cfg)
	}

	if cfg, err := ParseSpec(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec must parse to a disabled config, got %+v, %v", cfg, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"mfc-retry",         // no rate
		"bogus:0.1",         // unknown key
		"mfc-retry:x",       // unparsable rate
		"mfc-retry:1.0",     // rate 1 would loop forever in MFCRetry
		"mfc-retry:-0.1",    // negative
		"mfc-retry=0.1",     // wrong separator
		"mfc-retry:0.1;x:2", // garbage after valid field
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected error", spec)
		}
	}
}

func TestKeysCoverConfig(t *testing.T) {
	// Every advertised key must round-trip through ParseSpec into an
	// enabled config, so the CLI usage string never lies.
	for _, k := range Keys() {
		cfg, err := ParseSpec(k + ":0.5")
		if err != nil {
			t.Fatalf("key %q: %v", k, err)
		}
		if !cfg.Enabled() {
			t.Errorf("key %q does not enable any fault class", k)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	if got := New(Config{}, 42); got != nil {
		t.Fatalf("New with disabled config must return nil, got %v", got)
	}
	if i.MFCRetry() != 0 || i.XDRStall() != 0 || i.EIBSlow() != 0 || i.DoneDelay() != 0 {
		t.Fatal("nil injector must inject nothing")
	}
	if i.EIBOutage(4) != -1 {
		t.Fatal("nil injector must never take a ring out")
	}
	if i.Stats().Total() != 0 || i.Config().Enabled() {
		t.Fatal("nil injector must report zero stats and a disabled config")
	}
}

// drawAll consumes n decisions of every class and returns a transcript.
func drawAll(inj *Injector, n int) string {
	var sb strings.Builder
	for k := 0; k < n; k++ {
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d;",
			inj.MFCRetry(), inj.XDRStall(), inj.EIBSlow(), inj.EIBOutage(4), inj.DoneDelay())
	}
	return sb.String()
}

func TestStreamDeterminism(t *testing.T) {
	cfg := Config{
		MFCRetryRate:  0.3,
		XDRStallRate:  0.3,
		EIBSlowRate:   0.3,
		EIBOutageRate: 0.3,
		DoneDelayRate: 0.3,
	}
	a := New(cfg, 7)
	b := New(cfg, 7)
	if got, want := drawAll(a, 1000), drawAll(b, 1000); got != want {
		t.Fatal("same (config, seed) must produce the same fault stream")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Fatal("at 30% rates, 1000 draws must inject some faults")
	}
	c := New(cfg, 8)
	if drawAll(a, 1000) == drawAll(c, 1000) {
		t.Fatal("different seeds should produce different fault streams")
	}
}

func TestMFCRetryBackoffBounded(t *testing.T) {
	// Even at a 90% denial rate every retry sequence must terminate, never
	// go negative, and never exceed its denial count times the backoff cap.
	inj := New(Config{MFCRetryRate: 0.9}, 1)
	var prevRetries int64
	for k := 0; k < 10000; k++ {
		d := inj.MFCRetry()
		denials := inj.Stats().MFCRetries - prevRetries
		prevRetries = inj.Stats().MFCRetries
		if d < 0 || d > sim.Time(denials)*MaxRetryBackoff {
			t.Fatalf("delay %d outside [0, %d denials * cap]", d, denials)
		}
		if denials == 0 && d != 0 {
			t.Fatalf("delay %d without a denial", d)
		}
	}
	if prevRetries == 0 {
		t.Fatal("expected denials at 90% rate")
	}
}

func TestEIBOutageRange(t *testing.T) {
	inj := New(Config{EIBOutageRate: 0.999}, 3)
	seen := map[int]bool{}
	for k := 0; k < 1000; k++ {
		r := inj.EIBOutage(4)
		if r < -1 || r >= 4 {
			t.Fatalf("ring %d out of range", r)
		}
		seen[r] = true
	}
	for ring := 0; ring < 4; ring++ {
		if !seen[ring] {
			t.Errorf("ring %d never chosen in 1000 outages", ring)
		}
	}
	if inj.EIBOutage(1) != -1 {
		t.Fatal("a single-ring EIB must never lose its only ring")
	}
}
