package eib

import (
	"testing"
	"testing/quick"

	"cellbe/internal/sim"
)

func newEIB() (*sim.Engine, *EIB) {
	eng := sim.NewEngine()
	return eng, New(eng, DefaultConfig())
}

func TestHops(t *testing.T) {
	cases := []struct {
		src, dst RampID
		dir      Direction
		want     int
	}{
		{RampPPE, RampSPE1, Clockwise, 1},
		{RampSPE1, RampPPE, Counterclockwise, 1},
		{RampPPE, RampMIC, Counterclockwise, 1},
		{RampPPE, RampMIC, Clockwise, 11},
		{RampSPE0, RampSPE1, Clockwise, 3},
		{RampSPE0, RampSPE1, Counterclockwise, 9},
		{RampPPE, RampIOIF0, Clockwise, 6},
		{RampPPE, RampIOIF0, Counterclockwise, 6},
	}
	for _, c := range cases {
		if got := Hops(c.src, c.dst, c.dir); got != c.want {
			t.Errorf("Hops(%v,%v,%v) = %d, want %d", c.src, c.dst, c.dir, got, c.want)
		}
	}
}

func TestPathSegments(t *testing.T) {
	segs := pathSegments(RampSPE0, RampSPE1, Clockwise) // 10 -> 1
	want := []int{10, 11, 0}
	if len(segs) != len(want) {
		t.Fatalf("segments %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segments %v, want %v", segs, want)
		}
	}
	segs = pathSegments(RampSPE1, RampSPE0, Counterclockwise) // 1 -> 10
	want = []int{1, 0, 11}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("ccw segments %v, want %v", segs, want)
		}
	}
}

func TestSingleTransferTiming(t *testing.T) {
	eng, bus := newEIB()
	var end sim.Time
	// 128 bytes = 8 beats = 16 CPU cycles on the segments, plus 1 hop
	// (2 cycles) of pipeline drain: PPE -> SPE1 is 1 hop clockwise.
	bus.Transfer(RampPPE, RampSPE1, 128, 0, func(e sim.Time) { end = e })
	eng.Run()
	if end != 16+2 {
		t.Fatalf("end = %d, want 18", end)
	}
}

func TestTransferEarliest(t *testing.T) {
	eng, bus := newEIB()
	var end sim.Time
	bus.Transfer(RampPPE, RampSPE1, 16, 100, func(e sim.Time) { end = e })
	eng.Run()
	if end != 100+2+2 {
		t.Fatalf("end = %d, want 104", end)
	}
}

func TestOppositeDirectionsDontConflict(t *testing.T) {
	eng, bus := newEIB()
	var e1, e2 sim.Time
	// SPE0(10) -> SPE1(1): clockwise. SPE1 -> SPE0: counterclockwise.
	bus.Transfer(RampSPE0, RampSPE1, 128, 0, func(e sim.Time) { e1 = e })
	bus.Transfer(RampSPE1, RampSPE0, 128, 0, func(e sim.Time) { e2 = e })
	eng.Run()
	want := sim.Time(16 + 3*2)
	if e1 != want || e2 != want {
		t.Fatalf("ends %d,%d, want both %d (no conflict)", e1, e2, want)
	}
}

func TestTwoRingsPerDirection(t *testing.T) {
	eng, bus := newEIB()
	var ends [2]sim.Time
	// Two same-direction transfers sharing segment 11 but with distinct
	// ports ride the two clockwise rings concurrently.
	bus.Transfer(RampMIC, RampSPE1, 128, 0, func(e sim.Time) { ends[0] = e }) // segs 11,0
	bus.Transfer(RampSPE0, RampPPE, 128, 0, func(e sim.Time) { ends[1] = e }) // segs 10,11
	eng.Run()
	if ends[0] != 16+2*2 || ends[1] != 16+2*2 {
		t.Fatalf("ends %v, want 20 each (concurrent on two rings)", ends)
	}
}

func TestSameSourceSerializesOnOutPort(t *testing.T) {
	eng, bus := newEIB()
	var ends [3]sim.Time
	// Three transfers from the same ramp: even with two rings available,
	// the single 16B/bus-cycle out port serializes them.
	for i := range ends {
		i := i
		bus.Transfer(RampPPE, RampSPE1, 128, 0, func(e sim.Time) { ends[i] = e })
	}
	eng.Run()
	want := [3]sim.Time{18, 34, 50}
	if ends != want {
		t.Fatalf("ends %v, want %v", ends, want)
	}
}

func TestSourcePortSerializes(t *testing.T) {
	eng, bus := newEIB()
	var e1, e2 sim.Time
	// Same source, different destinations and even different directions:
	// the single 16B/bus-cycle out port serializes them.
	bus.Transfer(RampPPE, RampSPE1, 128, 0, func(e sim.Time) { e1 = e })
	bus.Transfer(RampPPE, RampMIC, 128, 0, func(e sim.Time) { e2 = e })
	eng.Run()
	if e1 != 18 {
		t.Fatalf("first end %d, want 18", e1)
	}
	if e2 != 16+16+2 {
		t.Fatalf("second end %d, want 34 (serialized on out port)", e2)
	}
}

func TestDestPortSerializes(t *testing.T) {
	eng, bus := newEIB()
	var e1, e2 sim.Time
	bus.Transfer(RampSPE1, RampPPE, 128, 0, func(e sim.Time) { e1 = e })
	bus.Transfer(RampMIC, RampPPE, 128, 0, func(e sim.Time) { e2 = e })
	eng.Run()
	if e1 != 18 {
		t.Fatalf("first end %d, want 18", e1)
	}
	if e2 != 16+16+2 {
		t.Fatalf("second end %d, want 34 (serialized on in port)", e2)
	}
}

func TestSegmentConflictSameDirection(t *testing.T) {
	eng, bus := newEIB()
	var ends [3]sim.Time
	// Three clockwise-only transfers that all cross segment 11, with
	// distinct ports: MIC(11)->SPE1(1), SPE0(10)->PPE(0), SPE2(9)->SPE3(2).
	// Their counterclockwise alternatives are all > 6 hops, so the two
	// clockwise rings carry two of them and the third must wait.
	srcs := []RampID{RampMIC, RampSPE0, RampSPE2}
	dsts := []RampID{RampSPE1, RampPPE, RampSPE3}
	for i := range srcs {
		i := i
		bus.Transfer(srcs[i], dsts[i], 128, 0, func(e sim.Time) { ends[i] = e })
	}
	eng.Run()
	// Two clockwise rings fit two of them; the third is pushed out.
	delayed := 0
	for _, e := range ends {
		if e > 30 {
			delayed++
		}
	}
	if delayed != 1 {
		t.Fatalf("ends %v: want exactly one delayed transfer", ends)
	}
}

func TestHalfRingRule(t *testing.T) {
	eng, bus := newEIB()
	// PPE(0) -> IOIF1(5): 5 hops clockwise only. Check it completes and
	// the counterclockwise rings stay unused.
	done := false
	bus.Transfer(RampPPE, RampIOIF1, 16, 0, func(sim.Time) { done = true })
	eng.Run()
	if !done {
		t.Fatal("transfer did not complete")
	}
	st := bus.Stats()
	if st.PerDirCount[Counterclockwise] != 0 {
		t.Fatal("5-hop clockwise transfer must not use a counterclockwise ring")
	}
	if st.PerDirCount[Clockwise] != 1 {
		t.Fatalf("clockwise count = %d, want 1", st.PerDirCount[Clockwise])
	}
}

func TestLocalTransferBypassesRings(t *testing.T) {
	eng, bus := newEIB()
	var end sim.Time
	bus.Transfer(RampSPE0, RampSPE0, 128, 0, func(e sim.Time) { end = e })
	eng.Run()
	if end != 16 {
		t.Fatalf("local transfer end %d, want 16", end)
	}
	st := bus.Stats()
	if st.BusyCycles[0]+st.BusyCycles[1]+st.BusyCycles[2]+st.BusyCycles[3] != 0 {
		t.Fatal("local transfer must not occupy ring segments")
	}
}

func TestCommandBusThroughput(t *testing.T) {
	eng, bus := newEIB()
	cfg := bus.Config()
	if t0 := bus.Command(0); t0 != cfg.CmdLatency {
		t.Fatalf("first command done at %d, want %d", t0, cfg.CmdLatency)
	}
	// Fractional pacing: with 25 tenths per command, grants land at
	// 0, 2.5, 5.0, 7.5 -> rounded up to 0, 3, 5, 8 cycles.
	wantOffsets := []sim.Time{3, 5, 8}
	for i, w := range wantOffsets {
		if got := bus.Command(0); got != cfg.CmdLatency+w {
			t.Fatalf("command %d done at %d, want %d", i+1, got, cfg.CmdLatency+w)
		}
	}
	// After idle time the cursor catches up to the request time.
	if got := bus.Command(1000); got != 1000+cfg.CmdLatency {
		t.Fatalf("idle command done at %d, want %d", got, 1000+cfg.CmdLatency)
	}
	_ = eng
}

func TestSustainedBandwidthSinglePair(t *testing.T) {
	// Back-to-back 128B transfers SPE0 -> SPE1 must sustain one beat per
	// bus cycle: N*16 cycles of occupancy, i.e. 16.8 GB/s at 2.1 GHz.
	eng, bus := newEIB()
	const n = 1000
	var last sim.Time
	var issue func(i int)
	issue = func(i int) {
		if i == n {
			return
		}
		bus.Transfer(RampSPE0, RampSPE1, 128, 0, func(e sim.Time) { last = e })
		issue(i + 1)
	}
	issue(0)
	eng.Run()
	// n*16 cycles of segment occupancy + 3 hops drain.
	want := sim.Time(n*16 + 6)
	if last != want {
		t.Fatalf("last end = %d, want %d", last, want)
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng, bus := newEIB()
	bus.Transfer(RampPPE, RampSPE1, 128, 0, func(sim.Time) {})
	bus.Transfer(RampPPE, RampSPE1, 64, 0, func(sim.Time) {})
	eng.Run()
	st := bus.Stats()
	if st.Transfers != 2 || st.Bytes != 192 {
		t.Fatalf("stats %+v, want 2 transfers / 192 bytes", st)
	}
	if st.PerRampBytes[RampPPE] != 192 {
		t.Fatalf("per-ramp bytes %d, want 192", st.PerRampBytes[RampPPE])
	}
}

func TestZeroByteTransferPanics(t *testing.T) {
	_, bus := newEIB()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-byte transfer should panic")
		}
	}()
	bus.Transfer(RampPPE, RampSPE1, 0, 0, func(sim.Time) {})
}

// Property: for any src/dst pair, hops clockwise + hops counterclockwise
// equals 12 (or 0 for src==dst), and at least one direction is <= 6.
func TestHopsProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		src := RampID(a % NumRamps)
		dst := RampID(b % NumRamps)
		cw := Hops(src, dst, Clockwise)
		ccw := Hops(src, dst, Counterclockwise)
		if src == dst {
			return cw == 0 && ccw == 0
		}
		return cw+ccw == NumRamps && (cw <= 6 || ccw <= 6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a transfer always completes at or after earliest + pure
// transfer time, and the path length never exceeds half the ring.
func TestTransferLowerBoundProperty(t *testing.T) {
	f := func(a, b uint8, sz uint16, early uint16) bool {
		src := RampID(a % NumRamps)
		dst := RampID(b % NumRamps)
		bytes := int(sz%2048) + 1
		eng, bus := newEIB()
		var end sim.Time
		bus.Transfer(src, dst, bytes, sim.Time(early), func(e sim.Time) { end = e })
		eng.Run()
		beats := sim.Time((bytes + 15) / 16)
		min := sim.Time(early) + beats*2
		return end >= min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTrace(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TraceCapacity = 3
	bus := New(eng, cfg)
	for i := 0; i < 5; i++ {
		bus.Transfer(RampPPE, RampSPE1, 128*(i+1), 0, func(sim.Time) {})
	}
	eng.Run()
	tr := bus.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace kept %d records, want capacity 3", len(tr))
	}
	// Ring buffer keeps the most recent: transfers 3, 4, 5.
	if tr[0].Bytes != 128*3 || tr[2].Bytes != 128*5 {
		t.Fatalf("trace contents wrong: %+v", tr)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Start < tr[i-1].Start {
			t.Fatal("trace must be oldest-first")
		}
	}
	if tr[0].Src != RampPPE || tr[0].Dst != RampSPE1 || tr[0].Ring < 0 {
		t.Fatalf("bad record %+v", tr[0])
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	eng, bus := newEIB()
	bus.Transfer(RampPPE, RampSPE1, 128, 0, func(sim.Time) {})
	eng.Run()
	if len(bus.Trace()) != 0 {
		t.Fatal("trace must be off by default")
	}
}
