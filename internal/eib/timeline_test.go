package eib

import (
	"testing"
	"testing/quick"

	"cellbe/internal/sim"
)

func TestTimelineFirstFitInGap(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	tl.reserve(30, 10, 1)
	// A 10-cycle same-owner request fits in the [10,30) gap.
	if got := tl.earliestFit(0, 10, 1, 0); got != 10 {
		t.Fatalf("fit at %d, want 10", got)
	}
	// A 25-cycle request does not fit in the gap: goes after the tail.
	if got := tl.earliestFit(0, 25, 1, 0); got != 40 {
		t.Fatalf("fit at %d, want 40", got)
	}
}

func TestTimelineSwitchingGap(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	// Different owner pays the gap after owner 1's interval...
	if got := tl.earliestFit(0, 10, 2, 8); got != 18 {
		t.Fatalf("other-owner fit at %d, want 18", got)
	}
	// ...while the same owner continues gaplessly.
	if got := tl.earliestFit(0, 10, 1, 8); got != 10 {
		t.Fatalf("same-owner fit at %d, want 10", got)
	}
	// Fitting *before* a foreign interval needs gap clearance too.
	tl2 := timeline{}
	tl2.reserve(100, 10, 1)
	if got := tl2.earliestFit(0, 95, 2, 8); got != 118 {
		t.Fatalf("pre-gap fit at %d, want 118 (cannot end within 8 of 100)", got)
	}
	if got := tl2.earliestFit(0, 92, 2, 8); got != 0 {
		t.Fatalf("short request fit at %d, want 0 (ends at 92, gap respected)", got)
	}
}

func TestTimelineMergeSameOwner(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	tl.reserve(10, 10, 1)
	if len(tl.iv) != 1 || tl.iv[0].e != 20 {
		t.Fatalf("adjacent same-owner intervals should merge: %+v", tl.iv)
	}
	tl.reserve(20, 10, 2) // different owner: no merge
	if len(tl.iv) != 2 {
		t.Fatalf("different owners must not merge: %+v", tl.iv)
	}
}

func TestTimelineOverlapPanics(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping reservation should panic")
		}
	}()
	tl.reserve(5, 10, 2)
}

func TestTimelinePruneKeepsLast(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	tl.reserve(20, 10, 2)
	tl.reserve(40, 10, 3)
	tl.prune(100)
	// The most recent interval stays so switching gaps remain visible.
	if len(tl.iv) != 1 || tl.iv[0].owner != 3 {
		t.Fatalf("prune should keep the last interval: %+v", tl.iv)
	}
}

// Property: reservations produced by earliestFit never overlap, for any
// sequence of owners/durations with any switching gap.
func TestTimelineNoOverlapProperty(t *testing.T) {
	f := func(ops []uint16, gap uint8) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("reservation overlap")
			}
		}()
		var tl timeline
		for _, op := range ops {
			owner := int32(op % 3)
			dur := sim.Time(op%50) + 1
			earliest := sim.Time(op % 97)
			s := tl.earliestFit(earliest, dur, owner, sim.Time(gap%20))
			if s < earliest {
				return false
			}
			tl.reserve(s, dur, owner)
		}
		// Verify sortedness and disjointness.
		for i := 1; i < len(tl.iv); i++ {
			if tl.iv[i-1].e > tl.iv[i].s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a same-owner fit is never later than a different-owner fit
// for the same request.
func TestTimelineOwnerAdvantageProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var tl timeline
		for _, op := range ops {
			dur := sim.Time(op%40) + 1
			s := tl.earliestFit(0, dur, int32(op%2), 10)
			tl.reserve(s, dur, int32(op%2))
		}
		same := tl.earliestFit(0, 16, 0, 10)
		// owner 2 never appeared: it pays gaps everywhere.
		other := tl.earliestFit(0, 16, 2, 10)
		return same <= other
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzTimeline drives random reservation sequences through the first-fit
// search and asserts the no-overlap invariant (reserve panics on overlap,
// so survival plus a sorted-disjoint check is the property).
func FuzzTimeline(f *testing.F) {
	f.Add([]byte{1, 10, 0, 2, 20, 5, 1, 10, 0})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tl timeline
		for i := 0; i+2 < len(data); i += 3 {
			owner := int32(data[i] % 4)
			dur := sim.Time(data[i+1]%60) + 1
			earliest := sim.Time(data[i+2])
			s := tl.earliestFit(earliest, dur, owner, 8)
			if s < earliest {
				t.Fatalf("fit %d before earliest %d", s, earliest)
			}
			tl.reserve(s, dur, owner)
		}
		for i := 1; i < len(tl.iv); i++ {
			if tl.iv[i-1].e > tl.iv[i].s {
				t.Fatal("intervals overlap")
			}
		}
	})
}
