package eib

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cellbe/internal/sim"
)

func TestTimelineFirstFitInGap(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	tl.reserve(30, 10, 1)
	// A 10-cycle same-owner request fits in the [10,30) gap.
	if got := tl.earliestFit(0, 10, 1, 0); got != 10 {
		t.Fatalf("fit at %d, want 10", got)
	}
	// A 25-cycle request does not fit in the gap: goes after the tail.
	if got := tl.earliestFit(0, 25, 1, 0); got != 40 {
		t.Fatalf("fit at %d, want 40", got)
	}
}

func TestTimelineSwitchingGap(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	// Different owner pays the gap after owner 1's interval...
	if got := tl.earliestFit(0, 10, 2, 8); got != 18 {
		t.Fatalf("other-owner fit at %d, want 18", got)
	}
	// ...while the same owner continues gaplessly.
	if got := tl.earliestFit(0, 10, 1, 8); got != 10 {
		t.Fatalf("same-owner fit at %d, want 10", got)
	}
	// Fitting *before* a foreign interval needs gap clearance too.
	tl2 := timeline{}
	tl2.reserve(100, 10, 1)
	if got := tl2.earliestFit(0, 95, 2, 8); got != 118 {
		t.Fatalf("pre-gap fit at %d, want 118 (cannot end within 8 of 100)", got)
	}
	if got := tl2.earliestFit(0, 92, 2, 8); got != 0 {
		t.Fatalf("short request fit at %d, want 0 (ends at 92, gap respected)", got)
	}
}

func TestTimelineMergeSameOwner(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	tl.reserve(10, 10, 1)
	if len(tl.live()) != 1 || tl.live()[0].e != 20 {
		t.Fatalf("adjacent same-owner intervals should merge: %+v", tl.live())
	}
	tl.reserve(20, 10, 2) // different owner: no merge
	if len(tl.live()) != 2 {
		t.Fatalf("different owners must not merge: %+v", tl.live())
	}
}

func TestTimelineOverlapPanics(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping reservation should panic")
		}
	}()
	tl.reserve(5, 10, 2)
}

func TestTimelinePruneKeepsLast(t *testing.T) {
	var tl timeline
	tl.reserve(0, 10, 1)
	tl.reserve(20, 10, 2)
	tl.reserve(40, 10, 3)
	tl.prune(100)
	// The most recent interval stays so switching gaps remain visible.
	if len(tl.live()) != 1 || tl.live()[0].owner != 3 {
		t.Fatalf("prune should keep the last interval: %+v", tl.live())
	}
}

// Property: reservations produced by earliestFit never overlap, for any
// sequence of owners/durations with any switching gap.
func TestTimelineNoOverlapProperty(t *testing.T) {
	f := func(ops []uint16, gap uint8) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("reservation overlap")
			}
		}()
		var tl timeline
		for _, op := range ops {
			owner := int32(op % 3)
			dur := sim.Time(op%50) + 1
			earliest := sim.Time(op % 97)
			s := tl.earliestFit(earliest, dur, owner, sim.Time(gap%20))
			if s < earliest {
				return false
			}
			tl.reserve(s, dur, owner)
		}
		// Verify sortedness and disjointness.
		for i := 1; i < len(tl.live()); i++ {
			if tl.live()[i-1].e > tl.live()[i].s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a same-owner fit is never later than a different-owner fit
// for the same request.
func TestTimelineOwnerAdvantageProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var tl timeline
		for _, op := range ops {
			dur := sim.Time(op%40) + 1
			s := tl.earliestFit(0, dur, int32(op%2), 10)
			tl.reserve(s, dur, int32(op%2))
		}
		same := tl.earliestFit(0, 16, 0, 10)
		// owner 2 never appeared: it pays gaps everywhere.
		other := tl.earliestFit(0, 16, 2, 10)
		return same <= other
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// refTimeline is the seed (pre-optimization) timeline algorithm: a plain
// sorted slice with linear scans and re-slicing prune. It is kept here as
// the reference model for the differential property test below — the
// cursor-based timeline must stay observably identical to it.
type refTimeline struct {
	iv []interval
}

func (t *refTimeline) prune(now sim.Time) {
	i := 0
	for i < len(t.iv) && t.iv[i].e <= now {
		i++
	}
	if i > 1 {
		t.iv = t.iv[i-1:]
	}
}

func (t *refTimeline) earliestFit(earliest, dur sim.Time, owner int32, gap sim.Time) sim.Time {
	start := earliest
	n := len(t.iv)
	for i := 0; i <= n; i++ {
		if i > 0 {
			min := t.iv[i-1].e
			if t.iv[i-1].owner != owner {
				min += gap
			}
			if start < min {
				start = min
			}
		}
		if i == n {
			return start
		}
		limit := t.iv[i].s
		if t.iv[i].owner != owner {
			limit -= gap
		}
		if start+dur <= limit {
			return start
		}
	}
	return start
}

func (t *refTimeline) reserve(s, dur sim.Time, owner int32) {
	e := s + dur
	lo, hi := 0, len(t.iv)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.iv[mid].s < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	mergePrev := lo > 0 && t.iv[lo-1].e == s && t.iv[lo-1].owner == owner
	mergeNext := lo < len(t.iv) && t.iv[lo].s == e && t.iv[lo].owner == owner
	switch {
	case mergePrev && mergeNext:
		t.iv[lo-1].e = t.iv[lo].e
		t.iv = append(t.iv[:lo], t.iv[lo+1:]...)
	case mergePrev:
		t.iv[lo-1].e = e
	case mergeNext:
		t.iv[lo].s = s
	default:
		t.iv = append(t.iv, interval{})
		copy(t.iv[lo+1:], t.iv[lo:])
		t.iv[lo] = interval{s: s, e: e, owner: owner}
	}
}

// TestTimelineInterleavedProperty interleaves earliestFit/reserve/prune
// across many owners with a monotonically advancing clock — the exact
// call pattern eib.Transfer produces — and checks, after every step, that
// the optimized timeline (a) matches the seed reference implementation
// fit-for-fit and interval-for-interval, and (b) keeps its live intervals
// sorted, disjoint and switching-gap-respecting. This is the invariant
// the cursor/free-slot optimization must preserve.
func TestTimelineInterleavedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42)) // fixed seed: reproducible
	for trial := 0; trial < 50; trial++ {
		var opt timeline
		var ref refTimeline
		gap := sim.Time(rng.Intn(3) * 8)
		now := sim.Time(0)
		for step := 0; step < 400; step++ {
			// The simulator's clock only moves forward; prune is always
			// called with now <= earliest.
			now += sim.Time(rng.Intn(40))
			if rng.Intn(3) == 0 {
				opt.prune(now)
				ref.prune(now)
			}
			owner := int32(rng.Intn(5))
			dur := sim.Time(rng.Intn(60) + 1)
			earliest := now + sim.Time(rng.Intn(50))
			got := opt.earliestFit(earliest, dur, owner, gap)
			want := ref.earliestFit(earliest, dur, owner, gap)
			if got != want {
				t.Fatalf("trial %d step %d: earliestFit(%d,%d,%d,%d) = %d, reference = %d\nopt: %+v\nref: %+v",
					trial, step, earliest, dur, owner, gap, got, want, opt.live(), ref.iv)
			}
			if got < earliest {
				t.Fatalf("fit %d before earliest %d", got, earliest)
			}
			if rng.Intn(4) != 0 { // reserve most fits, like the scheduler
				opt.reserve(got, dur, owner)
				ref.reserve(got, dur, owner)
			}
			live := opt.live()
			if len(live) != len(ref.iv) {
				t.Fatalf("trial %d step %d: %d live intervals, reference has %d", trial, step, len(live), len(ref.iv))
			}
			for i := range live {
				if live[i] != ref.iv[i] {
					t.Fatalf("trial %d step %d: interval %d diverged: %+v vs %+v", trial, step, i, live[i], ref.iv[i])
				}
				if i == 0 {
					continue
				}
				prev := live[i-1]
				if prev.e > live[i].s {
					t.Fatalf("intervals overlap: %+v then %+v", prev, live[i])
				}
				// Every reservation came from earliestFit, which enforces
				// the switching gap on both sides, so cross-owner
				// neighbours must never sit closer than the gap.
				if prev.owner != live[i].owner && live[i].s-prev.e < gap {
					t.Fatalf("switching gap violated between %+v and %+v (gap %d)", prev, live[i], gap)
				}
			}
		}
	}
}

// FuzzTimeline drives random reservation sequences through the first-fit
// search and asserts the no-overlap invariant (reserve panics on overlap,
// so survival plus a sorted-disjoint check is the property).
func FuzzTimeline(f *testing.F) {
	f.Add([]byte{1, 10, 0, 2, 20, 5, 1, 10, 0})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tl timeline
		for i := 0; i+2 < len(data); i += 3 {
			owner := int32(data[i] % 4)
			dur := sim.Time(data[i+1]%60) + 1
			earliest := sim.Time(data[i+2])
			s := tl.earliestFit(earliest, dur, owner, 8)
			if s < earliest {
				t.Fatalf("fit %d before earliest %d", s, earliest)
			}
			tl.reserve(s, dur, owner)
		}
		for i := 1; i < len(tl.live()); i++ {
			if tl.live()[i-1].e > tl.live()[i].s {
				t.Fatal("intervals overlap")
			}
		}
	})
}
