package eib

import (
	"testing"

	"cellbe/internal/sim"
)

// BenchmarkTimelineFirstFit exercises the scheduler's inner loop in
// isolation: a rolling window of reservations from a handful of
// interleaved flows, with the clock advancing so prune keeps retiring the
// tail — the exact access pattern a saturated ring segment sees. The
// cursor-based timeline must stay allocation-free here once its backing
// array has warmed up.
func BenchmarkTimelineFirstFit(b *testing.B) {
	const (
		flows = 6
		gap   = sim.Time(64)
		dur   = sim.Time(64) // one 4 KB element at 16 B per 2-cycle beat
	)
	var tl timeline
	now := sim.Time(0)
	// Seed a standing backlog, as the MFC's outstanding-transfer window
	// produces under saturation; the measured loop then runs at the
	// matched rate so the backlog stays put instead of growing without
	// bound (real issue is paced by the command bus and the window).
	for i := 0; i < 32; i++ {
		s := tl.earliestFit(now, dur, int32(i%flows), gap)
		tl.reserve(s, dur, int32(i%flows))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner := int32(i % flows)
		now += dur + gap // drain rate of one cross-flow item
		tl.prune(now)
		s := tl.earliestFit(now, dur, owner, gap)
		tl.reserve(s, dur, owner)
	}
}

// BenchmarkTimelineCold measures the from-scratch cost (fresh timeline
// every iteration batch), which is what a new System pays per resource.
func BenchmarkTimelineCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var tl timeline
		now := sim.Time(0)
		for j := 0; j < 64; j++ {
			now += 32
			tl.prune(now)
			s := tl.earliestFit(now, 64, int32(j%4), 64)
			tl.reserve(s, 64, int32(j%4))
		}
	}
}

// BenchmarkPathSegments covers the precomputed path table lookup; the
// seed implementation built a fresh slice per call.
func BenchmarkPathSegments(b *testing.B) {
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		segs := pathSegments(RampID(i%NumRamps), RampID((i*5)%NumRamps), Direction(i%2))
		sink += len(segs)
	}
	_ = sink
}
