package eib

import (
	"encoding/binary"

	"cellbe/internal/sim"
)

// This file is the EIB's half of the steady-state fast-forward contract
// (see internal/cell's ffController and DESIGN.md): a canonical relative
// encoding of the timetable for the periodicity digest, and the
// shift/linear advances a committed jump applies.
//
// The digest encodes only *constraining* intervals: future grant times
// depend on a reservation [s, e) only while e + gap > now (a fit never
// starts before now, and an expired interval can only push a fit through
// the switching gap against its end). Everything older is dead state —
// retained by the amortized prune but behaviourally invisible — and is
// skipped, so the encoding is independent of prune phase. Start times at
// or before now are clamped to a sentinel for the same reason: a fit can
// never land before an interval that is already running.

// FFEncode appends the EIB's canonical relative state to buf.
func (e *EIB) FFEncode(buf []byte, now sim.Time) []byte {
	rel := e.cmdNextTenths - 10*int64(now)
	if rel < 0 {
		rel = 0 // an idle command-bus cursor is behaviourally zero
	}
	buf = binary.AppendVarint(buf, rel)
	for r := 0; r < NumRamps; r++ {
		buf = e.out[r].ffEncode(buf, now, 0)
		buf = e.in[r].ffEncode(buf, now, 0)
	}
	for ri := range e.rings {
		for s := 0; s < NumRamps; s++ {
			buf = e.rings[ri].seg[s].ffEncode(buf, now, e.cfg.RingDeadCycles)
		}
	}
	return buf
}

// ffEncode appends the timeline's constraining intervals, relative to now.
func (t *timeline) ffEncode(buf []byte, now, gap sim.Time) []byte {
	live := t.live()
	n := 0
	for _, iv := range live {
		if iv.e+gap > now {
			n++
		}
	}
	buf = binary.AppendVarint(buf, int64(n))
	for _, iv := range live {
		if iv.e+gap <= now {
			continue
		}
		s := int64(iv.s - now)
		if iv.s <= now {
			s = -1 // already running (or expired): the start can no longer matter
		}
		buf = binary.AppendVarint(buf, s)
		buf = binary.AppendVarint(buf, int64(iv.e-now))
		buf = binary.AppendVarint(buf, int64(iv.owner))
	}
	return buf
}

// FFShift translates every absolute-time field by d, the time
// displacement of a committed jump.
func (e *EIB) FFShift(d sim.Time) {
	e.cmdNextTenths += 10 * int64(d)
	for r := 0; r < NumRamps; r++ {
		e.out[r].ffShift(d)
		e.in[r].ffShift(d)
	}
	for ri := range e.rings {
		for s := 0; s < NumRamps; s++ {
			e.rings[ri].seg[s].ffShift(d)
		}
	}
}

func (t *timeline) ffShift(d sim.Time) {
	for i := t.head; i < len(t.iv); i++ {
		t.iv[i].s += d
		t.iv[i].e += d
	}
}

// FFAddStats advances the activity counters by k times the (cur - old)
// delta. cur must be the Stats snapshot taken immediately before the
// call; old is the snapshot from the matched earlier anchor.
func (e *EIB) FFAddStats(cur, old Stats, k int64) {
	st := &e.stats
	st.Transfers += k * (cur.Transfers - old.Transfers)
	st.LocalTransfers += k * (cur.LocalTransfers - old.LocalTransfers)
	st.Bytes += k * (cur.Bytes - old.Bytes)
	st.Commands += k * (cur.Commands - old.Commands)
	st.WaitCycles += sim.Time(k) * (cur.WaitCycles - old.WaitCycles)
	for i := range st.BusyCycles {
		st.BusyCycles[i] += sim.Time(k) * (cur.BusyCycles[i] - old.BusyCycles[i])
	}
	for i := range st.PerRampBytes {
		st.PerRampBytes[i] += k * (cur.PerRampBytes[i] - old.PerRampBytes[i])
		st.PerRampRecvBytes[i] += k * (cur.PerRampRecvBytes[i] - old.PerRampRecvBytes[i])
		st.PerRampTransfers[i] += k * (cur.PerRampTransfers[i] - old.PerRampTransfers[i])
	}
	for i := range st.PerRingTransfers {
		st.PerRingTransfers[i] += k * (cur.PerRingTransfers[i] - old.PerRingTransfers[i])
		st.PerRingBytes[i] += k * (cur.PerRingBytes[i] - old.PerRingBytes[i])
	}
	for i := range st.PerDirCount {
		st.PerDirCount[i] += k * (cur.PerDirCount[i] - old.PerDirCount[i])
		st.PerDirBytes[i] += k * (cur.PerDirBytes[i] - old.PerDirBytes[i])
	}
}
