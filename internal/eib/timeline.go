package eib

import "cellbe/internal/sim"

// timeline tracks reservations of one physical resource (a ring segment or
// a ramp port) as a sorted list of disjoint busy intervals, supporting
// first-fit gap search. Unlike a single busy-until watermark, this lets a
// transfer slot into a gap *before* a reservation someone already booked
// further in the future — without it, long-latency paths (remote memory)
// would head-of-line-block short ones on shared ports.
//
// Intervals carry an owner (the flow, i.e. the src/dst pair). Ring
// segments charge a switching gap when consecutive reservations belong to
// different flows: a granted transfer streams gaplessly, but interleaving
// flows pay re-arbitration. This is what makes one flow per ring run at
// full rate while oversubscribed rings (the paper's saturated-EIB
// experiments) lose efficiency.
//
// The representation is tuned for the simulator's hot path, where prune /
// earliestFit / reserve are called for every candidate ring of every
// transfer. The live intervals are the window iv[head:]: prune advances
// the head cursor instead of re-slicing (re-slicing permanently discards
// the prefix capacity, so the slice crawls through its backing array and
// reallocates over and over). The expired prefix iv[:head] doubles as a
// free list of slots: a reserve that inserts near the front shifts the
// short prefix left into the freed cells instead of shifting the whole
// tail right, and once the dead prefix dominates, prune compacts the live
// window back to the start of the same backing array. Steady state does
// no allocation at all; all searches binary-search the (end-sorted,
// disjoint) live window instead of scanning it linearly.
type timeline struct {
	iv   []interval // backing store; live, sorted, disjoint range is iv[head:]
	head int        // amortized prune cursor: index of the first live interval
}

type interval struct {
	s, e  sim.Time // [s, e)
	owner int32
}

// compactAt is the dead-prefix length beyond which prune copies the live
// window back to the front of the backing array. Small enough to bound
// waste, large enough that each interval is moved O(1) times overall.
const compactAt = 32

// live returns the live (not yet pruned) intervals, sorted and disjoint.
func (t *timeline) live() []interval { return t.iv[t.head:] }

// reset empties the timeline while keeping its backing array, so a
// recycled EIB starts with the interval capacity its previous run grew.
func (t *timeline) reset() {
	t.iv = t.iv[:0]
	t.head = 0
}

// prune discards intervals that ended at or before now; they can never
// affect a future reservation because earliest >= now always holds.
// The most recent pruned interval is kept so switching gaps against the
// immediately preceding transfer remain visible.
//
// The walk is linear rather than binary-searched: successive calls see
// nondecreasing now, so each interval is stepped over once in its
// lifetime — amortized O(1) per call, where a binary search would pay
// O(log live) every call whether or not anything expired.
func (t *timeline) prune(now sim.Time) {
	live := t.iv[t.head:]
	i := 0
	for i < len(live) && live[i].e <= now {
		i++
	}
	if i > 1 {
		t.head += i - 1
	}
	if t.head >= compactAt && 2*t.head >= len(t.iv) {
		n := copy(t.iv, t.iv[t.head:])
		t.iv = t.iv[:n]
		t.head = 0
	}
}

// earliestFit returns the earliest start >= earliest at which a duration
// dur fits, paying a switching gap of gap cycles against any neighbouring
// interval of a different owner.
func (t *timeline) earliestFit(earliest, dur sim.Time, owner int32, gap sim.Time) sim.Time {
	s, _ := t.earliestFitFrom(0, earliest, dur, owner, gap)
	return s
}

// earliestFitFrom is earliestFit with a resume floor: from is a live-window
// index below which no fit can exist. 0 is always valid; the index returned
// by a previous call remains valid for any later call whose earliest is at
// or above that call's result, provided the timeline was not mutated in
// between. (Monotonicity argument: an interval rejected at some candidate
// start stays rejected at any larger start, and interval ends are sorted,
// so the immediate predecessor dominates every earlier one.)
//
// The returned index is the settle position: the fit lies immediately
// before live interval idx (idx == len(live) for the open tail). It is
// simultaneously the exact insertion point for reserveIdx and the resume
// floor for the next call — this is what lets the EIB's fixed-point grant
// loop avoid re-searching each resource from scratch on every iteration.
func (t *timeline) earliestFitFrom(from int, earliest, dur sim.Time, owner int32, gap sim.Time) (sim.Time, int) {
	live := t.iv[t.head:]
	n := len(live)
	// Tail fast path: when earliest clears the last reservation, the fit
	// is at the open tail and only the final switching gap can matter.
	// This is the steady state of a flow with a resource to itself (each
	// grant lands just past its predecessor), which makes it the common
	// case in unsaturated runs.
	if n == 0 {
		return earliest, n
	}
	if last := live[n-1]; earliest >= last.e {
		if last.owner != owner && earliest < last.e+gap {
			return last.e + gap, n
		}
		return earliest, n
	}
	// Skip intervals that can constrain nothing: with e + gap <= earliest
	// they can neither overlap a start >= earliest nor push it via a
	// switching gap, and no fit can end before them. The bound is usually
	// within a couple of steps of from — pruned windows begin near now and
	// resumed calls pass their previous settle index — so probe linearly
	// first and fall back to a binary search only for a long stale run
	// (e.g. a segment that has not won, and so not pruned, in a while).
	bound := earliest - gap
	lo, hi := from, n
	for probes := 0; lo < hi && live[lo].e <= bound; {
		lo++
		if probes++; probes == 4 {
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if live[mid].e <= bound {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			break
		}
	}
	start := earliest
	for i := lo; ; i++ {
		// Minimum start after predecessor i-1 (plus switching gap when
		// the predecessor belongs to a different flow).
		if i > 0 {
			min := live[i-1].e
			if live[i-1].owner != owner {
				min += gap
			}
			if start < min {
				start = min
			}
		}
		if i == n {
			return start, n // open-ended tail
		}
		// Latest end that fits before successor i (minus switching gap
		// when the successor belongs to a different flow).
		limit := live[i].s
		if live[i].owner != owner {
			limit -= gap
		}
		if start+dur <= limit {
			return start, i
		}
	}
}

// tailFit is the inlinable tail fast path of earliestFitFrom: it answers
// only when earliest clears the last reservation (fit at the open tail,
// where just the final switching gap can matter) and reports ok=false
// otherwise, leaving the general search to the full routine. Hot callers
// try it first so the steady single-flow case never pays a function call.
func (t *timeline) tailFit(earliest sim.Time, owner int32, gap sim.Time) (sim.Time, int, bool) {
	n := len(t.iv) - t.head
	if n == 0 {
		return earliest, 0, true
	}
	last := t.iv[len(t.iv)-1]
	if earliest < last.e {
		return 0, 0, false
	}
	if last.owner != owner && earliest < last.e+gap {
		return last.e + gap, n, true
	}
	return earliest, n, true
}

// tailFitNoGap is tailFit for gap-free timelines (ramp ports).
func (t *timeline) tailFitNoGap(earliest sim.Time) (sim.Time, int, bool) {
	n := len(t.iv) - t.head
	if n == 0 || earliest >= t.iv[len(t.iv)-1].e {
		return earliest, n, true
	}
	return 0, 0, false
}

// earliestFitFromNoGap is earliestFitFrom specialized for gap == 0 (ramp
// ports, which charge no switching penalty): with no gap the owner can
// never matter, so the neighbour checks collapse to plain interval
// arithmetic. Port searches run inside every iteration of the EIB's grant
// fixed point, which makes this the hottest search variant.
func (t *timeline) earliestFitFromNoGap(from int, earliest, dur sim.Time) (sim.Time, int) {
	live := t.iv[t.head:]
	n := len(live)
	if n == 0 || earliest >= live[n-1].e { // tail fast path, as in earliestFitFrom
		return earliest, n
	}
	lo, hi := from, n
	for probes := 0; lo < hi && live[lo].e <= earliest; {
		lo++
		if probes++; probes == 4 {
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if live[mid].e <= earliest {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			break
		}
	}
	start := earliest
	for i := lo; ; i++ {
		if i > 0 && start < live[i-1].e {
			start = live[i-1].e
		}
		if i == n {
			return start, n
		}
		if start+dur <= live[i].s {
			return start, i
		}
	}
}

// reserve inserts [s, s+dur) with the given owner. The caller must have
// obtained s via earliestFit against the current state; overlapping
// reservations panic.
func (t *timeline) reserve(s, dur sim.Time, owner int32) {
	live := t.iv[t.head:]
	// Find insertion point (first live interval starting at or after s).
	lo, hi := 0, len(live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].s < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t.reserveIdx(lo, s, dur, owner)
}

// reserveIdx is reserve with the insertion point already known — the
// settle index from the earliestFitFrom call that produced s. A wrong
// index cannot corrupt the timeline: any lo that is not the sorted
// insertion position trips one of the overlap panics below (the
// predecessor would end past s, or the successor would start before
// s+dur, both impossible at the true position).
func (t *timeline) reserveIdx(lo int, s, dur sim.Time, owner int32) {
	e := s + dur
	live := t.iv[t.head:]
	if lo > 0 && live[lo-1].e > s {
		panic("eib: overlapping reservation")
	}
	if lo < len(live) && live[lo].s < e {
		panic("eib: overlapping reservation")
	}
	// Merge with neighbours when contiguous and same-owner.
	mergePrev := lo > 0 && live[lo-1].e == s && live[lo-1].owner == owner
	mergeNext := lo < len(live) && live[lo].s == e && live[lo].owner == owner
	switch {
	case mergePrev && mergeNext:
		live[lo-1].e = live[lo].e
		copy(live[lo:], live[lo+1:])
		t.iv = t.iv[:len(t.iv)-1]
	case mergePrev:
		live[lo-1].e = e
	case mergeNext:
		live[lo].s = s
	case t.head > 0 && lo <= len(live)-lo:
		// Reuse a freed slot from the expired prefix: shifting the short
		// run [head, head+lo) left by one is cheaper than shifting the
		// tail right and avoids growing the slice.
		copy(t.iv[t.head-1:], t.iv[t.head:t.head+lo])
		t.head--
		t.iv[t.head+lo] = interval{s: s, e: e, owner: owner}
	default:
		t.iv = append(t.iv, interval{})
		copy(t.iv[t.head+lo+1:], t.iv[t.head+lo:])
		t.iv[t.head+lo] = interval{s: s, e: e, owner: owner}
	}
}
