package eib

import "cellbe/internal/sim"

// timeline tracks reservations of one physical resource (a ring segment or
// a ramp port) as a sorted list of disjoint busy intervals, supporting
// first-fit gap search. Unlike a single busy-until watermark, this lets a
// transfer slot into a gap *before* a reservation someone already booked
// further in the future — without it, long-latency paths (remote memory)
// would head-of-line-block short ones on shared ports.
//
// Intervals carry an owner (the flow, i.e. the src/dst pair). Ring
// segments charge a switching gap when consecutive reservations belong to
// different flows: a granted transfer streams gaplessly, but interleaving
// flows pay re-arbitration. This is what makes one flow per ring run at
// full rate while oversubscribed rings (the paper's saturated-EIB
// experiments) lose efficiency.
type timeline struct {
	iv []interval // sorted by start, disjoint
}

type interval struct {
	s, e  sim.Time // [s, e)
	owner int32
}

// prune discards intervals that ended at or before now; they can never
// affect a future reservation because earliest >= now always holds.
// The most recent pruned interval is kept so switching gaps against the
// immediately preceding transfer remain visible.
func (t *timeline) prune(now sim.Time) {
	i := 0
	for i < len(t.iv) && t.iv[i].e <= now {
		i++
	}
	if i > 1 {
		t.iv = t.iv[i-1:]
	}
}

// earliestFit returns the earliest start >= earliest at which a duration
// dur fits, paying a switching gap of gap cycles against any neighbouring
// interval of a different owner.
func (t *timeline) earliestFit(earliest, dur sim.Time, owner int32, gap sim.Time) sim.Time {
	start := earliest
	n := len(t.iv)
	for i := 0; i <= n; i++ {
		// Minimum start after predecessor i-1 (plus switching gap when
		// the predecessor belongs to a different flow).
		if i > 0 {
			min := t.iv[i-1].e
			if t.iv[i-1].owner != owner {
				min += gap
			}
			if start < min {
				start = min
			}
		}
		if i == n {
			return start // open-ended tail
		}
		// Latest end that fits before successor i (minus switching gap
		// when the successor belongs to a different flow).
		limit := t.iv[i].s
		if t.iv[i].owner != owner {
			limit -= gap
		}
		if start+dur <= limit {
			return start
		}
	}
	return start
}

// reserve inserts [s, s+dur) with the given owner. The caller must have
// obtained s via earliestFit against the current state; overlapping
// reservations panic.
func (t *timeline) reserve(s, dur sim.Time, owner int32) {
	e := s + dur
	// Find insertion point (first interval starting at or after s).
	lo, hi := 0, len(t.iv)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.iv[mid].s < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && t.iv[lo-1].e > s {
		panic("eib: overlapping reservation")
	}
	if lo < len(t.iv) && t.iv[lo].s < e {
		panic("eib: overlapping reservation")
	}
	// Merge with neighbours when contiguous and same-owner.
	mergePrev := lo > 0 && t.iv[lo-1].e == s && t.iv[lo-1].owner == owner
	mergeNext := lo < len(t.iv) && t.iv[lo].s == e && t.iv[lo].owner == owner
	switch {
	case mergePrev && mergeNext:
		t.iv[lo-1].e = t.iv[lo].e
		t.iv = append(t.iv[:lo], t.iv[lo+1:]...)
	case mergePrev:
		t.iv[lo-1].e = e
	case mergeNext:
		t.iv[lo].s = s
	default:
		t.iv = append(t.iv, interval{})
		copy(t.iv[lo+1:], t.iv[lo:])
		t.iv[lo] = interval{s: s, e: e, owner: owner}
	}
}
