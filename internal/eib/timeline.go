package eib

import "cellbe/internal/sim"

// timeline tracks reservations of one physical resource (a ring segment or
// a ramp port) as a sorted list of disjoint busy intervals, supporting
// first-fit gap search. Unlike a single busy-until watermark, this lets a
// transfer slot into a gap *before* a reservation someone already booked
// further in the future — without it, long-latency paths (remote memory)
// would head-of-line-block short ones on shared ports.
//
// Intervals carry an owner (the flow, i.e. the src/dst pair). Ring
// segments charge a switching gap when consecutive reservations belong to
// different flows: a granted transfer streams gaplessly, but interleaving
// flows pay re-arbitration. This is what makes one flow per ring run at
// full rate while oversubscribed rings (the paper's saturated-EIB
// experiments) lose efficiency.
//
// The representation is tuned for the simulator's hot path, where prune /
// earliestFit / reserve are called for every candidate ring of every
// transfer. The live intervals are the window iv[head:]: prune advances
// the head cursor instead of re-slicing (re-slicing permanently discards
// the prefix capacity, so the slice crawls through its backing array and
// reallocates over and over). The expired prefix iv[:head] doubles as a
// free list of slots: a reserve that inserts near the front shifts the
// short prefix left into the freed cells instead of shifting the whole
// tail right, and once the dead prefix dominates, prune compacts the live
// window back to the start of the same backing array. Steady state does
// no allocation at all; all searches binary-search the (end-sorted,
// disjoint) live window instead of scanning it linearly.
type timeline struct {
	iv   []interval // backing store; live, sorted, disjoint range is iv[head:]
	head int        // amortized prune cursor: index of the first live interval
}

type interval struct {
	s, e  sim.Time // [s, e)
	owner int32
}

// compactAt is the dead-prefix length beyond which prune copies the live
// window back to the front of the backing array. Small enough to bound
// waste, large enough that each interval is moved O(1) times overall.
const compactAt = 32

// live returns the live (not yet pruned) intervals, sorted and disjoint.
func (t *timeline) live() []interval { return t.iv[t.head:] }

// search returns the index (relative to the live window) of the first
// live interval whose end is after t. Intervals are disjoint and sorted
// by start, so ends are sorted too and the bound is binary-searchable.
func (t *timeline) search(after sim.Time) int {
	live := t.iv[t.head:]
	lo, hi := 0, len(live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].e <= after {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// prune discards intervals that ended at or before now; they can never
// affect a future reservation because earliest >= now always holds.
// The most recent pruned interval is kept so switching gaps against the
// immediately preceding transfer remain visible.
func (t *timeline) prune(now sim.Time) {
	if i := t.search(now); i > 1 {
		t.head += i - 1
	}
	if t.head >= compactAt && 2*t.head >= len(t.iv) {
		n := copy(t.iv, t.iv[t.head:])
		t.iv = t.iv[:n]
		t.head = 0
	}
}

// earliestFit returns the earliest start >= earliest at which a duration
// dur fits, paying a switching gap of gap cycles against any neighbouring
// interval of a different owner.
func (t *timeline) earliestFit(earliest, dur sim.Time, owner int32, gap sim.Time) sim.Time {
	live := t.iv[t.head:]
	n := len(live)
	// Skip intervals that can constrain nothing: with e + gap <= earliest
	// they can neither overlap a start >= earliest nor push it via a
	// switching gap, and no fit can end before them. The remaining
	// candidates start at the binary-searched bound.
	first := t.search(earliest - gap)
	start := earliest
	for i := first; i <= n; i++ {
		// Minimum start after predecessor i-1 (plus switching gap when
		// the predecessor belongs to a different flow).
		if i > 0 {
			min := live[i-1].e
			if live[i-1].owner != owner {
				min += gap
			}
			if start < min {
				start = min
			}
		}
		if i == n {
			return start // open-ended tail
		}
		// Latest end that fits before successor i (minus switching gap
		// when the successor belongs to a different flow).
		limit := live[i].s
		if live[i].owner != owner {
			limit -= gap
		}
		if start+dur <= limit {
			return start
		}
	}
	return start
}

// reserve inserts [s, s+dur) with the given owner. The caller must have
// obtained s via earliestFit against the current state; overlapping
// reservations panic.
func (t *timeline) reserve(s, dur sim.Time, owner int32) {
	e := s + dur
	live := t.iv[t.head:]
	// Find insertion point (first live interval starting at or after s).
	lo, hi := 0, len(live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].s < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && live[lo-1].e > s {
		panic("eib: overlapping reservation")
	}
	if lo < len(live) && live[lo].s < e {
		panic("eib: overlapping reservation")
	}
	// Merge with neighbours when contiguous and same-owner.
	mergePrev := lo > 0 && live[lo-1].e == s && live[lo-1].owner == owner
	mergeNext := lo < len(live) && live[lo].s == e && live[lo].owner == owner
	switch {
	case mergePrev && mergeNext:
		live[lo-1].e = live[lo].e
		copy(live[lo:], live[lo+1:])
		t.iv = t.iv[:len(t.iv)-1]
	case mergePrev:
		live[lo-1].e = e
	case mergeNext:
		live[lo].s = s
	case t.head > 0 && lo <= len(live)-lo:
		// Reuse a freed slot from the expired prefix: shifting the short
		// run [head, head+lo) left by one is cheaper than shifting the
		// tail right and avoids growing the slice.
		copy(t.iv[t.head-1:], t.iv[t.head:t.head+lo])
		t.head--
		t.iv[t.head+lo] = interval{s: s, e: e, owner: owner}
	default:
		t.iv = append(t.iv, interval{})
		copy(t.iv[t.head+lo+1:], t.iv[t.head+lo:])
		t.iv[t.head+lo] = interval{s: s, e: e, owner: owner}
	}
}
