// Package eib models the Cell Broadband Engine's Element Interconnect Bus.
//
// The EIB connects 12 "ramps" (bus units): the PPE, the eight SPEs, the
// memory interface controller (MIC) and two I/O interfaces (IOIF0/IOIF1).
// Data moves on four unidirectional rings, two per direction, each 16 bytes
// wide per bus cycle; the bus runs at half the CPU clock. A transfer may
// travel at most half way around the ring (6 hops), so for any src/dst pair
// only the shorter direction (or either, at exactly 6 hops) is eligible.
// Each ramp can source one 16-byte beat and sink one 16-byte beat per bus
// cycle. A separate, snooped command bus carries one command per bus cycle.
//
// The model is a timetable scheduler: a data transfer reserves the ring
// segments along its path, plus the source's output port and the
// destination's input port, for the duration of the transfer. Conflicting
// reservations push transfers later in time, which is exactly the
// physical-layout contention the paper measures (its Figures 13 and 16).
package eib

import (
	"fmt"

	"cellbe/internal/fault"
	"cellbe/internal/perfctr"
	"cellbe/internal/sim"
	"cellbe/internal/trace"
)

// RampID identifies a physical position (bus unit) on the ring, 0..11.
type RampID int

// NumRamps is the number of bus units on the EIB.
const NumRamps = 12

// Physical ramp layout of the Cell BE die, going around the ring. This
// follows the floorplan described by Krolak's EIB presentation: one row of
// SPEs on each side of the die, with the PPE/MIC at one end and the I/O
// interfaces at the other.
const (
	RampPPE RampID = iota
	RampSPE1
	RampSPE3
	RampSPE5
	RampSPE7
	RampIOIF1
	RampIOIF0
	RampSPE6
	RampSPE4
	RampSPE2
	RampSPE0
	RampMIC
)

var rampNames = [NumRamps]string{
	"PPE", "SPE1", "SPE3", "SPE5", "SPE7", "IOIF1",
	"IOIF0", "SPE6", "SPE4", "SPE2", "SPE0", "MIC",
}

func (r RampID) String() string {
	if r >= 0 && int(r) < NumRamps {
		return rampNames[r]
	}
	return fmt.Sprintf("Ramp(%d)", int(r))
}

// PhysicalSPERamp returns the ramp of physical SPE i (0..7).
func PhysicalSPERamp(i int) RampID {
	ramps := [8]RampID{RampSPE0, RampSPE1, RampSPE2, RampSPE3, RampSPE4, RampSPE5, RampSPE6, RampSPE7}
	return ramps[i]
}

// Direction of travel around the ring.
type Direction int

const (
	// Clockwise travels from ramp i to ramp i+1 (mod 12).
	Clockwise Direction = iota
	// Counterclockwise travels from ramp i to ramp i-1 (mod 12).
	Counterclockwise
)

func (d Direction) String() string {
	if d == Clockwise {
		return "cw"
	}
	return "ccw"
}

// Config holds the EIB timing parameters, all in CPU cycles.
type Config struct {
	// BusPeriod is the CPU cycles per bus cycle (2: the EIB runs at half
	// the processor clock).
	BusPeriod sim.Time
	// BeatBytes is the ring width: bytes moved per bus cycle per ring (16).
	BeatBytes int
	// CmdLatency is the command-phase latency: the time from a command
	// being issued to the data phase being eligible (address collision
	// detection + snoop response). Pipelined, so it adds latency but not
	// a throughput limit by itself.
	CmdLatency sim.Time
	// CmdIntervalTenths is the command bus throughput limit in tenths of
	// a CPU cycle between command starts. The ideal machine snoops one
	// command per bus cycle (20 tenths); reflection and retry overhead
	// on the loaded bus makes the sustainable rate lower — 25 tenths
	// (2.5 cycles) reproduces the paper's ~70% ceiling when four couples
	// of SPEs demand the full 134.4 GB/s (every 128-byte packet needs a
	// command slot).
	CmdIntervalTenths int64
	// RingsPerDirection is the number of data rings in each direction (2).
	RingsPerDirection int
	// TraceCapacity, when positive, keeps a ring buffer of the most
	// recent data transfers for inspection (cellsim -dump-transfers).
	TraceCapacity int
	// RingDeadCycles is the switching gap a ring segment pays between
	// reservations of *different* flows (src/dst pairs): a granted flow
	// streams gaplessly, but interleaving flows re-arbitrate. Invisible
	// while each flow has a ring of its own; once more flows than rings
	// share a direction it cuts segment utilization — the EIB saturation
	// the paper observes with 4+ concurrent transfers.
	RingDeadCycles sim.Time
}

// DefaultConfig returns the Cell BE EIB parameters.
func DefaultConfig() Config {
	return Config{
		BusPeriod:         2,
		BeatBytes:         16,
		CmdLatency:        50,
		CmdIntervalTenths: 25,
		RingsPerDirection: 2,
		RingDeadCycles:    64,
	}
}

type ring struct {
	dir Direction
	// seg[s] tracks reservations of segment s. For a clockwise ring,
	// segment s carries data from ramp s to ramp s+1; for a
	// counterclockwise ring, from ramp s to ramp s-1 (indexed by source).
	seg [NumRamps]timeline
}

// ringCand is one precomputed candidate ring for a (src, dst) flow: the
// ring index together with the path it would take. The grant loop in
// transfer iterates exactly these instead of filtering all rings through
// the route table on every packet.
type ringCand struct {
	segs []int
	ri   int8
	hops int8
}

// flowPlan is the per-(src, dst) routing plan: every eligible candidate
// ring in ring-index order (the grant loop's deterministic tie-break
// order).
type flowPlan struct {
	cand []ringCand
}

// Stats aggregates EIB activity counters for tests and reporting.
type Stats struct {
	// Transfers counts every data transfer, including ramp-local
	// (src==dst) ones that never touch the rings.
	Transfers int64
	// LocalTransfers counts the ramp-local subset of Transfers. Those
	// transfers contribute zero to WaitCycles by definition (there is no
	// ring contention to wait on), so an average wait per *ring* transfer
	// is WaitCycles / (Transfers - LocalTransfers).
	LocalTransfers int64
	Bytes          int64
	Commands       int64
	BusyCycles     [4]sim.Time // per-ring total reserved cycles
	// WaitCycles is the total cycles transfers spent waiting beyond their
	// earliest eligible start, summed over all transfers. Ramp-local
	// transfers are counted explicitly with zero wait: they inflate
	// Transfers but never WaitCycles, which is why the per-transfer
	// average must exclude them (see LocalTransfers).
	WaitCycles sim.Time
	// PerRampBytes counts bytes *sourced* by each ramp (ring transfers
	// only, matching the original aggregate semantics).
	PerRampBytes [NumRamps]int64
	PerDirCount  [2]int64

	// Finer-grained breakdowns (ring transfers only; ramp-local transfers
	// never appear here). PerRamp* are indexed by physical RampID,
	// PerRing* by granted ring (0..1 clockwise, 2..3 counterclockwise in
	// the default configuration), PerDir* by Direction.
	PerRampRecvBytes [NumRamps]int64 // bytes sunk at each destination ramp
	PerRampTransfers [NumRamps]int64 // transfers sourced by each ramp
	PerRingTransfers [4]int64
	PerRingBytes     [4]int64
	PerDirBytes      [2]int64
}

// TransferRecord is one traced data transfer.
type TransferRecord struct {
	Issued sim.Time // when the transfer was requested
	Start  sim.Time // when the data began moving
	End    sim.Time // when the last beat arrived
	Src    RampID
	Dst    RampID
	Bytes  int
	Ring   int // granted ring index; -1 for ramp-local transfers
}

// EIB is the interconnect model. It is not safe for concurrent use: all
// calls must come from simulation events.
type EIB struct {
	eng   *sim.Engine
	cfg   Config
	rings []ring
	plan  [NumRamps][NumRamps]flowPlan
	out   [NumRamps]timeline // source ramp data-out port
	in    [NumRamps]timeline // destination ramp data-in port
	// cmdNextTenths is the command bus pacing cursor in tenths of a
	// cycle (fixed point, so fractional intervals pace exactly).
	cmdNextTenths int64
	// pruneTick counts ring transfers to amortize timeline pruning.
	pruneTick uint32
	faults    *fault.Injector
	tracer    *trace.Tracer
	perf      *perfctr.EIBCounters
	stats     Stats
	trace     []TransferRecord
	traceNext int
}

// SetFaults attaches a fault injector (nil disables injection). Wired by
// the cell package at system assembly.
func (e *EIB) SetFaults(inj *fault.Injector) { e.faults = inj }

// SetTracer attaches an event tracer (nil disables tracing, the default).
// Wired by the cell package at system assembly, like SetFaults.
func (e *EIB) SetTracer(tr *trace.Tracer) { e.tracer = tr }

// SetPerf attaches a perf-counter block (nil disables counting, the
// default). Wired by the cell package at system assembly, like SetFaults.
func (e *EIB) SetPerf(pc *perfctr.EIBCounters) { e.perf = pc }

// CommandBacklog returns how many cycles the command bus pacing cursor sits
// ahead of now: the queueing delay the next command would see. It is the
// token-bucket level the metrics sampler reports.
func (e *EIB) CommandBacklog() sim.Time {
	ahead := sim.Time((e.cmdNextTenths + 9) / 10)
	if now := e.eng.Now(); ahead > now {
		return ahead - now
	}
	return 0
}

// Trace returns the retained transfer records, oldest first. Empty unless
// Config.TraceCapacity is set.
func (e *EIB) Trace() []TransferRecord {
	if len(e.trace) < cap(e.trace) {
		return append([]TransferRecord(nil), e.trace...)
	}
	out := make([]TransferRecord, 0, len(e.trace))
	out = append(out, e.trace[e.traceNext:]...)
	out = append(out, e.trace[:e.traceNext]...)
	return out
}

// record adds a transfer to the trace ring buffer.
func (e *EIB) record(r TransferRecord) {
	if e.cfg.TraceCapacity <= 0 {
		return
	}
	if e.trace == nil {
		e.trace = make([]TransferRecord, 0, e.cfg.TraceCapacity)
	}
	if len(e.trace) < cap(e.trace) {
		e.trace = append(e.trace, r)
		return
	}
	e.trace[e.traceNext] = r
	e.traceNext = (e.traceNext + 1) % cap(e.trace)
}

// New returns an EIB bound to eng with the given configuration.
func New(eng *sim.Engine, cfg Config) *EIB {
	if cfg.BusPeriod <= 0 || cfg.BeatBytes <= 0 || cfg.RingsPerDirection <= 0 {
		panic("eib: invalid config")
	}
	e := &EIB{eng: eng, cfg: cfg}
	for i := 0; i < cfg.RingsPerDirection; i++ {
		e.rings = append(e.rings, ring{dir: Clockwise})
	}
	for i := 0; i < cfg.RingsPerDirection; i++ {
		e.rings = append(e.rings, ring{dir: Counterclockwise})
	}
	// Flatten the route table against this instance's ring list: one
	// candidate entry per eligible ring per flow, in ring-index order,
	// all carved from a single backing array.
	n := 0
	for src := 0; src < NumRamps; src++ {
		for dst := 0; dst < NumRamps; dst++ {
			for ri := range e.rings {
				if src != dst && routeTable[e.rings[ri].dir][src][dst].ok {
					n++
				}
			}
		}
	}
	backing := make([]ringCand, 0, n)
	for src := 0; src < NumRamps; src++ {
		for dst := 0; dst < NumRamps; dst++ {
			if src == dst {
				continue
			}
			from := len(backing)
			for ri := range e.rings {
				rt := &routeTable[e.rings[ri].dir][src][dst]
				if rt.ok {
					backing = append(backing, ringCand{segs: rt.segs, ri: int8(ri), hops: int8(rt.hops)})
				}
			}
			e.plan[src][dst] = flowPlan{cand: backing[from:len(backing):len(backing)]}
		}
	}
	return e
}

// Reset returns the EIB to the state New(eng, cfg) would build, keeping
// the ring list, the flattened route plan (both purely topological) and
// every timeline's grown backing array. It reports false — leaving the
// EIB untouched — when cfg changes the ring count, since then the plan
// table no longer matches and the caller must build a fresh instance.
// Attachments (faults, tracer, perf) are cleared exactly as on a fresh
// EIB; the assembling layer rewires them.
func (e *EIB) Reset(cfg Config) bool {
	if cfg.BusPeriod <= 0 || cfg.BeatBytes <= 0 || cfg.RingsPerDirection <= 0 {
		panic("eib: invalid config")
	}
	if cfg.RingsPerDirection != e.cfg.RingsPerDirection {
		return false
	}
	e.cfg = cfg
	for ri := range e.rings {
		for s := range e.rings[ri].seg {
			e.rings[ri].seg[s].reset()
		}
	}
	for i := range e.out {
		e.out[i].reset()
		e.in[i].reset()
	}
	e.cmdNextTenths = 0
	e.pruneTick = 0
	e.faults, e.tracer, e.perf = nil, nil, nil
	e.stats = Stats{}
	e.trace, e.traceNext = nil, 0
	return true
}

// Config returns the configuration the EIB was built with.
func (e *EIB) Config() Config { return e.cfg }

// Stats returns a snapshot of the activity counters.
func (e *EIB) Stats() Stats { return e.stats }

// Hops returns the number of ring segments from src to dst in direction d.
func Hops(src, dst RampID, d Direction) int {
	if d == Clockwise {
		return int((dst - src + NumRamps) % NumRamps)
	}
	return int((src - dst + NumRamps) % NumRamps)
}

// pathTable holds the segment indices for every (direction, src, dst)
// triple, sliced out of one shared backing array. The ring topology is
// fixed, so the 12x12x2 table is built once at package init; rebuilding a
// fresh []int per candidate ring per Transfer call was one of the largest
// allocation sources in saturated runs. Callers must treat the returned
// slices as read-only.
var pathTable [2][NumRamps][NumRamps][]int

// route is the precomputed routing decision for one (direction, src, dst)
// triple: whether the direction is eligible (<= 6 hops), the path length,
// and the segments travelled. Transfer consults it per candidate ring, so
// it folds the Hops modular arithmetic and the path lookup into one load.
type route struct {
	segs []int
	hops int
	ok   bool
}

var routeTable [2][NumRamps][NumRamps]route

func init() {
	// Total segments: for each direction, sum of hop counts over all
	// src/dst pairs. One flat array keeps the table cache-friendly.
	total := 0
	for src := 0; src < NumRamps; src++ {
		for dst := 0; dst < NumRamps; dst++ {
			total += Hops(RampID(src), RampID(dst), Clockwise)
			total += Hops(RampID(src), RampID(dst), Counterclockwise)
		}
	}
	backing := make([]int, 0, total)
	for _, d := range []Direction{Clockwise, Counterclockwise} {
		for src := 0; src < NumRamps; src++ {
			for dst := 0; dst < NumRamps; dst++ {
				hops := Hops(RampID(src), RampID(dst), d)
				from := len(backing)
				cur := src
				for i := 0; i < hops; i++ {
					backing = append(backing, cur)
					if d == Clockwise {
						cur = (cur + 1) % NumRamps
					} else {
						cur = (cur - 1 + NumRamps) % NumRamps
					}
				}
				pathTable[d][src][dst] = backing[from:len(backing):len(backing)]
			}
		}
	}
	for _, d := range []Direction{Clockwise, Counterclockwise} {
		for src := 0; src < NumRamps; src++ {
			for dst := 0; dst < NumRamps; dst++ {
				hops := Hops(RampID(src), RampID(dst), d)
				routeTable[d][src][dst] = route{
					segs: pathTable[d][src][dst],
					hops: hops,
					ok:   src != dst && hops <= NumRamps/2,
				}
			}
		}
	}
}

// pathSegments returns the segment indices used travelling from src to dst
// in direction d. The result is a view into a precomputed shared table and
// must not be mutated.
func pathSegments(src, dst RampID, d Direction) []int {
	return pathTable[d][src][dst]
}

// Command reserves a slot on the snooped command bus at or after earliest
// and returns the time the command phase completes (data phase may then
// begin).
func (e *EIB) Command(earliest sim.Time) sim.Time {
	tenths := int64(earliest) * 10
	if e.cmdNextTenths > tenths {
		tenths = e.cmdNextTenths
	}
	e.cmdNextTenths = tenths + e.cfg.CmdIntervalTenths
	e.stats.Commands++
	e.perf.Command()
	grant := sim.Time((tenths + 9) / 10)
	return grant + e.cfg.CmdLatency
}

// portsFit converges the source-out and destination-in port constraints
// to their joint fixed point at or after start: the earliest time both
// ports are free for dur cycles. oIdx/iIdx are resume floors from earlier
// calls against the same (unmutated) timelines at a time at or below
// start; the returned indices are the settle positions for the returned
// time, valid as resume floors for later calls and as insertion points
// for reserveIdx.
func (e *EIB) portsFit(src, dst RampID, start, dur sim.Time, oIdx, iIdx int) (sim.Time, int, int) {
	out, in := &e.out[src], &e.in[dst]
	for {
		f, oi, ok := out.tailFitNoGap(start)
		if !ok {
			f, oi = out.earliestFitFromNoGap(oIdx, start, dur)
		}
		oIdx = oi
		g, ii, ok := in.tailFitNoGap(f)
		if !ok {
			g, ii = in.earliestFitFromNoGap(iIdx, f, dur)
		}
		iIdx = ii
		if g == start {
			return start, oIdx, iIdx
		}
		start = g
	}
}

// Transfer schedules a data-ring transfer of the given size from src to
// dst, starting no earlier than earliest. done is invoked at the simulated
// time the last beat arrives at dst. Transfers between a ramp and itself
// (LS-to-LS within one SPE, handled locally) complete after the pure beat
// time without touching the rings.
func (e *EIB) Transfer(src, dst RampID, bytes int, earliest sim.Time, done func(end sim.Time)) {
	end := e.transfer(src, dst, bytes, earliest)
	e.eng.AtCall(end, done, end)
}

// TransferCB is Transfer with a prebound completion record in place of the
// callback: cb.Call(end) fires at the same simulated time, in the same
// event order, as Transfer's done(end) would (the completion event is
// sequenced at the same program point either way). It exists for per-packet
// hot paths that pool their completion records to avoid closure allocation.
func (e *EIB) TransferCB(src, dst RampID, bytes int, earliest sim.Time, cb sim.Callee) {
	end := e.transfer(src, dst, bytes, earliest)
	e.eng.AtCallee(end, cb, end)
}

// transfer books the transfer on the timetable and returns the completion
// time; the exported wrappers differ only in how they schedule the
// completion callback.
func (e *EIB) transfer(src, dst RampID, bytes int, earliest sim.Time) sim.Time {
	if bytes <= 0 {
		panic("eib: transfer of zero bytes")
	}
	if src < 0 || src >= NumRamps || dst < 0 || dst >= NumRamps {
		panic(fmt.Sprintf("eib: bad ramp %d -> %d", src, dst))
	}
	beats := (bytes + e.cfg.BeatBytes - 1) / e.cfg.BeatBytes
	dur := sim.Time(beats) * e.cfg.BusPeriod
	if earliest < e.eng.Now() {
		earliest = e.eng.Now()
	}

	if src == dst {
		end := earliest + dur
		e.stats.Transfers++
		e.stats.LocalTransfers++
		e.stats.WaitCycles += 0 // local transfers wait on nothing, by definition
		e.stats.Bytes += int64(bytes)
		e.perf.Local(bytes)
		e.record(TransferRecord{Issued: e.eng.Now(), Start: earliest, End: end, Src: src, Dst: dst, Bytes: bytes, Ring: -1})
		e.tracer.Emit(trace.RampTrack(int(src)), trace.KindTransfer,
			earliest, end, int64(bytes), -1, int64(dst), 0)
		return end
	}

	now := e.eng.Now()
	flow := int32(src)<<8 | int32(dst)

	// Injected ring-arbitration faults: a slowdown delays this transfer's
	// earliest grant; an outage takes one ring out of arbitration for this
	// transfer. With several rings per direction, skipping one always
	// leaves an eligible ring; with a single ring per direction an outage
	// could strand the transfer, so it is disabled there.
	earliest += e.faults.EIBSlow()
	outage := -1
	if e.cfg.RingsPerDirection > 1 {
		outage = e.faults.EIBOutage(len(e.rings))
	}

	// Ring-independent prepass: converge the source and destination port
	// constraints once. Every candidate ring's grant loop resumes from
	// this lower bound — the per-ring fixed point is at or above it, and
	// iterating a monotone constraint map from any point below its least
	// fixed point converges to the same fixed point, so the grant time is
	// bit-identical to starting each ring from earliest.
	//
	// The call is inlined for the all-tail case: when earliest clears both
	// ports' last reservations the fixed point is earliest itself (each
	// tail fit returns its input unchanged), which is the steady state of
	// every flow the command-phase latency holds back behind its own
	// previous packets.
	var start0 sim.Time
	var outIdx, inIdx int
	if f, oi, ok := e.out[src].tailFitNoGap(earliest); ok {
		if _, ii, ok2 := e.in[dst].tailFitNoGap(f); ok2 {
			start0, outIdx, inIdx = f, oi, ii
		} else {
			start0, outIdx, inIdx = e.portsFit(src, dst, earliest, dur, oi, 0)
		}
	} else {
		start0, outIdx, inIdx = e.portsFit(src, dst, earliest, dur, 0, 0)
	}

	// Candidate rings: those whose direction reaches dst in <= 6 hops,
	// precomputed per flow at construction (e.plan). For each, find the
	// earliest instant at which the source port, the destination port and
	// every path segment are simultaneously free for the whole duration
	// (iterated first-fit across the resources). Settle indices from each
	// earliestFitFrom call feed the next iteration as exact resume
	// floors, and the winning ring's final indices feed reserveIdx, so no
	// resource is ever searched twice.
	gap := e.cfg.RingDeadCycles
	cands := e.plan[src][dst].cand
	best := -1 // index into cands
	bestRing := -1
	var bestStart sim.Time
	var bestOutIdx, bestInIdx int
	var segIdx, bestSegIdx [NumRamps / 2]int
rings:
	for ci := range cands {
		c := &cands[ci]
		ri := int(c.ri)
		if ri == outage {
			e.perf.Abandon(int(src))
			continue
		}
		r := &e.rings[ri]
		segs := c.segs
		start := start0
		oIdx, iIdx := outIdx, inIdx
		for k := range segs {
			segIdx[k] = 0
		}
		for {
			// Segments first: the ports are known-satisfied at start (the
			// prepass pins start0; later iterations re-verify below), so
			// in the common uncontended case a ring costs one pass over
			// its path segments and the ports are never searched again.
			next := start
			for k, s := range segs {
				f, si, ok := r.seg[s].tailFit(next, flow, gap)
				if !ok {
					f, si = r.seg[s].earliestFitFrom(segIdx[k], next, dur, flow, gap)
				}
				segIdx[k] = si
				if f > next {
					next = f
				}
			}
			if next == start {
				break
			}
			// The grant bound only ever moves later, so once it reaches
			// the best ring so far this ring is out of the running (ties
			// go to the earliest ring index, which the best ring holds).
			if best != -1 && next >= bestStart {
				e.perf.Deny(int(src))
				continue rings
			}
			// A segment pushed the grant: re-converge the ports at the
			// pushed time before trusting it. The loop then re-verifies
			// the segments at the ports' fixed point, so a break only
			// happens with every constraint checked at start.
			start, oIdx, iIdx = e.portsFit(src, dst, next, dur, oIdx, iIdx)
			if best != -1 && start >= bestStart {
				e.perf.Deny(int(src))
				continue rings
			}
		}
		if best == -1 || start < bestStart {
			best, bestRing, bestStart = ci, ri, start
			bestOutIdx, bestInIdx, bestSegIdx = oIdx, iIdx, segIdx
			if bestStart == start0 {
				// No later ring can improve on the port-constrained lower
				// bound, and ties go to the earliest ring index anyway.
				break
			}
		}
	}
	if best == -1 {
		panic(fmt.Sprintf("eib: no eligible ring %v -> %v", src, dst))
	}

	bestSegs := cands[best].segs
	r := &e.rings[bestRing]
	for k, s := range bestSegs {
		r.seg[s].reserveIdx(bestSegIdx[k], bestStart, dur, flow)
	}
	e.out[src].reserveIdx(bestOutIdx, bestStart, dur, flow)
	e.in[dst].reserveIdx(bestInIdx, bestStart, dur, flow)

	// Prune stale intervals after reserving, and only on the resources
	// that were reserved: a timeline only accumulates intervals through
	// reserve, so pruning winners bounds every timeline, while the search
	// above skips expired intervals via its binary-searched bound at the
	// same cost either way. (Grant times are unaffected: stale intervals
	// end at or before now <= earliest and can never push a fit.) The
	// pass is further amortized over transfers — every eighth is plenty
	// to keep the dead prefixes bounded.
	if e.pruneTick++; e.pruneTick&7 == 0 {
		for _, s := range bestSegs {
			r.seg[s].prune(now)
		}
		e.out[src].prune(now)
		e.in[dst].prune(now)
	}

	// The last beat arrives after the pipeline drains through the hops.
	end := bestStart + dur + sim.Time(cands[best].hops)*e.cfg.BusPeriod

	e.stats.Transfers++
	e.stats.Bytes += int64(bytes)
	e.stats.BusyCycles[bestRing] += dur
	e.stats.WaitCycles += bestStart - earliest
	e.stats.PerRampBytes[src] += int64(bytes)
	e.stats.PerDirCount[r.dir]++
	e.stats.PerRampRecvBytes[dst] += int64(bytes)
	e.stats.PerRampTransfers[src]++
	e.stats.PerRingTransfers[bestRing]++
	e.stats.PerRingBytes[bestRing] += int64(bytes)
	e.stats.PerDirBytes[r.dir] += int64(bytes)
	e.perf.Grant(int(src), bestRing, uint64(dur), uint64(bestStart-earliest), bytes)
	e.record(TransferRecord{Issued: e.eng.Now(), Start: bestStart, End: end, Src: src, Dst: dst, Bytes: bytes, Ring: bestRing})

	e.tracer.Emit(trace.RampTrack(int(src)), trace.KindTransfer,
		bestStart, bestStart+dur, int64(bytes), int64(bestRing), int64(dst), int64(bestStart-earliest))
	if e.tracer.Enabled(trace.KindSegment) {
		for _, s := range bestSegs {
			e.tracer.Emit(trace.SegTrack(bestRing, s), trace.KindSegment,
				bestStart, bestStart+dur, int64(bytes), int64(src), int64(dst), 0)
		}
	}

	return end
}
