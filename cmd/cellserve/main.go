// Command cellserve runs the Cell BE sweep simulator as a service: an
// HTTP/JSON API over the core job scheduler, with a shared worker pool,
// content-addressed result memoization, bounded job admission,
// per-client rate limits and (with -journal) a crash-safe write-ahead
// journal that resumes interrupted sweeps on restart. See the README's
// Serving and Operations sections for the endpoints and wire format.
//
// Usage:
//
//	cellserve -addr :8080 -workers 8 -cache 4096 -rate 5 -journal /var/lib/cellserve
//
// Liveness is GET /healthz/live, readiness GET /healthz/ready; sweeps
// stream NDJSON from POST /v1/sweeps; GET /metrics exposes scheduler
// depth, cache and journal health plus the simulated perf-counter
// rollups in Prometheus text format. The first SIGINT/SIGTERM drains
// gracefully (open streams finish, the journal is flushed and closed);
// a second signal forces immediate exit with status 3.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cellbe/internal/core"
	"cellbe/internal/journal"
	"cellbe/internal/serve"
	"cellbe/internal/sim"
)

// forcedExitCode is the exit status of a second-signal forced shutdown,
// distinct from 0 (clean drain) and 1 (startup/serve failure) so
// supervisors can tell an operator-forced kill from a crash.
const forcedExitCode = 3

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "max unfinished jobs before submissions get 429")
	cache := flag.Int("cache", 4096, "result cache capacity in grid points (0 disables memoization)")
	rate := flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := flag.Int("burst", 10, "per-client submission burst")
	maxPoints := flag.Int("max-points", 4096, "max grid points per request")
	maxCycles := flag.Int64("max-cycles", 1_000_000_000, "per-point watchdog cycle budget cap (0 = no cap)")
	maxVolume := flag.Int64("max-volume", 64<<20, "max per-SPE volume in bytes per request")
	journalDir := flag.String("journal", "", "write-ahead journal directory; enables resume-on-restart (empty = no journal)")
	journalSync := flag.Int("journal-sync", 8, "fsync the journal every N point records (1 = every point)")
	retries := flag.Int("retries", 3, "attempts per grid point before a transiently failing point is quarantined (1 = no retries)")
	flag.Parse()

	var (
		jr *journal.Journal
		st *journal.State
	)
	if *journalDir != "" {
		var err error
		jr, st, err = journal.Open(*journalDir, journal.Options{SyncEvery: *journalSync})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellserve: opening journal: %v\n", err)
			os.Exit(1)
		}
		if *cache <= 0 {
			// Resume replays journaled points through the memo cache; with
			// no cache every completed point would re-simulate after a
			// restart, silently defeating the journal.
			*cache = 4096
			log.Printf("cellserve: -journal needs a result cache to resume into; forcing -cache %d", *cache)
		}
	}

	sched := core.NewScheduler(core.SchedOptions{
		Workers:     *workers,
		MaxJobs:     *queue,
		CachePoints: *cache,
		Journal:     jr,
		Retry:       core.RetryPolicy{MaxAttempts: *retries},
	})
	if jr != nil {
		rs := sched.Resume(context.Background(), st)
		log.Printf("cellserve: journal replay: %d points warmed, %d skipped, %d jobs resumed, %d unresumable",
			rs.WarmedPoints, rs.SkippedPoints, len(rs.Jobs), rs.SkippedJobs)
		for _, job := range rs.Jobs {
			// Resumed jobs have no client connection; drain them in the
			// background so their missing points re-run and the journal
			// gets its done record. Clients poll GET /v1/jobs/{id}.
			job := job
			go func() {
				for range job.Results() {
				}
				st := job.Status()
				log.Printf("cellserve: resumed job %s finished: %d completed (%d cached, %d failed)",
					job.ID, st.Completed, st.Cached, st.Failed)
			}()
		}
	}

	handler := serve.New(serve.Options{
		Sched:      sched,
		RatePerSec: *rate,
		RateBurst:  *burst,
		MaxPoints:  *maxPoints,
		MaxCycles:  sim.Time(*maxCycles),
		MaxVolume:  *maxVolume,
		Journal:    jr,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Two-stage signal handling: the first SIGINT/SIGTERM starts the
	// graceful drain; a second one means the operator wants out NOW and
	// forces an immediate exit with a distinct status. The buffered
	// channel keeps both deliveries.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	errc := make(chan error, 1)
	go func() {
		log.Printf("cellserve: listening on %s (%d-job queue, %d-point cache)", *addr, *queue, *cache)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "cellserve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("cellserve: %v: shutting down gracefully (send again to force exit)", sig)
		go func() {
			sig := <-sigc
			log.Printf("cellserve: %v: forcing exit", sig)
			os.Exit(forcedExitCode)
		}()
	}

	// Graceful shutdown: stop accepting, let streams finish, drain the
	// scheduler so in-flight simulations complete, then flush and close
	// the journal — in that order, so every drained point's record is on
	// disk before exit.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("cellserve: shutdown: %v", err)
	}
	sched.Close()
	if jr != nil {
		if err := jr.Close(); err != nil {
			log.Printf("cellserve: closing journal: %v", err)
			os.Exit(1)
		}
	}
	log.Printf("cellserve: drained cleanly")
}
