// Command cellserve runs the Cell BE sweep simulator as a service: an
// HTTP/JSON API over the core job scheduler, with a shared worker pool,
// content-addressed result memoization, bounded job admission and
// per-client rate limits. See the README's Serving section for the
// endpoints and wire format.
//
// Usage:
//
//	cellserve -addr :8080 -workers 8 -cache 4096 -rate 5
//
// A healthy instance answers GET /healthz; sweeps stream NDJSON from
// POST /v1/sweeps.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cellbe/internal/core"
	"cellbe/internal/serve"
	"cellbe/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "max unfinished jobs before submissions get 429")
	cache := flag.Int("cache", 4096, "result cache capacity in grid points (0 disables memoization)")
	rate := flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := flag.Int("burst", 10, "per-client submission burst")
	maxPoints := flag.Int("max-points", 4096, "max grid points per request")
	maxCycles := flag.Int64("max-cycles", 1_000_000_000, "per-point watchdog cycle budget cap (0 = no cap)")
	maxVolume := flag.Int64("max-volume", 64<<20, "max per-SPE volume in bytes per request")
	flag.Parse()

	sched := core.NewScheduler(core.SchedOptions{
		Workers:     *workers,
		MaxJobs:     *queue,
		CachePoints: *cache,
	})
	handler := serve.New(serve.Options{
		Sched:      sched,
		RatePerSec: *rate,
		RateBurst:  *burst,
		MaxPoints:  *maxPoints,
		MaxCycles:  sim.Time(*maxCycles),
		MaxVolume:  *maxVolume,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cellserve: listening on %s (%d-job queue, %d-point cache)", *addr, *queue, *cache)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "cellserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, let streams finish, then drain
	// the scheduler so in-flight simulations complete before exit.
	log.Printf("cellserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("cellserve: shutdown: %v", err)
	}
	sched.Close()
}
